#!/usr/bin/env python3
"""Renders the paper-reproduction figures from bench_results/*.csv.

Usage:
    python3 scripts/plot_results.py [bench_results_dir] [output_dir]

Requires matplotlib. Each bench binary writes a CSV mirror of its printed
table; this script turns them into PNGs shaped like the paper's figures
(Fig 7 scatter layouts, Fig 9-17 curves/bars).
"""

import csv
import os
import sys
from collections import defaultdict


def read_csv(path):
    with open(path) as f:
        rows = list(csv.DictReader(f))
    return rows


def group_by(rows, key):
    out = defaultdict(list)
    for row in rows:
        out[row[key]].append(row)
    return out


def main():
    results = sys.argv[1] if len(sys.argv) > 1 else "bench_results"
    outdir = sys.argv[2] if len(sys.argv) > 2 else "bench_results/plots"
    os.makedirs(outdir, exist_ok=True)

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    def save(fig, name):
        fig.tight_layout()
        path = os.path.join(outdir, name)
        fig.savefig(path, dpi=150)
        plt.close(fig)
        print("wrote", path)

    # Fig 7: 2-D embedding layouts.
    path = os.path.join(results, "fig7_layout.csv")
    if os.path.exists(path):
        rows = group_by(read_csv(path), "model")
        fig, axes = plt.subplots(1, len(rows), figsize=(5 * len(rows), 5))
        for ax, (model, pts) in zip(
            axes if len(rows) > 1 else [axes], sorted(rows.items())
        ):
            ax.scatter(
                [float(p["x"]) for p in pts],
                [float(p["y"]) for p in pts],
                s=2,
            )
            ax.set_title(model)
        save(fig, "fig7_layout.png")

    # Fig 9: bar chart of error vs p.
    path = os.path.join(results, "fig9_lp.csv")
    if os.path.exists(path):
        rows = read_csv(path)
        fig, ax = plt.subplots()
        ax.bar(
            [r["p"] for r in rows],
            [float(r["mean_rel_error_%"]) for r in rows],
        )
        ax.set_yscale("log")
        ax.set_xlabel("p")
        ax.set_ylabel("mean relative error (%)")
        ax.set_title("Fig 9: Lp metric")
        save(fig, "fig9_lp.png")

    # Learning curves: fig10 (per dim), fig11 (per model), fig12 (strategy).
    for name, series_key in [
        ("fig10_dim", "dim"),
        ("fig11_hier", "model"),
        ("fig12_landmarks", "strategy"),
    ]:
        path = os.path.join(results, name + ".csv")
        if not os.path.exists(path):
            continue
        rows = group_by(read_csv(path), series_key)
        fig, ax = plt.subplots()
        for label, pts in sorted(rows.items()):
            ax.plot(
                [int(p["samples_processed"]) for p in pts],
                [float(p["mean_rel_error_%"]) for p in pts],
                label=label,
            )
        ax.set_xlabel("training samples")
        ax.set_ylabel("mean relative error (%)")
        ax.legend()
        ax.set_title(name)
        save(fig, name + ".png")

    # Fig 13 / 17: per-dataset curves over distance scale.
    for name, y_col, log in [
        ("fig13_query_time", "query_time_us", True),
        ("fig17_error_scale", "mean_rel_error_%", False),
    ]:
        path = os.path.join(results, name + ".csv")
        if not os.path.exists(path):
            continue
        by_dataset = group_by(read_csv(path), "dataset")
        fig, axes = plt.subplots(
            1, len(by_dataset), figsize=(5 * len(by_dataset), 4)
        )
        axes = axes if len(by_dataset) > 1 else [axes]
        for ax, (ds, rows) in zip(axes, sorted(by_dataset.items())):
            for method, pts in sorted(group_by(rows, "method").items()):
                ax.plot(
                    [float(p["distance_upper_bound"]) for p in pts],
                    [float(p[y_col]) for p in pts],
                    marker="o",
                    label=method,
                )
            if log:
                ax.set_yscale("log")
            ax.set_title(f"{name} — {ds}")
            ax.set_xlabel("query distance upper bound")
            ax.set_ylabel(y_col)
            ax.legend(fontsize=7)
        save(fig, name + ".png")

    # Fig 15: cumulative error curves (BJ' panel).
    path = os.path.join(results, "fig15_cdf.csv")
    if os.path.exists(path):
        rows = [r for r in read_csv(path) if r["dataset"] == "BJ'"]
        fig, ax = plt.subplots()
        for method, pts in sorted(group_by(rows, "method").items()):
            ax.plot(
                [float(p["error_threshold_%"]) for p in pts],
                [float(p["pct_queries"]) for p in pts],
                marker="o",
                label=method,
            )
        ax.set_xlabel("relative error threshold (%)")
        ax.set_ylabel("% of queries")
        ax.set_title("Fig 15: cumulative error (BJ')")
        ax.legend(fontsize=7)
        save(fig, "fig15_cdf.png")

    # Fig 16: range F1 + time.
    path = os.path.join(results, "fig16_range.csv")
    if os.path.exists(path):
        rows = read_csv(path)
        fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(10, 4))
        for method, pts in sorted(group_by(rows, "method").items()):
            taus = [float(p["tau"]) for p in pts]
            ax1.plot(
                taus, [float(p["range_F1"]) for p in pts], marker="o",
                label=method,
            )
            ax2.plot(
                taus,
                [float(p["range_time_us"]) for p in pts],
                marker="o",
                label=method,
            )
        ax1.set_xlabel("tau")
        ax1.set_ylabel("F1")
        ax2.set_xlabel("tau")
        ax2.set_ylabel("query time (us)")
        ax2.set_yscale("log")
        ax1.legend(fontsize=7)
        ax1.set_title("Fig 16: range queries (BJ')")
        save(fig, "fig16_range.png")


if __name__ == "__main__":
    main()
