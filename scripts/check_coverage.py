#!/usr/bin/env python3
"""Line-coverage report + gate built directly on gcov.

The CI image has gcc/gcov but no gcovr, so this walks every .gcda profile a
test run produced, asks gcov for its JSON intermediate records, merges them
per source line (the same header or template line is profiled by many
translation units), and enforces a minimum aggregate line coverage over the
gated path prefixes.

Usage:
  python3 scripts/check_coverage.py --build-dir build \
      [--include src/core --include src/serve] \
      [--fail-under 70] [--out coverage.json]

Exit status 1 when the aggregate coverage of the gated prefixes is below
--fail-under; 2 when no profile data was found (a miswired build would
otherwise "pass" with 0/0 lines).
"""

import argparse
import gzip
import json
import os
import subprocess
import sys
import tempfile


def find_profile_dirs(build_dir):
    """Object directories containing .gcda files, with the files grouped."""
    groups = {}
    # Absolute paths: gcov runs from a scratch cwd and resolves the .gcno
    # notes file relative to the .gcda argument.
    for root, _dirs, files in os.walk(os.path.abspath(build_dir)):
        gcda = [os.path.join(root, f) for f in files if f.endswith(".gcda")]
        if gcda:
            groups[root] = sorted(gcda)
    return groups


def run_gcov(gcda_files, scratch):
    """Runs gcov in JSON mode; returns parsed records from *.gcov.json.gz.

    One gcov invocation per .gcda: gcov locates the matching .gcno next to
    the .gcda itself (--object-directory mis-resolves CMake's nested
    `__/sub/file.cc.gcda` object paths), and per-file runs keep same-named
    sources from different subdirectories from clobbering each other's
    output in the scratch directory.
    """
    records = []
    for gcda in gcda_files:
        subprocess.run(
            ["gcov", "--json-format", gcda],
            cwd=scratch,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            check=False,
        )
        for name in os.listdir(scratch):
            if not name.endswith(".gcov.json.gz"):
                continue
            path = os.path.join(scratch, name)
            try:
                with gzip.open(path, "rt", encoding="utf-8") as f:
                    records.append(json.load(f))
            except (OSError, json.JSONDecodeError):
                pass
            os.remove(path)
    return records


def collect(build_dir, repo_root):
    """{source_path: {line_number: hit_bool}} merged across all profiles."""
    coverage = {}
    groups = find_profile_dirs(build_dir)
    with tempfile.TemporaryDirectory() as scratch:
        for gcda_files in groups.values():
            for record in run_gcov(gcda_files, scratch):
                for file_record in record.get("files", []):
                    path = file_record.get("file", "")
                    if not os.path.isabs(path):
                        path = os.path.normpath(os.path.join(repo_root, path))
                    rel = os.path.relpath(path, repo_root)
                    if rel.startswith(".."):
                        continue  # system or third-party header
                    lines = coverage.setdefault(rel, {})
                    for line in file_record.get("lines", []):
                        number = line.get("line_number")
                        if number is None:
                            continue
                        hit = line.get("count", 0) > 0
                        lines[number] = lines.get(number, False) or hit
    return coverage


def summarize(coverage, prefixes):
    per_file = {}
    total_lines = 0
    total_hit = 0
    for rel in sorted(coverage):
        if not any(rel.startswith(p) for p in prefixes):
            continue
        lines = coverage[rel]
        hit = sum(1 for h in lines.values() if h)
        per_file[rel] = {
            "lines": len(lines),
            "covered": hit,
            "percent": round(100.0 * hit / len(lines), 2) if lines else 0.0,
        }
        total_lines += len(lines)
        total_hit += hit
    percent = 100.0 * total_hit / total_lines if total_lines else 0.0
    return per_file, total_lines, total_hit, percent


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument(
        "--include",
        action="append",
        default=None,
        help="gated path prefix, repeatable (default: src/core, src/serve)",
    )
    parser.add_argument("--fail-under", type=float, default=70.0)
    parser.add_argument("--out", default=None, help="JSON report path")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    prefixes = args.include or ["src/core", "src/serve"]

    coverage = collect(args.build_dir, repo_root)
    if not coverage:
        print(
            "check_coverage: no .gcda profile data under"
            f" '{args.build_dir}' — build with --coverage and run the tests"
            " first",
            file=sys.stderr,
        )
        return 2

    per_file, total_lines, total_hit, percent = summarize(coverage, prefixes)
    for rel, stats in per_file.items():
        print(
            f"{stats['percent']:6.2f}%  {stats['covered']:5d}/"
            f"{stats['lines']:<5d} {rel}"
        )
    print(
        f"\nTOTAL ({', '.join(prefixes)}): {total_hit}/{total_lines} lines ="
        f" {percent:.2f}% (gate: {args.fail_under:.2f}%)"
    )

    if args.out:
        report = {
            "prefixes": prefixes,
            "fail_under": args.fail_under,
            "total_lines": total_lines,
            "covered_lines": total_hit,
            "percent": round(percent, 2),
            "files": per_file,
        }
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")

    if percent < args.fail_under:
        print(
            f"check_coverage: FAIL — {percent:.2f}% <"
            f" {args.fail_under:.2f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
