#!/usr/bin/env python3
"""Self-test for rne_lint: every rule must fire on a known-bad fixture,
stay quiet on the matching known-good one, and honor suppressions.

Fixtures are written to a temp dir at run time (committed fixture files
would themselves be flagged when the gate lints the tree). Runs standalone
(`python3 scripts/lint/lint_test.py`) or under pytest.
"""

import io
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import rne_lint  # noqa: E402


def lint_source(relpath, source):
    """Findings for one in-memory fixture file."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(source)
        return rne_lint.lint_file(path, rne_lint.ALL_RULES)


def rules_fired(findings):
    return sorted({f.rule for f in findings})


GUARD = "#ifndef FIXTURE_H_\n#define FIXTURE_H_\n"
GUARD_END = "#endif  // FIXTURE_H_\n"


def test_raw_mutex_fires_and_wrapper_is_clean():
    bad = GUARD + "#include <mutex>\nstd::mutex mu;\n" + GUARD_END
    assert "raw-mutex" in rules_fired(lint_source("src/x/a.h", bad))
    good = GUARD + '#include "util/annotations.h"\nrne::Mutex mu;\n' + GUARD_END
    assert "raw-mutex" not in rules_fired(lint_source("src/x/a.h", good))
    # The wrapper header itself is exempt by path.
    exempt = GUARD + "std::mutex mu_;\n" + GUARD_END
    assert not lint_source("src/util/annotations.h", exempt)


def test_raw_mutex_ignores_comments_and_strings():
    src = (GUARD
           + "// std::mutex is banned here\n"
           + 'const char* kMsg = "std::mutex";\n' + GUARD_END)
    assert "raw-mutex" not in rules_fired(lint_source("src/x/a.h", src))


def test_raw_random_fires_and_rng_is_clean():
    bad = "#include <random>\nint f() { return rand(); }\n"
    assert "raw-random" in rules_fired(lint_source("src/x/a.cc", bad))
    bad2 = "std::mt19937 gen;\n"
    assert "raw-random" in rules_fired(lint_source("src/x/a.cc", bad2))
    # rne::Rng uses and the rng.h implementation itself are fine.
    assert "raw-random" not in rules_fired(
        lint_source("src/x/a.cc", "rne::Rng rng(7);\n"))
    assert not lint_source("src/util/rng.h",
                           GUARD + "std::mt19937_64 gen_;\n" + GUARD_END)


def test_wire_resize_fires_without_bounds_check():
    bad = (
        '#include "util/serialize.h"\n'
        "void Load(rne::BinaryReader& r, std::vector<int>* v) {\n"
        "  uint64_t n = 0;\n"
        "  if (!r.ReadPod(&n)) return;\n"
        "  v->resize(n);\n"
        "}\n"
    )
    findings = lint_source("src/x/a.cc", bad)
    assert "wire-resize" in rules_fired(findings)
    assert any(f.line == 5 for f in findings if f.rule == "wire-resize")


def test_wire_resize_quiet_with_bounds_check():
    good = (
        '#include "util/serialize.h"\n'
        "void Load(rne::BinaryReader& r, std::vector<int>* v) {\n"
        "  uint64_t n = 0;\n"
        "  if (!r.ReadPod(&n)) return;\n"
        "  if (n > r.remaining() / sizeof(int)) return;\n"
        "  v->resize(n);\n"
        "}\n"
    )
    assert "wire-resize" not in rules_fired(lint_source("src/x/a.cc", good))
    # Sizes that never touched the wire are not flagged.
    local = (
        '#include "util/serialize.h"\n'
        "void F(std::vector<int>* v, size_t k) { v->resize(k); }\n"
    )
    assert "wire-resize" not in rules_fired(lint_source("src/x/a.cc", local))


def test_obs_hot_loop_fires_only_in_core_loops():
    bad = (
        "void Kernel(size_t n) {\n"
        "  for (size_t i = 0; i < n; ++i) {\n"
        '    RNE_SPAN("k.elem");\n'
        "  }\n"
        "}\n"
    )
    assert "obs-hot-loop" in rules_fired(lint_source("src/core/k.cc", bad))
    # Same code outside src/core is another subsystem's call to make.
    assert "obs-hot-loop" not in rules_fired(lint_source("src/serve/k.cc", bad))
    # A span before the loop is the intended pattern.
    good = (
        "void Kernel(size_t n) {\n"
        '  RNE_SPAN("k");\n'
        "  for (size_t i = 0; i < n; ++i) {\n"
        "  }\n"
        "}\n"
    )
    assert "obs-hot-loop" not in rules_fired(lint_source("src/core/k.cc", good))


def test_serial_build_loop_fires_in_baseline_loops():
    bad = (
        "void Build(const rne::Graph& g, std::span<const VertexId> srcs) {\n"
        "  rne::DijkstraSearch search(g);\n"
        "  for (const VertexId s : srcs) {\n"
        "    const auto& dist = search.AllDistances(s);\n"
        "    Fill(s, dist);\n"
        "  }\n"
        "}\n"
    )
    findings = lint_source("src/baselines/a.cc", bad)
    assert "serial-build-loop" in rules_fired(findings)
    assert any(f.line == 4 for f in findings if f.rule == "serial-build-loop")
    # Single-line loop bodies count too.
    one_liner = (
        "void Build(rne::DijkstraSearch& search, size_t n) {\n"
        "  for (size_t i = 0; i < n; ++i) Fill(i, search.AllDistances(i));\n"
        "}\n"
    )
    assert "serial-build-loop" in rules_fired(
        lint_source("src/baselines/a.cc", one_liner))


def test_serial_build_loop_scope_and_suppression():
    bad = (
        "void Build(rne::DijkstraSearch& search, size_t n) {\n"
        "  for (size_t i = 0; i < n; ++i) {\n"
        "    const auto& dist = search.AllDistances(i);\n"
        "  }\n"
        "}\n"
    )
    # Outside src/baselines/ the rule never looks (algo internals own their
    # loop shapes; landmark selection is inherently sequential).
    assert "serial-build-loop" not in rules_fired(
        lint_source("src/algo/a.cc", bad))
    assert "serial-build-loop" not in rules_fired(
        lint_source("tests/a.cc", bad))
    # One SSSP outside any loop is the batched helper's own shape.
    single = (
        "std::vector<double> Row(rne::DijkstraSearch& search, VertexId s) {\n"
        "  return search.AllDistances(s);\n"
        "}\n"
    )
    assert "serial-build-loop" not in rules_fired(
        lint_source("src/baselines/a.cc", single))
    # A documented single-thread fallback is suppressible per line.
    suppressed = (
        "void Build(rne::DijkstraSearch& search, size_t n) {\n"
        "  for (size_t i = 0; i < n; ++i) {\n"
        "    // rne-lint: allow(serial-build-loop) single-thread fallback\n"
        "    const auto& dist = search.AllDistances(i);\n"
        "  }\n"
        "}\n"
    )
    assert "serial-build-loop" not in rules_fired(
        lint_source("src/baselines/a.cc", suppressed))


def test_header_guard_fires_on_unguarded_header():
    assert "header-guard" in rules_fired(
        lint_source("src/x/a.h", "struct S {};\n"))
    assert "header-guard" not in rules_fired(
        lint_source("src/x/a.h", GUARD + "struct S {};\n" + GUARD_END))
    assert "header-guard" not in rules_fired(
        lint_source("src/x/a.h", "#pragma once\nstruct S {};\n"))
    # A guard below a long top-of-file comment still counts (the rule scans
    # the whole file, not just the first lines).
    commented = ("// line1\n" * 30) + GUARD + "struct S {};\n" + GUARD_END
    assert "header-guard" not in rules_fired(
        lint_source("src/x/a.h", commented))
    # .cc files are never checked for guards.
    assert "header-guard" not in rules_fired(
        lint_source("src/x/a.cc", "struct S {};\n"))


def test_silent_catch_all_fires_on_swallowed_exception():
    bad = (
        "void F() {\n"
        "  try {\n"
        "    G();\n"
        "  } catch (...) {\n"
        "    // nothing\n"
        "  }\n"
        "}\n"
    )
    findings = lint_source("src/x/a.cc", bad)
    assert "silent-catch-all" in rules_fired(findings)
    assert any(f.line == 4 for f in findings if f.rule == "silent-catch-all")
    # Single-line empty handler fires too.
    one_liner = "void F() { try { G(); } catch (...) {} }\n"
    assert "silent-catch-all" in rules_fired(
        lint_source("src/x/a.cc", one_liner))


def test_silent_catch_all_quiet_when_handled():
    rethrow = (
        "void F() {\n"
        "  try { G(); } catch (...) {\n"
        "    Cleanup();\n"
        "    throw;\n"
        "  }\n"
        "}\n"
    )
    assert "silent-catch-all" not in rules_fired(
        lint_source("src/x/a.cc", rethrow))
    to_status = (
        "rne::Status F() {\n"
        "  try { G(); } catch (...) {\n"
        '    return Status::FailedPrecondition("non-standard exception");\n'
        "  }\n"
        "  return Status::Ok();\n"
        "}\n"
    )
    assert "silent-catch-all" not in rules_fired(
        lint_source("src/x/a.cc", to_status))
    captured = (
        "void F() {\n"
        "  try { G(); } catch (...) {\n"
        "    error = std::current_exception();\n"
        "  }\n"
        "}\n"
    )
    assert "silent-catch-all" not in rules_fired(
        lint_source("src/x/a.cc", captured))
    logged = (
        "void F() {\n"
        "  try { G(); } catch (...) {\n"
        '    std::fprintf(stderr, "G failed\\n");\n'
        "  }\n"
        "}\n"
    )
    assert "silent-catch-all" not in rules_fired(
        lint_source("src/x/a.cc", logged))
    # Typed catches are out of scope: they name what they expect.
    typed = (
        "void F() {\n"
        "  try { G(); } catch (const std::exception&) {\n"
        "  }\n"
        "}\n"
    )
    assert "silent-catch-all" not in rules_fired(
        lint_source("src/x/a.cc", typed))


def test_silent_catch_all_suppression():
    src = (
        "void F() {\n"
        "  // rne-lint: allow(silent-catch-all) — best-effort teardown\n"
        "  try { G(); } catch (...) {\n"
        "  }\n"
        "}\n"
    )
    assert "silent-catch-all" not in rules_fired(
        lint_source("src/x/a.cc", src))


def test_raw_syscall_retry_fires_on_bare_calls():
    bad = (
        "#include <unistd.h>\n"
        "ssize_t F(int fd, char* buf, size_t n) {\n"
        "  return read(fd, buf, n);\n"
        "}\n"
    )
    findings = lint_source("src/x/a.cc", bad)
    assert "raw-syscall-retry" in rules_fired(findings)
    assert any(f.line == 3 for f in findings if f.rule == "raw-syscall-retry")
    accept = (
        "#include <sys/socket.h>\n"
        "int G(int fd) { return accept(fd, nullptr, nullptr); }\n"
    )
    assert "raw-syscall-retry" in rules_fired(lint_source("src/x/a.cc", accept))


def test_raw_syscall_retry_quiet_with_retry_loop():
    good = (
        "#include <errno.h>\n"
        "#include <unistd.h>\n"
        "ssize_t F(int fd, char* buf, size_t n) {\n"
        "  ssize_t rc;\n"
        "  do {\n"
        "    rc = read(fd, buf, n);\n"
        "  } while (rc < 0 && errno == EINTR);\n"
        "  return rc;\n"
        "}\n"
    )
    assert "raw-syscall-retry" not in rules_fired(
        lint_source("src/x/a.cc", good))


def test_raw_syscall_retry_scope():
    # The wrapped helpers are not syscalls; capitalization keeps them clean.
    helper = (
        "#include <unistd.h>\n"
        "void F(int fd, const char* p, size_t n) { WriteAllFd(fd, p, n); }\n"
    )
    assert "raw-syscall-retry" not in rules_fired(
        lint_source("src/x/a.cc", helper))
    # Without the posix headers the identifiers are ordinary C++ (e.g. an
    # istream's read()); the rule never looks at such files.
    ungated = "void F(std::istream& s, char* b) { s.read(b, 8); }\n"
    assert "raw-syscall-retry" not in rules_fired(
        lint_source("src/x/a.cc", ungated))
    member = (
        "#include <unistd.h>\n"
        "void F(std::istream& s, char* b) { s.read(b, 8); }\n"
    )
    assert "raw-syscall-retry" not in rules_fired(
        lint_source("src/x/a.cc", member))
    suppressed = (
        "#include <unistd.h>\n"
        "// rne-lint: allow(raw-syscall-retry) — startup, no handlers yet\n"
        "ssize_t F(int fd, char* b, size_t n) { return read(fd, b, n); }\n"
    )
    assert "raw-syscall-retry" not in rules_fired(
        lint_source("src/x/a.cc", suppressed))


def test_raw_mmap_fires_outside_wrapper():
    bad = (
        "#include <sys/mman.h>\n"
        "void* F(int fd, size_t n) {\n"
        "  return mmap(nullptr, n, PROT_READ, MAP_SHARED, fd, 0);\n"
        "}\n"
    )
    findings = lint_source("src/x/a.cc", bad)
    assert "raw-mmap" in rules_fired(findings)
    assert any(f.line == 3 for f in findings if f.rule == "raw-mmap")
    # The explicit-global spelling and every cousin syscall fire too.
    for call in ("::munmap(p, n)", "madvise(p, n, MADV_RANDOM)",
                 "msync(p, n, MS_SYNC)", "mremap(p, n, m, 0)"):
        src = "#include <sys/mman.h>\nvoid F() { %s; }\n" % call
        assert "raw-mmap" in rules_fired(lint_source("src/x/a.cc", src)), call


def test_raw_mmap_wrapper_and_lookalikes_are_clean():
    # The audited home of the syscalls is exempt by path, header included.
    raw = "void* p = ::mmap(nullptr, 8, PROT_READ, MAP_SHARED, fd, 0);\n"
    assert "raw-mmap" not in rules_fired(
        lint_source("src/util/mmap_file.cc", raw))
    assert "raw-mmap" not in rules_fired(
        lint_source("src/util/mmap_file.h", GUARD + raw + GUARD_END))
    # Member calls, longer identifiers, comments and strings never fire.
    clean = (
        "// munmap happens in ~MmapFile\n"
        'const char* kDoc = "mmap";\n'
        "void F(Wrapper& w) { w.mmap(); }\n"
        "void G() { do_mmap(); }\n"
    )
    assert "raw-mmap" not in rules_fired(lint_source("src/x/a.cc", clean))
    # Uses of the wrapper API are the intended pattern.
    wrapped = (
        '#include "util/mmap_file.h"\n'
        "rne::StatusOr<std::shared_ptr<rne::MmapFile>> F(\n"
        "    const std::string& p) {\n"
        "  return rne::MmapFile::Map(p);\n"
        "}\n"
    )
    assert "raw-mmap" not in rules_fired(lint_source("src/x/a.cc", wrapped))


def test_raw_mmap_suppression():
    src = (
        "#include <sys/mman.h>\n"
        "// rne-lint: allow(raw-mmap) — fixture reason\n"
        "void F(void* p, size_t n) { munmap(p, n); }\n"
    )
    assert "raw-mmap" not in rules_fired(lint_source("src/x/a.cc", src))


def test_suppression_same_line_and_preceding_line():
    same = GUARD + "std::mutex mu;  // rne-lint: allow(raw-mutex)\n" + GUARD_END
    assert "raw-mutex" not in rules_fired(lint_source("src/x/a.h", same))
    above = (GUARD + "// rne-lint: allow(raw-mutex) — fixture reason\n"
             + "std::mutex mu;\n" + GUARD_END)
    assert "raw-mutex" not in rules_fired(lint_source("src/x/a.h", above))
    # A suppression names specific rules; others on the line still fire.
    wrong = (GUARD + "std::mutex mu;  // rne-lint: allow(raw-random)\n"
             + GUARD_END)
    assert "raw-mutex" in rules_fired(lint_source("src/x/a.h", wrong))
    # Two lines down is out of scope: no file-wide suppressions.
    far = (GUARD + "// rne-lint: allow(raw-mutex)\n\nstd::mutex mu;\n"
           + GUARD_END)
    assert "raw-mutex" in rules_fired(lint_source("src/x/a.h", far))


def test_untrusted_length_alloc_fires_on_tainted_product():
    # wire-resize's single-identifier match sees only `dim` here; the taint
    # rule must flag the wire-read `count` factor.
    bad = (
        '#include "util/serialize.h"\n'
        "void Load(rne::BinaryReader& r, std::vector<float>* v) {\n"
        "  uint64_t count = 0, dim = 0;\n"
        "  if (!r.ReadPod(&count)) return;\n"
        "  if (!r.ReadPod(&dim)) return;\n"
        "  v->resize(count * dim);\n"
        "}\n"
    )
    findings = lint_source("src/x/a.cc", bad)
    assert "untrusted-length-alloc" in rules_fired(findings)
    assert any(f.line == 6 for f in findings
               if f.rule == "untrusted-length-alloc")


def test_untrusted_length_alloc_quiet_when_bounded():
    good = (
        '#include "util/serialize.h"\n'
        "void Load(rne::BinaryReader& r, std::vector<float>* v) {\n"
        "  uint64_t count = 0, dim = 0;\n"
        "  if (!r.ReadPod(&count)) return;\n"
        "  if (!r.ReadPod(&dim)) return;\n"
        "  if (dim == 0 || count > r.remaining() / (dim * sizeof(float)))\n"
        "    return;\n"
        "  v->resize(count * dim);\n"
        "}\n"
    )
    assert "untrusted-length-alloc" not in rules_fired(
        lint_source("src/x/a.cc", good))
    # A named limit constant is an acceptable bound too.
    kmax = (
        '#include "util/serialize.h"\n'
        "void Load(rne::BinaryReader& r, std::vector<float>* v) {\n"
        "  uint64_t count = 0;\n"
        "  if (!r.ReadPod(&count)) return;\n"
        "  if (count > kMaxEmbeddings) return;\n"
        "  v->resize(count);\n"
        "}\n"
    )
    assert "untrusted-length-alloc" not in rules_fired(
        lint_source("src/x/a.cc", kmax))
    # Sizes that never touched the wire are out of scope, as are files
    # that never see a BinaryReader.
    local = (
        '#include "util/serialize.h"\n'
        "void F(std::vector<int>* v, size_t k) { v->resize(k * 2); }\n"
    )
    assert "untrusted-length-alloc" not in rules_fired(
        lint_source("src/x/a.cc", local))
    ungated = "void F(std::vector<int>* v, size_t n) { v->resize(n); }\n"
    assert "untrusted-length-alloc" not in rules_fired(
        lint_source("src/x/a.cc", ungated))


def test_untrusted_length_alloc_suppression():
    src = (
        '#include "util/serialize.h"\n'
        "void Load(rne::BinaryReader& r, std::vector<int>* v) {\n"
        "  uint64_t n = 0;\n"
        "  if (!r.ReadPod(&n)) return;\n"
        "  // rne-lint: allow(untrusted-length-alloc) — n checked by caller\n"
        "  v->resize(n);\n"
        "}\n"
    )
    assert "untrusted-length-alloc" not in rules_fired(
        lint_source("src/x/a.cc", src))


def test_missing_fuzz_harness_fires_on_unlisted_parser():
    # By naming convention these parse untrusted bytes; none of them are in
    # the real fuzz/COVERAGE.md, so each must fire.
    for name in ("json_parser.cc", "wire_protocol.h", "envelope_v3.cc"):
        findings = lint_source(f"src/util/{name}", "// TODO\n" if
                               name.endswith(".cc") else GUARD + GUARD_END)
        assert "missing-fuzz-harness" in rules_fired(findings), name


def test_missing_fuzz_harness_quiet_when_listed_or_out_of_scope():
    # arg_parser.cc is named in the real fuzz/COVERAGE.md.
    quiet = lint_source("src/util/arg_parser.cc", "// impl\n")
    assert "missing-fuzz-harness" not in rules_fired(quiet)
    # Outside src/ the convention does not apply (tests, bench, fuzz).
    assert "missing-fuzz-harness" not in rules_fired(
        lint_source("tests/server_protocol_test.cc", "// test\n"))
    assert "missing-fuzz-harness" not in rules_fired(
        lint_source("fuzz/protocol_fuzzer.cc", "// harness\n"))
    # Files without the naming convention are out of scope entirely.
    assert "missing-fuzz-harness" not in rules_fired(
        lint_source("src/util/serialize.cc", "// impl\n"))


def test_missing_fuzz_harness_coverage_file_override():
    # The coverage map location is injectable so this test does not depend
    # on the repo's real COVERAGE.md contents.
    with tempfile.TemporaryDirectory() as tmp:
        coverage = os.path.join(tmp, "COVERAGE.md")
        with open(coverage, "w", encoding="utf-8") as f:
            f.write("## harness\n- src/util/toy_parser.cc\n")
        rule = rne_lint.MissingFuzzHarnessRule(coverage_path=coverage)
        listed = os.path.join(tmp, "src", "util", "toy_parser.cc")
        unlisted = os.path.join(tmp, "src", "util", "other_parser.cc")
        os.makedirs(os.path.dirname(listed), exist_ok=True)
        for p in (listed, unlisted):
            with open(p, "w", encoding="utf-8") as f:
                f.write("// impl\n")
        assert not list(rule.check(listed, ["// impl"]))
        assert list(rule.check(unlisted, ["// impl"]))
        # A missing coverage map means nothing is listed: everything fires.
        absent = rne_lint.MissingFuzzHarnessRule(
            coverage_path=os.path.join(tmp, "nope.md"))
        assert list(absent.check(unlisted, ["// impl"]))


def test_json_output_and_exit_codes():
    with tempfile.TemporaryDirectory() as tmp:
        bad = os.path.join(tmp, "bad.h")
        with open(bad, "w", encoding="utf-8") as f:
            f.write("std::mutex mu;\n")
        stream = io.StringIO()
        code = rne_lint.run([tmp], json_out=True, stream=stream)
        assert code == 1
        report = json.loads(stream.getvalue())
        assert report["checked_files"] == 1
        fired = {f["rule"] for f in report["findings"]}
        assert fired == {"raw-mutex", "header-guard"}
        for f in report["findings"]:
            assert f["path"] == bad and f["line"] >= 1 and f["message"]

        good = os.path.join(tmp, "good.cc")
        with open(good, "w", encoding="utf-8") as f:
            f.write("int main() { return 0; }\n")
        stream = io.StringIO()
        assert rne_lint.run([good], json_out=True, stream=stream) == 0
        assert json.loads(stream.getvalue())["findings"] == []


def test_cli_reports_missing_path():
    assert rne_lint.main(["/nonexistent/definitely-missing"]) == 2


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError:
            failures += 1
            import traceback
            traceback.print_exc()
            print(f"FAIL {name}")
    print(f"lint_test: {len(tests) - failures}/{len(tests)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
