#!/usr/bin/env python3
"""Project-specific lint rules the compilers cannot express.

Each rule encodes a repo contract documented in DESIGN.md §11; violations
are almost always real bugs or contract erosion, so the default run is a
gate (exit 1 on any finding). Rules are deliberately line-based and
deterministic — no clang tooling required — so the gate runs anywhere
python3 does.

Rules:
  raw-mutex    std::mutex / lock_guard / unique_lock / condition_variable
               outside util/annotations.h. Everything else must use the
               annotated rne::Mutex wrappers or Clang's thread-safety
               analysis is blind to it.
  raw-random   rand() / std::random_device / std::mt19937 outside
               util/rng.h. Reproducibility contract: all randomness flows
               through the seeded rne::Rng.
  wire-resize  .resize(n)/.reserve(n) where n came straight off the wire
               (a BinaryReader::ReadPod target) with no bounds check in
               between — a corrupt length field becomes a multi-GB
               allocation. Checked in files that use BinaryReader.
  obs-hot-loop RNE_SPAN / RNE_HIST_RECORD inside a loop in src/core —
               observability macros cost a clock read (and a mutex on
               span close); per-element use turns a kernel into a
               benchmark of the tracer.
  header-guard every .h must have #pragma once or an #ifndef/#define
               include guard.
  silent-catch-all
               a `catch (...)` block that neither rethrows nor records the
               failure (Status, log, abort, test failure) — it converts
               unknown exceptions into silent wrong behavior.
  serial-build-loop
               a per-node AllDistances() single-source search inside a loop
               in src/baselines/ — build loops over SSSP sources must go
               through a batched parallel fill (ComputeLandmarkDistances or
               a ThreadPool shard) so index builds scale with --threads.
  raw-syscall-retry
               bare read()/write()/accept() in files doing raw fd I/O with
               no EINTR handling nearby. The serving binaries install
               signal handlers without SA_RESTART (graceful drain needs
               the interrupt), so any unwrapped syscall can fail spuriously
               under load; call the net::*Fd helpers (src/net/fd.h) or
               keep the retry loop next to the call.
  raw-mmap     mmap/munmap/madvise/msync/mremap outside util/mmap_file.
               Mappings must go through the MmapFile RAII wrapper (or
               MappedEnvelope) so unmap-on-destruction, SIGBUS-safe length
               validation and advice hints stay in one audited place.
  untrusted-length-alloc
               resize/reserve whose argument *expression* involves a value
               read off the wire (BinaryReader::ReadPod) with no
               remaining()/kMax bound on that value first. Catches the
               `v.resize(count * dim)` overflow shapes wire-resize's
               single-identifier match misses: the product can wrap even
               when each factor looks small.
  missing-fuzz-harness
               src/ files matching *parser*/*protocol*/*envelope* must be
               named in fuzz/COVERAGE.md. Untrusted-byte surfaces ship
               with a fuzz harness (DESIGN.md §16); the coverage map is
               how the next reader finds it.

Suppression: append `// rne-lint: allow(<rule>)` to the offending line or
the line directly above it. Suppressions are for documented, deliberate
exceptions — the comment should say why.

Usage:
  python3 scripts/lint/rne_lint.py [--json] [--list-rules] [paths...]

Paths default to src tools tests bench examples under the repo root. Exit
status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import json
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".cc")
DEFAULT_PATHS = ["src", "tools", "tests", "bench", "examples"]

SUPPRESS_RE = re.compile(r"//\s*rne-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based
        self.message = message

    def to_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


def suppressed_rules(lines, index):
    """Rules allowed on line `index` (0-based): same line or the line above."""
    allowed = set()
    for i in (index, index - 1):
        if 0 <= i < len(lines):
            m = SUPPRESS_RE.search(lines[i])
            if m:
                allowed.update(r.strip() for r in m.group(1).split(","))
    return allowed


def strip_comments_and_strings(line):
    """Crude single-line scrub so matches in comments/strings don't fire.

    Good enough for lint: the repo style keeps string literals and comments
    on one line; block comments spanning lines are rare and reviewed.
    """
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    line = re.sub(r"/\*.*?\*/", "", line)
    return line.split("//", 1)[0]


class Rule:
    """Base: subclasses set `name`/`description` and implement check()."""

    name = ""
    description = ""

    def applies_to(self, path):
        return path.endswith(CXX_EXTENSIONS)

    def check(self, path, lines):
        raise NotImplementedError


class RawMutexRule(Rule):
    name = "raw-mutex"
    description = (
        "raw std::mutex/lock primitives outside util/annotations.h; use the"
        " annotated rne::Mutex wrappers"
    )
    PATTERN = re.compile(
        r"std::(mutex|recursive_mutex|timed_mutex|shared_mutex|lock_guard"
        r"|unique_lock|scoped_lock|shared_lock|condition_variable"
        r"|condition_variable_any)\b"
    )

    def applies_to(self, path):
        return super().applies_to(path) and not path.endswith(
            os.path.join("util", "annotations.h")
        )

    def check(self, path, lines):
        for i, raw in enumerate(lines):
            m = self.PATTERN.search(strip_comments_and_strings(raw))
            if m:
                yield Finding(
                    self.name, path, i + 1,
                    f"std::{m.group(1)} bypasses the thread-safety-annotated"
                    " rne::Mutex wrappers (util/annotations.h)",
                )


class RawRandomRule(Rule):
    name = "raw-random"
    description = (
        "rand()/std::random_device/std::mt19937 outside util/rng.h; all"
        " randomness must flow through the seeded rne::Rng"
    )
    PATTERN = re.compile(
        r"std::(random_device|mt19937(_64)?|default_random_engine)\b"
        r"|(?<![\w:])s?rand\s*\("
    )

    def applies_to(self, path):
        return super().applies_to(path) and not path.endswith(
            os.path.join("util", "rng.h")
        )

    def check(self, path, lines):
        for i, raw in enumerate(lines):
            if self.PATTERN.search(strip_comments_and_strings(raw)):
                yield Finding(
                    self.name, path, i + 1,
                    "unseeded/raw randomness breaks run-to-run"
                    " reproducibility; use rne::Rng (util/rng.h)",
                )


class WireResizeRule(Rule):
    name = "wire-resize"
    description = (
        "resize/reserve with a wire-read length and no bounds check — a"
        " corrupt length field becomes an unbounded allocation"
    )
    READ_RE = re.compile(r"ReadPod\s*\(\s*&\s*(\w+)\s*\)")
    CALL_RE = re.compile(
        r"(?:\.|->)\s*(resize|reserve)\s*\(\s*[^)]*\b(\w+)\b[^)]*\)")
    BOUND_TOKENS = ("remaining", "<", ">", "RNE_CHECK", "kMax", "Min(", "min(")

    def check(self, path, lines):
        if not any("BinaryReader" in l or "util/serialize.h" in l
                   for l in lines):
            return
        # Wire-read variables seen so far: name -> line index of the read.
        wire_vars = {}
        for i, raw in enumerate(lines):
            line = strip_comments_and_strings(raw)
            for m in self.READ_RE.finditer(line):
                wire_vars[m.group(1)] = i
            m = self.CALL_RE.search(line)
            if not m:
                continue
            var = m.group(2)
            if var not in wire_vars:
                continue
            read_at = wire_vars[var]
            checked = any(
                var in strip_comments_and_strings(lines[j])
                and any(tok in lines[j] for tok in self.BOUND_TOKENS)
                for j in range(read_at, i)
            )
            if not checked:
                yield Finding(
                    self.name, path, i + 1,
                    f"{m.group(1)}({var}) uses a length read from the wire"
                    f" at line {read_at + 1} with no bounds check in"
                    " between; validate against remaining() first",
                )


class ObsHotLoopRule(Rule):
    name = "obs-hot-loop"
    description = (
        "RNE_SPAN/RNE_HIST_RECORD inside a src/core loop body — per-element"
        " observability turns the kernel into a tracer benchmark"
    )
    MACRO_RE = re.compile(r"\b(RNE_SPAN\w*|RNE_HIST_RECORD)\s*\(")
    LOOP_RE = re.compile(r"\b(for|while)\s*\(")

    def applies_to(self, path):
        norm = path.replace(os.sep, "/")
        return super().applies_to(path) and "src/core/" in norm

    def check(self, path, lines):
        # Brace-depth scope stack; a scope is "hot" when opened by for/while.
        scopes = []  # True = loop scope
        pending_loop = False
        for i, raw in enumerate(lines):
            line = strip_comments_and_strings(raw)
            m = self.MACRO_RE.search(line)
            if m and (any(scopes) or (pending_loop and self.LOOP_RE.search(
                    line) is None)):
                yield Finding(
                    self.name, path, i + 1,
                    f"{m.group(1)} inside a kernel loop; hoist it outside"
                    " the per-element loop (one span per phase, not per"
                    " element)",
                )
            if self.LOOP_RE.search(line):
                pending_loop = True
            for ch in line:
                if ch == "{":
                    scopes.append(pending_loop)
                    pending_loop = False
                elif ch == "}" and scopes:
                    scopes.pop()


class SerialBuildLoopRule(Rule):
    name = "serial-build-loop"
    description = (
        "per-node AllDistances() inside a src/baselines build loop — batch"
        " the sources through ComputeLandmarkDistances or a ThreadPool"
        " shard so the build scales with --threads"
    )
    CALL_RE = re.compile(r"\bAllDistances\s*\(")
    LOOP_RE = re.compile(r"\b(for|while)\s*\(")

    def applies_to(self, path):
        norm = path.replace(os.sep, "/")
        return super().applies_to(path) and "src/baselines/" in norm

    def check(self, path, lines):
        # Brace-depth scope stack, as in ObsHotLoopRule: a scope is a loop
        # body when its brace was opened by a for/while header.
        scopes = []
        pending_loop = False
        for i, raw in enumerate(lines):
            line = strip_comments_and_strings(raw)
            m = self.CALL_RE.search(line)
            loop_m = self.LOOP_RE.search(line)
            # In a loop body (scope stack), on the line after a brace-less
            # loop header, or on the header line itself after the for/while.
            if m and (any(scopes) or (pending_loop and loop_m is None)
                      or (loop_m is not None and m.start() > loop_m.start())):
                yield Finding(
                    self.name, path, i + 1,
                    "AllDistances() runs one full SSSP per loop iteration;"
                    " batch the sources through ComputeLandmarkDistances or"
                    " a ThreadPool shard (see DESIGN.md §14) so the build"
                    " scales with --threads",
                )
            if self.LOOP_RE.search(line):
                pending_loop = True
            for ch in line:
                if ch == "{":
                    scopes.append(pending_loop)
                    pending_loop = False
                elif ch == "}" and scopes:
                    scopes.pop()


class HeaderGuardRule(Rule):
    name = "header-guard"
    description = "headers need #pragma once or an #ifndef/#define guard"
    IFNDEF_RE = re.compile(r"^\s*#ifndef\s+(\w+)")

    def applies_to(self, path):
        return path.endswith(".h")

    def check(self, path, lines):
        guard = None
        for raw in lines:
            if raw.lstrip().startswith("#pragma once"):
                return
            m = self.IFNDEF_RE.match(raw)
            if m and guard is None:
                guard = m.group(1)
            elif guard is not None and re.match(
                    rf"^\s*#define\s+{re.escape(guard)}\b", raw):
                return
        yield Finding(
            self.name, path, 1,
            "no include guard (#pragma once or #ifndef/#define) found",
        )


class SilentCatchAllRule(Rule):
    name = "silent-catch-all"
    description = (
        "catch (...) that neither rethrows nor records the failure — unknown"
        " exceptions vanish into silent wrong behavior"
    )
    CATCH_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")
    # Any of these inside the handler counts as acknowledging the exception:
    # rethrow, converting to Status, capturing it, logging, aborting, or
    # failing a test.
    EVIDENCE_RE = re.compile(
        r"\b(throw|Status|status|current_exception|fprintf|printf|cerr|clog"
        r"|log|abort|exit|RNE_CHECK|FAIL|ADD_FAILURE|EXPECT_\w+|ASSERT_\w+)\b"
    )
    MAX_BODY_LINES = 200  # lint sanity bound; real handlers are short

    def check(self, path, lines):
        for i, raw in enumerate(lines):
            line = strip_comments_and_strings(raw)
            if not self.CATCH_RE.search(line):
                continue
            # Walk the brace-balanced handler body that follows the catch.
            depth = 0
            opened = False
            body = []
            for j in range(i, min(len(lines), i + self.MAX_BODY_LINES)):
                scanned = strip_comments_and_strings(lines[j])
                if j == i:
                    scanned = scanned[self.CATCH_RE.search(scanned).end():]
                for k, ch in enumerate(scanned):
                    if ch == "{":
                        depth += 1
                        opened = True
                    elif ch == "}":
                        depth -= 1
                        if opened and depth == 0:
                            scanned = scanned[:k]
                            break
                body.append(scanned)
                if opened and depth <= 0:
                    break
            if not any(self.EVIDENCE_RE.search(b) for b in body):
                yield Finding(
                    self.name, path, i + 1,
                    "catch (...) swallows the exception: rethrow, convert it"
                    " to a Status, or at least log/abort so the failure is"
                    " observable",
                )


class RawSyscallRetryRule(Rule):
    name = "raw-syscall-retry"
    description = (
        "bare read()/write()/accept() with no EINTR handling nearby; the"
        " serving binaries run without SA_RESTART, so use the net::*Fd"
        " helpers (src/net/fd.h) or keep the retry loop beside the call"
    )
    # Only files doing raw fd I/O are in scope; C++ iostream code never
    # includes these headers.
    GATE_RE = re.compile(r'#include\s+<(unistd\.h|sys/socket\.h)>')
    CALL_RE = re.compile(r"(?<![\w.>\"])(?:::\s*)?(read|write|accept4?)\s*\(")
    # EINTR on the line, or within this many lines either side, is taken as
    # evidence of a retry loop around the call.
    EINTR_WINDOW = 2

    def check(self, path, lines):
        if not any(self.GATE_RE.search(l) for l in lines):
            return
        for i, raw in enumerate(lines):
            line = strip_comments_and_strings(raw)
            m = self.CALL_RE.search(line)
            if not m:
                continue
            lo = max(0, i - self.EINTR_WINDOW)
            hi = min(len(lines), i + self.EINTR_WINDOW + 1)
            if any("EINTR" in lines[j] for j in range(lo, hi)):
                continue
            yield Finding(
                self.name, path, i + 1,
                f"{m.group(1)}() without EINTR handling; a signal during"
                " graceful drain makes it fail spuriously — use"
                f" net::{m.group(1).capitalize()}Fd (src/net/fd.h) or wrap"
                " it in a do/while-EINTR loop",
            )


class RawMmapRule(Rule):
    name = "raw-mmap"
    description = (
        "direct mmap/munmap/madvise/msync/mremap outside util/mmap_file;"
        " mappings must go through the MmapFile RAII wrapper"
    )
    # Negative lookbehind keeps member calls (x.mmap(), p->munmap()) and
    # longer identifiers (do_mmap) out; an optional :: prefix is the usual
    # explicit-global spelling at the call sites this rule owns.
    PATTERN = re.compile(
        r"(?<![\w.>])(?:::\s*)?(mmap|munmap|madvise|msync|mremap)\s*\(")

    def applies_to(self, path):
        norm = path.replace(os.sep, "/")
        return super().applies_to(path) and not (
            norm.endswith("util/mmap_file.h")
            or norm.endswith("util/mmap_file.cc")
        )

    def check(self, path, lines):
        for i, raw in enumerate(lines):
            m = self.PATTERN.search(strip_comments_and_strings(raw))
            if m:
                yield Finding(
                    self.name, path, i + 1,
                    f"{m.group(1)}() outside util/mmap_file bypasses the"
                    " audited MmapFile RAII wrapper (lifetime, length"
                    " validation and advice hints live there)",
                )


class UntrustedLengthAllocRule(Rule):
    name = "untrusted-length-alloc"
    description = (
        "resize/reserve argument expression built from a wire-read length"
        " with no remaining()/kMax bound on it — products of small-looking"
        " wire values overflow into huge allocations"
    )
    READ_RE = re.compile(r"ReadPod\s*\(\s*&\s*(\w+)\s*\)")
    CALL_RE = re.compile(r"(?:\.|->)\s*(resize|reserve)\s*\(([^;]*)\)")
    IDENT_RE = re.compile(r"\b([A-Za-z_]\w*)\b")
    # Unlike wire-resize's generic comparison tokens, the bound here must
    # tie the value to what the file can actually supply (remaining()) or
    # to a named limit constant.
    BOUND_TOKENS = ("remaining", "kMax", "RNE_CHECK")

    def check(self, path, lines):
        if not any("BinaryReader" in l or "util/serialize.h" in l
                   for l in lines):
            return
        wire_vars = {}  # name -> line index of the read
        for i, raw in enumerate(lines):
            line = strip_comments_and_strings(raw)
            for m in self.READ_RE.finditer(line):
                wire_vars[m.group(1)] = i
            m = self.CALL_RE.search(line)
            if not m:
                continue
            # Every identifier in the argument expression is suspect, not
            # just one: resize(count * dim) must bound *count* and *dim*.
            tainted = [v for v in self.IDENT_RE.findall(m.group(2))
                       if v in wire_vars]
            for var in tainted:
                read_at = wire_vars[var]
                bounded = any(
                    var in strip_comments_and_strings(lines[j])
                    and any(tok in lines[j] for tok in self.BOUND_TOKENS)
                    for j in range(read_at, i)
                )
                if not bounded:
                    yield Finding(
                        self.name, path, i + 1,
                        f"{m.group(1)}(...) sizes an allocation with"
                        f" wire-read `{var}` (line {read_at + 1}) that was"
                        " never bounded against remaining() or a kMax"
                        " limit; a corrupt length field becomes a huge"
                        " allocation or an overflowing product",
                    )


class MissingFuzzHarnessRule(Rule):
    name = "missing-fuzz-harness"
    description = (
        "src/ file matching *parser*/*protocol*/*envelope* not named in"
        " fuzz/COVERAGE.md — untrusted-byte surfaces ship with a fuzz"
        " harness (DESIGN.md §16)"
    )
    NAME_RE = re.compile(r"parser|protocol|envelope")

    def __init__(self, coverage_path=None):
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        self.coverage_path = coverage_path or os.path.join(
            repo_root, "fuzz", "COVERAGE.md")
        self._coverage = None

    def coverage_text(self):
        if self._coverage is None:
            try:
                with open(self.coverage_path, encoding="utf-8") as f:
                    self._coverage = f.read()
            except OSError:
                self._coverage = ""
        return self._coverage

    def applies_to(self, path):
        norm = path.replace(os.sep, "/")
        return (super().applies_to(path) and "src/" in norm
                and self.NAME_RE.search(os.path.basename(path)) is not None)

    def check(self, path, lines):
        base = os.path.basename(path)
        if base in self.coverage_text():
            return
        yield Finding(
            self.name, path, 1,
            f"{base} parses untrusted bytes by naming convention but is not"
            " listed in fuzz/COVERAGE.md; cover it from an existing harness"
            " (or add one) and record it there",
        )


ALL_RULES = [
    RawMutexRule(),
    RawRandomRule(),
    WireResizeRule(),
    ObsHotLoopRule(),
    SerialBuildLoopRule(),
    HeaderGuardRule(),
    SilentCatchAllRule(),
    RawSyscallRetryRule(),
    RawMmapRule(),
    UntrustedLengthAllocRule(),
    MissingFuzzHarnessRule(),
]


def iter_source_files(paths):
    for base in paths:
        if os.path.isfile(base):
            yield base
            continue
        for root, dirs, files in os.walk(base):
            dirs[:] = sorted(
                d for d in dirs
                if d not in {".git", "build", "__pycache__"}
                and not d.startswith("build-")
            )
            for name in sorted(files):
                if name.endswith(CXX_EXTENSIONS):
                    yield os.path.join(root, name)


def lint_file(path, rules):
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as e:
        return [Finding("io", path, 0, f"unreadable: {e}")]
    findings = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for finding in rule.check(path, lines):
            if rule.name not in suppressed_rules(lines, finding.line - 1):
                findings.append(finding)
    return findings


def run(paths, rules=None, json_out=False, stream=sys.stdout):
    rules = rules if rules is not None else ALL_RULES
    findings = []
    checked = 0
    for path in iter_source_files(paths):
        checked += 1
        findings.extend(lint_file(path, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if json_out:
        json.dump(
            {
                "checked_files": checked,
                "findings": [f.to_dict() for f in findings],
            },
            stream,
            indent=2,
        )
        stream.write("\n")
    else:
        for f in findings:
            stream.write(f"{f.path}:{f.line}: [{f.rule}] {f.message}\n")
        stream.write(
            f"rne_lint: {checked} files, {len(findings)} finding(s)\n"
        )
    return 1 if findings else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Project lint gate; see module docstring for the rules."
    )
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: the repo tree)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:14s} {rule.description}")
        return 0

    if args.paths:
        paths = args.paths
    else:
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        paths = [os.path.join(repo_root, p) for p in DEFAULT_PATHS]
        paths = [p for p in paths if os.path.isdir(p)]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"rne_lint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    return run(paths, json_out=args.json)


if __name__ == "__main__":
    sys.exit(main())
