// BlockCache fuzzer: input-derived cache geometry, file contents, and an
// op stream of Acquire/Read/pin-release/stats calls — plus a fault shim
// that truncates or regrows the backing file *behind* the cache (which
// keeps serving against its size-at-open), driving the short-pread and
// IoError paths the way a concurrently-replaced model file would. The
// offset/size arithmetic (block indexing, tail blocks, cross-block Read
// assembly, eviction under pin pressure) is the attack surface; statuses
// are ignored, crashes and sanitizer reports count.
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "util/block_cache.h"

#include "fuzz_target.h"

namespace rne {
namespace {

const std::string& ScratchPath() {
  static const std::string* path = [] {
    return new std::string("/tmp/rne_blockcache_fuzz." +
                           std::to_string(::getpid()) + ".bin");
  }();
  return *path;
}

uint16_t ReadU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

void DriveCache(const uint8_t* data, size_t size) {
  if (size < 8) return;
  BlockCache::Options options;
  options.block_bytes = 1 + ReadU16(data) % 1024;
  options.block_count = 1 + data[2] % 8;
  const size_t file_len =
      std::min<size_t>(size - 8, static_cast<size_t>(data[3]) * 17);
  {
    std::ofstream out(ScratchPath(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data + 8),
              static_cast<std::streamsize>(file_len));
  }
  auto opened = BlockCache::Open(ScratchPath(), options);
  if (!opened.ok()) return;
  BlockCache& cache = *opened.value();
  std::vector<BlockCache::Pin> pins;
  std::vector<uint8_t> dst;
  // Op stream: 3 bytes per op from the tail of the input.
  const uint8_t* ops = data + 8 + file_len;
  size_t n_ops = (size - 8 - file_len) / 3;
  for (size_t i = 0; i < n_ops; ++i) {
    const uint8_t op = ops[3 * i];
    const uint16_t arg = ReadU16(ops + 3 * i + 1);
    switch (op % 6) {
      case 0: {  // pin a block (mixes hits, misses, evictions, Unavailable)
        auto pin = cache.Acquire(arg % 64);
        if (pin.ok()) {
          // Touch the span: a stale or misbounded pin is an ASan report.
          const auto bytes = pin.value().bytes();
          uint8_t sink = 0;
          for (const uint8_t b : bytes) sink ^= b;
          (void)sink;
          if (pins.size() < 16) pins.push_back(std::move(pin).value());
        }
        break;
      }
      case 1:  // release the oldest pin
        if (!pins.empty()) pins.erase(pins.begin());
        break;
      case 2: {  // arbitrary-extent read (cross-block assembly)
        const uint64_t offset = static_cast<uint64_t>(arg) * 7;
        const uint64_t len = 1 + static_cast<uint64_t>(ops[3 * i + 2]) * 16;
        dst.resize(len);
        (void)cache.Read(offset, dst.data(), len);
        break;
      }
      case 3: {  // fault shim: shrink or regrow the file behind the cache
        (void)::truncate(ScratchPath().c_str(),
                         static_cast<off_t>(arg % (file_len + 2)));
        break;
      }
      case 4:  // move-assign churn on the pin handles
        if (pins.size() >= 2) {
          pins[0] = std::move(pins.back());
          pins.pop_back();
        }
        break;
      default:
        (void)cache.stats();
        break;
    }
  }
}

}  // namespace
}  // namespace rne

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  rne::DriveCache(data, size);
  return 0;
}
