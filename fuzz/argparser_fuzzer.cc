// ArgParser fuzzer: the input is split on NUL bytes into an argv vector
// (the exact shape execve hands a process — embedded junk, empty strings,
// '=' forms, huge single arguments) and run through Parse with and without
// declared switches, then through every typed accessor and FlagReader.
// Statuses are ignored; only crashes and sanitizer reports count.
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/arg_parser.h"

#include "fuzz_target.h"

namespace rne {
namespace {

void DriveArgs(const uint8_t* data, size_t size) {
  // Split on NUL into at most 64 argv entries; a trailing unterminated
  // token is included (argv strings are always NUL-terminated by the time
  // the parser sees them — std::string adds that here).
  std::vector<std::string> tokens;
  size_t start = 0;
  for (size_t i = 0; i < size && tokens.size() < 64; ++i) {
    if (data[i] == '\0') {
      tokens.emplace_back(reinterpret_cast<const char*>(data + start),
                          i - start);
      start = i + 1;
    }
  }
  if (start < size && tokens.size() < 64) {
    tokens.emplace_back(reinterpret_cast<const char*>(data + start),
                        size - start);
  }
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("fuzz"));  // argv[0]: program name
  for (std::string& t : tokens) argv.push_back(t.data());
  const int argc = static_cast<int>(argv.size());

  const std::set<std::string> switches = {"mmap", "verbose", "help"};
  for (const auto& sw : {std::set<std::string>{}, switches}) {
    auto parsed = ArgParser::Parse(argc, argv.data(), 1, sw);
    if (!parsed.ok()) continue;
    const ArgParser& args = parsed.value();
    (void)args.positionals();
    // Probe both fixed keys and whatever keys the input produced, through
    // every accessor (strtol/strtod full-consumption paths included).
    std::set<std::string> seen = {"threads", "model", "mmap", ""};
    for (const std::string& t : tokens) {
      if (t.size() > 2 && t[0] == '-' && t[1] == '-') {
        seen.insert(t.substr(2));
      }
    }
    for (const std::string& key : seen) {
      (void)args.Has(key);
      (void)args.Get(key, "fallback");
      (void)args.GetInt(key, -1);
      (void)args.GetDouble(key, 0.5);
    }
    (void)args.RequireKnown({"threads", "model", "mmap", "verbose", "help"});
    FlagReader flags(args);
    (void)flags.Int("threads", 1);
    (void)flags.Real("zipf", 0.0);
    (void)flags.Str("model", "");
    (void)flags.status();
  }
}

}  // namespace
}  // namespace rne

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  rne::DriveArgs(data, size);
  return 0;
}
