// Sanitizer-agnostic corpus replay driver (see fuzz_target.h for the
// harness contract). Links against one harness's LLVMFuzzerTestOneInput and
// provides the main() that libFuzzer would otherwise supply.
//
//   replay_<target> <file-or-dir>...            replay every input once
//   replay_<target> --mutate N --seed S PATHS   then run N extra inputs
//                                               derived from the corpus by
//                                               deterministic byte mutation
//
// Replay mode is what ctest runs on every build (any compiler, any
// sanitizer leg): each committed corpus/regression input must execute
// without crashing. Mutation mode is a poor-compiler's fuzzing campaign for
// machines without Clang/libFuzzer: splice/flip/truncate corpus inputs
// under a seeded LCG so ASan/UBSan builds still explore past the seeds.
// It is breadth-only (no coverage feedback) — the real campaign is the
// libFuzzer build in CI.
#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_target.h"

namespace {

bool ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

void CollectInputs(const std::string& path, std::vector<std::string>* files) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "replay: cannot stat %s (skipped)\n", path.c_str());
    return;
  }
  if (!S_ISDIR(st.st_mode)) {
    files->push_back(path);
    return;
  }
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return;
  std::vector<std::string> entries;
  while (dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    if (name == "." || name == ".." || name == "README.md") continue;
    entries.push_back(path + "/" + name);
  }
  ::closedir(dir);
  // Deterministic order so a failure names a stable input.
  std::sort(entries.begin(), entries.end());
  for (const std::string& entry : entries) CollectInputs(entry, files);
}

// splitmix64: tiny, seedable, good enough to diversify corpus bytes.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<uint8_t> Mutate(const std::vector<std::vector<uint8_t>>& corpus,
                            uint64_t* rng, size_t max_len) {
  std::vector<uint8_t> input = corpus[NextRand(rng) % corpus.size()];
  const int rounds = 1 + static_cast<int>(NextRand(rng) % 8);
  for (int i = 0; i < rounds; ++i) {
    switch (NextRand(rng) % 6) {
      case 0:  // flip a bit
        if (!input.empty()) {
          input[NextRand(rng) % input.size()] ^=
              static_cast<uint8_t>(1u << (NextRand(rng) % 8));
        }
        break;
      case 1:  // overwrite a byte
        if (!input.empty()) {
          input[NextRand(rng) % input.size()] =
              static_cast<uint8_t>(NextRand(rng));
        }
        break;
      case 2:  // truncate
        if (!input.empty()) input.resize(NextRand(rng) % input.size());
        break;
      case 3: {  // insert a small run
        const size_t pos = input.empty() ? 0 : NextRand(rng) % input.size();
        const size_t n = 1 + NextRand(rng) % 8;
        input.insert(input.begin() + static_cast<ptrdiff_t>(pos), n,
                     static_cast<uint8_t>(NextRand(rng)));
        break;
      }
      case 4: {  // splice a window from another corpus entry
        const std::vector<uint8_t>& other =
            corpus[NextRand(rng) % corpus.size()];
        if (!other.empty()) {
          const size_t from = NextRand(rng) % other.size();
          const size_t n =
              std::min<size_t>(1 + NextRand(rng) % 64, other.size() - from);
          const size_t pos = input.empty() ? 0 : NextRand(rng) % input.size();
          input.insert(input.begin() + static_cast<ptrdiff_t>(pos),
                       other.begin() + static_cast<ptrdiff_t>(from),
                       other.begin() + static_cast<ptrdiff_t>(from + n));
        }
        break;
      }
      case 5: {  // overwrite a u32 with a boundary value
        if (input.size() >= 4) {
          static const uint32_t kBoundary[] = {
              0,          1,           0x7fffffffu, 0x80000000u,
              0xffffffffu, 0xfffffffeu, 0x40u,      0x10000u};
          const uint32_t v = kBoundary[NextRand(rng) % 8];
          const size_t pos = NextRand(rng) % (input.size() - 3);
          std::memcpy(input.data() + pos, &v, 4);
        }
        break;
      }
    }
  }
  if (input.size() > max_len) input.resize(max_len);
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t mutations = 0;
  uint64_t seed = 1;
  size_t max_len = 1 << 16;
  std::string dump_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mutate" && i + 1 < argc) {
      mutations = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-len" && i + 1 < argc) {
      max_len = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--dump" && i + 1 < argc) {
      dump_path = argv[++i];
    } else {
      CollectInputs(arg, &files);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--mutate N] [--seed S] [--max-len L] "
                 "[--dump crash.bin] <file-or-dir>...\n",
                 argv[0]);
    return 2;
  }
  std::vector<std::vector<uint8_t>> corpus;
  size_t replayed = 0;
  for (const std::string& file : files) {
    std::vector<uint8_t> bytes;
    if (!ReadFile(file, &bytes)) {
      std::fprintf(stderr, "replay: cannot read %s\n", file.c_str());
      return 2;
    }
    // Print before executing: on a crash the last line names the input.
    std::fprintf(stderr, "replay: %s (%zu bytes)\n", file.c_str(),
                 bytes.size());
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++replayed;
    corpus.push_back(std::move(bytes));
  }
  uint64_t rng = seed;
  for (uint64_t i = 0; i < mutations; ++i) {
    const std::vector<uint8_t> input = Mutate(corpus, &rng, max_len);
    if (!dump_path.empty()) {
      // Written before execution: if the next call crashes the process,
      // this file holds the offending input, ready to commit under
      // regressions/ once minimized.
      std::ofstream dump(dump_path, std::ios::binary | std::ios::trunc);
      dump.write(reinterpret_cast<const char*>(input.data()),
                 static_cast<std::streamsize>(input.size()));
    }
    if ((i & 0x3ff) == 0) {
      std::fprintf(stderr, "replay: mutation %llu/%llu (seed %llu)\n",
                   static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(mutations),
                   static_cast<unsigned long long>(seed));
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::fprintf(stderr, "replay: %zu corpus inputs + %llu mutations OK\n",
               replayed, static_cast<unsigned long long>(mutations));
  return 0;
}
