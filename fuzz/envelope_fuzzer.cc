// Envelope fuzzer: arbitrary bytes through BinaryReader (v1/v2 header,
// section table, CRC paths), MappedEnvelope::Open, and every typed Load —
// Rne, QuantizedRne, ContractionHierarchy, H2HIndex, AltIndex, GTree,
// PartitionHierarchy — across heap / mmap / cold-mmap / block-cache modes.
//
// Input layout: byte 0 selects the index kind and load modes; the rest is
// the file image. The image is exercised twice: once raw (header rejection
// paths stay covered) and once after FixupEnvelope() re-seals the outer
// magic, version, payload size, and the three CRC layers — so mutations of
// the *inner* metadata survive the envelope's checksums and reach the typed
// parsers, which is where the depth is. The libFuzzer build applies the
// same fixup inside a custom mutator; the replay build applies it here so
// corpus entries behave identically in both.
//
// Statuses are ignored by design: a corrupt file must load as an error, not
// as a crash, a sanitizer report, or an allocation proportional to a forged
// length field.
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/gtree.h"
#include "baselines/h2h.h"
#include "core/quantized.h"
#include "core/rne.h"
#include "graph/generators.h"
#include "partition/hierarchy.h"
#include "util/crc32c.h"
#include "util/mmap_file.h"
#include "util/serialize.h"

#include "fuzz_target.h"

namespace rne {
namespace {

constexpr uint32_t kKindMagics[] = {
    kRneMagic, kQuantMagic, kChMagic,        kH2hMagic,
    kAltMagic, kGTreeMagic, kHierarchyMagic,
};
constexpr size_t kNumKinds = sizeof(kKindMagics) / sizeof(kKindMagics[0]);

// Small connected graph for the loaders that cross-check against one
// (ALT, G-tree). Built once; loads never mutate it.
const Graph& FuzzGraph() {
  static const Graph* g = [] {
    RoadNetworkConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.seed = 7;
    return new Graph(MakeRoadNetwork(cfg));
  }();
  return *g;
}

// One scratch file per process, overwritten per input (the file-based
// loaders and mmap need a real path).
const std::string& ScratchPath() {
  static const std::string* path = [] {
    return new std::string("/tmp/rne_envelope_fuzz." +
                           std::to_string(::getpid()) + ".bin");
  }();
  return *path;
}

bool WriteScratch(const uint8_t* data, size_t size) {
  std::ofstream out(ScratchPath(), std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(size));
  return static_cast<bool>(out);
}

// Re-seals the envelope around whatever the mutation produced: outer magic,
// a valid version, the selected index kind's magic, a payload size that
// fits the file, and the header / section-table / payload CRCs. Inner
// metadata stays untouched — that is the attack surface. Returns false when
// the image is too small to hold a header.
bool FixupEnvelope(uint8_t* file, size_t size, uint32_t index_magic) {
  if (size < kEnvelopeHeaderSize + kEnvelopeTrailerSize) return false;
  std::memcpy(file + 0, &kEnvelopeMagic, 4);
  uint32_t version = 0;
  std::memcpy(&version, file + 4, 4);
  version = (version % 2 == 0) ? kFormatVersionV2 : kFormatVersionV1;
  std::memcpy(file + 4, &version, 4);
  std::memcpy(file + 8, &index_magic, 4);
  const uint32_t flags = 0;
  std::memcpy(file + 12, &flags, 4);
  uint64_t payload_size = 0;
  uint64_t payload_off = kEnvelopeHeaderSize;
  if (version == kFormatVersionV1) {
    payload_size = size - kEnvelopeHeaderSize - kEnvelopeTrailerSize;
  } else {
    // Keep whatever section count the mutation chose, clamped so the table
    // fits, then re-seal the table CRC. Entry contents stay as mutated.
    uint64_t avail = size - kEnvelopeHeaderSize;
    if (avail < 8) return false;
    avail -= 8;  // count + table CRC
    uint32_t count = 0;
    std::memcpy(&count, file + kEnvelopeHeaderSize, 4);
    if (count > avail / kSectionEntrySize) {
      count %= static_cast<uint32_t>(avail / kSectionEntrySize + 1);
      std::memcpy(file + kEnvelopeHeaderSize, &count, 4);
    }
    const uint64_t table_bytes = 4 + uint64_t{count} * kSectionEntrySize + 4;
    uint32_t table_crc = Crc32c(file + kEnvelopeHeaderSize, 4);
    table_crc = Crc32cExtend(table_crc, file + kEnvelopeHeaderSize + 4,
                             uint64_t{count} * kSectionEntrySize);
    std::memcpy(file + kEnvelopeHeaderSize + table_bytes - 4, &table_crc, 4);
    payload_off = kEnvelopeHeaderSize + table_bytes;
    const uint64_t after_table = size - payload_off;
    if (after_table < kEnvelopeTrailerSize) return false;
    // Respect a mutated payload size when it fits (sections may follow the
    // trailer); otherwise claim everything up to the trailer.
    std::memcpy(&payload_size, file + 16, 8);
    if (payload_size > after_table - kEnvelopeTrailerSize) {
      payload_size = after_table - kEnvelopeTrailerSize;
    }
  }
  std::memcpy(file + 16, &payload_size, 8);
  const uint32_t header_crc = Crc32c(file, 24);
  std::memcpy(file + 24, &header_crc, 4);
  const uint32_t payload_crc = Crc32c(file + payload_off, payload_size);
  std::memcpy(file + payload_off + payload_size, &payload_crc, 4);
  return true;
}

void DriveTypedLoads(size_t kind, uint8_t modes) {
  const std::string& path = ScratchPath();
  LoadOptions cold;
  cold.mode = LoadMode::kMmapCold;
  LoadOptions blocks;
  blocks.mode = LoadMode::kBlockCache;
  blocks.block_bytes = 512;
  blocks.block_count = 4;
  switch (kind) {
    case 0: {
      (void)Rne::Load(path);
      if (modes & 1) {
        LoadOptions mapped;
        mapped.mode = LoadMode::kMmap;
        (void)Rne::Load(path, mapped);
      }
      if (modes & 2) (void)Rne::Load(path, cold);
      break;
    }
    case 1: {
      (void)QuantizedRne::Load(path);
      LoadOptions mapped;
      mapped.mode = LoadMode::kMmap;
      if (modes & 1) (void)QuantizedRne::Load(path, mapped);
      if (modes & 2) (void)QuantizedRne::Load(path, cold);
      if (modes & 4) (void)QuantizedRne::Load(path, blocks);
      break;
    }
    case 2:
      (void)ContractionHierarchy::Load(path);
      break;
    case 3:
      (void)H2HIndex::Load(path);
      break;
    case 4:
      (void)AltIndex::Load(path, FuzzGraph());
      break;
    case 5:
      (void)GTree::Load(path, FuzzGraph());
      if (modes & 1) {
        LoadOptions mapped;
        mapped.mode = LoadMode::kMmap;
        (void)GTree::Load(path, FuzzGraph(), mapped);
      }
      break;
    default:
      (void)PartitionHierarchy::Load(path);
      break;
  }
}

void DriveOneImage(const uint8_t* file, size_t size, size_t kind,
                   uint8_t modes) {
  // Memory-mode reader first: header/table validation, payload drain, CRC
  // trailer, and streamed section verification with no file involved.
  {
    BinaryReader r(file, size, "fuzz-mem", kKindMagics[kind]);
    if (r.ok()) {
      (void)r.Finish();
      (void)r.VerifyAllSections();
    }
  }
  if (!WriteScratch(file, size)) return;
  // Envelope inspection (any-kind magic) and the mmap open path.
  (void)InspectEnvelope(ScratchPath());
  {
    auto env = MappedEnvelope::Open(ScratchPath(), kKindMagics[kind],
                                    LoadMode::kMmap);
    if (env.ok()) (void)env.value()->EnsureAllVerified();
  }
  DriveTypedLoads(kind, modes);
}

}  // namespace
}  // namespace rne

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2) return 0;
  const size_t kind = data[0] % rne::kNumKinds;
  const uint8_t modes = data[0] / rne::kNumKinds;
  const uint8_t* file = data + 1;
  const size_t file_size = size - 1;
  rne::DriveOneImage(file, file_size, kind, modes);
  // Second pass with the envelope re-sealed so inner-metadata mutations get
  // past the CRCs. Skipped when the image cannot hold a header.
  std::vector<uint8_t> fixed(file, file + file_size);
  if (rne::FixupEnvelope(fixed.data(), fixed.size(),
                         rne::kKindMagics[kind])) {
    rne::DriveOneImage(fixed.data(), fixed.size(), kind, modes);
  }
  return 0;
}

#ifdef RNE_LIBFUZZER
// Structure-aware mutator: mutate freely, then re-seal the envelope so the
// interesting bytes (section tables, typed metadata) survive the checksum
// gauntlet instead of dying at the header. A fraction of outputs is left
// raw so the rejection paths stay explored too.
extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned seed) {
  const size_t n = LLVMFuzzerMutate(data, size, max_size);
  if (n >= 2 && seed % 4 != 0) {
    (void)rne::FixupEnvelope(data + 1, n - 1,
                             rne::kKindMagics[data[0] % rne::kNumKinds]);
  }
  return n;
}
#endif
