// Contract shared by every fuzz harness in this directory.
//
// A harness is one translation unit defining LLVMFuzzerTestOneInput (and
// optionally LLVMFuzzerCustomMutator). The same .cc builds two ways:
//
//   * libFuzzer binary (RNE_ENABLE_FUZZERS=ON, Clang): linked with
//     -fsanitize=fuzzer, which supplies main() and drives the harness with
//     coverage-guided mutation. RNE_LIBFUZZER is defined; only then may the
//     harness reference LLVMFuzzerMutate (it lives in the libFuzzer
//     runtime).
//   * Replay binary (always built, any compiler/sanitizer): linked with
//     replay_driver.cc, whose main() feeds committed corpus and regression
//     files — plus an optional deterministic mutation campaign — through
//     the same entry point. This is what makes every found crash a
//     permanent ctest regression.
//
// Harness rules: no global mutable state across inputs (one input must not
// change the verdict on the next), bounded memory per input, and statuses
// are ignored — only crashes, sanitizer reports, and CHECK failures count.
#ifndef RNE_FUZZ_FUZZ_TARGET_H_
#define RNE_FUZZ_FUZZ_TARGET_H_

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#ifdef RNE_LIBFUZZER
// Provided by the libFuzzer runtime; only callable from a custom mutator.
extern "C" size_t LLVMFuzzerMutate(uint8_t* data, size_t size,
                                   size_t max_size);
#endif

#endif  // RNE_FUZZ_FUZZ_TARGET_H_
