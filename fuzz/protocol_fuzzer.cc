// Line-protocol fuzzer: arbitrary byte streams through
// serve::LineProtocolHandler::Consume against a real in-memory engine
// (exact Dijkstra on a small generator graph) — the exact seam the TCP
// reactor feeds. The input's own bytes schedule the chunking, so frames
// arrive split and merged every way: mid-verb, mid-number, CR and LF in
// separate reads, oversized unterminated tails, interleaved verbs. A small
// max_line_bytes and batch keep the oversize and batching machinery in
// constant rotation, and Finish() runs at end of stream so the
// partial-line-drop accounting is on the fuzzed path too.
#include <cstdint>
#include <string>
#include <string_view>

#include "graph/generators.h"
#include "serve/query_engine.h"
#include "serve/server_loop.h"

#include "fuzz_target.h"

namespace rne::serve {
namespace {

QueryEngine& FuzzEngine() {
  static QueryEngine* engine = [] {
    RoadNetworkConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.seed = 7;
    static const Graph graph = MakeRoadNetwork(cfg);
    EngineOptions options;
    options.num_threads = 1;
    auto* e = new QueryEngine(options);
    BackendContext ctx;
    ctx.graph = &graph;
    e->AddBackend("dijkstra", ctx);
    (void)e->WaitUntilLoaded();
    return e;
  }();
  return *engine;
}

void DriveStream(const uint8_t* data, size_t size) {
  ServerLoopOptions options;
  options.batch = 3;           // exercise batching + order-preserving flushes
  options.max_line_bytes = 200;  // reachable oversize limit
  LineProtocolHandler handler(FuzzEngine(), options);
  std::string out;
  size_t pos = 0;
  bool open = true;
  while (open && pos < size) {
    // Self-scheduled chunking: the byte at the cut point sizes the next
    // chunk, so mutations reshape frame boundaries as well as content.
    const size_t chunk_len =
        static_cast<size_t>(data[pos] % 23) + 1 > size - pos
            ? size - pos
            : static_cast<size_t>(data[pos] % 23) + 1;
    open = handler.Consume(
        std::string_view(reinterpret_cast<const char*>(data + pos),
                         chunk_len),
        &out);
    pos += chunk_len;
    // Bound the transcript: answers are not the interesting output here.
    if (out.size() > (1u << 20)) out.clear();
  }
  if (open) handler.Finish(&out);
}

}  // namespace
}  // namespace rne::serve

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  rne::serve::DriveStream(data, size);
  return 0;
}
