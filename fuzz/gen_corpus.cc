// Seed-corpus generator. Writes the committed seed inputs under
// fuzz/corpus/<target>/ from *real* artifacts: every persistable index kind
// built on a small generator graph and saved through the production writers
// (v2 sectioned and, where supported, legacy v1), plus protocol transcripts
// shaped like bench_serve client traffic, realistic tool argv vectors, and
// block-cache geometry/op streams. Run from the repo root after changing
// the on-disk format or the harness input layouts:
//
//   ./build/fuzz/gen_fuzz_corpus fuzz/corpus
//
// Regenerated files are committed; determinism comes from fixed seeds.
#include <sys/stat.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "partition/hierarchy.h"
#include "tests/index_kinds.h"
#include "util/fault_injection.h"
#include "util/serialize.h"

namespace rne {
namespace {

// Must match envelope_fuzzer.cc's selector layout.
constexpr uint32_t kKindMagics[] = {
    kRneMagic, kQuantMagic, kChMagic,        kH2hMagic,
    kAltMagic, kGTreeMagic, kHierarchyMagic,
};
constexpr size_t kNumKinds = sizeof(kKindMagics) / sizeof(kKindMagics[0]);

size_t KindIndex(uint32_t magic) {
  for (size_t i = 0; i < kNumKinds; ++i) {
    if (kKindMagics[i] == magic) return i;
  }
  return 0;
}

bool WriteCorpusFile(const std::string& path,
                     const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "gen_corpus: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "gen_corpus: %s (%zu bytes)\n", path.c_str(),
               bytes.size());
  return true;
}

std::vector<uint8_t> Bytes(const std::string& text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

bool EmitEnvelopeSeeds(const std::string& dir, const Graph& g) {
  const std::string scratch = dir + "/.scratch.bin";
  bool ok = true;
  for (const IndexKindParam& kind : AllIndexKinds()) {
    const Status saved = kind.build_and_save(g, scratch);
    if (!saved.ok()) {
      std::fprintf(stderr, "gen_corpus: build %s failed: %s\n", kind.name,
                   saved.ToString().c_str());
      ok = false;
      continue;
    }
    std::vector<uint8_t> file;
    if (!fault::ReadFileBytes(scratch, &file).ok()) return false;
    // Selector byte: kind in the low radix, all load modes enabled above.
    std::vector<uint8_t> input;
    input.push_back(static_cast<uint8_t>(KindIndex(kind.magic) +
                                         kNumKinds * 7));
    input.insert(input.end(), file.begin(), file.end());
    ok = WriteCorpusFile(dir + "/" + std::string(kind.name) + "_v2.bin",
                         input) &&
         ok;
  }
  // A partition hierarchy (the seventh typed loader) and a legacy v1 file
  // (Rne supports both formats) so the v1 decode path has a seed too.
  {
    HierarchyOptions options;
    PartitionHierarchy hier = PartitionHierarchy::Build(g, options);
    if (hier.Save(scratch).ok()) {
      std::vector<uint8_t> file;
      if (fault::ReadFileBytes(scratch, &file).ok()) {
        std::vector<uint8_t> input;
        input.push_back(static_cast<uint8_t>(6 + kNumKinds * 7));
        input.insert(input.end(), file.begin(), file.end());
        ok = WriteCorpusFile(dir + "/PartitionHierarchy_v2.bin", input) && ok;
      }
    }
  }
  {
    const Status saved =
        Rne::Build(g, SmallRneConfig()).Save(scratch, SaveFormat::kLegacyV1);
    if (saved.ok()) {
      std::vector<uint8_t> file;
      if (fault::ReadFileBytes(scratch, &file).ok()) {
        std::vector<uint8_t> input;
        input.push_back(static_cast<uint8_t>(0 + kNumKinds * 7));
        input.insert(input.end(), file.begin(), file.end());
        ok = WriteCorpusFile(dir + "/Rne_v1.bin", input) && ok;
      }
    }
  }
  (void)std::remove(scratch.c_str());
  return ok;
}

bool EmitProtocolSeeds(const std::string& dir) {
  // Shaped like real bench_serve pipelined traffic plus every control verb,
  // CRLF framing, blanks, and malformed edges the tests pin.
  bool ok = true;
  ok = WriteCorpusFile(
           dir + "/pipelined_queries.txt",
           Bytes("QUERY 0 5\nQUERY 3 12\nKNN 0 3\nQUERY 7 7\nQUERY 1 14\n"
                 "KNN 9 1\nQUERY 2 13\nQUERY 4 11\nSTATS\n")) &&
       ok;
  ok = WriteCorpusFile(dir + "/control_verbs.txt",
                       Bytes("STATS\nMETRICS\nRELOAD\nRELOAD /tmp/x.model\n"
                             "QUERY 0 1\nMETRICS\n")) &&
       ok;
  ok = WriteCorpusFile(dir + "/crlf_and_blanks.txt",
                       Bytes("QUERY 0 1\r\n\r\n\nKNN 2 2\r\nQUERY 5 6\n")) &&
       ok;
  ok = WriteCorpusFile(
           dir + "/malformed.txt",
           Bytes("QUERY 1\nQUERY a b\nQUERY -1 5\nKNN\nKNN 3 -2\n"
                 "FROBNICATE 1 2\nQUERY 4294967296 0\nKNN 0 99999999\n"
                 "QUERY  0\t1\nquery 0 1\n")) &&
       ok;
  ok = WriteCorpusFile(dir + "/partial_tail.txt",
                       Bytes("QUERY 0 1\nQUERY 2 3")) &&
       ok;
  ok = WriteCorpusFile(
           dir + "/oversized_line.txt",
           Bytes("QUERY 0 1\n" + std::string(300, 'A') + "\nKNN 1 2\n")) &&
       ok;
  return ok;
}

bool EmitArgparserSeeds(const std::string& dir) {
  // NUL-separated argv vectors mirroring real rne_server / bench_serve
  // invocations plus the negative space the parser must reject cleanly.
  const std::string nul(1, '\0');
  bool ok = true;
  ok = WriteCorpusFile(dir + "/server_invocation.bin",
                       Bytes("--model" + nul + "bench.model" + nul +
                             "--mmap" + nul + "--listen" + nul + "4719" +
                             nul + "--cache" + nul + "4096")) &&
       ok;
  ok = WriteCorpusFile(dir + "/bench_invocation.bin",
                       Bytes("--threads" + nul + "2" + nul + "--zipf" + nul +
                             "1.0" + nul + "--batches" + nul + "1,64" + nul +
                             "positional")) &&
       ok;
  ok = WriteCorpusFile(dir + "/negative_space.bin",
                       Bytes("--" + nul + "--flag=" + nul + "--dup" + nul +
                             "1" + nul + "--dup" + nul + "2" + nul +
                             "--threads" + nul + "0x10" + nul + "--zipf" +
                             nul + "1e999" + nul + "--missing")) &&
       ok;
  return ok;
}

bool EmitBlockcacheSeeds(const std::string& dir) {
  // Harness layout: [u16 block_bytes sel][u8 block_count sel][u8 file len
  // sel][4 pad][file content][3-byte ops...]. One seed with in-bounds
  // traffic, one that truncates the file mid-stream, one tiny-geometry.
  std::vector<uint8_t> cozy = {64, 0, 3, 12, 0, 0, 0, 0};
  for (int i = 0; i < 204; ++i) cozy.push_back(static_cast<uint8_t>(i));
  const uint8_t cozy_ops[] = {0, 0, 0,  0, 1, 0,  2, 3, 2,  5, 0, 0,
                              0, 2, 0,  4, 0, 0,  2, 9, 1,  1, 0, 0};
  cozy.insert(cozy.end(), cozy_ops, cozy_ops + sizeof(cozy_ops));
  bool ok = WriteCorpusFile(dir + "/inbounds_traffic.bin", cozy);

  std::vector<uint8_t> shrink = {16, 0, 1, 8, 0, 0, 0, 0};
  for (int i = 0; i < 136; ++i) shrink.push_back(static_cast<uint8_t>(i));
  const uint8_t shrink_ops[] = {0, 0, 0,  3, 1, 0,  0, 2, 0,  2, 4, 4,
                                3, 0, 0,  0, 0, 0,  2, 0, 8};
  shrink.insert(shrink.end(), shrink_ops, shrink_ops + sizeof(shrink_ops));
  ok = WriteCorpusFile(dir + "/shrinking_file.bin", shrink) && ok;

  std::vector<uint8_t> tiny = {0, 0, 0, 1, 0, 0, 0, 0, 0xAB};
  const uint8_t tiny_ops[] = {0, 0, 0, 2, 0, 0, 5, 0, 0};
  tiny.insert(tiny.end(), tiny_ops, tiny_ops + sizeof(tiny_ops));
  ok = WriteCorpusFile(dir + "/tiny_geometry.bin", tiny) && ok;
  return ok;
}

}  // namespace
}  // namespace rne

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "fuzz/corpus";
  for (const char* sub : {"envelope", "protocol", "argparser", "blockcache"}) {
    const std::string dir = root + "/" + sub;
    ::mkdir(root.c_str(), 0755);
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "gen_corpus: cannot create %s\n", dir.c_str());
      return 1;
    }
  }
  rne::RoadNetworkConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.seed = 7;
  const rne::Graph graph = rne::MakeRoadNetwork(cfg);
  bool ok = rne::EmitEnvelopeSeeds(root + "/envelope", graph);
  ok = rne::EmitProtocolSeeds(root + "/protocol") && ok;
  ok = rne::EmitArgparserSeeds(root + "/argparser") && ok;
  ok = rne::EmitBlockcacheSeeds(root + "/blockcache") && ok;
  return ok ? 0 : 1;
}
