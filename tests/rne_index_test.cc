// Tests for the range/kNN tree index (Sec VI). The index must agree
// *exactly* with brute force over the embedding metric — its pruning is
// lossless by the triangle inequality; approximation only enters through the
// embedding itself, which is tested elsewhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/rne_index.h"
#include "graph/generators.h"

namespace rne {
namespace {

class RneIndexTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RoadNetworkConfig cfg;
    cfg.rows = 14;
    cfg.cols = 14;
    cfg.seed = 9;
    graph_ = new Graph(MakeRoadNetwork(cfg));
    RneConfig config;
    config.dim = 16;
    config.train.level_samples = 2000;
    config.train.vertex_samples = 8000;
    config.train.finetune_rounds = 0;
    model_ = new Rne(Rne::Build(*graph_, config));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete graph_;
    model_ = nullptr;
    graph_ = nullptr;
  }

  static std::vector<std::pair<VertexId, double>> BruteKnn(
      VertexId source, size_t k, const std::vector<VertexId>& targets) {
    std::vector<std::pair<VertexId, double>> all;
    for (const VertexId t : targets) {
      all.emplace_back(t, model_->Query(source, t));
    }
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    all.resize(std::min(k, all.size()));
    return all;
  }

  static Graph* graph_;
  static Rne* model_;
};

Graph* RneIndexTest::graph_ = nullptr;
Rne* RneIndexTest::model_ = nullptr;

std::vector<VertexId> AllVertices(const Graph& g) {
  std::vector<VertexId> v(g.NumVertices());
  for (VertexId i = 0; i < g.NumVertices(); ++i) v[i] = i;
  return v;
}

TEST_F(RneIndexTest, RangeMatchesBruteForce) {
  const RneIndex index(model_);
  const auto targets = AllVertices(*graph_);
  for (const VertexId source : {VertexId{0}, VertexId{77}, VertexId{150}}) {
    for (const double tau : {300.0, 800.0, 2000.0}) {
      auto got = index.Range(source, tau);
      std::set<VertexId> got_set(got.begin(), got.end());
      EXPECT_EQ(got_set.size(), got.size()) << "duplicates in range result";
      size_t expected = 0;
      for (const VertexId t : targets) {
        const bool in_range = model_->Query(source, t) <= tau;
        EXPECT_EQ(got_set.count(t) == 1, in_range)
            << "source " << source << " tau " << tau << " target " << t;
        expected += in_range;
      }
      EXPECT_EQ(got.size(), expected);
    }
  }
}

TEST_F(RneIndexTest, KnnMatchesBruteForce) {
  const RneIndex index(model_);
  const auto targets = AllVertices(*graph_);
  for (const VertexId source : {VertexId{3}, VertexId{111}}) {
    for (const size_t k : {1u, 5u, 20u}) {
      const auto got = index.Knn(source, k);
      const auto expected = BruteKnn(source, k, targets);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        // Distances must match; ties may order differently.
        EXPECT_NEAR(got[i].second, expected[i].second, 1e-9);
      }
      // Sorted ascending.
      for (size_t i = 1; i < got.size(); ++i) {
        EXPECT_LE(got[i - 1].second, got[i].second);
      }
    }
  }
}

TEST_F(RneIndexTest, KnnIncludesSourceWhenTarget) {
  const RneIndex index(model_);
  const auto knn = index.Knn(42, 1);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].first, 42u);
  EXPECT_DOUBLE_EQ(knn[0].second, 0.0);
}

TEST_F(RneIndexTest, SubsetTargets) {
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < graph_->NumVertices(); v += 7) targets.push_back(v);
  const RneIndex index(model_, targets);
  EXPECT_EQ(index.num_targets(), targets.size());

  const auto knn = index.Knn(10, 5);
  ASSERT_EQ(knn.size(), 5u);
  const std::set<VertexId> target_set(targets.begin(), targets.end());
  for (const auto& [v, d] : knn) {
    EXPECT_TRUE(target_set.count(v)) << "kNN returned a non-target";
  }
  const auto expected = BruteKnn(10, 5, targets);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(knn[i].second, expected[i].second, 1e-9);
  }

  for (const VertexId v : index.Range(10, 1500.0)) {
    EXPECT_TRUE(target_set.count(v));
  }
}

TEST_F(RneIndexTest, EdgeCases) {
  const RneIndex index(model_);
  EXPECT_TRUE(index.Knn(0, 0).empty());
  EXPECT_TRUE(index.Range(0, -1.0).empty());
  // k larger than target count returns everything.
  std::vector<VertexId> three = {1, 2, 3};
  const RneIndex small(model_, three);
  EXPECT_EQ(small.Knn(0, 100).size(), 3u);
}

TEST_F(RneIndexTest, EmptyTargetSet) {
  const RneIndex index(model_, std::vector<VertexId>{});
  EXPECT_EQ(index.num_targets(), 0u);
  EXPECT_TRUE(index.Knn(0, 5).empty());
  EXPECT_TRUE(index.Range(0, 1000.0).empty());
}

}  // namespace
}  // namespace rne
