// Synthetic-time unit tests for the serving resilience primitives: the
// per-backend circuit breaker state machine (trip conditions, backoff,
// half-open probe discipline) and the AIMD load shedder. No sleeping —
// both classes take explicit steady_clock time points.
#include <gtest/gtest.h>

#include <chrono>

#include "serve/resilience.h"

namespace rne::serve {
namespace {

using Clock = CircuitBreaker::Clock;
using std::chrono::milliseconds;

/// Arbitrary but fixed epoch so tests do not depend on the real clock.
Clock::time_point T0() { return Clock::time_point(std::chrono::hours(1)); }

BreakerOptions FastBreaker() {
  BreakerOptions opt;
  opt.consecutive_failures = 3;
  opt.initial_backoff = milliseconds(100);
  opt.max_backoff = milliseconds(1000);
  opt.backoff_multiplier = 2.0;
  opt.jitter = 0.0;  // deterministic backoff deadlines
  return opt;
}

TEST(CircuitBreakerTest, TripsOnConsecutiveFailures) {
  CircuitBreaker breaker(FastBreaker());
  const auto t = T0();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure(t);
  breaker.RecordFailure(t);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow(t));
  breaker.RecordFailure(t);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.Allow(t));
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveCount) {
  CircuitBreaker breaker(FastBreaker());
  const auto t = T0();
  for (int round = 0; round < 5; ++round) {
    breaker.RecordFailure(t);
    breaker.RecordFailure(t);
    breaker.RecordSuccess(t);  // streak broken before the trip threshold
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, TripsOnWindowedErrorRate) {
  BreakerOptions opt = FastBreaker();
  opt.consecutive_failures = 1000;  // only the rate condition can trip
  opt.window = 16;
  opt.min_samples = 10;
  opt.error_rate_threshold = 0.5;
  CircuitBreaker breaker(opt);
  const auto t = T0();
  // Interleave so no failure streak forms: 5 successes, then failures.
  for (int i = 0; i < 5; ++i) breaker.RecordSuccess(t);
  for (int i = 0; i < 4; ++i) breaker.RecordFailure(t);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed) << "9 samples < min 10";
  breaker.RecordFailure(t);  // 5 failures / 10 samples hits the 0.5 rate
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, OpenAdmitsSingleProbeAfterBackoff) {
  CircuitBreaker breaker(FastBreaker());
  const auto t = T0();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow(t + milliseconds(99)));
  // Backoff elapsed: exactly one probe goes through, concurrents are held.
  const auto probe_time = t + milliseconds(101);
  EXPECT_TRUE(breaker.Allow(probe_time));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(probe_time));
  EXPECT_FALSE(breaker.Allow(probe_time + milliseconds(1)));
}

TEST(CircuitBreakerTest, ProbeSuccessClosesAndResets) {
  CircuitBreaker breaker(FastBreaker());
  auto t = T0();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t);
  t += milliseconds(101);
  ASSERT_TRUE(breaker.Allow(t));
  breaker.RecordSuccess(t);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow(t));
  // The window was reset on close: it takes a full fresh streak to re-trip,
  // not one straggler failure on top of stale history.
  breaker.RecordFailure(t);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ProbeFailureDoublesBackoff) {
  CircuitBreaker breaker(FastBreaker());
  auto t = T0();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t);
  t += milliseconds(101);
  ASSERT_TRUE(breaker.Allow(t));
  breaker.RecordFailure(t);  // probe failed -> re-open, backoff 100 -> 200ms
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.Allow(t + milliseconds(150)));
  EXPECT_TRUE(breaker.Allow(t + milliseconds(201)));
}

TEST(CircuitBreakerTest, BackoffIsCappedAtMax) {
  CircuitBreaker breaker(FastBreaker());  // cap 1000ms
  auto t = T0();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t);
  // Fail 6 probes; uncapped backoff would be 100 * 2^6 = 6400ms.
  for (int i = 0; i < 6; ++i) {
    t += milliseconds(1001);
    ASSERT_TRUE(breaker.Allow(t)) << "probe " << i;
    breaker.RecordFailure(t);
  }
  EXPECT_FALSE(breaker.Allow(t + milliseconds(999)));
  EXPECT_TRUE(breaker.Allow(t + milliseconds(1001)));
}

TEST(CircuitBreakerTest, LateOutcomesWhileOpenAreIgnored) {
  CircuitBreaker breaker(FastBreaker());
  const auto t = T0();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  // Completions of requests dispatched before the trip must not re-close
  // (only the half-open probe carries that signal) nor extend the backoff.
  breaker.RecordSuccess(t);
  breaker.RecordFailure(t);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_TRUE(breaker.Allow(t + milliseconds(101)));
}

TEST(CircuitBreakerTest, DisabledBreakerAlwaysAllows) {
  BreakerOptions opt = FastBreaker();
  opt.enabled = false;
  CircuitBreaker breaker(opt);
  const auto t = T0();
  for (int i = 0; i < 100; ++i) breaker.RecordFailure(t);
  EXPECT_TRUE(breaker.Allow(t));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, JitterStaysWithinConfiguredBand) {
  BreakerOptions opt = FastBreaker();
  opt.jitter = 0.2;
  CircuitBreaker breaker(opt);
  const auto t = T0();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t);
  // First probe becomes eligible somewhere in [80ms, 120ms].
  EXPECT_FALSE(breaker.Allow(t + milliseconds(79)));
  EXPECT_TRUE(breaker.Allow(t + milliseconds(121)));
}

ShedderOptions FastShedder() {
  ShedderOptions opt;
  opt.enabled = true;
  opt.min_limit = 4;
  opt.max_limit = 64;
  opt.target_queue_wait_p95 = std::chrono::microseconds(1000);
  opt.adapt_interval = milliseconds(10);
  opt.additive_increase = 8;
  opt.multiplicative_decrease = 0.5;
  return opt;
}

constexpr int64_t kSlowWaitNs = 5'000'000;  // 5ms, far over the 1ms target
constexpr int64_t kFastWaitNs = 100'000;    // 0.1ms, well under target

TEST(AimdLoadShedderTest, StartsAtMaxAndDecreasesUnderPressure) {
  AimdLoadShedder shedder(FastShedder());
  auto t = T0();
  EXPECT_EQ(shedder.CurrentLimit(t), 64u);
  shedder.RecordQueueWait(kSlowWaitNs, t);
  // Within the first interval nothing adapts yet.
  EXPECT_EQ(shedder.CurrentLimit(t + milliseconds(5)), 64u);
  EXPECT_EQ(shedder.CurrentLimit(t + milliseconds(11)), 32u);
  EXPECT_EQ(shedder.decreases(), 1u);
}

TEST(AimdLoadShedderTest, IncreasesAdditivelyUnderTarget) {
  AimdLoadShedder shedder(FastShedder());
  auto t = T0();
  shedder.RecordQueueWait(kSlowWaitNs, t);  // arms the adaptation clock
  ASSERT_EQ(shedder.CurrentLimit(t + milliseconds(11)), 32u);
  t += milliseconds(11);
  shedder.RecordQueueWait(kFastWaitNs, t);
  EXPECT_EQ(shedder.CurrentLimit(t + milliseconds(11)), 40u);
}

TEST(AimdLoadShedderTest, EmptyIntervalStillClimbs) {
  AimdLoadShedder shedder(FastShedder());
  auto t = T0();
  shedder.RecordQueueWait(kSlowWaitNs, t);
  ASSERT_EQ(shedder.CurrentLimit(t + milliseconds(11)), 32u);
  // No samples at all (everything shed): the limit must self-heal upward
  // instead of staying collapsed forever.
  EXPECT_EQ(shedder.CurrentLimit(t + milliseconds(22)), 40u);
  EXPECT_EQ(shedder.CurrentLimit(t + milliseconds(33)), 48u);
}

TEST(AimdLoadShedderTest, LimitIsClampedToConfiguredBounds) {
  AimdLoadShedder shedder(FastShedder());
  auto t = T0();
  shedder.RecordQueueWait(kSlowWaitNs, t);  // arm
  // Repeated pressure: 64 -> 32 -> 16 -> 8 -> 4, then the floor holds.
  for (int i = 0; i < 8; ++i) {
    t += milliseconds(11);
    shedder.RecordQueueWait(kSlowWaitNs, t - milliseconds(1));
    (void)shedder.CurrentLimit(t);  // tick
  }
  EXPECT_EQ(shedder.CurrentLimit(t), 4u);
  // Recovery climbs back and caps at max_limit.
  for (int i = 0; i < 20; ++i) {
    t += milliseconds(11);
    (void)shedder.CurrentLimit(t);
  }
  EXPECT_EQ(shedder.CurrentLimit(t), 64u);
}

TEST(AimdLoadShedderTest, DisabledShedderPinsToMax) {
  ShedderOptions opt = FastShedder();
  opt.enabled = false;
  AimdLoadShedder shedder(opt);
  auto t = T0();
  for (int i = 0; i < 10; ++i) {
    shedder.RecordQueueWait(kSlowWaitNs, t);
    t += milliseconds(11);
  }
  EXPECT_EQ(shedder.CurrentLimit(t), 64u);
  EXPECT_EQ(shedder.decreases(), 0u);
}

}  // namespace
}  // namespace rne::serve
