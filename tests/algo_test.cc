// Tests for the shortest-path algorithms: Dijkstra (all variants),
// bidirectional Dijkstra, A*, landmark selection, and the batched distance
// sampler. Ground truth comes from Floyd-Warshall on small random graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/astar.h"
#include "algo/bidirectional_dijkstra.h"
#include "algo/dijkstra.h"
#include "algo/distance_sampler.h"
#include "algo/landmarks.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace rne {
namespace {

/// Random connected graph for property sweeps.
Graph RandomGraph(size_t n, double extra_edge_prob, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) {
    b.SetCoord(v, {rng.UniformReal(0, 100), rng.UniformReal(0, 100)});
  }
  // Random spanning tree keeps it connected.
  for (VertexId v = 1; v < n; ++v) {
    b.AddEdge(v, static_cast<VertexId>(rng.UniformIndex(v)),
              rng.UniformReal(1.0, 10.0));
  }
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(extra_edge_prob)) {
        b.AddEdge(u, v, rng.UniformReal(1.0, 10.0));
      }
    }
  }
  return b.Build();
}

std::vector<std::vector<double>> FloydWarshall(const Graph& g) {
  const size_t n = g.NumVertices();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, kInfDistance));
  for (VertexId v = 0; v < n; ++v) {
    d[v][v] = 0.0;
    for (const Edge& e : g.Neighbors(v)) {
      d[v][e.to] = std::min(d[v][e.to], e.weight);
    }
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (d[i][k] + d[k][j] < d[i][j]) d[i][j] = d[i][k] + d[k][j];
      }
    }
  }
  return d;
}

// --------------------------------------------------- Dijkstra vs brute force

class ShortestPathSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShortestPathSweep, DijkstraMatchesFloydWarshall) {
  const Graph g = RandomGraph(40, 0.05, GetParam());
  const auto truth = FloydWarshall(g);
  DijkstraSearch search(g);
  for (VertexId s = 0; s < g.NumVertices(); s += 7) {
    const auto& dist = search.AllDistances(s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      EXPECT_NEAR(dist[t], truth[s][t], 1e-9);
    }
  }
}

TEST_P(ShortestPathSweep, PointToPointMatchesSssp) {
  const Graph g = RandomGraph(50, 0.03, GetParam() + 100);
  DijkstraSearch search(g);
  Rng rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const double p2p = search.Distance(s, t);
    DijkstraSearch fresh(g);
    EXPECT_NEAR(p2p, fresh.AllDistances(s)[t], 1e-9);
  }
}

TEST_P(ShortestPathSweep, BidirectionalMatchesDijkstra) {
  const Graph g = RandomGraph(60, 0.04, GetParam() + 200);
  DijkstraSearch dij(g);
  BidirectionalDijkstra bidir(g);
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_NEAR(bidir.Distance(s, t), dij.Distance(s, t), 1e-9);
  }
}

TEST_P(ShortestPathSweep, AStarGeoMatchesDijkstraOnRoadNetwork) {
  RoadNetworkConfig cfg;
  cfg.rows = 10;
  cfg.cols = 10;
  cfg.seed = GetParam();
  const Graph g = MakeRoadNetwork(cfg);
  DijkstraSearch dij(g);
  AStarSearch astar(g);
  Rng rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_NEAR(astar.DistanceGeo(s, t), dij.Distance(s, t), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShortestPathSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------- Dijkstra variants

TEST(DijkstraTest, SelfDistanceZero) {
  const Graph g = RandomGraph(10, 0.1, 9);
  DijkstraSearch search(g);
  EXPECT_DOUBLE_EQ(search.Distance(3, 3), 0.0);
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(2, 3, 1.0);
  const Graph g = b.Build();
  DijkstraSearch search(g);
  EXPECT_EQ(search.Distance(0, 3), kInfDistance);
  EXPECT_EQ(search.AllDistances(0)[2], kInfDistance);
}

TEST(DijkstraTest, WorkspaceReuseIsClean) {
  const Graph g = RandomGraph(30, 0.05, 10);
  DijkstraSearch reused(g);
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    DijkstraSearch fresh(g);
    EXPECT_NEAR(reused.Distance(s, t), fresh.Distance(s, t), 1e-12)
        << "stale state leaked across queries";
  }
}

TEST(DijkstraTest, MultiTargetMatchesFullSssp) {
  const Graph g = RandomGraph(50, 0.05, 11);
  DijkstraSearch search(g);
  const std::vector<VertexId> targets = {1, 7, 7, 23, 49};
  const auto multi = search.MultiTargetDistances(0, targets);
  DijkstraSearch fresh(g);
  const auto& full = fresh.AllDistances(0);
  ASSERT_EQ(multi.size(), targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(multi[i], full[targets[i]], 1e-12);
  }
}

TEST(DijkstraTest, WithinRadiusSortedAndComplete) {
  const Graph g = RandomGraph(60, 0.05, 12);
  DijkstraSearch search(g);
  const double radius = 8.0;
  const auto within = search.WithinRadius(5, radius);
  // Sorted by distance.
  for (size_t i = 1; i < within.size(); ++i) {
    EXPECT_LE(within[i - 1].second, within[i].second);
  }
  // Matches the SSSP ground truth.
  DijkstraSearch fresh(g);
  const auto& full = fresh.AllDistances(5);
  size_t expected = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (full[v] <= radius) ++expected;
  }
  EXPECT_EQ(within.size(), expected);
  for (const auto& [v, d] : within) EXPECT_NEAR(full[v], d, 1e-12);
}

TEST(DijkstraTest, PathIsValidAndShortest) {
  const Graph g = RandomGraph(40, 0.06, 13);
  DijkstraSearch search(g);
  const double dist = search.Distance(0, 39);
  const auto path = search.Path(0, 39);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 39u);
  double sum = 0.0;
  for (size_t i = 1; i < path.size(); ++i) {
    const double w = g.EdgeWeight(path[i - 1], path[i]);
    ASSERT_NE(w, kInfDistance) << "path uses a non-edge";
    sum += w;
  }
  EXPECT_NEAR(sum, dist, 1e-9);
}

TEST(AStarTest, CustomHeuristicZeroIsDijkstra) {
  const Graph g = RandomGraph(30, 0.05, 14);
  AStarSearch astar(g);
  DijkstraSearch dij(g);
  const auto zero = [](VertexId, VertexId) { return 0.0; };
  EXPECT_NEAR(astar.Distance(2, 27, zero), dij.Distance(2, 27), 1e-9);
}

// --------------------------------------------------------------- landmarks

TEST(LandmarksTest, RandomSelectionDistinct) {
  const Graph g = MakeGridNetwork(6, 6);
  Rng rng(20);
  const auto lm = SelectLandmarksRandom(g, 10, rng);
  EXPECT_EQ(lm.size(), 10u);
  std::set<VertexId> unique(lm.begin(), lm.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(LandmarksTest, FarthestSelectionSpreadsOut) {
  const Graph g = MakeGridNetwork(10, 10, 100.0, 0.0, 0.0, 21);
  Rng rng(21);
  const auto lm = SelectLandmarksFarthest(g, 4, rng);
  ASSERT_EQ(lm.size(), 4u);
  // Pairwise network distances between farthest landmarks must exceed the
  // expected distance of random pairs by a clear margin.
  DijkstraSearch search(g);
  double min_pair = kInfDistance;
  for (size_t i = 0; i < lm.size(); ++i) {
    for (size_t j = i + 1; j < lm.size(); ++j) {
      min_pair = std::min(min_pair, search.Distance(lm[i], lm[j]));
    }
  }
  EXPECT_GT(min_pair, 300.0);  // grid is 900 wide; random pairs average ~600
}

TEST(LandmarksTest, CountClampedToGraphSize) {
  const Graph g = MakeGridNetwork(2, 2);
  Rng rng(22);
  EXPECT_EQ(SelectLandmarksFarthest(g, 100, rng).size(), 4u);
}

// --------------------------------------------------------- DistanceSampler

TEST(DistanceSamplerTest, MatchesDijkstra) {
  const Graph g = RandomGraph(50, 0.05, 23);
  DistanceSampler sampler(g, 2);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    pairs.emplace_back(static_cast<VertexId>(rng.UniformIndex(50)),
                       static_cast<VertexId>(rng.UniformIndex(50)));
  }
  const auto samples = sampler.ComputeDistances(pairs);
  DijkstraSearch search(g);
  ASSERT_EQ(samples.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(samples[i].s, pairs[i].first);
    EXPECT_EQ(samples[i].t, pairs[i].second);
    EXPECT_NEAR(samples[i].dist,
                search.Distance(pairs[i].first, pairs[i].second), 1e-9);
  }
}

TEST(DistanceSamplerTest, RandomPairsDistinctEndpoints) {
  const Graph g = RandomGraph(20, 0.1, 24);
  DistanceSampler sampler(g, 1);
  Rng rng(24);
  const auto samples = sampler.RandomPairs(100, rng);
  ASSERT_EQ(samples.size(), 100u);
  for (const auto& s : samples) {
    EXPECT_NE(s.s, s.t);
    EXPECT_GT(s.dist, 0.0);
  }
}

}  // namespace
}  // namespace rne
