// Tests for 8-bit quantized serving: footprint, accuracy envelope vs the
// float model, and persistence.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "algo/distance_sampler.h"
#include "core/evaluation.h"
#include "core/quantized.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace rne {
namespace {

class QuantizedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RoadNetworkConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    cfg.seed = 23;
    graph_ = new Graph(MakeRoadNetwork(cfg));
    RneConfig config;
    config.dim = 32;
    config.train.level_samples = 4000;
    config.train.vertex_samples = 25000;
    config.train.finetune_rounds = 1;
    config.train.finetune_samples = 6000;
    model_ = new Rne(Rne::Build(*graph_, config));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete graph_;
  }
  static Graph* graph_;
  static Rne* model_;
};
Graph* QuantizedTest::graph_ = nullptr;
Rne* QuantizedTest::model_ = nullptr;

TEST_F(QuantizedTest, FourTimesSmallerThanFloatModel) {
  const QuantizedRne q(*model_);
  EXPECT_EQ(q.NumVertices(), model_->NumVertices());
  EXPECT_EQ(q.dim(), model_->dim());
  // 1 byte vs 4 bytes per entry, plus the tiny per-dim step table.
  EXPECT_LT(q.IndexBytes(), model_->IndexBytes() / 3);
}

TEST_F(QuantizedTest, QueriesTrackTheFloatModelClosely) {
  const QuantizedRne q(*model_);
  Rng rng(23);
  double worst = 0.0;
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const double full = model_->Query(s, t);
    const double quant = q.Query(s, t);
    if (full > 100.0) {
      worst = std::max(worst, std::abs(quant - full) / full);
    }
  }
  // 8-bit rounding noise: per-dim error <= step/2, summed; stays small
  // relative to real distances.
  EXPECT_LT(worst, 0.10);
}

TEST_F(QuantizedTest, EndToEndErrorNearFloatModel) {
  DistanceSampler sampler(*graph_);
  Rng rng(24);
  const auto val = sampler.RandomPairs(500, rng);
  const double full_err =
      EvaluateErrors(
          [&](VertexId s, VertexId t) { return model_->Query(s, t); }, val)
          .mean_rel;
  const QuantizedRne q(*model_);
  const double quant_err =
      EvaluateErrors([&](VertexId s, VertexId t) { return q.Query(s, t); },
                     val)
          .mean_rel;
  // Quantization may add a little error but must not destroy the model.
  EXPECT_LT(quant_err, full_err + 0.02);
}

TEST_F(QuantizedTest, MetricAxiomsSurviveQuantization) {
  const QuantizedRne q(*model_);
  Rng rng(25);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto b = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto c = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    EXPECT_DOUBLE_EQ(q.Query(a, a), 0.0);
    EXPECT_DOUBLE_EQ(q.Query(a, b), q.Query(b, a));
    EXPECT_LE(q.Query(a, c), q.Query(a, b) + q.Query(b, c) + 1e-9);
  }
}

TEST_F(QuantizedTest, SaveLoadRoundTrip) {
  const QuantizedRne q(*model_);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rne_quant_test.bin").string();
  ASSERT_TRUE(q.Save(path).ok());
  auto loaded = QuantizedRne::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Rng rng(26);
  for (int i = 0; i < 100; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    EXPECT_EQ(loaded.value().Query(s, t), q.Query(s, t));
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rne
