// Tests for the RNE core: embedding matrix, hierarchical model, spatial
// grid, sample-selection strategies, the trainer's convergence behaviour,
// and the Rne facade (build, query, save/load).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "algo/distance_sampler.h"
#include "core/hierarchical_model.h"
#include "core/rne.h"
#include "core/sampler.h"
#include "core/spatial_grid.h"
#include "graph/generators.h"

namespace rne {
namespace {

Graph SmallRoadNetwork(uint64_t seed = 7) {
  RoadNetworkConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.seed = seed;
  return MakeRoadNetwork(cfg);
}

PartitionHierarchy SmallHierarchy(const Graph& g) {
  HierarchyOptions opt;
  opt.fanout = 4;
  opt.leaf_threshold = 32;
  return PartitionHierarchy::Build(g, opt);
}

// --------------------------------------------------------- EmbeddingMatrix

TEST(EmbeddingMatrixTest, RowAccessAndInit) {
  EmbeddingMatrix m(4, 8);
  Rng rng(1);
  m.RandomInit(rng, 0.5);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.dim(), 8u);
  bool nonzero = false;
  for (size_t r = 0; r < m.rows(); ++r) {
    for (const float x : m.Row(r)) {
      EXPECT_LE(std::abs(x), 0.5f);
      nonzero |= (x != 0.0f);
    }
  }
  EXPECT_TRUE(nonzero);
  EXPECT_EQ(m.MemoryBytes(), 4u * 8u * sizeof(float));
}

TEST(EmbeddingMatrixTest, SerializationRoundTrip) {
  EmbeddingMatrix m(3, 5);
  Rng rng(2);
  m.RandomInit(rng, 1.0);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rne_emb_test.bin").string();
  {
    BinaryWriter w(path, 42);
    m.Write(w);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path, 42);
  EmbeddingMatrix m2;
  ASSERT_TRUE(m2.Read(r));
  ASSERT_EQ(m2.rows(), m.rows());
  ASSERT_EQ(m2.dim(), m.dim());
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t d = 0; d < m.dim(); ++d) {
      EXPECT_EQ(m2.Row(i)[d], m.Row(i)[d]);
    }
  }
  std::filesystem::remove(path);
}

// ------------------------------------------------------- HierarchicalModel

TEST(HierarchicalModelTest, GlobalIsSumOfPathLocals) {
  const Graph g = SmallRoadNetwork();
  const PartitionHierarchy h = SmallHierarchy(g);
  HierarchicalModel model(&h, 16, 1.0);
  Rng rng(3);
  model.RandomInit(rng, 0.5);

  std::vector<float> global(16);
  for (VertexId v = 0; v < g.NumVertices(); v += 13) {
    model.GlobalOf(v, global);
    std::vector<double> expected(16, 0.0);
    for (const uint32_t node : h.AncestorsOf(v)) {
      const auto local = model.NodeLocal(node);
      for (size_t d = 0; d < 16; ++d) expected[d] += local[d];
    }
    const auto vl = model.VertexLocal(v);
    for (size_t d = 0; d < 16; ++d) expected[d] += vl[d];
    for (size_t d = 0; d < 16; ++d) EXPECT_NEAR(global[d], expected[d], 1e-5);
  }
}

TEST(HierarchicalModelTest, FlattenMatchesGlobalOf) {
  const Graph g = SmallRoadNetwork();
  const PartitionHierarchy h = SmallHierarchy(g);
  HierarchicalModel model(&h, 8, 1.0);
  Rng rng(4);
  model.RandomInit(rng, 0.5);
  const EmbeddingMatrix flat = model.FlattenVertices();
  std::vector<float> global(8);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    model.GlobalOf(v, global);
    for (size_t d = 0; d < 8; ++d) EXPECT_EQ(flat.Row(v)[d], global[d]);
  }
}

TEST(HierarchicalModelTest, NodeGlobalsConsistentWithFlattenNodes) {
  const Graph g = SmallRoadNetwork();
  const PartitionHierarchy h = SmallHierarchy(g);
  HierarchicalModel model(&h, 8, 1.0);
  Rng rng(5);
  model.RandomInit(rng, 0.5);
  const EmbeddingMatrix nodes = model.FlattenNodes();
  std::vector<float> buf(8);
  for (uint32_t id = 0; id < h.num_nodes(); ++id) {
    model.NodeGlobalOf(id, buf);
    for (size_t d = 0; d < 8; ++d) EXPECT_NEAR(nodes.Row(id)[d], buf[d], 1e-5);
  }
}

TEST(HierarchicalModelTest, EstimateUsesConfiguredMetric) {
  const Graph g = SmallRoadNetwork();
  const PartitionHierarchy h = SmallHierarchy(g);
  HierarchicalModel model(&h, 8, 2.0);
  Rng rng(6);
  model.RandomInit(rng, 0.5);
  std::vector<float> a(8), b(8);
  model.GlobalOf(0, a);
  model.GlobalOf(100, b);
  EXPECT_NEAR(model.Estimate(0, 100), L2Dist(a, b), 1e-6);
}

// ---------------------------------------------------------------- SpatialGrid

TEST(SpatialGridTest, CellAssignmentCoversAllVertices) {
  const Graph g = SmallRoadNetwork();
  const SpatialGrid grid(g, 4);
  size_t total = 0;
  for (size_t c = 0; c < 16; ++c) total += grid.CellVertices(c).size();
  EXPECT_EQ(total, g.NumVertices());
}

TEST(SpatialGridTest, BucketOfPairIsGridManhattan) {
  const Graph g = MakeGridNetwork(8, 8, 100.0, 0.0, 0.0, 9);
  const SpatialGrid grid(g, 4);
  for (VertexId v = 0; v < g.NumVertices(); v += 9) {
    EXPECT_EQ(grid.BucketOfPair(v, v), 0u);
  }
  EXPECT_EQ(grid.num_buckets(), 7u);
}

TEST(SpatialGridTest, SamplePairLandsInRequestedBucket) {
  const Graph g = SmallRoadNetwork();
  const SpatialGrid grid(g, 6);
  Rng rng(10);
  for (size_t b = 0; b < grid.num_buckets(); ++b) {
    if (!grid.BucketNonEmpty(b)) continue;
    for (int i = 0; i < 50; ++i) {
      VertexId s, t;
      ASSERT_TRUE(grid.SamplePair(b, rng, &s, &t));
      EXPECT_EQ(grid.BucketOfPair(s, t), b);
    }
  }
}

// -------------------------------------------------------------- samplers

TEST(SamplerTest, RandomVertexPairsDistinct) {
  Rng rng(11);
  for (const auto& [s, t] : RandomVertexPairs(50, 200, rng)) {
    EXPECT_NE(s, t);
    EXPECT_LT(s, 50u);
    EXPECT_LT(t, 50u);
  }
}

TEST(SamplerTest, SubgraphLevelPairsStayInsidePartitions) {
  const Graph g = SmallRoadNetwork();
  const PartitionHierarchy h = SmallHierarchy(g);
  Rng rng(12);
  const uint32_t level = 1;
  const auto parts = h.PartitionAtLevel(level);
  // vertex -> part
  std::vector<uint32_t> part_of(g.NumVertices(), UINT32_MAX);
  for (const uint32_t id : parts) {
    for (const VertexId v : h.node(id).vertices) part_of[v] = id;
  }
  for (const auto& [s, t] : SubgraphLevelPairs(h, level, 500, rng)) {
    EXPECT_NE(part_of[s], UINT32_MAX);
    EXPECT_NE(part_of[t], UINT32_MAX);
  }
}

TEST(SamplerTest, LandmarkPairsAnchorOnLandmarks) {
  Rng rng(13);
  const std::vector<VertexId> landmarks = {3, 17, 42};
  for (const auto& [s, t] : LandmarkPairs(landmarks, 100, 300, rng)) {
    EXPECT_TRUE(s == 3 || s == 17 || s == 42);
    EXPECT_NE(s, t);
  }
}

TEST(SamplerTest, ErrorBasedLocalPicksWorstBucket) {
  const Graph g = SmallRoadNetwork();
  const SpatialGrid grid(g, 4);
  Rng rng(14);
  std::vector<double> errors(grid.num_buckets(), 0.0);
  // Mark one non-empty bucket as worst.
  size_t worst = 0;
  for (size_t b = grid.num_buckets(); b-- > 0;) {
    if (grid.BucketNonEmpty(b)) {
      errors[b] = 0.1;
      worst = b;
    }
  }
  errors[worst] = 5.0;
  const auto pairs =
      ErrorBasedPairs(grid, errors, FineTuneStrategy::kLocal, 100, rng);
  ASSERT_FALSE(pairs.empty());
  for (const auto& [s, t] : pairs) {
    EXPECT_EQ(grid.BucketOfPair(s, t), worst);
  }
}

TEST(SamplerTest, ErrorBasedGlobalSpreadsOverBuckets) {
  const Graph g = SmallRoadNetwork();
  const SpatialGrid grid(g, 4);
  Rng rng(15);
  std::vector<double> errors(grid.num_buckets(), 1.0);
  const auto pairs =
      ErrorBasedPairs(grid, errors, FineTuneStrategy::kGlobal, 500, rng);
  std::set<size_t> buckets;
  for (const auto& [s, t] : pairs) buckets.insert(grid.BucketOfPair(s, t));
  EXPECT_GT(buckets.size(), 2u);
}

TEST(SamplerTest, ErrorBasedEmptyWhenNoErrors) {
  const Graph g = SmallRoadNetwork();
  const SpatialGrid grid(g, 4);
  Rng rng(16);
  std::vector<double> errors(grid.num_buckets(), 0.0);
  EXPECT_TRUE(
      ErrorBasedPairs(grid, errors, FineTuneStrategy::kGlobal, 100, rng)
          .empty());
}

// ----------------------------------------------------------------- Trainer

TEST(TrainerTest, ErrorDecreasesAcrossPhases) {
  const Graph g = SmallRoadNetwork();
  const PartitionHierarchy h = SmallHierarchy(g);
  TrainConfig cfg;
  cfg.dim = 32;
  cfg.level_samples = 4000;
  cfg.vertex_samples = 20000;
  cfg.finetune_rounds = 1;
  cfg.finetune_samples = 5000;
  Trainer trainer(g, h, cfg);

  DistanceSampler sampler(g);
  Rng rng(17);
  const auto val = sampler.RandomPairs(500, rng);

  trainer.TrainHierarchyPhase();
  const double after_phase1 = trainer.MeanRelativeError(val);
  trainer.TrainVertexPhase();
  const double after_phase2 = trainer.MeanRelativeError(val);
  trainer.FineTunePhase();
  const double after_phase3 = trainer.MeanRelativeError(val);

  EXPECT_LT(after_phase1, 0.6) << "phase 1 should get coarse structure right";
  EXPECT_LT(after_phase2, after_phase1);
  EXPECT_LT(after_phase3, 0.08) << "full pipeline should reach a few percent";
}

TEST(TrainerTest, ProgressCurveRecorded) {
  const Graph g = SmallRoadNetwork();
  const PartitionHierarchy h = SmallHierarchy(g);
  TrainConfig cfg;
  cfg.dim = 16;
  cfg.level_samples = 1000;
  cfg.level_epochs = 2;
  cfg.vertex_samples = 2000;
  cfg.vertex_epochs = 2;
  cfg.finetune_rounds = 0;
  Trainer trainer(g, h, cfg);
  DistanceSampler sampler(g);
  Rng rng(18);
  trainer.SetValidation(sampler.RandomPairs(200, rng));
  trainer.TrainAll();
  const auto& progress = trainer.progress();
  ASSERT_GT(progress.size(), 2u);
  // Cumulative sample counts strictly increase.
  for (size_t i = 1; i < progress.size(); ++i) {
    EXPECT_GT(progress[i].samples_processed, progress[i - 1].samples_processed);
  }
  // Final error far below the initial one.
  EXPECT_LT(progress.back().mean_rel_error, progress.front().mean_rel_error);
}

// Hogwild sharded SGD must converge to the same quality as the sequential
// reference: same seed, same samples, only num_threads differs. The
// trajectories diverge (update interleaving differs), so compare final
// validation error, not weights.
TEST(TrainerTest, ThreadCountInvariance) {
  const Graph g = SmallRoadNetwork();
  const PartitionHierarchy h = SmallHierarchy(g);
  DistanceSampler sampler(g);
  Rng rng(23);
  const auto val = sampler.RandomPairs(400, rng);

  const auto train_with = [&](size_t threads) {
    TrainConfig cfg;
    cfg.dim = 32;
    cfg.level_samples = 4000;
    cfg.vertex_samples = 20000;
    cfg.finetune_rounds = 0;
    cfg.num_threads = threads;
    cfg.seed = 13;
    Trainer trainer(g, h, cfg);
    trainer.TrainAll();
    EXPECT_EQ(trainer.sgd_threads(), threads > 1 ? threads : 1);
    return trainer.MeanRelativeError(val);
  };

  const double sequential = train_with(1);
  const double parallel = train_with(4);
  EXPECT_LT(sequential, 0.15);
  EXPECT_LT(parallel, 0.15);
  // Within 10% absolute-quality drift of each other (acceptance criterion).
  EXPECT_NEAR(parallel, sequential, 0.1 * (sequential + 0.01) + 0.02);
}

TEST(TrainerTest, FlatModelTrains) {
  const Graph g = SmallRoadNetwork();
  HierarchyOptions opt;
  opt.leaf_threshold = g.NumVertices();
  const PartitionHierarchy h = PartitionHierarchy::Build(g, opt);
  TrainConfig cfg;
  cfg.dim = 32;
  cfg.vertex_samples = 30000;
  cfg.vertex_epochs = 10;
  cfg.finetune_rounds = 0;
  Trainer trainer(g, h, cfg);
  trainer.TrainVertexPhase();
  DistanceSampler sampler(g);
  Rng rng(19);
  EXPECT_LT(trainer.MeanRelativeError(sampler.RandomPairs(300, rng)), 0.35);
}

// -------------------------------------------------------------- Rne facade

TEST(RneTest, BuildQuerySaveLoad) {
  const Graph g = SmallRoadNetwork();
  RneConfig config;
  config.dim = 32;
  config.train.level_samples = 4000;
  config.train.vertex_samples = 20000;
  config.train.finetune_rounds = 1;
  config.train.finetune_samples = 5000;
  RneBuildStats stats;
  const Rne model = Rne::Build(g, config, &stats);

  EXPECT_EQ(model.dim(), 32u);
  EXPECT_EQ(model.NumVertices(), g.NumVertices());
  EXPECT_GT(stats.train_seconds, 0.0);
  EXPECT_GT(stats.samples_processed, 0u);
  EXPECT_EQ(model.IndexBytes(), g.NumVertices() * 32 * sizeof(float));

  // Metric axioms on queries.
  EXPECT_DOUBLE_EQ(model.Query(5, 5), 0.0);
  EXPECT_NEAR(model.Query(3, 99), model.Query(99, 3), 1e-6);

  // Accuracy sanity.
  DistanceSampler sampler(g);
  Rng rng(20);
  const auto val = sampler.RandomPairs(400, rng);
  double err = 0.0;
  for (const auto& s : val) {
    err += std::abs(model.Query(s.s, s.t) - s.dist) / s.dist;
  }
  EXPECT_LT(err / val.size(), 0.08);

  // Save / load round trip preserves queries bit-exactly.
  const std::string path =
      (std::filesystem::temp_directory_path() / "rne_model_test.bin").string();
  ASSERT_TRUE(model.Save(path).ok());
  auto loaded = Rne::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (int i = 0; i < 100; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_EQ(loaded.value().Query(s, t), model.Query(s, t));
  }
  std::filesystem::remove(path);
}

TEST(RneTest, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rne_garbage.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a model";
  }
  EXPECT_FALSE(Rne::Load(path).ok());
  std::filesystem::remove(path);
}

TEST(RneTest, NonHierarchicalBuildWorks) {
  const Graph g = SmallRoadNetwork();
  RneConfig config;
  config.dim = 16;
  config.hierarchical = false;
  config.fine_tune = false;
  config.train.vertex_samples = 10000;
  config.train.vertex_epochs = 4;
  const Rne model = Rne::Build(g, config);
  EXPECT_EQ(model.hierarchy().num_nodes(), 1u);
  EXPECT_GT(model.Query(0, 200), 0.0);
}

}  // namespace
}  // namespace rne
