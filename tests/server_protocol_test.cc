// rne_server line-protocol tests: RunServerLoop driven in-process through
// stringstreams against a real engine (exact Dijkstra backend on a small
// generator graph). Covers malformed lines, boundary kNN parameters (k=0,
// k > |V|), out-of-range vertex ids, answer ordering around parse errors,
// and the STATS / METRICS response shapes.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/rne.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "serve/model_manager.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "serve/server_loop.h"

namespace rne::serve {
namespace {

Graph SmallNetwork() {
  RoadNetworkConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.seed = 7;
  return MakeRoadNetwork(cfg);
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

class ServerProtocolTest : public ::testing::Test {
 protected:
  ServerProtocolTest() : graph_(SmallNetwork()), engine_(MakeOptions()) {
    BackendContext ctx;
    ctx.graph = &graph_;
    engine_.AddBackend("dijkstra", ctx);
    EXPECT_TRUE(engine_.WaitUntilLoaded().ok());
  }

  static EngineOptions MakeOptions() {
    EngineOptions options;
    options.num_threads = 2;
    return options;
  }

  std::vector<std::string> Run(const std::string& input, size_t batch = 4) {
    std::istringstream in(input);
    std::ostringstream out;
    ServerLoopOptions options;
    options.batch = batch;
    RunServerLoop(in, out, engine_, options);
    return Lines(out.str());
  }

  Graph graph_;
  QueryEngine engine_;
};

TEST_F(ServerProtocolTest, AnswersDistanceAndKnn) {
  const auto lines = Run("QUERY 0 5\nKNN 0 3\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("DIST ", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find("backend=dijkstra"), std::string::npos);
  EXPECT_NE(lines[0].find("exact=1"), std::string::npos);
  // k=3 from vertex 0 always includes 0 itself at distance 0.
  EXPECT_EQ(lines[1].rfind("KNN 0:0.00", 0), 0u) << lines[1];
  EXPECT_EQ(Lines(lines[1]).size(), 1u);
}

TEST_F(ServerProtocolTest, MalformedLinesGetUsageErrors) {
  const auto lines = Run(
      "QUERY 1\n"          // missing target
      "QUERY a b\n"        // non-numeric
      "QUERY -1 5\n"       // negative id
      "KNN\n"              // missing everything
      "KNN 3 -2\n"         // negative k
      "FROBNICATE 1 2\n"   // unknown verb
      "\n"                 // blank: ignored entirely
      "QUERY 2 3\n");
  ASSERT_EQ(lines.size(), 7u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(lines[i], "ERR INVALID_ARGUMENT: usage: QUERY <s> <t>") << i;
  }
  EXPECT_EQ(lines[3], "ERR INVALID_ARGUMENT: usage: KNN <s> <k>");
  EXPECT_EQ(lines[4], "ERR INVALID_ARGUMENT: usage: KNN <s> <k>");
  EXPECT_EQ(lines[5], "ERR INVALID_ARGUMENT: unknown verb 'FROBNICATE'");
  EXPECT_EQ(lines[6].rfind("DIST ", 0), 0u) << lines[6];
}

TEST_F(ServerProtocolTest, AnswersStayInRequestOrderAroundParseErrors) {
  // The bad line arrives while two queries are still buffered (batch=8
  // would otherwise hold them); its error must not overtake their answers.
  const auto lines = Run("QUERY 0 1\nQUERY 0 2\nQUERY oops\nQUERY 0 3\n",
                         /*batch=*/8);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].rfind("DIST ", 0), 0u);
  EXPECT_EQ(lines[1].rfind("DIST ", 0), 0u);
  EXPECT_EQ(lines[2], "ERR INVALID_ARGUMENT: usage: QUERY <s> <t>");
  EXPECT_EQ(lines[3].rfind("DIST ", 0), 0u);
}

TEST_F(ServerProtocolTest, OutOfRangeIdsAreEngineErrorsNotCrashes) {
  const size_t n = graph_.NumVertices();
  const auto lines = Run("QUERY 0 " + std::to_string(n) + "\nQUERY " +
                         std::to_string(10 * n) + " 0\nKNN " +
                         std::to_string(n) + " 2\n");
  ASSERT_EQ(lines.size(), 3u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.rfind("ERR ", 0), 0u) << line;
    EXPECT_NE(line.find("out of range"), std::string::npos) << line;
  }
}

TEST_F(ServerProtocolTest, IdsBeyondVertexIdRangeAreRejectedNotTruncated) {
  // 4294967296 == 2^32 used to truncate through a 32-bit parse into vertex
  // 0 and answer as if the client had asked for it (found by the protocol
  // fuzzer; pinned by fuzz/regressions/protocol/id_truncation.txt).
  const auto lines = Run(
      "QUERY 4294967296 0\n"
      "KNN 4294967297 1\n"
      "QUERY 18446744073709551617 0\n");  // > 2^64: parse must fail too
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "ERR INVALID_ARGUMENT: usage: QUERY <s> <t>");
  EXPECT_EQ(lines[1], "ERR INVALID_ARGUMENT: usage: KNN <s> <k>");
  EXPECT_EQ(lines[2], "ERR INVALID_ARGUMENT: usage: QUERY <s> <t>");
}

TEST_F(ServerProtocolTest, UnterminatedFinalLineIsCountedNotSilentlyLost) {
  // A connection that closes mid-line used to discard the tail without a
  // trace. Finish() must still flush buffered answers and account for the
  // dropped partial under net.partial_line_dropped.
  auto* counter = obs::MetricsRegistry::Global().GetCounter(
      "net.partial_line_dropped");
  const uint64_t before = counter->Value();
  ServerLoopOptions options;
  options.batch = 8;  // keep the complete line buffered until Finish
  LineProtocolHandler handler(engine_, options);
  std::string out;
  EXPECT_TRUE(handler.Consume("QUERY 0 1\nQUERY 2 3", &out));
  EXPECT_EQ(handler.frames(), 1u);  // only the terminated line is a frame
  handler.Finish(&out);
  const auto lines = Lines(out);
  ASSERT_EQ(lines.size(), 1u) << out;
  EXPECT_EQ(lines[0].rfind("DIST ", 0), 0u) << lines[0];
  EXPECT_EQ(handler.partial_lines_dropped(), 1u);
  EXPECT_EQ(counter->Value(), before + 1);
  // Finish on a cleanly-terminated stream counts nothing.
  LineProtocolHandler clean(engine_, options);
  std::string out2;
  EXPECT_TRUE(clean.Consume("QUERY 0 1\n", &out2));
  clean.Finish(&out2);
  EXPECT_EQ(clean.partial_lines_dropped(), 0u);
  EXPECT_EQ(counter->Value(), before + 1);
}

TEST_F(ServerProtocolTest, ConsumeReassemblesSplitFrames) {
  // Byte-at-a-time delivery (worst-case TCP fragmentation) must produce
  // exactly the same transcript as one large write.
  const std::string stream = "QUERY 0 5\r\nKNN 0 2\nQUERY 3 4\n";
  ServerLoopOptions options;
  LineProtocolHandler handler(engine_, options);
  std::string out;
  for (char c : stream) {
    EXPECT_TRUE(handler.Consume(std::string_view(&c, 1), &out));
  }
  handler.Finish(&out);
  EXPECT_EQ(handler.frames(), 3u);
  EXPECT_EQ(handler.partial_lines_dropped(), 0u);
  const auto lines = Lines(out);
  ASSERT_EQ(lines.size(), 3u) << out;
  EXPECT_EQ(lines[0].rfind("DIST ", 0), 0u);
  EXPECT_EQ(lines[1].rfind("KNN ", 0), 0u);
  EXPECT_EQ(lines[2].rfind("DIST ", 0), 0u);
  // Transcript parity with single-write delivery of the same bytes.
  LineProtocolHandler whole(engine_, options);
  std::string out_whole;
  EXPECT_TRUE(whole.Consume(stream, &out_whole));
  whole.Finish(&out_whole);
  EXPECT_EQ(out, out_whole);
}

TEST_F(ServerProtocolTest, OversizedUnterminatedLineClosesAfterFlush) {
  ServerLoopOptions options;
  options.batch = 8;
  options.max_line_bytes = 32;
  LineProtocolHandler handler(engine_, options);
  std::string out;
  // A buffered answer is owed before the oversized garbage arrives; the
  // ERR must not overtake it.
  EXPECT_TRUE(handler.Consume("QUERY 0 1\n", &out));
  EXPECT_FALSE(handler.Consume(std::string(64, 'A'), &out));
  const auto lines = Lines(out);
  ASSERT_EQ(lines.size(), 2u) << out;
  EXPECT_EQ(lines[0].rfind("DIST ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("ERR INVALID_ARGUMENT: line exceeds", 0), 0u)
      << lines[1];
}

TEST_F(ServerProtocolTest, KnnBoundaryKs) {
  const size_t n = graph_.NumVertices();
  const auto lines =
      Run("KNN 0 0\nKNN 0 " + std::to_string(4 * n) + "\n");
  ASSERT_EQ(lines.size(), 2u);
  // k=0 is a well-formed request with an empty answer.
  EXPECT_EQ(lines[0], "KNN");
  // k > |V| clamps to every reachable vertex.
  std::istringstream big(lines[1]);
  std::string verb;
  big >> verb;
  EXPECT_EQ(verb, "KNN");
  size_t results = 0;
  std::string entry;
  while (big >> entry) ++results;
  EXPECT_EQ(results, n);
}

TEST_F(ServerProtocolTest, StatsReportsEngineCounters) {
  const auto lines = Run("QUERY 0 1\nSTATS\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1].rfind("STATS {", 0), 0u) << lines[1];
  EXPECT_NE(lines[1].find("\"served\": 1"), std::string::npos) << lines[1];
  EXPECT_NE(lines[1].find("\"latency_ns\""), std::string::npos);
}

TEST_F(ServerProtocolTest, MetricsReportsRegistryJson) {
  const auto lines = Run("QUERY 0 1\nKNN 0 2\nMETRICS\n");
  ASSERT_EQ(lines.size(), 3u);
  const std::string& metrics = lines[2];
  EXPECT_EQ(metrics.rfind("METRICS {", 0), 0u) << metrics;
  for (const char* key : {"\"counters\"", "\"gauges\"", "\"histograms\"",
                          "\"serve.backend.dijkstra.latency_ns\"",
                          "\"serve.served\""}) {
    EXPECT_NE(metrics.find(key), std::string::npos) << key;
  }
}

TEST_F(ServerProtocolTest, StatsFlushesBufferedRequestsFirst) {
  // STATS forces the pending batch out, so its snapshot includes the
  // preceding queries even when the batch threshold was not reached.
  const auto lines = Run("QUERY 0 1\nQUERY 0 2\nSTATS\n", /*batch=*/64);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("DIST ", 0), 0u);
  EXPECT_EQ(lines[1].rfind("DIST ", 0), 0u);
  EXPECT_NE(lines[2].find("\"served\": 2"), std::string::npos) << lines[2];
}

TEST_F(ServerProtocolTest, ReturnsNonEmptyLineCount) {
  std::istringstream in("QUERY 0 1\n\n\nSTATS\nBAD\n");
  std::ostringstream out;
  EXPECT_EQ(RunServerLoop(in, out, engine_), 3u);
}

TEST_F(ServerProtocolTest, ReloadWithoutManagerReportsFailedPrecondition) {
  const auto lines = Run("RELOAD /tmp/whatever.rne\nQUERY 0 1\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "ERR FAILED_PRECONDITION: no model manager attached "
            "(start rne_server with --model)");
  EXPECT_EQ(lines[1].rfind("DIST ", 0), 0u) << "loop keeps serving after";
}

TEST_F(ServerProtocolTest, ReloadVerbSwapsAndReportsVersion) {
  // A real (tiny, flat) model file; swap correctness itself is covered in
  // model_manager_test — this exercises the protocol wrapper.
  RneConfig config;
  config.dim = 16;
  config.hierarchical = false;
  config.fine_tune = false;
  config.train.vertex_samples = 5000;
  config.train.vertex_epochs = 2;
  const Rne model = Rne::Build(graph_, config);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rne_proto_reload.bin")
          .string();
  ASSERT_TRUE(model.Save(path).ok());

  ModelManager manager;
  std::istringstream in("QUERY 0 5\nRELOAD " + path +
                        "\nRELOAD\nRELOAD /nonexistent/model.rne\n");
  std::ostringstream out;
  ServerLoopOptions options;
  options.batch = 64;  // the buffered query must be flushed by RELOAD
  options.model_manager = &manager;
  RunServerLoop(in, out, engine_, options);
  const auto lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].rfind("DIST ", 0), 0u) << "answers stay ordered";
  EXPECT_EQ(lines[1], "RELOAD OK version=1 vertices=" +
                          std::to_string(graph_.NumVertices()));
  // Bare RELOAD re-runs the last path and publishes a new generation.
  EXPECT_EQ(lines[2], "RELOAD OK version=2 vertices=" +
                          std::to_string(graph_.NumVertices()));
  // A bad path is an ERR line and the published model is untouched.
  EXPECT_EQ(lines[3].rfind("ERR ", 0), 0u) << lines[3];
  EXPECT_EQ(manager.version(), 2u);
  std::filesystem::remove(path);
}

TEST_F(ServerProtocolTest, DistLinesCarryTheCachedFlag) {
  // Without a cache every answer is cached=0; with one, the second
  // identical query is a hit and says so on the wire.
  const auto uncached = Run("QUERY 0 5\nQUERY 0 5\n");
  ASSERT_EQ(uncached.size(), 2u);
  for (const auto& line : uncached) {
    EXPECT_NE(line.find(" cached=0"), std::string::npos) << line;
  }

  ResultCache cache;
  std::istringstream in("QUERY 0 5\nQUERY 0 5\n");
  std::ostringstream out;
  ServerLoopOptions options;
  options.batch = 1;  // flush per line so the repeat sees the insert
  options.cache = &cache;
  RunServerLoop(in, out, engine_, options);
  const auto lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find(" cached=0"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find(" cached=1"), std::string::npos) << lines[1];
  EXPECT_EQ(cache.Stats().hits, 1u);
}

TEST_F(ServerProtocolTest, StatsReportsCacheAndConnectionShape) {
  // No cache attached: the field is explicit null, not absent, so
  // dashboards can rely on the key.
  const auto plain = Run("STATS\n");
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_NE(plain[0].find("\"cache\": null"), std::string::npos) << plain[0];
  EXPECT_NE(plain[0].find("\"active_connections\": 0"), std::string::npos)
      << plain[0];

  ResultCache cache;
  std::istringstream in("QUERY 0 5\nQUERY 0 5\nSTATS\n");
  std::ostringstream out;
  ServerLoopOptions options;
  options.batch = 1;
  options.cache = &cache;
  RunServerLoop(in, out, engine_, options);
  const auto lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  const std::string& stats = lines[2];
  EXPECT_EQ(stats.rfind("STATS {", 0), 0u) << stats;
  for (const char* key :
       {"\"cache\": {", "\"hits\": 1", "\"misses\": 1", "\"hit_rate\"",
        "\"generation\"", "\"active_connections\": 0"}) {
    EXPECT_NE(stats.find(key), std::string::npos) << key << " in " << stats;
  }
}

TEST_F(ServerProtocolTest, ReloadInvalidatesTheAttachedCache) {
  // RELOAD through the protocol must flush the cache: the repeat query
  // right after the swap is a miss (cached=0), not a stale hit.
  RneConfig config;
  config.dim = 16;
  config.hierarchical = false;
  config.fine_tune = false;
  config.train.vertex_samples = 5000;
  config.train.vertex_epochs = 2;
  const Rne model = Rne::Build(graph_, config);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rne_proto_cache_reload.bin")
          .string();
  ASSERT_TRUE(model.Save(path).ok());

  ModelManager manager;
  ResultCache cache;
  manager.AddPublishListener([&cache](uint64_t) { cache.Invalidate(); });
  std::istringstream in("QUERY 0 5\nQUERY 0 5\nRELOAD " + path +
                        "\nQUERY 0 5\nQUERY 0 5\n");
  std::ostringstream out;
  ServerLoopOptions options;
  options.batch = 1;
  options.cache = &cache;
  options.model_manager = &manager;
  RunServerLoop(in, out, engine_, options);
  std::filesystem::remove(path);

  const auto lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines[0].find(" cached=0"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find(" cached=1"), std::string::npos) << lines[1];
  EXPECT_EQ(lines[2].rfind("RELOAD OK", 0), 0u) << lines[2];
  EXPECT_NE(lines[3].find(" cached=0"), std::string::npos)
      << "stale hit served after RELOAD: " << lines[3];
  EXPECT_NE(lines[4].find(" cached=1"), std::string::npos) << lines[4];
  EXPECT_GE(cache.Stats().invalidations, 1u);
}

TEST_F(ServerProtocolTest, StopFlagHaltsTheLoopBeforeNewReads) {
  // Graceful drain: with the stop flag already raised, the loop exits
  // without consuming queued input (rne_server raises it from SIGINT).
  std::atomic<bool> stop{true};
  std::istringstream in("QUERY 0 1\nQUERY 0 2\n");
  std::ostringstream out;
  ServerLoopOptions options;
  options.stop = &stop;
  EXPECT_EQ(RunServerLoop(in, out, engine_, options), 0u);
  EXPECT_TRUE(out.str().empty()) << out.str();
}

}  // namespace
}  // namespace rne::serve
