// Hot model swap: ModelManager verify/load/publish pipeline, rollback on a
// corrupt or incompatible replacement, the unpublished managed backend
// falling down the engine chain, and the headline invariant — concurrent
// queries through a swapping engine never observe a failed response.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "algo/dijkstra.h"
#include "core/rne.h"
#include "graph/generators.h"
#include "serve/backend.h"
#include "serve/model_manager.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "util/fault_injection.h"
#include "util/serialize.h"

namespace rne::serve {
namespace {

Graph SmallNetwork(uint32_t rows = 8, uint32_t cols = 8) {
  RoadNetworkConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.seed = 42;
  return MakeRoadNetwork(cfg);
}

/// Flat (non-hierarchical) build: seconds of training are irrelevant here —
/// the swap machinery only cares that the file is a valid RNE model.
Rne TinyModel(const Graph& g) {
  RneConfig config;
  config.dim = 16;
  config.hierarchical = false;
  config.fine_tune = false;
  config.train.vertex_samples = 5000;
  config.train.vertex_epochs = 2;
  return Rne::Build(g, config);
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Builds and saves a tiny model for `g`, returning the file path.
std::string SaveTinyModel(const Graph& g, const std::string& name) {
  const std::string path = TempPath(name);
  const Rne model = TinyModel(g);
  EXPECT_TRUE(model.Save(path).ok());
  return path;
}

TEST(VerifyIndexFileTest, AcceptsValidFileAndChecksMagic) {
  const Graph g = SmallNetwork();
  const std::string path = SaveTinyModel(g, "rne_mm_verify.bin");
  const auto info = VerifyIndexFile(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().index_magic, kRneMagic);
  EXPECT_TRUE(VerifyIndexFile(path, kRneMagic).ok());
  // Same file, wrong expected kind: structural pass, magic gate fails.
  const auto wrong = VerifyIndexFile(path, kChMagic);
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(VerifyIndexFile("/nonexistent/model.rne").ok());
  std::filesystem::remove(path);
}

TEST(ModelManagerTest, LoadPublishesSnapshotAndBumpsVersion) {
  const Graph g = SmallNetwork();
  const std::string v1 = SaveTinyModel(g, "rne_mm_v1.bin");
  const std::string v2 = SaveTinyModel(g, "rne_mm_v2.bin");

  ModelManager manager;
  EXPECT_EQ(manager.version(), 0u);
  EXPECT_EQ(manager.Current(), nullptr);
  EXPECT_EQ(manager.Reload().code(), StatusCode::kFailedPrecondition)
      << "Reload before any Load has no path to retry";

  ASSERT_TRUE(manager.Load(v1).ok());
  const auto first = manager.Current();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->version, 1u);
  EXPECT_EQ(first->path, v1);
  EXPECT_EQ(first->model->NumVertices(), g.NumVertices());
  ASSERT_NE(first->index, nullptr);

  ASSERT_TRUE(manager.Load(v2).ok());
  EXPECT_EQ(manager.version(), 2u);
  // The old snapshot stays valid for readers that still hold it.
  EXPECT_EQ(first->version, 1u);
  EXPECT_GT(first->model->Query(0, 5), 0.0);

  ASSERT_TRUE(manager.Reload().ok());  // re-runs the last path
  EXPECT_EQ(manager.version(), 3u);
  EXPECT_EQ(manager.Current()->path, v2);

  std::filesystem::remove(v1);
  std::filesystem::remove(v2);
}

TEST(ModelManagerTest, CorruptReplacementIsRejectedAndOldKeepsServing) {
  const Graph g = SmallNetwork();
  const std::string good = SaveTinyModel(g, "rne_mm_good.bin");
  const std::string bad = TempPath("rne_mm_corrupt.bin");
  const uint64_t size = std::filesystem::file_size(good);
  ASSERT_TRUE(fault::FlipBitCopy(good, bad, size / 2, 3).ok());

  ModelManager manager;
  ASSERT_TRUE(manager.Load(good).ok());
  const auto before = manager.Current();

  EXPECT_FALSE(manager.Load(bad).ok());
  // Rollback by default: publish never happened, the old snapshot serves.
  EXPECT_EQ(manager.version(), 1u);
  EXPECT_EQ(manager.Current(), before);
  EXPECT_EQ(manager.Current()->path, good);

  // A truncated file is caught by the structural verify stage too.
  const std::string cut = TempPath("rne_mm_truncated.bin");
  ASSERT_TRUE(fault::TruncateCopy(good, cut, size / 3).ok());
  EXPECT_FALSE(manager.Load(cut).ok());
  EXPECT_EQ(manager.version(), 1u);

  std::filesystem::remove(good);
  std::filesystem::remove(bad);
  std::filesystem::remove(cut);
}

TEST(ModelManagerTest, VertexCountMismatchIsRejected) {
  const Graph g = SmallNetwork(8, 8);
  const Graph smaller = SmallNetwork(6, 6);
  const std::string v1 = SaveTinyModel(g, "rne_mm_64.bin");
  const std::string v2 = SaveTinyModel(smaller, "rne_mm_36.bin");

  ModelManager manager;
  ASSERT_TRUE(manager.Load(v1).ok());
  const Status mismatch = manager.Load(v2);
  EXPECT_EQ(mismatch.code(), StatusCode::kFailedPrecondition)
      << mismatch.ToString();
  EXPECT_EQ(manager.version(), 1u);
  EXPECT_EQ(manager.Current()->model->NumVertices(), g.NumVertices());

  // Opting out of the gate admits the differently-sized replacement.
  ModelManager::Options options;
  options.require_same_vertex_count = false;
  ModelManager permissive(options);
  ASSERT_TRUE(permissive.Load(v1).ok());
  EXPECT_TRUE(permissive.Load(v2).ok());
  EXPECT_EQ(permissive.Current()->model->NumVertices(),
            smaller.NumVertices());

  std::filesystem::remove(v1);
  std::filesystem::remove(v2);
}

TEST(ModelManagerTest, UnpublishedManagedBackendFallsDownChain) {
  const Graph g = SmallNetwork();
  ModelManager manager;  // nothing loaded: the managed slot cannot serve
  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(options);
  engine.AddReadyBackend(manager.MakeManagedBackend());
  BackendContext ctx;
  ctx.graph = &g;
  engine.AddBackend("dijkstra", ctx);
  ASSERT_TRUE(engine.WaitUntilLoaded().ok());

  Request request;
  request.s = 1;
  request.t = 40;
  const Response response = engine.Query(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.backend, "dijkstra");
  EXPECT_TRUE(response.fell_back);
  DijkstraSearch reference(g);
  EXPECT_NEAR(response.distance, reference.Distance(1, 40), 1e-6);
  EXPECT_GE(engine.Metrics().retries, 1u);
}

// A RELOAD of an mmap-served model must swap rows atomically: the new
// snapshot serves the new file's bytes, the old snapshot (pinned by its
// mapping to the replaced inode) keeps serving the old bytes, and a result
// cache in front of the engine never hands out a pre-swap distance.
TEST(ModelManagerTest, MmapReloadNeverServesStaleRows) {
  const Graph g = SmallNetwork();
  const std::string path = TempPath("rne_mm_mmap_swap.bin");
  const Rne model_a = TinyModel(g);
  ASSERT_TRUE(model_a.Save(path).ok());

  ModelManager::Options options;
  options.load.mode = LoadMode::kMmapCold;  // worst case: deferred CRCs
  ModelManager manager(options);
  ASSERT_TRUE(manager.Load(path).ok());
  const auto snapshot_a = manager.Current();
  ASSERT_TRUE(snapshot_a->model->IsMapped());

  // A differently-trained replacement over the SAME path (atomic rename).
  RneConfig other_config;
  other_config.dim = 16;
  other_config.hierarchical = false;
  other_config.fine_tune = false;
  other_config.train.vertex_samples = 9000;
  other_config.train.vertex_epochs = 3;
  const Rne model_b = Rne::Build(g, other_config);
  ASSERT_TRUE(model_b.Save(path).ok());

  // Find a pair the two models genuinely disagree on, so "stale" and
  // "fresh" are distinguishable bit patterns.
  VertexId ds = 0, dt = 0;
  for (VertexId s = 0; s < g.NumVertices() && ds == dt; ++s) {
    for (VertexId t = s + 1; t < g.NumVertices(); ++t) {
      const double a = model_a.Query(s, t);
      const double b = model_b.Query(s, t);
      if (std::memcmp(&a, &b, sizeof(double)) != 0) {
        ds = s;
        dt = t;
        break;
      }
    }
  }
  ASSERT_NE(ds, dt) << "models are identical; test cannot discriminate";

  ASSERT_TRUE(manager.Reload().ok());
  const auto snapshot_b = manager.Current();
  ASSERT_NE(snapshot_a, snapshot_b);

  // New snapshot == freshly trained model, old snapshot == old model, both
  // to the bit; the old mapping survives the rename that replaced its file.
  const double want_a = model_a.Query(ds, dt);
  const double want_b = model_b.Query(ds, dt);
  const double got_a = snapshot_a->model->Query(ds, dt);
  const double got_b = snapshot_b->model->Query(ds, dt);
  EXPECT_EQ(std::memcmp(&want_a, &got_a, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&want_b, &got_b, sizeof(double)), 0);

  std::filesystem::remove(path);
}

// CachedEngine regression for the same scenario: a cache hit recorded
// before an mmap-model RELOAD must not outlive the swap. The publish
// listener invalidates the cache, so post-swap queries serve the new
// model's rows — bit-identical to a direct query, never the stale double.
TEST(ModelManagerTest, ReloadOfMmapModelInvalidatesResultCache) {
  const Graph g = SmallNetwork();
  const std::string path = TempPath("rne_mm_cache_swap.bin");
  const Rne model_a = TinyModel(g);
  ASSERT_TRUE(model_a.Save(path).ok());

  ModelManager::Options manager_options;
  manager_options.load.mode = LoadMode::kMmap;
  ModelManager manager(manager_options);
  ASSERT_TRUE(manager.Load(path).ok());

  EngineOptions engine_options;
  engine_options.num_threads = 1;
  QueryEngine engine(engine_options);
  engine.AddReadyBackend(manager.MakeManagedBackend());
  ResultCache cache;
  CachedEngine cached(&engine, &cache);
  manager.AddPublishListener([&cache](uint64_t) { cache.Invalidate(); });

  RneConfig other_config;
  other_config.dim = 16;
  other_config.hierarchical = false;
  other_config.fine_tune = false;
  other_config.train.vertex_samples = 9000;
  other_config.train.vertex_epochs = 3;
  const Rne model_b = Rne::Build(g, other_config);

  std::vector<Request> requests;
  for (VertexId s = 0; s < 12; ++s) {
    Request request;
    request.kind = RequestKind::kDistance;
    request.s = s;
    request.t = static_cast<VertexId>(g.NumVertices() - 1 - s);
    requests.push_back(request);
  }
  std::vector<Response> before, warm, after;
  ASSERT_TRUE(cached.QueryBatch(requests, &before).ok());
  ASSERT_TRUE(cached.QueryBatch(requests, &warm).ok());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(before[i].status.ok());
    EXPECT_TRUE(warm[i].cached) << i;  // the hits the swap must invalidate
    const double want = model_a.Query(requests[i].s, requests[i].t);
    EXPECT_EQ(std::memcmp(&want, &before[i].distance, sizeof(double)), 0);
  }

  ASSERT_TRUE(model_b.Save(path).ok());
  ASSERT_TRUE(manager.Reload().ok());
  ASSERT_TRUE(cached.QueryBatch(requests, &after).ok());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(after[i].status.ok());
    EXPECT_FALSE(after[i].cached) << "request " << i
                                  << " served a pre-swap cache entry";
    const double want = model_b.Query(requests[i].s, requests[i].t);
    EXPECT_EQ(std::memcmp(&want, &after[i].distance, sizeof(double)), 0)
        << "request " << i << " served a stale row after RELOAD";
  }

  std::filesystem::remove(path);
}

// The headline swap invariant: with clients hammering the engine, repeated
// RELOADs (publish = one atomic pointer swap) never fail a single query —
// each in-flight query keeps the snapshot generation it started with.
TEST(ModelManagerTest, HotSwapUnderConcurrentQueriesNeverFailsAQuery) {
  const Graph g = SmallNetwork();
  const std::string v1 = SaveTinyModel(g, "rne_mm_swap_a.bin");
  const std::string v2 = SaveTinyModel(g, "rne_mm_swap_b.bin");

  ModelManager::Options manager_options;
  manager_options.num_workers = 2;
  ModelManager manager(manager_options);
  ASSERT_TRUE(manager.Load(v1).ok());

  EngineOptions options;
  options.num_threads = 2;
  QueryEngine engine(options);
  engine.AddReadyBackend(manager.MakeManagedBackend());

  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      size_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        Request request;
        request.s = static_cast<VertexId>((c * 13 + i) % g.NumVertices());
        request.t = static_cast<VertexId>((i * 7 + 3) % g.NumVertices());
        const Response response = engine.Query(request);
        if (!response.status.ok() || response.backend != "rne") {
          failures.fetch_add(1);
        }
        answered.fetch_add(1);
        ++i;
      }
    });
  }
  // Ten swaps while the clients run; every Load publishes a new generation.
  // Each swap waits for fresh query traffic first so publishes genuinely
  // interleave with serving (a tiny model loads faster than one query).
  for (int swap = 0; swap < 10; ++swap) {
    const size_t progress = answered.load() + 20;
    while (answered.load() < progress) std::this_thread::yield();
    ASSERT_TRUE(manager.Load(swap % 2 == 0 ? v2 : v1).ok()) << swap;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(manager.version(), 11u);
  const MetricsSnapshot metrics = engine.Metrics();
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_EQ(metrics.served, answered.load());

  std::filesystem::remove(v1);
  std::filesystem::remove(v2);
}

}  // namespace
}  // namespace rne::serve
