// Serving subsystem: batched correctness vs exact Dijkstra, backend
// registry, admission-control rejection, load-failure and deadline-triggered
// fallback down the chain, metrics accounting, and a multi-threaded hammer
// over a shared engine (the test tier-1 CI also runs under TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "algo/dijkstra.h"
#include "graph/generators.h"
#include "serve/backend.h"
#include "serve/query_engine.h"
#include "util/rng.h"

namespace rne::serve {
namespace {

Graph SmallNetwork() {
  RoadNetworkConfig cfg;
  cfg.rows = 12;
  cfg.cols = 12;
  cfg.seed = 42;
  return MakeRoadNetwork(cfg);
}

std::vector<Request> RandomDistanceRequests(const Graph& g, size_t n,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<Request> out(n);
  for (auto& r : out) {
    r.kind = RequestKind::kDistance;
    r.s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    r.t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
  }
  return out;
}

/// Controllable stub: approximate answers, optional per-call block, and a
/// name distinct from the built-ins.
class StubBackend : public QueryBackend {
 public:
  std::string Name() const override { return "stub"; }
  bool IsExact() const override { return false; }
  size_t NumVertices() const override { return num_vertices_; }
  size_t IndexBytes() const override { return 0; }
  double Distance(VertexId s, VertexId t) override {
    calls_.fetch_add(1);
    if (hold_.valid()) hold_.wait();
    return static_cast<double>(s) + static_cast<double>(t);
  }

  size_t num_vertices_ = 144;
  std::atomic<size_t> calls_{0};
  /// When valid, every Distance() call blocks until the future is ready.
  std::shared_future<void> hold_;
};

TEST(BackendRegistryTest, BuiltinsAreRegistered) {
  const auto names = RegisteredBackendNames();
  for (const char* expected :
       {"rne", "rne-quantized", "dijkstra", "ch", "h2h", "alt", "gtree"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  BackendContext ctx;
  EXPECT_EQ(MakeBackend("no-such-backend", ctx).status().code(),
            StatusCode::kNotFound);
  // Graph-built backends refuse a context without a graph.
  EXPECT_EQ(MakeBackend("dijkstra", ctx).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BackendRegistryTest, GraphBackendsAgreeWithDijkstra) {
  const Graph g = SmallNetwork();
  BackendContext ctx;
  ctx.graph = &g;
  ctx.num_workers = 2;
  DijkstraSearch reference(g);
  for (const char* name : {"dijkstra", "ch", "h2h", "gtree"}) {
    auto backend = MakeBackend(name, ctx);
    ASSERT_TRUE(backend.ok()) << name;
    EXPECT_TRUE(backend.value()->IsExact()) << name;
    Rng rng(5);
    for (int i = 0; i < 25; ++i) {
      const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
      const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
      EXPECT_NEAR(backend.value()->Distance(s, t), reference.Distance(s, t),
                  1e-6)
          << name;
    }
  }
}

TEST(QueryEngineTest, BatchedDistancesMatchExactDijkstra) {
  const Graph g = SmallNetwork();
  EngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(options);
  BackendContext ctx;
  ctx.graph = &g;
  engine.AddBackend("dijkstra", ctx);
  ASSERT_TRUE(engine.WaitUntilLoaded().ok());

  const auto requests = RandomDistanceRequests(g, 200, 7);
  std::vector<Response> responses;
  ASSERT_TRUE(engine.QueryBatch(requests, &responses).ok());
  ASSERT_EQ(responses.size(), requests.size());
  DijkstraSearch reference(g);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok()) << responses[i].status.ToString();
    EXPECT_NEAR(responses[i].distance,
                reference.Distance(requests[i].s, requests[i].t), 1e-6);
    EXPECT_TRUE(responses[i].exact);
    EXPECT_FALSE(responses[i].fell_back);
    EXPECT_EQ(responses[i].backend, "dijkstra");
    EXPECT_GE(responses[i].latency_ns, 0);
  }
  const MetricsSnapshot metrics = engine.Metrics();
  EXPECT_EQ(metrics.served, requests.size());
  EXPECT_EQ(metrics.rejected, 0u);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_GT(metrics.p99_ns, 0.0);
  EXPECT_GE(metrics.p99_ns, metrics.p50_ns);
}

TEST(QueryEngineTest, KnnRoutesToCapableBackendAndMatchesExact) {
  const Graph g = SmallNetwork();
  QueryEngine engine;
  BackendContext ctx;
  ctx.graph = &g;
  engine.AddBackend("dijkstra", ctx);
  ASSERT_TRUE(engine.WaitUntilLoaded().ok());

  Request request;
  request.kind = RequestKind::kKnn;
  request.s = 17;
  request.k = 5;
  const Response response = engine.Query(request);
  ASSERT_TRUE(response.status.ok());
  ASSERT_EQ(response.knn.size(), 5u);
  DijkstraSearch reference(g);
  const auto& dist = reference.AllDistances(17);
  double prev = -1.0;
  for (const auto& [v, d] : response.knn) {
    EXPECT_NEAR(d, dist[v], 1e-6);
    EXPECT_GE(d, prev);
    prev = d;
  }
  EXPECT_NEAR(response.knn[0].second, 0.0, 1e-12);  // s itself
}

TEST(QueryEngineTest, InvalidVertexIdFailsPerRequestNotPerBatch) {
  const Graph g = SmallNetwork();
  QueryEngine engine;
  BackendContext ctx;
  ctx.graph = &g;
  engine.AddBackend("dijkstra", ctx);
  ASSERT_TRUE(engine.WaitUntilLoaded().ok());

  std::vector<Request> requests(2);
  requests[0].s = 0;
  requests[0].t = 1;
  requests[1].s = static_cast<VertexId>(g.NumVertices());  // out of range
  requests[1].t = 0;
  std::vector<Response> responses;
  ASSERT_TRUE(engine.QueryBatch(requests, &responses).ok());
  EXPECT_TRUE(responses[0].status.ok());
  EXPECT_EQ(responses[1].status.code(), StatusCode::kInvalidArgument);
  const MetricsSnapshot metrics = engine.Metrics();
  EXPECT_EQ(metrics.served, 1u);
  EXPECT_EQ(metrics.failed, 1u);
}

TEST(QueryEngineTest, QueueFullBatchesAreRejectedWhole) {
  EngineOptions options;
  options.num_threads = 2;
  options.queue_capacity = 4;
  QueryEngine engine(options);
  auto stub = std::make_unique<StubBackend>();
  StubBackend* raw = stub.get();
  std::promise<void> release;
  raw->hold_ = release.get_future().share();
  engine.AddReadyBackend(std::move(stub));

  // Fill the admission window with a batch that blocks inside the backend.
  std::vector<Request> big(4);
  std::thread client([&engine, &big] {
    std::vector<Response> responses;
    EXPECT_TRUE(engine.QueryBatch(big, &responses).ok());
  });
  while (raw->calls_.load() == 0) std::this_thread::yield();

  // Any further batch exceeds capacity and is rejected with backpressure.
  std::vector<Request> one(1);
  one[0].s = one[0].t = 0;
  std::vector<Response> responses;
  const Status admitted = engine.QueryBatch(one, &responses);
  EXPECT_EQ(admitted.code(), StatusCode::kUnavailable);

  release.set_value();
  client.join();
  const MetricsSnapshot metrics = engine.Metrics();
  EXPECT_EQ(metrics.rejected, 1u);
  EXPECT_EQ(metrics.served, 4u);

  // Capacity is released once the batch finishes.
  raw->hold_ = {};
  EXPECT_TRUE(engine.QueryBatch(one, &responses).ok());
  EXPECT_TRUE(responses[0].status.ok());
}

// Regression: a backend throwing a non-std::exception used to escape
// ExecuteChunk's catch(const std::exception&), unwind through the pool's
// TaskGroup, rethrow from QueryBatch, and skip the admission release —
// permanently shrinking queue capacity until the engine rejected all
// traffic. Both halves are covered: the throw becomes a per-request error
// Response, and the admitted count is released on the unwind path.
TEST(QueryEngineTest, ThrowingBackendDoesNotLeakAdmissionCapacity) {
  struct Boom {};  // deliberately not derived from std::exception
  class ThrowingBackend : public StubBackend {
   public:
    std::string Name() const override { return "throwing"; }
    double Distance(VertexId, VertexId) override { throw Boom(); }
  };
  EngineOptions options;
  options.num_threads = 2;
  options.queue_capacity = 4;  // == batch size: any leak blocks batch 2
  QueryEngine engine(options);
  engine.AddReadyBackend(std::make_unique<ThrowingBackend>());

  std::vector<Request> requests(4);
  std::vector<Response> responses;
  ASSERT_TRUE(engine.QueryBatch(requests, &responses).ok());
  ASSERT_EQ(responses.size(), requests.size());
  for (const Response& r : responses) {
    EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition)
        << r.status.ToString();
  }
  EXPECT_EQ(engine.Metrics().failed, requests.size());

  // The full admission window must be available again: a second batch of
  // exactly queue_capacity requests is admitted, not rejected Unavailable.
  const Status admitted = engine.QueryBatch(requests, &responses);
  EXPECT_TRUE(admitted.ok()) << admitted.ToString();
  EXPECT_EQ(engine.Metrics().rejected, 0u);
}

TEST(QueryEngineTest, LoadFailureFallsBackToExactBackend) {
  const Graph g = SmallNetwork();
  EngineOptions options;
  options.num_threads = 2;
  QueryEngine engine(options);
  BackendContext ctx;
  ctx.graph = &g;
  ctx.model_path = "/nonexistent/model.rne";  // primary load will fail
  engine.AddBackend("rne", ctx);
  engine.AddBackend("dijkstra", ctx);
  EXPECT_FALSE(engine.WaitUntilLoaded().ok());  // reports the load error

  const auto requests = RandomDistanceRequests(g, 20, 11);
  std::vector<Response> responses;
  ASSERT_TRUE(engine.QueryBatch(requests, &responses).ok());
  DijkstraSearch reference(g);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok());
    EXPECT_EQ(responses[i].backend, "dijkstra");
    EXPECT_TRUE(responses[i].fell_back);
    EXPECT_NEAR(responses[i].distance,
                reference.Distance(requests[i].s, requests[i].t), 1e-6);
  }
  const MetricsSnapshot metrics = engine.Metrics();
  EXPECT_EQ(metrics.fell_back_load, requests.size());
  EXPECT_EQ(metrics.served, requests.size());
}

TEST(QueryEngineTest, DeadlineMissOnLoadingPrimaryFallsBackToExact) {
  const Graph g = SmallNetwork();
  // A primary whose load we control: it stays kLoading until released.
  std::promise<void> release_load;
  std::shared_future<void> gate(release_load.get_future());
  RegisterBackendFactory(
      "held-primary",
      [gate](const BackendContext&)
          -> StatusOr<std::unique_ptr<QueryBackend>> {
        gate.wait();
        return std::unique_ptr<QueryBackend>(new StubBackend());
      });
  EngineOptions options;
  options.num_threads = 2;
  QueryEngine engine(options);
  BackendContext ctx;
  ctx.graph = &g;
  ctx.num_workers = engine.pool().num_threads();
  engine.AddBackend("held-primary", ctx);
  // The exact fallback is added already-constructed so the test only races
  // the primary's (held) load against the request deadline.
  auto dijkstra = MakeBackend("dijkstra", ctx);
  ASSERT_TRUE(dijkstra.ok());
  engine.AddReadyBackend(std::move(dijkstra).value());

  Request request;
  request.s = 3;
  request.t = 77;
  request.deadline = std::chrono::microseconds(20000);
  const Response response = engine.Query(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.backend, "dijkstra");
  EXPECT_TRUE(response.fell_back);
  EXPECT_TRUE(response.exact);
  DijkstraSearch reference(g);
  EXPECT_NEAR(response.distance, reference.Distance(3, 77), 1e-6);
  EXPECT_GE(engine.Metrics().fell_back_deadline, 1u);

  // Once the primary finishes loading it serves new queries directly.
  release_load.set_value();
  ASSERT_TRUE(engine.WaitUntilLoaded().ok());
  const Response after = engine.Query(request);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.backend, "stub");
  EXPECT_FALSE(after.fell_back);
}

TEST(QueryEngineTest, DeadlineWithNoFallbackReportsDeadlineExceeded) {
  std::promise<void> never;
  std::shared_future<void> gate(never.get_future());
  RegisterBackendFactory(
      "held-forever",
      [gate](const BackendContext&)
          -> StatusOr<std::unique_ptr<QueryBackend>> {
        gate.wait();
        return std::unique_ptr<QueryBackend>(new StubBackend());
      });
  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(options);
  BackendContext ctx;
  engine.AddBackend("held-forever", ctx);
  Request request;
  request.deadline = std::chrono::microseconds(5000);
  const Response response = engine.Query(request);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.Metrics().failed, 1u);
  never.set_value();  // let the loader thread finish before teardown
  // Discard OK: only joining the loader thread before teardown; the
  // load outcome is irrelevant once the deadline assertion ran.
  (void)engine.WaitUntilLoaded();
}

TEST(QueryEngineTest, ConcurrentBatchHammerServesEverything) {
  const Graph g = SmallNetwork();
  EngineOptions options;
  options.num_threads = 4;
  options.queue_capacity = 1 << 16;
  options.batch_chunk = 8;
  QueryEngine engine(options);
  BackendContext ctx;
  ctx.graph = &g;
  engine.AddBackend("dijkstra", ctx);
  ASSERT_TRUE(engine.WaitUntilLoaded().ok());

  constexpr size_t kClients = 8;
  constexpr size_t kBatches = 25;
  constexpr size_t kBatchSize = 32;
  std::atomic<size_t> ok_responses{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      DijkstraSearch reference(g);
      for (size_t b = 0; b < kBatches; ++b) {
        const auto requests =
            RandomDistanceRequests(g, kBatchSize, 100 * c + b);
        std::vector<Response> responses;
        EXPECT_TRUE(engine.QueryBatch(requests, &responses).ok());
        for (size_t i = 0; i < requests.size(); ++i) {
          EXPECT_TRUE(responses[i].status.ok());
          EXPECT_NEAR(responses[i].distance,
                      reference.Distance(requests[i].s, requests[i].t),
                      1e-6);
          ok_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok_responses.load(), kClients * kBatches * kBatchSize);
  const MetricsSnapshot metrics = engine.Metrics();
  EXPECT_EQ(metrics.served, kClients * kBatches * kBatchSize);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_EQ(metrics.rejected, 0u);
  EXPECT_GT(metrics.qps, 0.0);
}

// Satellite: a request whose deadline expires while it sits in the pool
// queue must fail fast without ever invoking a backend. One worker thread,
// one blocking batch in front — the probe request's deadline (5ms) is long
// gone by the time its chunk runs (>=30ms later).
TEST(QueryEngineTest, DeadlineExpiredWhileQueuedFailsFastWithoutDispatch) {
  EngineOptions options;
  options.num_threads = 1;
  options.queue_capacity = 8;
  QueryEngine engine(options);
  auto stub = std::make_unique<StubBackend>();
  StubBackend* raw = stub.get();
  std::promise<void> release;
  raw->hold_ = release.get_future().share();
  engine.AddReadyBackend(std::move(stub));

  std::vector<Request> blocker(1);
  std::thread client([&engine, &blocker] {
    std::vector<Response> responses;
    EXPECT_TRUE(engine.QueryBatch(blocker, &responses).ok());
  });
  while (raw->calls_.load() == 0) std::this_thread::yield();

  std::thread releaser([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    release.set_value();
  });
  Request probe;
  probe.s = probe.t = 1;
  probe.deadline = std::chrono::microseconds(5000);
  const Response response = engine.Query(probe);
  client.join();
  releaser.join();

  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(raw->calls_.load(), 1u) << "expired request must not dispatch";
  const MetricsSnapshot metrics = engine.Metrics();
  EXPECT_EQ(metrics.fast_fails, 1u);
  EXPECT_EQ(metrics.failed, 1u);
  EXPECT_EQ(metrics.served, 1u);  // the blocker
}

// Tentpole: repeated primary failures retry down the chain, trip the
// primary's breaker, and subsequent requests skip it entirely (no wasted
// dispatch) until the backoff-gated probe — which this test pushes out of
// reach with a 100s initial backoff.
TEST(QueryEngineTest, BreakerTripsOnFailingPrimaryAndSkipsIt) {
  class FlakyBackend : public StubBackend {
   public:
    std::string Name() const override { return "flaky"; }
    double Distance(VertexId, VertexId) override {
      calls_.fetch_add(1);
      throw std::runtime_error("flaky backend outage");
    }
  };
  const Graph g = SmallNetwork();
  EngineOptions options;
  options.num_threads = 1;  // serialize outcomes: counter asserts are exact
  options.breaker.consecutive_failures = 3;
  options.breaker.initial_backoff = std::chrono::milliseconds(100000);
  QueryEngine engine(options);
  auto flaky = std::make_unique<FlakyBackend>();
  FlakyBackend* raw = flaky.get();
  engine.AddReadyBackend(std::move(flaky));
  BackendContext ctx;
  ctx.graph = &g;
  engine.AddBackend("dijkstra", ctx);
  ASSERT_TRUE(engine.WaitUntilLoaded().ok());

  DijkstraSearch reference(g);
  for (int i = 0; i < 5; ++i) {
    Request request;
    request.s = 3;
    request.t = 140;
    const Response response = engine.Query(request);
    ASSERT_TRUE(response.status.ok()) << i << ": "
                                      << response.status.ToString();
    EXPECT_EQ(response.backend, "dijkstra");
    EXPECT_TRUE(response.fell_back);
    EXPECT_NEAR(response.distance, reference.Distance(3, 140), 1e-6);
  }
  // Three real attempts tripped the breaker; the last two never dispatched.
  EXPECT_EQ(raw->calls_.load(), 3u);
  const MetricsSnapshot metrics = engine.Metrics();
  EXPECT_EQ(metrics.retries, 3u);
  EXPECT_EQ(metrics.fell_back_breaker, 2u);
  EXPECT_EQ(metrics.served, 5u);
  EXPECT_EQ(metrics.failed, 0u);

  const auto health = engine.Health();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_EQ(health[0].name, "flaky");
  EXPECT_EQ(health[0].breaker, BreakerState::kOpen);
  EXPECT_EQ(health[0].breaker_trips, 1u);
  EXPECT_EQ(health[1].name, "dijkstra");
  EXPECT_EQ(health[1].breaker, BreakerState::kClosed);
}

// Tentpole: with the AIMD shedder pinned to a limit of 2, a batch of 4 is
// shed with Unavailable before touching hard admission control, and a batch
// within the limit still serves.
TEST(QueryEngineTest, AdaptiveShedderRejectsBatchesOverItsLimit) {
  const Graph g = SmallNetwork();
  EngineOptions options;
  options.num_threads = 2;
  options.queue_capacity = 8;
  options.shedder.enabled = true;
  options.shedder.min_limit = 2;
  options.shedder.max_limit = 2;
  QueryEngine engine(options);
  BackendContext ctx;
  ctx.graph = &g;
  engine.AddBackend("dijkstra", ctx);
  ASSERT_TRUE(engine.WaitUntilLoaded().ok());

  std::vector<Response> responses;
  const auto four = RandomDistanceRequests(g, 4, 21);
  const Status shed = engine.QueryBatch(four, &responses);
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.ToString().find("load shed"), std::string::npos)
      << shed.ToString();

  const auto two = RandomDistanceRequests(g, 2, 22);
  ASSERT_TRUE(engine.QueryBatch(two, &responses).ok());
  for (const Response& r : responses) EXPECT_TRUE(r.status.ok());

  const MetricsSnapshot metrics = engine.Metrics();
  EXPECT_EQ(metrics.shed, 4u);
  EXPECT_EQ(metrics.rejected, 0u);  // shedding is distinct from queue-full
  EXPECT_EQ(metrics.served, 2u);
}

TEST(MetricsSnapshotTest, ToJsonIsWellFormed) {
  MetricsSnapshot snapshot;
  snapshot.served = 3;
  snapshot.qps = 1234.5;
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"served\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace rne::serve
