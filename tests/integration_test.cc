// Cross-module integration tests: the full pipeline on one road network,
// comparing RNE against the baseline stack the way the evaluation harness
// does, plus end-to-end kNN/range agreement with exact ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "algo/distance_sampler.h"
#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/geo.h"
#include "baselines/h2h.h"
#include "baselines/network_knn.h"
#include "core/rne.h"
#include "core/rne_index.h"
#include "graph/generators.h"

namespace rne {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RoadNetworkConfig cfg;
    cfg.rows = 20;
    cfg.cols = 20;
    cfg.seed = 42;
    graph_ = new Graph(MakeRoadNetwork(cfg));

    RneConfig config;
    config.dim = 32;
    config.train.level_samples = 6000;
    config.train.vertex_samples = 40000;
    config.train.finetune_rounds = 2;
    config.train.finetune_samples = 8000;
    rne_ = new Rne(Rne::Build(*graph_, config));

    DistanceSampler sampler(*graph_);
    Rng rng(42);
    val_ = new std::vector<DistanceSample>(sampler.RandomPairs(500, rng));
  }
  static void TearDownTestSuite() {
    delete val_;
    delete rne_;
    delete graph_;
  }

  static double MeanRelError(DistanceMethod& method) {
    double sum = 0.0;
    for (const auto& s : *val_) {
      sum += std::abs(method.Query(s.s, s.t) - s.dist) / s.dist;
    }
    return sum / val_->size();
  }

  static Graph* graph_;
  static Rne* rne_;
  static std::vector<DistanceSample>* val_;
};

Graph* IntegrationTest::graph_ = nullptr;
Rne* IntegrationTest::rne_ = nullptr;
std::vector<DistanceSample>* IntegrationTest::val_ = nullptr;

TEST_F(IntegrationTest, RneBeatsGeometricBaselines) {
  double rne_err = 0.0;
  for (const auto& s : *val_) {
    rne_err += std::abs(rne_->Query(s.s, s.t) - s.dist) / s.dist;
  }
  rne_err /= val_->size();

  GeoEstimator euclid(*graph_, GeoMetric::kEuclidean);
  GeoEstimator manhattan(*graph_, GeoMetric::kManhattan);
  EXPECT_LT(rne_err, MeanRelError(euclid));
  EXPECT_LT(rne_err, MeanRelError(manhattan));
  EXPECT_LT(rne_err, 0.05) << "trained RNE should be within a few percent";
}

TEST_F(IntegrationTest, ExactMethodsAgreeOnValidationSet) {
  ContractionHierarchy ch(*graph_);
  H2HIndex h2h(*graph_);
  for (size_t i = 0; i < val_->size(); i += 5) {
    const auto& s = (*val_)[i];
    EXPECT_NEAR(ch.Query(s.s, s.t), s.dist, 1e-6);
    EXPECT_NEAR(h2h.Query(s.s, s.t), s.dist, 1e-6);
  }
}

TEST_F(IntegrationTest, LtBeatenByRne) {
  Rng rng(7);
  AltIndex lt(*graph_, 16, rng);
  const double lt_err = MeanRelError(lt);
  double rne_err = 0.0;
  for (const auto& s : *val_) {
    rne_err += std::abs(rne_->Query(s.s, s.t) - s.dist) / s.dist;
  }
  rne_err /= val_->size();
  // Paper Table III ordering: RNE < LT in error on all datasets.
  EXPECT_LT(rne_err, lt_err);
}

TEST_F(IntegrationTest, KnnF1AgainstExactGroundTruth) {
  // Targets: every 4th vertex plays "POI".
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < graph_->NumVertices(); v += 4) {
    targets.push_back(v);
  }
  const RneIndex rne_index(rne_, targets);
  NetworkKnn exact(*graph_, targets);

  Rng rng(9);
  double f1_sum = 0.0;
  const int queries = 30;
  const size_t k = 10;
  for (int q = 0; q < queries; ++q) {
    const auto src =
        static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto approx = rne_index.Knn(src, k);
    const auto truth = exact.Knn(src, k);
    std::set<VertexId> truth_set;
    for (const auto& [v, d] : truth) truth_set.insert(v);
    size_t hits = 0;
    for (const auto& [v, d] : approx) hits += truth_set.count(v);
    f1_sum += static_cast<double>(hits) / k;  // |approx| == |truth| == k
  }
  // Fig 16: RNE's kNN accuracy is high (>90% F1 at moderate k).
  EXPECT_GT(f1_sum / queries, 0.75);
}

TEST_F(IntegrationTest, RangeF1AgainstExactGroundTruth) {
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < graph_->NumVertices(); v += 3) {
    targets.push_back(v);
  }
  const RneIndex rne_index(rne_, targets);
  NetworkKnn exact(*graph_, targets);

  Rng rng(10);
  double f1_sum = 0.0;
  int counted = 0;
  for (int q = 0; q < 20; ++q) {
    const auto src =
        static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const double tau = rng.UniformReal(500.0, 1500.0);
    const auto approx = rne_index.Range(src, tau);
    const auto truth = exact.Range(src, tau);
    if (truth.empty()) continue;
    const std::set<VertexId> truth_set(truth.begin(), truth.end());
    size_t hits = 0;
    for (const VertexId v : approx) hits += truth_set.count(v);
    const double precision =
        approx.empty() ? 0.0 : static_cast<double>(hits) / approx.size();
    const double recall = static_cast<double>(hits) / truth.size();
    if (precision + recall > 0) {
      f1_sum += 2 * precision * recall / (precision + recall);
    }
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_GT(f1_sum / counted, 0.75);
}

TEST_F(IntegrationTest, ErrorOrderingMatchesPaperShape) {
  // Table III shape on one dataset: RNE < LT < geo baselines (error).
  Rng rng(11);
  AltIndex lt(*graph_, 16, rng);
  GeoEstimator euclid(*graph_, GeoMetric::kEuclidean);
  const double lt_err = MeanRelError(lt);
  const double geo_err = MeanRelError(euclid);
  EXPECT_LT(lt_err, geo_err);
}

}  // namespace
}  // namespace rne
