// Differential harness for the parallel index builders (DESIGN.md §14).
//
// Every offline builder takes a num_threads option and promises that the
// built index is a pure function of (graph, options): the parallel schedule
// is deterministic, so any thread count — including 1 — produces the same
// index. These tests pin that contract: parallel-built indexes must answer
// queries *bit-identically* to serial-built ones (EXPECT_EQ on doubles, not
// EXPECT_NEAR), exact methods must still match the Dijkstra oracle, and the
// partitioner must produce thread-count-invariant cells of unchanged quality.
#include <gtest/gtest.h>

#include <vector>

#include "algo/dijkstra.h"
#include "algo/landmarks.h"
#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/gtree.h"
#include "baselines/h2h.h"
#include "graph/generators.h"
#include "partition/hierarchy.h"
#include "partition/partitioner.h"
#include "util/rng.h"

namespace rne {
namespace {

Graph TestNetwork(uint64_t seed, size_t side = 12) {
  RoadNetworkConfig cfg;
  cfg.rows = side;
  cfg.cols = side;
  cfg.seed = seed;
  return MakeRoadNetwork(cfg);
}

std::vector<std::pair<VertexId, VertexId>> QueryPairs(const Graph& g,
                                                      size_t count,
                                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(count);
  const size_t n = g.NumVertices();
  for (size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<VertexId>(rng.UniformIndex(n)),
                       static_cast<VertexId>(rng.UniformIndex(n)));
  }
  return pairs;
}

// ---------------------------------------------------------------------- CH

TEST(ParallelBuildTest, ChParallelBitIdenticalToSerialAndExact) {
  const Graph g = TestNetwork(11);
  ChOptions serial_opt;
  serial_opt.num_threads = 1;
  ChOptions parallel_opt;
  parallel_opt.num_threads = 4;
  ContractionHierarchy serial(g, serial_opt);
  ContractionHierarchy parallel(g, parallel_opt);
  DijkstraSearch dij(g);
  for (const auto& [s, t] : QueryPairs(g, 80, 3)) {
    const double parallel_dist = parallel.Query(s, t);
    EXPECT_EQ(parallel_dist, serial.Query(s, t)) << "s=" << s << " t=" << t;
    EXPECT_NEAR(parallel_dist, dij.Distance(s, t), 1e-6)
        << "s=" << s << " t=" << t;
  }
}

TEST(ParallelBuildTest, ChThreadCountInvariance) {
  const Graph g = TestNetwork(12);
  const auto pairs = QueryPairs(g, 60, 5);
  std::vector<double> baseline;
  for (const size_t threads : {1, 2, 7}) {
    ChOptions opt;
    opt.num_threads = threads;
    ContractionHierarchy ch(g, opt);
    if (baseline.empty()) {
      for (const auto& [s, t] : pairs) baseline.push_back(ch.Query(s, t));
      continue;
    }
    for (size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(ch.Query(pairs[i].first, pairs[i].second), baseline[i])
          << "threads=" << threads << " pair=" << i;
    }
  }
}

TEST(ParallelBuildTest, AchParallelBitIdenticalToSerial) {
  // The approximate (epsilon > 0) contraction shares the batch machinery.
  const Graph g = TestNetwork(13);
  ChOptions serial_opt;
  serial_opt.epsilon = 0.1;
  serial_opt.num_threads = 1;
  ChOptions parallel_opt = serial_opt;
  parallel_opt.num_threads = 4;
  ContractionHierarchy serial(g, serial_opt);
  ContractionHierarchy parallel(g, parallel_opt);
  for (const auto& [s, t] : QueryPairs(g, 60, 7)) {
    EXPECT_EQ(parallel.Query(s, t), serial.Query(s, t))
        << "s=" << s << " t=" << t;
  }
}

// --------------------------------------------------------------------- H2H

TEST(ParallelBuildTest, H2hParallelBitIdenticalToSerialAndExact) {
  const Graph g = TestNetwork(21);
  H2HOptions serial_opt;
  serial_opt.num_threads = 1;
  H2HOptions parallel_opt;
  parallel_opt.num_threads = 4;
  H2HIndex serial(g, serial_opt);
  H2HIndex parallel(g, parallel_opt);
  DijkstraSearch dij(g);
  for (const auto& [s, t] : QueryPairs(g, 80, 9)) {
    const double parallel_dist = parallel.Query(s, t);
    EXPECT_EQ(parallel_dist, serial.Query(s, t)) << "s=" << s << " t=" << t;
    EXPECT_NEAR(parallel_dist, dij.Distance(s, t), 1e-6)
        << "s=" << s << " t=" << t;
  }
}

TEST(ParallelBuildTest, H2hThreadCountInvariance) {
  const Graph g = TestNetwork(22);
  const auto pairs = QueryPairs(g, 60, 11);
  std::vector<double> baseline;
  for (const size_t threads : {1, 2, 7}) {
    H2HOptions opt;
    opt.num_threads = threads;
    H2HIndex h2h(g, opt);
    if (baseline.empty()) {
      for (const auto& [s, t] : pairs) baseline.push_back(h2h.Query(s, t));
      continue;
    }
    for (size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(h2h.Query(pairs[i].first, pairs[i].second), baseline[i])
          << "threads=" << threads << " pair=" << i;
    }
  }
}

// ------------------------------------------------------------------ G-tree

TEST(ParallelBuildTest, GTreeParallelBitIdenticalToSerialAndExact) {
  const Graph g = TestNetwork(31);
  GTreeOptions serial_opt;
  serial_opt.num_threads = 1;
  GTreeOptions parallel_opt;
  parallel_opt.num_threads = 4;
  // Force the sharded parallel fill even at this test size.
  parallel_opt.parallel_source_cutoff = 1;
  GTree serial(g, serial_opt);
  GTree parallel(g, parallel_opt);
  DijkstraSearch dij(g);
  for (const auto& [s, t] : QueryPairs(g, 60, 13)) {
    const double parallel_dist = parallel.Distance(s, t);
    EXPECT_EQ(parallel_dist, serial.Distance(s, t)) << "s=" << s << " t=" << t;
    EXPECT_NEAR(parallel_dist, dij.Distance(s, t), 1e-6)
        << "s=" << s << " t=" << t;
  }
}

// --------------------------------------------------------------- ALT / LT

TEST(ParallelBuildTest, LandmarkMatrixThreadCountInvariance) {
  const Graph g = TestNetwork(41);
  Rng rng(41);
  const auto landmarks = SelectLandmarksFarthest(g, 8, rng);
  const auto serial = ComputeLandmarkDistances(g, landmarks, 1);
  for (const size_t threads : {2, 7}) {
    const auto parallel = ComputeLandmarkDistances(g, landmarks, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelBuildTest, AltParallelBitIdenticalToSerial) {
  const Graph g = TestNetwork(42);
  Rng serial_rng(7);
  Rng parallel_rng(7);
  AltIndex serial(g, 8, serial_rng, /*num_threads=*/1);
  AltIndex parallel(g, 8, parallel_rng, /*num_threads=*/4);
  ASSERT_EQ(parallel.landmarks(), serial.landmarks());
  for (const auto& [s, t] : QueryPairs(g, 60, 15)) {
    EXPECT_EQ(parallel.Query(s, t), serial.Query(s, t))
        << "s=" << s << " t=" << t;
  }
}

// ------------------------------------------------------------- Partitioner

TEST(ParallelBuildTest, PartitionThreadCountInvarianceAndQuality) {
  const Graph g = TestNetwork(51, /*side=*/16);
  PartitionOptions serial_opt;
  serial_opt.num_parts = 4;
  serial_opt.num_threads = 1;
  const PartitionResult serial = PartitionGraph(g, serial_opt);

  double total_weight = 0.0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const auto& e : g.Neighbors(v)) total_weight += e.weight;
  }
  total_weight /= 2.0;  // each undirected edge visited twice

  for (const size_t threads : {2, 7}) {
    PartitionOptions opt = serial_opt;
    opt.num_threads = threads;
    const PartitionResult parallel = PartitionGraph(g, opt);
    // The schedule is deterministic, so the parallel cut is the serial cut;
    // the quality bound below is the contract a relaxed schedule would have
    // to meet (cut within 25% of serial, balance within the configured eps).
    EXPECT_EQ(parallel.part_of, serial.part_of) << "threads=" << threads;
    EXPECT_LE(parallel.cut_weight, serial.cut_weight * 1.25 + 1e-9);
    EXPECT_GT(total_weight, 0.0);
    EXPECT_LE(parallel.cut_weight / total_weight, 0.35)
        << "edge-cut ratio regressed at threads=" << threads;
    std::vector<size_t> part_size(opt.num_parts, 0);
    for (const uint32_t p : parallel.part_of) {
      ASSERT_LT(p, opt.num_parts);
      ++part_size[p];
    }
    // Each bisection level may take (1+eps) of its half, so the end-to-end
    // bound compounds over the log2(num_parts) recursion levels.
    const double cap = (1.0 + opt.balance_eps) * (1.0 + opt.balance_eps) *
                       static_cast<double>(g.NumVertices()) /
                       static_cast<double>(opt.num_parts);
    for (size_t p = 0; p < opt.num_parts; ++p) {
      EXPECT_LE(static_cast<double>(part_size[p]), cap + 1.0)
          << "part " << p << " oversized at threads=" << threads;
    }
  }
}

TEST(ParallelBuildTest, HierarchyThreadCountInvariance) {
  const Graph g = TestNetwork(52, /*side=*/16);
  HierarchyOptions serial_opt;
  serial_opt.partition.num_threads = 1;
  const PartitionHierarchy serial = PartitionHierarchy::Build(g, serial_opt);
  for (const size_t threads : {2, 7}) {
    HierarchyOptions opt = serial_opt;
    opt.partition.num_threads = threads;
    const PartitionHierarchy parallel = PartitionHierarchy::Build(g, opt);
    ASSERT_EQ(parallel.num_nodes(), serial.num_nodes())
        << "threads=" << threads;
    EXPECT_EQ(parallel.max_level(), serial.max_level());
    for (uint32_t id = 0; id < serial.num_nodes(); ++id) {
      EXPECT_EQ(parallel.node(id).parent, serial.node(id).parent) << id;
      EXPECT_EQ(parallel.node(id).children, serial.node(id).children) << id;
      EXPECT_EQ(parallel.node(id).vertices, serial.node(id).vertices) << id;
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_EQ(parallel.LeafOf(v), serial.LeafOf(v)) << "v=" << v;
    }
  }
}

}  // namespace
}  // namespace rne
