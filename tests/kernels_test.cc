// Parity fuzz tests for the runtime-dispatched SIMD kernels: every backend
// the CPU supports must agree with the scalar reference across awkward
// dimensions (below, at, and just past the vector width) and adversarial
// float values (signed zeros, denormals, huge magnitudes).
#include "core/kernels.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace rne {
namespace {

// Dims chosen to hit every remainder-loop path: shorter than any vector
// width, exactly one AVX2 vector (8), byte-vector width (16), typical model
// dims, and one past a vector boundary.
const size_t kDims[] = {1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 17, 32, 64, 65, 256};

// Adversarial values cycled into random vectors: signed zeros, the smallest
// denormal, a value whose difference is denormal, and magnitudes large
// enough that squaring changes the exponent a lot.
float AdversarialValue(size_t i) {
  static const float kValues[] = {
      0.0f,
      -0.0f,
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::min(),
      1e30f,
      -1e30f,
      1.0f,
      -1.0f,
      3.5e-5f,
  };
  return kValues[i % (sizeof(kValues) / sizeof(kValues[0]))];
}

std::vector<float> RandomVec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.UniformReal(-2.0, 2.0));
  return v;
}

std::vector<float> AdversarialVec(size_t n, Rng& rng, bool mirror_of_random,
                                  const std::vector<float>& other) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    switch (rng.UniformIndex(3)) {
      case 0:
        v[i] = AdversarialValue(rng.UniformIndex(10));
        break;
      case 1:
        // Equal to the other operand: difference is exactly +/-0.
        v[i] = mirror_of_random ? other[i] : 0.0f;
        break;
      default:
        v[i] = static_cast<float>(rng.UniformReal(-2.0, 2.0));
    }
  }
  return v;
}

std::vector<uint8_t> RandomBytes(size_t n, Rng& rng) {
  std::vector<uint8_t> v(n);
  for (uint8_t& x : v) {
    // Bias toward the extremes so |a-b| hits 0 and 255 often.
    const size_t r = rng.UniformIndex(4);
    x = r == 0 ? 0 : (r == 1 ? 255 : static_cast<uint8_t>(rng.UniformIndex(256)));
  }
  return v;
}

class KernelBackendTest : public ::testing::TestWithParam<const char*> {
 protected:
  const KernelOps& ops() const {
    const KernelOps* ops = KernelBackendByName(GetParam());
    EXPECT_NE(ops, nullptr);
    return *ops;
  }
  const KernelOps& ref() const { return ScalarKernels(); }
};

TEST_P(KernelBackendTest, L1MatchesScalar) {
  Rng rng(101);
  for (const size_t dim : kDims) {
    for (int it = 0; it < 50; ++it) {
      const auto a = RandomVec(dim, rng);
      const auto b = it % 2 == 0 ? RandomVec(dim, rng)
                                 : AdversarialVec(dim, rng, true, a);
      const double want = ref().l1(a.data(), b.data(), dim);
      const double got = ops().l1(a.data(), b.data(), dim);
      // SIMD backends round each element difference to float (<= 1/2 ulp
      // relative) before the double accumulation, so the total deviation is
      // provably <= eps_f/2 * want ~ 6e-8 relative; 1e-6 leaves 16x margin.
      EXPECT_NEAR(got, want, 1e-6 * (1.0 + std::abs(want)))
          << "dim=" << dim << " it=" << it;
    }
  }
}

TEST_P(KernelBackendTest, L2SquaredMatchesScalar) {
  Rng rng(102);
  for (const size_t dim : kDims) {
    for (int it = 0; it < 50; ++it) {
      const auto a = it % 2 == 0 ? RandomVec(dim, rng)
                                 : AdversarialVec(dim, rng, false, {});
      const auto b = it % 3 == 0 ? AdversarialVec(dim, rng, true, a)
                                 : RandomVec(dim, rng);
      const double want = ref().l2sq(a.data(), b.data(), dim);
      const double got = ops().l2sq(a.data(), b.data(), dim);
      // Float-domain element difference: <= ~1.2e-7 relative (2 * eps_f/2,
      // the difference enters squared); see the L1 parity comment.
      EXPECT_NEAR(got, want, 1e-6 * (1.0 + std::abs(want)))
          << "dim=" << dim << " it=" << it;
    }
  }
}

TEST_P(KernelBackendTest, L1SignGradMatchesScalar) {
  Rng rng(103);
  for (const size_t dim : kDims) {
    for (int it = 0; it < 50; ++it) {
      const auto a = RandomVec(dim, rng);
      const auto b = it % 2 == 0 ? RandomVec(dim, rng)
                                 : AdversarialVec(dim, rng, true, a);
      std::vector<float> want_grad(dim, 99.0f);
      std::vector<float> got_grad(dim, -99.0f);
      const double want =
          ref().l1_sign_grad(a.data(), b.data(), dim, want_grad.data());
      const double got =
          ops().l1_sign_grad(a.data(), b.data(), dim, got_grad.data());
      EXPECT_NEAR(got, want, 1e-6 * (1.0 + std::abs(want)))
          << "dim=" << dim << " it=" << it;
      for (size_t i = 0; i < dim; ++i) {
        // The sign must be exact (it steers SGD), including the 0 case when
        // the operands are equal.
        EXPECT_EQ(got_grad[i], want_grad[i])
            << "dim=" << dim << " it=" << it << " i=" << i << " a=" << a[i]
            << " b=" << b[i];
      }
    }
  }
}

TEST_P(KernelBackendTest, AxpyMatchesScalar) {
  Rng rng(104);
  for (const size_t dim : kDims) {
    for (int it = 0; it < 50; ++it) {
      const auto base = RandomVec(dim, rng);
      const auto g = it % 2 == 0 ? RandomVec(dim, rng)
                                 : AdversarialVec(dim, rng, false, {});
      const float alpha = static_cast<float>(rng.UniformReal(-0.5, 0.5));
      auto want = base;
      auto got = base;
      ref().axpy(want.data(), g.data(), dim, alpha);
      ops().axpy(got.data(), g.data(), dim, alpha);
      for (size_t i = 0; i < dim; ++i) {
        // FMA variants skip the intermediate rounding of alpha * g[i]; allow
        // a tiny relative difference.
        EXPECT_NEAR(got[i], want[i], 1e-5 * (1.0 + std::abs(want[i])))
            << "dim=" << dim << " it=" << it << " i=" << i;
      }
    }
  }
}

TEST_P(KernelBackendTest, QuantizedDistMatchesScalar) {
  Rng rng(105);
  for (const size_t dim : kDims) {
    for (int it = 0; it < 50; ++it) {
      const auto a = RandomBytes(dim, rng);
      const auto b = RandomBytes(dim, rng);
      std::vector<float> steps(dim);
      for (float& s : steps) {
        s = static_cast<float>(rng.UniformReal(1e-4, 0.1));
      }
      const double want = ref().qdist(a.data(), b.data(), steps.data(), dim);
      const double got = ops().qdist(a.data(), b.data(), steps.data(), dim);
      // Vector variants accumulate in float; differences stay tiny because
      // |a-b| <= 255 and steps are small.
      EXPECT_NEAR(got, want, 1e-4 * (1.0 + std::abs(want)))
          << "dim=" << dim << " it=" << it;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, KernelBackendTest,
    ::testing::ValuesIn(
        [] {
          std::vector<const char*> names;
          for (const char* const* n = SupportedKernelBackends(); *n != nullptr;
               ++n) {
            names.push_back(*n);
          }
          return names;
        }()),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

TEST(KernelDispatchTest, ActiveBackendIsSupported) {
  const char* active = KernelBackendName();
  bool found = false;
  for (const char* const* n = SupportedKernelBackends(); *n != nullptr; ++n) {
    if (std::string(*n) == active) found = true;
  }
  EXPECT_TRUE(found) << active;
  EXPECT_NE(KernelBackendByName(active), nullptr);
  EXPECT_EQ(KernelBackendByName("no-such-backend"), nullptr);
}

TEST(KernelDispatchTest, ScalarAlwaysSupported) {
  EXPECT_EQ(KernelBackendByName("scalar"), &ScalarKernels());
}

TEST(KernelWrapperTest, SpanWrappersUseActiveBackend) {
  Rng rng(106);
  const auto a = RandomVec(64, rng);
  const auto b = RandomVec(64, rng);
  EXPECT_NEAR(L1Kernel(a, b), ActiveKernels().l1(a.data(), b.data(), 64),
              1e-12);
  EXPECT_NEAR(L2SquaredKernel(a, b),
              ActiveKernels().l2sq(a.data(), b.data(), 64), 1e-12);
  std::vector<float> grad(64);
  const double d = L1SignGradKernel(a, b, grad);
  EXPECT_NEAR(d, L1Kernel(a, b), 1e-9);
  auto row = a;
  AxpyKernel(std::span<float>(row), b, 0.0f);
  for (size_t i = 0; i < row.size(); ++i) EXPECT_EQ(row[i], a[i]);
}

}  // namespace
}  // namespace rne
