// Differential correctness harness: every backend in the serving registry is
// fuzzed against an exact Dijkstra oracle on small generator graphs. Exact
// backends (dijkstra, ch, h2h, gtree) must match the oracle to float
// epsilon. Approximate backends split three ways: "alt" serves the LT
// triangle-bound estimate (sanity checks only), the learned model must stay
// inside a loose aggregate error envelope, and the quantized model must stay
// within the analytic quantization bound of the model it was derived from.
//
// Every fuzz loop derives its pairs from one seed, printed at start-up and
// attached to each failure; set RNE_DIFF_SEED=<n> to replay a failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algo/dijkstra.h"
#include "baselines/gtree.h"
#include "core/quantized.h"
#include "core/rne.h"
#include "graph/generators.h"
#include "serve/backend.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace rne::serve {
namespace {

uint64_t FuzzSeed() {
  static const uint64_t seed = [] {
    uint64_t s = 20260807;
    if (const char* env = std::getenv("RNE_DIFF_SEED")) {
      s = std::strtoull(env, nullptr, 10);
    }
    std::fprintf(stderr,
                 "[differential] fuzz seed = %llu "
                 "(replay with RNE_DIFF_SEED=%llu)\n",
                 static_cast<unsigned long long>(s),
                 static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Exact kNN ground truth from single-source Dijkstra: the k closest
/// reachable vertices (including s itself at distance 0), ascending.
std::vector<std::pair<VertexId, double>> OracleKnn(DijkstraSearch& dij,
                                                   VertexId s, size_t k) {
  const std::vector<double>& dist = dij.AllDistances(s);
  std::vector<std::pair<double, VertexId>> order;
  for (VertexId v = 0; v < dist.size(); ++v) {
    if (dist[v] != kInfDistance) order.emplace_back(dist[v], v);
  }
  const size_t take = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + take, order.end());
  std::vector<std::pair<VertexId, double>> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.emplace_back(order[i].second, order[i].first);
  }
  return out;
}

class DifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RoadNetworkConfig cfg;
    cfg.rows = 14;
    cfg.cols = 14;
    cfg.seed = 42;
    graph_ = new Graph(MakeRoadNetwork(cfg));

    RneConfig config;
    config.dim = 32;
    config.train.level_samples = 5000;
    config.train.vertex_samples = 30000;
    config.train.finetune_rounds = 1;
    config.train.finetune_samples = 6000;
    model_ = new Rne(Rne::Build(*graph_, config));

    model_path_ = new std::string(TempPath("differential_model.rne"));
    quant_path_ = new std::string(TempPath("differential_model.qrne"));
    ASSERT_TRUE(model_->Save(*model_path_).ok());
    ASSERT_TRUE(QuantizedRne(*model_).Save(*quant_path_).ok());

    backends_ = new std::map<std::string, std::unique_ptr<QueryBackend>>();
    BackendContext ctx;
    ctx.graph = graph_;
    ctx.num_workers = 1;
    for (const std::string& name : RegisteredBackendNames()) {
      ctx.model_path = name == "rne-quantized" ? *quant_path_ : *model_path_;
      auto backend = MakeBackend(name, ctx);
      ASSERT_TRUE(backend.ok())
          << name << ": " << backend.status().ToString();
      (*backends_)[name] = std::move(backend).value();
    }
  }

  static void TearDownTestSuite() {
    delete backends_;
    std::filesystem::remove(*model_path_);
    std::filesystem::remove(*quant_path_);
    delete quant_path_;
    delete model_path_;
    delete model_;
    delete graph_;
  }

  /// Worst-case de-normalized L1 error introduced by 8-bit quantization:
  /// each coordinate is off by at most one per-dimension step, so two rows
  /// differ by at most scale * sum_d(step_d) where step_d = range_d / 255.
  static double QuantizationBound() {
    const EmbeddingMatrix& emb = model_->vertex_embeddings();
    double bound = 0.0;
    for (size_t d = 0; d < emb.dim(); ++d) {
      float lo = emb.Row(0)[d], hi = emb.Row(0)[d];
      for (size_t v = 1; v < emb.rows(); ++v) {
        lo = std::min(lo, emb.Row(v)[d]);
        hi = std::max(hi, emb.Row(v)[d]);
      }
      bound += static_cast<double>(hi - lo) / 255.0;
    }
    return model_->scale() * bound;
  }

  static Graph* graph_;
  static Rne* model_;
  static std::string* model_path_;
  static std::string* quant_path_;
  static std::map<std::string, std::unique_ptr<QueryBackend>>* backends_;
};

Graph* DifferentialTest::graph_ = nullptr;
Rne* DifferentialTest::model_ = nullptr;
std::string* DifferentialTest::model_path_ = nullptr;
std::string* DifferentialTest::quant_path_ = nullptr;
std::map<std::string, std::unique_ptr<QueryBackend>>*
    DifferentialTest::backends_ = nullptr;

TEST_F(DifferentialTest, EveryBuiltinBackendIsUnderTest) {
  for (const char* name :
       {"rne", "rne-quantized", "dijkstra", "ch", "h2h", "alt", "gtree"}) {
    EXPECT_TRUE(backends_->count(name)) << name;
  }
}

TEST_F(DifferentialTest, DistanceFuzzAgainstDijkstraOracle) {
  const uint64_t seed = FuzzSeed();
  Rng rng(seed);
  DijkstraSearch oracle(*graph_);
  const size_t n = graph_->NumVertices();
  const double quant_bound = QuantizationBound();
  QueryBackend* rne_full = (*backends_)["rne"].get();

  double rel_err_sum = 0.0;
  size_t rel_err_count = 0;
  constexpr int kPairs = 250;
  for (int i = 0; i < kPairs; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    SCOPED_TRACE(testing::Message() << "seed=" << seed << " pair#" << i
                                    << " s=" << s << " t=" << t);
    const double exact = oracle.Distance(s, t);
    ASSERT_NE(exact, kInfDistance);  // generator graphs are connected
    const double learned = rne_full->Distance(s, t);
    for (const auto& [name, backend] : *backends_) {
      const double got = backend->Distance(s, t);
      ASSERT_TRUE(std::isfinite(got)) << name;
      EXPECT_GE(got, 0.0) << name;
      if (backend->IsExact()) {
        EXPECT_NEAR(got, exact, 1e-6 + 1e-9 * exact) << name;
      } else if (name == "rne-quantized") {
        // Differential vs the full-precision model it was quantized from.
        EXPECT_NEAR(got, learned, quant_bound + 1e-6) << name;
      }
    }
    if (exact > 0.0) {
      rel_err_sum += std::abs(learned - exact) / exact;
      ++rel_err_count;
    }
  }
  // The learned model carries no per-query guarantee; hold the aggregate to
  // a loose envelope far above its typical error (~5-15% mean on these
  // grids) but tight enough to catch a mis-trained or corrupted matrix.
  ASSERT_GT(rel_err_count, 0);
  EXPECT_LT(rel_err_sum / static_cast<double>(rel_err_count), 0.5)
      << "seed=" << seed;
}

TEST_F(DifferentialTest, ExactBackendsAgreeOnSecondGenerator) {
  // Cheap re-check of the exact stack on a differently-shaped graph (kNN
  // geometric instead of perturbed grid). Learned backends are skipped:
  // training a second model is not worth the runtime here.
  const uint64_t seed = FuzzSeed() + 1;
  const Graph g =
      MakeRandomGeometricNetwork(150, 4, 1000.0, /*weight_jitter=*/0.2, seed);
  DijkstraSearch oracle(g);
  BackendContext ctx;
  ctx.graph = &g;
  Rng rng(seed);
  // "alt" is absent: AltIndex::Query is the approximate LT estimate (only
  // its A* entry point is exact), and the first fuzz test already covers it
  // through the IsExact() split.
  for (const char* name : {"dijkstra", "ch", "h2h", "gtree"}) {
    auto backend = MakeBackend(name, ctx);
    ASSERT_TRUE(backend.ok()) << name;
    for (int i = 0; i < 60; ++i) {
      const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
      const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
      const double exact = oracle.Distance(s, t);
      EXPECT_NEAR(backend.value()->Distance(s, t), exact,
                  1e-6 + 1e-9 * exact)
          << name << " seed=" << seed << " s=" << s << " t=" << t;
    }
  }
}

TEST_F(DifferentialTest, KnnFuzzAgainstDijkstraOracle) {
  const uint64_t seed = FuzzSeed() + 2;
  Rng rng(seed);
  DijkstraSearch oracle(*graph_);
  const size_t n = graph_->NumVertices();
  for (int i = 0; i < 20; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const size_t k = 1 + rng.UniformIndex(12);
    SCOPED_TRACE(testing::Message()
                 << "seed=" << seed << " s=" << s << " k=" << k);
    const auto truth = OracleKnn(oracle, s, k);
    for (const auto& [name, backend] : *backends_) {
      if (!backend->SupportsKnn()) continue;
      const auto got = backend->Knn(s, k);
      ASSERT_EQ(got.size(), truth.size()) << name;
      // Ascending by distance, valid ids, no duplicates — for every backend.
      for (size_t j = 0; j < got.size(); ++j) {
        EXPECT_LT(got[j].first, n) << name;
        if (j > 0) {
          EXPECT_GE(got[j].second, got[j - 1].second) << name;
        }
        for (size_t l = 0; l < j; ++l) {
          EXPECT_NE(got[j].first, got[l].first) << name << " duplicate";
        }
      }
      if (backend->IsExact()) {
        // Ids may differ on exact distance ties; the sorted distance
        // profiles must match.
        for (size_t j = 0; j < got.size(); ++j) {
          EXPECT_NEAR(got[j].second, truth[j].second, 1e-6)
              << name << " rank " << j;
        }
      } else {
        // Learned kNN is approximate: its own reported distances must at
        // least be self-consistent with the backend's distance function.
        for (size_t j = 0; j < got.size(); ++j) {
          EXPECT_NEAR(got[j].second, backend->Distance(s, got[j].first),
                      1e-3)
              << name << " rank " << j;
        }
      }
    }
  }
}

TEST_F(DifferentialTest, CachedAnswersAreBitIdenticalPerBackend) {
  // The result cache stores answers, never recomputes them — so for every
  // registered backend a cache hit must reproduce the uncached response
  // bit for bit (memcmp on the doubles, not EXPECT_NEAR).
  const uint64_t seed = FuzzSeed() + 4;
  const size_t n = graph_->NumVertices();
  for (const std::string& name : RegisteredBackendNames()) {
    SCOPED_TRACE(testing::Message() << "backend=" << name);
    BackendContext ctx;
    ctx.graph = graph_;
    ctx.num_workers = 1;
    ctx.model_path = name == "rne-quantized" ? *quant_path_ : *model_path_;
    auto backend = MakeBackend(name, ctx);
    ASSERT_TRUE(backend.ok()) << backend.status().ToString();
    const bool knn = backend.value()->SupportsKnn();

    EngineOptions options;
    options.num_threads = 2;
    QueryEngine engine(options);
    engine.AddReadyBackend(std::move(backend).value());
    ResultCache cache;
    CachedEngine cached(&engine, &cache);

    Rng rng(seed);
    std::vector<Request> requests;
    for (int i = 0; i < 40; ++i) {
      Request r;
      r.kind = RequestKind::kDistance;
      r.s = static_cast<VertexId>(rng.UniformIndex(n));
      r.t = static_cast<VertexId>(rng.UniformIndex(n));
      requests.push_back(r);
    }
    if (knn) {
      for (int i = 0; i < 10; ++i) {
        Request r;
        r.kind = RequestKind::kKnn;
        r.s = static_cast<VertexId>(rng.UniformIndex(n));
        r.k = 1 + rng.UniformIndex(8);
        requests.push_back(r);
      }
    }

    std::vector<Response> uncached, hits;
    ASSERT_TRUE(cached.QueryBatch(requests, &uncached).ok());
    ASSERT_TRUE(cached.QueryBatch(requests, &hits).ok());
    ASSERT_EQ(uncached.size(), hits.size());
    for (size_t i = 0; i < uncached.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "request#" << i);
      ASSERT_TRUE(uncached[i].status.ok())
          << uncached[i].status.ToString();
      EXPECT_FALSE(uncached[i].cached);
      EXPECT_TRUE(hits[i].cached);
      EXPECT_EQ(std::memcmp(&uncached[i].distance, &hits[i].distance,
                            sizeof(double)),
                0);
      ASSERT_EQ(uncached[i].knn.size(), hits[i].knn.size());
      for (size_t j = 0; j < uncached[i].knn.size(); ++j) {
        EXPECT_EQ(uncached[i].knn[j].first, hits[i].knn[j].first);
        EXPECT_EQ(std::memcmp(&uncached[i].knn[j].second,
                              &hits[i].knn[j].second, sizeof(double)),
                  0);
      }
      EXPECT_EQ(uncached[i].backend, hits[i].backend);
      EXPECT_EQ(uncached[i].exact, hits[i].exact);
    }
    EXPECT_EQ(cache.Stats().hits, requests.size());
  }
}

// ------------------------------------------------- mmap vs heap parity
//
// The zero-copy load paths (kMmap, kMmapCold, and for the quantized model
// kBlockCache) must serve *bit-identical* answers to the heap loader: same
// file, same doubles, compared with memcmp — never EXPECT_NEAR. Any
// difference means the sectioned layout and the eager deserializer disagree
// about the matrix bytes.

void ExpectBitIdentical(double want, double got, const char* mode,
                        VertexId s, VertexId t) {
  EXPECT_EQ(std::memcmp(&want, &got, sizeof(double)), 0)
      << mode << " s=" << s << " t=" << t << " heap=" << want
      << " served=" << got;
}

LoadOptions WithMode(LoadMode mode) {
  LoadOptions options;
  options.mode = mode;
  return options;
}

TEST_F(DifferentialTest, MmapServedRneBitIdenticalToHeap) {
  auto heap = Rne::Load(*model_path_);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  ASSERT_FALSE(heap.value().IsMapped());
  auto mapped = Rne::Load(*model_path_, WithMode(LoadMode::kMmap));
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().IsMapped());
  auto cold = Rne::Load(*model_path_, WithMode(LoadMode::kMmapCold));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(cold.value().IsMapped());

  Rng rng(FuzzSeed() + 10);
  const size_t n = graph_->NumVertices();
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < n; v += 7) targets.push_back(v);
  std::vector<double> want(targets.size()), got(targets.size());
  for (int i = 0; i < 300; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    const double reference = heap.value().Query(s, t);
    ExpectBitIdentical(reference, mapped.value().Query(s, t), "mmap", s, t);
    ExpectBitIdentical(reference, cold.value().Query(s, t), "cold", s, t);
  }
  // The batched entry point reads rows through the same zero-copy view.
  heap.value().QueryOneToMany(3, targets, want);
  mapped.value().QueryOneToMany(3, targets, got);
  EXPECT_EQ(std::memcmp(want.data(), got.data(),
                        want.size() * sizeof(double)),
            0);
}

TEST_F(DifferentialTest, MmapServedQuantizedBitIdenticalToHeap) {
  auto heap = QuantizedRne::Load(*quant_path_);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  auto mapped = QuantizedRne::Load(*quant_path_, WithMode(LoadMode::kMmap));
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().IsMapped());
  auto cold = QuantizedRne::Load(*quant_path_, WithMode(LoadMode::kMmapCold));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  LoadOptions blocks = WithMode(LoadMode::kBlockCache);
  blocks.block_bytes = 1024;
  blocks.block_count = 8;
  auto cached = QuantizedRne::Load(*quant_path_, blocks);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  EXPECT_TRUE(cached.value().IsBlockCached());

  Rng rng(FuzzSeed() + 11);
  const size_t n = graph_->NumVertices();
  for (int i = 0; i < 300; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    const double reference = heap.value().Query(s, t);
    ExpectBitIdentical(reference, mapped.value().Query(s, t), "mmap", s, t);
    ExpectBitIdentical(reference, cold.value().Query(s, t), "cold", s, t);
    ExpectBitIdentical(reference, cached.value().Query(s, t), "blockcache",
                       s, t);
  }
}

TEST_F(DifferentialTest, MmapServedGTreeBitIdenticalToHeap) {
  GTreeOptions options;
  options.fanout = 4;
  options.leaf_size = 16;
  const GTree built(*graph_, options);
  const std::string path = TempPath("differential_gtree.bin");
  ASSERT_TRUE(built.Save(path).ok());

  auto heap = GTree::Load(path, *graph_);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  auto mapped = GTree::Load(path, *graph_, WithMode(LoadMode::kMmap));
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().IsMapped());
  auto cold = GTree::Load(path, *graph_, WithMode(LoadMode::kMmapCold));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  Rng rng(FuzzSeed() + 12);
  const size_t n = graph_->NumVertices();
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    const double reference = heap.value().Distance(s, t);
    ExpectBitIdentical(reference, mapped.value().Distance(s, t), "mmap", s,
                       t);
    ExpectBitIdentical(reference, cold.value().Distance(s, t), "cold", s, t);
  }
  std::filesystem::remove(path);
}

TEST_F(DifferentialTest, MmapBackendsServeBitIdenticalAnswers) {
  // The registry-built backends that load model files must be oblivious to
  // the load mode: distances AND kNN results (ids and doubles) identical.
  Rng rng(FuzzSeed() + 13);
  const size_t n = graph_->NumVertices();
  for (const char* name : {"rne", "rne-quantized"}) {
    SCOPED_TRACE(testing::Message() << "backend=" << name);
    QueryBackend* heap = (*backends_)[name].get();
    for (const LoadMode mode : {LoadMode::kMmap, LoadMode::kMmapCold}) {
      BackendContext ctx;
      ctx.graph = graph_;
      ctx.num_workers = 1;
      ctx.model_path =
          std::string(name) == "rne-quantized" ? *quant_path_ : *model_path_;
      ctx.load = WithMode(mode);
      auto served = MakeBackend(name, ctx);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      for (int i = 0; i < 120; ++i) {
        const auto s = static_cast<VertexId>(rng.UniformIndex(n));
        const auto t = static_cast<VertexId>(rng.UniformIndex(n));
        ExpectBitIdentical(heap->Distance(s, t),
                           served.value()->Distance(s, t),
                           LoadModeName(mode), s, t);
      }
      if (heap->SupportsKnn()) {
        const auto want = heap->Knn(5, 8);
        const auto got = served.value()->Knn(5, 8);
        ASSERT_EQ(want.size(), got.size());
        for (size_t j = 0; j < want.size(); ++j) {
          EXPECT_EQ(want[j].first, got[j].first) << "rank " << j;
          EXPECT_EQ(std::memcmp(&want[j].second, &got[j].second,
                                sizeof(double)),
                    0)
              << "rank " << j;
        }
      }
    }
  }
}

TEST_F(DifferentialTest, SelfDistanceIsZeroForExactBackends) {
  Rng rng(FuzzSeed() + 3);
  const size_t n = graph_->NumVertices();
  for (int i = 0; i < 10; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    for (const auto& [name, backend] : *backends_) {
      // Exact backends by definition; learned ones because the self
      // embedding distance ||e_s - e_s|| is identically zero.
      EXPECT_NEAR(backend->Distance(s, s), 0.0, 1e-9) << name;
    }
  }
}

}  // namespace
}  // namespace rne::serve
