// Unit tests for the graph substrate: builder, CSR invariants, generators,
// DIMACS I/O, connected components, induced subgraphs.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "graph/dimacs.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"

namespace rne {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ------------------------------------------------------------ GraphBuilder

TEST(GraphBuilderTest, BuildsSortedCsr) {
  GraphBuilder b(4);
  b.AddEdge(0, 2, 5.0);
  b.AddEdge(0, 1, 3.0);
  b.AddEdge(2, 3, 1.0);
  const Graph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);
  const auto adj = g.Neighbors(0);
  ASSERT_EQ(adj.size(), 2u);
  EXPECT_EQ(adj[0].to, 1u);
  EXPECT_EQ(adj[1].to, 2u);
}

TEST(GraphBuilderTest, UndirectedSymmetry) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.0);
  const Graph g = b.Build();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 2.0);
  EXPECT_EQ(g.EdgeWeight(0, 2), kInfDistance);
}

TEST(GraphBuilderTest, DuplicateEdgesKeepMinWeight) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 5.0);
  b.AddEdge(1, 0, 2.0);
  b.AddEdge(0, 1, 9.0);
  const Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);
}

TEST(GraphBuilderTest, SelfLoopsDropped) {
  GraphBuilder b(2);
  b.AddEdge(0, 0, 1.0);
  b.AddEdge(0, 1, 1.0);
  EXPECT_EQ(b.Build().NumEdges(), 1u);
}

TEST(GraphBuilderTest, CoordsStored) {
  GraphBuilder b(2);
  b.SetCoord(0, {1.5, -2.5});
  b.AddEdge(0, 1, 1.0);
  const Graph g = b.Build();
  EXPECT_DOUBLE_EQ(g.Coord(0).x, 1.5);
  EXPECT_DOUBLE_EQ(g.Coord(0).y, -2.5);
}

TEST(GraphTest, TotalWeightCountsEachEdgeOnce) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(1, 2, 3.5);
  EXPECT_DOUBLE_EQ(b.Build().TotalWeight(), 5.5);
}

TEST(GraphTest, GeoDistances) {
  GraphBuilder b(2);
  b.SetCoord(0, {0.0, 0.0});
  b.SetCoord(1, {3.0, 4.0});
  b.AddEdge(0, 1, 10.0);
  const Graph g = b.Build();
  EXPECT_DOUBLE_EQ(EuclideanDistance(g, 0, 1), 5.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance(g, 0, 1), 7.0);
}

// -------------------------------------------------------------- generators

TEST(GeneratorsTest, GridNetworkShape) {
  const Graph g = MakeGridNetwork(5, 7);
  EXPECT_EQ(g.NumVertices(), 35u);
  // 4-connected grid: r*(c-1) + (r-1)*c edges.
  EXPECT_EQ(g.NumEdges(), 5u * 6u + 4u * 7u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GeneratorsTest, GridWeightsAtLeastEuclidean) {
  const Graph g = MakeGridNetwork(6, 6, 100.0, 0.3, 0.2, 11);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Edge& e : g.Neighbors(v)) {
      EXPECT_GE(e.weight, EuclideanDistance(g, v, e.to) - 1e-9)
          << "edge weight below geometric length breaks A* admissibility";
    }
  }
}

TEST(GeneratorsTest, RoadNetworkConnectedAndIrregular) {
  RoadNetworkConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.seed = 5;
  const Graph g = MakeRoadNetwork(cfg);
  EXPECT_EQ(g.NumVertices(), 256u);
  EXPECT_TRUE(g.IsConnected());
  // Some grid edges were removed: fewer than the full grid count plus
  // diagonals/highways bound.
  EXPECT_LT(g.NumEdges(), 16u * 15u * 2u + 200u);
}

TEST(GeneratorsTest, RoadNetworkDeterministicPerSeed) {
  RoadNetworkConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.seed = 123;
  const Graph a = MakeRoadNetwork(cfg);
  const Graph b = MakeRoadNetwork(cfg);
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    ASSERT_EQ(a.Degree(v), b.Degree(v));
  }
}

TEST(GeneratorsTest, RandomGeometricConnected) {
  const Graph g = MakeRandomGeometricNetwork(300, 4, 1000.0, 0.2, 17);
  EXPECT_GT(g.NumVertices(), 150u);  // largest component retained
  EXPECT_TRUE(g.IsConnected());
}

TEST(GeneratorsTest, LargestConnectedComponent) {
  GraphBuilder b(6);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);  // component {0,1,2}
  b.AddEdge(3, 4, 1.0);  // component {3,4}
  // vertex 5 isolated
  const auto [lcc, mapping] = LargestConnectedComponent(b.Build());
  EXPECT_EQ(lcc.NumVertices(), 3u);
  EXPECT_TRUE(lcc.IsConnected());
  EXPECT_EQ(mapping, (std::vector<VertexId>{0, 1, 2}));
}

// ------------------------------------------------------------------ DIMACS

TEST(DimacsTest, SaveLoadRoundTrip) {
  const Graph g = MakeGridNetwork(4, 4, 50.0, 0.2, 0.1, 3);
  const std::string gr = TempPath("rne_test.gr");
  const std::string co = TempPath("rne_test.co");
  ASSERT_TRUE(SaveDimacs(g, gr, co).ok());
  auto loaded = LoadDimacs(gr, co);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Graph& h = loaded.value();
  ASSERT_EQ(h.NumVertices(), g.NumVertices());
  ASSERT_EQ(h.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NEAR(h.Coord(v).x, g.Coord(v).x, 1e-4);
    for (const Edge& e : g.Neighbors(v)) {
      EXPECT_NEAR(h.EdgeWeight(v, e.to), e.weight, 1e-4);
    }
  }
  std::filesystem::remove(gr);
  std::filesystem::remove(co);
}

TEST(DimacsTest, MissingFileReturnsIoError) {
  const auto result = LoadDimacs("/definitely/not/here.gr");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(DimacsTest, CorruptFileRejected) {
  const std::string path = TempPath("rne_corrupt.gr");
  {
    std::ofstream out(path);
    out << "a 1 2 3\n";  // arc before problem line
  }
  const auto result = LoadDimacs(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

// --------------------------------------------------------------- subgraph

TEST(SubgraphTest, InducedSubgraphKeepsInternalEdges) {
  GraphBuilder b(5);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 2.0);
  b.AddEdge(2, 3, 3.0);
  b.AddEdge(3, 4, 4.0);
  b.SetCoord(1, {10.0, 0.0});
  const Graph g = b.Build();
  const auto [sub, mapping] = InducedSubgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.NumVertices(), 3u);
  EXPECT_EQ(sub.NumEdges(), 2u);  // 1-2 and 2-3; edges to 0/4 dropped
  EXPECT_DOUBLE_EQ(sub.EdgeWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(sub.Coord(0).x, 10.0);
  EXPECT_EQ(mapping, (std::vector<VertexId>{1, 2, 3}));
}

}  // namespace
}  // namespace rne
