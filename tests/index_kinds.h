// Shared catalogue of persistable index kinds for persistence/robustness
// tests: each entry knows how to build-and-save a small index of its kind
// and how to load one, reporting only the Status. Used by the parameterized
// envelope sweep (persistence_test.cc) and the corruption harness
// (fault_injection_test.cc).
#ifndef RNE_TESTS_INDEX_KINDS_H_
#define RNE_TESTS_INDEX_KINDS_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/gtree.h"
#include "baselines/h2h.h"
#include "core/quantized.h"
#include "core/rne.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace rne {

struct IndexKindParam {
  const char* name;
  uint32_t magic;
  std::function<Status(const Graph&, const std::string&)> build_and_save;
  std::function<Status(const std::string&, const Graph&)> load;
  /// Cold-map load (LoadMode::kMmapCold) followed by full lazy-section
  /// verification, collapsed to one Status: either the open-time structural
  /// checks or the deferred checksum pass must reject a corrupt file —
  /// never crash. Null for kinds without a zero-copy load path.
  std::function<Status(const std::string&, const Graph&)> load_cold;
};

inline RneConfig SmallRneConfig() {
  RneConfig config;
  config.dim = 8;
  config.train.level_samples = 500;
  config.train.vertex_samples = 2000;
  config.fine_tune = false;
  return config;
}

inline LoadOptions ColdLoadOptions() {
  LoadOptions options;
  options.mode = LoadMode::kMmapCold;
  return options;
}

inline std::vector<IndexKindParam> AllIndexKinds() {
  return {
      {"Rne", kRneMagic,
       [](const Graph& g, const std::string& path) {
         return Rne::Build(g, SmallRneConfig()).Save(path);
       },
       [](const std::string& path, const Graph&) {
         return Rne::Load(path).status();
       },
       [](const std::string& path, const Graph&) {
         auto model = Rne::Load(path, ColdLoadOptions());
         if (!model.ok()) return model.status();
         return model.value().VerifyMapped();
       }},
      {"QuantizedRne", kQuantMagic,
       [](const Graph& g, const std::string& path) {
         return QuantizedRne(Rne::Build(g, SmallRneConfig())).Save(path);
       },
       [](const std::string& path, const Graph&) {
         return QuantizedRne::Load(path).status();
       },
       [](const std::string& path, const Graph&) {
         auto model = QuantizedRne::Load(path, ColdLoadOptions());
         if (!model.ok()) return model.status();
         return model.value().VerifyMapped();
       }},
      {"ContractionHierarchy", kChMagic,
       [](const Graph& g, const std::string& path) {
         return ContractionHierarchy(g).Save(path);
       },
       [](const std::string& path, const Graph&) {
         return ContractionHierarchy::Load(path).status();
       },
       nullptr},
      {"H2HIndex", kH2hMagic,
       [](const Graph& g, const std::string& path) {
         return H2HIndex(g).Save(path);
       },
       [](const std::string& path, const Graph&) {
         return H2HIndex::Load(path).status();
       },
       nullptr},
      {"AltIndex", kAltMagic,
       [](const Graph& g, const std::string& path) {
         Rng rng(11);
         return AltIndex(g, 4, rng).Save(path);
       },
       [](const std::string& path, const Graph& g) {
         return AltIndex::Load(path, g).status();
       },
       nullptr},
      {"GTree", kGTreeMagic,
       [](const Graph& g, const std::string& path) {
         GTreeOptions options;
         options.fanout = 4;
         options.leaf_size = 8;
         return GTree(g, options).Save(path);
       },
       [](const std::string& path, const Graph& g) {
         return GTree::Load(path, g).status();
       },
       [](const std::string& path, const Graph& g) {
         auto tree = GTree::Load(path, g, ColdLoadOptions());
         if (!tree.ok()) return tree.status();
         return tree.value().VerifyMapped();
       }},
  };
}

}  // namespace rne

#endif  // RNE_TESTS_INDEX_KINDS_H_
