// Cross-cutting property tests: metric-space invariants of the served RNE
// model, estimator sanity under degenerate inputs, disconnected-graph
// behaviour of every method, loader robustness against malformed files, and
// envelope-format properties (v1 compatibility, v2 section-table fuzz).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/gtree.h"
#include "baselines/h2h.h"
#include "core/rne.h"
#include "core/spatial_grid.h"
#include "graph/dimacs.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/mmap_file.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace rne {
namespace {

// ------------------------------------------- RNE metric-space invariants

class RneMetricProperties : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RoadNetworkConfig cfg;
    cfg.rows = 14;
    cfg.cols = 14;
    cfg.seed = 31;
    graph_ = new Graph(MakeRoadNetwork(cfg));
    RneConfig config;
    config.dim = 32;
    config.train.level_samples = 3000;
    config.train.vertex_samples = 20000;
    config.train.finetune_rounds = 0;
    model_ = new Rne(Rne::Build(*graph_, config));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete graph_;
  }
  static Graph* graph_;
  static Rne* model_;
};
Graph* RneMetricProperties::graph_ = nullptr;
Rne* RneMetricProperties::model_ = nullptr;

TEST_F(RneMetricProperties, NonNegativityAndIdentity) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    EXPECT_GE(model_->Query(s, t), 0.0);
    EXPECT_DOUBLE_EQ(model_->Query(s, s), 0.0);
  }
}

TEST_F(RneMetricProperties, Symmetry) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    EXPECT_NEAR(model_->Query(s, t), model_->Query(t, s), 1e-9);
  }
}

TEST_F(RneMetricProperties, TriangleInequality) {
  // The L1 metric on served vectors guarantees this unconditionally —
  // a property exact methods like LT bounds rely on.
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const auto a = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto b = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto c = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    EXPECT_LE(model_->Query(a, c),
              model_->Query(a, b) + model_->Query(b, c) + 1e-6);
  }
}

// -------------------------------------------------- disconnected graphs

Graph TwoComponents() {
  GraphBuilder b(8);
  for (VertexId v = 0; v < 8; ++v) {
    b.SetCoord(v, {static_cast<double>(v % 4) * 100.0,
                   v < 4 ? 0.0 : 1000.0});
  }
  for (VertexId v = 0; v + 1 < 4; ++v) b.AddEdge(v, v + 1, 100.0);
  for (VertexId v = 4; v + 1 < 8; ++v) b.AddEdge(v, v + 1, 100.0);
  return b.Build();
}

TEST(DisconnectedTest, H2hReturnsInfinityAcrossComponents) {
  const Graph g = TwoComponents();
  H2HIndex h2h(g);
  EXPECT_EQ(h2h.Query(0, 5), kInfDistance);
  EXPECT_NEAR(h2h.Query(0, 3), 300.0, 1e-9);
  EXPECT_NEAR(h2h.Query(4, 7), 300.0, 1e-9);
}

TEST(DisconnectedTest, ChReturnsInfinityAcrossComponents) {
  const Graph g = TwoComponents();
  ContractionHierarchy ch(g);
  EXPECT_EQ(ch.Query(1, 6), kInfDistance);
  EXPECT_NEAR(ch.Query(0, 2), 200.0, 1e-9);
}

TEST(DisconnectedTest, GtreeReturnsInfinityAcrossComponents) {
  const Graph g = TwoComponents();
  GTreeOptions opt;
  opt.fanout = 2;
  opt.leaf_size = 3;
  GTree gtree(g, opt);
  EXPECT_EQ(gtree.Distance(0, 5), kInfDistance);
  EXPECT_NEAR(gtree.Distance(0, 3), 300.0, 1e-9);
}

TEST(DisconnectedTest, AltBoundsStayConsistent) {
  const Graph g = TwoComponents();
  Rng rng(4);
  AltIndex alt(g, 3, rng);
  // Bounds must bracket reachable pairs even when some landmarks are in the
  // other component.
  EXPECT_LE(alt.LowerBound(0, 3), 300.0 + 1e-9);
  EXPECT_GE(alt.UpperBound(0, 3), 300.0 - 1e-9);
}

// ------------------------------------------------------ degenerate inputs

TEST(DegenerateTest, SpatialGridAllCoincidentPoints) {
  GraphBuilder b(5);
  for (VertexId v = 0; v < 5; ++v) b.SetCoord(v, {1.0, 1.0});
  for (VertexId v = 0; v + 1 < 5; ++v) b.AddEdge(v, v + 1, 1.0);
  const Graph g = b.Build();
  const SpatialGrid grid(g, 4);
  // All vertices land in one cell; only bucket 0 is usable.
  EXPECT_TRUE(grid.BucketNonEmpty(0));
  Rng rng(5);
  VertexId s, t;
  ASSERT_TRUE(grid.SamplePair(0, rng, &s, &t));
  EXPECT_EQ(grid.BucketOfPair(s, t), 0u);
}

TEST(DegenerateTest, TinyGraphsBuildEverywhere) {
  GraphBuilder b(2);
  b.SetCoord(0, {0, 0});
  b.SetCoord(1, {100, 0});
  b.AddEdge(0, 1, 123.0);
  const Graph g = b.Build();

  ContractionHierarchy ch(g);
  EXPECT_NEAR(ch.Query(0, 1), 123.0, 1e-9);
  H2HIndex h2h(g);
  EXPECT_NEAR(h2h.Query(0, 1), 123.0, 1e-9);
  GTreeOptions opt;
  opt.leaf_size = 1;
  opt.fanout = 2;
  GTree gtree(g, opt);
  EXPECT_NEAR(gtree.Distance(0, 1), 123.0, 1e-9);
}

TEST(DegenerateTest, HierarchySingleVertexGraphRejectedByRne) {
  // Rne requires >= 2 vertices; the hierarchy itself handles 1.
  GraphBuilder b(1);
  const Graph g = b.Build();
  HierarchyOptions opt;
  const PartitionHierarchy h = PartitionHierarchy::Build(g, opt);
  EXPECT_EQ(h.num_nodes(), 1u);
}

// --------------------------------------------------------- loader fuzzing

TEST(DimacsFuzzTest, MalformedLinesRejectedNotCrashed) {
  const std::vector<std::string> bad_contents = {
      "p sp 0 0\n",                        // zero vertices
      "p sp 3 1\na 0 1 5\n",               // vertex id 0 (DIMACS is 1-based)
      "p sp 3 1\na 1 9 5\n",               // vertex id out of range
      "p sp 3 1\na 1 2 -5\n",              // negative weight
      "p sp 3 1\na 1 2\n",                 // missing weight
      "p sp x y\n",                        // garbage counts
  };
  int rejected = 0;
  for (size_t i = 0; i < bad_contents.size(); ++i) {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("rne_fuzz_" + std::to_string(i) + ".gr"))
            .string();
    {
      std::ofstream out(path);
      out << bad_contents[i];
    }
    const auto result = LoadDimacs(path);
    rejected += !result.ok();
    std::filesystem::remove(path);
  }
  EXPECT_EQ(rejected, static_cast<int>(bad_contents.size()));
}

TEST(DimacsFuzzTest, CommentsAndBlankLinesTolerated) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rne_fuzz_ok.gr").string();
  {
    std::ofstream out(path);
    out << "c header comment\n\np sp 2 2\nc mid comment\na 1 2 7.5\na 2 1 "
           "7.5\n";
  }
  const auto result = LoadDimacs(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().NumVertices(), 2u);
  EXPECT_NEAR(result.value().EdgeWeight(0, 1), 7.5, 1e-9);
  std::filesystem::remove(path);
}

// ------------------------------------------- envelope format properties

std::string PropTempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(EnvelopeCompatTest, LegacyV1SaveLoadsWithIdenticalModel) {
  // A downgraded (v1) save must round-trip through the heap loader into a
  // bit-identical model, and a zero-copy load request on it must quietly
  // fall back to the heap path: v1 has no sections to map.
  const Graph g = MakeGridNetwork(8, 8);
  RneConfig config;
  config.dim = 8;
  config.train.level_samples = 500;
  config.train.vertex_samples = 2000;
  config.fine_tune = false;
  const Rne model = Rne::Build(g, config);
  const std::string v1 = PropTempPath("rne_compat_v1.bin");
  const std::string v2 = PropTempPath("rne_compat_v2.bin");
  ASSERT_TRUE(model.Save(v1, SaveFormat::kLegacyV1).ok());
  ASSERT_TRUE(model.Save(v2).ok());

  const auto v1_info = InspectEnvelope(v1);
  ASSERT_TRUE(v1_info.ok()) << v1_info.status().ToString();
  EXPECT_EQ(v1_info.value().format_version, kFormatVersionV1);
  EXPECT_TRUE(v1_info.value().sections.empty());
  const auto v2_info = InspectEnvelope(v2);
  ASSERT_TRUE(v2_info.ok());
  EXPECT_EQ(v2_info.value().format_version, kFormatVersionV2);
  EXPECT_FALSE(v2_info.value().sections.empty());

  auto legacy = Rne::Load(v1);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  auto sectioned = Rne::Load(v2);
  ASSERT_TRUE(sectioned.ok());
  LoadOptions mmap_options;
  mmap_options.mode = LoadMode::kMmap;
  auto fallback = Rne::Load(v1, mmap_options);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_FALSE(fallback.value().IsMapped()) << "v1 cannot be served mapped";

  for (VertexId s = 0; s < g.NumVertices(); s += 5) {
    for (VertexId t = 1; t < g.NumVertices(); t += 7) {
      const double want = model.Query(s, t);
      for (const Rne* loaded :
           {&legacy.value(), &sectioned.value(), &fallback.value()}) {
        const double got = loaded->Query(s, t);
        ASSERT_EQ(std::memcmp(&want, &got, sizeof(double)), 0)
            << "s=" << s << " t=" << t;
      }
    }
  }
  // A v1 file is byte-for-byte what the pre-section writer produced: the
  // envelope header says version 1 and the trailer is the payload CRC, so
  // older readers (which reject unknown versions) stay compatible.
  EXPECT_EQ(v1_info.value().payload_size + kEnvelopeHeaderSize +
                kEnvelopeTrailerSize,
            std::filesystem::file_size(v1));
  std::filesystem::remove(v1);
  std::filesystem::remove(v2);
}

TEST(EnvelopeFuzzTest, SectionTableRoundTripsRandomSizesAndAlignments) {
  // Property: any set of sections (random count, sizes, alignments, flags)
  // written through BinaryWriter::AddSection is read back bit-identically
  // by both BinaryReader (streaming) and MappedEnvelope (zero-copy), with
  // every checksum passing.
  Rng rng(20260809);
  const std::string path = PropTempPath("rne_section_fuzz.bin");
  constexpr uint64_t kAlignments[] = {64, 128, 256, 1024, 4096};
  for (int round = 0; round < 15; ++round) {
    SCOPED_TRACE(testing::Message() << "round " << round);
    const size_t num_sections = 1 + rng.UniformIndex(4);
    std::vector<std::vector<uint8_t>> payloads(num_sections);
    std::vector<uint64_t> alignments(num_sections);
    {
      BinaryWriter w(path, kHierarchyMagic);
      for (size_t i = 0; i < num_sections; ++i) {
        payloads[i].resize(1 + rng.UniformIndex(5000));
        for (auto& b : payloads[i]) {
          b = static_cast<uint8_t>(rng.UniformIndex(256));
        }
        alignments[i] = kAlignments[rng.UniformIndex(5)];
        w.AddSection(static_cast<uint32_t>(0x10 + i), payloads[i].data(),
                     payloads[i].size(),
                     i % 2 == 0 ? kSectionFlagLazyVerify : 0,
                     alignments[i]);
      }
      // Metadata payload of random length rides along.
      std::vector<uint32_t> meta(rng.UniformIndex(64));
      for (auto& m : meta) m = static_cast<uint32_t>(rng.UniformIndex(1000));
      w.WriteVector(meta);
      ASSERT_TRUE(w.Finish().ok());
    }

    // Streaming reader: structure, payload, then every section.
    BinaryReader r(path, kHierarchyMagic);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.format_version(), kFormatVersionV2);
    ASSERT_EQ(r.sections().size(), num_sections);
    std::vector<uint32_t> meta;
    ASSERT_TRUE(r.ReadVector(&meta));
    ASSERT_TRUE(r.Finish().ok());
    ASSERT_TRUE(r.VerifyAllSections().ok());
    for (size_t i = 0; i < num_sections; ++i) {
      const uint32_t tag = static_cast<uint32_t>(0x10 + i);
      const SectionInfo* sec = r.FindSection(tag);
      ASSERT_NE(sec, nullptr);
      ASSERT_EQ(sec->size, payloads[i].size());
      EXPECT_EQ(sec->offset % alignments[i], 0u);
      std::vector<uint8_t> data(sec->size);
      ASSERT_TRUE(r.ReadSectionInto(tag, data.data(), data.size()).ok());
      EXPECT_EQ(data, payloads[i]);
    }

    // Zero-copy reader: the mapped view serves the same bytes in place.
    for (const LoadMode mode : {LoadMode::kMmap, LoadMode::kMmapCold}) {
      auto env = MappedEnvelope::Open(path, kHierarchyMagic, mode);
      ASSERT_TRUE(env.ok()) << env.status().ToString();
      ASSERT_TRUE(env.value()->EnsureAllVerified().ok());
      for (size_t i = 0; i < num_sections; ++i) {
        const uint8_t* data =
            env.value()->SectionData(static_cast<uint32_t>(0x10 + i));
        ASSERT_NE(data, nullptr);
        EXPECT_EQ(std::memcmp(data, payloads[i].data(), payloads[i].size()),
                  0);
      }
      EXPECT_EQ(env.value()->SectionData(0xFF), nullptr);
    }
  }
  std::filesystem::remove(path);
}

TEST(EnvelopeFuzzTest, SectionlessWriterStillEmitsV1) {
  // With no AddSection call the writer's output must remain the v1 layout,
  // so index kinds without big flat arrays are untouched by the migration.
  const std::string path = PropTempPath("rne_sectionless.bin");
  {
    BinaryWriter w(path, kHierarchyMagic);
    w.WritePod<uint64_t>(7);
    ASSERT_TRUE(w.Finish().ok());
  }
  const auto info = InspectEnvelope(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().format_version, kFormatVersionV1);
  EXPECT_TRUE(info.value().sections.empty());
  EXPECT_EQ(std::filesystem::file_size(path),
            kEnvelopeHeaderSize + sizeof(uint64_t) + kEnvelopeTrailerSize);
  // And a v1 file is FailedPrecondition for the mapper — the loaders use
  // that signal to fall back to the heap path.
  EXPECT_EQ(
      MappedEnvelope::Open(path, kHierarchyMagic, LoadMode::kMmap).status()
          .code(),
      StatusCode::kFailedPrecondition);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rne
