// Cross-cutting property tests: metric-space invariants of the served RNE
// model, estimator sanity under degenerate inputs, disconnected-graph
// behaviour of every method, and loader robustness against malformed files.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/gtree.h"
#include "baselines/h2h.h"
#include "core/rne.h"
#include "core/spatial_grid.h"
#include "graph/dimacs.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace rne {
namespace {

// ------------------------------------------- RNE metric-space invariants

class RneMetricProperties : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RoadNetworkConfig cfg;
    cfg.rows = 14;
    cfg.cols = 14;
    cfg.seed = 31;
    graph_ = new Graph(MakeRoadNetwork(cfg));
    RneConfig config;
    config.dim = 32;
    config.train.level_samples = 3000;
    config.train.vertex_samples = 20000;
    config.train.finetune_rounds = 0;
    model_ = new Rne(Rne::Build(*graph_, config));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete graph_;
  }
  static Graph* graph_;
  static Rne* model_;
};
Graph* RneMetricProperties::graph_ = nullptr;
Rne* RneMetricProperties::model_ = nullptr;

TEST_F(RneMetricProperties, NonNegativityAndIdentity) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    EXPECT_GE(model_->Query(s, t), 0.0);
    EXPECT_DOUBLE_EQ(model_->Query(s, s), 0.0);
  }
}

TEST_F(RneMetricProperties, Symmetry) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    EXPECT_NEAR(model_->Query(s, t), model_->Query(t, s), 1e-9);
  }
}

TEST_F(RneMetricProperties, TriangleInequality) {
  // The L1 metric on served vectors guarantees this unconditionally —
  // a property exact methods like LT bounds rely on.
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const auto a = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto b = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    const auto c = static_cast<VertexId>(rng.UniformIndex(graph_->NumVertices()));
    EXPECT_LE(model_->Query(a, c),
              model_->Query(a, b) + model_->Query(b, c) + 1e-6);
  }
}

// -------------------------------------------------- disconnected graphs

Graph TwoComponents() {
  GraphBuilder b(8);
  for (VertexId v = 0; v < 8; ++v) {
    b.SetCoord(v, {static_cast<double>(v % 4) * 100.0,
                   v < 4 ? 0.0 : 1000.0});
  }
  for (VertexId v = 0; v + 1 < 4; ++v) b.AddEdge(v, v + 1, 100.0);
  for (VertexId v = 4; v + 1 < 8; ++v) b.AddEdge(v, v + 1, 100.0);
  return b.Build();
}

TEST(DisconnectedTest, H2hReturnsInfinityAcrossComponents) {
  const Graph g = TwoComponents();
  H2HIndex h2h(g);
  EXPECT_EQ(h2h.Query(0, 5), kInfDistance);
  EXPECT_NEAR(h2h.Query(0, 3), 300.0, 1e-9);
  EXPECT_NEAR(h2h.Query(4, 7), 300.0, 1e-9);
}

TEST(DisconnectedTest, ChReturnsInfinityAcrossComponents) {
  const Graph g = TwoComponents();
  ContractionHierarchy ch(g);
  EXPECT_EQ(ch.Query(1, 6), kInfDistance);
  EXPECT_NEAR(ch.Query(0, 2), 200.0, 1e-9);
}

TEST(DisconnectedTest, GtreeReturnsInfinityAcrossComponents) {
  const Graph g = TwoComponents();
  GTreeOptions opt;
  opt.fanout = 2;
  opt.leaf_size = 3;
  GTree gtree(g, opt);
  EXPECT_EQ(gtree.Distance(0, 5), kInfDistance);
  EXPECT_NEAR(gtree.Distance(0, 3), 300.0, 1e-9);
}

TEST(DisconnectedTest, AltBoundsStayConsistent) {
  const Graph g = TwoComponents();
  Rng rng(4);
  AltIndex alt(g, 3, rng);
  // Bounds must bracket reachable pairs even when some landmarks are in the
  // other component.
  EXPECT_LE(alt.LowerBound(0, 3), 300.0 + 1e-9);
  EXPECT_GE(alt.UpperBound(0, 3), 300.0 - 1e-9);
}

// ------------------------------------------------------ degenerate inputs

TEST(DegenerateTest, SpatialGridAllCoincidentPoints) {
  GraphBuilder b(5);
  for (VertexId v = 0; v < 5; ++v) b.SetCoord(v, {1.0, 1.0});
  for (VertexId v = 0; v + 1 < 5; ++v) b.AddEdge(v, v + 1, 1.0);
  const Graph g = b.Build();
  const SpatialGrid grid(g, 4);
  // All vertices land in one cell; only bucket 0 is usable.
  EXPECT_TRUE(grid.BucketNonEmpty(0));
  Rng rng(5);
  VertexId s, t;
  ASSERT_TRUE(grid.SamplePair(0, rng, &s, &t));
  EXPECT_EQ(grid.BucketOfPair(s, t), 0u);
}

TEST(DegenerateTest, TinyGraphsBuildEverywhere) {
  GraphBuilder b(2);
  b.SetCoord(0, {0, 0});
  b.SetCoord(1, {100, 0});
  b.AddEdge(0, 1, 123.0);
  const Graph g = b.Build();

  ContractionHierarchy ch(g);
  EXPECT_NEAR(ch.Query(0, 1), 123.0, 1e-9);
  H2HIndex h2h(g);
  EXPECT_NEAR(h2h.Query(0, 1), 123.0, 1e-9);
  GTreeOptions opt;
  opt.leaf_size = 1;
  opt.fanout = 2;
  GTree gtree(g, opt);
  EXPECT_NEAR(gtree.Distance(0, 1), 123.0, 1e-9);
}

TEST(DegenerateTest, HierarchySingleVertexGraphRejectedByRne) {
  // Rne requires >= 2 vertices; the hierarchy itself handles 1.
  GraphBuilder b(1);
  const Graph g = b.Build();
  HierarchyOptions opt;
  const PartitionHierarchy h = PartitionHierarchy::Build(g, opt);
  EXPECT_EQ(h.num_nodes(), 1u);
}

// --------------------------------------------------------- loader fuzzing

TEST(DimacsFuzzTest, MalformedLinesRejectedNotCrashed) {
  const std::vector<std::string> bad_contents = {
      "p sp 0 0\n",                        // zero vertices
      "p sp 3 1\na 0 1 5\n",               // vertex id 0 (DIMACS is 1-based)
      "p sp 3 1\na 1 9 5\n",               // vertex id out of range
      "p sp 3 1\na 1 2 -5\n",              // negative weight
      "p sp 3 1\na 1 2\n",                 // missing weight
      "p sp x y\n",                        // garbage counts
  };
  int rejected = 0;
  for (size_t i = 0; i < bad_contents.size(); ++i) {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("rne_fuzz_" + std::to_string(i) + ".gr"))
            .string();
    {
      std::ofstream out(path);
      out << bad_contents[i];
    }
    const auto result = LoadDimacs(path);
    rejected += !result.ok();
    std::filesystem::remove(path);
  }
  EXPECT_EQ(rejected, static_cast<int>(bad_contents.size()));
}

TEST(DimacsFuzzTest, CommentsAndBlankLinesTolerated) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rne_fuzz_ok.gr").string();
  {
    std::ofstream out(path);
    out << "c header comment\n\np sp 2 2\nc mid comment\na 1 2 7.5\na 2 1 "
           "7.5\n";
  }
  const auto result = LoadDimacs(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().NumVertices(), 2u);
  EXPECT_NEAR(result.value().EdgeWeight(0, 1), 7.5, 1e-9);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rne
