// Tests for the neural substrate: the MLP (fit + gradient behaviour),
// DeepWalk embeddings (neighborhood similarity), and the DR baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/distance_sampler.h"
#include "core/metric.h"
#include "graph/generators.h"
#include "nn/deepwalk.h"
#include "nn/dr_model.h"
#include "nn/mlp.h"

namespace rne {
namespace {

// ------------------------------------------------------------------- MLP

TEST(MlpTest, ParamCount) {
  Rng rng(1);
  Mlp mlp({4, 8, 1}, rng);
  // 4*8 + 8 biases + 8*1 + 1 bias = 49.
  EXPECT_EQ(mlp.NumParams(), 49u);
}

TEST(MlpTest, FitsLinearFunction) {
  Rng rng(2);
  Mlp mlp({2, 16, 1}, rng);
  // Target: y = 2 x0 - x1 + 0.5 on [0,1]^2.
  std::vector<float> x(2);
  for (int step = 0; step < 20000; ++step) {
    x[0] = static_cast<float>(rng.UniformReal(0, 1));
    x[1] = static_cast<float>(rng.UniformReal(0, 1));
    mlp.TrainStep(x, 2.0 * x[0] - x[1] + 0.5, 0.02);
  }
  double max_err = 0.0;
  for (int i = 0; i < 200; ++i) {
    x[0] = static_cast<float>(rng.UniformReal(0, 1));
    x[1] = static_cast<float>(rng.UniformReal(0, 1));
    max_err = std::max(max_err, std::abs(mlp.Forward(x) -
                                         (2.0 * x[0] - x[1] + 0.5)));
  }
  EXPECT_LT(max_err, 0.1);
}

TEST(MlpTest, FitsNonlinearFunction) {
  Rng rng(3);
  Mlp mlp({1, 32, 1}, rng);
  std::vector<float> x(1);
  for (int step = 0; step < 40000; ++step) {
    x[0] = static_cast<float>(rng.UniformReal(-1, 1));
    mlp.TrainStep(x, static_cast<double>(x[0]) * x[0], 0.02);
  }
  double err_sum = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double v = -1.0 + 2.0 * i / 99.0;
    x[0] = static_cast<float>(v);
    err_sum += std::abs(mlp.Forward(x) - v * v);
  }
  EXPECT_LT(err_sum / 100, 0.05) << "MLP cannot fit x^2: backprop broken";
}

TEST(MlpTest, TrainStepReturnsSquaredError) {
  Rng rng(4);
  Mlp mlp({1, 4, 1}, rng);
  std::vector<float> x = {0.5f};
  const double pred = mlp.Forward(x);
  const double loss = mlp.TrainStep(x, 3.0, 0.0);  // lr 0: no update
  EXPECT_NEAR(loss, (pred - 3.0) * (pred - 3.0), 1e-9);
  EXPECT_NEAR(mlp.Forward(x), pred, 1e-9);
}

TEST(MlpTest, TrainingReducesLoss) {
  Rng rng(5);
  Mlp mlp({3, 8, 1}, rng);
  std::vector<float> x = {0.2f, -0.4f, 0.9f};
  const double initial = mlp.TrainStep(x, 1.5, 0.05);
  for (int i = 0; i < 50; ++i) mlp.TrainStep(x, 1.5, 0.05);
  const double pred = mlp.Forward(x);
  EXPECT_LT((pred - 1.5) * (pred - 1.5), initial);
}

// -------------------------------------------------------------- DeepWalk

TEST(DeepWalkTest, NeighborsMoreSimilarThanRandomPairs) {
  const Graph g = MakeGridNetwork(14, 14, 100.0, 0.2, 0.1, 6);
  DeepWalkConfig cfg;
  cfg.dim = 32;
  cfg.walks_per_vertex = 6;
  cfg.epochs = 2;
  const EmbeddingMatrix emb = TrainDeepWalk(g, cfg);
  ASSERT_EQ(emb.rows(), g.NumVertices());

  // Cosine similarity of adjacent pairs vs random pairs.
  auto cosine = [&](VertexId a, VertexId b) {
    double dot = 0, na = 0, nb = 0;
    for (size_t d = 0; d < emb.dim(); ++d) {
      dot += emb.Row(a)[d] * emb.Row(b)[d];
      na += emb.Row(a)[d] * emb.Row(a)[d];
      nb += emb.Row(b)[d] * emb.Row(b)[d];
    }
    return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
  };
  Rng rng(6);
  double adjacent = 0.0, random = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    const auto v = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto nbrs = g.Neighbors(v);
    adjacent += cosine(v, nbrs[rng.UniformIndex(nbrs.size())].to);
    random += cosine(v,
                     static_cast<VertexId>(rng.UniformIndex(g.NumVertices())));
  }
  EXPECT_GT(adjacent / trials, random / trials + 0.1)
      << "DeepWalk failed to capture neighborhood similarity";
}

// ------------------------------------------------------------------- DR

TEST(DrModelTest, HeadSizedToBudget) {
  const Graph g = MakeGridNetwork(8, 8, 100.0, 0.2, 0.1, 7);
  DrConfig cfg;
  cfg.deepwalk.dim = 16;
  cfg.deepwalk.walks_per_vertex = 2;
  cfg.deepwalk.epochs = 1;
  cfg.target_params = 10000;
  DrModel model(g, cfg);
  EXPECT_GT(model.NumParams(), 5000u);
  EXPECT_LT(model.NumParams(), 20000u);
}

TEST(DrModelTest, TrainingBeatsUntrained) {
  RoadNetworkConfig net;
  net.rows = 12;
  net.cols = 12;
  net.seed = 8;
  const Graph g = MakeRoadNetwork(net);
  DrConfig cfg;
  cfg.deepwalk.dim = 16;
  cfg.deepwalk.walks_per_vertex = 4;
  cfg.deepwalk.epochs = 1;
  cfg.target_params = 10000;
  cfg.epochs = 8;
  DrModel model(g, cfg);

  DistanceSampler sampler(g);
  Rng rng(8);
  const auto train = sampler.RandomPairs(8000, rng);
  const auto val = sampler.RandomPairs(300, rng);
  model.Train(train);
  // The regression should land well under the ~40% error of an uninformed
  // constant predictor, though above RNE (the paper's point in Fig 14).
  EXPECT_LT(model.MeanRelativeError(val), 0.30);
}

TEST(DrModelTest, QuerySelfIsZero) {
  const Graph g = MakeGridNetwork(6, 6, 100.0, 0.2, 0.1, 9);
  DrConfig cfg;
  cfg.deepwalk.dim = 8;
  cfg.deepwalk.walks_per_vertex = 1;
  cfg.deepwalk.epochs = 1;
  DrModel model(g, cfg);
  EXPECT_DOUBLE_EQ(model.Query(4, 4), 0.0);
}

}  // namespace
}  // namespace rne
