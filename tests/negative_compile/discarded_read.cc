// Negative-compile fixture: MUST NOT build. BinaryReader::ReadPod is
// [[nodiscard]] and the result is dropped here; tests/CMakeLists.txt
// try_compiles this file and fails the configure if it ever compiles.
#include <cstdint>

#include "util/serialize.h"

namespace rne {

void DiscardsReadResult(BinaryReader& reader) {
  uint32_t n = 0;
  reader.ReadPod(&n);  // discarded result — the contract under test
}

}  // namespace rne
