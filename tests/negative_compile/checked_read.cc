// Positive control for the negative-compile check: identical to
// discarded_read.cc except the result is checked, so it MUST build. If
// this one fails, the fixture setup is broken (bad include path, flag
// typo), not the [[nodiscard]] contract.
#include <cstdint>

#include "util/serialize.h"

namespace rne {

bool ChecksReadResult(BinaryReader& reader) {
  uint32_t n = 0;
  if (!reader.ReadPod(&n)) return false;
  return n > 0;
}

}  // namespace rne
