// Tests for the multilevel partitioner and the partition hierarchy.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <set>

#include "graph/generators.h"
#include "partition/hierarchy.h"
#include "partition/partitioner.h"

namespace rne {
namespace {

// ------------------------------------------------------------- partitioner

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(PartitionSweep, PartitionIsValidAndBalanced) {
  const auto [num_parts, seed] = GetParam();
  const Graph g = MakeGridNetwork(20, 20, 100.0, 0.3, 0.2, seed);
  PartitionOptions opt;
  opt.num_parts = num_parts;
  opt.seed = seed;
  const PartitionResult result = PartitionGraph(g, opt);

  ASSERT_EQ(result.part_of.size(), g.NumVertices());
  std::vector<size_t> sizes(num_parts, 0);
  for (const uint32_t p : result.part_of) {
    ASSERT_LT(p, num_parts);
    sizes[p] += 1;
  }
  const size_t ideal = g.NumVertices() / num_parts;
  for (size_t p = 0; p < num_parts; ++p) {
    EXPECT_GT(sizes[p], 0u) << "empty part " << p;
    EXPECT_LE(sizes[p], ideal * 2) << "part " << p << " grossly unbalanced";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PartitionSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(uint64_t{1}, uint64_t{7})));

TEST(PartitionerTest, CutIsSmallOnGrid) {
  // A 24x24 grid bisection has a ~24-edge optimal cut; the multilevel
  // pipeline should land within a small factor, far below random (~half of
  // all ~1100 edges).
  const Graph g = MakeGridNetwork(24, 24, 100.0, 0.0, 0.0, 5);
  PartitionOptions opt;
  opt.num_parts = 2;
  const PartitionResult result = PartitionGraph(g, opt);
  EXPECT_LT(result.cut_edges, 80u);
  EXPECT_GT(result.cut_edges, 0u);
}

TEST(PartitionerTest, SinglePartIsTrivial) {
  const Graph g = MakeGridNetwork(4, 4);
  PartitionOptions opt;
  opt.num_parts = 1;
  const PartitionResult result = PartitionGraph(g, opt);
  for (const uint32_t p : result.part_of) EXPECT_EQ(p, 0u);
  EXPECT_EQ(result.cut_edges, 0u);
}

TEST(PartitionerTest, CutStatsConsistent) {
  const Graph g = MakeGridNetwork(8, 8, 100.0, 0.2, 0.1, 6);
  PartitionOptions opt;
  opt.num_parts = 4;
  PartitionResult result = PartitionGraph(g, opt);
  double expected_weight = 0.0;
  size_t expected_edges = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Edge& e : g.Neighbors(v)) {
      if (v < e.to && result.part_of[v] != result.part_of[e.to]) {
        expected_weight += e.weight;
        ++expected_edges;
      }
    }
  }
  EXPECT_DOUBLE_EQ(result.cut_weight, expected_weight);
  EXPECT_EQ(result.cut_edges, expected_edges);
}

TEST(PartitionerTest, DeterministicForSeed) {
  const Graph g = MakeGridNetwork(12, 12, 100.0, 0.2, 0.1, 7);
  PartitionOptions opt;
  opt.num_parts = 4;
  opt.seed = 77;
  const auto a = PartitionGraph(g, opt);
  const auto b = PartitionGraph(g, opt);
  EXPECT_EQ(a.part_of, b.part_of);
}

// ---------------------------------------------------------------- hierarchy

class HierarchySweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(HierarchySweep, Invariants) {
  const auto [fanout, leaf_threshold] = GetParam();
  const Graph g = MakeGridNetwork(16, 16, 100.0, 0.2, 0.1, 8);
  HierarchyOptions opt;
  opt.fanout = fanout;
  opt.leaf_threshold = leaf_threshold;
  const PartitionHierarchy h = PartitionHierarchy::Build(g, opt);

  // Root holds everything.
  EXPECT_EQ(h.node(h.root()).vertices.size(), g.NumVertices());
  EXPECT_EQ(h.num_vertices(), g.NumVertices());

  // Children partition their parent's vertex set.
  for (uint32_t id = 0; id < h.num_nodes(); ++id) {
    const auto& node = h.node(id);
    if (node.IsLeaf()) {
      EXPECT_LE(node.vertices.size(), leaf_threshold);
      continue;
    }
    std::set<VertexId> from_children;
    for (const uint32_t c : node.children) {
      EXPECT_EQ(h.node(c).parent, id);
      EXPECT_EQ(h.node(c).level, node.level + 1);
      for (const VertexId v : h.node(c).vertices) {
        EXPECT_TRUE(from_children.insert(v).second) << "vertex in two children";
      }
    }
    EXPECT_EQ(from_children.size(), node.vertices.size());
  }

  // Ancestor paths: top-down, consistent with LeafOf, correct levels.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto& path = h.AncestorsOf(v);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), h.LeafOf(v));
    for (size_t i = 0; i < path.size(); ++i) {
      EXPECT_EQ(h.node(path[i]).level, i + 1);
      if (i > 0) EXPECT_EQ(h.node(path[i]).parent, path[i - 1]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, HierarchySweep,
                         ::testing::Combine(::testing::Values(2, 4),
                                            ::testing::Values(16, 64)));

TEST(HierarchyTest, PartitionAtLevelCoversAllVertices) {
  const Graph g = MakeGridNetwork(12, 12, 100.0, 0.2, 0.1, 9);
  HierarchyOptions opt;
  opt.fanout = 4;
  opt.leaf_threshold = 16;
  const PartitionHierarchy h = PartitionHierarchy::Build(g, opt);
  for (uint32_t level = 0; level <= h.max_level(); ++level) {
    std::set<VertexId> covered;
    for (const uint32_t id : h.PartitionAtLevel(level)) {
      for (const VertexId v : h.node(id).vertices) {
        EXPECT_TRUE(covered.insert(v).second)
            << "vertex covered twice at level " << level;
      }
    }
    EXPECT_EQ(covered.size(), g.NumVertices()) << "level " << level;
  }
}

TEST(HierarchyTest, DegenerateSingleNodeTree) {
  const Graph g = MakeGridNetwork(6, 6);
  HierarchyOptions opt;
  opt.leaf_threshold = g.NumVertices();  // flat model configuration
  const PartitionHierarchy h = PartitionHierarchy::Build(g, opt);
  EXPECT_EQ(h.num_nodes(), 1u);
  EXPECT_EQ(h.max_level(), 0u);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_TRUE(h.AncestorsOf(v).empty());
    EXPECT_EQ(h.LeafOf(v), h.root());
  }
}

TEST(HierarchyTest, MaxLevelsCapRespected) {
  const Graph g = MakeGridNetwork(16, 16);
  HierarchyOptions opt;
  opt.fanout = 2;
  opt.leaf_threshold = 4;
  opt.max_levels = 3;
  const PartitionHierarchy h = PartitionHierarchy::Build(g, opt);
  EXPECT_LE(h.max_level(), 2u);
}

TEST(HierarchyTest, SaveLoadRoundTrip) {
  const Graph g = MakeGridNetwork(10, 10, 100.0, 0.2, 0.1, 10);
  HierarchyOptions opt;
  opt.fanout = 4;
  opt.leaf_threshold = 16;
  const PartitionHierarchy h = PartitionHierarchy::Build(g, opt);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rne_hier_test.bin").string();
  ASSERT_TRUE(h.Save(path).ok());
  auto loaded = PartitionHierarchy::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const PartitionHierarchy& h2 = loaded.value();
  ASSERT_EQ(h2.num_nodes(), h.num_nodes());
  ASSERT_EQ(h2.num_vertices(), h.num_vertices());
  EXPECT_EQ(h2.max_level(), h.max_level());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(h2.LeafOf(v), h.LeafOf(v));
    EXPECT_EQ(h2.AncestorsOf(v), h.AncestorsOf(v));
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rne
