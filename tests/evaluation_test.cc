// Tests for the shared evaluation utilities (error summaries, cumulative
// curves, per-distance breakdowns).
#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluation.h"

namespace rne {
namespace {

std::vector<DistanceSample> MakeValidation() {
  // Exact distances 100, 200, 400, 1000 between synthetic pairs.
  return {
      {0, 1, 100.0},
      {0, 2, 200.0},
      {1, 2, 400.0},
      {2, 3, 1000.0},
  };
}

TEST(EvaluationTest, PerfectEstimatorHasZeroErrors) {
  const auto val = MakeValidation();
  const auto exact = [&val](VertexId s, VertexId t) {
    for (const auto& sample : val) {
      if (sample.s == s && sample.t == t) return sample.dist;
    }
    return 0.0;
  };
  const ErrorSummary summary = EvaluateErrors(exact, val);
  EXPECT_EQ(summary.num_pairs, 4u);
  EXPECT_DOUBLE_EQ(summary.mean_rel, 0.0);
  EXPECT_DOUBLE_EQ(summary.mean_abs, 0.0);
  EXPECT_DOUBLE_EQ(summary.max_rel, 0.0);
  EXPECT_NEAR(summary.var_rel, 0.0, 1e-15);
}

TEST(EvaluationTest, ConstantOffsetErrors) {
  const auto val = MakeValidation();
  // Overestimate every distance by 10%.
  const auto fn = [&val](VertexId s, VertexId t) {
    for (const auto& sample : val) {
      if (sample.s == s && sample.t == t) return sample.dist * 1.1;
    }
    return 0.0;
  };
  const ErrorSummary summary = EvaluateErrors(fn, val);
  EXPECT_NEAR(summary.mean_rel, 0.1, 1e-12);
  EXPECT_NEAR(summary.max_rel, 0.1, 1e-12);
  EXPECT_NEAR(summary.var_rel, 0.0, 1e-12);
  EXPECT_NEAR(summary.mean_abs, (10 + 20 + 40 + 100) / 4.0, 1e-9);
}

TEST(EvaluationTest, SkipsInvalidPairs) {
  std::vector<DistanceSample> val = MakeValidation();
  val.push_back({5, 6, kInfDistance});
  val.push_back({5, 5, 0.0});
  const ErrorSummary summary =
      EvaluateErrors([](VertexId, VertexId) { return 1.0; }, val);
  EXPECT_EQ(summary.num_pairs, 4u);
}

TEST(EvaluationTest, CumulativeCurveMonotone) {
  const auto val = MakeValidation();
  // Error: 5% on two pairs, 20% on the other two.
  const auto fn = [&val](VertexId s, VertexId t) {
    for (size_t i = 0; i < val.size(); ++i) {
      if (val[i].s == s && val[i].t == t) {
        return val[i].dist * (i < 2 ? 1.05 : 1.20);
      }
    }
    return 0.0;
  };
  const auto curve = CumulativeErrorCurve(fn, val, {0.01, 0.1, 0.3});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0], 0.0);
  EXPECT_DOUBLE_EQ(curve[1], 0.5);
  EXPECT_DOUBLE_EQ(curve[2], 1.0);
}

TEST(EvaluationTest, ErrorsByDistanceBucketsCorrectly) {
  const auto val = MakeValidation();  // distances 100..1000
  // 10% error below 500, exact above.
  const auto fn = [&val](VertexId s, VertexId t) {
    for (const auto& sample : val) {
      if (sample.s == s && sample.t == t) {
        return sample.dist < 500 ? sample.dist * 1.1 : sample.dist;
      }
    }
    return 0.0;
  };
  const auto buckets = ErrorsByDistance(fn, val, 2);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].num_pairs, 3u);  // 100, 200, 400
  EXPECT_EQ(buckets[1].num_pairs, 1u);  // 1000
  EXPECT_NEAR(buckets[0].mean_rel, 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(buckets[1].mean_rel, 0.0);
}

TEST(EvaluationTest, EmptyValidationSafe) {
  const ErrorSummary summary =
      EvaluateErrors([](VertexId, VertexId) { return 1.0; }, {});
  EXPECT_EQ(summary.num_pairs, 0u);
  EXPECT_DOUBLE_EQ(summary.mean_rel, 0.0);
}

}  // namespace
}  // namespace rne
