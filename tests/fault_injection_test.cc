// Corruption and crash-safety harness for index persistence.
//
// For every persistable index kind this suite takes a known-good saved file
// and (a) truncates it at every interesting length, (b) flips bits across
// header, payload and checksum trailer, asserting that every Load returns a
// non-OK Status — never a crash, hang, or large allocation — and (c)
// simulates a kill mid-Save via the injection layer in util/fault_injection,
// asserting a reader only ever observes the old file or a clean
// NotFound/Corruption, never a loadable-but-wrong file.
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "graph/generators.h"
#include "index_kinds.h"
#include "util/fault_injection.h"
#include "util/serialize.h"

namespace rne {
namespace {

constexpr uint64_t k64MiB = uint64_t{64} << 20;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class FaultInjectionTest : public ::testing::TestWithParam<IndexKindParam> {
 protected:
  static void SetUpTestSuite() { graph_ = new Graph(MakeGridNetwork(8, 8)); }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }

  void SetUp() override {
    fault::Reset();
    good_path_ = TempPath(std::string("rne_fault_") + GetParam().name +
                          "_good.bin");
    mutated_path_ = TempPath(std::string("rne_fault_") + GetParam().name +
                             "_mut.bin");
    ASSERT_TRUE(GetParam().build_and_save(*graph_, good_path_).ok());
    ASSERT_TRUE(fault::ReadFileBytes(good_path_, &good_bytes_).ok());
    ASSERT_GT(good_bytes_.size(),
              kEnvelopeHeaderSize + kEnvelopeTrailerSize);
  }

  void TearDown() override {
    fault::Reset();
    std::filesystem::remove(good_path_);
    std::filesystem::remove(good_path_ + ".tmp");
    std::filesystem::remove(mutated_path_);
  }

  Status Load(const std::string& path) {
    return GetParam().load(path, *graph_);
  }

  /// True when the heap loader AND (if the kind has one) the cold-map
  /// loader both reject `path`. The cold path defers lazy-section CRCs to
  /// the VerifyMapped() step inside load_cold, so a flip inside a
  /// lazily-mapped section must still surface as a non-OK Status here —
  /// never a crash or a silently-wrong index.
  bool EveryLoaderRejects(const std::string& path) {
    if (Load(path).ok()) return false;
    const auto& cold = GetParam().load_cold;
    return cold == nullptr || !cold(path, *graph_).ok();
  }

  static Graph* graph_;
  std::string good_path_;
  std::string mutated_path_;
  std::vector<uint8_t> good_bytes_;
};
Graph* FaultInjectionTest::graph_ = nullptr;

TEST_P(FaultInjectionTest, GoodFileLoads) {
  const Status st = Load(good_path_);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_P(FaultInjectionTest, EveryTruncationIsRejected) {
  const auto lengths = fault::TruncationSweep(good_bytes_.size(),
                                              /*stride=*/97);
  for (const uint64_t len : lengths) {
    ASSERT_TRUE(fault::TruncateCopy(good_path_, mutated_path_, len).ok());
    EXPECT_TRUE(EveryLoaderRejects(mutated_path_))
        << "truncation to " << len << " bytes (of " << good_bytes_.size()
        << ") was accepted";
  }
  EXPECT_LT(fault::MaxAllocationObserved(), k64MiB);
}

TEST_P(FaultInjectionTest, EveryBitFlipIsRejected) {
  const uint64_t size = good_bytes_.size();
  std::vector<uint64_t> positions;
  // Whole header (magic, version, kind, flags, payload size, header CRC)...
  for (uint64_t b = 0; b < kEnvelopeHeaderSize; ++b) positions.push_back(b);
  // ...a stride through the payload (covers length fields and raw data)...
  for (uint64_t b = kEnvelopeHeaderSize; b < size - kEnvelopeTrailerSize;
       b += 43) {
    positions.push_back(b);
  }
  // ...and the checksum trailer itself.
  for (uint64_t b = size - kEnvelopeTrailerSize; b < size; ++b) {
    positions.push_back(b);
  }
  for (const uint64_t pos : positions) {
    for (int bit = 0; bit < 8; ++bit) {
      ASSERT_TRUE(
          fault::FlipBitCopy(good_path_, mutated_path_, pos, bit).ok());
      EXPECT_TRUE(EveryLoaderRejects(mutated_path_))
          << "bit " << bit << " of byte " << pos
          << " flipped without detection";
    }
  }
  EXPECT_LT(fault::MaxAllocationObserved(), k64MiB);
}

TEST_P(FaultInjectionTest, CorruptLengthFieldNeverTriggersHugeAllocation) {
  // Overwrite each plausible 8-byte length prefix position in the first
  // payload bytes with an absurd value; Load must fail fast.
  for (uint64_t offset = 0; offset < 64 && kEnvelopeHeaderSize + offset + 8 <=
                                               good_bytes_.size();
       offset += 8) {
    std::vector<uint8_t> bytes = good_bytes_;
    for (int i = 0; i < 8; ++i) {
      bytes[kEnvelopeHeaderSize + offset + i] = 0x7F;
    }
    ASSERT_TRUE(fault::WriteFileBytes(mutated_path_, bytes).ok());
    const Status st = Load(mutated_path_);
    EXPECT_FALSE(st.ok());
  }
  EXPECT_LT(fault::MaxAllocationObserved(), k64MiB);
}

TEST_P(FaultInjectionTest, KillMidSaveLeavesOldFileIntact) {
  for (const uint64_t threshold : {uint64_t{0}, uint64_t{64}, uint64_t{512}}) {
    fault::FailWritesAfter(threshold);
    const Status save = GetParam().build_and_save(*graph_, good_path_);
    fault::Reset();
    EXPECT_FALSE(save.ok()) << "save succeeded despite injected fault";
    // The old file must be byte-identical — the failed save only ever
    // touched the temp file.
    std::vector<uint8_t> after;
    ASSERT_TRUE(fault::ReadFileBytes(good_path_, &after).ok());
    EXPECT_EQ(after, good_bytes_);
    const Status st = Load(good_path_);
    EXPECT_TRUE(st.ok()) << st.ToString();
    std::filesystem::remove(good_path_ + ".tmp");
  }
}

TEST_P(FaultInjectionTest, KillMidSaveWithNoOldFileYieldsNotFound) {
  const std::string path = TempPath(std::string("rne_fault_") +
                                    GetParam().name + "_fresh.bin");
  std::filesystem::remove(path);
  fault::FailWritesAfter(64);
  const Status save = GetParam().build_and_save(*graph_, path);
  fault::Reset();
  EXPECT_FALSE(save.ok());
  const Status st = Load(path);
  EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.ToString();
  std::filesystem::remove(path + ".tmp");
}

TEST_P(FaultInjectionTest, CrashBetweenFsyncAndRenameKeepsOldFile) {
  fault::CrashBeforeRename();
  const Status save = GetParam().build_and_save(*graph_, good_path_);
  fault::Reset();
  EXPECT_FALSE(save.ok());
  std::vector<uint8_t> after;
  ASSERT_TRUE(fault::ReadFileBytes(good_path_, &after).ok());
  EXPECT_EQ(after, good_bytes_);
  EXPECT_TRUE(Load(good_path_).ok());
  std::filesystem::remove(good_path_ + ".tmp");
}

INSTANTIATE_TEST_SUITE_P(AllIndexKinds, FaultInjectionTest,
                         ::testing::ValuesIn(AllIndexKinds()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace rne
