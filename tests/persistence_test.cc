// Persistence round-trips for the baseline indexes (CH, H2H, ALT) and the
// extended Rne APIs (QueryOneToMany / QueryKnn / RefineOnline), plus a
// parameterized envelope-robustness sweep over every index kind.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <functional>

#include "algo/dijkstra.h"
#include "algo/distance_sampler.h"
#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/h2h.h"
#include "core/quantized.h"
#include "core/rne.h"
#include "graph/generators.h"
#include "index_kinds.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace rne {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Graph TestNetwork(uint64_t seed) {
  RoadNetworkConfig cfg;
  cfg.rows = 12;
  cfg.cols = 12;
  cfg.seed = seed;
  return MakeRoadNetwork(cfg);
}

TEST(ChPersistenceTest, SaveLoadQueriesIdentical) {
  const Graph g = TestNetwork(1);
  ContractionHierarchy ch(g);
  const std::string path = TempPath("rne_ch_test.bin");
  ASSERT_TRUE(ch.Save(path).ok());
  auto loaded = ContractionHierarchy::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_shortcuts(), ch.num_shortcuts());
  EXPECT_EQ(loaded.value().IndexBytes(), ch.IndexBytes());
  EXPECT_TRUE(loaded.value().IsExact());
  Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_EQ(loaded.value().Query(s, t), ch.Query(s, t));
  }
  std::filesystem::remove(path);
}

TEST(ChPersistenceTest, AchRoundTripKeepsEpsilon) {
  const Graph g = TestNetwork(2);
  ChOptions opt;
  opt.epsilon = 0.2;
  ContractionHierarchy ach(g, opt);
  const std::string path = TempPath("rne_ach_test.bin");
  ASSERT_TRUE(ach.Save(path).ok());
  auto loaded = ContractionHierarchy::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().IsExact());
  EXPECT_EQ(loaded.value().Name(), "ACH");
  std::filesystem::remove(path);
}

TEST(H2hPersistenceTest, SaveLoadQueriesIdentical) {
  const Graph g = TestNetwork(3);
  H2HIndex h2h(g);
  const std::string path = TempPath("rne_h2h_test.bin");
  ASSERT_TRUE(h2h.Save(path).ok());
  auto loaded = H2HIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().max_bag_size(), h2h.max_bag_size());
  EXPECT_EQ(loaded.value().tree_height(), h2h.tree_height());
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_EQ(loaded.value().Query(s, t), h2h.Query(s, t));
  }
  std::filesystem::remove(path);
}

TEST(AltPersistenceTest, SaveLoadQueriesIdentical) {
  const Graph g = TestNetwork(4);
  Rng rng(4);
  AltIndex alt(g, 8, rng);
  const std::string path = TempPath("rne_alt_test.bin");
  ASSERT_TRUE(alt.Save(path).ok());
  auto loaded = AltIndex::Load(path, g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().landmarks(), alt.landmarks());
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_EQ(loaded.value().Query(s, t), alt.Query(s, t));
    EXPECT_EQ(loaded.value().LowerBound(s, t), alt.LowerBound(s, t));
  }
  // The reloaded index still answers exact A* queries.
  DijkstraSearch dij(g);
  EXPECT_NEAR(loaded.value().ExactDistance(0, 100), dij.Distance(0, 100),
              1e-9);
  std::filesystem::remove(path);
}

TEST(AltPersistenceTest, LoadRejectsWrongGraph) {
  const Graph g = TestNetwork(5);
  Rng rng(5);
  AltIndex alt(g, 4, rng);
  const std::string path = TempPath("rne_alt_wrong.bin");
  ASSERT_TRUE(alt.Save(path).ok());
  const Graph other = MakeGridNetwork(5, 5);
  auto loaded = AltIndex::Load(path, other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

// ----------------------------------------------------- extended Rne APIs

class RneApiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(TestNetwork(6));
    RneConfig config;
    config.dim = 32;
    config.train.level_samples = 3000;
    config.train.vertex_samples = 20000;
    config.train.finetune_rounds = 1;
    config.train.finetune_samples = 5000;
    model_ = new Rne(Rne::Build(*graph_, config));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete graph_;
  }
  static Graph* graph_;
  static Rne* model_;
};
Graph* RneApiTest::graph_ = nullptr;
Rne* RneApiTest::model_ = nullptr;

TEST_F(RneApiTest, OneToManyMatchesScalarQueries) {
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < graph_->NumVertices(); v += 5) targets.push_back(v);
  std::vector<double> out(targets.size());
  model_->QueryOneToMany(7, targets, out);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], model_->Query(7, targets[i]));
  }
}

TEST_F(RneApiTest, QueryKnnMatchesBruteForce) {
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < graph_->NumVertices(); v += 3) targets.push_back(v);
  const auto knn = model_->QueryKnn(11, targets, 5);
  ASSERT_EQ(knn.size(), 5u);
  std::vector<double> all;
  for (const VertexId t : targets) all.push_back(model_->Query(11, t));
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_DOUBLE_EQ(knn[i].second, all[i]);
  }
}

TEST_F(RneApiTest, QueryKnnHandlesSmallTargetSets) {
  std::vector<VertexId> two = {1, 2};
  EXPECT_EQ(model_->QueryKnn(0, two, 10).size(), 2u);
  EXPECT_TRUE(model_->QueryKnn(0, two, 0).empty());
}

// ------------------------------------------- envelope sweep, all 5 kinds
//
// Each index kind provides a builder (construct a small index on the given
// graph and Save it) and a loader (Load and report the Status). The sweep
// then exercises the shared envelope guarantees: clean round-trip, rejection
// of legacy unversioned files, of files holding a different index kind, of
// zero-length files, and NotFound for missing paths.

class EnvelopeSweepTest : public ::testing::TestWithParam<IndexKindParam> {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(MakeGridNetwork(8, 8));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }
  std::string Path(const std::string& suffix) const {
    return TempPath(std::string("rne_sweep_") + GetParam().name + suffix);
  }
  static Graph* graph_;
};
Graph* EnvelopeSweepTest::graph_ = nullptr;

TEST_P(EnvelopeSweepTest, RoundTripLoadsOk) {
  const std::string path = Path("_rt.bin");
  ASSERT_TRUE(GetParam().build_and_save(*graph_, path).ok());
  const Status st = GetParam().load(path, *graph_);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::filesystem::remove(path);
}

TEST_P(EnvelopeSweepTest, LegacyMagicRejected) {
  const std::string path = Path("_legacy.bin");
  {
    // Pre-envelope files started directly with the index-kind magic.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const uint32_t magic = GetParam().magic;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    const std::vector<uint64_t> filler(16, 0);
    out.write(reinterpret_cast<const char*>(filler.data()),
              sizeof(uint64_t) * filler.size());
  }
  const Status st = GetParam().load(path, *graph_);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  EXPECT_NE(st.message().find("legacy"), std::string::npos) << st.ToString();
  std::filesystem::remove(path);
}

TEST_P(EnvelopeSweepTest, WrongIndexKindRejected) {
  const std::string path = Path("_kind.bin");
  const uint32_t other = GetParam().magic == kChMagic ? kH2hMagic : kChMagic;
  {
    BinaryWriter w(path, other);
    w.WritePod<uint64_t>(0);
    ASSERT_TRUE(w.Finish().ok());
  }
  const Status st = GetParam().load(path, *graph_);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  std::filesystem::remove(path);
}

TEST_P(EnvelopeSweepTest, ZeroLengthFileRejected) {
  const std::string path = Path("_empty.bin");
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  const Status st = GetParam().load(path, *graph_);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  std::filesystem::remove(path);
}

TEST_P(EnvelopeSweepTest, MissingFileIsNotFound) {
  const Status st = GetParam().load(Path("_does_not_exist.bin"), *graph_);
  EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.ToString();
}

INSTANTIATE_TEST_SUITE_P(AllIndexKinds, EnvelopeSweepTest,
                         ::testing::ValuesIn(AllIndexKinds()),
                         [](const auto& info) { return info.param.name; });

TEST(RneRefineTest, OnlineRefinementReducesError) {
  const Graph g = TestNetwork(7);
  RneConfig config;
  config.dim = 32;
  config.train.level_samples = 3000;
  config.train.vertex_samples = 8000;  // deliberately under-trained
  config.train.vertex_epochs = 2;
  config.fine_tune = false;
  Rne model = Rne::Build(g, config);

  DistanceSampler sampler(g);
  Rng rng(7);
  const auto val = sampler.RandomPairs(400, rng);
  auto err = [&] {
    double sum = 0.0;
    for (const auto& s : val) {
      sum += std::abs(model.Query(s.s, s.t) - s.dist) / s.dist;
    }
    return sum / val.size();
  };
  const double before = err();
  const auto extra = sampler.RandomPairs(20000, rng);
  model.RefineOnline(extra, /*epochs=*/6, /*lr0=*/0.3);
  const double after = err();
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace rne
