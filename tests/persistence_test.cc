// Persistence round-trips for the baseline indexes (CH, H2H, ALT) and the
// extended Rne APIs (QueryOneToMany / QueryKnn / RefineOnline), plus a
// parameterized envelope-robustness sweep over every index kind.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <vector>

#include "algo/dijkstra.h"
#include "algo/distance_sampler.h"
#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/h2h.h"
#include "core/quantized.h"
#include "core/rne.h"
#include "graph/generators.h"
#include "index_kinds.h"
#include "util/crc32c.h"
#include "util/fault_injection.h"
#include "util/mmap_file.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace rne {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Graph TestNetwork(uint64_t seed) {
  RoadNetworkConfig cfg;
  cfg.rows = 12;
  cfg.cols = 12;
  cfg.seed = seed;
  return MakeRoadNetwork(cfg);
}

TEST(ChPersistenceTest, SaveLoadQueriesIdentical) {
  const Graph g = TestNetwork(1);
  ContractionHierarchy ch(g);
  const std::string path = TempPath("rne_ch_test.bin");
  ASSERT_TRUE(ch.Save(path).ok());
  auto loaded = ContractionHierarchy::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_shortcuts(), ch.num_shortcuts());
  EXPECT_EQ(loaded.value().IndexBytes(), ch.IndexBytes());
  EXPECT_TRUE(loaded.value().IsExact());
  Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_EQ(loaded.value().Query(s, t), ch.Query(s, t));
  }
  std::filesystem::remove(path);
}

TEST(ChPersistenceTest, AchRoundTripKeepsEpsilon) {
  const Graph g = TestNetwork(2);
  ChOptions opt;
  opt.epsilon = 0.2;
  ContractionHierarchy ach(g, opt);
  const std::string path = TempPath("rne_ach_test.bin");
  ASSERT_TRUE(ach.Save(path).ok());
  auto loaded = ContractionHierarchy::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().IsExact());
  EXPECT_EQ(loaded.value().Name(), "ACH");
  std::filesystem::remove(path);
}

TEST(H2hPersistenceTest, SaveLoadQueriesIdentical) {
  const Graph g = TestNetwork(3);
  H2HIndex h2h(g);
  const std::string path = TempPath("rne_h2h_test.bin");
  ASSERT_TRUE(h2h.Save(path).ok());
  auto loaded = H2HIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().max_bag_size(), h2h.max_bag_size());
  EXPECT_EQ(loaded.value().tree_height(), h2h.tree_height());
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_EQ(loaded.value().Query(s, t), h2h.Query(s, t));
  }
  std::filesystem::remove(path);
}

TEST(AltPersistenceTest, SaveLoadQueriesIdentical) {
  const Graph g = TestNetwork(4);
  Rng rng(4);
  AltIndex alt(g, 8, rng);
  const std::string path = TempPath("rne_alt_test.bin");
  ASSERT_TRUE(alt.Save(path).ok());
  auto loaded = AltIndex::Load(path, g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().landmarks(), alt.landmarks());
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_EQ(loaded.value().Query(s, t), alt.Query(s, t));
    EXPECT_EQ(loaded.value().LowerBound(s, t), alt.LowerBound(s, t));
  }
  // The reloaded index still answers exact A* queries.
  DijkstraSearch dij(g);
  EXPECT_NEAR(loaded.value().ExactDistance(0, 100), dij.Distance(0, 100),
              1e-9);
  std::filesystem::remove(path);
}

TEST(AltPersistenceTest, LoadRejectsWrongGraph) {
  const Graph g = TestNetwork(5);
  Rng rng(5);
  AltIndex alt(g, 4, rng);
  const std::string path = TempPath("rne_alt_wrong.bin");
  ASSERT_TRUE(alt.Save(path).ok());
  const Graph other = MakeGridNetwork(5, 5);
  auto loaded = AltIndex::Load(path, other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

// ----------------------------------------------------- extended Rne APIs

class RneApiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(TestNetwork(6));
    RneConfig config;
    config.dim = 32;
    config.train.level_samples = 3000;
    config.train.vertex_samples = 20000;
    config.train.finetune_rounds = 1;
    config.train.finetune_samples = 5000;
    model_ = new Rne(Rne::Build(*graph_, config));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete graph_;
  }
  static Graph* graph_;
  static Rne* model_;
};
Graph* RneApiTest::graph_ = nullptr;
Rne* RneApiTest::model_ = nullptr;

TEST_F(RneApiTest, OneToManyMatchesScalarQueries) {
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < graph_->NumVertices(); v += 5) targets.push_back(v);
  std::vector<double> out(targets.size());
  model_->QueryOneToMany(7, targets, out);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], model_->Query(7, targets[i]));
  }
}

TEST_F(RneApiTest, QueryKnnMatchesBruteForce) {
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < graph_->NumVertices(); v += 3) targets.push_back(v);
  const auto knn = model_->QueryKnn(11, targets, 5);
  ASSERT_EQ(knn.size(), 5u);
  std::vector<double> all;
  for (const VertexId t : targets) all.push_back(model_->Query(11, t));
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_DOUBLE_EQ(knn[i].second, all[i]);
  }
}

TEST_F(RneApiTest, QueryKnnHandlesSmallTargetSets) {
  std::vector<VertexId> two = {1, 2};
  EXPECT_EQ(model_->QueryKnn(0, two, 10).size(), 2u);
  EXPECT_TRUE(model_->QueryKnn(0, two, 0).empty());
}

// ------------------------------------------- envelope sweep, all 5 kinds
//
// Each index kind provides a builder (construct a small index on the given
// graph and Save it) and a loader (Load and report the Status). The sweep
// then exercises the shared envelope guarantees: clean round-trip, rejection
// of legacy unversioned files, of files holding a different index kind, of
// zero-length files, and NotFound for missing paths.

class EnvelopeSweepTest : public ::testing::TestWithParam<IndexKindParam> {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(MakeGridNetwork(8, 8));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }
  std::string Path(const std::string& suffix) const {
    return TempPath(std::string("rne_sweep_") + GetParam().name + suffix);
  }
  static Graph* graph_;
};
Graph* EnvelopeSweepTest::graph_ = nullptr;

TEST_P(EnvelopeSweepTest, RoundTripLoadsOk) {
  const std::string path = Path("_rt.bin");
  ASSERT_TRUE(GetParam().build_and_save(*graph_, path).ok());
  const Status st = GetParam().load(path, *graph_);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::filesystem::remove(path);
}

TEST_P(EnvelopeSweepTest, LegacyMagicRejected) {
  const std::string path = Path("_legacy.bin");
  {
    // Pre-envelope files started directly with the index-kind magic.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const uint32_t magic = GetParam().magic;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    const std::vector<uint64_t> filler(16, 0);
    out.write(reinterpret_cast<const char*>(filler.data()),
              sizeof(uint64_t) * filler.size());
  }
  const Status st = GetParam().load(path, *graph_);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  EXPECT_NE(st.message().find("legacy"), std::string::npos) << st.ToString();
  std::filesystem::remove(path);
}

TEST_P(EnvelopeSweepTest, WrongIndexKindRejected) {
  const std::string path = Path("_kind.bin");
  const uint32_t other = GetParam().magic == kChMagic ? kH2hMagic : kChMagic;
  {
    BinaryWriter w(path, other);
    w.WritePod<uint64_t>(0);
    ASSERT_TRUE(w.Finish().ok());
  }
  const Status st = GetParam().load(path, *graph_);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  std::filesystem::remove(path);
}

TEST_P(EnvelopeSweepTest, ZeroLengthFileRejected) {
  const std::string path = Path("_empty.bin");
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  const Status st = GetParam().load(path, *graph_);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  std::filesystem::remove(path);
}

TEST_P(EnvelopeSweepTest, MissingFileIsNotFound) {
  const Status st = GetParam().load(Path("_does_not_exist.bin"), *graph_);
  EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.ToString();
  if (GetParam().load_cold != nullptr) {
    EXPECT_EQ(
        GetParam().load_cold(Path("_does_not_exist.bin"), *graph_).code(),
        StatusCode::kNotFound);
  }
}

TEST_P(EnvelopeSweepTest, ColdMapRoundTripLoadsAndVerifies) {
  if (GetParam().load_cold == nullptr) {
    GTEST_SKIP() << GetParam().name << " has no zero-copy load path";
  }
  const std::string path = Path("_cold.bin");
  ASSERT_TRUE(GetParam().build_and_save(*graph_, path).ok());
  const Status st = GetParam().load_cold(path, *graph_);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(AllIndexKinds, EnvelopeSweepTest,
                         ::testing::ValuesIn(AllIndexKinds()),
                         [](const auto& info) { return info.param.name; });

// ------------------------------------------ v2 sectioned-layout contracts

class V2LayoutTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(MakeGridNetwork(8, 8));
    path_ = new std::string(TempPath("rne_v2_layout.bin"));
    ASSERT_TRUE(Rne::Build(*graph_, SmallRneConfig()).Save(*path_).ok());
  }
  static void TearDownTestSuite() {
    std::filesystem::remove(*path_);
    delete path_;
    delete graph_;
  }
  static Graph* graph_;
  static std::string* path_;
};
Graph* V2LayoutTest::graph_ = nullptr;
std::string* V2LayoutTest::path_ = nullptr;

TEST_F(V2LayoutTest, SectionsAreAlignedUniqueAndTileTheFileTail) {
  const auto info = InspectEnvelope(*path_);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().format_version, kFormatVersionV2);
  ASSERT_FALSE(info.value().sections.empty());
  const uint64_t file_size = std::filesystem::file_size(*path_);
  uint64_t prev_end = 0;
  std::set<uint32_t> tags;
  for (const SectionInfo& sec : info.value().sections) {
    EXPECT_EQ(sec.offset % kSectionAlignment, 0u) << "tag " << sec.tag;
    EXPECT_GE(sec.offset, prev_end);  // table order = file order
    EXPECT_LE(sec.offset + sec.size, file_size);
    EXPECT_TRUE(tags.insert(sec.tag).second) << "duplicate tag " << sec.tag;
    prev_end = sec.offset + sec.size;
  }
  // Every byte is checksummed: the file ends exactly at the last section.
  EXPECT_EQ(prev_end, file_size);
}

TEST_F(V2LayoutTest, ColdMapDefersLazySectionCorruptionToVerify) {
  // Find a lazy-verify section and flip one bit in the middle of its data.
  const auto info = InspectEnvelope(*path_);
  ASSERT_TRUE(info.ok());
  const SectionInfo* lazy = nullptr;
  for (const SectionInfo& sec : info.value().sections) {
    if ((sec.flags & kSectionFlagLazyVerify) != 0) lazy = &sec;
  }
  ASSERT_NE(lazy, nullptr) << "embedding sections should be lazy-verify";
  const std::string bad = TempPath("rne_v2_lazyflip.bin");
  ASSERT_TRUE(
      fault::FlipBitCopy(*path_, bad, lazy->offset + lazy->size / 2, 5)
          .ok());

  // Heap and eager-mmap loads check every section up front: rejected.
  EXPECT_EQ(Rne::Load(bad).status().code(), StatusCode::kCorruption);
  LoadOptions eager;
  eager.mode = LoadMode::kMmap;
  EXPECT_EQ(Rne::Load(bad, eager).status().code(), StatusCode::kCorruption);

  // The cold map opens fine (metadata is intact), then the deferred check
  // reports Corruption — and keeps reporting it (sticky), never crashing.
  auto cold = Rne::Load(bad, ColdLoadOptions());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(cold.value().IsMapped());
  EXPECT_EQ(cold.value().VerifyMapped().code(), StatusCode::kCorruption);
  EXPECT_EQ(cold.value().VerifyMapped().code(), StatusCode::kCorruption);
  // The hot query path has no Status channel; it must throw the dedicated
  // exception (which the serving chain converts into a backend fallback).
  EXPECT_THROW(cold.value().Query(0, 1), CorruptionError);
  std::filesystem::remove(bad);
}

TEST_F(V2LayoutTest, ColdMapDefersGTreeMatrixCorruptionToVerify) {
  GTreeOptions options;
  options.fanout = 4;
  options.leaf_size = 8;
  const std::string path = TempPath("rne_v2_gtree_lazy.bin");
  ASSERT_TRUE(GTree(*graph_, options).Save(path).ok());
  const auto info = InspectEnvelope(path);
  ASSERT_TRUE(info.ok());
  const SectionInfo* pool = nullptr;
  for (const SectionInfo& sec : info.value().sections) {
    if (sec.tag == kSecGTreeMatrixPool) pool = &sec;
  }
  ASSERT_NE(pool, nullptr);
  ASSERT_NE(pool->flags & kSectionFlagLazyVerify, 0u);
  const std::string bad = TempPath("rne_v2_gtree_flip.bin");
  ASSERT_TRUE(
      fault::FlipBitCopy(path, bad, pool->offset + pool->size / 2, 2).ok());

  EXPECT_EQ(GTree::Load(bad, *graph_).status().code(),
            StatusCode::kCorruption);
  auto cold = GTree::Load(bad, *graph_, ColdLoadOptions());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold.value().VerifyMapped().code(), StatusCode::kCorruption);
  EXPECT_THROW(cold.value().Distance(0, 5), CorruptionError);
  std::filesystem::remove(path);
  std::filesystem::remove(bad);
}

// Rewrites the v2 section table of `src` through `mutate` (applied to the
// whole file image), re-seals the table CRC so structural validation — not
// the checksum — is what rejects the file, and writes the result to `dst`.
void PatchTableCopy(const std::string& src, const std::string& dst,
                    const std::function<void(std::vector<uint8_t>*)>& mutate) {
  std::vector<uint8_t> file;
  ASSERT_TRUE(fault::ReadFileBytes(src, &file).ok());
  mutate(&file);
  uint32_t count = 0;
  std::memcpy(&count, file.data() + kEnvelopeHeaderSize, 4);
  const uint64_t entries_at = kEnvelopeHeaderSize + 4;
  const uint64_t entries_bytes = uint64_t{count} * kSectionEntrySize;
  if (entries_at + entries_bytes + 4 <= file.size()) {
    uint32_t crc = Crc32c(file.data() + kEnvelopeHeaderSize, 4);
    crc = Crc32cExtend(crc, file.data() + entries_at, entries_bytes);
    std::memcpy(file.data() + entries_at + entries_bytes, &crc, 4);
  }
  ASSERT_TRUE(fault::WriteFileBytes(dst, file).ok());
}

TEST_F(V2LayoutTest, ZeroSizeSectionEntryRejected) {
  // A zero-size entry passes no data yet hands loaders a degenerate extent
  // whose pointer aliases the next section; the parser must reject it
  // before any typed code sees it (pinned by
  // fuzz/regressions/envelope/zero_size_section.bin).
  const std::string bad = TempPath("rne_v2_zerosize.bin");
  PatchTableCopy(*path_, bad, [](std::vector<uint8_t>* file) {
    const uint64_t size_at = kEnvelopeHeaderSize + 4 + 16;  // entry0.size
    std::memset(file->data() + size_at, 0, 8);
  });
  const auto st = InspectEnvelope(bad).status();
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  EXPECT_NE(st.ToString().find("zero-size section"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(Rne::Load(bad).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(Rne::Load(bad, ColdLoadOptions()).status().code(),
            StatusCode::kCorruption);
  std::filesystem::remove(bad);
}

TEST_F(V2LayoutTest, HugeSectionCountRejectedBeforeTableAllocation) {
  // count * kSectionEntrySize with count = 0xFFFFFFFF is a 128 GiB table
  // claim; the bound against the actual file size must fire before any
  // allocation or read (pinned by
  // fuzz/regressions/envelope/count_overflow.bin).
  const std::string bad = TempPath("rne_v2_count.bin");
  PatchTableCopy(*path_, bad, [](std::vector<uint8_t>* file) {
    const uint32_t count = 0xFFFFFFFFu;
    std::memcpy(file->data() + kEnvelopeHeaderSize, &count, 4);
  });
  const auto st = InspectEnvelope(bad).status();
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  EXPECT_NE(st.ToString().find("section count"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(Rne::Load(bad).status().code(), StatusCode::kCorruption);
  std::filesystem::remove(bad);
}

TEST_F(V2LayoutTest, SectionOffsetOverlappingHeaderRejected) {
  // An offset pointing back into the envelope header (or anywhere before
  // the payload end) would alias header/meta bytes as section data; the
  // monotone-extent check must reject it (pinned by
  // fuzz/regressions/envelope/offset_into_header.bin).
  const std::string bad = TempPath("rne_v2_overlap.bin");
  PatchTableCopy(*path_, bad, [](std::vector<uint8_t>* file) {
    const uint64_t offset_at = kEnvelopeHeaderSize + 4 + 8;  // entry0.offset
    const uint64_t offset = 0;  // aligned, but inside the header
    std::memcpy(file->data() + offset_at, &offset, 8);
  });
  const auto st = InspectEnvelope(bad).status();
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  EXPECT_NE(st.ToString().find("extent out of bounds"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(Rne::Load(bad).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(Rne::Load(bad, ColdLoadOptions()).status().code(),
            StatusCode::kCorruption);
  std::filesystem::remove(bad);
}

TEST_F(V2LayoutTest, MappedAnswersSurviveFileReplacement) {
  // The atomic-save protocol renames a new inode over the path, so an open
  // mapping keeps serving the generation it was opened on — the property
  // RELOAD relies on to swap models without racing in-flight queries.
  const std::string path = TempPath("rne_v2_replace.bin");
  const Rne original = Rne::Build(*graph_, SmallRneConfig());
  ASSERT_TRUE(original.Save(path).ok());
  auto mapped = Rne::Load(path, ColdLoadOptions());
  ASSERT_TRUE(mapped.ok());
  const double before = mapped.value().Query(1, 17);

  RneConfig other = SmallRneConfig();
  other.train.vertex_samples = 3000;  // different training → different rows
  ASSERT_TRUE(Rne::Build(*graph_, other).Save(path).ok());
  const double after = mapped.value().Query(1, 17);
  EXPECT_EQ(std::memcmp(&before, &after, sizeof(double)), 0)
      << "mapping must pin the old inode across an atomic replace";
  std::filesystem::remove(path);
}

TEST(RneRefineTest, OnlineRefinementReducesError) {
  const Graph g = TestNetwork(7);
  RneConfig config;
  config.dim = 32;
  config.train.level_samples = 3000;
  config.train.vertex_samples = 8000;  // deliberately under-trained
  config.train.vertex_epochs = 2;
  config.fine_tune = false;
  Rne model = Rne::Build(g, config);

  DistanceSampler sampler(g);
  Rng rng(7);
  const auto val = sampler.RandomPairs(400, rng);
  auto err = [&] {
    double sum = 0.0;
    for (const auto& s : val) {
      sum += std::abs(model.Query(s.s, s.t) - s.dist) / s.dist;
    }
    return sum / val.size();
  };
  const double before = err();
  const auto extra = sampler.RandomPairs(20000, rng);
  model.RefineOnline(extra, /*epochs=*/6, /*lr0=*/0.3);
  const double after = err();
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace rne
