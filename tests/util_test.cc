// Unit tests for the util substrate: Status/StatusOr, Rng, Histogram,
// TableWriter, binary serialization, ThreadPool, and stats helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/crc32c.h"
#include "util/fault_injection.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"

namespace rne {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::IoError("").code(),         Status::Corruption("").code(),
      Status::FailedPrecondition("").code()};
  EXPECT_EQ(codes.size(), 5u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.UniformInt(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(2);
  std::set<size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformIndex(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, WeightedIndexFavorsHeavyWeight) {
  Rng rng(3);
  const std::vector<double> weights = {0.0, 1.0, 9.0};
  size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) counts[rng.WeightedIndex(weights)]++;
  EXPECT_EQ(counts[0], 0u);
  EXPECT_GT(counts[2], counts[1] * 5);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(4);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // The fork consumed state; the two streams should diverge.
  bool differs = false;
  for (int i = 0; i < 16 && !differs; ++i) {
    differs = a.UniformInt(0, 1 << 30) != child.UniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(differs);
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BucketLower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketUpper(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketLower(4), 8.0);
}

TEST(HistogramTest, AddAndMeans) {
  Histogram h(0.0, 10.0, 5);
  h.Add(1.0, 4.0, 0.5);
  h.Add(1.5, 6.0, 1.5);
  h.Add(9.0, 2.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_DOUBLE_EQ(h.MeanValue(0), 5.0);
  EXPECT_DOUBLE_EQ(h.MeanAux(0), 1.0);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-3.0, 1.0);
  h.Add(42.0, 1.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(HistogramTest, ArgMaxMeanValue) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.ArgMaxMeanValue(), 5u);  // empty
  h.Add(1.0, 1.0);
  h.Add(5.0, 10.0);
  EXPECT_EQ(h.ArgMaxMeanValue(), 2u);
}

// ----------------------------------------------------------- TableWriter

TEST(TableWriterTest, RendersAlignedTable) {
  TableWriter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(TableWriterTest, CsvRoundTrip) {
  TableWriter t({"a", "b"});
  t.AddRow({"x,y", "2"});
  const std::string path = TempPath("rne_table_test.csv");
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",2");
  std::filesystem::remove(path);
}

TEST(TableWriterTest, FmtHelpers) {
  EXPECT_EQ(TableWriter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::FmtSci(0.0000012), "1.200e-06");
}

// ------------------------------------------------------------- serialize

TEST(SerializeTest, PodVectorStringRoundTrip) {
  const std::string path = TempPath("rne_serialize_test.bin");
  {
    BinaryWriter w(path, 0xABCD1234);
    ASSERT_TRUE(w.ok());
    w.WritePod<int64_t>(-17);
    w.WriteVector(std::vector<double>{1.0, 2.5, -3.0});
    w.WriteString("hello");
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path, 0xABCD1234);
  ASSERT_TRUE(r.ok());
  int64_t i = 0;
  std::vector<double> v;
  std::string s;
  ASSERT_TRUE(r.ReadPod(&i));
  ASSERT_TRUE(r.ReadVector(&v));
  ASSERT_TRUE(r.ReadString(&s));
  EXPECT_EQ(i, -17);
  EXPECT_EQ(v, (std::vector<double>{1.0, 2.5, -3.0}));
  EXPECT_EQ(s, "hello");
  std::filesystem::remove(path);
}

TEST(SerializeTest, BadMagicRejected) {
  const std::string path = TempPath("rne_serialize_magic.bin");
  {
    BinaryWriter w(path, 0x11111111);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path, 0x22222222);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(SerializeTest, MissingFileIsNotFound) {
  BinaryReader r("/nonexistent/definitely/missing.bin", 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SerializeTest, EmptyFileIsCorruption) {
  const std::string path = TempPath("rne_serialize_empty.bin");
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  BinaryReader r(path, 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(SerializeTest, TruncatedReadFails) {
  const std::string path = TempPath("rne_serialize_trunc.bin");
  {
    BinaryWriter w(path, 7);
    w.WritePod<uint32_t>(5);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path, 7);
  ASSERT_TRUE(r.ok());
  uint64_t big = 0;
  EXPECT_FALSE(r.ReadPod(&big));  // only 4 payload bytes available
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(SerializeTest, SaveIsAtomicAndLeavesNoTempFile) {
  const std::string path = TempPath("rne_serialize_atomic.bin");
  {
    BinaryWriter w(path, 7);
    w.WritePod<uint32_t>(5);
    // Until Finish(), only the temp file exists — a concurrent reader of
    // `path` can never observe a partial save.
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
    ASSERT_TRUE(w.Finish().ok());
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(SerializeTest, PayloadBitFlipFailsChecksum) {
  const std::string path = TempPath("rne_serialize_flip.bin");
  {
    BinaryWriter w(path, 7);
    w.WriteVector(std::vector<uint32_t>{1, 2, 3, 4});
    ASSERT_TRUE(w.Finish().ok());
  }
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(fault::ReadFileBytes(path, &bytes).ok());
  bytes[kEnvelopeHeaderSize + 12] ^= 0x10;  // flip a bit inside element [1]
  ASSERT_TRUE(fault::WriteFileBytes(path, bytes).ok());
  BinaryReader r(path, 7);
  ASSERT_TRUE(r.ok());
  std::vector<uint32_t> v;
  EXPECT_TRUE(r.ReadVector(&v));  // the flip is only caught by the CRC
  EXPECT_EQ(r.Finish().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(SerializeTest, CorruptVectorLengthFailsWithoutHugeAllocation) {
  const std::string path = TempPath("rne_serialize_len.bin");
  {
    BinaryWriter w(path, 7);
    w.WriteVector(std::vector<uint64_t>(8, 42));
    ASSERT_TRUE(w.Finish().ok());
  }
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(fault::ReadFileBytes(path, &bytes).ok());
  bytes[kEnvelopeHeaderSize + 5] = 0xFF;  // length field becomes ~2^45
  ASSERT_TRUE(fault::WriteFileBytes(path, bytes).ok());
  fault::Reset();
  BinaryReader r(path, 7);
  ASSERT_TRUE(r.ok());
  std::vector<uint64_t> v;
  EXPECT_FALSE(r.ReadVector(&v));
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_LT(fault::MaxAllocationObserved(), uint64_t{64} << 20);
  std::filesystem::remove(path);
}

TEST(SerializeTest, WrongIndexKindNamesBothKinds) {
  const std::string path = TempPath("rne_serialize_kind.bin");
  {
    BinaryWriter w(path, kChMagic);
    w.WritePod<uint32_t>(1);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path, kH2hMagic);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("CH index"), std::string::npos);
  EXPECT_NE(r.status().message().find("H2H index"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(SerializeTest, InspectEnvelopeReportsMetadata) {
  const std::string path = TempPath("rne_serialize_inspect.bin");
  {
    BinaryWriter w(path, kRneMagic);
    w.WritePod<uint64_t>(99);
    ASSERT_TRUE(w.Finish().ok());
  }
  auto info = InspectEnvelope(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().index_magic, kRneMagic);
  EXPECT_EQ(info.value().format_version, kFormatVersion);
  EXPECT_EQ(info.value().payload_size, 8u);
  std::filesystem::remove(path);
}

// ----------------------------------------------------------------- crc32c

TEST(Crc32cTest, MatchesKnownVectors) {
  // RFC 3720 test vectors for CRC32C.
  const std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  const char* s = "123456789";
  EXPECT_EQ(Crc32c(s, 9), 0xE3069283u);
}

TEST(Crc32cTest, StreamingMatchesOneShot) {
  std::vector<uint8_t> data(1013);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  const uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t crc = 0;
  for (size_t off = 0; off < data.size();) {
    const size_t chunk = std::min<size_t>(97, data.size() - off);
    crc = Crc32cExtend(crc, data.data() + off, chunk);
    off += chunk;
  }
  EXPECT_EQ(crc, whole);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversIndexSpace) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(),
                   [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

// ----------------------------------------------------------------- stats

TEST(StatsTest, MeanVarianceQuantile) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  EXPECT_DOUBLE_EQ(Variance(v), 2.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.99), 5.0);
  EXPECT_DOUBLE_EQ(Min(v), 1.0);
  EXPECT_DOUBLE_EQ(Max(v), 5.0);
}

TEST(StatsTest, EmptyMeanIsZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

}  // namespace
}  // namespace rne
