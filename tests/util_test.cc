// Unit tests for the util substrate: Status/StatusOr, Rng, Histogram,
// TableWriter, binary serialization, ThreadPool, and stats helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <set>
#include <stdexcept>

#include "util/arg_parser.h"
#include "util/crc32c.h"
#include "util/fault_injection.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"

namespace rne {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::IoError("").code(),         Status::Corruption("").code(),
      Status::FailedPrecondition("").code()};
  EXPECT_EQ(codes.size(), 5u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.UniformInt(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(2);
  std::set<size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformIndex(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, WeightedIndexFavorsHeavyWeight) {
  Rng rng(3);
  const std::vector<double> weights = {0.0, 1.0, 9.0};
  size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) counts[rng.WeightedIndex(weights)]++;
  EXPECT_EQ(counts[0], 0u);
  EXPECT_GT(counts[2], counts[1] * 5);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(4);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // The fork consumed state; the two streams should diverge.
  bool differs = false;
  for (int i = 0; i < 16 && !differs; ++i) {
    differs = a.UniformInt(0, 1 << 30) != child.UniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(differs);
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BucketLower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketUpper(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketLower(4), 8.0);
}

TEST(HistogramTest, AddAndMeans) {
  Histogram h(0.0, 10.0, 5);
  h.Add(1.0, 4.0, 0.5);
  h.Add(1.5, 6.0, 1.5);
  h.Add(9.0, 2.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_DOUBLE_EQ(h.MeanValue(0), 5.0);
  EXPECT_DOUBLE_EQ(h.MeanAux(0), 1.0);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-3.0, 1.0);
  h.Add(42.0, 1.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(HistogramTest, ArgMaxMeanValue) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.ArgMaxMeanValue(), 5u);  // empty
  h.Add(1.0, 1.0);
  h.Add(5.0, 10.0);
  EXPECT_EQ(h.ArgMaxMeanValue(), 2u);
}

// ----------------------------------------------------------- TableWriter

TEST(TableWriterTest, RendersAlignedTable) {
  TableWriter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(TableWriterTest, CsvRoundTrip) {
  TableWriter t({"a", "b"});
  t.AddRow({"x,y", "2"});
  const std::string path = TempPath("rne_table_test.csv");
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",2");
  std::filesystem::remove(path);
}

TEST(TableWriterTest, FmtHelpers) {
  EXPECT_EQ(TableWriter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::FmtSci(0.0000012), "1.200e-06");
}

// ------------------------------------------------------------- serialize

TEST(SerializeTest, PodVectorStringRoundTrip) {
  const std::string path = TempPath("rne_serialize_test.bin");
  {
    BinaryWriter w(path, 0xABCD1234);
    ASSERT_TRUE(w.ok());
    w.WritePod<int64_t>(-17);
    w.WriteVector(std::vector<double>{1.0, 2.5, -3.0});
    w.WriteString("hello");
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path, 0xABCD1234);
  ASSERT_TRUE(r.ok());
  int64_t i = 0;
  std::vector<double> v;
  std::string s;
  ASSERT_TRUE(r.ReadPod(&i));
  ASSERT_TRUE(r.ReadVector(&v));
  ASSERT_TRUE(r.ReadString(&s));
  EXPECT_EQ(i, -17);
  EXPECT_EQ(v, (std::vector<double>{1.0, 2.5, -3.0}));
  EXPECT_EQ(s, "hello");
  std::filesystem::remove(path);
}

TEST(SerializeTest, BadMagicRejected) {
  const std::string path = TempPath("rne_serialize_magic.bin");
  {
    BinaryWriter w(path, 0x11111111);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path, 0x22222222);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(SerializeTest, MissingFileIsNotFound) {
  BinaryReader r("/nonexistent/definitely/missing.bin", 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SerializeTest, EmptyFileIsCorruption) {
  const std::string path = TempPath("rne_serialize_empty.bin");
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  BinaryReader r(path, 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(SerializeTest, TruncatedReadFails) {
  const std::string path = TempPath("rne_serialize_trunc.bin");
  {
    BinaryWriter w(path, 7);
    w.WritePod<uint32_t>(5);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path, 7);
  ASSERT_TRUE(r.ok());
  uint64_t big = 0;
  EXPECT_FALSE(r.ReadPod(&big));  // only 4 payload bytes available
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(SerializeTest, SaveIsAtomicAndLeavesNoTempFile) {
  const std::string path = TempPath("rne_serialize_atomic.bin");
  {
    BinaryWriter w(path, 7);
    w.WritePod<uint32_t>(5);
    // Until Finish(), only the temp file exists — a concurrent reader of
    // `path` can never observe a partial save.
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
    ASSERT_TRUE(w.Finish().ok());
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(SerializeTest, PayloadBitFlipFailsChecksum) {
  const std::string path = TempPath("rne_serialize_flip.bin");
  {
    BinaryWriter w(path, 7);
    w.WriteVector(std::vector<uint32_t>{1, 2, 3, 4});
    ASSERT_TRUE(w.Finish().ok());
  }
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(fault::ReadFileBytes(path, &bytes).ok());
  bytes[kEnvelopeHeaderSize + 12] ^= 0x10;  // flip a bit inside element [1]
  ASSERT_TRUE(fault::WriteFileBytes(path, bytes).ok());
  BinaryReader r(path, 7);
  ASSERT_TRUE(r.ok());
  std::vector<uint32_t> v;
  EXPECT_TRUE(r.ReadVector(&v));  // the flip is only caught by the CRC
  EXPECT_EQ(r.Finish().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(SerializeTest, CorruptVectorLengthFailsWithoutHugeAllocation) {
  const std::string path = TempPath("rne_serialize_len.bin");
  {
    BinaryWriter w(path, 7);
    w.WriteVector(std::vector<uint64_t>(8, 42));
    ASSERT_TRUE(w.Finish().ok());
  }
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(fault::ReadFileBytes(path, &bytes).ok());
  bytes[kEnvelopeHeaderSize + 5] = 0xFF;  // length field becomes ~2^45
  ASSERT_TRUE(fault::WriteFileBytes(path, bytes).ok());
  fault::Reset();
  BinaryReader r(path, 7);
  ASSERT_TRUE(r.ok());
  std::vector<uint64_t> v;
  EXPECT_FALSE(r.ReadVector(&v));
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_LT(fault::MaxAllocationObserved(), uint64_t{64} << 20);
  std::filesystem::remove(path);
}

TEST(SerializeTest, WrongIndexKindNamesBothKinds) {
  const std::string path = TempPath("rne_serialize_kind.bin");
  {
    BinaryWriter w(path, kChMagic);
    w.WritePod<uint32_t>(1);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path, kH2hMagic);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("CH index"), std::string::npos);
  EXPECT_NE(r.status().message().find("H2H index"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(SerializeTest, InspectEnvelopeReportsMetadata) {
  const std::string path = TempPath("rne_serialize_inspect.bin");
  {
    BinaryWriter w(path, kRneMagic);
    w.WritePod<uint64_t>(99);
    ASSERT_TRUE(w.Finish().ok());
  }
  auto info = InspectEnvelope(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().index_magic, kRneMagic);
  // A writer with no registered sections emits the v1 layout (see
  // EnvelopeFuzzTest.SectionlessWriterStillEmitsV1).
  EXPECT_EQ(info.value().format_version, kFormatVersionV1);
  EXPECT_EQ(info.value().payload_size, 8u);
  std::filesystem::remove(path);
}

// ----------------------------------------------------------------- crc32c

TEST(Crc32cTest, MatchesKnownVectors) {
  // RFC 3720 test vectors for CRC32C.
  const std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  const char* s = "123456789";
  EXPECT_EQ(Crc32c(s, 9), 0xE3069283u);
}

TEST(Crc32cTest, StreamingMatchesOneShot) {
  std::vector<uint8_t> data(1013);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  const uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t crc = 0;
  for (size_t off = 0; off < data.size();) {
    const size_t chunk = std::min<size_t>(97, data.size() - off);
    crc = Crc32cExtend(crc, data.data() + off, chunk);
    off += chunk;
  }
  EXPECT_EQ(crc, whole);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversIndexSpace) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(),
                   [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ThrowingTaskIsRethrownFromWaitAndPoolSurvives) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is cleared by Wait() and the workers are still alive.
  std::atomic<int> counter{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, FirstExceptionPerBatchWins) {
  ThreadPool pool(1);  // single worker => deterministic task order
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::logic_error("second"); });
  try {
    pool.Wait();
    FAIL() << "Wait() should rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(64,
                                [](size_t i) {
                                  if (i == 13) throw std::runtime_error("13");
                                }),
               std::runtime_error);
  // Pool remains usable after the failed ParallelFor.
  std::atomic<int> hits{0};
  pool.ParallelFor(8, [&hits](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 8);
}

TEST(ThreadPoolTest, CurrentWorkerIndexIsStableAndBounded) {
  ThreadPool pool(3);
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), ThreadPool::kNotAWorker);
  std::vector<std::atomic<int>> per_worker(3);
  pool.ParallelFor(256, [&per_worker](size_t) {
    const size_t w = ThreadPool::CurrentWorkerIndex();
    ASSERT_LT(w, 3u);
    per_worker[w].fetch_add(1);
  });
  int total = 0;
  for (auto& c : per_worker) total += c.load();
  EXPECT_EQ(total, 256);
}

// ------------------------------------------------------------- TaskGroup

TEST(TaskGroupTest, WaitBlocksOnlyOnOwnTasks) {
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future().share());
  TaskGroup blocked(&pool);
  blocked.Submit([gate] { gate.wait(); });

  // A second batch sharing the pool completes while the first is stuck.
  TaskGroup quick(&pool);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    quick.Submit([&counter] { counter.fetch_add(1); });
  }
  quick.Wait();
  EXPECT_EQ(counter.load(), 8);

  release.set_value();
  blocked.Wait();
}

TEST(TaskGroupTest, PoolDefaultWaitIgnoresGroupTasks) {
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future().share());
  TaskGroup blocked(&pool);
  blocked.Submit([gate] { gate.wait(); });

  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();  // must not wait on `blocked`'s task
  EXPECT_EQ(counter.load(), 1);

  release.set_value();
  blocked.Wait();
}

TEST(TaskGroupTest, ExceptionIsIsolatedToItsGroup) {
  ThreadPool pool(2);
  TaskGroup failing(&pool);
  TaskGroup healthy(&pool);
  failing.Submit([] { throw std::runtime_error("group"); });
  std::atomic<int> counter{0};
  healthy.Submit([&counter] { counter.fetch_add(1); });
  healthy.Wait();  // no throw
  EXPECT_EQ(counter.load(), 1);
  EXPECT_THROW(failing.Wait(), std::runtime_error);
  pool.Wait();  // default group untouched; no throw
}

TEST(TaskGroupTest, ConcurrentParallelForsDoNotCrossWait) {
  ThreadPool pool(4);
  std::atomic<int> a{0}, b{0};
  std::thread first([&] {
    pool.ParallelFor(500, [&a](size_t) { a.fetch_add(1); });
  });
  std::thread second([&] {
    pool.ParallelFor(500, [&b](size_t) { b.fetch_add(1); });
  });
  first.join();
  second.join();
  EXPECT_EQ(a.load(), 500);
  EXPECT_EQ(b.load(), 500);
}

// ------------------------------------------------------------- ArgParser

TEST(ArgParserTest, ParsesFlagsAndPositionals) {
  const char* argv[] = {"tool", "verify", "file.rne", "--dim", "64",
                        "--model", "m.rne"};
  auto args = ArgParser::Parse(7, const_cast<char**>(argv), 1);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.value().positionals().size(), 2u);
  EXPECT_EQ(args.value().positionals()[0], "verify");
  EXPECT_EQ(args.value().positionals()[1], "file.rne");
  EXPECT_EQ(args.value().Get("model", ""), "m.rne");
  EXPECT_EQ(args.value().GetInt("dim", 0).value(), 64);
  EXPECT_TRUE(args.value().Has("dim"));
  EXPECT_FALSE(args.value().Has("absent"));
  EXPECT_EQ(args.value().GetInt("absent", 7).value(), 7);
}

TEST(ArgParserTest, FlagMissingValueAtEndIsRejected) {
  const char* argv[] = {"tool", "query", "--model"};
  const auto args = ArgParser::Parse(3, const_cast<char**>(argv), 1);
  ASSERT_FALSE(args.ok());
  EXPECT_EQ(args.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(args.status().message().find("--model"), std::string::npos);
}

TEST(ArgParserTest, FlagFollowedByFlagIsRejectedNotShifted) {
  // The historical parser would have bound --s to "--t" and shifted every
  // later pair; this must be a parse error instead.
  const char* argv[] = {"tool", "query", "--s", "--t", "9", "--model", "m"};
  const auto args = ArgParser::Parse(7, const_cast<char**>(argv), 1);
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.status().message().find("--s"), std::string::npos);
}

TEST(ArgParserTest, NegativeNumbersAreValuesNotFlags) {
  const char* argv[] = {"tool", "--s", "-3"};
  const auto args = ArgParser::Parse(3, const_cast<char**>(argv), 1);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.value().GetInt("s", 0).value(), -3);
}

TEST(ArgParserTest, MalformedNumbersAreErrors) {
  const char* argv[] = {"tool", "--dim", "64x", "--rate", "fast"};
  const auto args = ArgParser::Parse(5, const_cast<char**>(argv), 1);
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args.value().GetInt("dim", 0).ok());
  EXPECT_FALSE(args.value().GetDouble("rate", 0.0).ok());
  FlagReader flags(args.value());
  EXPECT_EQ(flags.Int("dim", 5), 5);  // fallback on error, status latched
  EXPECT_FALSE(flags.status().ok());
}

TEST(ArgParserTest, DeclaredSwitchesTakeNoValue) {
  const char* argv[] = {"tool", "--s", "5", "--exact", "--t", "7"};
  const auto args =
      ArgParser::Parse(6, const_cast<char**>(argv), 1, {"exact"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args.value().Has("exact"));
  EXPECT_EQ(args.value().GetInt("s", 0).value(), 5);
  EXPECT_EQ(args.value().GetInt("t", 0).value(), 7);
  // Undeclared, the same argv is a missing-value error.
  EXPECT_FALSE(ArgParser::Parse(6, const_cast<char**>(argv), 1).ok());
}

TEST(ArgParserTest, RepeatedFlagIsRejectedWithClearError) {
  // Silently keeping one of the two values would hide which occurrence the
  // user meant (`--k 1 ... --k 2` across a long command line).
  const char* argv[] = {"tool", "--k", "1", "--k", "2"};
  const auto args = ArgParser::Parse(5, const_cast<char**>(argv), 1);
  ASSERT_FALSE(args.ok());
  EXPECT_EQ(args.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(args.status().message().find("--k"), std::string::npos);
  EXPECT_NE(args.status().message().find("more than once"),
            std::string::npos);
}

TEST(ArgParserTest, RepeatedSwitchIsRejectedToo) {
  const char* argv[] = {"tool", "--exact", "--exact"};
  const auto args =
      ArgParser::Parse(3, const_cast<char**>(argv), 1, {"exact"});
  ASSERT_FALSE(args.ok());
  EXPECT_EQ(args.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(args.status().message().find("--exact"), std::string::npos);
  // A switch mixed with distinct value flags stays fine.
  const char* ok_argv[] = {"tool", "--exact", "--k", "2"};
  EXPECT_TRUE(
      ArgParser::Parse(4, const_cast<char**>(ok_argv), 1, {"exact"}).ok());
}

TEST(ArgParserTest, EmbeddedNulTruncatesLikeExecveWould) {
  // argv strings are C strings: a NUL smuggled into an argument ends it
  // there. The parser must see only the prefix — no over-read past the
  // terminator, no phantom flags from the hidden tail.
  const char model[] = "m.rne\0--evil";  // sizeof includes both parts
  const char* argv[] = {"tool", "--model", model, "--k", "2"};
  const auto args = ArgParser::Parse(5, const_cast<char**>(argv), 1);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.value().Get("model", ""), "m.rne");
  EXPECT_FALSE(args.value().Has("evil"));
  EXPECT_EQ(args.value().GetInt("k", 0).value(), 2);
}

TEST(ArgParserTest, EqualsFormsAreLiteralKeysNotAssignments) {
  // The parser is space-separated only: "--flag=v" is the (odd) key
  // "flag=v" and "--flag=" the key "flag=", each still requiring a
  // following value. Neither may alias the plain "flag" key.
  const char* argv[] = {"tool", "--dim=", "8", "--rate=0.5", "x"};
  const auto args = ArgParser::Parse(5, const_cast<char**>(argv), 1);
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args.value().Has("dim"));
  EXPECT_FALSE(args.value().Has("rate"));
  EXPECT_EQ(args.value().Get("dim=", ""), "8");
  EXPECT_EQ(args.value().Get("rate=0.5", ""), "x");
  // At end of argv the '=' form hits the ordinary missing-value error.
  const char* tail[] = {"tool", "--model="};
  const auto missing = ArgParser::Parse(2, const_cast<char**>(tail), 1);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArgParserTest, DuplicateAfterInterveningSwitchStillRejected) {
  // The duplicate check must key on the flag name, not adjacency: a switch
  // between the two occurrences must not launder the repeat.
  const char* argv[] = {"tool", "--k", "1", "--exact", "--k", "2"};
  const auto args =
      ArgParser::Parse(6, const_cast<char**>(argv), 1, {"exact"});
  ASSERT_FALSE(args.ok());
  EXPECT_EQ(args.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(args.status().message().find("--k"), std::string::npos);
  EXPECT_NE(args.status().message().find("more than once"),
            std::string::npos);
}

TEST(ArgParserTest, HugeArgumentsRoundTripWithoutTruncation) {
  // A single >64 KiB token (both as a value and as a flag name) must be
  // stored and fetched intact — no fixed-size buffers anywhere.
  const std::string huge_value(70 * 1024, 'v');
  const std::string huge_flag = "--" + std::string(65 * 1024, 'k');
  const char* argv[] = {"tool", "--payload", huge_value.c_str(),
                        huge_flag.c_str(), "1"};
  const auto args = ArgParser::Parse(5, const_cast<char**>(argv), 1);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.value().Get("payload", ""), huge_value);
  EXPECT_EQ(args.value().Get(huge_flag.substr(2), ""), "1");
  // Huge numeric strings overflow strtol/strtod cleanly, not fatally.
  const std::string digits(65 * 1024, '9');
  const char* num_argv[] = {"tool", "--n", digits.c_str()};
  const auto num = ArgParser::Parse(3, const_cast<char**>(num_argv), 1);
  ASSERT_TRUE(num.ok());
  (void)num.value().GetInt("n", 0);      // ERANGE path, no crash
  (void)num.value().GetDouble("n", 0.0); // HUGE_VAL path, no crash
}

// ----------------------------------------------------- LatencyHistogram

TEST(LatencyHistogramTest, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.PercentileNanos(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 0.0);
  EXPECT_EQ(h.MaxNanos(), 0);
}

TEST(LatencyHistogramTest, PercentilesAreOrderedAndBounded) {
  LatencyHistogram h;
  Rng rng(3);
  int64_t max_seen = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.UniformInt(100, 1000000);
    max_seen = std::max(max_seen, v);
    h.Record(v);
  }
  EXPECT_EQ(h.TotalCount(), 20000u);
  const double p50 = h.PercentileNanos(50.0);
  const double p95 = h.PercentileNanos(95.0);
  const double p99 = h.PercentileNanos(99.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, static_cast<double>(h.MaxNanos()));
  EXPECT_EQ(h.MaxNanos(), max_seen);
  // Uniform [100, 1e6]: the p50 bucket midpoint is within bucket error
  // (<= ~4.5% half-width, be generous) of the true median.
  EXPECT_NEAR(p50, 500000.0, 0.10 * 500000.0);
  EXPECT_DOUBLE_EQ(h.PercentileNanos(100.0),
                   static_cast<double>(h.MaxNanos()));
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (int v = 0; v < 32; ++v) h.Record(v);
  // Values below 2^(sub-bits+1) land in exact unit buckets, so percentiles
  // are within half a unit of the true sample.
  EXPECT_NEAR(h.PercentileNanos(50.0), 15.5, 0.5 + 1e-9);
  EXPECT_LE(h.PercentileNanos(0.0), 0.5);
  EXPECT_EQ(h.MaxNanos(), 31);
  h.Record(-5);  // clamped to zero, not UB
  EXPECT_EQ(h.TotalCount(), 33u);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(1, 1 << 20);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.TotalCount(), combined.TotalCount());
  EXPECT_EQ(a.MaxNanos(), combined.MaxNanos());
  EXPECT_DOUBLE_EQ(a.PercentileNanos(50.0), combined.PercentileNanos(50.0));
  EXPECT_DOUBLE_EQ(a.PercentileNanos(99.0), combined.PercentileNanos(99.0));
  EXPECT_DOUBLE_EQ(a.MeanNanos(), combined.MeanNanos());
  a.Reset();
  EXPECT_EQ(a.TotalCount(), 0u);
}

// Property: splitting one sample stream across any number of per-worker
// histograms and merging MUST be indistinguishable from recording into a
// single histogram — identical counts, mean, max, and every quantile (bucket
// counts add exactly, so there is no "within resolution" slack to grant).
// This is the contract the serving path's chunk-local flush relies on.
TEST(LatencyHistogramTest, ShardedMergeEqualsConcatForAnySplit) {
  for (const uint64_t seed : {1u, 7u, 42u}) {
    for (const size_t shards : {2u, 3u, 8u}) {
      Rng rng(seed);
      std::vector<LatencyHistogram> parts(shards);
      LatencyHistogram concat;
      for (int i = 0; i < 3000; ++i) {
        // Heavy-tailed: exercise unit buckets, mid octaves, and the tail.
        const auto v = rng.UniformInt(0, int64_t{1} << rng.UniformIndex(40));
        parts[rng.UniformIndex(shards)].Record(v);
        concat.Record(v);
      }
      LatencyHistogram merged;
      for (const auto& p : parts) merged.Merge(p);
      EXPECT_EQ(merged.TotalCount(), concat.TotalCount());
      EXPECT_EQ(merged.MaxNanos(), concat.MaxNanos());
      EXPECT_DOUBLE_EQ(merged.MeanNanos(), concat.MeanNanos());
      for (const double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(merged.PercentileNanos(p), concat.PercentileNanos(p))
            << "seed=" << seed << " shards=" << shards << " p=" << p;
      }
    }
  }
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentity) {
  LatencyHistogram h, empty;
  for (int i = 0; i < 50; ++i) h.Record(1000 + i);
  const double p50_before = h.PercentileNanos(50.0);
  h.Merge(empty);
  EXPECT_EQ(h.TotalCount(), 50u);
  EXPECT_DOUBLE_EQ(h.PercentileNanos(50.0), p50_before);
  empty.Merge(h);
  EXPECT_EQ(empty.TotalCount(), 50u);
  EXPECT_DOUBLE_EQ(empty.PercentileNanos(50.0), p50_before);
}

// Regression for the populated-range optimization: a Reset() after large
// samples must not leave stale range state that skews later percentiles.
TEST(LatencyHistogramTest, ResetThenReuseIsClean) {
  LatencyHistogram h;
  h.Record(int64_t{1} << 40);
  h.Record(int64_t{1} << 50);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.PercentileNanos(50.0), 0.0);
  for (int v = 10; v < 20; ++v) h.Record(v);
  EXPECT_EQ(h.TotalCount(), 10u);
  EXPECT_EQ(h.MaxNanos(), 19);
  EXPECT_NEAR(h.PercentileNanos(50.0), 14.5, 0.5 + 1e-9);
  EXPECT_NEAR(h.PercentileNanos(100.0), 19.0, 1e-9);
}

// Property: any set of well-formed `--key value` pairs round-trips through
// Parse() regardless of order, with positionals preserved in sequence.
TEST(ArgParserTest, RandomFlagSetsRoundTrip) {
  Rng rng(11);
  for (int iter = 0; iter < 20; ++iter) {
    std::map<std::string, std::string> want;
    std::vector<std::string> tokens = {"tool"};
    const size_t flags = 1 + rng.UniformIndex(6);
    for (size_t i = 0; i < flags; ++i) {
      const std::string key = "flag" + std::to_string(i);
      const std::string value = std::to_string(rng.UniformInt(-1000, 1000));
      want[key] = value;
      tokens.push_back("--" + key);
      tokens.push_back(value);
    }
    // Insert at a pair boundary only — a positional between a flag and its
    // value would (correctly) be taken as the flag's value.
    tokens.insert(tokens.begin() + 1 + 2 * rng.UniformIndex(flags + 1),
                  "positional");
    std::vector<char*> argv;
    argv.reserve(tokens.size());
    for (auto& t : tokens) argv.push_back(t.data());
    auto parsed = ArgParser::Parse(static_cast<int>(argv.size()), argv.data());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    for (const auto& [key, value] : want) {
      EXPECT_EQ(parsed.value().Get(key, "<missing>"), value) << key;
    }
    ASSERT_EQ(parsed.value().positionals().size(), 1u);
    EXPECT_EQ(parsed.value().positionals()[0], "positional");
  }
}

TEST(ArgParserTest, RequireKnownNamesTheUnknownFlag) {
  std::vector<std::string> tokens = {"tool", "--threads", "4", "--thread",
                                     "2"};
  std::vector<char*> argv;
  for (auto& t : tokens) argv.push_back(t.data());
  auto parsed = ArgParser::Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().RequireKnown({"threads", "thread"}).ok());
  const Status bad = parsed.value().RequireKnown({"threads", "queue"});
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.ToString().find("--thread"), std::string::npos)
      << bad.ToString();
}

// ----------------------------------------------------------------- stats

TEST(StatsTest, MeanVarianceQuantile) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  EXPECT_DOUBLE_EQ(Variance(v), 2.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.99), 5.0);
  EXPECT_DOUBLE_EQ(Min(v), 1.0);
  EXPECT_DOUBLE_EQ(Max(v), 5.0);
}

TEST(StatsTest, EmptyMeanIsZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

}  // namespace
}  // namespace rne
