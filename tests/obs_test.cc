// Observability layer: registry semantics (create-on-first-use, pointer
// stability across ResetForTest, JSON shape), multi-threaded counter and
// histogram recording (also exercised under TSan in CI), the runtime enable
// toggle, and trace spans (nesting depth, indexed names, ring overwrite
// accounting, plain and chrome://tracing JSON exports).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rne::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetForTest();
    ResetTrace();
    SetEnabled(true);
  }
  void TearDown() override { SetEnabled(true); }
};

TEST_F(ObsTest, RegistryCreatesOnFirstUseAndKeepsPointerIdentity) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* c = registry.GetCounter("test.counter");
  ASSERT_NE(c, nullptr);
  c->Add(3);
  EXPECT_EQ(registry.GetCounter("test.counter"), c);
  EXPECT_EQ(c->Value(), 3u);

  registry.ResetForTest();
  // Reset clears the value but never invalidates or replaces the entry —
  // this is what makes the macros' static-local handles safe.
  EXPECT_EQ(registry.GetCounter("test.counter"), c);
  EXPECT_EQ(c->Value(), 0u);

  Gauge* g = registry.GetGauge("test.gauge");
  g->Set(2.5);
  EXPECT_EQ(registry.GetGauge("test.gauge"), g);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);

  LatencyStat* h = registry.GetLatency("test.hist");
  h->Record(1000);
  EXPECT_EQ(registry.GetLatency("test.hist"), h);
  EXPECT_EQ(h->Snapshot().TotalCount(), 1u);
}

TEST_F(ObsTest, CountersAreExactUnderConcurrency) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.mt.counter");
  LatencyStat* h = MetricsRegistry::Global().GetLatency("test.mt.hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add(1);
        h->Record(100 * (t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h->Snapshot().TotalCount(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST_F(ObsTest, LatencyStatMergeFoldsLocalHistograms) {
  LatencyStat stat;
  LatencyHistogram local;
  for (int i = 1; i <= 100; ++i) local.Record(i * 1000);
  stat.Merge(local);
  stat.Record(999000);
  const LatencyHistogram merged = stat.Snapshot();
  EXPECT_EQ(merged.TotalCount(), 101u);
  EXPECT_EQ(merged.MaxNanos(), 999000);
  stat.Reset();
  EXPECT_EQ(stat.Snapshot().TotalCount(), 0u);
}

TEST_F(ObsTest, MacrosRespectRuntimeToggle) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.toggle.count");
  RNE_COUNTER_ADD("test.toggle.count", 2);
  SetEnabled(false);
  RNE_COUNTER_ADD("test.toggle.count", 40);
  RNE_GAUGE_SET("test.toggle.gauge", 7.0);
  RNE_HIST_RECORD("test.toggle.hist", 123);
  SetEnabled(true);
  RNE_COUNTER_ADD("test.toggle.count", 1);
  EXPECT_EQ(c->Value(), 3u);
  EXPECT_DOUBLE_EQ(MetricsRegistry::Global().GetGauge("test.toggle.gauge")->Value(),
                   0.0);
  EXPECT_EQ(
      MetricsRegistry::Global().GetLatency("test.toggle.hist")->Snapshot()
          .TotalCount(),
      0u);
}

TEST_F(ObsTest, ToJsonHasStableSchema) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.json.count")->Add(7);
  registry.GetGauge("test.json.gauge")->Set(1.5);
  registry.GetLatency("test.json.hist")->Record(2000);
  const std::string json = registry.ToJson();
  for (const char* expected :
       {"\"counters\"", "\"gauges\"", "\"histograms\"",
        "\"test.json.count\":7", "\"test.json.gauge\":1.5",
        "\"test.json.hist\"", "\"count\":1", "\"p50_ns\"", "\"p95_ns\"",
        "\"p99_ns\"", "\"mean_ns\"", "\"max_ns\":2000"}) {
    EXPECT_NE(json.find(expected), std::string::npos)
        << expected << " missing from " << json;
  }
}

TEST_F(ObsTest, JsonStringEscaping) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\n\td");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\td\"");
  out.clear();
  AppendJsonDouble(&out, 0.25);
  EXPECT_EQ(out, "0.25");
}

TEST_F(ObsTest, SpansRecordNamesDepthsAndNesting) {
  {
    RNE_SPAN("outer");
    {
      RNE_SPAN("inner.level", 3);
    }
  }
  std::vector<SpanEvent> events;
  EXPECT_EQ(TraceSnapshot(&events), 0u);
  ASSERT_EQ(events.size(), 2u);
  // Inner closes (and records) first.
  EXPECT_STREQ(events[0].name, "inner.level.3");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].dur_ns, events[1].dur_ns);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  SetEnabled(false);
  {
    RNE_SPAN("ghost");
  }
  SetEnabled(true);
  std::vector<SpanEvent> events;
  TraceSnapshot(&events);
  EXPECT_TRUE(events.empty());
}

TEST_F(ObsTest, RingOverwritesOldestAndCountsDrops) {
  const size_t original = TraceRingCapacity();
  SetTraceRingCapacity(4);
  for (size_t i = 0; i < 10; ++i) {
    RNE_SPAN("span.n", i);
  }
  std::vector<SpanEvent> events;
  const uint64_t dropped = TraceSnapshot(&events);
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(dropped, 6u);
  // Oldest-first snapshot of the newest four events.
  EXPECT_STREQ(events.front().name, "span.n.6");
  EXPECT_STREQ(events.back().name, "span.n.9");
  SetTraceRingCapacity(original);
  ResetTrace();
}

TEST_F(ObsTest, TraceJsonShapes) {
  {
    RNE_SPAN("json.span");
  }
  const std::string plain = TraceJson();
  EXPECT_NE(plain.find("\"dropped\":0"), std::string::npos) << plain;
  EXPECT_NE(plain.find("\"name\":\"json.span\""), std::string::npos);
  EXPECT_NE(plain.find("\"dur_ns\""), std::string::npos);

  const std::string chrome = TraceChromeJson();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos) << chrome;
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"json.span\""), std::string::npos);
  EXPECT_NE(chrome.find("\"pid\":1"), std::string::npos);
}

TEST_F(ObsTest, LongSpanNamesAreTruncatedNotOverflowed) {
  const std::string longname(200, 'x');
  {
    SpanGuard guard(longname.c_str());
  }
  std::vector<SpanEvent> events;
  TraceSnapshot(&events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), std::string(SpanEvent::kMaxName, 'x'));
}

TEST_F(ObsTest, ConcurrentSpansGetDistinctThreadIds) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      RNE_SPAN("mt.span");
    });
  }
  for (auto& t : threads) t.join();
  std::vector<SpanEvent> events;
  TraceSnapshot(&events);
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads));
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].depth, 0);
    EXPECT_STREQ(events[i].name, "mt.span");
    for (size_t j = 0; j < i; ++j) {
      EXPECT_NE(events[i].tid, events[j].tid);
    }
  }
}

}  // namespace
}  // namespace rne::obs
