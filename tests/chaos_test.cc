// Runtime chaos harness (DESIGN.md §12): randomized fault schedules —
// throws, error Statuses, latency spikes — injected at the backend dispatch
// seam while client threads hammer a fully exact fallback chain. Invariants
// checked every round:
//
//   1. No crash, no stuck thread (the test finishing is the assertion).
//   2. No wrong successful answer: every OK response must match the exact
//      Dijkstra oracle (all chain members are exact, so fallback never
//      changes the correct value).
//   3. Failures surface only as the documented status codes, never as
//      mangled distances.
//   4. After DisarmRuntimeFaults() the engine heals on its own: the primary
//      breaker re-closes via a backoff probe, full-size batches are
//      admitted again, and answers come from the primary without fallback.
//
// The schedule derives from RNE_CHAOS_SEED (CI sweeps several), and the
// exact injected schedule is exported to RNE_CHAOS_SCHEDULE_OUT when set,
// so a failing run replays from its artifact.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "algo/dijkstra.h"
#include "graph/generators.h"
#include "serve/backend.h"
#include "serve/query_engine.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace rne::serve {
namespace {

Graph ChaosNetwork() {
  RoadNetworkConfig cfg;
  cfg.rows = 10;
  cfg.cols = 10;
  cfg.seed = 42;
  return MakeRoadNetwork(cfg);
}

uint64_t ChaosSeed() {
  if (const char* env = std::getenv("RNE_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xC4A05u;
}

/// Failure codes the serving contract allows under faults. Anything else
/// (or an OK answer that disagrees with the oracle) is a harness failure.
bool IsAllowedFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kIoError:
      return true;
    default:
      return false;
  }
}

TEST(ChaosTest, RandomizedFaultScheduleKeepsInvariants) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("RNE_CHAOS_SEED=" + std::to_string(seed));
  const Graph g = ChaosNetwork();

  EngineOptions options;
  options.num_threads = 4;
  options.queue_capacity = 128;
  options.default_deadline = std::chrono::microseconds(200000);
  options.breaker.consecutive_failures = 3;
  options.breaker.initial_backoff = std::chrono::milliseconds(5);
  options.breaker.max_backoff = std::chrono::milliseconds(40);
  options.shedder.enabled = true;
  options.shedder.min_limit = 16;
  options.shedder.max_limit = 128;
  QueryEngine engine(options);
  BackendContext ctx;
  ctx.graph = &g;
  engine.AddBackend("dijkstra", ctx);
  engine.AddBackend("gtree", ctx);
  engine.AddBackend("ch", ctx);
  ASSERT_TRUE(engine.WaitUntilLoaded().ok());

  constexpr int kRounds = 5;
  constexpr size_t kClients = 4;
  constexpr size_t kBatchesPerClient = 10;
  constexpr size_t kBatchSize = 16;
  std::atomic<size_t> wrong_answers{0};
  std::atomic<size_t> bad_codes{0};
  std::atomic<size_t> ok_responses{0};
  std::atomic<size_t> failed_responses{0};

  for (int round = 0; round < kRounds; ++round) {
    // Per-round fault mix, derived from the seed (Rng is splitmix-based;
    // std engines are lint-banned and non-reproducible anyway).
    Rng rng(seed * 1000003u + static_cast<uint64_t>(round));
    fault::RuntimeFaultConfig config;
    config.throw_probability = 0.05 + 0.20 * rng.UniformReal(0.0, 1.0);
    config.error_probability = 0.05 + 0.20 * rng.UniformReal(0.0, 1.0);
    config.latency_probability = 0.10 * rng.UniformReal(0.0, 1.0);
    config.latency_min = std::chrono::microseconds(50);
    config.latency_max = std::chrono::microseconds(1000);
    fault::ArmRuntimeFaults(seed + static_cast<uint64_t>(round), config);

    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c, round] {
        DijkstraSearch oracle(g);
        Rng req_rng(seed ^ (round * 131u + c));
        for (size_t b = 0; b < kBatchesPerClient; ++b) {
          std::vector<Request> requests(kBatchSize);
          for (auto& r : requests) {
            r.s = static_cast<VertexId>(req_rng.UniformIndex(g.NumVertices()));
            r.t = static_cast<VertexId>(req_rng.UniformIndex(g.NumVertices()));
          }
          std::vector<Response> responses;
          const Status admitted = engine.QueryBatch(requests, &responses);
          if (!admitted.ok()) {
            // Shed or queue-full backpressure is the only legal batch-level
            // outcome under chaos.
            if (admitted.code() != StatusCode::kUnavailable) {
              bad_codes.fetch_add(kBatchSize);
            }
            continue;
          }
          for (size_t i = 0; i < requests.size(); ++i) {
            if (responses[i].status.ok()) {
              ok_responses.fetch_add(1);
              const double expected =
                  oracle.Distance(requests[i].s, requests[i].t);
              if (std::abs(responses[i].distance - expected) > 1e-6) {
                wrong_answers.fetch_add(1);
              }
            } else {
              failed_responses.fetch_add(1);
              if (!IsAllowedFailure(responses[i].status.code())) {
                ADD_FAILURE() << "unexpected failure code: "
                              << responses[i].status.ToString();
                bad_codes.fetch_add(1);
              }
            }
          }
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  fault::DisarmRuntimeFaults();

  EXPECT_EQ(wrong_answers.load(), 0u)
      << "an OK response disagreed with the exact oracle";
  EXPECT_EQ(bad_codes.load(), 0u);
  EXPECT_GT(ok_responses.load(), 0u) << "chaos mix starved every request";
  EXPECT_GT(fault::RuntimeFaultCount(), 0u)
      << "no fault ever fired; the schedule is not exercising anything";

  // Export the schedule for post-mortem before any teardown clears it.
  if (const char* out_path = std::getenv("RNE_CHAOS_SCHEDULE_OUT")) {
    std::ofstream out(out_path);
    out << fault::RuntimeFaultLogJson() << "\n";
  }

  // Recovery: with faults disarmed the engine must heal unattended — the
  // primary breaker re-closes off a successful backoff probe, the adaptive
  // admission limit climbs back, and a full batch serves from the primary
  // with zero failures. Breakers of deeper chain slots stay wherever the
  // brownout left them until traffic reaches them again (transitions are
  // lazy, taken on dispatch) — the primary is the one that matters here.
  const auto recovery_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  DijkstraSearch oracle(g);
  bool recovered = false;
  while (std::chrono::steady_clock::now() < recovery_deadline) {
    std::vector<Request> requests(kBatchSize);
    Rng req_rng(seed + 999u);
    for (auto& r : requests) {
      r.s = static_cast<VertexId>(req_rng.UniformIndex(g.NumVertices()));
      r.t = static_cast<VertexId>(req_rng.UniformIndex(g.NumVertices()));
    }
    std::vector<Response> responses;
    const Status admitted = engine.QueryBatch(requests, &responses);
    if (admitted.ok()) {
      bool all_primary_ok = true;
      for (size_t i = 0; i < requests.size(); ++i) {
        if (!responses[i].status.ok() || responses[i].fell_back ||
            responses[i].backend != "dijkstra") {
          all_primary_ok = false;
          break;
        }
        EXPECT_NEAR(responses[i].distance,
                    oracle.Distance(requests[i].s, requests[i].t), 1e-6);
      }
      const auto health = engine.Health();
      ASSERT_FALSE(health.empty());
      if (all_primary_ok && health[0].breaker == BreakerState::kClosed) {
        recovered = true;
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered)
      << "engine did not heal within 10s of disarming faults";

  fault::Reset();
}

}  // namespace
}  // namespace rne::serve
