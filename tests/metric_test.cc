// Tests for the Lp representation metrics: metric axioms (property sweeps
// over p), specialized-kernel agreement, and gradient checks against finite
// differences.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/metric.h"
#include "util/rng.h"

namespace rne {
namespace {

std::vector<float> RandomVec(size_t dim, Rng& rng) {
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.UniformReal(-2.0, 2.0));
  return v;
}

TEST(MetricTest, L1KnownValues) {
  const std::vector<float> a = {1.0f, -2.0f, 3.0f};
  const std::vector<float> b = {0.0f, 2.0f, 3.5f};
  EXPECT_NEAR(L1Dist(a, b), 1.0 + 4.0 + 0.5, 1e-9);
}

TEST(MetricTest, L2KnownValues) {
  const std::vector<float> a = {0.0f, 0.0f};
  const std::vector<float> b = {3.0f, 4.0f};
  EXPECT_NEAR(L2Dist(a, b), 5.0, 1e-9);
}

TEST(MetricTest, DispatcherHitsSpecializations) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto a = RandomVec(17, rng);
    const auto b = RandomVec(17, rng);
    EXPECT_NEAR(MetricDist(a, b, 1.0), LpDist(a, b, 1.0), 1e-6);
    EXPECT_NEAR(MetricDist(a, b, 2.0), LpDist(a, b, 2.0), 1e-6);
  }
}

class MetricAxiomSweep : public ::testing::TestWithParam<double> {};

TEST_P(MetricAxiomSweep, NonNegativityAndIdentity) {
  const double p = GetParam();
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto a = RandomVec(8, rng);
    const auto b = RandomVec(8, rng);
    EXPECT_GE(MetricDist(a, b, p), 0.0);
    EXPECT_NEAR(MetricDist(a, a, p), 0.0, 1e-9);
  }
}

TEST_P(MetricAxiomSweep, Symmetry) {
  const double p = GetParam();
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto a = RandomVec(8, rng);
    const auto b = RandomVec(8, rng);
    EXPECT_NEAR(MetricDist(a, b, p), MetricDist(b, a, p), 1e-9);
  }
}

TEST_P(MetricAxiomSweep, TriangleInequalityForTrueMetrics) {
  const double p = GetParam();
  if (p < 1.0) GTEST_SKIP() << "Lp with p < 1 is not a metric (Fig 9 only)";
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto a = RandomVec(8, rng);
    const auto b = RandomVec(8, rng);
    const auto c = RandomVec(8, rng);
    EXPECT_LE(MetricDist(a, c, p),
              MetricDist(a, b, p) + MetricDist(b, c, p) + 1e-6);
  }
}

TEST_P(MetricAxiomSweep, GradientMatchesFiniteDifference) {
  const double p = GetParam();
  Rng rng(5);
  const size_t dim = 6;
  for (int trial = 0; trial < 20; ++trial) {
    auto a = RandomVec(dim, rng);
    const auto b = RandomVec(dim, rng);
    const double dist = MetricDist(a, b, p);
    if (dist < 0.1) continue;  // gradient ill-conditioned near zero
    std::vector<double> grad(dim);
    MetricGradient(a, b, p, dist, grad);
    const double eps = 1e-3;
    for (size_t i = 0; i < dim; ++i) {
      if (std::abs(static_cast<double>(a[i]) - b[i]) < 0.05) continue;  // |.| kink
      // Skip clamped magnitudes (MetricGradient caps per-dim gradients at 1
      // to keep p < 1 training stable).
      if (std::abs(grad[i]) >= 1.0 - 1e-12) continue;
      const float orig = a[i];
      a[i] = orig + static_cast<float>(eps);
      const double up = MetricDist(a, b, p);
      a[i] = orig - static_cast<float>(eps);
      const double down = MetricDist(a, b, p);
      a[i] = orig;
      EXPECT_NEAR(grad[i], (up - down) / (2 * eps), 2e-2)
          << "p=" << p << " dim=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PValues, MetricAxiomSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0, 5.0));

TEST(MetricTest, L1GradientIsSign) {
  const std::vector<float> a = {1.0f, -1.0f, 0.0f};
  const std::vector<float> b = {0.0f, 0.0f, 0.0f};
  std::vector<double> grad(3);
  MetricGradient(a, b, 1.0, L1Dist(a, b), grad);
  EXPECT_DOUBLE_EQ(grad[0], 1.0);
  EXPECT_DOUBLE_EQ(grad[1], -1.0);
  EXPECT_DOUBLE_EQ(grad[2], 0.0);
}

TEST(MetricTest, GradientZeroAtCoincidence) {
  const std::vector<float> a = {1.0f, 2.0f};
  std::vector<double> grad(2);
  MetricGradient(a, a, 2.0, 0.0, grad);
  EXPECT_DOUBLE_EQ(grad[0], 0.0);
  EXPECT_DOUBLE_EQ(grad[1], 0.0);
}

}  // namespace
}  // namespace rne
