// TCP front-end tests: a real TcpServer on an ephemeral loopback port with
// the reactor on its own thread, driven by BlockingClient. Covers pipelined
// request/answer ordering, malformed and oversized frames, slow-client and
// idle-client eviction, the connection cap, STATS over the socket, cache
// hits across connections, and graceful drain with answers still buffered.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"

namespace rne::net {
namespace {

using namespace std::chrono_literals;

constexpr auto kRecvTimeout = 5000ms;

/// Polls `pred` until true or the deadline passes; TCP tests must never
/// sleep a fixed amount and hope.
template <typename Pred>
bool WaitFor(Pred pred, std::chrono::milliseconds deadline = 3000ms) {
  const auto stop = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < stop) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

class NetTest : public ::testing::Test {
 protected:
  NetTest() : graph_(MakeGraph()), engine_(MakeEngineOptions()) {
    serve::BackendContext ctx;
    ctx.graph = &graph_;
    engine_.AddBackend("dijkstra", ctx);
    EXPECT_TRUE(engine_.WaitUntilLoaded().ok());
  }

  ~NetTest() override { StopServer(); }

  static Graph MakeGraph() {
    RoadNetworkConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.seed = 7;
    return MakeRoadNetwork(cfg);
  }

  static serve::EngineOptions MakeEngineOptions() {
    serve::EngineOptions options;
    options.num_threads = 2;
    return options;
  }

  /// Starts the server with `options` (port forced ephemeral) and the
  /// reactor on a background thread.
  void StartServer(TcpServerOptions options = {}) {
    options.port = 0;
    server_ = std::make_unique<TcpServer>(engine_, options);
    ASSERT_TRUE(server_->Start().ok());
    serve_thread_ = std::thread([this] { serve_status_ = server_->Serve(); });
  }

  void StopServer() {
    if (server_ != nullptr && serve_thread_.joinable()) {
      server_->Shutdown();
      serve_thread_.join();
    }
    server_.reset();
  }

  BlockingClient Connect() {
    BlockingClient client;
    EXPECT_TRUE(
        client.Connect("127.0.0.1", server_->port(), kRecvTimeout).ok());
    return client;
  }

  Graph graph_;
  serve::QueryEngine engine_;
  std::unique_ptr<TcpServer> server_;
  std::thread serve_thread_;
  Status serve_status_;
};

TEST_F(NetTest, PipelinedRequestsAnswerInOrder) {
  StartServer();
  BlockingClient client = Connect();
  // One write carrying many requests; answers must come back 1:1, in
  // order. Repeated queries pin the ordering: equal inputs, equal lines.
  std::string burst;
  for (int i = 0; i < 32; ++i) {
    burst += "QUERY 0 " + std::to_string(1 + i % 4) + "\n";
  }
  ASSERT_TRUE(client.Send(burst).ok());
  std::vector<std::string> lines;
  for (int i = 0; i < 32; ++i) {
    auto line = client.ReadLine();
    ASSERT_TRUE(line.ok()) << i << ": " << line.status().ToString();
    lines.push_back(std::move(line).value());
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(lines[i].rfind("DIST ", 0), 0u) << lines[i];
    // Same request as 4 positions earlier => byte-identical answer line.
    if (i >= 4) {
      EXPECT_EQ(lines[i], lines[i - 4]) << i;
    }
  }
}

TEST_F(NetTest, MalformedFramesGetErrorsAndTheConnectionSurvives) {
  StartServer();
  BlockingClient client = Connect();
  ASSERT_TRUE(client.Send("FROBNICATE 1 2\nQUERY nope\nQUERY 0 5\n").ok());
  auto l1 = client.ReadLine();
  ASSERT_TRUE(l1.ok());
  EXPECT_EQ(l1.value(), "ERR INVALID_ARGUMENT: unknown verb 'FROBNICATE'");
  auto l2 = client.ReadLine();
  ASSERT_TRUE(l2.ok());
  EXPECT_EQ(l2.value(), "ERR INVALID_ARGUMENT: usage: QUERY <s> <t>");
  auto l3 = client.ReadLine();
  ASSERT_TRUE(l3.ok());
  EXPECT_EQ(l3.value().rfind("DIST ", 0), 0u) << l3.value();
}

TEST_F(NetTest, OversizedLineIsRejectedAndTheConnectionClosed) {
  TcpServerOptions options;
  options.max_line_bytes = 128;
  StartServer(options);
  BlockingClient client = Connect();
  ASSERT_TRUE(client.Send(std::string(4096, 'x')).ok());  // no newline
  auto err = client.ReadLine();
  ASSERT_TRUE(err.ok()) << err.status().ToString();
  EXPECT_EQ(err.value().rfind("ERR ", 0), 0u) << err.value();
  EXPECT_NE(err.value().find("line exceeds"), std::string::npos)
      << err.value();
  // Server closes after the error line.
  auto eof = client.ReadLine();
  EXPECT_FALSE(eof.ok());
  EXPECT_TRUE(WaitFor([this] { return server_->Stats().evicted_oversize > 0; }));
}

TEST_F(NetTest, SlowClientIsEvictedWhenItsBacklogPassesTheCap) {
  TcpServerOptions options;
  options.write_buffer_cap = 64 * 1024;
  options.send_buffer_bytes = 4096;
  StartServer(options);
  BlockingClient client = Connect();
  // ~4k pipelined full-graph kNN answers (~64 entries each) make megabytes
  // of output; this client never reads, so the server-side backlog blows
  // through the 64 KiB cap and the connection is closed as slow.
  std::string burst;
  for (int i = 0; i < 4000; ++i) burst += "KNN 0 64\n";
  ASSERT_TRUE(client.Send(burst).ok());
  EXPECT_TRUE(WaitFor([this] { return server_->Stats().evicted_slow > 0; }))
      << "slow client was never evicted";
}

TEST_F(NetTest, IdleClientIsEvictedAfterTheTimeout) {
  TcpServerOptions options;
  options.idle_timeout = 50ms;
  options.poll_interval = 10ms;
  StartServer(options);
  BlockingClient client = Connect();
  // Send nothing: the sweep must close us. ReadLine surfaces the EOF.
  auto eof = client.ReadLine();
  EXPECT_FALSE(eof.ok());
  EXPECT_TRUE(WaitFor([this] { return server_->Stats().evicted_idle > 0; }));
  EXPECT_EQ(server_->active_connections().load(), 0u);
}

TEST_F(NetTest, ConnectionCapRefusesTheOverflowClient) {
  TcpServerOptions options;
  options.max_connections = 1;
  StartServer(options);
  BlockingClient first = Connect();
  ASSERT_TRUE(first.Send("QUERY 0 1\n").ok());
  ASSERT_TRUE(first.ReadLine().ok());  // the slot is definitely taken

  BlockingClient second = Connect();  // backlog accepts, server refuses
  auto eof = second.ReadLine();
  EXPECT_FALSE(eof.ok()) << "overflow connection must be closed unserved";
  EXPECT_TRUE(WaitFor([this] { return server_->Stats().refused > 0; }));

  // The admitted client keeps working.
  ASSERT_TRUE(first.Send("QUERY 0 2\n").ok());
  EXPECT_TRUE(first.ReadLine().ok());
}

TEST_F(NetTest, StatsOverTheSocketReportsCacheAndConnections) {
  serve::ResultCache cache;
  TcpServerOptions options;
  options.loop.cache = &cache;
  StartServer(options);
  BlockingClient client = Connect();
  ASSERT_TRUE(client.Send("QUERY 0 5\nSTATS\n").ok());
  ASSERT_TRUE(client.ReadLine().ok());
  auto stats = client.ReadLine();
  ASSERT_TRUE(stats.ok());
  const std::string& line = stats.value();
  EXPECT_EQ(line.rfind("STATS {", 0), 0u) << line;
  EXPECT_NE(line.find("\"cache\": {"), std::string::npos) << line;
  EXPECT_NE(line.find("\"active_connections\": 1"), std::string::npos)
      << line;
}

TEST_F(NetTest, CacheHitsServeAcrossConnections) {
  serve::ResultCache cache;
  TcpServerOptions options;
  options.loop.cache = &cache;
  StartServer(options);
  {
    BlockingClient warm = Connect();
    ASSERT_TRUE(warm.Send("QUERY 0 5\n").ok());
    auto miss = warm.ReadLine();
    ASSERT_TRUE(miss.ok());
    EXPECT_NE(miss.value().find("cached=0"), std::string::npos)
        << miss.value();
  }
  BlockingClient hot = Connect();
  ASSERT_TRUE(hot.Send("QUERY 0 5\n").ok());
  auto hit = hot.ReadLine();
  ASSERT_TRUE(hit.ok());
  EXPECT_NE(hit.value().find("cached=1"), std::string::npos) << hit.value();
  EXPECT_GE(cache.Stats().hits, 1u);
}

TEST_F(NetTest, GracefulDrainFlushesBufferedAnswers) {
  StartServer();
  BlockingClient client = Connect();
  std::string burst;
  for (int i = 0; i < 16; ++i) burst += "QUERY 0 " + std::to_string(i) + "\n";
  ASSERT_TRUE(client.Send(burst).ok());
  // Make sure the reactor has taken the requests before the drain starts.
  ASSERT_TRUE(WaitFor([this] { return server_->Stats().lines >= 16; }));
  server_->Shutdown();

  size_t answered = 0;
  for (;;) {
    auto line = client.ReadLine();
    if (!line.ok()) break;  // EOF once the drain finished
    EXPECT_EQ(line.value().rfind("DIST ", 0), 0u) << line.value();
    ++answered;
  }
  EXPECT_EQ(answered, 16u) << "drain must flush every buffered answer";
  serve_thread_.join();
  EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  EXPECT_EQ(server_->active_connections().load(), 0u);
}

TEST_F(NetTest, ExternalStopFlagDrainsTheReactorToo) {
  // rne_server wires its signal flag through ServerLoopOptions::stop; the
  // reactor must honor it exactly like Shutdown().
  std::atomic<bool> stop{false};
  TcpServerOptions options;
  options.loop.stop = &stop;
  options.poll_interval = 10ms;
  StartServer(options);
  BlockingClient client = Connect();
  ASSERT_TRUE(client.Send("QUERY 0 3\n").ok());
  ASSERT_TRUE(client.ReadLine().ok());
  stop.store(true);
  serve_thread_.join();
  EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
}

}  // namespace
}  // namespace rne::net
