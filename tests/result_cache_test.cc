// ResultCache / CachedEngine tests: per-shard LRU eviction order, key-space
// separation between distance and kNN entries, concurrent hit/miss safety
// (run under TSan in CI), generation-bump invalidation, and the hot-swap
// contract — after a ModelManager publish a RELOAD can never serve a stale
// cached distance, pinned here by poisoning the cache and watching the swap
// flush it.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/rne.h"
#include "graph/generators.h"
#include "serve/model_manager.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "util/rng.h"

namespace rne::serve {
namespace {

Request Dist(VertexId s, VertexId t) {
  Request r;
  r.kind = RequestKind::kDistance;
  r.s = s;
  r.t = t;
  return r;
}

Request Knn(VertexId s, size_t k) {
  Request r;
  r.kind = RequestKind::kKnn;
  r.s = s;
  r.k = k;
  return r;
}

Response OkDistance(double d, const std::string& backend = "dijkstra") {
  Response resp;
  resp.status = Status::Ok();
  resp.distance = d;
  resp.backend = backend;
  resp.exact = true;
  return resp;
}

TEST(ResultCacheTest, LruEvictionOrderWithinOneShard) {
  ResultCacheOptions options;
  options.capacity = 3;
  options.num_shards = 1;  // one shard => the LRU order is global
  ResultCache cache(options);

  cache.Insert(Dist(0, 1), OkDistance(1.0));
  cache.Insert(Dist(0, 2), OkDistance(2.0));
  cache.Insert(Dist(0, 3), OkDistance(3.0));

  // Touch (0,1): it becomes most-recent, so (0,2) is now the LRU victim.
  Response out;
  ASSERT_TRUE(cache.Lookup(Dist(0, 1), &out));
  EXPECT_EQ(out.distance, 1.0);
  EXPECT_TRUE(out.cached);

  cache.Insert(Dist(0, 4), OkDistance(4.0));  // evicts (0,2)

  EXPECT_TRUE(cache.Lookup(Dist(0, 1), &out));
  EXPECT_FALSE(cache.Lookup(Dist(0, 2), &out)) << "LRU entry must be gone";
  EXPECT_TRUE(cache.Lookup(Dist(0, 3), &out));
  EXPECT_TRUE(cache.Lookup(Dist(0, 4), &out));

  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.capacity, 3u);
  EXPECT_EQ(stats.shards, 1u);
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCacheOptions options;
  options.capacity = 2;
  options.num_shards = 1;
  ResultCache cache(options);
  cache.Insert(Dist(1, 2), OkDistance(5.0));
  cache.Insert(Dist(1, 2), OkDistance(5.0));
  EXPECT_EQ(cache.Stats().entries, 1u);
  cache.Insert(Dist(3, 4), OkDistance(6.0));
  EXPECT_EQ(cache.Stats().evictions, 0u) << "re-insert must not double-count";
}

TEST(ResultCacheTest, DistanceAndKnnKeySpacesAreDisjoint) {
  ResultCache cache;
  // Same (s, numeric second field): t=7 for the distance, k=7 for the kNN.
  cache.Insert(Dist(3, 7), OkDistance(42.0));
  Response knn_resp;
  knn_resp.status = Status::Ok();
  knn_resp.knn = {{3, 0.0}, {4, 1.5}};
  knn_resp.backend = "dijkstra";
  knn_resp.exact = true;
  cache.Insert(Knn(3, 7), knn_resp);

  Response out;
  ASSERT_TRUE(cache.Lookup(Dist(3, 7), &out));
  EXPECT_EQ(out.distance, 42.0);
  EXPECT_TRUE(out.knn.empty());

  ASSERT_TRUE(cache.Lookup(Knn(3, 7), &out));
  ASSERT_EQ(out.knn.size(), 2u);
  EXPECT_EQ(out.knn[0].first, 3u);
  EXPECT_EQ(out.knn[1].second, 1.5);
  EXPECT_EQ(out.backend, "dijkstra");
  EXPECT_TRUE(out.exact);
  EXPECT_TRUE(out.cached);
}

TEST(ResultCacheTest, FailedAndFallbackResponsesAreNotCached) {
  ResultCache cache;
  Response failed;
  failed.status = Status::DeadlineExceeded("late");
  cache.Insert(Dist(0, 1), failed);

  Response fallback = OkDistance(9.0);
  fallback.fell_back = true;
  cache.Insert(Dist(0, 2), fallback);

  Response out;
  EXPECT_FALSE(cache.Lookup(Dist(0, 1), &out));
  EXPECT_FALSE(cache.Lookup(Dist(0, 2), &out));
  EXPECT_EQ(cache.Stats().insertions, 0u);

  // Opt-in flips the fallback policy (brownout-heavy deployments).
  ResultCacheOptions options;
  options.cache_fallback = true;
  ResultCache permissive(options);
  permissive.Insert(Dist(0, 2), fallback);
  EXPECT_TRUE(permissive.Lookup(Dist(0, 2), &out));
}

TEST(ResultCacheTest, InvalidateBumpsGenerationAndDropsEverything) {
  ResultCache cache;
  cache.Insert(Dist(0, 1), OkDistance(1.0));
  cache.Insert(Knn(0, 2), OkDistance(0.0));
  const uint64_t gen0 = cache.generation();

  cache.Invalidate();

  EXPECT_EQ(cache.generation(), gen0 + 1);
  Response out;
  EXPECT_FALSE(cache.Lookup(Dist(0, 1), &out));
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.invalidations, 1u);

  // The cache keeps working under the new generation.
  cache.Insert(Dist(0, 1), OkDistance(2.0));
  ASSERT_TRUE(cache.Lookup(Dist(0, 1), &out));
  EXPECT_EQ(out.distance, 2.0);
}

TEST(ResultCacheTest, StatsJsonHasTheServingFields) {
  ResultCache cache;
  cache.Insert(Dist(0, 1), OkDistance(1.0));
  Response out;
  ASSERT_TRUE(cache.Lookup(Dist(0, 1), &out));
  EXPECT_FALSE(cache.Lookup(Dist(0, 2), &out));
  const std::string json = cache.Stats().ToJson();
  for (const char* key :
       {"\"hits\": 1", "\"misses\": 1", "\"insertions\": 1", "\"evictions\"",
        "\"invalidations\"", "\"generation\"", "\"entries\"", "\"capacity\"",
        "\"shards\"", "\"hit_rate\": 0.5000"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(ResultCacheTest, ConcurrentHitsAndMissesStayConsistent) {
  // Hammer a small cache from several threads; every hit's payload must
  // match the value function of its key. TSan (CI) checks the locking.
  ResultCacheOptions options;
  options.capacity = 256;
  options.num_shards = 4;
  ResultCache cache(options);
  const auto value_of = [](VertexId s, VertexId t) {
    return static_cast<double>(s) * 1e6 + static_cast<double>(t);
  };

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(1234 + static_cast<uint64_t>(w));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto s = static_cast<VertexId>(rng.UniformIndex(64));
        const auto t = static_cast<VertexId>(rng.UniformIndex(64));
        Response out;
        if (cache.Lookup(Dist(s, t), &out)) {
          if (out.distance != value_of(s, t) || !out.cached) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          cache.Insert(Dist(s, t), OkDistance(value_of(s, t)));
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(mismatches.load(), 0u);
  const CacheStats stats = cache.Stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.entries, stats.capacity);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

class CachedEngineTest : public ::testing::Test {
 protected:
  CachedEngineTest() : graph_(MakeGraph()), engine_(MakeOptions()) {
    BackendContext ctx;
    ctx.graph = &graph_;
    engine_.AddBackend("dijkstra", ctx);
    EXPECT_TRUE(engine_.WaitUntilLoaded().ok());
  }

  static Graph MakeGraph() {
    RoadNetworkConfig cfg;
    cfg.rows = 6;
    cfg.cols = 6;
    cfg.seed = 11;
    return MakeRoadNetwork(cfg);
  }

  static EngineOptions MakeOptions() {
    EngineOptions options;
    options.num_threads = 2;
    return options;
  }

  Graph graph_;
  QueryEngine engine_;
};

TEST_F(CachedEngineTest, SecondPassIsServedFromTheCache) {
  ResultCache cache;
  CachedEngine cached(&engine_, &cache);
  const std::vector<Request> batch = {Dist(0, 5), Dist(1, 7), Knn(2, 3)};

  std::vector<Response> first;
  ASSERT_TRUE(cached.QueryBatch(batch, &first).ok());
  std::vector<Response> second;
  ASSERT_TRUE(cached.QueryBatch(batch, &second).ok());

  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_FALSE(first[i].cached) << i;
    EXPECT_TRUE(second[i].cached) << i;
    EXPECT_EQ(first[i].distance, second[i].distance) << i;
    EXPECT_EQ(first[i].knn, second[i].knn) << i;
    EXPECT_EQ(first[i].backend, second[i].backend) << i;
    EXPECT_EQ(first[i].exact, second[i].exact) << i;
  }
  EXPECT_EQ(cache.Stats().hits, batch.size());
}

TEST_F(CachedEngineTest, NullCacheIsAPassthrough) {
  CachedEngine cached(&engine_, nullptr);
  std::vector<Response> out;
  const std::vector<Request> batch = {Dist(0, 5)};
  ASSERT_TRUE(cached.QueryBatch(batch, &out).ok());
  ASSERT_TRUE(cached.QueryBatch(batch, &out).ok());
  EXPECT_FALSE(out[0].cached);
}

TEST_F(CachedEngineTest, ReloadNeverServesAStaleDistance) {
  // The hot-swap contract: once a ModelManager publishes a new snapshot,
  // previously cached answers are unreachable. Poison the cache with a
  // deliberately wrong distance, fire a publish, and check the next answer
  // comes from the engine, not the poisoned entry.
  ResultCache cache;
  CachedEngine cached(&engine_, &cache);
  ModelManager manager;
  manager.AddPublishListener([&cache](uint64_t) { cache.Invalidate(); });

  const Request probe = Dist(0, 5);
  std::vector<Response> out;
  ASSERT_TRUE(cached.QueryBatch({&probe, 1}, &out).ok());
  const double truth = out[0].distance;

  // Poison: pretend an older model had answered something else.
  cache.Invalidate();
  cache.Insert(probe, OkDistance(truth + 1000.0, "stale-model"));
  ASSERT_TRUE(cached.QueryBatch({&probe, 1}, &out).ok());
  ASSERT_TRUE(out[0].cached);
  ASSERT_EQ(out[0].distance, truth + 1000.0) << "poison must be in place";

  // A successful Load() publishes and must flush the poisoned entry. The
  // model file itself is irrelevant to the cache seam; build the cheapest
  // valid one.
  RneConfig config;
  config.dim = 8;
  config.hierarchical = false;
  config.fine_tune = false;
  config.train.vertex_samples = 2000;
  config.train.vertex_epochs = 1;
  const Rne model = Rne::Build(graph_, config);
  const std::string path =
      (std::filesystem::temp_directory_path() / "result_cache_reload.rne")
          .string();
  ASSERT_TRUE(model.Save(path).ok());
  ASSERT_TRUE(manager.Load(path).ok());
  std::filesystem::remove(path);

  ASSERT_TRUE(cached.QueryBatch({&probe, 1}, &out).ok());
  EXPECT_FALSE(out[0].cached) << "post-swap answer must bypass the cache";
  EXPECT_EQ(out[0].distance, truth);
  EXPECT_EQ(out[0].backend, "dijkstra");
  EXPECT_GE(cache.Stats().invalidations, 2u);
}

}  // namespace
}  // namespace rne::serve
