// Tests for the baseline distance methods: CH/ACH, H2H, Distance Oracle,
// ALT/LT, geo estimators, KD-tree, and the network-expansion kNN. Exact
// methods are verified against Dijkstra over parameterized seeds; approximate
// methods against their error contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "algo/dijkstra.h"
#include "algo/distance_sampler.h"
#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/distance_oracle.h"
#include "baselines/geo.h"
#include "baselines/h2h.h"
#include "baselines/kd_tree.h"
#include "baselines/network_knn.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace rne {
namespace {

Graph TestNetwork(uint64_t seed, size_t side = 12) {
  RoadNetworkConfig cfg;
  cfg.rows = side;
  cfg.cols = side;
  cfg.seed = seed;
  return MakeRoadNetwork(cfg);
}

class ExactMethodSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactMethodSweep, ChMatchesDijkstra) {
  const Graph g = TestNetwork(GetParam());
  ContractionHierarchy ch(g);
  DijkstraSearch dij(g);
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_NEAR(ch.Query(s, t), dij.Distance(s, t), 1e-6)
        << "s=" << s << " t=" << t;
  }
}

TEST_P(ExactMethodSweep, H2hMatchesDijkstra) {
  const Graph g = TestNetwork(GetParam() + 50);
  H2HIndex h2h(g);
  DijkstraSearch dij(g);
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_NEAR(h2h.Query(s, t), dij.Distance(s, t), 1e-6)
        << "s=" << s << " t=" << t;
  }
}

TEST_P(ExactMethodSweep, AltAStarMatchesDijkstra) {
  const Graph g = TestNetwork(GetParam() + 100);
  Rng rng(GetParam());
  AltIndex alt(g, 8, rng);
  DijkstraSearch dij(g);
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_NEAR(alt.ExactDistance(s, t), dij.Distance(s, t), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactMethodSweep, ::testing::Values(1, 2, 3));

// --------------------------------------------------------------------- CH

TEST(ChTest, SelfAndAdjacent) {
  const Graph g = TestNetwork(4);
  ContractionHierarchy ch(g);
  EXPECT_DOUBLE_EQ(ch.Query(7, 7), 0.0);
  const Edge e = g.Neighbors(0)[0];
  DijkstraSearch dij(g);
  EXPECT_NEAR(ch.Query(0, e.to), dij.Distance(0, e.to), 1e-9);
}

TEST(ChTest, DisconnectedReturnsInfinity) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(2, 3, 1.0);
  ContractionHierarchy ch(b.Build());
  EXPECT_EQ(ch.Query(0, 3), kInfDistance);
}

TEST(ChTest, ReportsIndexAndShortcuts) {
  const Graph g = TestNetwork(5);
  ContractionHierarchy ch(g);
  EXPECT_GT(ch.IndexBytes(), 0u);
  EXPECT_TRUE(ch.IsExact());
}

TEST(AchTest, BoundedOverestimate) {
  const Graph g = TestNetwork(6);
  ChOptions opt;
  opt.epsilon = 0.1;
  ContractionHierarchy ach(g, opt);
  EXPECT_FALSE(ach.IsExact());
  DijkstraSearch dij(g);
  Rng rng(6);
  double max_rel = 0.0;
  for (int i = 0; i < 100; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    if (s == t) continue;
    const double exact = dij.Distance(s, t);
    const double approx = ach.Query(s, t);
    // ACH never underestimates (it only removes shortcuts).
    EXPECT_GE(approx, exact - 1e-6);
    max_rel = std::max(max_rel, (approx - exact) / exact);
  }
  // Error compounds along the hierarchy but stays moderate at eps = 0.1.
  EXPECT_LT(max_rel, 0.5);
}

TEST(ChTest, PathUnpacksToValidShortestPath) {
  const Graph g = TestNetwork(30);
  ContractionHierarchy ch(g);
  DijkstraSearch dij(g);
  Rng rng(30);
  for (int i = 0; i < 30; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto path = ch.Path(s, t);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    double length = 0.0;
    for (size_t j = 1; j < path.size(); ++j) {
      const double w = g.EdgeWeight(path[j - 1], path[j]);
      ASSERT_NE(w, kInfDistance)
          << "unpacked path uses non-edge " << path[j - 1] << "-" << path[j];
      length += w;
    }
    EXPECT_NEAR(length, dij.Distance(s, t), 1e-6);
  }
}

TEST(ChTest, PathSelfAndDisconnected) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(2, 3, 1.0);
  ContractionHierarchy ch(b.Build());
  EXPECT_EQ(ch.Path(0, 0), (std::vector<VertexId>{0}));
  EXPECT_TRUE(ch.Path(0, 3).empty());
}

TEST(AchTest, PathIsValidAndRealizesQueryDistance) {
  const Graph g = TestNetwork(31);
  ChOptions opt;
  opt.epsilon = 0.15;
  ContractionHierarchy ach(g, opt);
  Rng rng(31);
  for (int i = 0; i < 20; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    if (s == t) continue;
    const auto path = ach.Path(s, t);
    ASSERT_FALSE(path.empty());
    double length = 0.0;
    for (size_t j = 1; j < path.size(); ++j) {
      const double w = g.EdgeWeight(path[j - 1], path[j]);
      ASSERT_NE(w, kInfDistance);
      length += w;
    }
    EXPECT_NEAR(length, ach.Query(s, t), 1e-6)
        << "ACH path must realize the reported (approximate) distance";
  }
}

TEST(AchTest, FewerShortcutsThanExactCh) {
  const Graph g = TestNetwork(7);
  ContractionHierarchy ch(g);
  ChOptions opt;
  opt.epsilon = 0.2;
  ContractionHierarchy ach(g, opt);
  EXPECT_LE(ach.num_shortcuts(), ch.num_shortcuts());
}

// -------------------------------------------------------------------- H2H

TEST(H2hTest, LcaProperties) {
  const Graph g = TestNetwork(8, 8);
  H2HIndex h2h(g);
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const auto u = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_EQ(h2h.Lca(u, u), u);
  }
}

TEST(H2hTest, ReportsTreeStats) {
  const Graph g = TestNetwork(9, 8);
  H2HIndex h2h(g);
  EXPECT_GT(h2h.max_bag_size(), 1u);
  EXPECT_GT(h2h.tree_height(), 1u);
  EXPECT_GT(h2h.IndexBytes(), g.NumVertices() * sizeof(double));
}

// -------------------------------------------------------------------- ALT

TEST(AltTest, BoundsBracketExactDistance) {
  const Graph g = TestNetwork(10);
  Rng rng(10);
  AltIndex alt(g, 12, rng);
  DijkstraSearch dij(g);
  for (int i = 0; i < 80; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const double exact = dij.Distance(s, t);
    EXPECT_LE(alt.LowerBound(s, t), exact + 1e-6);
    EXPECT_GE(alt.UpperBound(s, t), exact - 1e-6);
    const double est = alt.Query(s, t);
    EXPECT_GE(est, alt.LowerBound(s, t) - 1e-6);
    EXPECT_LE(est, alt.UpperBound(s, t) + 1e-6);
  }
}

TEST(AltTest, LandmarkQueriesAreExact) {
  const Graph g = TestNetwork(11);
  Rng rng(11);
  AltIndex alt(g, 6, rng);
  DijkstraSearch dij(g);
  // For (landmark, v) pairs the upper and lower bound coincide.
  for (const VertexId lm : alt.landmarks()) {
    const VertexId v = 17;
    EXPECT_NEAR(alt.Query(lm, v), dij.Distance(lm, v), 1e-6);
  }
}

TEST(AltTest, IndexSizeIsLandmarkMatrix) {
  const Graph g = TestNetwork(12, 8);
  Rng rng(12);
  AltIndex alt(g, 4, rng);
  EXPECT_EQ(alt.IndexBytes(), 4 * g.NumVertices() * sizeof(double));
}

// -------------------------------------------------------- Distance Oracle

TEST(DistanceOracleTest, ErrorWithinToleranceEnvelope) {
  const Graph g = TestNetwork(13);
  DistanceOracleOptions opt;
  opt.epsilon = 0.25;
  DistanceOracle oracle(g, opt);
  DijkstraSearch dij(g);
  DistanceSampler sampler(g);
  Rng rng(13);
  const auto val = sampler.RandomPairs(300, rng);
  double err_sum = 0.0;
  for (const auto& s : val) {
    err_sum += std::abs(oracle.Query(s.s, s.t) - s.dist) / s.dist;
  }
  // Geometric well-separation plus representative distances keeps the mean
  // error around epsilon (the paper's DO shows ~5% at eps=0.5).
  EXPECT_LT(err_sum / val.size(), opt.epsilon);
}

TEST(DistanceOracleTest, SelfDistanceZeroAndSymmetryOfCoverage) {
  const Graph g = TestNetwork(14, 8);
  DistanceOracle oracle(g);
  EXPECT_DOUBLE_EQ(oracle.Query(5, 5), 0.0);
  // Same block pair serves both orientations.
  EXPECT_DOUBLE_EQ(oracle.Query(3, 40), oracle.Query(40, 3));
}

TEST(DistanceOracleTest, TighterEpsilonMorePairs) {
  const Graph g = TestNetwork(15, 8);
  DistanceOracleOptions loose;
  loose.epsilon = 1.0;
  DistanceOracleOptions tight;
  tight.epsilon = 0.25;
  const DistanceOracle a(g, loose);
  const DistanceOracle b(g, tight);
  EXPECT_GT(b.num_pairs(), a.num_pairs());
  EXPECT_GT(b.IndexBytes(), a.IndexBytes());
}

// -------------------------------------------------------------------- geo

TEST(GeoTest, EuclideanNeverOverestimatesOnRoadNetworks) {
  const Graph g = TestNetwork(16);
  GeoEstimator euclid(g, GeoMetric::kEuclidean);
  DijkstraSearch dij(g);
  Rng rng(16);
  for (int i = 0; i < 50; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_LE(euclid.Query(s, t), dij.Distance(s, t) + 1e-6);
  }
}

TEST(GeoTest, CalibrationReducesError) {
  const Graph g = TestNetwork(17);
  DistanceSampler sampler(g);
  Rng rng(17);
  const auto samples = sampler.RandomPairs(400, rng);
  GeoEstimator raw(g, GeoMetric::kManhattan);
  GeoEstimator calibrated(g, GeoMetric::kManhattan);
  calibrated.Calibrate(samples);
  auto mean_err = [&](GeoEstimator& est) {
    double sum = 0.0;
    for (const auto& s : samples) {
      sum += std::abs(est.Query(s.s, s.t) - s.dist) / s.dist;
    }
    return sum / samples.size();
  };
  EXPECT_LT(mean_err(calibrated), mean_err(raw) + 1e-9);
  EXPECT_NE(calibrated.factor(), 1.0);
}

// ----------------------------------------------------------------- KD-tree

TEST(KdTreeTest, RangeMatchesBruteForce) {
  const Graph g = TestNetwork(18);
  const KdTree tree(g, GeoMetric::kEuclidean);
  Rng rng(18);
  for (int i = 0; i < 10; ++i) {
    const auto src = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const double tau = rng.UniformReal(100.0, 600.0);
    const auto got = tree.Range(src, tau);
    const std::set<VertexId> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set.size(), got.size());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_EQ(got_set.count(v) == 1, EuclideanDistance(g, src, v) <= tau);
    }
  }
}

TEST(KdTreeTest, KnnMatchesBruteForce) {
  const Graph g = TestNetwork(19);
  for (const GeoMetric metric :
       {GeoMetric::kEuclidean, GeoMetric::kManhattan}) {
    const KdTree tree(g, metric);
    Rng rng(19);
    for (int i = 0; i < 10; ++i) {
      const auto src =
          static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
      const auto got = tree.Knn(src, 8);
      ASSERT_EQ(got.size(), 8u);
      std::vector<double> brute;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        brute.push_back(metric == GeoMetric::kEuclidean
                            ? EuclideanDistance(g, src, v)
                            : ManhattanDistance(g, src, v));
      }
      std::sort(brute.begin(), brute.end());
      for (size_t k = 0; k < 8; ++k) {
        EXPECT_NEAR(got[k].second, brute[k], 1e-9);
      }
    }
  }
}

TEST(KdTreeTest, SubsetTargets) {
  const Graph g = TestNetwork(20, 8);
  std::vector<VertexId> targets = {1, 5, 9, 13};
  const KdTree tree(g, GeoMetric::kEuclidean, targets);
  const auto knn = tree.Knn(0, 10);
  EXPECT_EQ(knn.size(), 4u);
  for (const auto& [v, d] : knn) {
    EXPECT_TRUE(std::find(targets.begin(), targets.end(), v) != targets.end());
  }
}

// ------------------------------------------------------------- NetworkKnn

TEST(NetworkKnnTest, KnnMatchesBruteForceNetworkDistances) {
  const Graph g = TestNetwork(21, 8);
  NetworkKnn knn(g);
  DijkstraSearch dij(g);
  Rng rng(21);
  for (int i = 0; i < 10; ++i) {
    const auto src = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto got = knn.Knn(src, 6);
    ASSERT_EQ(got.size(), 6u);
    const auto& truth = dij.AllDistances(src);
    std::vector<double> sorted(truth.begin(), truth.end());
    std::sort(sorted.begin(), sorted.end());
    for (size_t k = 0; k < 6; ++k) {
      EXPECT_NEAR(got[k].second, sorted[k], 1e-9);
    }
  }
}

TEST(NetworkKnnTest, RangeAndTargetFiltering) {
  const Graph g = TestNetwork(22, 8);
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < g.NumVertices(); v += 3) targets.push_back(v);
  NetworkKnn knn(g, targets);
  DijkstraSearch dij(g);
  const double tau = 500.0;
  const auto got = knn.Range(7, tau);
  const std::set<VertexId> got_set(got.begin(), got.end());
  const auto& truth = dij.AllDistances(7);
  for (const VertexId t : targets) {
    EXPECT_EQ(got_set.count(t) == 1, truth[t] <= tau);
  }
  for (const VertexId v : got) {
    EXPECT_EQ(v % 3, 0u) << "non-target in range result";
  }
}

}  // namespace
}  // namespace rne
