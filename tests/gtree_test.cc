// Tests for the G-tree index: exact distances against Dijkstra across
// parameterized shapes, kNN/Range against brute force, target filtering,
// and structural invariants (border coverage).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "algo/dijkstra.h"
#include "baselines/gtree.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace rne {
namespace {

Graph TestNetwork(uint64_t seed, size_t side = 12) {
  RoadNetworkConfig cfg;
  cfg.rows = side;
  cfg.cols = side;
  cfg.seed = seed;
  return MakeRoadNetwork(cfg);
}

class GTreeSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t, size_t>> {};

TEST_P(GTreeSweep, DistanceMatchesDijkstra) {
  const auto [seed, fanout, leaf_size] = GetParam();
  const Graph g = TestNetwork(seed);
  GTreeOptions opt;
  opt.fanout = fanout;
  opt.leaf_size = leaf_size;
  GTree gtree(g, opt);
  DijkstraSearch dij(g);
  Rng rng(seed);
  for (int i = 0; i < 80; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_NEAR(gtree.Distance(s, t), dij.Distance(s, t), 1e-6)
        << "s=" << s << " t=" << t << " fanout=" << fanout
        << " leaf=" << leaf_size;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GTreeSweep,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{2}),
                       ::testing::Values(2, 4),
                       ::testing::Values(16, 48)));

TEST(GTreeTest, SameLeafQueriesExact) {
  const Graph g = TestNetwork(3, 8);
  GTreeOptions opt;
  opt.leaf_size = 32;  // several vertices per leaf
  GTree gtree(g, opt);
  DijkstraSearch dij(g);
  const auto& hier = gtree.hierarchy();
  // Pick pairs inside one leaf.
  for (uint32_t id = 0; id < hier.num_nodes(); ++id) {
    const auto& node = hier.node(id);
    if (!node.IsLeaf() || node.vertices.size() < 2) continue;
    const VertexId s = node.vertices.front();
    const VertexId t = node.vertices.back();
    EXPECT_NEAR(gtree.Distance(s, t), dij.Distance(s, t), 1e-6);
    break;
  }
}

TEST(GTreeTest, KnnMatchesBruteForce) {
  const Graph g = TestNetwork(4, 10);
  GTree gtree(g);
  DijkstraSearch dij(g);
  Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto got = gtree.Knn(s, 7);
    ASSERT_EQ(got.size(), 7u);
    const auto& truth = dij.AllDistances(s);
    std::vector<double> sorted(truth.begin(), truth.end());
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].second, sorted[i], 1e-6) << "rank " << i;
    }
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(got[i - 1].second, got[i].second);
    }
  }
}

TEST(GTreeTest, KnnWithTargetSubset) {
  const Graph g = TestNetwork(5, 10);
  GTree gtree(g);
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < g.NumVertices(); v += 7) targets.push_back(v);
  gtree.SetTargets(targets);

  DijkstraSearch dij(g);
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto got = gtree.Knn(s, 5);
    ASSERT_EQ(got.size(), 5u);
    const auto& truth = dij.AllDistances(s);
    std::vector<double> target_dists;
    for (const VertexId t : targets) target_dists.push_back(truth[t]);
    std::sort(target_dists.begin(), target_dists.end());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].second, target_dists[i], 1e-6);
      EXPECT_EQ(got[i].first % 7, 0u) << "non-target returned";
    }
  }
}

TEST(GTreeTest, RangeMatchesBruteForce) {
  const Graph g = TestNetwork(6, 10);
  GTree gtree(g);
  DijkstraSearch dij(g);
  const double tau = 600.0;
  const VertexId s = 17;
  const auto got = gtree.Range(s, tau);
  const std::set<VertexId> got_set(got.begin(), got.end());
  EXPECT_EQ(got_set.size(), got.size());
  const auto& truth = dij.AllDistances(s);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(got_set.count(v) == 1, truth[v] <= tau) << "v=" << v;
  }
}

TEST(GTreeTest, SelfQueryAndAdjacents) {
  const Graph g = TestNetwork(7, 8);
  GTree gtree(g);
  EXPECT_DOUBLE_EQ(gtree.Distance(5, 5), 0.0);
  const auto knn1 = gtree.Knn(5, 1);
  ASSERT_EQ(knn1.size(), 1u);
  EXPECT_EQ(knn1[0].first, 5u);
  EXPECT_DOUBLE_EQ(knn1[0].second, 0.0);
}

TEST(GTreeTest, SaveLoadRoundTrip) {
  const Graph g = TestNetwork(9, 10);
  GTree original(g);
  std::vector<VertexId> targets = {1, 8, 22, 47, 90};
  original.SetTargets(targets);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rne_gtree_test.bin").string();
  ASSERT_TRUE(original.Save(path).ok());
  auto loaded = GTree::Load(path, g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  GTree& copy = loaded.value();
  EXPECT_EQ(copy.num_borders(), original.num_borders());
  Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    EXPECT_EQ(copy.Distance(s, t), original.Distance(s, t));
  }
  const auto knn_a = original.Knn(5, 3);
  const auto knn_b = copy.Knn(5, 3);
  ASSERT_EQ(knn_a.size(), knn_b.size());
  for (size_t i = 0; i < knn_a.size(); ++i) {
    EXPECT_EQ(knn_a[i].second, knn_b[i].second);
  }
  std::filesystem::remove(path);
}

TEST(GTreeTest, LoadRejectsWrongGraph) {
  const Graph g = TestNetwork(10, 8);
  GTree tree(g);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rne_gtree_wrong.bin")
          .string();
  ASSERT_TRUE(tree.Save(path).ok());
  const Graph other = MakeGridNetwork(4, 4);
  EXPECT_FALSE(GTree::Load(path, other).ok());
  std::filesystem::remove(path);
}

TEST(GTreeTest, ReportsIndexSizeAndBorders) {
  const Graph g = TestNetwork(8, 10);
  GTree gtree(g);
  EXPECT_GT(gtree.IndexBytes(), 0u);
  EXPECT_GT(gtree.num_borders(), 0u);
  EXPECT_LT(gtree.num_borders(), g.NumVertices());
  EXPECT_TRUE(gtree.IsExact());
}

}  // namespace
}  // namespace rne
