// Contract tests: RNE_CHECK-guarded API misuse must abort loudly (the
// databases-style fail-fast discipline) rather than corrupt an index.
#include <gtest/gtest.h>

#include <utility>

#include "core/embedding.h"
#include "core/rne.h"
#include "core/spatial_grid.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"
#include "util/histogram.h"
#include "util/table_writer.h"

namespace rne {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, GraphBuilderRejectsNonPositiveWeight) {
  GraphBuilder b(2);
  EXPECT_DEATH(b.AddEdge(0, 1, 0.0), "positive");
  EXPECT_DEATH(b.AddEdge(0, 1, -1.0), "positive");
}

TEST(ContractDeathTest, GraphBuilderRejectsOutOfRangeVertex) {
  GraphBuilder b(2);
  EXPECT_DEATH(b.AddEdge(0, 5, 1.0), "RNE_CHECK");
  EXPECT_DEATH(b.SetCoord(9, {0, 0}), "RNE_CHECK");
}

TEST(ContractDeathTest, SubgraphRejectsDuplicateVertices) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  const Graph g = b.Build();
  EXPECT_DEATH(InducedSubgraph(g, {0, 0}), "duplicate");
}

TEST(ContractDeathTest, TableWriterRejectsRaggedRows) {
  TableWriter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "width");
}

TEST(ContractDeathTest, HistogramRejectsEmptyRange) {
  EXPECT_DEATH(Histogram(5.0, 5.0, 4), "RNE_CHECK");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "RNE_CHECK");
}

TEST(ContractDeathTest, StatusOrFromOkStatusAborts) {
  EXPECT_DEATH(StatusOr<int>(Status::Ok()), "OK status");
}

TEST(ContractDeathTest, StatusOrValueBeforeOkCheckAborts) {
  // Access-before-check: value() on an error StatusOr must abort with the
  // underlying status, not return an indeterminate T.
  StatusOr<int> failed(Status::NotFound("missing index file"));
  EXPECT_DEATH((void)failed.value(), "NOT_FOUND: missing index file");
  // Same contract through the rvalue overload (move-out path).
  EXPECT_DEATH(
      (void)std::move(StatusOr<int>(Status::Corruption("bad magic"))).value(),
      "CORRUPTION: bad magic");
}

TEST(ContractDeathTest, OneToManyRejectsSizeMismatch) {
  const Graph g = MakeGridNetwork(4, 4);
  RneConfig config;
  config.dim = 8;
  config.train.level_samples = 200;
  config.train.vertex_samples = 500;
  config.train.vertex_epochs = 1;
  config.train.finetune_rounds = 0;
  const Rne model = Rne::Build(g, config);
  std::vector<VertexId> targets = {0, 1, 2};
  std::vector<double> too_small(2);
  EXPECT_DEATH(model.QueryOneToMany(0, targets, too_small), "RNE_CHECK");
}

TEST(ContractDeathTest, PartitionRejectsMoreCutsThanVertices) {
  const Graph g = MakeGridNetwork(2, 2);
  PartitionOptions opt;
  opt.num_parts = 100;
  EXPECT_DEATH(PartitionGraph(g, opt), "more parts");
}

}  // namespace
}  // namespace rne
