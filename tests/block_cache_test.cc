// Unit tests for the bounded pread-backed BlockCache and the MmapFile RAII
// wrapper behind cold-storage serving: exact hit/miss/eviction accounting,
// overwrite-oldest eviction with pin-on-access semantics, Unavailable when
// every slot is pinned, 4-thread contention (run under TSan in CI), and the
// QuantizedRne kBlockCache load path staying bit-identical to heap answers.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/quantized.h"
#include "core/rne.h"
#include "graph/generators.h"
#include "util/block_cache.h"
#include "util/mmap_file.h"
#include "util/serialize.h"

namespace rne {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Deterministic content so any block can be validated from its offset.
uint8_t ByteAt(uint64_t offset) {
  return static_cast<uint8_t>((offset * 131 + 7) & 0xFF);
}

std::string WritePatternFile(const std::string& name, uint64_t size) {
  const std::string path = TempPath(name);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  for (uint64_t i = 0; i < size; ++i) {
    const char b = static_cast<char>(ByteAt(i));
    out.write(&b, 1);
  }
  return path;
}

BlockCache::Options SmallGeometry(uint64_t block_bytes, uint64_t blocks) {
  BlockCache::Options options;
  options.block_bytes = block_bytes;
  options.block_count = blocks;
  return options;
}

void ExpectBlockBytes(const BlockCache::Pin& pin, uint64_t block,
                      uint64_t block_bytes, uint64_t expected_size) {
  ASSERT_EQ(pin.bytes().size(), expected_size);
  for (uint64_t i = 0; i < expected_size; ++i) {
    ASSERT_EQ(pin.bytes()[i], ByteAt(block * block_bytes + i))
        << "block " << block << " byte " << i;
  }
}

TEST(BlockCacheTest, OpenMissingFileIsNotFound) {
  const auto cache =
      BlockCache::Open(TempPath("rne_bc_missing.bin"), SmallGeometry(64, 2));
  EXPECT_EQ(cache.status().code(), StatusCode::kNotFound);
}

TEST(BlockCacheTest, OpenRejectsZeroGeometry) {
  const std::string path = WritePatternFile("rne_bc_geom.bin", 16);
  EXPECT_EQ(BlockCache::Open(path, SmallGeometry(0, 2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BlockCache::Open(path, SmallGeometry(64, 0)).status().code(),
            StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(BlockCacheTest, AcquireServesCorrectBytesIncludingShortFinalBlock) {
  // 2.5 blocks: the final block is half-length and bytes() must say so.
  const std::string path = WritePatternFile("rne_bc_bytes.bin", 640);
  auto cache = BlockCache::Open(path, SmallGeometry(256, 4));
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_EQ(cache.value()->file_size(), 640u);
  EXPECT_EQ(cache.value()->block_bytes(), 256u);
  for (uint64_t block = 0; block < 3; ++block) {
    auto pin = cache.value()->Acquire(block);
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
    ExpectBlockBytes(pin.value(), block, 256, block == 2 ? 128 : 256);
  }
  // A block starting past end of file is Corruption, not a crash.
  EXPECT_EQ(cache.value()->Acquire(3).status().code(),
            StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(BlockCacheTest, HitAndMissCountersAreExact) {
  const std::string path = WritePatternFile("rne_bc_stats.bin", 4 * 64);
  auto cache = BlockCache::Open(path, SmallGeometry(64, 4));
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ(cache.value()->stats().hits, 0u);
  EXPECT_EQ(cache.value()->stats().misses, 0u);

  ASSERT_TRUE(cache.value()->Acquire(0).ok());  // miss
  ASSERT_TRUE(cache.value()->Acquire(0).ok());  // hit
  ASSERT_TRUE(cache.value()->Acquire(1).ok());  // miss
  ASSERT_TRUE(cache.value()->Acquire(0).ok());  // hit
  ASSERT_TRUE(cache.value()->Acquire(1).ok());  // hit

  const BlockCache::Stats stats = cache.value()->stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 0u);  // empty slots were still available

  // Read() pins each covered block exactly once per crossing: offsets
  // [32, 96) touch blocks 0 and 1, both resident — two more hits.
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(cache.value()->Read(32, buf.data(), buf.size()).ok());
  for (uint64_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], ByteAt(32 + i));
  }
  EXPECT_EQ(cache.value()->stats().hits, 5u);
  EXPECT_EQ(cache.value()->stats().misses, 2u);
  std::filesystem::remove(path);
}

TEST(BlockCacheTest, EvictionOverwritesOldestUnpinnedBlock) {
  const std::string path = WritePatternFile("rne_bc_evict.bin", 4 * 64);
  auto cache = BlockCache::Open(path, SmallGeometry(64, 2));
  ASSERT_TRUE(cache.ok());
  ASSERT_TRUE(cache.value()->Acquire(0).ok());  // load_seq 1
  ASSERT_TRUE(cache.value()->Acquire(1).ok());  // load_seq 2
  // Cache full; block 0 is the oldest load, so it is the victim.
  ASSERT_TRUE(cache.value()->Acquire(2).ok());
  EXPECT_EQ(cache.value()->stats().evictions, 1u);
  EXPECT_EQ(cache.value()->stats().misses, 3u);
  ASSERT_TRUE(cache.value()->Acquire(1).ok());  // still resident: hit
  EXPECT_EQ(cache.value()->stats().hits, 1u);
  // Block 0 was evicted: re-acquiring is a miss (evicting block 2, now the
  // oldest since block 1's hit did not refresh its load order).
  ASSERT_TRUE(cache.value()->Acquire(0).ok());
  EXPECT_EQ(cache.value()->stats().misses, 4u);
  EXPECT_EQ(cache.value()->stats().evictions, 2u);
  std::filesystem::remove(path);
}

TEST(BlockCacheTest, PinnedBlocksAreNeverEvicted) {
  const std::string path = WritePatternFile("rne_bc_pin.bin", 4 * 64);
  auto cache = BlockCache::Open(path, SmallGeometry(64, 2));
  ASSERT_TRUE(cache.ok());
  auto pinned = cache.value()->Acquire(0);  // held across the evictions below
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(cache.value()->Acquire(1).ok());  // dropped immediately
  // Block 1 is older than nothing else evictable — the pinned block 0 must
  // be skipped even though it has the oldest load_seq.
  ASSERT_TRUE(cache.value()->Acquire(2).ok());
  ASSERT_TRUE(cache.value()->Acquire(0).ok());  // hit: still resident
  EXPECT_EQ(cache.value()->stats().hits, 1u);
  // The pinned bytes stayed intact through both fills of the other slot.
  ExpectBlockBytes(pinned.value(), 0, 64, 64);
  std::filesystem::remove(path);
}

TEST(BlockCacheTest, AllSlotsPinnedIsUnavailable) {
  const std::string path = WritePatternFile("rne_bc_full.bin", 4 * 64);
  auto cache = BlockCache::Open(path, SmallGeometry(64, 2));
  ASSERT_TRUE(cache.ok());
  auto pin0 = cache.value()->Acquire(0);
  auto pin1 = cache.value()->Acquire(1);
  ASSERT_TRUE(pin0.ok());
  ASSERT_TRUE(pin1.ok());
  EXPECT_EQ(cache.value()->Acquire(2).status().code(),
            StatusCode::kUnavailable);
  // Releasing one pin unblocks the next acquire.
  pin1 = BlockCache::Pin();
  EXPECT_TRUE(cache.value()->Acquire(2).ok());
  std::filesystem::remove(path);
}

TEST(BlockCacheTest, MovedPinKeepsBlockPinned) {
  const std::string path = WritePatternFile("rne_bc_move.bin", 4 * 64);
  auto cache = BlockCache::Open(path, SmallGeometry(64, 1));
  ASSERT_TRUE(cache.ok());
  auto pin = cache.value()->Acquire(0);
  ASSERT_TRUE(pin.ok());
  BlockCache::Pin moved = std::move(pin).value();
  // The single slot is still pinned through the moved-to handle.
  EXPECT_EQ(cache.value()->Acquire(1).status().code(),
            StatusCode::kUnavailable);
  ExpectBlockBytes(moved, 0, 64, 64);
  moved = BlockCache::Pin();  // move-assign releases the old pin
  EXPECT_TRUE(cache.value()->Acquire(1).ok());
  std::filesystem::remove(path);
}

TEST(BlockCacheTest, ReadSpansBlocksAndRejectsPastEof) {
  const std::string path = WritePatternFile("rne_bc_read.bin", 200);
  auto cache = BlockCache::Open(path, SmallGeometry(64, 2));
  ASSERT_TRUE(cache.ok());
  // A read spanning all four (partial) blocks through a 2-slot cache.
  std::vector<uint8_t> buf(200);
  ASSERT_TRUE(cache.value()->Read(0, buf.data(), buf.size()).ok());
  for (uint64_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], ByteAt(i)) << i;
  }
  EXPECT_EQ(cache.value()->Read(150, buf.data(), 51).code(),
            StatusCode::kCorruption);
  EXPECT_EQ(cache.value()->Read(201, buf.data(), 0).code(),
            StatusCode::kCorruption);
  EXPECT_TRUE(cache.value()->Read(200, buf.data(), 0).ok());
  std::filesystem::remove(path);
}

// Four threads hammer a cache with fewer slots than hot blocks; every pin
// must observe fully loaded, correct bytes (no torn fills), and the exact
// counters must balance: each successful acquire is one hit or one miss.
// This test is the TSan target for the cache's condvar/pin protocol.
TEST(BlockCacheTest, FourThreadContentionServesConsistentBytes) {
  constexpr uint64_t kBlockBytes = 256;
  constexpr uint64_t kFileBlocks = 16;
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 800;
  const std::string path =
      WritePatternFile("rne_bc_mt.bin", kFileBlocks * kBlockBytes);
  auto cache = BlockCache::Open(path, SmallGeometry(kBlockBytes, 4));
  ASSERT_TRUE(cache.ok());

  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> unavailable{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Deterministic per-thread stream biased toward a hot set so hits,
        // misses and evictions all occur.
        const uint64_t mix =
            (static_cast<uint64_t>(t) * 2654435761u + i * 40503u) >> 4;
        const uint64_t block = (i % 3 == 0) ? mix % kFileBlocks : mix % 3;
        auto pin = cache.value()->Acquire(block);
        if (!pin.ok()) {
          // With 4 slots and 4 threads each holding at most one pin, a
          // slot is always evictable.
          unavailable.fetch_add(1);
          continue;
        }
        const std::span<const uint8_t> bytes = pin.value().bytes();
        if (bytes.size() != kBlockBytes ||
            bytes[0] != ByteAt(block * kBlockBytes) ||
            bytes[kBlockBytes - 1] !=
                ByteAt(block * kBlockBytes + kBlockBytes - 1)) {
          failed.store(true);
        }
        served.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_FALSE(failed.load()) << "a pin observed torn or stale bytes";
  EXPECT_EQ(unavailable.load(), 0u);
  EXPECT_EQ(served.load(),
            static_cast<uint64_t>(kThreads) * kItersPerThread);
  const BlockCache::Stats stats = cache.value()->stats();
  EXPECT_EQ(stats.hits + stats.misses, served.load());
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);
  std::filesystem::remove(path);
}

// ------------------------------------------------------- MmapFile basics

TEST(MmapFileTest, MapsWholeFileReadOnly) {
  const std::string path = WritePatternFile("rne_mmap_basic.bin", 1000);
  auto file = MmapFile::Map(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_EQ(file.value()->size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(file.value()->data()[i], ByteAt(i)) << i;
  }
  // Advice is best-effort; all variants must be safe to issue.
  file.value()->Advise(MmapFile::Advice::kRandom);
  file.value()->AdviseRange(128, 512, MmapFile::Advice::kWillNeed);
  file.value()->AdviseRange(0, 1000, MmapFile::Advice::kDontNeed);
  EXPECT_EQ(file.value()->data()[999], ByteAt(999));  // still readable
  std::filesystem::remove(path);
}

TEST(MmapFileTest, MissingFileIsNotFound) {
  EXPECT_EQ(MmapFile::Map(TempPath("rne_mmap_missing.bin")).status().code(),
            StatusCode::kNotFound);
}

// --------------------------- QuantizedRne through the block-cached loader

TEST(BlockCacheTest, QuantizedRneBlockCacheAnswersMatchHeapBitForBit) {
  const Graph g = MakeGridNetwork(8, 8);
  RneConfig config;
  config.dim = 8;
  config.train.level_samples = 500;
  config.train.vertex_samples = 2000;
  config.fine_tune = false;
  const QuantizedRne quantized(Rne::Build(g, config));
  const std::string path = TempPath("rne_bc_quant.bin");
  ASSERT_TRUE(quantized.Save(path).ok());

  auto heap = QuantizedRne::Load(path);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  LoadOptions options;
  options.mode = LoadMode::kBlockCache;
  options.block_bytes = 512;  // tiny geometry: force misses and evictions
  options.block_count = 4;
  auto cold = QuantizedRne::Load(path, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold.value().IsBlockCached());
  ASSERT_NE(cold.value().block_cache(), nullptr);

  const size_t n = g.NumVertices();
  for (VertexId s = 0; s < n; s += 3) {
    for (VertexId t = 1; t < n; t += 5) {
      const double want = heap.value().Query(s, t);
      const double got = cold.value().Query(s, t);
      ASSERT_EQ(std::memcmp(&want, &got, sizeof(double)), 0)
          << "s=" << s << " t=" << t;
    }
  }
  const BlockCache::Stats stats = cold.value().block_cache()->stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rne
