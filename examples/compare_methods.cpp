// Side-by-side comparison of every distance method in the library on one
// synthetic road network: accuracy, query latency, index size, build time.
// A miniature of the paper's Table III / Table IV for interactive use.
//
//   ./examples/compare_methods [grid_side]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/distance_oracle.h"
#include "baselines/geo.h"
#include "baselines/h2h.h"
#include "core/rne.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/table_writer.h"
#include "util/timer.h"

#include "algo/distance_sampler.h"

int main(int argc, char** argv) {
  const size_t side = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
  rne::RoadNetworkConfig net;
  net.rows = side;
  net.cols = side;
  net.seed = 1;
  const rne::Graph g = rne::MakeRoadNetwork(net);
  std::printf("network: %zu vertices, %zu edges\n", g.NumVertices(),
              g.NumEdges());

  rne::DistanceSampler sampler(g);
  rne::Rng rng(17);
  const auto val = sampler.RandomPairs(5000, rng);

  rne::TableWriter table(
      {"method", "exact", "mean_rel_err_%", "query_ns", "index_MB",
       "build_s"});
  auto add = [&](rne::DistanceMethod& m, double build_seconds) {
    double err = 0.0;
    size_t count = 0;
    for (const auto& s : val) {
      if (s.dist <= 0.0) continue;
      err += std::abs(m.Query(s.s, s.t) - s.dist) / s.dist;
      ++count;
    }
    rne::Timer timer;
    double sink = 0.0;
    for (const auto& s : val) sink += m.Query(s.s, s.t);
    const double ns =
        static_cast<double>(timer.ElapsedNanos()) / val.size();
    if (sink < 0) std::printf("?");
    table.AddRow({m.Name(), m.IsExact() ? "yes" : "no",
                  rne::TableWriter::Fmt(100.0 * err / count, 3),
                  rne::TableWriter::Fmt(ns, 0),
                  rne::TableWriter::Fmt(m.IndexBytes() / 1048576.0, 2),
                  rne::TableWriter::Fmt(build_seconds, 2)});
  };

  {
    rne::GeoEstimator m(g, rne::GeoMetric::kEuclidean);
    add(m, 0.0);
  }
  {
    rne::GeoEstimator m(g, rne::GeoMetric::kManhattan);
    add(m, 0.0);
  }
  {
    rne::Timer t;
    rne::H2HIndex m(g);
    add(m, t.ElapsedSeconds());
  }
  {
    rne::Timer t;
    rne::ContractionHierarchy m(g);
    add(m, t.ElapsedSeconds());
  }
  {
    rne::ChOptions opt;
    opt.epsilon = 0.1;
    rne::Timer t;
    rne::ContractionHierarchy m(g, opt);
    add(m, t.ElapsedSeconds());
  }
  {
    rne::DistanceOracleOptions opt;
    opt.epsilon = 0.5;
    rne::Timer t;
    rne::DistanceOracle m(g, opt);
    add(m, t.ElapsedSeconds());
  }
  {
    rne::Rng lm_rng(3);
    rne::Timer t;
    rne::AltIndex m(g, 64, lm_rng);
    add(m, t.ElapsedSeconds());
  }
  {
    rne::RneConfig config;
    config.dim = 64;
    rne::Timer t;
    const rne::Rne model = rne::Rne::Build(g, config);
    const double build = t.ElapsedSeconds();
    class Adapter : public rne::DistanceMethod {
     public:
      explicit Adapter(const rne::Rne* m) : m_(m) {}
      std::string Name() const override { return "RNE"; }
      double Query(rne::VertexId s, rne::VertexId t) override {
        return m_->Query(s, t);
      }
      size_t IndexBytes() const override { return m_->IndexBytes(); }
      bool IsExact() const override { return false; }

     private:
      const rne::Rne* m_;
    } adapter(&model);
    add(adapter, build);
  }
  table.Print("method comparison");
  return 0;
}
