// Online model refresh under changing traffic (an extension beyond the
// paper's static setting): edge weights in one region of the network rise
// (congestion), invalidating part of the trained embedding. Instead of
// retraining from scratch, RefineOnline() continues SGD on the flattened
// matrix with fresh exact samples drawn around the changed region.
//
//   ./examples/traffic_update [grid_side]
#include <cstdio>
#include <cstdlib>

#include "algo/distance_sampler.h"
#include "core/rne.h"
#include "core/sampler.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

/// Mean relative error of `model` against exact distances on `g`.
double MeanError(const rne::Rne& model, const rne::Graph& g, rne::Rng& rng,
                 size_t pairs) {
  rne::DistanceSampler sampler(g);
  const auto val = sampler.RandomPairs(pairs, rng);
  double sum = 0.0;
  size_t count = 0;
  for (const auto& s : val) {
    if (s.dist <= 0.0) continue;
    sum += std::abs(model.Query(s.s, s.t) - s.dist) / s.dist;
    ++count;
  }
  return sum / static_cast<double>(count);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t side = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
  rne::RoadNetworkConfig net;
  net.rows = side;
  net.cols = side;
  net.seed = 12;
  const rne::Graph before = rne::MakeRoadNetwork(net);
  std::printf("network: %zu vertices\n", before.NumVertices());

  // Train on the free-flow network.
  rne::RneConfig config;
  config.dim = 64;
  rne::Rne model = rne::Rne::Build(before, config);
  rne::Rng rng(9);
  std::printf("error on free-flow network: %.2f%%\n",
              100.0 * MeanError(model, before, rng, 2000));

  // Congestion: every edge in the north-west quadrant takes 60% longer.
  rne::GraphBuilder builder(before.NumVertices());
  double mid_x = 0.0, mid_y = 0.0;
  for (const rne::Point& p : before.coords()) {
    mid_x += p.x;
    mid_y += p.y;
  }
  mid_x /= static_cast<double>(before.NumVertices());
  mid_y /= static_cast<double>(before.NumVertices());
  size_t slowed = 0;
  for (rne::VertexId v = 0; v < before.NumVertices(); ++v) {
    builder.SetCoord(v, before.Coord(v));
    for (const rne::Edge& e : before.Neighbors(v)) {
      if (v >= e.to) continue;
      const bool congested = before.Coord(v).x < mid_x &&
                             before.Coord(v).y > mid_y;
      builder.AddEdge(v, e.to, congested ? e.weight * 1.6 : e.weight);
      slowed += congested;
    }
  }
  const rne::Graph after = builder.Build();
  std::printf("congestion applied to %zu edges (NW quadrant)\n", slowed);
  std::printf("stale model error on congested network: %.2f%%\n",
              100.0 * MeanError(model, after, rng, 2000));

  // Refresh: draw fresh exact samples (uniform — congestion affects paths
  // far beyond the quadrant) and continue SGD on the serving matrix.
  rne::Timer timer;
  rne::DistanceSampler sampler(after);
  const auto refresh_pairs =
      rne::RandomVertexPairs(after.NumVertices(), 30000, rng, 8);
  const auto refresh = sampler.ComputeDistances(refresh_pairs);
  model.RefineOnline(refresh, /*epochs=*/6, /*lr0=*/0.3);
  std::printf("online refresh took %.1fs (30k samples, 6 epochs)\n",
              timer.ElapsedSeconds());
  std::printf("refreshed model error on congested network: %.2f%%\n",
              100.0 * MeanError(model, after, rng, 2000));

  // Reference: full retraining cost.
  timer.Restart();
  const rne::Rne retrained = rne::Rne::Build(after, config);
  std::printf("full retrain took %.1fs, error %.2f%%\n",
              timer.ElapsedSeconds(),
              100.0 * MeanError(retrained, after, rng, 2000));
  return 0;
}
