// POI range search (the paper's Yelp motivation): find every restaurant
// within a travel-distance budget of the user, by network distance.
// Demonstrates RneIndex::Range against exact expansion and shows how the
// model file is persisted and reloaded the way a serving process would.
//
//   ./examples/poi_range_search [grid_side]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "baselines/network_knn.h"
#include "core/rne.h"
#include "core/rne_index.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const size_t side = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;

  rne::RoadNetworkConfig net;
  net.rows = side;
  net.cols = side;
  net.seed = 4;
  const rne::Graph city = rne::MakeRoadNetwork(net);

  // 4% of intersections host a POI ("restaurant").
  rne::Rng rng(5);
  std::set<rne::VertexId> poi_set;
  while (poi_set.size() < city.NumVertices() / 25) {
    poi_set.insert(
        static_cast<rne::VertexId>(rng.UniformIndex(city.NumVertices())));
  }
  const std::vector<rne::VertexId> pois(poi_set.begin(), poi_set.end());
  std::printf("city: %zu intersections, %zu POIs\n", city.NumVertices(),
              pois.size());

  // Offline: train and persist the model; online: reload and index.
  const char* model_path = "/tmp/rne_poi.model";
  {
    rne::RneConfig config;
    config.dim = 64;
    const rne::Rne model = rne::Rne::Build(city, config);
    const rne::Status st = model.Save(model_path);
    if (!st.ok()) {
      std::printf("save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("model trained and saved (%zu KB)\n",
                model.IndexBytes() / 1024);
  }
  auto loaded = rne::Rne::Load(model_path);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const rne::Rne& model = loaded.value();
  const rne::RneIndex index(&model, pois);
  rne::NetworkKnn exact(city, pois);

  // Serve range queries at several travel budgets.
  std::printf("\n%8s %10s %10s %10s %12s %12s\n", "budget", "found", "exact",
              "F1", "rne_us", "exact_us");
  for (const double budget : {500.0, 1000.0, 2000.0, 4000.0}) {
    double f1_sum = 0.0, rne_us = 0.0, exact_us = 0.0;
    size_t found_sum = 0, truth_sum = 0;
    const int queries = 100;
    for (int q = 0; q < queries; ++q) {
      const auto user =
          static_cast<rne::VertexId>(rng.UniformIndex(city.NumVertices()));
      rne::Timer t;
      const auto approx = index.Range(user, budget);
      rne_us += static_cast<double>(t.ElapsedNanos()) / 1000.0;
      t.Restart();
      const auto truth = exact.Range(user, budget);
      exact_us += static_cast<double>(t.ElapsedNanos()) / 1000.0;

      found_sum += approx.size();
      truth_sum += truth.size();
      const std::set<rne::VertexId> truth_set(truth.begin(), truth.end());
      size_t hits = 0;
      for (const rne::VertexId v : approx) hits += truth_set.count(v);
      const double precision =
          approx.empty() ? (truth.empty() ? 1.0 : 0.0)
                         : static_cast<double>(hits) / approx.size();
      const double recall = truth.empty()
                                ? 1.0
                                : static_cast<double>(hits) / truth.size();
      f1_sum += (precision + recall == 0.0)
                    ? 0.0
                    : 2 * precision * recall / (precision + recall);
    }
    std::printf("%7.0fm %10.1f %10.1f %9.1f%% %11.1f %11.1f\n", budget,
                static_cast<double>(found_sum) / queries,
                static_cast<double>(truth_sum) / queries,
                100.0 * f1_sum / queries, rne_us / queries,
                exact_us / queries);
  }
  std::printf("\nRNE range queries stay microseconds-fast at every budget;\n"
              "exact expansion cost grows with the budget radius.\n");
  return 0;
}
