// Nearest-taxi dispatch (the paper's Uber motivation): a fleet of taxis
// parked at road-network vertices; each incoming rider request needs the k
// nearest taxis by *network* distance. We answer every request three ways —
// RNE kNN index, straight-line KD-tree, and exact Dijkstra expansion — and
// compare quality and throughput.
//
//   ./examples/nearest_taxi [grid_side] [num_taxis] [num_requests]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "baselines/kd_tree.h"
#include "baselines/network_knn.h"
#include "core/rne.h"
#include "core/rne_index.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const size_t side = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  const size_t num_taxis = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 300;
  const size_t num_requests =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 500;
  constexpr size_t kNearest = 5;

  rne::RoadNetworkConfig net;
  net.rows = side;
  net.cols = side;
  net.seed = 2026;
  const rne::Graph city = rne::MakeRoadNetwork(net);
  std::printf("city: %zu intersections, %zu road segments\n",
              city.NumVertices(), city.NumEdges());

  // Park the fleet at random intersections.
  rne::Rng rng(99);
  std::set<rne::VertexId> fleet_set;
  while (fleet_set.size() < num_taxis) {
    fleet_set.insert(
        static_cast<rne::VertexId>(rng.UniformIndex(city.NumVertices())));
  }
  const std::vector<rne::VertexId> fleet(fleet_set.begin(), fleet_set.end());

  // Build the RNE model once (offline), then the kNN index over the fleet.
  rne::RneConfig config;
  config.dim = 64;
  const rne::Rne model = rne::Rne::Build(city, config);
  const rne::RneIndex rne_knn(&model, fleet);
  const rne::KdTree geo_knn(city, rne::GeoMetric::kEuclidean, fleet);
  rne::NetworkKnn exact_knn(city, fleet);

  // Serve requests; measure recall vs exact network kNN and throughput.
  std::vector<rne::VertexId> riders;
  for (size_t i = 0; i < num_requests; ++i) {
    riders.push_back(
        static_cast<rne::VertexId>(rng.UniformIndex(city.NumVertices())));
  }

  double rne_recall = 0.0, geo_recall = 0.0;
  double rne_us = 0.0, geo_us = 0.0, exact_us = 0.0;
  for (const rne::VertexId rider : riders) {
    rne::Timer t;
    const auto exact = exact_knn.Knn(rider, kNearest);
    exact_us += static_cast<double>(t.ElapsedNanos()) / 1000.0;
    std::set<rne::VertexId> truth;
    for (const auto& [taxi, d] : exact) truth.insert(taxi);

    t.Restart();
    const auto by_rne = rne_knn.Knn(rider, kNearest);
    rne_us += static_cast<double>(t.ElapsedNanos()) / 1000.0;
    t.Restart();
    const auto by_geo = geo_knn.Knn(rider, kNearest);
    geo_us += static_cast<double>(t.ElapsedNanos()) / 1000.0;

    size_t rne_hits = 0, geo_hits = 0;
    for (const auto& [taxi, d] : by_rne) rne_hits += truth.count(taxi);
    for (const auto& [taxi, d] : by_geo) geo_hits += truth.count(taxi);
    rne_recall += static_cast<double>(rne_hits) / kNearest;
    geo_recall += static_cast<double>(geo_hits) / kNearest;
  }
  const double n = static_cast<double>(num_requests);
  std::printf("\n%-22s %10s %14s\n", "dispatcher", "recall@5",
              "latency/request");
  std::printf("%-22s %9.1f%% %11.1f us\n", "RNE kNN index",
              100.0 * rne_recall / n, rne_us / n);
  std::printf("%-22s %9.1f%% %11.1f us\n", "Euclidean KD-tree",
              100.0 * geo_recall / n, geo_us / n);
  std::printf("%-22s %9.1f%% %11.1f us (ground truth)\n",
              "Dijkstra expansion", 100.0, exact_us / n);
  std::printf(
      "\nRNE throughput is %.1fx exact search at %.1f%% recall "
      "(the gap widens with city size; try grid_side 64+).\n",
      exact_us / rne_us, 100.0 * rne_recall / n);
  return 0;
}
