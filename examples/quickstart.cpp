// Quickstart: build an RNE model on a synthetic road network, query a few
// distances, and compare against exact Dijkstra.
//
//   ./examples/quickstart [grid_side]
//
// Walks through the whole public API surface: generate a network, train the
// embedding, run point queries, check the error, save and reload the model.
#include <cstdio>
#include <cstdlib>

#include "algo/dijkstra.h"
#include "algo/distance_sampler.h"
#include "core/rne.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const size_t side = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;

  // 1. A synthetic road network (perturbed grid + highways), ~side^2 vertices.
  rne::RoadNetworkConfig net;
  net.rows = side;
  net.cols = side;
  net.seed = 7;
  const rne::Graph g = rne::MakeRoadNetwork(net);
  std::printf("road network: %zu vertices, %zu edges\n", g.NumVertices(),
              g.NumEdges());

  // 2. Train the RNE model (hierarchical embedding, d = 64, L1 metric).
  rne::RneConfig config;
  config.dim = 64;
  config.train.verbose = true;
  rne::RneBuildStats stats;
  rne::Timer build_timer;
  const rne::Rne model = rne::Rne::Build(g, config, &stats);
  std::printf("built in %.1fs (partition %.1fs, train %.1fs, %zu samples)\n",
              stats.total_seconds, stats.partition_seconds,
              stats.train_seconds, stats.samples_processed);

  // 3. Point queries vs exact Dijkstra.
  rne::DijkstraSearch dijkstra(g);
  rne::Rng rng(123);
  std::printf("\n%8s %8s %12s %12s %8s\n", "s", "t", "exact", "rne",
              "rel.err");
  for (int i = 0; i < 5; ++i) {
    const auto s = static_cast<rne::VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<rne::VertexId>(rng.UniformIndex(g.NumVertices()));
    const double exact = dijkstra.Distance(s, t);
    const double approx = model.Query(s, t);
    std::printf("%8u %8u %12.1f %12.1f %7.2f%%\n", s, t, exact, approx,
                exact > 0 ? 100.0 * std::abs(approx - exact) / exact : 0.0);
  }

  // 4. Mean relative error over a random validation set.
  rne::DistanceSampler sampler(g);
  const auto val = sampler.RandomPairs(2000, rng);
  double err_sum = 0.0;
  size_t err_count = 0;
  for (const auto& sample : val) {
    if (sample.dist <= 0.0) continue;
    err_sum += std::abs(model.Query(sample.s, sample.t) - sample.dist) /
               sample.dist;
    ++err_count;
  }
  std::printf("\nmean relative error over %zu random pairs: %.3f%%\n",
              err_count, 100.0 * err_sum / err_count);

  // 5. Query latency.
  rne::Timer timer;
  double sink = 0.0;
  constexpr int kQueries = 200000;
  for (int i = 0; i < kQueries; ++i) {
    sink += model.Query(
        static_cast<rne::VertexId>(i % g.NumVertices()),
        static_cast<rne::VertexId>((i * 7919) % g.NumVertices()));
  }
  std::printf("query latency: %.0f ns/query (checksum %.1f)\n",
              static_cast<double>(timer.ElapsedNanos()) / kQueries, sink);

  // 6. Save and reload.
  const char* path = "/tmp/rne_quickstart.model";
  const rne::Status save_status = model.Save(path);
  if (!save_status.ok()) {
    std::printf("save failed: %s\n", save_status.ToString().c_str());
    return 1;
  }
  auto reloaded = rne::Rne::Load(path);
  std::printf("model saved and reloaded: %s (index %.1f MB)\n",
              reloaded.ok() ? "ok" : reloaded.status().ToString().c_str(),
              static_cast<double>(model.IndexBytes()) / (1024.0 * 1024.0));
  return 0;
}
