// ALT landmarks [13]: a |U| x |V| matrix of exact distances from landmarks.
//
// Two uses:
//  * LT estimation (the paper's "LT" baseline): O(|U|) approximate distance
//    from the triangle inequality — max lower bound max_u |d(u,s) - d(u,t)|
//    and min upper bound min_u d(u,s) + d(u,t), combined as their midpoint.
//  * ALT A* search: the max lower bound is an admissible, consistent
//    heuristic, giving exact goal-directed search.
#ifndef RNE_BASELINES_ALT_H_
#define RNE_BASELINES_ALT_H_

#include <memory>
#include <vector>

#include "algo/astar.h"
#include "baselines/method.h"
#include "util/rng.h"
#include "util/status.h"

namespace rne {

class AltIndex : public DistanceMethod {
 public:
  /// Builds the landmark matrix with `num_landmarks` farthest-point
  /// landmarks (|U| single-source searches). Selection is sequential;
  /// the matrix rows fill across `num_threads` workers (0 = hardware) with
  /// thread-count-invariant results.
  AltIndex(const Graph& g, size_t num_landmarks, Rng& rng,
           size_t num_threads = 0);

  std::string Name() const override { return "LT"; }
  /// LT estimate: midpoint of the tightest triangle-inequality bounds.
  double Query(VertexId s, VertexId t) override;
  size_t IndexBytes() const override {
    return landmark_dist_.size() * sizeof(double);
  }
  bool IsExact() const override { return false; }

  /// Tightest lower bound max_u |d(u,s) - d(u,t)| (admissible heuristic).
  double LowerBound(VertexId s, VertexId t) const;
  /// Tightest upper bound min_u d(u,s) + d(u,t).
  double UpperBound(VertexId s, VertexId t) const;

  /// Exact distance via A* with the landmark heuristic (the "ALT" search).
  double ExactDistance(VertexId s, VertexId t);

  size_t num_landmarks() const { return num_landmarks_; }
  const std::vector<VertexId>& landmarks() const { return landmarks_; }

  /// Persists the landmark matrix; Load re-binds to `g` (which must be the
  /// graph the index was built on) for the A* search path.
  Status Save(const std::string& path) const;
  static StatusOr<AltIndex> Load(const std::string& path, const Graph& g);

 private:
  AltIndex() = default;
  double LandmarkDist(size_t landmark, VertexId v) const {
    return landmark_dist_[landmark * num_vertices_ + v];
  }

  size_t num_landmarks_ = 0;
  size_t num_vertices_ = 0;
  std::vector<VertexId> landmarks_;
  std::vector<double> landmark_dist_;  // row-major |U| x |V|
  std::unique_ptr<AStarSearch> astar_;
};

}  // namespace rne

#endif  // RNE_BASELINES_ALT_H_
