#include "baselines/h2h.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <unordered_map>

#include "obs/trace.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace rne {

namespace {
struct BagEntry {
  VertexId to;
  double weight;
};
}  // namespace

H2HIndex::H2HIndex(const Graph& g, const H2HOptions& options)
    : n_(g.NumVertices()) {
  Build(g, options);
}

void H2HIndex::Build(const Graph& g, const H2HOptions& options) {
  RNE_SPAN("build.h2h");
  // --- 1. Minimum-degree elimination with fill-in shortcuts. ---
  std::vector<std::unordered_map<VertexId, double>> live(n_);
  for (VertexId v = 0; v < n_; ++v) {
    for (const Edge& e : g.Neighbors(v)) {
      auto [it, inserted] = live[v].try_emplace(e.to, e.weight);
      if (!inserted && e.weight < it->second) it->second = e.weight;
    }
  }
  std::vector<char> eliminated(n_, 0);
  std::vector<uint32_t> elim_rank(n_, 0);
  std::vector<std::vector<BagEntry>> bag(n_);

  using PqEntry = std::pair<uint32_t, VertexId>;  // (degree, vertex)
  std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<>> pq;
  for (VertexId v = 0; v < n_; ++v) {
    pq.emplace(static_cast<uint32_t>(live[v].size()), v);
  }
  uint32_t next_rank = 0;
  while (!pq.empty()) {
    const auto [deg, v] = pq.top();
    pq.pop();
    if (eliminated[v]) continue;
    if (deg != live[v].size()) {  // stale degree, reinsert
      pq.emplace(static_cast<uint32_t>(live[v].size()), v);
      continue;
    }
    eliminated[v] = 1;
    elim_rank[v] = next_rank++;
    bag[v].reserve(live[v].size());
    for (const auto& [u, w] : live[v]) bag[v].push_back({u, w});
    max_bag_size_ = std::max(max_bag_size_, bag[v].size() + 1);
    // Fill-in among bag members.
    for (size_t i = 0; i < bag[v].size(); ++i) {
      for (size_t j = i + 1; j < bag[v].size(); ++j) {
        const VertexId a = bag[v][i].to, b = bag[v][j].to;
        const double w = bag[v][i].weight + bag[v][j].weight;
        auto [it, inserted] = live[a].try_emplace(b, w);
        if (!inserted && w < it->second) it->second = w;
        auto [it2, inserted2] = live[b].try_emplace(a, w);
        if (!inserted2 && w < it2->second) it2->second = w;
      }
      live[bag[v][i].to].erase(v);
    }
    live[v].clear();
    // Degrees of bag members changed; lazy reinsertion.
    for (const BagEntry& e : bag[v]) {
      pq.emplace(static_cast<uint32_t>(live[e.to].size()), e.to);
    }
  }

  // --- 2. Elimination tree: parent = bag member eliminated first. ---
  parent_.assign(n_, kInvalidVertex);
  for (VertexId v = 0; v < n_; ++v) {
    uint32_t best_rank = UINT32_MAX;
    for (const BagEntry& e : bag[v]) {
      RNE_CHECK(elim_rank[e.to] > elim_rank[v]);
      if (elim_rank[e.to] < best_rank) {
        best_rank = elim_rank[e.to];
        parent_[v] = e.to;
      }
    }
  }
  std::vector<std::vector<VertexId>> children(n_);
  std::vector<VertexId> roots;
  for (VertexId v = 0; v < n_; ++v) {
    if (parent_[v] == kInvalidVertex) {
      roots.push_back(v);
    } else {
      children[parent_[v]].push_back(v);
    }
  }

  // --- 3. Top-down labeling over DFS with an explicit root-path stack,
  // parallel across independent subtrees. A serial DFS labels the upper
  // tree; a node whose subtree is small enough becomes a task that labels
  // its subtree on the pool, seeded with a snapshot of the ancestor path.
  // A vertex's label depends only on its ancestors' labels (all finished
  // before the task starts) and is accumulated in fixed bag order, so the
  // labels are bitwise identical for every thread count.
  depth_.assign(n_, 0);
  root_of_.assign(n_, kInvalidVertex);
  label_.assign(n_, {});
  pos_.assign(n_, {});

  const size_t num_threads = ResolveNumThreads(options.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1 && n_ > 1) {
    pool = std::make_unique<ThreadPool>(num_threads);
  }

  // Subtree sizes: children are eliminated before their parent, so one pass
  // in elimination order accumulates bottom-up.
  std::vector<VertexId> by_rank(n_);
  for (VertexId v = 0; v < n_; ++v) by_rank[elim_rank[v]] = v;
  std::vector<uint32_t> subtree_size(n_, 0);
  for (const VertexId v : by_rank) {
    subtree_size[v] += 1;
    if (parent_[v] != kInvalidVertex) {
      subtree_size[parent_[v]] += subtree_size[v];
    }
  }
  const size_t task_cutoff =
      pool ? std::max<size_t>(256, n_ / (8 * num_threads)) : 0;

  struct Task {
    VertexId root;             // subtree root to label
    VertexId component_root;   // root_of_ value for the whole subtree
    std::vector<VertexId> ancestors;  // path[d] = ancestor at depth d
  };
  std::vector<Task> tasks;

  auto label_vertex = [&](VertexId v, const std::vector<VertexId>& path,
                          VertexId component_root) {
    root_of_[v] = component_root;
    depth_[v] = static_cast<uint32_t>(path.size());
    label_[v].assign(depth_[v] + 1, kInfDistance);
    label_[v][depth_[v]] = 0.0;
    for (uint32_t i = 0; i < depth_[v]; ++i) {
      double best = kInfDistance;
      for (const BagEntry& e : bag[v]) {
        // d(x, anc@i): x and anc@i are both on v's root path; take the
        // label stored at the shallower of the two.
        const double dx = depth_[e.to] >= i ? label_[e.to][i]
                                            : label_[path[i]][depth_[e.to]];
        if (dx != kInfDistance && e.weight + dx < best) {
          best = e.weight + dx;
        }
      }
      label_[v][i] = best;
    }
    pos_[v].reserve(bag[v].size() + 1);
    for (const BagEntry& e : bag[v]) pos_[v].push_back(depth_[e.to]);
    pos_[v].push_back(depth_[v]);
  };

  // Iterative DFS carrying (vertex, resume-state). With `spawn_tasks`,
  // small-enough subtrees are deferred to the pool instead of descended.
  struct Frame {
    VertexId v;
    size_t child_idx;
  };
  auto dfs_label = [&](VertexId start, VertexId component_root,
                       std::vector<VertexId>& path, bool spawn_tasks,
                       size_t& height) {
    std::vector<Frame> stack;
    stack.push_back({start, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const VertexId v = frame.v;
      if (frame.child_idx == 0) {
        if (spawn_tasks && subtree_size[v] <= task_cutoff) {
          tasks.push_back({v, component_root, path});
          stack.pop_back();
          continue;
        }
        label_vertex(v, path, component_root);
        height = std::max<size_t>(height, depth_[v] + 1);
        path.push_back(v);
      }
      if (frame.child_idx < children[v].size()) {
        const VertexId c = children[v][frame.child_idx++];
        stack.push_back({c, 0});
      } else {
        path.pop_back();
        stack.pop_back();
      }
    }
  };

  {
    RNE_SPAN("build.h2h.label");
    std::vector<VertexId> path;  // path[d] = ancestor at depth d
    for (const VertexId root : roots) {
      dfs_label(root, root, path, /*spawn_tasks=*/pool != nullptr,
                tree_height_);
    }
    if (pool) {
      std::vector<size_t> task_height(tasks.size(), 0);
      pool->ParallelFor(tasks.size(), [&](size_t i) {
        std::vector<VertexId> task_path = tasks[i].ancestors;
        dfs_label(tasks[i].root, tasks[i].component_root, task_path,
                  /*spawn_tasks=*/false, task_height[i]);
      });
      for (const size_t h : task_height) {
        tree_height_ = std::max(tree_height_, h);
      }
      RNE_COUNTER_ADD("build.h2h.label_tasks", tasks.size());
    }
  }

  // --- 4. Binary-lifting LCA table: level k reads only level k - 1, so
  // each level fills in parallel between barriers. ---
  RNE_SPAN("build.h2h.lift");
  size_t log = 1;
  while ((size_t{1} << log) < std::max<size_t>(tree_height_, 2)) ++log;
  up_.assign(log, std::vector<uint32_t>(n_));
  for (VertexId v = 0; v < n_; ++v) {
    up_[0][v] = parent_[v] == kInvalidVertex ? v : parent_[v];
  }
  for (size_t k = 1; k < log; ++k) {
    if (pool) {
      pool->ParallelFor(
          n_, [&](size_t v) { up_[k][v] = up_[k - 1][up_[k - 1][v]]; });
    } else {
      for (VertexId v = 0; v < n_; ++v) up_[k][v] = up_[k - 1][up_[k - 1][v]];
    }
  }
}

VertexId H2HIndex::Lca(VertexId u, VertexId v) const {
  if (depth_[u] < depth_[v]) std::swap(u, v);
  uint32_t diff = depth_[u] - depth_[v];
  for (size_t k = 0; diff != 0; ++k, diff >>= 1) {
    if (diff & 1) u = up_[k][u];
  }
  if (u == v) return u;
  for (size_t k = up_.size(); k-- > 0;) {
    if (up_[k][u] != up_[k][v]) {
      u = up_[k][u];
      v = up_[k][v];
    }
  }
  return parent_[u] == kInvalidVertex ? u : parent_[u];
}

double H2HIndex::Query(VertexId s, VertexId t) {
  RNE_CHECK(s < n_ && t < n_);
  if (s == t) return 0.0;
  if (root_of_[s] != root_of_[t]) return kInfDistance;  // different components
  const VertexId x = Lca(s, t);
  if (x == s) return label_[t][depth_[s]];
  if (x == t) return label_[s][depth_[t]];
  double best = kInfDistance;
  for (const uint32_t i : pos_[x]) {
    const double d = label_[s][i] + label_[t][i];
    if (d < best) best = d;
  }
  return best;
}

Status H2HIndex::Save(const std::string& path) const {
  BinaryWriter w(path, kH2hMagic);
  if (!w.ok()) return Status::IoError("cannot open " + path + ".tmp");
  w.WritePod<uint64_t>(n_);
  w.WritePod<uint64_t>(max_bag_size_);
  w.WritePod<uint64_t>(tree_height_);
  w.WriteVector(parent_);
  w.WriteVector(depth_);
  w.WriteVector(root_of_);
  w.WritePod<uint64_t>(up_.size());
  for (const auto& level : up_) w.WriteVector(level);
  for (const auto& l : label_) w.WriteVector(l);
  for (const auto& p : pos_) w.WriteVector(p);
  return w.Finish();
}

StatusOr<H2HIndex> H2HIndex::Load(const std::string& path) {
  BinaryReader r(path, kH2hMagic);
  if (!r.ok()) return r.status();
  H2HIndex h;
  uint64_t n = 0, bag = 0, height = 0, levels = 0;
  if (!r.ReadPod(&n) || !r.ReadPod(&bag) || !r.ReadPod(&height) ||
      !r.ReadVector(&h.parent_) || !r.ReadVector(&h.depth_) ||
      !r.ReadVector(&h.root_of_) || !r.ReadPod(&levels)) {
    return r.ReadError("corrupt H2H index " + path);
  }
  // Validate the counts against data actually read before sizing anything by
  // them: each of the `levels`/`n` per-entry vectors below needs at least an
  // 8-byte length prefix, so corrupt counts cannot drive a huge resize.
  if (h.parent_.size() != n || h.depth_.size() != n ||
      h.root_of_.size() != n || levels > r.remaining() / 8 ||
      n > r.remaining() / 16) {
    return Status::Corruption("inconsistent H2H index " + path);
  }
  h.n_ = n;
  h.max_bag_size_ = bag;
  h.tree_height_ = height;
  h.up_.resize(levels);
  for (auto& level : h.up_) {
    if (!r.ReadVector(&level)) {
      return r.ReadError("corrupt H2H index " + path);
    }
  }
  h.label_.resize(n);
  for (auto& l : h.label_) {
    if (!r.ReadVector(&l)) {
      return r.ReadError("corrupt H2H index " + path);
    }
  }
  h.pos_.resize(n);
  for (auto& p : h.pos_) {
    if (!r.ReadVector(&p)) {
      return r.ReadError("corrupt H2H index " + path);
    }
  }
  RNE_RETURN_IF_ERROR(r.Finish());
  return h;
}

size_t H2HIndex::IndexBytes() const {
  size_t bytes = parent_.size() * sizeof(uint32_t) +
                 depth_.size() * sizeof(uint32_t);
  for (const auto& l : label_) bytes += l.size() * sizeof(double);
  for (const auto& p : pos_) bytes += p.size() * sizeof(uint32_t);
  for (const auto& u : up_) bytes += u.size() * sizeof(uint32_t);
  return bytes;
}

}  // namespace rne
