// Search-based exact kNN / range queries by incremental network expansion
// (INE): a Dijkstra expansion from the query source that stops once k targets
// are settled (or the radius is exceeded). This is the exact, search-heavy
// query style that V-tree [28] / G-tree accelerate; it serves as the exact
// comparator in the Fig 16 experiments (see DESIGN.md substitutions).
#ifndef RNE_BASELINES_NETWORK_KNN_H_
#define RNE_BASELINES_NETWORK_KNN_H_

#include <memory>
#include <utility>
#include <vector>

#include "algo/dijkstra.h"
#include "graph/graph.h"

namespace rne {

class NetworkKnn {
 public:
  /// Indexes `targets` (empty = all vertices). `g` must outlive the object.
  NetworkKnn(const Graph& g, std::vector<VertexId> targets = {});

  /// Exact k nearest targets by network distance, sorted ascending.
  std::vector<std::pair<VertexId, double>> Knn(VertexId source, size_t k);

  /// Exact targets within network distance tau.
  std::vector<VertexId> Range(VertexId source, double tau);

  size_t MemoryBytes() const {
    return is_target_.size() * sizeof(char);
  }

 private:
  const Graph& g_;
  std::vector<char> is_target_;
  size_t num_targets_ = 0;
  DijkstraSearch search_;
};

}  // namespace rne

#endif  // RNE_BASELINES_NETWORK_KNN_H_
