// G-tree [35][36]: the partition-tree distance index that V-tree [28]
// extends for moving-object kNN. Used as the paper's V-tree comparator in
// the Fig 16 experiments (static targets).
//
// Structure: the road network is recursively partitioned (reusing
// PartitionHierarchy). Every tree node stores its *borders* — vertices with
// an edge leaving the node's vertex set — plus distance matrices:
//   * leaf L:      d(b, v) for b in B(L), v in V(L);
//   * internal n:  d(x, y) for x, y in U(n) = union of children borders.
// All matrix entries are exact global shortest distances, computed with one
// single-source search per leaf border (every border of every node is a
// border of some leaf, so leaf-border sources cover every entry).
//
// Queries:
//   * Distance(s, t): dynamic programming up the two leaf-to-LCA paths
//     (d(s, B(node)) climbs via the parent matrices), joined through the
//     LCA matrix; same-leaf queries take min(local Dijkstra, via-border).
//   * Knn(s, k): best-first search over tree nodes, each keyed by the
//     admissible bound min_b d(s, b); leaves expand their target vertices
//     through the leaf matrix.
#ifndef RNE_BASELINES_GTREE_H_
#define RNE_BASELINES_GTREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "baselines/method.h"
#include "partition/hierarchy.h"
#include "util/mmap_file.h"
#include "util/serialize.h"

namespace rne {

struct GTreeOptions {
  size_t fanout = 4;
  size_t leaf_size = 64;
  /// Build workers (0 = hardware), shared by the partitioning phase and the
  /// per-source matrix SSSPs.
  size_t num_threads = 0;
  /// Below this many leaf-border sources the matrix fill stays serial (pool
  /// startup would dominate). Has no effect on the resulting index.
  size_t parallel_source_cutoff = 8;
  uint64_t seed = 19;
};

class GTree : public DistanceMethod {
 public:
  GTree(const Graph& g, const GTreeOptions& options = {});

  std::string Name() const override { return "GTree"; }
  /// Exact shortest-path distance (kInfDistance when disconnected).
  double Query(VertexId s, VertexId t) override { return Distance(s, t); }
  size_t IndexBytes() const override;
  bool IsExact() const override { return true; }

  double Distance(VertexId s, VertexId t);

  /// Restricts Knn()/Range() to a target subset (default: all vertices).
  void SetTargets(const std::vector<VertexId>& targets);

  /// Exact k nearest targets by network distance, sorted ascending.
  std::vector<std::pair<VertexId, double>> Knn(VertexId s, size_t k);

  /// Exact targets within network distance tau (unordered).
  std::vector<VertexId> Range(VertexId s, double tau);

  const PartitionHierarchy& hierarchy() const { return *hier_; }
  size_t num_borders() const { return num_leaf_borders_; }

  /// Persists the tree + all distance matrices; Load re-binds to `g` (must
  /// be the graph the index was built on) and skips every search.
  /// kSectioned (default) concatenates every node's matrix into one aligned
  /// lazy-verify section so the file can be served via mmap; kLegacyV1
  /// writes the flat v1 payload with per-node matrix vectors.
  Status Save(const std::string& path,
              SaveFormat format = SaveFormat::kSectioned) const;
  /// Heap load; reads v1 and v2 files.
  static StatusOr<GTree> Load(const std::string& path, const Graph& g);
  /// Mode-controlled load. kMmap / kMmapCold serve the distance matrices
  /// zero-copy from a read-only mapping (v1 files fall back to a heap
  /// load — there is nothing to map). kBlockCache is not supported: queries
  /// walk many matrices per call, so there is no bounded working set.
  static StatusOr<GTree> Load(const std::string& path, const Graph& g,
                              const LoadOptions& options);

  /// True when the matrices are views into an mmap'd file.
  bool IsMapped() const { return mapping_ != nullptr; }
  /// Completes any deferred (cold-map) section verification. Ok for heap
  /// models.
  Status VerifyMapped() const {
    return mapping_ == nullptr ? Status::Ok() : mapping_->EnsureAllVerified();
  }

 private:
  GTree() = default;
  struct NodeData {
    std::vector<VertexId> borders;      // B(node)
    std::vector<VertexId> junction;     // U(node): union of children borders
                                        // (empty for leaves)
    /// leaf: |B| x |V(leaf)|; internal: |U| x |U|, row-major. A view into
    /// matrix_pool_ (heap loads/builds) or the mapped file's matrix section.
    std::span<const double> matrix;
    std::vector<uint32_t> border_in_junction;  // index of B(node)[i] in U
    /// Per child (ordered as hierarchy children): junction indices of that
    /// child's borders (precomputed to keep queries scan-free).
    std::vector<std::vector<uint32_t>> child_border_in_junction;
    std::vector<VertexId> targets;      // target vertices (leaves only)
  };

  void ComputeBorders(const Graph& g);
  void ComputeMatrices(const Graph& g, const GTreeOptions& options);

  /// Reads everything but the matrix payload; per-node matrix lengths (in
  /// doubles) land in `matrix_lens`. v1 streams also append the matrix data
  /// to matrix_pool_ (spans are bound afterwards, once the pool is stable).
  Status ParseMeta(BinaryReader& r, const std::string& path,
                   std::vector<uint64_t>* matrix_lens);
  /// Points every node's matrix span at its slice of `pool`.
  void BindMatrixSpans(const double* pool,
                       const std::vector<uint64_t>& matrix_lens);
  Status CheckConsistent(const std::string& path, const Graph& g) const;

  /// Shared best-first engine behind Knn (tau = inf) and Range (k = all).
  std::vector<std::pair<VertexId, double>> BestFirst(VertexId s, size_t k,
                                                     double tau);

  double LeafLocalDistance(uint32_t leaf, VertexId s, VertexId t) const;
  /// d(s, b) for every b in B(node) for each node on the leaf-to-root path
  /// of s, bottom-up. Front = leaf of s.
  std::vector<std::vector<double>> ClimbFrom(VertexId s) const;

  /// Index of vertex v inside its leaf's vertex list.
  uint32_t IndexInLeaf(VertexId v) const {
    return vertex_pos_in_leaf_[v];
  }
  /// Index of border vertex b inside junction list of `node`; UINT32_MAX if
  /// absent.
  static uint32_t IndexOf(const std::vector<VertexId>& list, VertexId v);
  /// Position of `child` in `parent`'s children list.
  size_t ChildSlot(uint32_t parent, uint32_t child) const;

  const Graph* g_;
  std::unique_ptr<PartitionHierarchy> hier_;
  std::vector<NodeData> nodes_;
  std::vector<uint32_t> vertex_pos_in_leaf_;
  size_t num_leaf_borders_ = 0;
  /// All node matrices concatenated in node-id order (heap storage). Node
  /// spans alias this pool, so GTree is move-only (vector data is stable
  /// under move).
  std::vector<double> matrix_pool_;
  const double* pool_view_ = nullptr;  // mmap loads: view into mapping_
  std::shared_ptr<const MappedEnvelope> mapping_;
};

}  // namespace rne

#endif  // RNE_BASELINES_GTREE_H_
