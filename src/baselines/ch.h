// Contraction Hierarchies [11] and their approximate variant ACH [12].
//
// Construction contracts vertices in importance order (edge difference +
// contracted-neighbor count + depth) in independent-set batches: each round
// re-ranks dirty vertices in parallel, selects every vertex whose
// (priority, id) is a strict local minimum over its uncontracted overlay
// neighbourhood, contracts the batch concurrently with per-worker witness
// scratch, and commits shortcuts at a barrier (DESIGN.md §14). Witness
// searches insert a shortcut u-w only when no witness path of length
// <= (1 + epsilon) * (w(u,v) + w(v,w)) avoids the contracted vertex;
// commit-time searches additionally avoid the whole current batch so a
// witness cannot vanish when its own interior is contracted in the same
// round. epsilon = 0 gives the exact CH (bounded witness searches only ever
// add *extra* shortcuts, preserving exactness); epsilon > 0 gives ACH,
// which drops near-redundant shortcuts at the cost of an error that
// compounds along the hierarchy (the paper measures ~4% at epsilon = 0.1).
// The schedule is a pure function of the graph, so every num_threads value
// (including 1) builds the bit-identical index.
//
// Queries run a bidirectional upward Dijkstra over the order: both sides
// relax only edges leading to more important vertices.
#ifndef RNE_BASELINES_CH_H_
#define RNE_BASELINES_CH_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "baselines/method.h"
#include "util/status.h"

namespace rne {

struct ChOptions {
  /// Relative witness tolerance; 0 = exact CH, > 0 = ACH.
  double epsilon = 0.0;
  /// Max settled vertices per witness search (bounds construction time;
  /// failed searches only add redundant shortcuts, never break exactness).
  size_t witness_settle_limit = 500;
  /// Contraction workers; 0 = hardware concurrency. The batch schedule is
  /// deterministic, so every thread count builds the identical index.
  size_t num_threads = 0;
};

class ContractionHierarchy : public DistanceMethod {
 public:
  ContractionHierarchy(const Graph& g, const ChOptions& options = {});

  std::string Name() const override {
    return options_.epsilon > 0.0 ? "ACH" : "CH";
  }
  double Query(VertexId s, VertexId t) override;
  size_t IndexBytes() const override;
  bool IsExact() const override { return options_.epsilon == 0.0; }

  size_t num_shortcuts() const { return num_shortcuts_; }
  /// Vertices settled by the last query (search-space diagnostics, Fig 13).
  size_t last_settled() const { return last_settled_; }

  /// Shortest path s -> t as a vertex sequence, with shortcuts recursively
  /// unpacked into original edges. Empty when unreachable. Exact when
  /// epsilon == 0; for ACH it is the path realizing Query()'s distance.
  std::vector<VertexId> Path(VertexId s, VertexId t);

  /// Persists the contracted index (order + upward graph); loading skips
  /// the expensive contraction entirely.
  Status Save(const std::string& path) const;
  static StatusOr<ContractionHierarchy> Load(const std::string& path);

 private:
  ContractionHierarchy() = default;
  struct UpEdge {
    VertexId to;
    double weight;
    /// Contracted middle vertex for shortcut edges; kInvalidVertex for
    /// original road segments.
    VertexId via;
  };

  void Build(const Graph& g);
  /// Expands the (possibly shortcut) edge u -> v into original vertices,
  /// appending everything after `u` to `out`.
  void UnpackEdge(VertexId u, VertexId v, std::vector<VertexId>* out) const;
  /// Weight and middle vertex of the stored up-edge between u and v (the
  /// lower-ranked endpoint owns it).
  const UpEdge* FindUpEdge(VertexId u, VertexId v) const;

  ChOptions options_;
  size_t n_ = 0;
  std::vector<uint32_t> rank_;          // contraction order per vertex
  std::vector<uint32_t> up_offsets_;    // CSR of upward edges
  std::vector<UpEdge> up_edges_;
  size_t num_shortcuts_ = 0;
  size_t last_settled_ = 0;

  // Query workspace (version-stamped, one per direction).
  std::vector<double> dist_[2];
  std::vector<uint32_t> version_[2];
  uint32_t current_version_ = 0;
};

}  // namespace rne

#endif  // RNE_BASELINES_CH_H_
