#include "baselines/network_knn.h"

#include <queue>

namespace rne {

NetworkKnn::NetworkKnn(const Graph& g, std::vector<VertexId> targets)
    : g_(g), is_target_(g.NumVertices(), 0), search_(g) {
  if (targets.empty()) {
    std::fill(is_target_.begin(), is_target_.end(), 1);
    num_targets_ = g.NumVertices();
  } else {
    for (const VertexId v : targets) {
      RNE_CHECK(v < g.NumVertices());
      if (!is_target_[v]) {
        is_target_[v] = 1;
        ++num_targets_;
      }
    }
  }
}

std::vector<std::pair<VertexId, double>> NetworkKnn::Knn(VertexId source,
                                                         size_t k) {
  std::vector<std::pair<VertexId, double>> result;
  if (k == 0 || num_targets_ == 0) return result;
  k = std::min(k, num_targets_);
  // Dedicated expansion (DijkstraSearch has no "stop after k targets" mode):
  // plain Dijkstra that records targets as they settle.
  std::vector<double> dist(g_.NumVertices(), kInfDistance);
  std::priority_queue<std::pair<double, VertexId>,
                      std::vector<std::pair<double, VertexId>>, std::greater<>>
      queue;
  dist[source] = 0.0;
  queue.emplace(0.0, source);
  while (!queue.empty() && result.size() < k) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > dist[v]) continue;
    if (is_target_[v]) result.emplace_back(v, d);
    for (const Edge& e : g_.Neighbors(v)) {
      const double nd = d + e.weight;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        queue.emplace(nd, e.to);
      }
    }
  }
  return result;
}

std::vector<VertexId> NetworkKnn::Range(VertexId source, double tau) {
  std::vector<VertexId> result;
  for (const auto& [v, d] : search_.WithinRadius(source, tau)) {
    if (is_target_[v]) result.push_back(v);
  }
  return result;
}

}  // namespace rne
