// H2H [22]: tree-decomposition hierarchy + hop labeling, exact distances.
//
// Construction:
//  1. Eliminate vertices in minimum-degree order; eliminating v connects its
//     remaining neighbors with fill-in shortcuts (w(a,v) + w(v,b)). The
//     neighbor set at elimination time is v's bag X(v).
//  2. The elimination tree: parent(v) = the bag member eliminated first;
//     every bag member lies on v's root path (the tree-decomposition cut
//     property).
//  3. Top-down labeling: dist(v, a) for every ancestor a via the bag
//     recurrence d(v,a) = min_{x in X(v)} w(v,x) + d(x,a).
// Query: d(s,t) = min over the bag positions of LCA(s,t) of
// ds[pos] + dt[pos] — O(tree width) with an O(log) LCA.
//
// The label arrays are O(|V| * tree height): the big-index/fast-query
// trade-off the paper reports for H2H in Table IV.
#ifndef RNE_BASELINES_H2H_H_
#define RNE_BASELINES_H2H_H_

#include <cstdint>
#include <vector>

#include "baselines/method.h"
#include "util/status.h"

namespace rne {

struct H2HOptions {
  /// Labeling workers; 0 = hardware concurrency. The elimination order is
  /// computed serially and labels are pure functions of the tree, so every
  /// thread count builds the bit-identical index (labels are parallel
  /// across independent elimination-tree subtrees).
  size_t num_threads = 0;
};

class H2HIndex : public DistanceMethod {
 public:
  explicit H2HIndex(const Graph& g, const H2HOptions& options = {});

  std::string Name() const override { return "H2H"; }
  double Query(VertexId s, VertexId t) override;
  size_t IndexBytes() const override;
  bool IsExact() const override { return true; }

  /// Max bag size (graph tree-width + 1) — the query-cost driver.
  size_t max_bag_size() const { return max_bag_size_; }
  /// Max tree depth — the label-size driver.
  size_t tree_height() const { return tree_height_; }

  /// Lowest common ancestor in the elimination tree (exposed for tests).
  VertexId Lca(VertexId u, VertexId v) const;

  /// Persists the labels + tree; loading skips the elimination entirely.
  Status Save(const std::string& path) const;
  static StatusOr<H2HIndex> Load(const std::string& path);

 private:
  H2HIndex() = default;
  void Build(const Graph& g, const H2HOptions& options);

  size_t n_ = 0;
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> depth_;
  std::vector<uint32_t> root_of_;  // component root per vertex
  std::vector<std::vector<uint32_t>> up_;    // binary-lifting table
  std::vector<std::vector<double>> label_;   // label_[v][i] = d(v, anc@depth i)
  std::vector<std::vector<uint32_t>> pos_;   // bag-member depths per vertex
  size_t max_bag_size_ = 0;
  size_t tree_height_ = 0;
};

}  // namespace rne

#endif  // RNE_BASELINES_H2H_H_
