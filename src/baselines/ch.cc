#include "baselines/ch.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace rne {

namespace {

/// Live overlay graph during contraction: adjacency maps with min-weight
/// semantics, entries to contracted vertices skipped by the callers.
using LiveAdj = std::vector<std::unordered_map<VertexId, double>>;

void AddOrRelax(LiveAdj& adj, VertexId u, VertexId v, double w) {
  auto [it, inserted] = adj[u].try_emplace(v, w);
  if (!inserted && w < it->second) it->second = w;
}

/// Bounded Dijkstra for witness searches over the live graph.
class WitnessSearch {
 public:
  explicit WitnessSearch(size_t n)
      : dist_(n, kInfDistance), version_(n, 0) {}

  /// Shortest u -> w distance avoiding `exclude` and every vertex with
  /// blocked[v] set (contracted vertices, plus the current batch during
  /// parallel contraction), aborting beyond `limit` distance or
  /// `settle_limit` settled vertices. Returns kInfDistance when aborted.
  double Distance(const LiveAdj& adj, const std::vector<char>& blocked,
                  VertexId u, VertexId w, VertexId exclude, double limit,
                  size_t settle_limit) {
    ++version_counter_;
    if (version_counter_ == 0) {
      std::fill(version_.begin(), version_.end(), 0);
      version_counter_ = 1;
    }
    auto touch = [&](VertexId v) {
      if (version_[v] != version_counter_) {
        version_[v] = version_counter_;
        dist_[v] = kInfDistance;
      }
    };
    std::priority_queue<std::pair<double, VertexId>,
                        std::vector<std::pair<double, VertexId>>,
                        std::greater<>>
        queue;
    touch(u);
    dist_[u] = 0.0;
    queue.emplace(0.0, u);
    size_t settled = 0;
    while (!queue.empty()) {
      const auto [d, v] = queue.top();
      queue.pop();
      if (d > dist_[v]) continue;
      if (v == w) return d;
      if (d > limit) return kInfDistance;
      if (++settled > settle_limit) return kInfDistance;
      for (const auto& [to, weight] : adj[v]) {
        if (to == exclude || blocked[to]) continue;
        touch(to);
        const double nd = d + weight;
        if (nd < dist_[to] && nd <= limit) {
          dist_[to] = nd;
          queue.emplace(nd, to);
        }
      }
    }
    return kInfDistance;
  }

 private:
  std::vector<double> dist_;
  std::vector<uint32_t> version_;
  uint32_t version_counter_ = 0;
};

}  // namespace

ContractionHierarchy::ContractionHierarchy(const Graph& g,
                                           const ChOptions& options)
    : options_(options), n_(g.NumVertices()) {
  RNE_CHECK(options_.epsilon >= 0.0);
  for (int side = 0; side < 2; ++side) {
    dist_[side].assign(n_, kInfDistance);
    version_[side].assign(n_, 0);
  }
  Build(g);
}

void ContractionHierarchy::Build(const Graph& g) {
  RNE_SPAN("build.ch");
  LiveAdj live(n_);
  for (VertexId v = 0; v < n_; ++v) {
    for (const Edge& e : g.Neighbors(v)) AddOrRelax(live, v, e.to, e.weight);
  }
  // All edges ever present (original + shortcuts) feed the upward graph.
  struct FullEdge {
    VertexId u, v;
    double w;
    VertexId via;  // contracted middle vertex; kInvalidVertex for originals
  };
  std::vector<FullEdge> all_edges;
  all_edges.reserve(g.NumHalfEdges());
  for (VertexId v = 0; v < n_; ++v) {
    for (const Edge& e : g.Neighbors(v)) {
      if (v < e.to) all_edges.push_back({v, e.to, e.weight, kInvalidVertex});
    }
  }

  std::vector<char> contracted(n_, 0);
  // contracted | current batch: what commit-time witness searches must avoid.
  std::vector<char> blocked(n_, 0);
  std::vector<uint32_t> contracted_neighbors(n_, 0);
  std::vector<uint32_t> level(n_, 0);

  // Independent-set batch contraction (DESIGN.md §14). Workers share nothing
  // but the frozen overlay between barriers; each owns a WitnessSearch slot
  // picked by ThreadPool::CurrentWorkerIndex(). num_threads == 1 runs inline
  // with zero pool overhead and — the schedule being deterministic —
  // produces the bit-identical index.
  const size_t num_threads = ResolveNumThreads(options_.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1 && n_ > 1) {
    pool = std::make_unique<ThreadPool>(num_threads);
  }
  std::vector<std::unique_ptr<WitnessSearch>> scratch(num_threads);
  auto witness_for_worker = [&]() -> WitnessSearch& {
    size_t slot = ThreadPool::CurrentWorkerIndex();
    if (slot == ThreadPool::kNotAWorker) slot = 0;
    if (!scratch[slot]) scratch[slot] = std::make_unique<WitnessSearch>(n_);
    return *scratch[slot];
  };
  auto parallel_for = [&](size_t count,
                          const std::function<void(size_t)>& fn) {
    if (pool) {
      pool->ParallelFor(count, fn);
    } else {
      for (size_t i = 0; i < count; ++i) fn(i);
    }
  };

  // Counts (and optionally collects, when out != nullptr) the shortcuts
  // required to contract v against the `avoid` view of the overlay.
  // Neighbours are visited in ascending id order so witness-search call
  // sequences — and thus settle-limit effects — are reproducible.
  auto simulate = [&](VertexId v, const std::vector<char>& avoid,
                      std::vector<FullEdge>* out) -> int {
    WitnessSearch& witness = witness_for_worker();
    std::vector<std::pair<VertexId, double>> nbrs;
    nbrs.reserve(live[v].size());
    for (const auto& [to, w] : live[v]) {
      if (!contracted[to]) nbrs.emplace_back(to, w);
    }
    std::sort(nbrs.begin(), nbrs.end());
    int shortcuts = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        const auto [u, wu] = nbrs[i];
        const auto [w, ww] = nbrs[j];
        const double via = wu + ww;
        const double tolerated = via * (1.0 + options_.epsilon);
        const double witness_dist = witness.Distance(
            live, avoid, u, w, v, tolerated, options_.witness_settle_limit);
        if (witness_dist <= tolerated) continue;  // witness path suffices
        ++shortcuts;
        if (out) out->push_back({u, w, via, v});
      }
    }
    return shortcuts - static_cast<int>(nbrs.size());
  };

  // The priority combines edge difference, contracted-neighbor count, and
  // depth (the `level` term); without the latter two, tie-heavy grid
  // regions contract in a checkerboard pattern whose fill-in densifies the
  // overlay quadratically. Priorities are cached and recomputed only for
  // vertices whose neighbourhood changed since the last round.
  std::vector<double> priority(n_, 0.0);
  std::vector<char> dirty(n_, 1);
  std::vector<VertexId> remaining(n_);
  for (VertexId v = 0; v < n_; ++v) remaining[v] = v;
  std::vector<VertexId> to_rank;
  std::vector<VertexId> batch;
  std::vector<std::vector<FullEdge>> batch_shortcuts;

  rank_.assign(n_, 0);
  uint32_t next_rank = 0;
  size_t rounds = 0;
  while (!remaining.empty()) {
    ++rounds;
    // Rank: refresh stale priorities in parallel over the frozen overlay.
    to_rank.clear();
    for (const VertexId v : remaining) {
      if (dirty[v]) to_rank.push_back(v);
    }
    parallel_for(to_rank.size(), [&](size_t i) {
      const VertexId v = to_rank[i];
      priority[v] = static_cast<double>(simulate(v, contracted, nullptr)) +
                    2.0 * contracted_neighbors[v] + level[v];
      dirty[v] = 0;
    });

    // Select: v joins the batch iff (priority, id) is a strict local
    // minimum over its uncontracted neighbourhood. No two adjacent vertices
    // qualify, and the global minimum always does, so progress is
    // guaranteed and the batch is an independent set.
    batch.clear();
    for (const VertexId v : remaining) {
      bool is_min = true;
      for (const auto& [to, w] : live[v]) {
        (void)w;
        if (contracted[to]) continue;
        if (std::make_pair(priority[to], to) <
            std::make_pair(priority[v], v)) {
          is_min = false;
          break;
        }
      }
      if (is_min) batch.push_back(v);
    }
    for (const VertexId v : batch) blocked[v] = 1;

    // Contract: simulate every batch member concurrently. Witness searches
    // avoid the whole batch (not just the member being contracted) so a
    // witness found here still exists after the barrier commit; a missed
    // witness only adds a redundant shortcut, never breaks exactness.
    batch_shortcuts.assign(batch.size(), {});
    parallel_for(batch.size(), [&](size_t i) {
      simulate(batch[i], blocked, &batch_shortcuts[i]);
    });

    // Commit at the barrier, in deterministic batch order. Batch members
    // are pairwise non-adjacent, so shortcut endpoints are never batch
    // members and intra-batch rank order is immaterial for correctness —
    // but ascending id keeps it reproducible.
    for (size_t i = 0; i < batch.size(); ++i) {
      const VertexId v = batch[i];
      contracted[v] = 1;
      rank_[v] = next_rank++;
      for (const FullEdge& s : batch_shortcuts[i]) {
        AddOrRelax(live, s.u, s.v, s.w);
        AddOrRelax(live, s.v, s.u, s.w);
        all_edges.push_back(s);
        ++num_shortcuts_;
      }
    }
    for (const VertexId v : batch) {
      for (const auto& [to, w] : live[v]) {
        (void)w;
        if (contracted[to]) continue;
        contracted_neighbors[to] += 1;
        level[to] = std::max(level[to], level[v] + 1);
        dirty[to] = 1;
      }
    }
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [&](VertexId v) { return contracted[v]; }),
                    remaining.end());
  }
  RNE_COUNTER_ADD("build.ch.rounds", rounds);
  RNE_COUNTER_ADD("build.ch.shortcuts", num_shortcuts_);

  // Upward CSR: edge (u, v) goes into the adjacency of the lower-ranked
  // endpoint, pointing at the higher-ranked one. Keep min weight per pair.
  std::sort(all_edges.begin(), all_edges.end(), [&](const FullEdge& a,
                                                    const FullEdge& b) {
    const VertexId alo = rank_[a.u] < rank_[a.v] ? a.u : a.v;
    const VertexId ahi = alo == a.u ? a.v : a.u;
    const VertexId blo = rank_[b.u] < rank_[b.v] ? b.u : b.v;
    const VertexId bhi = blo == b.u ? b.v : b.u;
    if (alo != blo) return alo < blo;
    if (ahi != bhi) return ahi < bhi;
    if (a.w != b.w) return a.w < b.w;
    return a.via < b.via;  // total order: dedup keeps a deterministic edge
  });
  up_offsets_.assign(n_ + 1, 0);
  std::vector<UpEdge> edges;
  edges.reserve(all_edges.size());
  VertexId prev_lo = kInvalidVertex, prev_hi = kInvalidVertex;
  for (const FullEdge& e : all_edges) {
    const VertexId lo = rank_[e.u] < rank_[e.v] ? e.u : e.v;
    const VertexId hi = lo == e.u ? e.v : e.u;
    if (lo == prev_lo && hi == prev_hi) continue;  // duplicate, larger weight
    prev_lo = lo;
    prev_hi = hi;
    edges.push_back({hi, e.w, e.via});
    up_offsets_[lo + 1] += 1;
  }
  // `edges` is grouped by lo already (sort order), so a prefix sum finishes
  // the CSR.
  for (size_t i = 1; i <= n_; ++i) up_offsets_[i] += up_offsets_[i - 1];
  up_edges_ = std::move(edges);
}

double ContractionHierarchy::Query(VertexId s, VertexId t) {
  RNE_CHECK(s < n_ && t < n_);
  if (s == t) return 0.0;
  ++current_version_;
  if (current_version_ == 0) {
    for (int side = 0; side < 2; ++side) {
      std::fill(version_[side].begin(), version_[side].end(), 0);
    }
    current_version_ = 1;
  }
  last_settled_ = 0;
  auto touch = [&](int side, VertexId v) {
    if (version_[side][v] != current_version_) {
      version_[side][v] = current_version_;
      dist_[side][v] = kInfDistance;
    }
  };

  using PqEntry = std::pair<double, VertexId>;
  std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<>> queue[2];
  touch(0, s);
  touch(1, t);
  dist_[0][s] = 0.0;
  dist_[1][t] = 0.0;
  queue[0].emplace(0.0, s);
  queue[1].emplace(0.0, t);
  double best = kInfDistance;

  for (int side = 0; !queue[0].empty() || !queue[1].empty();
       side = 1 - side) {
    if (queue[side].empty()) side = 1 - side;
    const auto [d, v] = queue[side].top();
    if (d >= best) {
      // This direction can no longer improve; drain the other one.
      std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<>>
          empty_queue;
      queue[side].swap(empty_queue);
      continue;
    }
    queue[side].pop();
    if (d > dist_[side][v]) continue;
    ++last_settled_;
    touch(1 - side, v);
    if (dist_[1 - side][v] != kInfDistance) {
      best = std::min(best, d + dist_[1 - side][v]);
    }
    for (uint32_t i = up_offsets_[v]; i < up_offsets_[v + 1]; ++i) {
      const UpEdge& e = up_edges_[i];
      touch(side, e.to);
      const double nd = d + e.weight;
      if (nd < dist_[side][e.to]) {
        dist_[side][e.to] = nd;
        queue[side].emplace(nd, e.to);
      }
    }
  }
  return best;
}

const ContractionHierarchy::UpEdge* ContractionHierarchy::FindUpEdge(
    VertexId u, VertexId v) const {
  const VertexId lo = rank_[u] < rank_[v] ? u : v;
  const VertexId hi = lo == u ? v : u;
  for (uint32_t i = up_offsets_[lo]; i < up_offsets_[lo + 1]; ++i) {
    if (up_edges_[i].to == hi) return &up_edges_[i];
  }
  return nullptr;
}

void ContractionHierarchy::UnpackEdge(VertexId u, VertexId v,
                                      std::vector<VertexId>* out) const {
  const UpEdge* edge = FindUpEdge(u, v);
  RNE_CHECK_MSG(edge != nullptr, "path hop without a stored up-edge");
  if (edge->via == kInvalidVertex) {
    out->push_back(v);
    return;
  }
  UnpackEdge(u, edge->via, out);
  UnpackEdge(edge->via, v, out);
}

std::vector<VertexId> ContractionHierarchy::Path(VertexId s, VertexId t) {
  RNE_CHECK(s < n_ && t < n_);
  if (s == t) return {s};
  // Bidirectional upward search with parent tracking (separate from the
  // distance-only Query to keep that hot path lean).
  std::vector<double> dist[2];
  std::vector<VertexId> parent[2];
  for (int side = 0; side < 2; ++side) {
    dist[side].assign(n_, kInfDistance);
    parent[side].assign(n_, kInvalidVertex);
  }
  using PqEntry = std::pair<double, VertexId>;
  std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<>> queue[2];
  dist[0][s] = 0.0;
  dist[1][t] = 0.0;
  queue[0].emplace(0.0, s);
  queue[1].emplace(0.0, t);
  double best = kInfDistance;
  VertexId meet = kInvalidVertex;
  for (int side = 0; !queue[0].empty() || !queue[1].empty();
       side = 1 - side) {
    if (queue[side].empty()) side = 1 - side;
    const auto [d, v] = queue[side].top();
    if (d >= best) {
      std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<>>
          empty_queue;
      queue[side].swap(empty_queue);
      continue;
    }
    queue[side].pop();
    if (d > dist[side][v]) continue;
    if (dist[1 - side][v] != kInfDistance &&
        d + dist[1 - side][v] < best) {
      best = d + dist[1 - side][v];
      meet = v;
    }
    for (uint32_t i = up_offsets_[v]; i < up_offsets_[v + 1]; ++i) {
      const UpEdge& e = up_edges_[i];
      const double nd = d + e.weight;
      if (nd < dist[side][e.to]) {
        dist[side][e.to] = nd;
        parent[side][e.to] = v;
        queue[side].emplace(nd, e.to);
      }
    }
  }
  if (meet == kInvalidVertex) return {};

  // Up-graph hop sequences s -> meet and meet -> t.
  std::vector<VertexId> forward;
  for (VertexId v = meet; v != kInvalidVertex; v = parent[0][v]) {
    forward.push_back(v);
  }
  std::reverse(forward.begin(), forward.end());  // s ... meet
  std::vector<VertexId> backward;
  for (VertexId v = meet; v != kInvalidVertex; v = parent[1][v]) {
    backward.push_back(v);  // meet ... t
  }

  // Unpack every hop into original vertices.
  std::vector<VertexId> path = {s};
  for (size_t i = 1; i < forward.size(); ++i) {
    UnpackEdge(forward[i - 1], forward[i], &path);
  }
  for (size_t i = 1; i < backward.size(); ++i) {
    UnpackEdge(backward[i - 1], backward[i], &path);
  }
  return path;
}

size_t ContractionHierarchy::IndexBytes() const {
  return up_offsets_.size() * sizeof(uint32_t) +
         up_edges_.size() * sizeof(UpEdge) + rank_.size() * sizeof(uint32_t);
}

Status ContractionHierarchy::Save(const std::string& path) const {
  BinaryWriter w(path, kChMagic);
  if (!w.ok()) return Status::IoError("cannot open " + path + ".tmp");
  w.WritePod(options_.epsilon);
  w.WritePod<uint64_t>(n_);
  w.WritePod<uint64_t>(num_shortcuts_);
  w.WriteVector(rank_);
  w.WriteVector(up_offsets_);
  w.WriteVector(up_edges_);
  return w.Finish();
}

StatusOr<ContractionHierarchy> ContractionHierarchy::Load(
    const std::string& path) {
  BinaryReader r(path, kChMagic);
  if (!r.ok()) return r.status();
  ContractionHierarchy ch;
  uint64_t n = 0, shortcuts = 0;
  if (!r.ReadPod(&ch.options_.epsilon) || !r.ReadPod(&n) ||
      !r.ReadPod(&shortcuts) || !r.ReadVector(&ch.rank_) ||
      !r.ReadVector(&ch.up_offsets_) || !r.ReadVector(&ch.up_edges_)) {
    return r.ReadError("corrupt CH index " + path);
  }
  RNE_RETURN_IF_ERROR(r.Finish());
  ch.n_ = n;
  ch.num_shortcuts_ = shortcuts;
  if (ch.rank_.size() != n || ch.up_offsets_.size() != n + 1 ||
      ch.up_offsets_.back() != ch.up_edges_.size()) {
    return Status::Corruption("inconsistent CH index " + path);
  }
  for (int side = 0; side < 2; ++side) {
    ch.dist_[side].assign(n, kInfDistance);
    ch.version_[side].assign(n, 0);
  }
  return ch;
}

}  // namespace rne
