// 2-d KD-tree over vertex coordinates, the index behind the Euclidean /
// Manhattan baselines for range and kNN queries (Fig 16).
#ifndef RNE_BASELINES_KD_TREE_H_
#define RNE_BASELINES_KD_TREE_H_

#include <utility>
#include <vector>

#include "baselines/geo.h"
#include "graph/graph.h"

namespace rne {

/// Static KD-tree over a target subset of vertices; queries measure
/// geometric (L1 or L2) distance between coordinates.
class KdTree {
 public:
  /// Indexes `targets` (vertex ids of g). Empty targets = all vertices.
  KdTree(const Graph& g, GeoMetric metric,
         std::vector<VertexId> targets = {});

  /// Targets within geometric distance tau of vertex `source`.
  std::vector<VertexId> Range(VertexId source, double tau) const;

  /// k targets nearest to `source` by geometric distance, sorted ascending,
  /// as (vertex, distance).
  std::vector<std::pair<VertexId, double>> Knn(VertexId source,
                                               size_t k) const;

  size_t MemoryBytes() const {
    return nodes_.size() * sizeof(NodeRec) + points_.size() * sizeof(Item);
  }

 private:
  struct Item {
    Point p;
    VertexId v;
  };
  struct NodeRec {
    // Leaf: [begin, end) into points_. Internal: split axis/value + children.
    uint32_t begin = 0, end = 0;
    int32_t left = -1, right = -1;
    int axis = 0;
    double split = 0.0;
    bool IsLeaf() const { return left < 0; }
  };

  double Dist(const Point& a, const Point& b) const;
  int32_t BuildNode(uint32_t begin, uint32_t end, int depth);
  void RangeRec(int32_t node, const Point& q, double tau,
                std::vector<VertexId>* out) const;

  GeoMetric metric_;
  std::vector<Item> points_;
  std::vector<NodeRec> nodes_;
  int32_t root_ = -1;
  const Graph& g_;
};

}  // namespace rne

#endif  // RNE_BASELINES_KD_TREE_H_
