// Coordinate-only distance estimators (the paper's Euclidean / Manhattan
// baselines): estimate the network distance from vertex coordinates alone,
// optionally corrected by a calibration factor fitted on sample pairs
// (raw straight-line distance systematically underestimates road distance).
#ifndef RNE_BASELINES_GEO_H_
#define RNE_BASELINES_GEO_H_

#include <vector>

#include "algo/distance_sampler.h"
#include "baselines/method.h"

namespace rne {

enum class GeoMetric { kEuclidean, kManhattan };

/// Straight-line estimator with a multiplicative calibration factor.
class GeoEstimator : public DistanceMethod {
 public:
  /// factor = 1.0 reproduces the raw baseline.
  GeoEstimator(const Graph& g, GeoMetric metric, double factor = 1.0);

  /// Fits the factor minimizing squared relative error on `samples`
  /// (the least-squares ratio sum(d_geo * d_true) / sum(d_geo^2)).
  void Calibrate(const std::vector<DistanceSample>& samples);

  std::string Name() const override;
  double Query(VertexId s, VertexId t) override;
  size_t IndexBytes() const override {
    return g_.NumVertices() * sizeof(Point);
  }
  bool IsExact() const override { return false; }

  double factor() const { return factor_; }

 private:
  const Graph& g_;
  GeoMetric metric_;
  double factor_;
};

}  // namespace rne

#endif  // RNE_BASELINES_GEO_H_
