#include "baselines/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace rne {

namespace {
constexpr uint32_t kLeafSize = 16;
}  // namespace

KdTree::KdTree(const Graph& g, GeoMetric metric, std::vector<VertexId> targets)
    : metric_(metric), g_(g) {
  if (targets.empty()) {
    targets.resize(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) targets[v] = v;
  }
  points_.reserve(targets.size());
  for (const VertexId v : targets) {
    RNE_CHECK(v < g.NumVertices());
    points_.push_back({g.Coord(v), v});
  }
  if (!points_.empty()) {
    root_ = BuildNode(0, static_cast<uint32_t>(points_.size()), 0);
  }
}

double KdTree::Dist(const Point& a, const Point& b) const {
  return metric_ == GeoMetric::kEuclidean
             ? std::hypot(a.x - b.x, a.y - b.y)
             : std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

int32_t KdTree::BuildNode(uint32_t begin, uint32_t end, int depth) {
  NodeRec rec;
  rec.begin = begin;
  rec.end = end;
  const auto id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(rec);
  if (end - begin <= kLeafSize) return id;

  const int axis = depth % 2;
  const uint32_t mid = (begin + end) / 2;
  std::nth_element(points_.begin() + begin, points_.begin() + mid,
                   points_.begin() + end, [axis](const Item& a, const Item& b) {
                     return axis == 0 ? a.p.x < b.p.x : a.p.y < b.p.y;
                   });
  const double split =
      axis == 0 ? points_[mid].p.x : points_[mid].p.y;
  const int32_t left = BuildNode(begin, mid, depth + 1);
  const int32_t right = BuildNode(mid, end, depth + 1);
  nodes_[id].axis = axis;
  nodes_[id].split = split;
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void KdTree::RangeRec(int32_t node, const Point& q, double tau,
                      std::vector<VertexId>* out) const {
  const NodeRec& rec = nodes_[node];
  if (rec.IsLeaf()) {
    for (uint32_t i = rec.begin; i < rec.end; ++i) {
      if (Dist(points_[i].p, q) <= tau) out->push_back(points_[i].v);
    }
    return;
  }
  const double coord = rec.axis == 0 ? q.x : q.y;
  // |coord - split| lower-bounds both metrics' distance across the plane.
  if (coord - tau <= rec.split) RangeRec(rec.left, q, tau, out);
  if (coord + tau >= rec.split) RangeRec(rec.right, q, tau, out);
}

std::vector<VertexId> KdTree::Range(VertexId source, double tau) const {
  std::vector<VertexId> out;
  if (root_ >= 0) RangeRec(root_, g_.Coord(source), tau, &out);
  return out;
}

std::vector<std::pair<VertexId, double>> KdTree::Knn(VertexId source,
                                                     size_t k) const {
  std::vector<std::pair<VertexId, double>> result;
  if (root_ < 0 || k == 0) return result;
  const Point q = g_.Coord(source);

  // Best-first over tree nodes keyed by the distance lower bound to the
  // node's region along the split planes crossed so far.
  struct Entry {
    double bound;
    int32_t node;
    bool operator>(const Entry& o) const { return bound > o.bound; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  std::priority_queue<std::pair<double, VertexId>> best;  // max-heap of k best
  queue.push({0.0, root_});
  while (!queue.empty()) {
    const auto [bound, node] = queue.top();
    queue.pop();
    if (best.size() == k && bound >= best.top().first) break;
    const NodeRec& rec = nodes_[node];
    if (rec.IsLeaf()) {
      for (uint32_t i = rec.begin; i < rec.end; ++i) {
        const double d = Dist(points_[i].p, q);
        if (best.size() < k) {
          best.emplace(d, points_[i].v);
        } else if (d < best.top().first) {
          best.pop();
          best.emplace(d, points_[i].v);
        }
      }
      continue;
    }
    const double coord = rec.axis == 0 ? q.x : q.y;
    const double plane_gap = std::abs(coord - rec.split);
    if (coord <= rec.split) {
      queue.push({bound, rec.left});
      queue.push({std::max(bound, plane_gap), rec.right});
    } else {
      queue.push({bound, rec.right});
      queue.push({std::max(bound, plane_gap), rec.left});
    }
  }
  result.reserve(best.size());
  while (!best.empty()) {
    result.emplace_back(best.top().second, best.top().first);
    best.pop();
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace rne
