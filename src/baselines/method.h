// Common interface for point-to-point distance methods, used by the
// benchmark harnesses to sweep over {Euclidean, Manhattan, CH, ACH, H2H,
// Distance Oracle, LT, RNE} uniformly.
#ifndef RNE_BASELINES_METHOD_H_
#define RNE_BASELINES_METHOD_H_

#include <string>

#include "graph/graph.h"

namespace rne {

/// A built distance index answering point-to-point queries.
/// Query() is non-const because search-based methods reuse internal
/// workspaces; instances are not thread-safe.
class DistanceMethod {
 public:
  virtual ~DistanceMethod() = default;

  virtual std::string Name() const = 0;
  /// (Approximate) shortest-path distance s -> t.
  virtual double Query(VertexId s, VertexId t) = 0;
  /// In-memory index footprint in bytes (0 for search-only methods).
  virtual size_t IndexBytes() const = 0;
  /// True if Query returns exact shortest distances.
  virtual bool IsExact() const = 0;
};

}  // namespace rne

#endif  // RNE_BASELINES_METHOD_H_
