// Distance oracle in the style of Sankaranarayanan & Samet [27]:
// a well-separated pair decomposition over a point quadtree of the vertices.
//
// Every vertex pair (s, t) is covered by exactly one block pair (A, B) with
// diam(A) + diam(B) <= epsilon * dist(A, B); the oracle stores one exact
// network distance between block representatives per pair and answers any
// query inside the pair with that value — O(log |V|) descent, epsilon-bounded
// relative error. The pair set is Theta(|V| / eps^2)-ish, which is why the
// paper finds the oracle's index huge and only builds it on the smallest
// dataset; we reproduce that trade-off.
#ifndef RNE_BASELINES_DISTANCE_ORACLE_H_
#define RNE_BASELINES_DISTANCE_ORACLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "baselines/method.h"

namespace rne {

struct DistanceOracleOptions {
  /// Approximation parameter (paper uses 0.5 on BJ).
  double epsilon = 0.5;
  /// Maximum quadtree depth (splitting stops regardless of occupancy).
  size_t max_depth = 24;
  size_t num_threads = 0;
};

class DistanceOracle : public DistanceMethod {
 public:
  DistanceOracle(const Graph& g, const DistanceOracleOptions& options = {});

  std::string Name() const override { return "DistanceOracle"; }
  double Query(VertexId s, VertexId t) override;
  size_t IndexBytes() const override;
  bool IsExact() const override { return false; }

  size_t num_pairs() const { return pair_dist_.size(); }
  size_t num_tree_nodes() const { return nodes_.size(); }

 private:
  struct QuadNode {
    double cx, cy, half;      // square center + half side
    double diameter;          // of the contained points (0 for singletons)
    int32_t children[4];      // -1 when absent
    VertexId representative;  // vertex closest to the center
    bool IsLeaf() const {
      return children[0] < 0 && children[1] < 0 && children[2] < 0 &&
             children[3] < 0;
    }
  };

  int32_t BuildNode(std::vector<VertexId>& vertices, double cx, double cy,
                    double half, size_t depth);
  /// Splits the larger-diameter side; identical rule at build and query time
  /// so the query descent retraces the decomposition.
  void FindPairs(int32_t a, int32_t b);
  bool WellSeparated(int32_t a, int32_t b) const;
  static uint64_t PairKey(int32_t a, int32_t b) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  }
  /// Child of `node` containing vertex v (must exist).
  int32_t ChildContaining(int32_t node, VertexId v) const;

  const Graph& g_;
  DistanceOracleOptions options_;
  std::vector<QuadNode> nodes_;
  int32_t root_ = -1;
  /// (nodeA, nodeB) -> representative network distance. Both orientations
  /// stored, so query needs one lookup per descent step.
  std::unordered_map<uint64_t, double> pair_dist_;
  /// Build-time staging: pairs awaiting representative distances.
  std::vector<std::pair<int32_t, int32_t>> pending_pairs_;
};

}  // namespace rne

#endif  // RNE_BASELINES_DISTANCE_ORACLE_H_
