#include "baselines/alt.h"

#include <algorithm>
#include <cmath>

#include "algo/dijkstra.h"
#include "algo/landmarks.h"
#include "obs/trace.h"
#include "util/serialize.h"

namespace rne {

AltIndex::AltIndex(const Graph& g, size_t num_landmarks, Rng& rng,
                   size_t num_threads)
    : num_vertices_(g.NumVertices()),
      astar_(std::make_unique<AStarSearch>(g)) {
  RNE_SPAN("build.alt");
  landmarks_ = SelectLandmarksFarthest(g, num_landmarks, rng);
  num_landmarks_ = landmarks_.size();
  RNE_CHECK(num_landmarks_ > 0);
  landmark_dist_ = ComputeLandmarkDistances(g, landmarks_, num_threads);
}

double AltIndex::LowerBound(VertexId s, VertexId t) const {
  double best = 0.0;
  for (size_t i = 0; i < num_landmarks_; ++i) {
    const double ds = LandmarkDist(i, s);
    const double dt = LandmarkDist(i, t);
    if (ds == kInfDistance || dt == kInfDistance) continue;
    best = std::max(best, std::abs(ds - dt));
  }
  return best;
}

double AltIndex::UpperBound(VertexId s, VertexId t) const {
  double best = kInfDistance;
  for (size_t i = 0; i < num_landmarks_; ++i) {
    const double ds = LandmarkDist(i, s);
    const double dt = LandmarkDist(i, t);
    if (ds == kInfDistance || dt == kInfDistance) continue;
    best = std::min(best, ds + dt);
  }
  return best;
}

double AltIndex::Query(VertexId s, VertexId t) {
  if (s == t) return 0.0;
  // One pass computes both bounds (the hot loop of the LT baseline).
  double lb = 0.0, ub = kInfDistance;
  for (size_t i = 0; i < num_landmarks_; ++i) {
    const double ds = LandmarkDist(i, s);
    const double dt = LandmarkDist(i, t);
    lb = std::max(lb, std::abs(ds - dt));
    const double sum = ds + dt;
    if (sum < ub) ub = sum;
  }
  if (ub == kInfDistance) return kInfDistance;
  return 0.5 * (lb + ub);
}

Status AltIndex::Save(const std::string& path) const {
  BinaryWriter w(path, kAltMagic);
  if (!w.ok()) return Status::IoError("cannot open " + path + ".tmp");
  w.WritePod<uint64_t>(num_landmarks_);
  w.WritePod<uint64_t>(num_vertices_);
  w.WriteVector(landmarks_);
  w.WriteVector(landmark_dist_);
  return w.Finish();
}

StatusOr<AltIndex> AltIndex::Load(const std::string& path, const Graph& g) {
  BinaryReader r(path, kAltMagic);
  if (!r.ok()) return r.status();
  AltIndex alt;
  uint64_t landmarks = 0, vertices = 0;
  if (!r.ReadPod(&landmarks) || !r.ReadPod(&vertices) ||
      !r.ReadVector(&alt.landmarks_) || !r.ReadVector(&alt.landmark_dist_)) {
    return r.ReadError("corrupt ALT index " + path);
  }
  RNE_RETURN_IF_ERROR(r.Finish());
  alt.num_landmarks_ = landmarks;
  alt.num_vertices_ = vertices;
  // Check `landmarks` against data actually read before forming the product,
  // which could overflow on a corrupt count.
  if (alt.landmarks_.size() != landmarks || vertices != g.NumVertices() ||
      alt.landmark_dist_.size() != landmarks * vertices) {
    return Status::Corruption("ALT index does not match graph: " + path);
  }
  alt.astar_ = std::make_unique<AStarSearch>(g);
  return alt;
}

double AltIndex::ExactDistance(VertexId s, VertexId t) {
  return astar_->Distance(
      s, t, [this, t](VertexId v, VertexId) { return LowerBound(v, t); });
}

}  // namespace rne
