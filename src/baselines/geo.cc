#include "baselines/geo.h"

namespace rne {

GeoEstimator::GeoEstimator(const Graph& g, GeoMetric metric, double factor)
    : g_(g), metric_(metric), factor_(factor) {}

void GeoEstimator::Calibrate(const std::vector<DistanceSample>& samples) {
  double num = 0.0, den = 0.0;
  for (const DistanceSample& s : samples) {
    if (s.dist <= 0.0 || s.dist == kInfDistance) continue;
    const double geo = metric_ == GeoMetric::kEuclidean
                           ? EuclideanDistance(g_, s.s, s.t)
                           : ManhattanDistance(g_, s.s, s.t);
    num += geo * s.dist;
    den += geo * geo;
  }
  if (den > 0.0) factor_ = num / den;
}

std::string GeoEstimator::Name() const {
  return metric_ == GeoMetric::kEuclidean ? "Euclidean" : "Manhattan";
}

double GeoEstimator::Query(VertexId s, VertexId t) {
  const double geo = metric_ == GeoMetric::kEuclidean
                         ? EuclideanDistance(g_, s, t)
                         : ManhattanDistance(g_, s, t);
  return geo * factor_;
}

}  // namespace rne
