#include "baselines/distance_oracle.h"

#include <algorithm>
#include <cmath>

#include "algo/distance_sampler.h"

namespace rne {

DistanceOracle::DistanceOracle(const Graph& g,
                               const DistanceOracleOptions& options)
    : g_(g), options_(options) {
  RNE_CHECK(options_.epsilon > 0.0);
  RNE_CHECK(g.NumVertices() >= 1);

  // Bounding square.
  double min_x = 1e300, min_y = 1e300, max_x = -1e300, max_y = -1e300;
  for (const Point& p : g.coords()) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double half =
      std::max({max_x - min_x, max_y - min_y, 1e-9}) / 2.0 + 1e-9;
  std::vector<VertexId> all(g.NumVertices());
  for (VertexId v = 0; v < all.size(); ++v) all[v] = v;
  root_ = BuildNode(all, (min_x + max_x) / 2.0, (min_y + max_y) / 2.0, half,
                    0);

  // Decompose and materialize the representative distances in one batch
  // (grouped by source inside DistanceSampler).
  FindPairs(root_, root_);
  std::vector<std::pair<VertexId, VertexId>> rep_pairs;
  rep_pairs.reserve(pending_pairs_.size());
  for (const auto& [a, b] : pending_pairs_) {
    rep_pairs.emplace_back(nodes_[a].representative, nodes_[b].representative);
  }
  DistanceSampler sampler(g_, options_.num_threads);
  const auto samples = sampler.ComputeDistances(rep_pairs);
  pair_dist_.reserve(pending_pairs_.size() * 2);
  for (size_t i = 0; i < pending_pairs_.size(); ++i) {
    const auto [a, b] = pending_pairs_[i];
    pair_dist_[PairKey(a, b)] = samples[i].dist;
    pair_dist_[PairKey(b, a)] = samples[i].dist;
  }
  pending_pairs_.clear();
  pending_pairs_.shrink_to_fit();
}

int32_t DistanceOracle::BuildNode(std::vector<VertexId>& vertices, double cx,
                                  double cy, double half, size_t depth) {
  if (vertices.empty()) return -1;
  QuadNode node;
  node.cx = cx;
  node.cy = cy;
  node.half = half;
  node.children[0] = node.children[1] = node.children[2] = node.children[3] =
      -1;
  // Representative: vertex closest to the square center; diameter: max
  // pairwise extent approximated by the bounding box of the points.
  double best = 1e300;
  node.representative = vertices[0];
  double pmin_x = 1e300, pmin_y = 1e300, pmax_x = -1e300, pmax_y = -1e300;
  for (const VertexId v : vertices) {
    const Point& p = g_.Coord(v);
    const double d = std::hypot(p.x - cx, p.y - cy);
    if (d < best) {
      best = d;
      node.representative = v;
    }
    pmin_x = std::min(pmin_x, p.x);
    pmin_y = std::min(pmin_y, p.y);
    pmax_x = std::max(pmax_x, p.x);
    pmax_y = std::max(pmax_y, p.y);
  }
  node.diameter =
      vertices.size() <= 1 ? 0.0 : std::hypot(pmax_x - pmin_x, pmax_y - pmin_y);

  const auto id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  if (vertices.size() <= 1 || depth >= options_.max_depth) return id;

  std::vector<VertexId> quadrant[4];
  for (const VertexId v : vertices) {
    const Point& p = g_.Coord(v);
    const int q = (p.x >= cx ? 1 : 0) | (p.y >= cy ? 2 : 0);
    quadrant[q].push_back(v);
  }
  vertices.clear();
  vertices.shrink_to_fit();
  const double h2 = half / 2.0;
  const double ox[4] = {-h2, h2, -h2, h2};
  const double oy[4] = {-h2, -h2, h2, h2};
  for (int q = 0; q < 4; ++q) {
    const int32_t child =
        BuildNode(quadrant[q], cx + ox[q], cy + oy[q], h2, depth + 1);
    nodes_[id].children[q] = child;
  }
  return id;
}

bool DistanceOracle::WellSeparated(int32_t a, int32_t b) const {
  if (a == b) return false;
  const QuadNode& na = nodes_[a];
  const QuadNode& nb = nodes_[b];
  const double rep_dist = std::hypot(
      g_.Coord(na.representative).x - g_.Coord(nb.representative).x,
      g_.Coord(na.representative).y - g_.Coord(nb.representative).y);
  return na.diameter + nb.diameter <= options_.epsilon * rep_dist;
}

void DistanceOracle::FindPairs(int32_t a, int32_t b) {
  if (a < 0 || b < 0) return;
  if (WellSeparated(a, b)) {
    // The recursion can reach the same unordered pair from both orientations;
    // register it once.
    if (pair_dist_.emplace(PairKey(a, b), 0.0).second) {
      pair_dist_[PairKey(b, a)] = 0.0;
      pending_pairs_.emplace_back(a, b);
    }
    return;
  }
  // Split the side with the larger diameter (tie: split `a`). Query descent
  // must replay this rule exactly.
  const bool split_a =
      a == b || nodes_[a].diameter >= nodes_[b].diameter;
  const int32_t target = split_a ? a : b;
  if (nodes_[target].IsLeaf()) {
    // Cannot split further (coincident points at max depth): accept the pair
    // as-is; its diameter is ~0 so the error stays bounded in practice.
    if (a != b && pair_dist_.emplace(PairKey(a, b), 0.0).second) {
      pair_dist_[PairKey(b, a)] = 0.0;
      pending_pairs_.emplace_back(a, b);
    }
    return;
  }
  for (const int32_t child : nodes_[target].children) {
    if (child < 0) continue;
    if (split_a) {
      FindPairs(child, b);
    } else {
      FindPairs(a, child);
    }
  }
}

int32_t DistanceOracle::ChildContaining(int32_t node, VertexId v) const {
  const QuadNode& n = nodes_[node];
  const Point& p = g_.Coord(v);
  const int q = (p.x >= n.cx ? 1 : 0) | (p.y >= n.cy ? 2 : 0);
  int32_t child = n.children[q];
  if (child >= 0) return child;
  // Boundary rounding: fall back to any child whose square contains p.
  for (const int32_t c : n.children) {
    if (c < 0) continue;
    const QuadNode& cn = nodes_[c];
    if (std::abs(p.x - cn.cx) <= cn.half + 1e-9 &&
        std::abs(p.y - cn.cy) <= cn.half + 1e-9) {
      return c;
    }
  }
  RNE_CHECK_MSG(false, "quadtree descent lost a vertex");
  return -1;
}

double DistanceOracle::Query(VertexId s, VertexId t) {
  RNE_CHECK(s < g_.NumVertices() && t < g_.NumVertices());
  if (s == t) return 0.0;
  int32_t a = root_, b = root_;
  for (;;) {
    if (a != b) {
      const auto it = pair_dist_.find(PairKey(a, b));
      if (it != pair_dist_.end()) return it->second;
    }
    const bool split_a =
        a == b || nodes_[a].diameter >= nodes_[b].diameter;
    if (split_a) {
      if (nodes_[a].IsLeaf()) return 0.0;  // s and t coincide geometrically
      a = ChildContaining(a, s);
    } else {
      if (nodes_[b].IsLeaf()) return 0.0;
      b = ChildContaining(b, t);
    }
  }
}

size_t DistanceOracle::IndexBytes() const {
  // Hash-map nodes: key + value + bucket overhead (~2 pointers each).
  return nodes_.size() * sizeof(QuadNode) +
         pair_dist_.size() * (sizeof(uint64_t) + sizeof(double) + 16);
}

}  // namespace rne
