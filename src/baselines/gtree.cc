#include "baselines/gtree.h"

#include <algorithm>
#include <queue>

#include "algo/dijkstra.h"
#include "graph/subgraph.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace rne {

uint32_t GTree::IndexOf(const std::vector<VertexId>& list, VertexId v) {
  for (uint32_t i = 0; i < list.size(); ++i) {
    if (list[i] == v) return i;
  }
  return UINT32_MAX;
}

GTree::GTree(const Graph& g, const GTreeOptions& options) : g_(&g) {
  RNE_SPAN("build.gtree");
  HierarchyOptions hopt;
  hopt.fanout = options.fanout;
  hopt.leaf_threshold = options.leaf_size;
  hopt.partition.seed = options.seed;
  hopt.partition.num_threads = options.num_threads;
  hier_ = std::make_unique<PartitionHierarchy>(
      PartitionHierarchy::Build(g, hopt));
  nodes_.resize(hier_->num_nodes());

  // Position of each vertex in its leaf's vertex list.
  vertex_pos_in_leaf_.assign(g.NumVertices(), UINT32_MAX);
  for (uint32_t id = 0; id < hier_->num_nodes(); ++id) {
    const auto& node = hier_->node(id);
    if (!node.IsLeaf()) continue;
    for (uint32_t i = 0; i < node.vertices.size(); ++i) {
      vertex_pos_in_leaf_[node.vertices[i]] = i;
    }
  }

  ComputeBorders(g);
  ComputeMatrices(g, options);

  // Default: every vertex is a target.
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    if (hier_->node(id).IsLeaf()) {
      nodes_[id].targets = hier_->node(id).vertices;
    }
  }
}

void GTree::ComputeBorders(const Graph& g) {
  // Membership test per node via each vertex's ancestor path: vertex v is in
  // node n iff n is on v's root path. Borders of n = vertices in n with an
  // edge to a vertex outside n.
  // Compute per node with a membership bitmap over its vertex set.
  std::vector<char> in_node(g.NumVertices(), 0);
  for (uint32_t id = 0; id < hier_->num_nodes(); ++id) {
    const auto& node = hier_->node(id);
    if (id == hier_->root()) continue;  // the root has no borders
    for (const VertexId v : node.vertices) in_node[v] = 1;
    for (const VertexId v : node.vertices) {
      for (const Edge& e : g.Neighbors(v)) {
        if (!in_node[e.to]) {
          nodes_[id].borders.push_back(v);
          break;
        }
      }
    }
    for (const VertexId v : node.vertices) in_node[v] = 0;
  }
  // Root: treat every child border as the root's junction below.

  // Junction U(n) = union of children borders; border_in_junction maps B(n)
  // into U(n).
  for (uint32_t id = 0; id < hier_->num_nodes(); ++id) {
    const auto& node = hier_->node(id);
    if (node.IsLeaf()) continue;
    NodeData& data = nodes_[id];
    for (const uint32_t c : node.children) {
      for (const VertexId b : nodes_[c].borders) {
        if (IndexOf(data.junction, b) == UINT32_MAX) {
          data.junction.push_back(b);
        }
      }
    }
    data.border_in_junction.resize(data.borders.size());
    for (uint32_t i = 0; i < data.borders.size(); ++i) {
      data.border_in_junction[i] = IndexOf(data.junction, data.borders[i]);
      RNE_CHECK_MSG(data.border_in_junction[i] != UINT32_MAX,
                    "node border missing from junction union");
    }
    data.child_border_in_junction.resize(node.children.size());
    for (size_t c = 0; c < node.children.size(); ++c) {
      const auto& child_borders = nodes_[node.children[c]].borders;
      data.child_border_in_junction[c].resize(child_borders.size());
      for (uint32_t i = 0; i < child_borders.size(); ++i) {
        data.child_border_in_junction[c][i] =
            IndexOf(data.junction, child_borders[i]);
        RNE_CHECK(data.child_border_in_junction[c][i] != UINT32_MAX);
      }
    }
  }
}

void GTree::ComputeMatrices(const Graph& g, const GTreeOptions& options) {
  RNE_SPAN("build.gtree.matrices");
  // Distinct leaf-border sources; every matrix entry is d(b, x) for some
  // leaf border b, so one SSSP per source covers everything.
  std::vector<VertexId> sources;
  std::vector<char> is_source(g.NumVertices(), 0);
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    if (!hier_->node(id).IsLeaf()) continue;
    for (const VertexId b : nodes_[id].borders) {
      if (!is_source[b]) {
        is_source[b] = 1;
        sources.push_back(b);
      }
    }
  }
  num_leaf_borders_ = sources.size();

  // Allocate all matrices as one pool (concatenated in node-id order) so a
  // v2 save can emit them as a single mmap-servable section; each node's
  // span views its slice.
  std::vector<uint64_t> lens(nodes_.size(), 0);
  std::vector<uint64_t> offsets(nodes_.size(), 0);
  uint64_t total = 0;
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    const auto& node = hier_->node(id);
    const NodeData& data = nodes_[id];
    lens[id] = node.IsLeaf()
                   ? data.borders.size() * node.vertices.size()
                   : data.junction.size() * data.junction.size();
    offsets[id] = total;
    total += lens[id];
  }
  matrix_pool_.assign(total, kInfDistance);
  BindMatrixSpans(matrix_pool_.data(), lens);

  // For each source b: fill (a) the leaf row of b's leaf, and (b) the
  // junction rows of every ancestor whose junction contains b. Writes go
  // through the pool (the node spans are read-only views of it).
  auto fill_from_source = [&](DijkstraSearch& search, VertexId b) {
    const auto& dist = search.AllDistances(b);
    const uint32_t leaf = hier_->LeafOf(b);
    {
      const auto& node = hier_->node(leaf);
      const NodeData& data = nodes_[leaf];
      double* matrix = matrix_pool_.data() + offsets[leaf];
      const uint32_t row = IndexOf(data.borders, b);
      if (row != UINT32_MAX) {
        for (uint32_t i = 0; i < node.vertices.size(); ++i) {
          matrix[row * node.vertices.size() + i] = dist[node.vertices[i]];
        }
      }
    }
    for (uint32_t id = hier_->node(leaf).parent; id != UINT32_MAX;
         id = hier_->node(id).parent) {
      const NodeData& data = nodes_[id];
      double* matrix = matrix_pool_.data() + offsets[id];
      const uint32_t row = IndexOf(data.junction, b);
      if (row == UINT32_MAX) continue;
      for (uint32_t i = 0; i < data.junction.size(); ++i) {
        matrix[row * data.junction.size() + i] = dist[data.junction[i]];
      }
      if (id == hier_->root()) break;
    }
  };

  // 0 = hardware through the same resolution helper as every builder; the
  // cutoff keeps tiny builds off the pool (the result is identical either
  // way, since each source fills only its own rows).
  const size_t num_threads = ResolveNumThreads(options.num_threads);
  if (num_threads == 1 || sources.size() < options.parallel_source_cutoff) {
    DijkstraSearch search(g);
    // rne-lint: allow(serial-build-loop) single-thread fallback of the
    // sharded parallel fill below.
    for (const VertexId b : sources) fill_from_source(search, b);
    return;
  }
  // Writes are disjoint per source row except when a border belongs to
  // several ancestors — rows are still keyed by the source, so each source
  // writes only its own rows. Parallel over sources.
  ThreadPool pool(num_threads);
  const size_t shards = pool.num_threads();
  for (size_t shard = 0; shard < shards; ++shard) {
    pool.Submit([&, shard] {
      DijkstraSearch search(g);
      for (size_t i = shard; i < sources.size(); i += shards) {
        fill_from_source(search, sources[i]);
      }
    });
  }
  pool.Wait();
}

double GTree::LeafLocalDistance(uint32_t leaf, VertexId s, VertexId t) const {
  // Dijkstra restricted to the leaf's induced subgraph.
  const auto& vertices = hier_->node(leaf).vertices;
  const uint32_t ls = IndexInLeaf(s);
  const uint32_t lt = IndexInLeaf(t);
  std::vector<double> dist(vertices.size(), kInfDistance);
  std::priority_queue<std::pair<double, uint32_t>,
                      std::vector<std::pair<double, uint32_t>>, std::greater<>>
      queue;
  dist[ls] = 0.0;
  queue.emplace(0.0, ls);
  while (!queue.empty()) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > dist[v]) continue;
    if (v == lt) return d;
    for (const Edge& e : g_->Neighbors(vertices[v])) {
      const uint32_t pos = vertex_pos_in_leaf_[e.to];
      // Same-leaf check: position valid and the leaf matches.
      if (hier_->LeafOf(e.to) != leaf) continue;
      const double nd = d + e.weight;
      if (nd < dist[pos]) {
        dist[pos] = nd;
        queue.emplace(nd, pos);
      }
    }
  }
  return kInfDistance;
}

std::vector<std::vector<double>> GTree::ClimbFrom(VertexId s) const {
  // out[0] = d(s, B(leaf)), out[i] = d(s, B(ancestor_i)) bottom-up.
  std::vector<std::vector<double>> out;
  const uint32_t leaf = hier_->LeafOf(s);
  const NodeData& leaf_data = nodes_[leaf];
  const size_t leaf_size = hier_->node(leaf).vertices.size();
  std::vector<double> current(leaf_data.borders.size());
  const uint32_t pos = IndexInLeaf(s);
  for (uint32_t i = 0; i < leaf_data.borders.size(); ++i) {
    current[i] = leaf_data.matrix[i * leaf_size + pos];
  }
  out.push_back(current);

  uint32_t node = leaf;
  while (hier_->node(node).parent != UINT32_MAX) {
    const uint32_t parent = hier_->node(node).parent;
    const NodeData& pdata = nodes_[parent];
    if (parent == hier_->root()) break;  // root has no borders
    const size_t u = pdata.junction.size();
    const auto& jmap =
        pdata.child_border_in_junction[ChildSlot(parent, node)];
    std::vector<double> next(pdata.borders.size(), kInfDistance);
    // d(s, b') = min over child borders b of d(s, b) + M_parent[b][b'].
    for (uint32_t i = 0; i < nodes_[node].borders.size(); ++i) {
      const double ds = out.back()[i];
      if (ds == kInfDistance) continue;
      const uint32_t row = jmap[i];
      for (uint32_t j = 0; j < pdata.borders.size(); ++j) {
        const double m =
            pdata.matrix[row * u + pdata.border_in_junction[j]];
        if (ds + m < next[j]) next[j] = ds + m;
      }
    }
    out.push_back(std::move(next));
    node = parent;
  }
  return out;
}

size_t GTree::ChildSlot(uint32_t parent, uint32_t child) const {
  const auto& children = hier_->node(parent).children;
  for (size_t i = 0; i < children.size(); ++i) {
    if (children[i] == child) return i;
  }
  RNE_CHECK_MSG(false, "child not found under parent");
  return 0;
}

double GTree::Distance(VertexId s, VertexId t) {
  RNE_CHECK(s < g_->NumVertices() && t < g_->NumVertices());
  // Cold-mapped trees verify deferred section checksums before the first
  // matrix access; throws CorruptionError on a bad file.
  if (mapping_ != nullptr) mapping_->EnsureAllVerifiedOrThrow();
  if (s == t) return 0.0;
  const uint32_t leaf_s = hier_->LeafOf(s);
  const uint32_t leaf_t = hier_->LeafOf(t);
  if (leaf_s == leaf_t) {
    double best = LeafLocalDistance(leaf_s, s, t);
    // The shortest path may leave the leaf: combine border-to-vertex rows.
    const NodeData& data = nodes_[leaf_s];
    const size_t leaf_size = hier_->node(leaf_s).vertices.size();
    const uint32_t ps = IndexInLeaf(s);
    const uint32_t pt = IndexInLeaf(t);
    for (uint32_t i = 0; i < data.borders.size(); ++i) {
      const double via =
          data.matrix[i * leaf_size + ps] + data.matrix[i * leaf_size + pt];
      if (via < best) best = via;
    }
    return best;
  }

  // Find the LCA of the two leaves and the children of the LCA holding s, t.
  const auto& anc_s = hier_->AncestorsOf(s);
  const auto& anc_t = hier_->AncestorsOf(t);
  size_t common = 0;
  while (common < anc_s.size() && common < anc_t.size() &&
         anc_s[common] == anc_t[common]) {
    ++common;
  }
  // LCA = last common ancestor (or root). cs/ct = next nodes on each path.
  const uint32_t lca = common == 0 ? hier_->root() : anc_s[common - 1];
  const uint32_t cs = anc_s[common];
  const uint32_t ct = anc_t[common];

  // Climb both sides to the LCA children.
  const auto climb_s = ClimbFrom(s);
  const auto climb_t = ClimbFrom(t);
  // climb[i] corresponds to the node at ancestor index (size-1-i)... the
  // vectors run leaf -> up; find the positions for cs/ct: the ancestor path
  // of s is anc_s[0..k-1] top-down with anc_s[k-1] = leaf; cs = anc_s[common]
  // sits (anc_s.size()-1 - common) levels above the leaf.
  const size_t idx_s = anc_s.size() - 1 - common;
  const size_t idx_t = anc_t.size() - 1 - common;
  RNE_CHECK(idx_s < climb_s.size() && idx_t < climb_t.size());
  const std::vector<double>& ds = climb_s[idx_s];
  const std::vector<double>& dt = climb_t[idx_t];

  const NodeData& lca_data = nodes_[lca];
  const size_t u = lca_data.junction.size();
  double best = kInfDistance;
  // Join through the LCA junction matrix.
  const auto& rows = lca_data.child_border_in_junction[ChildSlot(lca, cs)];
  const auto& cols = lca_data.child_border_in_junction[ChildSlot(lca, ct)];
  for (uint32_t i = 0; i < rows.size(); ++i) {
    if (ds[i] == kInfDistance) continue;
    const double* row = lca_data.matrix.data() + rows[i] * u;
    for (uint32_t j = 0; j < cols.size(); ++j) {
      if (dt[j] == kInfDistance) continue;
      const double candidate = ds[i] + row[cols[j]] + dt[j];
      if (candidate < best) best = candidate;
    }
  }
  return best;
}

void GTree::SetTargets(const std::vector<VertexId>& targets) {
  for (NodeData& data : nodes_) data.targets.clear();
  for (const VertexId v : targets) {
    RNE_CHECK(v < g_->NumVertices());
    nodes_[hier_->LeafOf(v)].targets.push_back(v);
  }
}

std::vector<std::pair<VertexId, double>> GTree::Knn(VertexId s, size_t k) {
  return BestFirst(s, k, kInfDistance);
}

std::vector<VertexId> GTree::Range(VertexId s, double tau) {
  std::vector<VertexId> out;
  for (const auto& [v, d] : BestFirst(s, g_->NumVertices(), tau)) {
    out.push_back(v);
  }
  return out;
}

std::vector<std::pair<VertexId, double>> GTree::BestFirst(VertexId s, size_t k,
                                                          double tau) {
  std::vector<std::pair<VertexId, double>> result;
  if (k == 0) return result;
  if (mapping_ != nullptr) mapping_->EnsureAllVerifiedOrThrow();

  // d(s, B(n)) for ancestors of s, used to seed the off-path subtrees.
  const auto climb = ClimbFrom(s);
  const auto& anc = hier_->AncestorsOf(s);

  struct Entry {
    double key;
    uint32_t id;       // node id or vertex id
    bool is_vertex;
    // Border distances d(s, B(node)) for node entries.
    std::shared_ptr<std::vector<double>> border_dist;
    bool operator>(const Entry& o) const { return key > o.key; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;

  auto min_of = [](const std::vector<double>& v) {
    double m = kInfDistance;
    for (const double x : v) m = std::min(m, x);
    return m;
  };

  // Seed: s's own leaf via local expansion + borders, and every sibling
  // subtree hanging off the ancestor path.
  const uint32_t leaf_s = hier_->LeafOf(s);
  {
    // Candidate targets inside s's leaf, distances via min(local, border).
    const NodeData& data = nodes_[leaf_s];
    const size_t leaf_size = hier_->node(leaf_s).vertices.size();
    const uint32_t ps = IndexInLeaf(s);
    for (const VertexId t : data.targets) {
      double d;
      if (t == s) {
        d = 0.0;
      } else {
        d = LeafLocalDistance(leaf_s, s, t);
        const uint32_t pt = IndexInLeaf(t);
        for (uint32_t i = 0; i < data.borders.size(); ++i) {
          const double via = data.matrix[i * leaf_size + ps] +
                             data.matrix[i * leaf_size + pt];
          if (via < d) d = via;
        }
      }
      if (d != kInfDistance) queue.push({d, t, true, nullptr});
    }
  }
  // Off-path subtrees: for each ancestor a (from leaf upward), its parent's
  // other children. d(s, B(sibling)) = min over b in B(a) of
  // d(s,b) + M_parent[b][b'].
  for (size_t i = 0; i < anc.size(); ++i) {
    const uint32_t node = anc[anc.size() - 1 - i];  // bottom-up
    const uint32_t parent =
        node == anc[0] ? hier_->root() : anc[anc.size() - 2 - i];
    const NodeData& pdata = nodes_[parent];
    const size_t u = pdata.junction.size();
    const std::vector<double>& ds = climb[i];
    const auto& row_map =
        pdata.child_border_in_junction[ChildSlot(parent, node)];
    const auto& children = hier_->node(parent).children;
    for (size_t slot = 0; slot < children.size(); ++slot) {
      const uint32_t sibling = children[slot];
      if (sibling == node) continue;
      const NodeData& sdata = nodes_[sibling];
      const auto& col_map = pdata.child_border_in_junction[slot];
      auto border_dist = std::make_shared<std::vector<double>>(
          sdata.borders.size(), kInfDistance);
      for (uint32_t bi = 0; bi < nodes_[node].borders.size(); ++bi) {
        if (ds[bi] == kInfDistance) continue;
        const double* row = pdata.matrix.data() + row_map[bi] * u;
        for (uint32_t bj = 0; bj < sdata.borders.size(); ++bj) {
          const double cand = ds[bi] + row[col_map[bj]];
          if (cand < (*border_dist)[bj]) (*border_dist)[bj] = cand;
        }
      }
      const double bound = min_of(*border_dist);
      if (bound != kInfDistance) {
        queue.push({bound, sibling, false, std::move(border_dist)});
      }
    }
  }

  // Best-first expansion; keys are admissible bounds, so once the minimum
  // exceeds tau no further target can qualify.
  while (!queue.empty() && result.size() < k) {
    if (queue.top().key > tau) break;
    const Entry e = queue.top();
    queue.pop();
    if (e.is_vertex) {
      result.emplace_back(static_cast<VertexId>(e.id), e.key);
      continue;
    }
    const auto& node = hier_->node(e.id);
    const NodeData& data = nodes_[e.id];
    if (node.IsLeaf()) {
      const size_t leaf_size = node.vertices.size();
      for (const VertexId t : data.targets) {
        const uint32_t pt = IndexInLeaf(t);
        double d = kInfDistance;
        for (uint32_t i = 0; i < data.borders.size(); ++i) {
          const double cand =
              (*e.border_dist)[i] + data.matrix[i * leaf_size + pt];
          if (cand < d) d = cand;
        }
        if (d != kInfDistance) queue.push({d, t, true, nullptr});
      }
      continue;
    }
    const size_t u = data.junction.size();
    for (size_t slot = 0; slot < node.children.size(); ++slot) {
      const uint32_t child = node.children[slot];
      const NodeData& cdata = nodes_[child];
      const auto& col_map = data.child_border_in_junction[slot];
      auto border_dist = std::make_shared<std::vector<double>>(
          cdata.borders.size(), kInfDistance);
      for (uint32_t bi = 0; bi < data.borders.size(); ++bi) {
        if ((*e.border_dist)[bi] == kInfDistance) continue;
        const double* row =
            data.matrix.data() + data.border_in_junction[bi] * u;
        for (uint32_t bj = 0; bj < cdata.borders.size(); ++bj) {
          const double cand = (*e.border_dist)[bi] + row[col_map[bj]];
          if (cand < (*border_dist)[bj]) (*border_dist)[bj] = cand;
        }
      }
      const double bound = min_of(*border_dist);
      if (bound != kInfDistance) {
        queue.push({bound, child, false, std::move(border_dist)});
      }
    }
  }
  return result;
}

Status GTree::Save(const std::string& path, SaveFormat format) const {
  BinaryWriter w(path, kGTreeMagic);
  if (!w.ok()) return Status::IoError("cannot open " + path + ".tmp");
  uint64_t total = 0;
  for (const NodeData& data : nodes_) total += data.matrix.size();
  const double* pool =
      matrix_pool_.empty() ? pool_view_ : matrix_pool_.data();
  if (format == SaveFormat::kSectioned) {
    // All node matrices, concatenated in node-id order, in one aligned
    // lazy-verify section; the meta stream keeps only per-node lengths.
    w.AddSection(kSecGTreeMatrixPool, pool, total * sizeof(double),
                 kSectionFlagLazyVerify);
  }
  hier_->WriteTo(w);
  w.WritePod<uint64_t>(num_leaf_borders_);
  w.WriteVector(vertex_pos_in_leaf_);
  w.WritePod<uint64_t>(nodes_.size());
  for (const NodeData& data : nodes_) {
    w.WriteVector(data.borders);
    w.WriteVector(data.junction);
    if (format == SaveFormat::kSectioned) {
      w.WritePod<uint64_t>(data.matrix.size());
    } else {
      w.WriteLengthPrefixed(data.matrix.data(), data.matrix.size(),
                            sizeof(double));
    }
    w.WriteVector(data.border_in_junction);
    w.WritePod<uint64_t>(data.child_border_in_junction.size());
    for (const auto& child : data.child_border_in_junction) {
      w.WriteVector(child);
    }
    w.WriteVector(data.targets);
  }
  return w.Finish();
}

Status GTree::ParseMeta(BinaryReader& r, const std::string& path,
                        std::vector<uint64_t>* matrix_lens) {
  hier_ = std::make_unique<PartitionHierarchy>();
  if (!PartitionHierarchy::ReadFrom(r, hier_.get())) {
    return r.ReadError("corrupt G-tree index " + path);
  }
  uint64_t num_borders = 0, num_nodes = 0;
  if (!r.ReadPod(&num_borders) || !r.ReadVector(&vertex_pos_in_leaf_) ||
      !r.ReadPod(&num_nodes)) {
    return r.ReadError("corrupt G-tree index " + path);
  }
  // Every serialized node holds at least five 8-byte length prefixes plus a
  // child count (48 bytes), so a corrupt node count fails here before a huge
  // resize.
  if (num_nodes > r.remaining() / 48) {
    return Status::Corruption("inconsistent G-tree index " + path);
  }
  const bool v2 = r.format_version() >= kFormatVersionV2;
  // v2: per-node lengths must tile the CRC-protected matrix section exactly,
  // which bounds them before any allocation.
  uint64_t pool_doubles = 0;
  if (v2) {
    // An absent section is an empty pool (a tree whose matrices are all
    // empty writes no section); every per-node length must then be 0.
    const SectionInfo* sec = r.FindSection(kSecGTreeMatrixPool);
    if (sec != nullptr && sec->size % sizeof(double) != 0) {
      return Status::Corruption("inconsistent G-tree index " + path);
    }
    pool_doubles = sec == nullptr ? 0 : sec->size / sizeof(double);
  }
  num_leaf_borders_ = num_borders;
  nodes_.resize(num_nodes);
  uint64_t total = 0;
  for (NodeData& data : nodes_) {
    uint64_t num_children = 0;
    if (!r.ReadVector(&data.borders) || !r.ReadVector(&data.junction)) {
      return r.ReadError("corrupt G-tree index " + path);
    }
    uint64_t len = 0;
    if (v2) {
      if (!r.ReadPod(&len) || len > pool_doubles - total) {
        return r.ReadError("corrupt G-tree index " + path);
      }
    } else {
      // v1 streams the matrix inline; append it to the pool (spans are
      // bound after the loop, once the pool stops growing).
      std::vector<double> matrix;
      if (!r.ReadVector(&matrix)) {
        return r.ReadError("corrupt G-tree index " + path);
      }
      len = matrix.size();
      matrix_pool_.insert(matrix_pool_.end(), matrix.begin(), matrix.end());
    }
    matrix_lens->push_back(len);
    total += len;
    if (!r.ReadVector(&data.border_in_junction) || !r.ReadPod(&num_children)) {
      return r.ReadError("corrupt G-tree index " + path);
    }
    if (num_children > r.remaining() / 8) {
      return Status::Corruption("inconsistent G-tree index " + path);
    }
    data.child_border_in_junction.resize(num_children);
    for (auto& child : data.child_border_in_junction) {
      if (!r.ReadVector(&child)) {
        return r.ReadError("corrupt G-tree index " + path);
      }
    }
    if (!r.ReadVector(&data.targets)) {
      return r.ReadError("corrupt G-tree index " + path);
    }
  }
  if (v2 && total != pool_doubles) {
    return Status::Corruption("inconsistent G-tree index " + path);
  }
  return Status::Ok();
}

void GTree::BindMatrixSpans(const double* pool,
                            const std::vector<uint64_t>& matrix_lens) {
  RNE_DCHECK(matrix_lens.size() == nodes_.size());
  uint64_t offset = 0;
  for (size_t id = 0; id < nodes_.size(); ++id) {
    nodes_[id].matrix =
        std::span<const double>(pool + offset, matrix_lens[id]);
    offset += matrix_lens[id];
  }
}

StatusOr<GTree> GTree::Load(const std::string& path, const Graph& g) {
  return Load(path, g, LoadOptions{});
}

StatusOr<GTree> GTree::Load(const std::string& path, const Graph& g,
                            const LoadOptions& options) {
  if (options.mode == LoadMode::kBlockCache) {
    return Status::InvalidArgument(
        "G-tree indexes do not support block-cache loads (queries walk many "
        "matrices per call); use mmap");
  }
  if (options.mode == LoadMode::kMmap ||
      options.mode == LoadMode::kMmapCold) {
    auto opened = MappedEnvelope::Open(path, kGTreeMagic, options.mode);
    if (!opened.ok()) {
      if (opened.status().code() == StatusCode::kFailedPrecondition) {
        // v1 file: there are no sections to map; fall back to a heap load.
        return Load(path, g, LoadOptions{});
      }
      return opened.status();
    }
    std::shared_ptr<const MappedEnvelope> env = std::move(opened).value();
    BinaryReader r(env->file().data(), env->file().size(), path, kGTreeMagic);
    if (!r.ok()) return r.status();
    GTree tree;
    tree.g_ = &g;
    std::vector<uint64_t> lens;
    RNE_RETURN_IF_ERROR(tree.ParseMeta(r, path, &lens));
    RNE_RETURN_IF_ERROR(r.Finish());
    tree.pool_view_ =
        reinterpret_cast<const double*>(env->SectionData(kSecGTreeMatrixPool));
    tree.BindMatrixSpans(tree.pool_view_, lens);
    tree.mapping_ = std::move(env);
    RNE_RETURN_IF_ERROR(tree.CheckConsistent(path, g));
    return tree;
  }

  BinaryReader r(path, kGTreeMagic);
  if (!r.ok()) return r.status();
  GTree tree;
  tree.g_ = &g;
  std::vector<uint64_t> lens;
  RNE_RETURN_IF_ERROR(tree.ParseMeta(r, path, &lens));
  RNE_RETURN_IF_ERROR(r.Finish());
  if (r.format_version() >= kFormatVersionV2) {
    uint64_t total = 0;
    for (const uint64_t len : lens) total += len;
    tree.matrix_pool_.resize(total);
    if (total > 0) {
      RNE_RETURN_IF_ERROR(r.ReadSectionInto(kSecGTreeMatrixPool,
                                            tree.matrix_pool_.data(),
                                            total * sizeof(double)));
    }
  }
  tree.BindMatrixSpans(tree.matrix_pool_.data(), lens);
  RNE_RETURN_IF_ERROR(tree.CheckConsistent(path, g));
  return tree;
}

Status GTree::CheckConsistent(const std::string& path, const Graph& g) const {
  if (hier_->num_vertices() != g.NumVertices() ||
      nodes_.size() != hier_->num_nodes()) {
    return Status::Corruption("G-tree index does not match graph: " + path);
  }
  return Status::Ok();
}

size_t GTree::IndexBytes() const {
  size_t bytes = vertex_pos_in_leaf_.size() * sizeof(uint32_t);
  for (const NodeData& data : nodes_) {
    bytes += data.borders.size() * sizeof(VertexId) +
             data.junction.size() * sizeof(VertexId) +
             data.matrix.size() * sizeof(double) +
             data.border_in_junction.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace rne
