#include "serve/backend.h"

#include <algorithm>
#include <map>

#include "algo/dijkstra.h"
#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/gtree.h"
#include "baselines/h2h.h"
#include "core/quantized.h"
#include "core/rne.h"
#include "core/rne_index.h"
#include "util/annotations.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rne::serve {
namespace {

Status RequireGraph(const BackendContext& ctx, const char* name) {
  if (ctx.graph == nullptr) {
    return Status::InvalidArgument(std::string(name) +
                                   " backend requires a graph");
  }
  return Status::Ok();
}

/// Learned RNE model: the serving matrix is immutable after load, so
/// queries are lock-free shared reads. kNN goes through the embedding-space
/// tree index (also const).
class RneBackend : public QueryBackend {
 public:
  /// Owns a freshly loaded model. `num_workers` parallelizes the kNN-index
  /// build (query serving itself is unaffected).
  explicit RneBackend(Rne model, size_t num_workers = 1)
      : owned_(std::make_unique<Rne>(std::move(model))),
        model_(owned_.get()),
        index_(model_, num_workers) {}
  /// Borrows a caller-owned model (must outlive the backend).
  explicit RneBackend(const Rne* model, size_t num_workers = 1)
      : model_(model), index_(model_, num_workers) {}

  std::string Name() const override { return "rne"; }
  bool IsExact() const override { return false; }
  size_t NumVertices() const override { return model_->NumVertices(); }
  size_t IndexBytes() const override { return model_->IndexBytes(); }
  double Distance(VertexId s, VertexId t) override {
    return model_->Query(s, t);
  }
  bool SupportsKnn() const override { return true; }
  std::vector<std::pair<VertexId, double>> Knn(VertexId s,
                                               size_t k) override {
    return index_.Knn(s, k);
  }

 private:
  std::unique_ptr<Rne> owned_;  // null when borrowing
  const Rne* model_;
  RneIndex index_;
};

/// 8-bit quantized RNE matrix; const lookups, shared lock-free.
class QuantizedRneBackend : public QueryBackend {
 public:
  explicit QuantizedRneBackend(QuantizedRne model)
      : model_(std::move(model)) {}

  std::string Name() const override { return "rne-quantized"; }
  bool IsExact() const override { return false; }
  size_t NumVertices() const override { return model_.NumVertices(); }
  size_t IndexBytes() const override { return model_.IndexBytes(); }
  double Distance(VertexId s, VertexId t) override {
    return model_.Query(s, t);
  }

 private:
  QuantizedRne model_;
};

/// Exact Dijkstra with one reusable workspace per pool worker, selected by
/// ThreadPool::CurrentWorkerIndex() — no locking on the worker path. Calls
/// from non-pool threads share one mutex-guarded overflow slot.
class DijkstraBackend : public QueryBackend {
 public:
  DijkstraBackend(const Graph& g, size_t num_workers) : graph_(g) {
    workers_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
      workers_.push_back(std::make_unique<DijkstraSearch>(g));
    }
    overflow_ = std::make_unique<DijkstraSearch>(g);
  }

  std::string Name() const override { return "dijkstra"; }
  bool IsExact() const override { return true; }
  size_t NumVertices() const override { return graph_.NumVertices(); }
  size_t IndexBytes() const override { return 0; }

  double Distance(VertexId s, VertexId t) override {
    const size_t w = ThreadPool::CurrentWorkerIndex();
    if (w < workers_.size()) return workers_[w]->Distance(s, t);
    MutexLock lock(&overflow_mu_);
    return overflow_->Distance(s, t);
  }

  bool SupportsKnn() const override { return true; }
  std::vector<std::pair<VertexId, double>> Knn(VertexId s,
                                               size_t k) override {
    const size_t w = ThreadPool::CurrentWorkerIndex();
    if (w < workers_.size()) return KnnWith(*workers_[w], s, k);
    MutexLock lock(&overflow_mu_);
    return KnnWith(*overflow_, s, k);
  }

 private:
  static std::vector<std::pair<VertexId, double>> KnnWith(DijkstraSearch& dij,
                                                          VertexId s,
                                                          size_t k) {
    const std::vector<double>& dist = dij.AllDistances(s);
    std::vector<std::pair<double, VertexId>> order;
    order.reserve(dist.size());
    for (VertexId v = 0; v < dist.size(); ++v) {
      if (dist[v] != kInfDistance) order.emplace_back(dist[v], v);
    }
    const size_t take = std::min(k, order.size());
    std::partial_sort(order.begin(), order.begin() + take, order.end());
    std::vector<std::pair<VertexId, double>> out;
    out.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out.emplace_back(order[i].second, order[i].first);
    }
    return out;
  }

  const Graph& graph_;
  std::vector<std::unique_ptr<DijkstraSearch>> workers_;
  Mutex overflow_mu_;
  std::unique_ptr<DijkstraSearch> overflow_ RNE_PT_GUARDED_BY(overflow_mu_);
};

/// Mutex-serialized adapter for search-based DistanceMethods whose Query()
/// mutates an internal workspace (CH, H2H, LT, G-tree). Parallelism is
/// sacrificed; use per-worker or shared-read backends on hot chains.
template <typename MethodT>
class SerializedBackend : public QueryBackend {
 public:
  template <typename... Args>
  explicit SerializedBackend(size_t num_vertices, Args&&... args)
      : method_(std::forward<Args>(args)...), num_vertices_(num_vertices) {}

  std::string Name() const override {
    MutexLock lock(&mu_);
    return method_.Name();
  }
  bool IsExact() const override {
    MutexLock lock(&mu_);
    return method_.IsExact();
  }
  size_t NumVertices() const override { return num_vertices_; }
  size_t IndexBytes() const override {
    MutexLock lock(&mu_);
    return method_.IndexBytes();
  }
  double Distance(VertexId s, VertexId t) override {
    MutexLock lock(&mu_);
    return method_.Query(s, t);
  }

 protected:
  mutable Mutex mu_;
  MethodT method_ RNE_GUARDED_BY(mu_);
  size_t num_vertices_ = 0;
};

class GTreeBackend : public SerializedBackend<GTree> {
 public:
  GTreeBackend(const Graph& g, const GTreeOptions& options)
      : SerializedBackend<GTree>(g.NumVertices(), g, options) {}
  bool SupportsKnn() const override { return true; }
  std::vector<std::pair<VertexId, double>> Knn(VertexId s,
                                               size_t k) override {
    MutexLock lock(&mu_);
    return method_.Knn(s, k);
  }
};

// ---------------------------------------------------------------------------
// Registry

struct Registry {
  Mutex mu;
  std::map<std::string, BackendFactory> factories RNE_GUARDED_BY(mu);
};

Registry& GlobalRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry();
    r->factories["rne"] =
        [](const BackendContext& ctx) -> StatusOr<std::unique_ptr<QueryBackend>> {
      auto model = Rne::Load(ctx.model_path, ctx.load);
      if (!model.ok()) return model.status();
      // RneIndex construction reads every embedding row, so complete any
      // deferred cold-map verification before building over garbage.
      RNE_RETURN_IF_ERROR(model.value().VerifyMapped());
      return std::unique_ptr<QueryBackend>(
          new RneBackend(std::move(model).value(), ctx.num_workers));
    };
    r->factories["rne-quantized"] =
        [](const BackendContext& ctx) -> StatusOr<std::unique_ptr<QueryBackend>> {
      auto model = QuantizedRne::Load(ctx.model_path, ctx.load);
      if (!model.ok()) return model.status();
      return std::unique_ptr<QueryBackend>(
          new QuantizedRneBackend(std::move(model).value()));
    };
    r->factories["dijkstra"] =
        [](const BackendContext& ctx) -> StatusOr<std::unique_ptr<QueryBackend>> {
      RNE_RETURN_IF_ERROR(RequireGraph(ctx, "dijkstra"));
      return std::unique_ptr<QueryBackend>(
          new DijkstraBackend(*ctx.graph, ctx.num_workers));
    };
    r->factories["ch"] =
        [](const BackendContext& ctx) -> StatusOr<std::unique_ptr<QueryBackend>> {
      RNE_RETURN_IF_ERROR(RequireGraph(ctx, "ch"));
      return std::unique_ptr<QueryBackend>(
          new SerializedBackend<ContractionHierarchy>(
              ctx.graph->NumVertices(), *ctx.graph, ChOptions{}));
    };
    r->factories["h2h"] =
        [](const BackendContext& ctx) -> StatusOr<std::unique_ptr<QueryBackend>> {
      RNE_RETURN_IF_ERROR(RequireGraph(ctx, "h2h"));
      return std::unique_ptr<QueryBackend>(
          new SerializedBackend<H2HIndex>(ctx.graph->NumVertices(),
                                          *ctx.graph));
    };
    r->factories["alt"] =
        [](const BackendContext& ctx) -> StatusOr<std::unique_ptr<QueryBackend>> {
      RNE_RETURN_IF_ERROR(RequireGraph(ctx, "alt"));
      Rng rng(ctx.seed);
      return std::unique_ptr<QueryBackend>(new SerializedBackend<AltIndex>(
          ctx.graph->NumVertices(), *ctx.graph, ctx.alt_landmarks, rng));
    };
    r->factories["gtree"] =
        [](const BackendContext& ctx) -> StatusOr<std::unique_ptr<QueryBackend>> {
      RNE_RETURN_IF_ERROR(RequireGraph(ctx, "gtree"));
      GTreeOptions options;
      options.seed = ctx.seed;
      return std::unique_ptr<QueryBackend>(
          new GTreeBackend(*ctx.graph, options));
    };
    return r;
  }();
  return *registry;
}

}  // namespace

void RegisterBackendFactory(const std::string& name, BackendFactory factory) {
  Registry& registry = GlobalRegistry();
  MutexLock lock(&registry.mu);
  registry.factories[name] = std::move(factory);
}

StatusOr<std::unique_ptr<QueryBackend>> MakeBackend(const std::string& name,
                                                    const BackendContext& ctx) {
  BackendFactory factory;
  {
    Registry& registry = GlobalRegistry();
    MutexLock lock(&registry.mu);
    const auto it = registry.factories.find(name);
    if (it == registry.factories.end()) {
      return Status::NotFound("no backend registered as '" + name + "'");
    }
    factory = it->second;
  }
  return factory(ctx);
}

std::unique_ptr<QueryBackend> MakeSharedModelBackend(const Rne& model) {
  return std::make_unique<RneBackend>(&model);
}

std::vector<std::string> RegisteredBackendNames() {
  Registry& registry = GlobalRegistry();
  MutexLock lock(&registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.factories.size());
  for (const auto& [name, factory] : registry.factories) {
    names.push_back(name);
  }
  return names;
}

}  // namespace rne::serve
