// Hot model swap for the serving path (the swap primitive the ROADMAP's
// dynamic-edge-weights item reuses): a ModelManager owns the published RNE
// model + its kNN index as one immutable snapshot behind an atomic
// shared_ptr. Load() verifies and materializes a replacement entirely off
// the serving path — envelope/structural verify (the same check as
// `rne_tool verify`), full typed deserialize, kNN index build — and only
// then publishes with a single lock-free pointer swap. In-flight queries
// keep the snapshot they started with, so a swap never fails a query; a
// corrupt or mismatched replacement is rejected and the previous snapshot
// keeps serving (rollback is the default because publish is the last step).
//
// The `RELOAD` verb in serve/server_loop.h is a thin wrapper over Load().
#ifndef RNE_SERVE_MODEL_MANAGER_H_
#define RNE_SERVE_MODEL_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/rne.h"
#include "core/rne_index.h"
#include "serve/backend.h"
#include "util/annotations.h"
#include "util/serialize.h"
#include "util/status.h"

namespace rne::serve {

/// Structural verification shared with `rne_tool verify`: envelope header
/// fields, file size, header and payload checksums — without deserializing.
/// When `expected_magic` is nonzero the index kind must match it too.
StatusOr<EnvelopeInfo> VerifyIndexFile(const std::string& path,
                                       uint32_t expected_magic = 0);

class ModelManager {
 public:
  struct Options {
    /// Parallelizes the kNN index build of a freshly loaded model.
    size_t num_workers = 1;
    /// Reject a replacement whose vertex count differs from the published
    /// model (ids in flight would silently change meaning).
    bool require_same_vertex_count = true;
    /// How Load() opens model files (heap or mmap). Stage-1 verification
    /// checks every section up front, so even kMmapCold snapshots publish
    /// fully verified; v1 files fall back to a heap load.
    LoadOptions load;
  };

  ModelManager();
  explicit ModelManager(const Options& options);

  /// Verifies, loads, and publishes the model at `path`. Synchronous, but
  /// runs entirely off the serving threads: queries keep reading the old
  /// snapshot until the final atomic publish. On any failure the previous
  /// snapshot (if any) keeps serving unchanged.
  Status Load(const std::string& path);

  /// Re-runs Load() on the most recently attempted path (RELOAD with no
  /// argument). FailedPrecondition when nothing was ever loaded.
  Status Reload();

  /// One published model generation. Immutable; index points into model.
  struct Snapshot {
    std::shared_ptr<const Rne> model;
    std::shared_ptr<const RneIndex> index;
    uint64_t version = 0;
    std::string path;
  };

  /// Lock-free acquire of the current snapshot; null before the first
  /// successful Load().
  std::shared_ptr<const Snapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Version of the published snapshot (0 = none).
  uint64_t version() const;

  /// Registers a callback invoked after every successful publish with the
  /// new snapshot's version — the seam the serving stack uses to invalidate
  /// its ResultCache on hot swap, so a RELOAD can never serve a stale
  /// cached distance. Listeners run on the Load() caller's thread, after
  /// the atomic publish, while the load mutex is still held (so they
  /// observe swaps in order). Register during setup: adding listeners
  /// concurrently with Load() is not supported.
  void AddPublishListener(std::function<void(uint64_t version)> listener);

  /// Backend adapter serving whatever snapshot is published at each call.
  /// The manager must outlive the returned backend. A backend created
  /// before the first successful Load() throws from Distance()/Knn() —
  /// the engine converts that to a failure and falls down the chain.
  std::unique_ptr<QueryBackend> MakeManagedBackend() const;

 private:
  const Options options_;

  std::atomic<std::shared_ptr<const Snapshot>> current_{nullptr};

  /// Serializes concurrent Load()s (last successful publisher wins is not a
  /// useful semantic for operators; one reload at a time is).
  mutable Mutex load_mu_;
  uint64_t next_version_ RNE_GUARDED_BY(load_mu_) = 1;
  std::string last_path_ RNE_GUARDED_BY(load_mu_);
  std::vector<std::function<void(uint64_t)>> publish_listeners_
      RNE_GUARDED_BY(load_mu_);
};

}  // namespace rne::serve

#endif  // RNE_SERVE_MODEL_MANAGER_H_
