#include "serve/server_loop.h"

#include <cstdio>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rne::serve {
namespace {

void PrintResponse(const Request& request, const Response& response,
                   std::string* out) {
  if (!response.status.ok()) {
    out->append("ERR ");
    out->append(response.status.ToString());
    out->push_back('\n');
    return;
  }
  char buf[64];
  if (request.kind == RequestKind::kDistance) {
    std::snprintf(buf, sizeof(buf), "DIST %.2f ", response.distance);
    out->append(buf);
    out->append("backend=");
    out->append(response.backend);
    out->append(" exact=");
    out->append(response.exact ? "1" : "0");
    out->append(" fallback=");
    out->append(response.fell_back ? "1" : "0");
    out->append(" cached=");
    out->append(response.cached ? "1" : "0");
    out->push_back('\n');
    return;
  }
  out->append("KNN");
  for (const auto& [v, d] : response.knn) {
    std::snprintf(buf, sizeof(buf), " %u:%.2f", v, d);
    out->append(buf);
  }
  out->push_back('\n');
}

}  // namespace

LineProtocolHandler::LineProtocolHandler(QueryEngine& engine,
                                         const ServerLoopOptions& options)
    : engine_(engine),
      options_(options),
      cached_(&engine, options.cache) {
  pending_.reserve(options_.batch == 0 ? 1 : options_.batch);
}

void LineProtocolHandler::Flush(std::string* out) {
  if (pending_.empty()) return;
  std::vector<Response> responses;
  const Status admitted = cached_.QueryBatch(pending_, &responses);
  if (!admitted.ok()) {
    for (size_t i = 0; i < pending_.size(); ++i) {
      out->append("ERR ");
      out->append(admitted.ToString());
      out->push_back('\n');
    }
  } else {
    for (size_t i = 0; i < pending_.size(); ++i) {
      PrintResponse(pending_[i], responses[i], out);
    }
  }
  pending_.clear();
}

void LineProtocolHandler::AppendStats(std::string* out) {
  // Engine metrics stay the base object (existing consumers parse its
  // fields); cache and connection state graft on before the closing brace.
  std::string json = engine_.Metrics().ToJson();
  if (!json.empty() && json.back() == '}') json.pop_back();
  json.append(", \"cache\": ");
  if (options_.cache == nullptr) {
    json.append("null");
  } else {
    json.append(options_.cache->Stats().ToJson());
  }
  json.append(", \"active_connections\": ");
  const size_t active =
      options_.active_connections == nullptr
          ? 0
          : options_.active_connections->load(std::memory_order_acquire);
  json.append(std::to_string(active));
  json.append(", \"model\": ");
  const auto snapshot = options_.model_manager == nullptr
                            ? nullptr
                            : options_.model_manager->Current();
  if (snapshot == nullptr || snapshot->model == nullptr) {
    json.append("null");
  } else {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"version\": %llu, \"build_threads\": %u, "
                  "\"build_seconds\": %.3f}",
                  static_cast<unsigned long long>(snapshot->version),
                  snapshot->model->build_threads(),
                  snapshot->model->build_seconds());
    json.append(buf);
  }
  json.push_back('}');
  out->append("STATS ");
  out->append(json);
  out->push_back('\n');
}

void LineProtocolHandler::HandleLine(std::string_view line, std::string* out) {
  std::istringstream parser{std::string(line)};
  std::string verb;
  parser >> verb;
  if (verb.empty()) return;
  ++lines_;
  if (verb == "STATS") {
    Flush(out);
    AppendStats(out);
    return;
  }
  if (verb == "METRICS") {
    Flush(out);
    out->append("METRICS ");
    out->append(obs::MetricsRegistry::Global().ToJson());
    out->push_back('\n');
    return;
  }
  if (verb == "RELOAD") {
    // Flush first so answers stay ordered AND no buffered request can
    // straddle the swap ambiguously (each in-flight query still pins its
    // snapshot; ordering here is for the protocol transcript).
    Flush(out);
    if (options_.model_manager == nullptr) {
      out->append(
          "ERR FAILED_PRECONDITION: no model manager attached "
          "(start rne_server with --model)\n");
      return;
    }
    std::string path;
    parser >> path;
    const Status swapped = path.empty() ? options_.model_manager->Reload()
                                        : options_.model_manager->Load(path);
    if (swapped.ok()) {
      // The publish listener wired at startup already invalidated the
      // cache; repeating it here keeps handlers correct even when the
      // manager was attached without the listener (tests, embedders).
      if (options_.cache != nullptr) options_.cache->Invalidate();
      const auto snapshot = options_.model_manager->Current();
      out->append("RELOAD OK version=");
      out->append(std::to_string(snapshot->version));
      out->append(" vertices=");
      out->append(std::to_string(snapshot->model->NumVertices()));
      out->push_back('\n');
    } else {
      out->append("ERR ");
      out->append(swapped.ToString());
      out->push_back('\n');
    }
    return;
  }
  // Ids are parsed into a wider type and range-checked before the narrowing
  // cast: without the check, "QUERY 4294967296 0" would silently alias
  // vertex 0 (found by the protocol fuzzer).
  constexpr long long kMaxId = std::numeric_limits<VertexId>::max();
  Request request;
  if (verb == "QUERY") {
    long long s = -1, t = -1;
    parser >> s >> t;
    if (parser.fail() || s < 0 || t < 0 || s > kMaxId || t > kMaxId) {
      Flush(out);  // keep answers in request order
      out->append("ERR INVALID_ARGUMENT: usage: QUERY <s> <t>\n");
      return;
    }
    request.kind = RequestKind::kDistance;
    request.s = static_cast<VertexId>(s);
    request.t = static_cast<VertexId>(t);
  } else if (verb == "KNN") {
    long long s = -1, k = -1;
    parser >> s >> k;
    if (parser.fail() || s < 0 || k < 0 || s > kMaxId) {
      Flush(out);
      out->append("ERR INVALID_ARGUMENT: usage: KNN <s> <k>\n");
      return;
    }
    request.kind = RequestKind::kKnn;
    request.s = static_cast<VertexId>(s);
    request.k = static_cast<size_t>(k);
  } else {
    Flush(out);
    out->append("ERR INVALID_ARGUMENT: unknown verb '");
    out->append(verb);
    out->append("'\n");
    return;
  }
  pending_.push_back(request);
  const size_t batch = options_.batch == 0 ? 1 : options_.batch;
  if (pending_.size() >= batch) Flush(out);
}

bool LineProtocolHandler::Consume(std::string_view bytes, std::string* out) {
  buffer_.append(bytes);
  size_t start = 0;
  size_t nl;
  while ((nl = buffer_.find('\n', start)) != std::string::npos) {
    std::string_view line(buffer_.data() + start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    ++frames_;
    HandleLine(line, out);
    start = nl + 1;
  }
  buffer_.erase(0, start);
  if (buffer_.size() > options_.max_line_bytes) {
    // Flush answers owed for earlier complete lines first so the transcript
    // stays in request order, then poison the stream.
    Flush(out);
    out->append("ERR INVALID_ARGUMENT: line exceeds ");
    out->append(std::to_string(options_.max_line_bytes));
    out->append(" bytes\n");
    buffer_.clear();
    return false;
  }
  return true;
}

void LineProtocolHandler::Finish(std::string* out) {
  if (!buffer_.empty()) {
    // A peer that closes without terminating its last line gets no answer
    // for it; that is deliberate (a truncated frame is not a request), but
    // it must be observable, not silent.
    ++partial_dropped_;
    RNE_COUNTER_ADD("net.partial_line_dropped", 1);
    buffer_.clear();
  }
  Flush(out);
}

size_t RunServerLoop(std::istream& in, std::ostream& out, QueryEngine& engine,
                     const ServerLoopOptions& options) {
  LineProtocolHandler handler(engine, options);
  std::string line;
  std::string answers;
  while ((options.stop == nullptr ||
          !options.stop->load(std::memory_order_acquire)) &&
         std::getline(in, line)) {
    answers.clear();
    handler.HandleLine(line, &answers);
    if (!answers.empty()) {
      out << answers;
      out.flush();
    }
  }
  answers.clear();
  handler.Flush(&answers);
  if (!answers.empty()) {
    out << answers;
    out.flush();
  }
  return handler.lines();
}

}  // namespace rne::serve
