#include "serve/server_loop.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rne::serve {
namespace {

void PrintResponse(const Request& request, const Response& response,
                   std::ostream& out) {
  if (!response.status.ok()) {
    out << "ERR " << response.status.ToString() << "\n";
    return;
  }
  char buf[64];
  if (request.kind == RequestKind::kDistance) {
    std::snprintf(buf, sizeof(buf), "DIST %.2f ", response.distance);
    out << buf << "backend=" << response.backend
        << " exact=" << (response.exact ? 1 : 0)
        << " fallback=" << (response.fell_back ? 1 : 0) << "\n";
    return;
  }
  out << "KNN";
  for (const auto& [v, d] : response.knn) {
    std::snprintf(buf, sizeof(buf), " %u:%.2f", v, d);
    out << buf;
  }
  out << "\n";
}

/// Runs `pending` through the engine and prints every answer in order.
void Flush(QueryEngine& engine, std::vector<Request>* pending,
           std::ostream& out) {
  if (pending->empty()) return;
  std::vector<Response> responses;
  const Status admitted = engine.QueryBatch(*pending, &responses);
  if (!admitted.ok()) {
    for (size_t i = 0; i < pending->size(); ++i) {
      out << "ERR " << admitted.ToString() << "\n";
    }
  } else {
    for (size_t i = 0; i < pending->size(); ++i) {
      PrintResponse((*pending)[i], responses[i], out);
    }
  }
  pending->clear();
  out.flush();
}

}  // namespace

size_t RunServerLoop(std::istream& in, std::ostream& out, QueryEngine& engine,
                     const ServerLoopOptions& options) {
  const size_t batch = options.batch == 0 ? 1 : options.batch;
  std::vector<Request> pending;
  pending.reserve(batch);
  size_t lines = 0;
  std::string line;
  while ((options.stop == nullptr ||
          !options.stop->load(std::memory_order_acquire)) &&
         std::getline(in, line)) {
    std::istringstream parser(line);
    std::string verb;
    parser >> verb;
    if (verb.empty()) continue;
    ++lines;
    if (verb == "STATS") {
      Flush(engine, &pending, out);
      out << "STATS " << engine.Metrics().ToJson() << "\n";
      out.flush();
      continue;
    }
    if (verb == "METRICS") {
      Flush(engine, &pending, out);
      out << "METRICS " << obs::MetricsRegistry::Global().ToJson() << "\n";
      out.flush();
      continue;
    }
    if (verb == "RELOAD") {
      // Flush first so answers stay ordered AND no buffered request can
      // straddle the swap ambiguously (each in-flight query still pins its
      // snapshot; ordering here is for the protocol transcript).
      Flush(engine, &pending, out);
      if (options.model_manager == nullptr) {
        out << "ERR FAILED_PRECONDITION: no model manager attached "
               "(start rne_server with --model)\n";
        out.flush();
        continue;
      }
      std::string path;
      parser >> path;
      const Status swapped = path.empty()
                                 ? options.model_manager->Reload()
                                 : options.model_manager->Load(path);
      if (swapped.ok()) {
        const auto snapshot = options.model_manager->Current();
        out << "RELOAD OK version=" << snapshot->version
            << " vertices=" << snapshot->model->NumVertices() << "\n";
      } else {
        out << "ERR " << swapped.ToString() << "\n";
      }
      out.flush();
      continue;
    }
    Request request;
    if (verb == "QUERY") {
      long s = -1, t = -1;
      parser >> s >> t;
      if (parser.fail() || s < 0 || t < 0) {
        Flush(engine, &pending, out);  // keep answers in request order
        out << "ERR INVALID_ARGUMENT: usage: QUERY <s> <t>\n";
        continue;
      }
      request.kind = RequestKind::kDistance;
      request.s = static_cast<VertexId>(s);
      request.t = static_cast<VertexId>(t);
    } else if (verb == "KNN") {
      long s = -1, k = -1;
      parser >> s >> k;
      if (parser.fail() || s < 0 || k < 0) {
        Flush(engine, &pending, out);
        out << "ERR INVALID_ARGUMENT: usage: KNN <s> <k>\n";
        continue;
      }
      request.kind = RequestKind::kKnn;
      request.s = static_cast<VertexId>(s);
      request.k = static_cast<size_t>(k);
    } else {
      Flush(engine, &pending, out);
      out << "ERR INVALID_ARGUMENT: unknown verb '" << verb << "'\n";
      continue;
    }
    pending.push_back(request);
    if (pending.size() >= batch) Flush(engine, &pending, out);
  }
  Flush(engine, &pending, out);
  return lines;
}

}  // namespace rne::serve
