// Serving backends: thread-safe adapters that put the repo's distance
// indexes (RNE, quantized RNE, CH, H2H, ALT/LT, G-tree, exact Dijkstra —
// all DistanceMethod implementations) behind one concurrency-safe query
// surface, plus a string-keyed factory registry so the QueryEngine, the
// rne_server tool, and tests can assemble fallback chains by name.
//
// DistanceMethod::Query is documented as not thread-safe (search methods
// reuse internal workspaces), so each adapter picks its own strategy:
//   * shared-read      — const lookups, served lock-free (RNE, quantized);
//   * per-worker state — one scratch workspace per pool worker, picked via
//                        ThreadPool::CurrentWorkerIndex() (exact Dijkstra);
//   * serialized       — an internal mutex around the index (CH, H2H, LT,
//                        G-tree), trading parallelism for correctness.
#ifndef RNE_SERVE_BACKEND_H_
#define RNE_SERVE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/serialize.h"
#include "util/status.h"

namespace rne {
class Rne;
}

namespace rne::serve {

/// A loaded index serving point-to-point distance (and optionally kNN)
/// queries. All methods are safe to call concurrently from pool workers.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  virtual std::string Name() const = 0;
  /// True when Distance() returns exact shortest-path distances.
  virtual bool IsExact() const = 0;
  virtual size_t NumVertices() const = 0;
  /// Resident index footprint in bytes (0 for search-only backends).
  virtual size_t IndexBytes() const = 0;

  /// (Approximate) shortest-path distance s -> t; kInfDistance when
  /// unreachable. Ids must be < NumVertices().
  virtual double Distance(VertexId s, VertexId t) = 0;

  /// Whether Knn() is implemented.
  virtual bool SupportsKnn() const { return false; }
  /// k nearest vertices to s by (approximate) network distance, sorted
  /// ascending. Default: empty.
  virtual std::vector<std::pair<VertexId, double>> Knn(VertexId /*s*/,
                                                       size_t /*k*/) {
    return {};
  }
};

/// Everything a factory may need to materialize a backend. Pointees must
/// outlive the backend.
struct BackendContext {
  /// Road network; required by graph-built backends (dijkstra, ch, h2h,
  /// alt, gtree) and ignored by model-file backends.
  const Graph* graph = nullptr;
  /// Serialized model path; required by "rne" / "rne-quantized".
  std::string model_path;
  /// How model-file backends open model_path: heap (default), zero-copy
  /// mmap / cold mmap, or — "rne-quantized" only — a bounded block cache.
  LoadOptions load;
  /// Worker count of the serving pool (sizes per-worker scratch).
  size_t num_workers = 1;
  /// Landmark count for the "alt" backend.
  size_t alt_landmarks = 16;
  uint64_t seed = 1;
};

using BackendFactory =
    std::function<StatusOr<std::unique_ptr<QueryBackend>>(const BackendContext&)>;

/// Registers `factory` under `name`, replacing any previous registration.
/// Tests use this to inject stub backends; built-ins are pre-registered.
void RegisterBackendFactory(const std::string& name, BackendFactory factory);

/// Instantiates the backend registered under `name`. NotFound for unknown
/// names; factory errors (missing model file, absent graph, ...) pass
/// through.
StatusOr<std::unique_ptr<QueryBackend>> MakeBackend(const std::string& name,
                                                    const BackendContext& ctx);

/// Sorted names of all registered backends ("alt", "ch", "dijkstra",
/// "gtree", "h2h", "rne", "rne-quantized", plus test registrations).
std::vector<std::string> RegisteredBackendNames();

/// Wraps an in-process trained model the caller keeps alive (benchmarks,
/// tests); identical serving behaviour to the "rne" backend but without the
/// load-from-disk step. `model` must outlive the backend.
std::unique_ptr<QueryBackend> MakeSharedModelBackend(const Rne& model);

}  // namespace rne::serve

#endif  // RNE_SERVE_BACKEND_H_
