// Sharded LRU cache for distance / kNN query results — the "hot
// origin/destination pairs never touch a backend" layer in front of the
// QueryEngine (DESIGN.md §13).
//
// Road-network query streams are heavily skewed, so a small cache absorbs
// most of the offered load. Design:
//
//   * Shards — a power-of-two number of independent LRU maps, each behind
//     its own annotated rne::Mutex; a key's shard is picked from its hash,
//     so concurrent serving threads contend only when they hit the same
//     shard.
//   * Key — (generation, kind, s, t|k). `generation` is a cache-wide
//     atomic bumped by Invalidate(): after a ModelManager hot swap every
//     pre-swap entry becomes unreachable in O(1), so a RELOAD can never
//     serve a stale distance. Invalidate() also eagerly clears the shards
//     to release memory.
//   * Values — the answer exactly as the engine produced it (distance or
//     kNN list, answering backend, exactness), so a cache hit is
//     bit-identical to the uncached answer (pinned by the differential
//     harness).
//   * Metrics — hit/miss/insert/evict/invalidation counters plus an
//     occupancy gauge, mirrored into the global registry under
//     "serve.cache.*".
//
// CachedEngine composes a ResultCache in front of a QueryEngine: hits are
// answered locally, misses go to the engine as one (smaller) batch, and OK
// non-fallback responses are inserted on the way out. Fallback answers are
// not cached by default: during a primary brownout they would pin the
// fallback's answers past recovery.
#ifndef RNE_SERVE_RESULT_CACHE_H_
#define RNE_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "util/annotations.h"

namespace rne::serve {

struct ResultCacheOptions {
  /// Total entries across all shards (split evenly; at least 1 per shard).
  size_t capacity = 1 << 16;
  /// Rounded up to the next power of two; clamped to at least 1.
  size_t num_shards = 16;
  /// Cache responses that were served by a fallback backend. Off by
  /// default: a brownout would otherwise pin the fallback's answers until
  /// they age out, long after the primary recovered.
  bool cache_fallback = false;
};

/// Point-in-time counters; `hit_rate` is hits / (hits + misses).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t generation = 0;
  size_t entries = 0;
  size_t capacity = 0;
  size_t shards = 0;
  double hit_rate = 0.0;

  std::string ToJson() const;
};

class ResultCache {
 public:
  explicit ResultCache(const ResultCacheOptions& options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// On hit, fills `*out` with the cached answer (status OK, cached=true)
  /// and refreshes the entry's LRU position. Thread-safe.
  bool Lookup(const Request& request, Response* out);

  /// Stores an OK response under the current generation, evicting the
  /// least-recently-used entry of the key's shard at capacity. Failed
  /// responses are never stored; fallback responses only when
  /// options.cache_fallback. Thread-safe.
  void Insert(const Request& request, const Response& response);

  /// O(1) wholesale invalidation: bumps the generation (pre-bump keys can
  /// no longer match) and eagerly clears every shard. Called on ModelManager
  /// hot swap. Thread-safe.
  void Invalidate();

  CacheStats Stats() const;

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  size_t num_shards() const { return shards_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  struct Key {
    uint64_t generation = 0;
    uint32_t kind = 0;  // RequestKind as int
    VertexId s = 0;
    uint64_t tk = 0;  // t for distance, k for kNN

    bool operator==(const Key& other) const = default;
  };

  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  /// The cached slice of a Response (everything deterministic about the
  /// answer; latency and fallback flags are per-serving-moment).
  struct Value {
    double distance = 0.0;
    std::vector<std::pair<VertexId, double>> knn;
    std::string backend;
    bool exact = false;
  };

  using LruList = std::list<std::pair<Key, Value>>;

  struct alignas(64) Shard {
    mutable Mutex mu;
    /// Front = most recently used.
    LruList lru RNE_GUARDED_BY(mu);
    std::unordered_map<Key, LruList::iterator, KeyHash> map
        RNE_GUARDED_BY(mu);
  };

  Key MakeKey(const Request& request) const;
  Shard& ShardFor(const Key& key);

  size_t capacity_ = 0;
  size_t per_shard_capacity_ = 0;
  const bool cache_fallback_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> generation_{0};

  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter insertions_;
  obs::Counter evictions_;
  obs::Counter invalidations_;
  std::atomic<int64_t> entries_{0};
};

/// A QueryEngine fronted by an optional ResultCache. With a null cache it
/// is a passthrough. With one, hits are answered without touching the
/// engine, misses are forwarded as one batch, and OK responses are
/// inserted on return.
///
/// Unlike QueryEngine::QueryBatch's all-or-nothing admission, a batch that
/// contains hits is never rejected whole: if the engine rejects the
/// miss sub-batch, the hits still answer and only the misses carry the
/// rejection status (per-response), with the call returning OK. A batch
/// with no hits keeps the engine's semantics (the rejection is returned).
class CachedEngine {
 public:
  /// Neither pointee is owned; both must outlive this object. `cache` may
  /// be null (passthrough).
  CachedEngine(QueryEngine* engine, ResultCache* cache)
      : engine_(engine), cache_(cache) {}

  Status QueryBatch(std::span<const Request> requests,
                    std::vector<Response>* out);

  ResultCache* cache() const { return cache_; }
  QueryEngine& engine() const { return *engine_; }

 private:
  QueryEngine* engine_;
  ResultCache* cache_;
};

}  // namespace rne::serve

#endif  // RNE_SERVE_RESULT_CACHE_H_
