#include "serve/model_manager.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace rne::serve {
namespace {

/// Serves the manager's currently published snapshot; every call acquires
/// the snapshot once and uses it consistently (model + index from the same
/// generation), so a swap mid-batch is invisible to individual queries.
class ManagedRneBackend : public QueryBackend {
 public:
  explicit ManagedRneBackend(const ModelManager* manager)
      : manager_(manager) {}

  std::string Name() const override { return "rne"; }
  bool IsExact() const override { return false; }
  size_t NumVertices() const override {
    const auto snapshot = manager_->Current();
    return snapshot == nullptr ? 0 : snapshot->model->NumVertices();
  }
  size_t IndexBytes() const override {
    const auto snapshot = manager_->Current();
    return snapshot == nullptr ? 0 : snapshot->model->IndexBytes();
  }
  double Distance(VertexId s, VertexId t) override {
    const auto snapshot = manager_->Current();
    if (snapshot == nullptr) {
      // The engine treats a throwing backend as a per-request failure and
      // retries down the chain — exactly the wanted behaviour while no
      // model has been published yet.
      throw std::runtime_error("no model published yet");
    }
    return snapshot->model->Query(s, t);
  }
  bool SupportsKnn() const override { return true; }
  std::vector<std::pair<VertexId, double>> Knn(VertexId s,
                                               size_t k) override {
    const auto snapshot = manager_->Current();
    if (snapshot == nullptr) {
      throw std::runtime_error("no model published yet");
    }
    return snapshot->index->Knn(s, k);
  }

 private:
  const ModelManager* manager_;
};

}  // namespace

StatusOr<EnvelopeInfo> VerifyIndexFile(const std::string& path,
                                       uint32_t expected_magic) {
  auto info = InspectEnvelope(path);
  if (!info.ok()) return info.status();
  if (expected_magic != 0 && info.value().index_magic != expected_magic) {
    return Status::InvalidArgument(
        path + ": index kind is " + IndexKindName(info.value().index_magic) +
        ", expected " + IndexKindName(expected_magic));
  }
  return info;
}

ModelManager::ModelManager() : ModelManager(Options()) {}

ModelManager::ModelManager(const Options& options) : options_(options) {}

Status ModelManager::Load(const std::string& path) {
  MutexLock lock(&load_mu_);
  last_path_ = path;
  // Stage 1: structural verify (envelope fields + checksums) — the same
  // check `rne_tool verify` runs — before paying the full deserialize.
  const auto info = VerifyIndexFile(path, kRneMagic);
  if (!info.ok()) {
    RNE_COUNTER_ADD("serve.swap.rejected", 1);
    return info.status();
  }
  // Stage 2: full typed load (payload structural validation lives in
  // Rne::Load) plus compatibility gate against the published generation.
  auto model = Rne::Load(path, options_.load);
  if (!model.ok()) {
    RNE_COUNTER_ADD("serve.swap.rejected", 1);
    return model.status();
  }
  const auto previous = Current();
  if (options_.require_same_vertex_count && previous != nullptr &&
      model.value().NumVertices() != previous->model->NumVertices()) {
    RNE_COUNTER_ADD("serve.swap.rejected", 1);
    return Status::FailedPrecondition(
        path + ": replacement has " +
        std::to_string(model.value().NumVertices()) +
        " vertices, published model has " +
        std::to_string(previous->model->NumVertices()));
  }
  // Cold-mapped loads defer section CRCs; settle them before the kNN index
  // reads every row (stage 1 already streamed the checks, this just marks
  // the mapping verified so queries skip the lazy gate).
  const Status verified = model.value().VerifyMapped();
  if (!verified.ok()) {
    RNE_COUNTER_ADD("serve.swap.rejected", 1);
    return verified;
  }
  // Stage 3: materialize the snapshot (kNN index build is the expensive
  // part) while the old generation keeps serving.
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->model =
      std::make_shared<const Rne>(std::move(model).value());
  snapshot->index = std::make_shared<const RneIndex>(snapshot->model.get(),
                                                     options_.num_workers);
  snapshot->version = next_version_++;
  snapshot->path = path;
  // Stage 4: lock-free publish. Readers that already hold the previous
  // shared_ptr finish on it; the old generation is freed when the last
  // in-flight query drops its reference.
  current_.store(std::move(snapshot), std::memory_order_release);
  RNE_COUNTER_ADD("serve.swap.success", 1);
  RNE_GAUGE_SET("serve.model.version", static_cast<double>(next_version_ - 1));
  for (const auto& listener : publish_listeners_) {
    listener(next_version_ - 1);
  }
  return Status::Ok();
}

void ModelManager::AddPublishListener(
    std::function<void(uint64_t version)> listener) {
  MutexLock lock(&load_mu_);
  publish_listeners_.push_back(std::move(listener));
}

Status ModelManager::Reload() {
  std::string path;
  {
    MutexLock lock(&load_mu_);
    path = last_path_;
  }
  if (path.empty()) {
    return Status::FailedPrecondition(
        "no model path on record; RELOAD needs an explicit path first");
  }
  return Load(path);
}

uint64_t ModelManager::version() const {
  const auto snapshot = Current();
  return snapshot == nullptr ? 0 : snapshot->version;
}

std::unique_ptr<QueryBackend> ModelManager::MakeManagedBackend() const {
  return std::make_unique<ManagedRneBackend>(this);
}

}  // namespace rne::serve
