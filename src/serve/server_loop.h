// Newline-delimited query protocol shared by rne_server and the protocol
// tests: the tool binary wires it to stdin/stdout, tests drive it with
// string streams in-process.
//
// Verbs (answers in request order):
//   QUERY <s> <t>  ->  DIST <value> backend=<name> exact=<0|1> fallback=<0|1>
//   KNN <s> <k>    ->  KNN <v>:<dist> ... (one line, ascending distance)
//   STATS          ->  STATS <engine metrics json>   (flushes pending batch)
//   METRICS        ->  METRICS <global registry json> (counters, gauges, and
//                      per-backend latency histograms; flushes pending batch)
//   RELOAD [path]  ->  RELOAD OK version=<v> vertices=<n> | ERR <status>
//                      (hot model swap via ModelManager; no argument re-runs
//                      the last path; flushes pending batch first)
//   anything else  ->  ERR <message>
// Per-request failures print `ERR <status>`; a batch rejected by admission
// control prints one ERR line per request in it (explicit backpressure).
#ifndef RNE_SERVE_SERVER_LOOP_H_
#define RNE_SERVE_SERVER_LOOP_H_

#include <atomic>
#include <cstddef>
#include <iosfwd>

#include "serve/model_manager.h"
#include "serve/query_engine.h"

namespace rne::serve {

struct ServerLoopOptions {
  /// Requests buffered before a batched engine call; STATS/METRICS, a
  /// malformed line, or EOF flush early so answers stay in request order.
  size_t batch = 64;
  /// Serves the RELOAD verb when set (not owned; must outlive the loop).
  /// Without it RELOAD answers ERR FAILED_PRECONDITION.
  ModelManager* model_manager = nullptr;
  /// Graceful-drain flag, checked between lines: once true the loop stops
  /// reading, flushes the pending batch, and returns (rne_server sets it
  /// from its SIGINT/SIGTERM handler).
  const std::atomic<bool>* stop = nullptr;
};

/// Reads protocol lines from `in` until EOF (or `options.stop`), writing
/// every answer to `out`. Returns the number of protocol lines processed
/// (including errors).
size_t RunServerLoop(std::istream& in, std::ostream& out, QueryEngine& engine,
                     const ServerLoopOptions& options = {});

}  // namespace rne::serve

#endif  // RNE_SERVE_SERVER_LOOP_H_
