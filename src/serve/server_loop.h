// Newline-delimited query protocol shared by rne_server (stdin and TCP
// front ends) and the protocol tests: the tool binary wires it to
// stdin/stdout or to net::TcpServer, tests drive it with string streams
// in-process.
//
// Verbs (answers in request order):
//   QUERY <s> <t>  ->  DIST <value> backend=<name> exact=<0|1>
//                      fallback=<0|1> cached=<0|1>
//   KNN <s> <k>    ->  KNN <v>:<dist> ... (one line, ascending distance)
//   STATS          ->  STATS <json>   (engine metrics plus a "cache" object
//                      — null when no cache is attached — and an
//                      "active_connections" count; flushes pending batch)
//   METRICS        ->  METRICS <global registry json> (counters, gauges, and
//                      per-backend latency histograms; flushes pending batch)
//   RELOAD [path]  ->  RELOAD OK version=<v> vertices=<n> | ERR <status>
//                      (hot model swap via ModelManager; no argument re-runs
//                      the last path; flushes pending batch first and
//                      invalidates the result cache on success)
//   anything else  ->  ERR <message>
// Per-request failures print `ERR <status>`; a batch rejected by admission
// control prints one ERR line per request in it (explicit backpressure).
//
// LineProtocolHandler is the per-connection state machine: it owns the
// pending batch and turns one input line at a time into zero or more output
// bytes. RunServerLoop wraps one handler around an istream/ostream pair
// (the legacy stdin mode); net::TcpServer keeps one handler per connection
// so pipelined requests batch into the engine without interleaving across
// connections.
#ifndef RNE_SERVE_SERVER_LOOP_H_
#define RNE_SERVE_SERVER_LOOP_H_

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "serve/model_manager.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"

namespace rne::serve {

struct ServerLoopOptions {
  /// Requests buffered before a batched engine call; STATS/METRICS, a
  /// malformed line, or EOF flush early so answers stay in request order.
  size_t batch = 64;
  /// Serves the RELOAD verb when set (not owned; must outlive the loop).
  /// Without it RELOAD answers ERR FAILED_PRECONDITION.
  ModelManager* model_manager = nullptr;
  /// Graceful-drain flag, checked between lines: once true the loop stops
  /// reading, flushes the pending batch, and returns (rne_server sets it
  /// from its SIGINT/SIGTERM handler).
  const std::atomic<bool>* stop = nullptr;
  /// Result cache consulted before the engine (not owned; may be null).
  /// A successful RELOAD invalidates it wholesale.
  ResultCache* cache = nullptr;
  /// Live connection count reported by STATS (not owned; null reads as 0 —
  /// the stdin loop has no connections). net::TcpServer points this at its
  /// own counter.
  const std::atomic<size_t>* active_connections = nullptr;
  /// Byte-stream framing limit for Consume(): once the buffered
  /// unterminated line exceeds this, the handler answers ERR and reports
  /// the stream poisoned. net::TcpServer overwrites this with its own
  /// max_line_bytes so both fronts share one limit.
  size_t max_line_bytes = 64 * 1024;
};

/// One protocol conversation: feed it lines, collect output bytes. Not
/// thread-safe — each connection (or stream) owns its handler and calls it
/// from one thread at a time.
class LineProtocolHandler {
 public:
  /// `engine` is not owned and must outlive the handler; the same goes for
  /// every pointer in `options`.
  LineProtocolHandler(QueryEngine& engine, const ServerLoopOptions& options);

  /// Processes one protocol line (no trailing newline), appending any
  /// answers to `*out`. Query answers may be deferred until the pending
  /// batch fills or Flush() is called; control verbs and errors flush
  /// first so answers never leave request order.
  void HandleLine(std::string_view line, std::string* out);

  /// Byte-stream entry point: appends `bytes` to the framing buffer, peels
  /// off every complete '\n'-terminated line (an optional trailing '\r' is
  /// stripped), and feeds each through HandleLine. Frames may be split or
  /// merged arbitrarily across calls — this is the seam the TCP front end
  /// and the protocol fuzzer share. Returns false when the buffered
  /// unterminated tail exceeded options.max_line_bytes: one ERR line was
  /// appended, the buffer was discarded, and the caller should stop feeding
  /// this stream (the TCP server closes the connection).
  bool Consume(std::string_view bytes, std::string* out);

  /// End of input: any buffered unterminated line is dropped — counted in
  /// net.partial_line_dropped and partial_lines_dropped() — and the pending
  /// batch is flushed so no answer is owed. Idempotent.
  void Finish(std::string* out);

  /// Unterminated final lines dropped by Finish() on this handler.
  size_t partial_lines_dropped() const { return partial_dropped_; }

  /// Newline-terminated frames Consume() has peeled off so far (blank lines
  /// included — this is the wire-level count the TCP server reports as
  /// net.lines).
  size_t frames() const { return frames_; }

  /// Runs the pending batch through the (cached) engine and appends every
  /// answer to `*out`. Call at end-of-input, on drain, and when a read
  /// burst is exhausted (so pipelined clients are never left waiting on a
  /// half-full batch).
  void Flush(std::string* out);

  /// True when the pending batch is non-empty (answers are owed).
  bool HasPending() const { return !pending_.empty(); }

  /// Protocol lines processed so far (including errors, excluding blanks).
  size_t lines() const { return lines_; }

 private:
  void AppendStats(std::string* out);

  QueryEngine& engine_;
  const ServerLoopOptions options_;
  CachedEngine cached_;
  std::vector<Request> pending_;
  /// Bytes received by Consume() but not yet terminated by '\n'.
  std::string buffer_;
  size_t lines_ = 0;
  size_t frames_ = 0;
  size_t partial_dropped_ = 0;
};

/// Reads protocol lines from `in` until EOF (or `options.stop`), writing
/// every answer to `out`. Returns the number of protocol lines processed
/// (including errors).
size_t RunServerLoop(std::istream& in, std::ostream& out, QueryEngine& engine,
                     const ServerLoopOptions& options = {});

}  // namespace rne::serve

#endif  // RNE_SERVE_SERVER_LOOP_H_
