#include "serve/resilience.h"

#include <algorithm>

namespace rne::serve {
namespace {

/// splitmix64 step: deterministic, seedable, and not a std random engine
/// (the raw-random lint rule bans those outside util/rng.h; this is a hash,
/// reused here so breaker jitter replays exactly under a fixed seed).
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitRandom(uint64_t* state) {
  return static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kHalfOpen:
      return "half-open";
    case BreakerState::kOpen:
      return "open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const BreakerOptions& options)
    : options_(options),
      window_(std::max<size_t>(1, options.window), 0),
      rng_state_(options.seed) {}

CircuitBreaker::Clock::duration CircuitBreaker::BackoffLocked() {
  double backoff_ms =
      static_cast<double>(options_.initial_backoff.count());
  for (uint32_t i = 0; i < reopens_; ++i) {
    backoff_ms *= options_.backoff_multiplier;
    if (backoff_ms >= static_cast<double>(options_.max_backoff.count())) {
      break;
    }
  }
  backoff_ms = std::min(
      backoff_ms, static_cast<double>(options_.max_backoff.count()));
  const double factor =
      1.0 + options_.jitter * (2.0 * UnitRandom(&rng_state_) - 1.0);
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(backoff_ms *
                                                std::max(0.0, factor)));
}

void CircuitBreaker::TripLocked(Clock::time_point now) {
  state_ = BreakerState::kOpen;
  open_until_ = now + BackoffLocked();
  probe_in_flight_ = false;
  ++trips_;
}

void CircuitBreaker::ResetWindowLocked() {
  std::fill(window_.begin(), window_.end(), 0);
  window_head_ = 0;
  window_count_ = 0;
  window_failures_ = 0;
  consecutive_failures_ = 0;
}

bool CircuitBreaker::Allow(Clock::time_point now) {
  if (!options_.enabled) return true;
  MutexLock lock(&mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now < open_until_) return false;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(Clock::time_point now) {
  if (!options_.enabled) return;
  (void)now;  // symmetry with RecordFailure; success never needs a deadline
  MutexLock lock(&mu_);
  switch (state_) {
    case BreakerState::kClosed: {
      consecutive_failures_ = 0;
      if (window_[window_head_] != 0) --window_failures_;
      window_[window_head_] = 0;
      window_head_ = (window_head_ + 1) % window_.size();
      window_count_ = std::min(window_count_ + 1, window_.size());
      return;
    }
    case BreakerState::kHalfOpen:
      // Probe answered: the backend is back. Full reset so one stale
      // failure burst cannot immediately re-trip.
      state_ = BreakerState::kClosed;
      probe_in_flight_ = false;
      reopens_ = 0;
      ResetWindowLocked();
      return;
    case BreakerState::kOpen:
      // Late completion of a request dispatched before the trip; the
      // half-open probe is the only signal that re-closes.
      return;
  }
}

void CircuitBreaker::RecordFailure(Clock::time_point now) {
  if (!options_.enabled) return;
  MutexLock lock(&mu_);
  switch (state_) {
    case BreakerState::kClosed: {
      ++consecutive_failures_;
      if (window_[window_head_] == 0) ++window_failures_;
      window_[window_head_] = 1;
      window_head_ = (window_head_ + 1) % window_.size();
      window_count_ = std::min(window_count_ + 1, window_.size());
      const bool consec_trip =
          consecutive_failures_ >= options_.consecutive_failures;
      const bool rate_trip =
          window_count_ >= options_.min_samples &&
          static_cast<double>(window_failures_) >=
              options_.error_rate_threshold *
                  static_cast<double>(window_count_);
      if (consec_trip || rate_trip) TripLocked(now);
      return;
    }
    case BreakerState::kHalfOpen:
      // Probe failed: back off harder before the next probe.
      ++reopens_;
      TripLocked(now);
      return;
    case BreakerState::kOpen:
      return;  // late failure of a pre-trip dispatch
  }
}

BreakerState CircuitBreaker::state() const {
  MutexLock lock(&mu_);
  return state_;
}

uint64_t CircuitBreaker::trips() const {
  MutexLock lock(&mu_);
  return trips_;
}

AimdLoadShedder::AimdLoadShedder(const ShedderOptions& options)
    : options_(options), limit_(options.max_limit) {}

void AimdLoadShedder::AdaptLocked(Clock::time_point now) {
  if (!adapt_scheduled_) {
    // First traffic after construction (or a long idle gap): start the
    // adaptation clock now instead of reacting to stale history.
    next_adapt_ = now + options_.adapt_interval;
    adapt_scheduled_ = true;
    return;
  }
  if (now < next_adapt_) return;
  next_adapt_ = now + options_.adapt_interval;
  const double target_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              options_.target_queue_wait_p95)
                              .count());
  if (waits_.TotalCount() > 0 && waits_.PercentileNanos(95.0) > target_ns) {
    const auto cut = static_cast<size_t>(
        static_cast<double>(limit_) * options_.multiplicative_decrease);
    limit_ = std::max(options_.min_limit, cut);
    ++decreases_;
  } else {
    // Under target — or no samples at all because everything was shed —
    // climb additively so a collapsed limit recovers on its own.
    limit_ = std::min(options_.max_limit, limit_ + options_.additive_increase);
  }
  waits_.Reset();
}

size_t AimdLoadShedder::CurrentLimit(Clock::time_point now) {
  if (!options_.enabled) return options_.max_limit;
  MutexLock lock(&mu_);
  AdaptLocked(now);
  return limit_;
}

void AimdLoadShedder::RecordQueueWait(int64_t wait_ns,
                                      Clock::time_point now) {
  if (!options_.enabled) return;
  MutexLock lock(&mu_);
  waits_.Record(wait_ns);
  AdaptLocked(now);
}

uint64_t AimdLoadShedder::decreases() const {
  MutexLock lock(&mu_);
  return decreases_;
}

}  // namespace rne::serve
