#include "serve/query_engine.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <utility>

#include "obs/trace.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace rne::serve {
namespace {

obs::LatencyStat* BackendLatencyStat(const std::string& name) {
  return obs::MetricsRegistry::Global().GetLatency("serve.backend." + name +
                                                   ".latency_ns");
}

obs::Gauge* BackendBreakerGauge(const std::string& name) {
  return obs::MetricsRegistry::Global().GetGauge("serve.breaker." + name +
                                                 ".state");
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"served\": %llu, \"rejected\": %llu, \"failed\": %llu, "
      "\"fell_back_load\": %llu, \"fell_back_deadline\": %llu, "
      "\"fell_back_breaker\": %llu, \"shed\": %llu, \"retries\": %llu, "
      "\"fast_fails\": %llu, "
      "\"qps\": %.1f, \"uptime_seconds\": %.3f, \"latency_ns\": "
      "{\"p50\": %.0f, \"p95\": %.0f, \"p99\": %.0f, \"mean\": %.0f, "
      "\"max\": %lld}}",
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(fell_back_load),
      static_cast<unsigned long long>(fell_back_deadline),
      static_cast<unsigned long long>(fell_back_breaker),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(fast_fails), qps, uptime_seconds,
      p50_ns, p95_ns, p99_ns, mean_ns, static_cast<long long>(max_ns));
  return buf;
}

QueryEngine::QueryEngine(const EngineOptions& options, ThreadPool* pool)
    : options_(options),
      owned_pool_(pool == nullptr
                      ? std::make_unique<ThreadPool>(options.num_threads)
                      : nullptr),
      pool_(pool == nullptr ? owned_pool_.get() : pool),
      start_(Clock::now()) {
  if (options_.shedder.enabled) {
    ShedderOptions shed = options_.shedder;
    shed.max_limit = std::min(shed.max_limit, options_.queue_capacity);
    shed.min_limit = std::min(shed.min_limit, shed.max_limit);
    shedder_ = std::make_unique<AimdLoadShedder>(shed);
  }
}

QueryEngine::~QueryEngine() {
  std::vector<std::thread> loaders;
  {
    MutexLock lock(&chain_mu_);
    loaders.swap(loaders_);
  }
  for (auto& t : loaders) t.join();
}

std::unique_ptr<QueryEngine::BackendSlot> QueryEngine::MakeSlot(
    const std::string& name) {
  auto slot = std::make_unique<BackendSlot>();
  slot->name = name;
  slot->latency = BackendLatencyStat(name);
  slot->breaker = std::make_unique<CircuitBreaker>(options_.breaker);
  slot->breaker_gauge = BackendBreakerGauge(name);
  return slot;
}

void QueryEngine::AddBackend(const std::string& name, BackendContext ctx) {
  ctx.num_workers = pool_->num_threads();
  auto slot = MakeSlot(name);
  BackendSlot* raw = slot.get();
  MutexLock lock(&chain_mu_);
  chain_.push_back(std::move(slot));
  // Loads run on dedicated threads, never on the serving pool: a query task
  // blocked on a loading backend must not be able to starve the load itself.
  loaders_.emplace_back([this, raw, name, ctx] {
    auto result = MakeBackend(name, ctx);
    {
      MutexLock inner(&chain_mu_);
      if (result.ok()) {
        raw->backend = std::move(result).value();
        raw->state = SlotState::kReady;
      } else {
        raw->load_status = result.status();
        raw->state = SlotState::kFailed;
      }
    }
    chain_changed_.NotifyAll();
  });
}

void QueryEngine::AddReadyBackend(std::unique_ptr<QueryBackend> backend) {
  auto slot = MakeSlot(backend->Name());
  slot->backend = std::move(backend);
  slot->state = SlotState::kReady;
  {
    MutexLock lock(&chain_mu_);
    chain_.push_back(std::move(slot));
  }
  chain_changed_.NotifyAll();
}

bool QueryEngine::AnyBackendLoading() const {
  for (const auto& slot : chain_) {
    if (slot->state == SlotState::kLoading) return true;
  }
  return false;
}

Status QueryEngine::WaitUntilLoaded() {
  MutexLock lock(&chain_mu_);
  while (AnyBackendLoading()) chain_changed_.Wait(&lock);
  for (const auto& slot : chain_) {
    if (slot->state == SlotState::kFailed) return slot->load_status;
  }
  return Status::Ok();
}

size_t QueryEngine::num_backends() const {
  MutexLock lock(&chain_mu_);
  return chain_.size();
}

std::vector<BackendHealth> QueryEngine::Health() const {
  std::vector<BackendHealth> out;
  MutexLock lock(&chain_mu_);
  out.reserve(chain_.size());
  for (const auto& slot : chain_) {
    BackendHealth health;
    health.name = slot->name;
    switch (slot->state) {
      case SlotState::kLoading:
        health.load_state = "loading";
        break;
      case SlotState::kReady:
        health.load_state = "ready";
        break;
      case SlotState::kFailed:
        health.load_state = "failed";
        break;
    }
    health.breaker = slot->breaker->state();
    health.breaker_trips = slot->breaker->trips();
    out.push_back(std::move(health));
  }
  return out;
}

QueryEngine::BackendSlot* QueryEngine::ChooseBackend(
    RequestKind kind, Clock::time_point deadline, size_t start,
    FallbackFlags* flags, size_t* index) {
  const bool bounded = deadline != Clock::time_point::max();
  MutexLock lock(&chain_mu_);
  for (size_t i = start; i < chain_.size(); ++i) {
    BackendSlot& slot = *chain_[i];
    // A still-loading backend is worth waiting for only until the request's
    // deadline; past it, the request falls down the chain (learned ->
    // exact) instead of stalling.
    while (slot.state == SlotState::kLoading) {
      if (!bounded) {
        chain_changed_.Wait(&lock);
      } else if (chain_changed_.WaitUntil(&lock, deadline) ==
                     std::cv_status::timeout &&
                 slot.state == SlotState::kLoading) {
        break;
      }
    }
    if (slot.state == SlotState::kLoading) {
      flags->any = true;
      flags->deadline = true;
      continue;
    }
    if (slot.state == SlotState::kFailed) {
      flags->any = true;
      flags->load = true;
      continue;
    }
    if (kind == RequestKind::kKnn && !slot.backend->SupportsKnn()) continue;
    // Breaker check comes last so a half-open probe slot is never consumed
    // by a backend this request cannot use anyway. Lock order is always
    // chain_mu_ -> breaker mu_; breakers never reach back into the chain.
    if (!slot.breaker->Allow(Clock::now())) {
      flags->any = true;
      flags->breaker = true;
      continue;
    }
    *index = i;
    return &slot;
  }
  return nullptr;
}

void QueryEngine::ExecuteChunk(std::span<const Request> requests,
                               std::span<Response> out,
                               Clock::time_point admitted,
                               Clock::time_point deadline_default) {
  LatencyHistogram local_latency;
  uint64_t served = 0, failed = 0, fb_load = 0, fb_deadline = 0;
  uint64_t fb_breaker = 0, retries = 0, fast_fails = 0;
  if (shedder_ != nullptr) {
    // Admission-to-execution wait for this chunk — the shedder's pressure
    // signal. One sample per chunk keeps the cost off the per-request path.
    const Clock::time_point chunk_start = Clock::now();
    shedder_->RecordQueueWait(
        std::chrono::duration_cast<std::chrono::nanoseconds>(chunk_start -
                                                             admitted)
            .count(),
        chunk_start);
  }
  // Outcome reporting shared by every dispatch result. The breaker contract
  // requires an outcome for every Allow() (a consumed half-open probe must
  // be resolved), and the gauge mirrors the post-outcome state.
  const auto record_outcome = [](BackendSlot* slot, bool ok) {
    const Clock::time_point now = Clock::now();
    if (ok) {
      slot->breaker->RecordSuccess(now);
    } else {
      slot->breaker->RecordFailure(now);
    }
    slot->breaker_gauge->Set(static_cast<double>(slot->breaker->state()));
  };
  for (size_t i = 0; i < requests.size(); ++i) {
    const Request& request = requests[i];
    Clock::time_point deadline = deadline_default;
    if (request.deadline.count() > 0) deadline = admitted + request.deadline;
    const bool bounded = deadline != Clock::time_point::max();
    Response response;
    if (bounded && Clock::now() >= deadline) {
      // Deadline burned entirely by queue wait: fail fast without touching
      // any backend — the answer would be useless and the dispatch would
      // only add load while the engine is already behind.
      response.status =
          Status::DeadlineExceeded("deadline expired while queued");
      ++fast_fails;
    } else {
      FallbackFlags flags;
      size_t next = 0;
      bool attempted = false;
      while (true) {
        size_t index = 0;
        BackendSlot* slot =
            ChooseBackend(request.kind, deadline, next, &flags, &index);
        if (slot == nullptr) {
          // Out of chain. Keep the last attempt's failure status if there
          // was one — it names the actual error.
          if (!attempted) {
            response.status =
                flags.deadline
                    ? Status::DeadlineExceeded(
                          "deadline expired before any backend became ready")
                    : Status::Unavailable(
                          "no backend can serve this request");
          }
          break;
        }
        if (attempted) ++retries;
        QueryBackend* backend = slot->backend.get();
        const size_t n = backend->NumVertices();
        const bool needs_t = request.kind == RequestKind::kDistance;
        // n == 0 means the backend cannot vouch for the id space (e.g. a
        // managed slot before its first publish); dispatch anyway and let
        // the failure path walk the chain.
        if (n > 0 && (request.s >= n || (needs_t && request.t >= n))) {
          response.status = Status::InvalidArgument(
              "vertex id out of range [0, " + std::to_string(n) + ")");
          // Client error, not backend health: report success so a consumed
          // half-open probe is released instead of wedging the breaker.
          record_outcome(slot, true);
          break;
        }
        bool attempt_ok = false;
#if !defined(RNE_OBS_DISABLED)
        // Per-backend call timing is SAMPLED 1-in-32: two clock reads plus
        // a shard-mutex Record would cost ~25% of a fast learned-backend
        // query if paid every time; sampled, the amortized cost is a
        // thread-local increment and a branch (<1%), and the latency
        // distribution estimate is statistically unchanged under load.
        thread_local uint32_t backend_sample_tick = 0;
        const bool timed =
            obs::Enabled() && (backend_sample_tick++ & 31u) == 0;
        const Clock::time_point backend_start =
            timed ? Clock::now() : Clock::time_point();
#endif
        try {
          // The chaos harness's hook: may sleep, throw, or hand back an
          // error Status — all indistinguishable from a sick backend.
          const Status injected =
              fault::MaybeInjectRuntimeFault("serve.backend." + slot->name);
          if (!injected.ok()) {
            response.status = injected;
          } else {
            if (request.kind == RequestKind::kDistance) {
              response.distance = backend->Distance(request.s, request.t);
            } else {
              response.knn = backend->Knn(request.s, request.k);
            }
#if !defined(RNE_OBS_DISABLED)
            // Backend-call time only: together with the admission-to-
            // completion histogram this splits queue wait from compute.
            if (timed) {
              slot->latency->Record(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - backend_start)
                      .count());
            }
#endif
            response.status = Status::Ok();  // clear any prior attempt's error
            response.backend = backend->Name();
            response.exact = backend->IsExact();
            response.fell_back = flags.any || index > 0;
            attempt_ok = true;
          }
        } catch (const std::exception& e) {
          response.status = Status::FailedPrecondition(
              std::string("backend '") + backend->Name() + "' threw: " +
              e.what());
        } catch (...) {
          // A non-std::exception must not escape: it would unwind through
          // the pool's TaskGroup, rethrow from QueryBatch, and skip the
          // admission release — every per-request failure becomes a
          // Response, never an exception.
          response.status = Status::FailedPrecondition(
              std::string("backend '") + backend->Name() +
              "' threw a non-standard exception");
        }
        record_outcome(slot, attempt_ok);
        if (attempt_ok) {
          if (flags.load) ++fb_load;
          if (flags.deadline) ++fb_deadline;
          if (flags.breaker) ++fb_breaker;
          break;
        }
        // Retry down the chain while deadline budget remains; the last
        // failure status stands if the budget (or the chain) runs out.
        attempted = true;
        next = index + 1;
        if (bounded && Clock::now() >= deadline) break;
      }
    }
    response.latency_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             admitted)
            .count();
    if (response.status.ok()) {
      ++served;
    } else {
      ++failed;
    }
    local_latency.Record(response.latency_ns);
    out[i] = std::move(response);
  }
  {
    MutexLock lock(&metrics_mu_);
    latency_.Merge(local_latency);
  }
  served_.Add(served);
  failed_.Add(failed);
  fell_back_load_.Add(fb_load);
  fell_back_deadline_.Add(fb_deadline);
  fell_back_breaker_.Add(fb_breaker);
  retries_.Add(retries);
  fast_fails_.Add(fast_fails);
  // Process-global aggregates (across all engines) for the METRICS verb.
  RNE_COUNTER_ADD("serve.served", served);
  RNE_COUNTER_ADD("serve.failed", failed);
  RNE_COUNTER_ADD("serve.fallback_load", fb_load);
  RNE_COUNTER_ADD("serve.fallback_deadline", fb_deadline);
  RNE_COUNTER_ADD("serve.fallback_breaker", fb_breaker);
  RNE_COUNTER_ADD("serve.retries", retries);
  RNE_COUNTER_ADD("serve.fast_fails", fast_fails);
  RNE_HIST_RECORD_MERGE("serve.latency_ns", local_latency);
}

Status QueryEngine::QueryBatch(std::span<const Request> requests,
                               std::vector<Response>* out) {
  out->clear();
  out->resize(requests.size());
  if (requests.empty()) return Status::Ok();
  const Clock::time_point admitted = Clock::now();
  {
    MutexLock lock(&admission_mu_);
    if (outstanding_ + requests.size() > options_.queue_capacity) {
      rejected_.Add(requests.size());
      RNE_COUNTER_ADD("serve.rejected", requests.size());
      return Status::Unavailable(
          "admission queue full: " + std::to_string(outstanding_) + " + " +
          std::to_string(requests.size()) + " > capacity " +
          std::to_string(options_.queue_capacity));
    }
    if (shedder_ != nullptr) {
      // Adaptive limit under the hard capacity: shed before the queue-wait
      // p95 degrades into deadline misses.
      const size_t limit = shedder_->CurrentLimit(admitted);
      if (outstanding_ + requests.size() > limit) {
        shed_.Add(requests.size());
        RNE_COUNTER_ADD("serve.shed", requests.size());
        return Status::Unavailable(
            "load shed: " + std::to_string(outstanding_) + " + " +
            std::to_string(requests.size()) + " > adaptive limit " +
            std::to_string(limit));
      }
    }
    outstanding_ += requests.size();
  }
  // Admitted count must be released on EVERY exit path. Before this guard a
  // chunk task that threw past ExecuteChunk (rethrown from TaskGroup::Wait)
  // skipped the decrement, permanently shrinking admission capacity until
  // the engine rejected all traffic.
  struct AdmissionRelease {
    QueryEngine* engine;
    size_t count;
    ~AdmissionRelease() {
      MutexLock lock(&engine->admission_mu_);
      engine->outstanding_ -= count;
    }
  } release{this, requests.size()};
  const Clock::time_point deadline_default =
      options_.default_deadline.count() > 0
          ? admitted + options_.default_deadline
          : Clock::time_point::max();
  const size_t chunk = std::max<size_t>(1, options_.batch_chunk);
  {
    TaskGroup group(pool_);
    for (size_t begin = 0; begin < requests.size(); begin += chunk) {
      const size_t end = std::min(requests.size(), begin + chunk);
      group.Submit([this, requests, out, begin, end, admitted,
                    deadline_default] {
        ExecuteChunk(requests.subspan(begin, end - begin),
                     std::span<Response>(*out).subspan(begin, end - begin),
                     admitted, deadline_default);
      });
    }
    group.Wait();
  }
  return Status::Ok();
}

Response QueryEngine::Query(const Request& request) {
  std::vector<Response> out;
  const Status admitted = QueryBatch(std::span<const Request>(&request, 1),
                                     &out);
  if (!admitted.ok()) {
    Response response;
    response.status = admitted;
    return response;
  }
  return std::move(out[0]);
}

MetricsSnapshot QueryEngine::Metrics() const {
  MetricsSnapshot snapshot;
  snapshot.uptime_seconds =
      std::chrono::duration<double>(Clock::now() - start_).count();
  snapshot.served = served_.Value();
  snapshot.rejected = rejected_.Value();
  snapshot.failed = failed_.Value();
  snapshot.fell_back_load = fell_back_load_.Value();
  snapshot.fell_back_deadline = fell_back_deadline_.Value();
  snapshot.fell_back_breaker = fell_back_breaker_.Value();
  snapshot.shed = shed_.Value();
  snapshot.retries = retries_.Value();
  snapshot.fast_fails = fast_fails_.Value();
  snapshot.qps =
      snapshot.uptime_seconds > 0.0
          ? static_cast<double>(snapshot.served) / snapshot.uptime_seconds
          : 0.0;
  MutexLock lock(&metrics_mu_);
  snapshot.p50_ns = latency_.PercentileNanos(50.0);
  snapshot.p95_ns = latency_.PercentileNanos(95.0);
  snapshot.p99_ns = latency_.PercentileNanos(99.0);
  snapshot.mean_ns = latency_.MeanNanos();
  snapshot.max_ns = latency_.MaxNanos();
  return snapshot;
}

}  // namespace rne::serve
