#include "serve/query_engine.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <utility>

#include "obs/trace.h"
#include "util/timer.h"

namespace rne::serve {
namespace {

obs::LatencyStat* BackendLatencyStat(const std::string& name) {
  return obs::MetricsRegistry::Global().GetLatency("serve.backend." + name +
                                                   ".latency_ns");
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"served\": %llu, \"rejected\": %llu, \"failed\": %llu, "
      "\"fell_back_load\": %llu, \"fell_back_deadline\": %llu, "
      "\"qps\": %.1f, \"uptime_seconds\": %.3f, \"latency_ns\": "
      "{\"p50\": %.0f, \"p95\": %.0f, \"p99\": %.0f, \"mean\": %.0f, "
      "\"max\": %lld}}",
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(fell_back_load),
      static_cast<unsigned long long>(fell_back_deadline), qps,
      uptime_seconds, p50_ns, p95_ns, p99_ns, mean_ns,
      static_cast<long long>(max_ns));
  return buf;
}

QueryEngine::QueryEngine(const EngineOptions& options, ThreadPool* pool)
    : options_(options),
      owned_pool_(pool == nullptr
                      ? std::make_unique<ThreadPool>(options.num_threads)
                      : nullptr),
      pool_(pool == nullptr ? owned_pool_.get() : pool),
      start_(Clock::now()) {}

QueryEngine::~QueryEngine() {
  std::vector<std::thread> loaders;
  {
    MutexLock lock(&chain_mu_);
    loaders.swap(loaders_);
  }
  for (auto& t : loaders) t.join();
}

void QueryEngine::AddBackend(const std::string& name, BackendContext ctx) {
  ctx.num_workers = pool_->num_threads();
  auto slot = std::make_unique<BackendSlot>();
  slot->name = name;
  slot->latency = BackendLatencyStat(name);
  BackendSlot* raw = slot.get();
  MutexLock lock(&chain_mu_);
  chain_.push_back(std::move(slot));
  // Loads run on dedicated threads, never on the serving pool: a query task
  // blocked on a loading backend must not be able to starve the load itself.
  loaders_.emplace_back([this, raw, name, ctx] {
    auto result = MakeBackend(name, ctx);
    {
      MutexLock inner(&chain_mu_);
      if (result.ok()) {
        raw->backend = std::move(result).value();
        raw->state = SlotState::kReady;
      } else {
        raw->load_status = result.status();
        raw->state = SlotState::kFailed;
      }
    }
    chain_changed_.NotifyAll();
  });
}

void QueryEngine::AddReadyBackend(std::unique_ptr<QueryBackend> backend) {
  auto slot = std::make_unique<BackendSlot>();
  slot->name = backend->Name();
  slot->latency = BackendLatencyStat(slot->name);
  slot->backend = std::move(backend);
  slot->state = SlotState::kReady;
  {
    MutexLock lock(&chain_mu_);
    chain_.push_back(std::move(slot));
  }
  chain_changed_.NotifyAll();
}

bool QueryEngine::AnyBackendLoading() const {
  for (const auto& slot : chain_) {
    if (slot->state == SlotState::kLoading) return true;
  }
  return false;
}

Status QueryEngine::WaitUntilLoaded() {
  MutexLock lock(&chain_mu_);
  while (AnyBackendLoading()) chain_changed_.Wait(&lock);
  for (const auto& slot : chain_) {
    if (slot->state == SlotState::kFailed) return slot->load_status;
  }
  return Status::Ok();
}

size_t QueryEngine::num_backends() const {
  MutexLock lock(&chain_mu_);
  return chain_.size();
}

QueryEngine::BackendSlot* QueryEngine::ChooseBackend(
    RequestKind kind, Clock::time_point deadline, bool* fell_back,
    bool* deadline_fallback, bool* load_fallback) {
  const bool bounded = deadline != Clock::time_point::max();
  MutexLock lock(&chain_mu_);
  for (size_t i = 0; i < chain_.size(); ++i) {
    BackendSlot& slot = *chain_[i];
    // A still-loading backend is worth waiting for only until the request's
    // deadline; past it, the request falls down the chain (learned ->
    // exact) instead of stalling.
    while (slot.state == SlotState::kLoading) {
      if (!bounded) {
        chain_changed_.Wait(&lock);
      } else if (chain_changed_.WaitUntil(&lock, deadline) ==
                     std::cv_status::timeout &&
                 slot.state == SlotState::kLoading) {
        break;
      }
    }
    if (slot.state == SlotState::kLoading) {
      *fell_back = true;
      *deadline_fallback = true;
      continue;
    }
    if (slot.state == SlotState::kFailed) {
      *fell_back = true;
      *load_fallback = true;
      continue;
    }
    if (kind == RequestKind::kKnn && !slot.backend->SupportsKnn()) continue;
    return &slot;
  }
  return nullptr;
}

void QueryEngine::ExecuteChunk(std::span<const Request> requests,
                               std::span<Response> out,
                               Clock::time_point admitted,
                               Clock::time_point deadline_default) {
  LatencyHistogram local_latency;
  uint64_t served = 0, failed = 0, fb_load = 0, fb_deadline = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    const Request& request = requests[i];
    Clock::time_point deadline = deadline_default;
    if (request.deadline.count() > 0) deadline = admitted + request.deadline;
    bool fell_back = false, deadline_fb = false, load_fb = false;
    Response response;
    BackendSlot* slot = ChooseBackend(request.kind, deadline, &fell_back,
                                      &deadline_fb, &load_fb);
    if (slot == nullptr) {
      response.status =
          deadline_fb ? Status::DeadlineExceeded(
                            "deadline expired before any backend became ready")
                      : Status::Unavailable("no backend can serve this request");
    } else {
      QueryBackend* backend = slot->backend.get();
      const size_t n = backend->NumVertices();
      const bool needs_t = request.kind == RequestKind::kDistance;
      if (request.s >= n || (needs_t && request.t >= n)) {
        response.status = Status::InvalidArgument(
            "vertex id out of range [0, " + std::to_string(n) + ")");
      } else {
#if !defined(RNE_OBS_DISABLED)
        // Per-backend call timing is SAMPLED 1-in-32: two clock reads plus
        // a shard-mutex Record would cost ~25% of a fast learned-backend
        // query if paid every time; sampled, the amortized cost is a
        // thread-local increment and a branch (<1%), and the latency
        // distribution estimate is statistically unchanged under load.
        thread_local uint32_t backend_sample_tick = 0;
        const bool timed =
            obs::Enabled() && (backend_sample_tick++ & 31u) == 0;
        const Clock::time_point backend_start =
            timed ? Clock::now() : Clock::time_point();
#endif
        try {
          if (request.kind == RequestKind::kDistance) {
            response.distance = backend->Distance(request.s, request.t);
          } else {
            response.knn = backend->Knn(request.s, request.k);
          }
#if !defined(RNE_OBS_DISABLED)
          // Backend-call time only: together with the admission-to-
          // completion histogram this splits queue wait from compute.
          if (timed) {
            slot->latency->Record(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - backend_start)
                    .count());
          }
#endif
          response.backend = backend->Name();
          response.exact = backend->IsExact();
          response.fell_back = fell_back;
        } catch (const std::exception& e) {
          response.status = Status::FailedPrecondition(
              std::string("backend '") + backend->Name() + "' threw: " +
              e.what());
        } catch (...) {
          // A non-std::exception must not escape: it would unwind through
          // the pool's TaskGroup, rethrow from QueryBatch, and skip the
          // admission release — every per-request failure becomes a
          // Response, never an exception.
          response.status = Status::FailedPrecondition(
              std::string("backend '") + backend->Name() +
              "' threw a non-standard exception");
        }
      }
    }
    response.latency_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             admitted)
            .count();
    if (response.status.ok()) {
      ++served;
      if (load_fb) ++fb_load;
      if (deadline_fb) ++fb_deadline;
    } else {
      ++failed;
    }
    local_latency.Record(response.latency_ns);
    out[i] = std::move(response);
  }
  {
    MutexLock lock(&metrics_mu_);
    latency_.Merge(local_latency);
  }
  served_.Add(served);
  failed_.Add(failed);
  fell_back_load_.Add(fb_load);
  fell_back_deadline_.Add(fb_deadline);
  // Process-global aggregates (across all engines) for the METRICS verb.
  RNE_COUNTER_ADD("serve.served", served);
  RNE_COUNTER_ADD("serve.failed", failed);
  RNE_COUNTER_ADD("serve.fallback_load", fb_load);
  RNE_COUNTER_ADD("serve.fallback_deadline", fb_deadline);
  RNE_HIST_RECORD_MERGE("serve.latency_ns", local_latency);
}

Status QueryEngine::QueryBatch(std::span<const Request> requests,
                               std::vector<Response>* out) {
  out->clear();
  out->resize(requests.size());
  if (requests.empty()) return Status::Ok();
  const Clock::time_point admitted = Clock::now();
  {
    MutexLock lock(&admission_mu_);
    if (outstanding_ + requests.size() > options_.queue_capacity) {
      rejected_.Add(requests.size());
      RNE_COUNTER_ADD("serve.rejected", requests.size());
      return Status::Unavailable(
          "admission queue full: " + std::to_string(outstanding_) + " + " +
          std::to_string(requests.size()) + " > capacity " +
          std::to_string(options_.queue_capacity));
    }
    outstanding_ += requests.size();
  }
  // Admitted count must be released on EVERY exit path. Before this guard a
  // chunk task that threw past ExecuteChunk (rethrown from TaskGroup::Wait)
  // skipped the decrement, permanently shrinking admission capacity until
  // the engine rejected all traffic.
  struct AdmissionRelease {
    QueryEngine* engine;
    size_t count;
    ~AdmissionRelease() {
      MutexLock lock(&engine->admission_mu_);
      engine->outstanding_ -= count;
    }
  } release{this, requests.size()};
  const Clock::time_point deadline_default =
      options_.default_deadline.count() > 0
          ? admitted + options_.default_deadline
          : Clock::time_point::max();
  const size_t chunk = std::max<size_t>(1, options_.batch_chunk);
  {
    TaskGroup group(pool_);
    for (size_t begin = 0; begin < requests.size(); begin += chunk) {
      const size_t end = std::min(requests.size(), begin + chunk);
      group.Submit([this, requests, out, begin, end, admitted,
                    deadline_default] {
        ExecuteChunk(requests.subspan(begin, end - begin),
                     std::span<Response>(*out).subspan(begin, end - begin),
                     admitted, deadline_default);
      });
    }
    group.Wait();
  }
  return Status::Ok();
}

Response QueryEngine::Query(const Request& request) {
  std::vector<Response> out;
  const Status admitted = QueryBatch(std::span<const Request>(&request, 1),
                                     &out);
  if (!admitted.ok()) {
    Response response;
    response.status = admitted;
    return response;
  }
  return std::move(out[0]);
}

MetricsSnapshot QueryEngine::Metrics() const {
  MetricsSnapshot snapshot;
  snapshot.uptime_seconds =
      std::chrono::duration<double>(Clock::now() - start_).count();
  snapshot.served = served_.Value();
  snapshot.rejected = rejected_.Value();
  snapshot.failed = failed_.Value();
  snapshot.fell_back_load = fell_back_load_.Value();
  snapshot.fell_back_deadline = fell_back_deadline_.Value();
  snapshot.qps =
      snapshot.uptime_seconds > 0.0
          ? static_cast<double>(snapshot.served) / snapshot.uptime_seconds
          : 0.0;
  MutexLock lock(&metrics_mu_);
  snapshot.p50_ns = latency_.PercentileNanos(50.0);
  snapshot.p95_ns = latency_.PercentileNanos(95.0);
  snapshot.p99_ns = latency_.PercentileNanos(99.0);
  snapshot.mean_ns = latency_.MeanNanos();
  snapshot.max_ns = latency_.MaxNanos();
  return snapshot;
}

}  // namespace rne::serve
