#include "serve/result_cache.h"

#include <algorithm>
#include <cstdio>

namespace rne::serve {
namespace {

/// splitmix64 finalizer — a fast, well-mixed stateless hash (the same
/// construction resilience.cc and fault_injection.cc use for seeding).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string CacheStats::ToJson() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"hits\": %llu, \"misses\": %llu, \"insertions\": %llu, "
      "\"evictions\": %llu, \"invalidations\": %llu, \"generation\": %llu, "
      "\"entries\": %zu, \"capacity\": %zu, \"shards\": %zu, "
      "\"hit_rate\": %.4f}",
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses),
      static_cast<unsigned long long>(insertions),
      static_cast<unsigned long long>(evictions),
      static_cast<unsigned long long>(invalidations),
      static_cast<unsigned long long>(generation), entries, capacity, shards,
      hit_rate);
  return buf;
}

size_t ResultCache::KeyHash::operator()(const Key& key) const {
  uint64_t h = Mix64(key.generation ^ (static_cast<uint64_t>(key.kind) << 62));
  h = Mix64(h ^ (static_cast<uint64_t>(key.s) << 32) ^ key.tk);
  return static_cast<size_t>(h);
}

ResultCache::ResultCache(const ResultCacheOptions& options)
    : cache_fallback_(options.cache_fallback) {
  const size_t shards = RoundUpPow2(std::max<size_t>(1, options.num_shards));
  capacity_ = std::max<size_t>(1, options.capacity);
  per_shard_capacity_ = std::max<size_t>(1, capacity_ / shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Key ResultCache::MakeKey(const Request& request) const {
  Key key;
  key.generation = generation_.load(std::memory_order_acquire);
  key.kind = static_cast<uint32_t>(request.kind);
  key.s = request.s;
  key.tk = request.kind == RequestKind::kDistance
               ? static_cast<uint64_t>(request.t)
               : static_cast<uint64_t>(request.k);
  return key;
}

ResultCache::Shard& ResultCache::ShardFor(const Key& key) {
  // shards_.size() is a power of two, so the mask keeps every hash bit fair.
  return *shards_[KeyHash()(key) & (shards_.size() - 1)];
}

bool ResultCache::Lookup(const Request& request, Response* out) {
  const Key key = MakeKey(request);
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Refresh recency: move the entry to the front of the shard's list.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      const Value& value = it->second->second;
      out->status = Status::Ok();
      out->distance = value.distance;
      out->knn = value.knn;
      out->backend = value.backend;
      out->exact = value.exact;
      out->fell_back = false;
      out->cached = true;
      out->latency_ns = 0;
      hits_.Add(1);
      RNE_COUNTER_ADD("serve.cache.hits", 1);
      return true;
    }
  }
  misses_.Add(1);
  RNE_COUNTER_ADD("serve.cache.misses", 1);
  return false;
}

void ResultCache::Insert(const Request& request, const Response& response) {
  if (!response.status.ok()) return;
  if (response.fell_back && !cache_fallback_) return;
  const Key key = MakeKey(request);
  Shard& shard = ShardFor(key);
  int64_t delta = 0;
  uint64_t evicted = 0;
  {
    MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Refresh an existing entry in place (a concurrent miss on the same
      // key raced us here); value content is identical by construction.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      if (shard.lru.size() >= per_shard_capacity_) {
        shard.map.erase(shard.lru.back().first);
        shard.lru.pop_back();
        ++evicted;
        --delta;
      }
      Value value;
      value.distance = response.distance;
      value.knn = response.knn;
      value.backend = response.backend;
      value.exact = response.exact;
      shard.lru.emplace_front(key, std::move(value));
      shard.map.emplace(key, shard.lru.begin());
      ++delta;
    }
  }
  insertions_.Add(1);
  RNE_COUNTER_ADD("serve.cache.insertions", 1);
  if (evicted > 0) {
    evictions_.Add(evicted);
    RNE_COUNTER_ADD("serve.cache.evictions", evicted);
  }
  if (delta != 0) {
    const int64_t entries =
        entries_.fetch_add(delta, std::memory_order_relaxed) + delta;
    RNE_GAUGE_SET("serve.cache.entries", static_cast<double>(entries));
  }
}

void ResultCache::Invalidate() {
  // The bump alone retires every live entry (their keys can no longer be
  // produced by MakeKey); the eager clear just releases the memory now
  // instead of one eviction at a time.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  int64_t removed = 0;
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    removed += static_cast<int64_t>(shard->lru.size());
    shard->map.clear();
    shard->lru.clear();
  }
  invalidations_.Add(1);
  RNE_COUNTER_ADD("serve.cache.invalidations", 1);
  const int64_t entries =
      entries_.fetch_sub(removed, std::memory_order_relaxed) - removed;
  RNE_GAUGE_SET("serve.cache.entries", static_cast<double>(entries));
}

CacheStats ResultCache::Stats() const {
  CacheStats stats;
  stats.hits = hits_.Value();
  stats.misses = misses_.Value();
  stats.insertions = insertions_.Value();
  stats.evictions = evictions_.Value();
  stats.invalidations = invalidations_.Value();
  stats.generation = generation_.load(std::memory_order_acquire);
  stats.entries =
      static_cast<size_t>(std::max<int64_t>(0, entries_.load()));
  stats.capacity = capacity_;
  stats.shards = shards_.size();
  const double looked_up = static_cast<double>(stats.hits + stats.misses);
  stats.hit_rate =
      looked_up > 0.0 ? static_cast<double>(stats.hits) / looked_up : 0.0;
  return stats;
}

Status CachedEngine::QueryBatch(std::span<const Request> requests,
                                std::vector<Response>* out) {
  if (cache_ == nullptr) return engine_->QueryBatch(requests, out);
  out->clear();
  out->resize(requests.size());
  std::vector<Request> misses;
  std::vector<size_t> miss_index;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!cache_->Lookup(requests[i], &(*out)[i])) {
      misses.push_back(requests[i]);
      miss_index.push_back(i);
    }
  }
  if (misses.empty()) return Status::Ok();
  std::vector<Response> miss_out;
  const Status admitted = engine_->QueryBatch(misses, &miss_out);
  if (!admitted.ok()) {
    if (miss_index.size() == requests.size()) return admitted;
    // Partial service: the hits already answered, so reject only the
    // misses (per-response) instead of failing the whole batch.
    for (const size_t i : miss_index) {
      (*out)[i].status = admitted;
    }
    return Status::Ok();
  }
  for (size_t m = 0; m < miss_index.size(); ++m) {
    cache_->Insert(misses[m], miss_out[m]);
    (*out)[miss_index[m]] = std::move(miss_out[m]);
  }
  return Status::Ok();
}

}  // namespace rne::serve
