// Per-backend health primitives for the serving path: a circuit breaker
// that takes a browning-out backend out of the fallback chain instead of
// burning every request's deadline on it, and an AIMD load shedder that
// turns queue-wait pressure into early Unavailable rejections instead of
// late DeadlineExceeded timeouts.
//
// Both classes take explicit `steady_clock::time_point now` arguments so
// tests drive the state machines with synthetic time — no sleeping, no
// flaky backoff races. Both are thread-safe; every method is one short
// critical section.
//
// Circuit breaker state machine (DESIGN.md §12):
//
//     closed --(trip: consecutive failures OR windowed error rate)--> open
//     open   --(jittered exponential backoff elapsed)--> half-open
//     half-open --(probe success)--> closed   (backoff + window reset)
//     half-open --(probe failure)--> open     (backoff doubled, capped)
//
// In half-open exactly one in-flight probe is admitted; everything else is
// skipped until the probe reports. The backoff jitter is deterministic per
// breaker (seeded splitmix64) so chaos runs replay exactly.
#ifndef RNE_SERVE_RESILIENCE_H_
#define RNE_SERVE_RESILIENCE_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "util/annotations.h"
#include "util/histogram.h"

namespace rne::serve {

enum class BreakerState { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

/// Short lowercase name for logs/metrics ("closed", "half-open", "open").
const char* BreakerStateName(BreakerState state);

struct BreakerOptions {
  /// false makes Allow() always true and Record*() no-ops (chain behaves as
  /// before this layer existed).
  bool enabled = true;
  /// Trip after this many consecutive failures regardless of rate.
  size_t consecutive_failures = 5;
  /// Trip when failures/window >= this, once the window holds min_samples.
  double error_rate_threshold = 0.5;
  size_t min_samples = 20;
  /// Sliding outcome window size (ring buffer of the last N outcomes).
  size_t window = 64;
  /// Backoff before the first half-open probe; doubles per re-trip.
  std::chrono::milliseconds initial_backoff{100};
  std::chrono::milliseconds max_backoff{10000};
  double backoff_multiplier = 2.0;
  /// Probe delay is scaled by a uniform factor in [1-jitter, 1+jitter] so a
  /// fleet of breakers tripped together does not probe in lockstep.
  double jitter = 0.2;
  uint64_t seed = 0x5eedu;
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(const BreakerOptions& options = {});

  /// True when the caller may dispatch to the guarded backend — and then
  /// MUST report the outcome via RecordSuccess/RecordFailure. Transitions
  /// open -> half-open when the backoff deadline has passed; in half-open
  /// admits exactly one probe.
  bool Allow(Clock::time_point now);
  void RecordSuccess(Clock::time_point now);
  void RecordFailure(Clock::time_point now);

  BreakerState state() const;
  /// Closed -> open transitions since construction.
  uint64_t trips() const;

 private:
  void TripLocked(Clock::time_point now) RNE_REQUIRES(mu_);
  void ResetWindowLocked() RNE_REQUIRES(mu_);
  /// Jittered backoff for the current trip streak (exponent `reopens_`).
  Clock::duration BackoffLocked() RNE_REQUIRES(mu_);

  const BreakerOptions options_;

  mutable Mutex mu_;
  BreakerState state_ RNE_GUARDED_BY(mu_) = BreakerState::kClosed;
  /// Ring of recent outcomes (1 = failure), plus derived tallies.
  std::vector<uint8_t> window_ RNE_GUARDED_BY(mu_);
  size_t window_head_ RNE_GUARDED_BY(mu_) = 0;
  size_t window_count_ RNE_GUARDED_BY(mu_) = 0;
  size_t window_failures_ RNE_GUARDED_BY(mu_) = 0;
  size_t consecutive_failures_ RNE_GUARDED_BY(mu_) = 0;
  /// Re-trips since the last close (backoff exponent).
  uint32_t reopens_ RNE_GUARDED_BY(mu_) = 0;
  Clock::time_point open_until_ RNE_GUARDED_BY(mu_);
  bool probe_in_flight_ RNE_GUARDED_BY(mu_) = false;
  uint64_t trips_ RNE_GUARDED_BY(mu_) = 0;
  uint64_t rng_state_ RNE_GUARDED_BY(mu_);
};

struct ShedderOptions {
  /// false disables shedding entirely (CurrentLimit() pins to max_limit).
  bool enabled = false;
  /// Admitted-depth bounds the AIMD limit moves between. The engine clamps
  /// max_limit to its queue capacity.
  size_t min_limit = 64;
  size_t max_limit = 4096;
  /// Queue-wait p95 above this triggers a multiplicative decrease.
  std::chrono::microseconds target_queue_wait_p95{2000};
  /// Adaptation cadence; between ticks samples accumulate.
  std::chrono::milliseconds adapt_interval{50};
  size_t additive_increase = 32;
  double multiplicative_decrease = 0.5;
};

/// Adaptive admission limit: additively raise the admitted-request depth
/// while queue wait stays under target, multiplicatively cut it when the
/// p95 queue wait exceeds target. With no samples in an interval (e.g.
/// everything was shed) the limit still climbs, so shedding self-heals.
class AimdLoadShedder {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AimdLoadShedder(const ShedderOptions& options = {});

  /// Current admitted-depth limit; performs any due adaptation tick first.
  size_t CurrentLimit(Clock::time_point now);
  /// Feeds one admission-to-execution wait sample.
  void RecordQueueWait(int64_t wait_ns, Clock::time_point now);

  /// Multiplicative decreases since construction (brownout indicator).
  uint64_t decreases() const;

 private:
  void AdaptLocked(Clock::time_point now) RNE_REQUIRES(mu_);

  const ShedderOptions options_;

  mutable Mutex mu_;
  size_t limit_ RNE_GUARDED_BY(mu_);
  LatencyHistogram waits_ RNE_GUARDED_BY(mu_);
  Clock::time_point next_adapt_ RNE_GUARDED_BY(mu_);
  bool adapt_scheduled_ RNE_GUARDED_BY(mu_) = false;
  uint64_t decreases_ RNE_GUARDED_BY(mu_) = 0;
};

}  // namespace rne::serve

#endif  // RNE_SERVE_RESILIENCE_H_
