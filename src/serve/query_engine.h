// Concurrent batched query serving (the ROADMAP's "heavy traffic" path).
//
// A QueryEngine owns an ordered fallback chain of QueryBackends and executes
// batched distance/kNN requests on a shared ThreadPool, one TaskGroup per
// batch so concurrent batches never wait on each other. It enforces:
//
//  * Admission control — a bounded count of admitted-but-unfinished
//    requests; a batch that would exceed it is rejected whole with
//    Status::Unavailable (explicit backpressure instead of unbounded queue
//    growth).
//  * Per-request deadlines — measured from admission. Backends load
//    asynchronously; a request whose primary is still loading waits only
//    until its deadline, then falls back down the chain (learned backend ->
//    exact Dijkstra), and a backend that failed to load is skipped
//    immediately. A request that cannot be answered at all reports
//    DeadlineExceeded/Unavailable rather than blocking forever.
//  * Resilience (DESIGN.md §12) — a circuit breaker per backend slot trips
//    on consecutive failures or windowed error rate and takes the backend
//    out of the chain until a jittered-backoff probe succeeds; failed
//    attempts retry down the chain while deadline budget remains; a request
//    whose deadline expired while queued fails fast without touching any
//    backend; optional AIMD load shedding keeps the admitted depth at a
//    level the queue-wait p95 can sustain.
//  * Metrics — served/rejected/failed/fallback/shed/retry counters plus a
//    merged per-batch latency histogram (p50/p95/p99 over
//    admission-to-completion nanoseconds) and QPS since start, exported as
//    a JSON-able snapshot.
#ifndef RNE_SERVE_QUERY_ENGINE_H_
#define RNE_SERVE_QUERY_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/backend.h"
#include "serve/resilience.h"
#include "util/annotations.h"
#include "util/histogram.h"
#include "util/thread_pool.h"

namespace rne::serve {

struct EngineOptions {
  /// Workers for an engine-owned pool when none is shared in (0 = hardware
  /// concurrency).
  size_t num_threads = 0;
  /// Max admitted-but-unfinished requests across all concurrent batches;
  /// batches beyond it are rejected with Unavailable.
  size_t queue_capacity = 4096;
  /// Requests per pool task; amortizes queue traffic for large batches.
  size_t batch_chunk = 32;
  /// Deadline for requests that do not carry their own (0 = none).
  std::chrono::microseconds default_deadline{0};
  /// Per-backend circuit breaker configuration (enabled by default; set
  /// breaker.enabled = false for the pre-resilience dispatch behaviour).
  BreakerOptions breaker;
  /// Adaptive load shedding (disabled by default; shedder.max_limit is
  /// clamped to queue_capacity when enabled).
  ShedderOptions shedder;
};

enum class RequestKind { kDistance, kKnn };

struct Request {
  RequestKind kind = RequestKind::kDistance;
  VertexId s = 0;
  VertexId t = 0;
  /// Neighbor count for kKnn.
  size_t k = 0;
  /// Per-request deadline from admission; 0 uses the engine default.
  std::chrono::microseconds deadline{0};
};

struct Response {
  Status status;
  double distance = kInfDistance;
  std::vector<std::pair<VertexId, double>> knn;
  /// Name of the backend that answered (empty on failure).
  std::string backend;
  bool exact = false;
  /// True when a non-primary backend answered (load failure or deadline).
  bool fell_back = false;
  /// True when the answer came from a ResultCache hit, not a backend call.
  bool cached = false;
  /// Admission-to-completion latency.
  int64_t latency_ns = 0;
};

struct MetricsSnapshot {
  uint64_t served = 0;
  uint64_t rejected = 0;   // admission-control rejections (requests)
  uint64_t failed = 0;     // per-request errors (bad ids, no backend)
  uint64_t fell_back_load = 0;      // served past a failed/absent backend
  uint64_t fell_back_deadline = 0;  // served past a still-loading backend
  uint64_t fell_back_breaker = 0;   // served past an open-breaker backend
  uint64_t shed = 0;        // requests shed by the AIMD admission limit
  uint64_t retries = 0;     // failed attempts retried down the chain
  uint64_t fast_fails = 0;  // deadline expired while queued; not dispatched
  double qps = 0.0;        // served / uptime
  double uptime_seconds = 0.0;
  double p50_ns = 0.0, p95_ns = 0.0, p99_ns = 0.0;
  double mean_ns = 0.0;
  int64_t max_ns = 0;

  std::string ToJson() const;
};

/// Health of one fallback-chain slot, for the chaos harness, the brownout
/// bench, and operator tooling.
struct BackendHealth {
  std::string name;
  /// kLoading/kReady/kFailed mirrored as a string ("loading", "ready",
  /// "failed").
  std::string load_state;
  BreakerState breaker = BreakerState::kClosed;
  uint64_t breaker_trips = 0;
};

class QueryEngine {
 public:
  /// Uses `pool` when given (not owned; must outlive the engine), otherwise
  /// creates a private pool with options.num_threads workers.
  explicit QueryEngine(const EngineOptions& options = {},
                       ThreadPool* pool = nullptr);
  /// Joins outstanding backend loads. Callers must have finished (or must
  /// not start) QueryBatch calls.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Appends a backend to the fallback chain (first added = primary) and
  /// starts loading it on a dedicated thread; queries arriving before the
  /// load finishes wait up to their deadline. `ctx.num_workers` is
  /// overwritten with the pool's worker count.
  void AddBackend(const std::string& name, BackendContext ctx);
  /// Appends an already-constructed backend, immediately ready (tests,
  /// in-process indexes).
  void AddReadyBackend(std::unique_ptr<QueryBackend> backend);

  /// Blocks until every added backend finished loading; returns the first
  /// load error (the engine still serves via the rest of the chain).
  Status WaitUntilLoaded();

  /// Executes `requests` as one batch: admits all-or-nothing (Unavailable
  /// on queue-full), fans out onto the pool, and blocks until every
  /// response is filled. `out` is resized to requests.size(); per-request
  /// failures land in Response::status, not the return value.
  Status QueryBatch(std::span<const Request> requests,
                    std::vector<Response>* out);

  /// Convenience single-request wrapper.
  Response Query(const Request& request);

  MetricsSnapshot Metrics() const;

  /// Per-slot load state and breaker health, in chain order.
  std::vector<BackendHealth> Health() const;

  ThreadPool& pool() { return *pool_; }
  size_t num_backends() const;

 private:
  enum class SlotState { kLoading, kReady, kFailed };

  struct BackendSlot {
    std::string name;
    SlotState state = SlotState::kLoading;
    std::unique_ptr<QueryBackend> backend;
    Status load_status;
    /// Registry histogram "serve.backend.<name>.latency_ns" (backend-call
    /// time only, excluding queue wait). Resolved once at AddBackend.
    obs::LatencyStat* latency = nullptr;
    /// Per-backend health model; consulted before every dispatch and fed
    /// every outcome. Never null.
    std::unique_ptr<CircuitBreaker> breaker;
    /// Registry gauge "serve.breaker.<name>.state" (0 closed, 1 half-open,
    /// 2 open). Resolved once at Add time.
    obs::Gauge* breaker_gauge = nullptr;
  };

  using Clock = std::chrono::steady_clock;

  std::unique_ptr<BackendSlot> MakeSlot(const std::string& name);

  void ExecuteChunk(std::span<const Request> requests,
                    std::span<Response> out, Clock::time_point admitted,
                    Clock::time_point deadline_default);
  /// Flags accumulated while walking the chain for one request.
  struct FallbackFlags {
    bool any = false;       // a non-primary consideration happened
    bool deadline = false;  // skipped a still-loading backend at deadline
    bool load = false;      // skipped a failed-to-load backend
    bool breaker = false;   // skipped an open-breaker backend
  };
  /// Picks the first servable slot at index >= `start` per the fallback
  /// policy; blocks on loading slots until `deadline`. Returns nullptr when
  /// no backend can serve; `*index` receives the chosen slot's position so
  /// retries resume after it. The returned slot's backend/latency pointers
  /// are stable (slots are never removed and a slot that reached kReady
  /// never changes again).
  BackendSlot* ChooseBackend(RequestKind kind, Clock::time_point deadline,
                             size_t start, FallbackFlags* flags,
                             size_t* index) RNE_EXCLUDES(chain_mu_);
  /// True while any slot is still kLoading.
  bool AnyBackendLoading() const RNE_REQUIRES(chain_mu_);

  const EngineOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
  const Clock::time_point start_;

  mutable Mutex chain_mu_;
  CondVar chain_changed_;
  std::vector<std::unique_ptr<BackendSlot>> chain_ RNE_GUARDED_BY(chain_mu_);
  std::vector<std::thread> loaders_ RNE_GUARDED_BY(chain_mu_);

  /// Engine-wide admission-to-completion latency; LatencyHistogram is not
  /// thread-safe, so chunk-local histograms merge under this mutex.
  mutable Mutex metrics_mu_;
  LatencyHistogram latency_ RNE_GUARDED_BY(metrics_mu_);
  /// Counters are registry-style atomics (TSan-clean, no lock on the update
  /// path); MetricsSnapshot stays a thin view over their Value()s. They are
  /// engine-owned — not global registry entries — because tests run several
  /// engines per process and assert exact per-engine counts; ExecuteChunk
  /// mirrors the totals into the global registry under "serve.*".
  obs::Counter served_;
  obs::Counter rejected_;
  obs::Counter failed_;
  obs::Counter fell_back_load_;
  obs::Counter fell_back_deadline_;
  obs::Counter fell_back_breaker_;
  obs::Counter shed_;
  obs::Counter retries_;
  obs::Counter fast_fails_;

  /// Null unless options.shedder.enabled; internally thread-safe.
  std::unique_ptr<AimdLoadShedder> shedder_;

  Mutex admission_mu_;
  size_t outstanding_ RNE_GUARDED_BY(admission_mu_) = 0;
};

}  // namespace rne::serve

#endif  // RNE_SERVE_QUERY_ENGINE_H_
