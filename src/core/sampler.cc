#include "core/sampler.h"

#include <algorithm>

namespace rne {

std::vector<VertexPair> RandomVertexPairs(size_t num_vertices, size_t n,
                                          Rng& rng, size_t source_reuse) {
  RNE_CHECK(num_vertices >= 2);
  RNE_CHECK(source_reuse >= 1);
  std::vector<VertexPair> out;
  out.reserve(n);
  while (out.size() < n) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(num_vertices));
    for (size_t r = 0; r < source_reuse && out.size() < n; ++r) {
      VertexId t = s;
      while (t == s) t = static_cast<VertexId>(rng.UniformIndex(num_vertices));
      out.emplace_back(s, t);
    }
  }
  return out;
}

std::vector<VertexPair> SubgraphLevelPairs(const PartitionHierarchy& hier,
                                           uint32_t level, size_t n, Rng& rng,
                                           size_t source_reuse) {
  RNE_CHECK(source_reuse >= 1);
  const std::vector<uint32_t> parts = hier.PartitionAtLevel(level);
  RNE_CHECK(!parts.empty());
  std::vector<VertexPair> out;
  out.reserve(n);
  while (out.size() < n) {
    // One source sub-graph + source vertex, several target draws.
    const uint32_t a = parts[rng.UniformIndex(parts.size())];
    const auto& va = hier.node(a).vertices;
    const VertexId s = va[rng.UniformIndex(va.size())];
    for (size_t r = 0; r < source_reuse && out.size() < n; ++r) {
      const uint32_t b = parts[rng.UniformIndex(parts.size())];
      const auto& vb = hier.node(b).vertices;
      const VertexId t = vb[rng.UniformIndex(vb.size())];
      if (s == t) continue;
      out.emplace_back(s, t);
    }
  }
  return out;
}

std::vector<VertexPair> LandmarkPairs(const std::vector<VertexId>& landmarks,
                                      size_t num_vertices, size_t n,
                                      Rng& rng) {
  RNE_CHECK(!landmarks.empty());
  RNE_CHECK(num_vertices >= 2);
  std::vector<VertexPair> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const VertexId u = landmarks[rng.UniformIndex(landmarks.size())];
    VertexId v = u;
    while (v == u) v = static_cast<VertexId>(rng.UniformIndex(num_vertices));
    out.emplace_back(u, v);
  }
  return out;
}

std::vector<VertexPair> ErrorBasedPairs(
    const SpatialGrid& grid, const std::vector<double>& bucket_errors,
    FineTuneStrategy strategy, size_t n, Rng& rng, size_t source_reuse) {
  RNE_CHECK(bucket_errors.size() == grid.num_buckets());
  RNE_CHECK(source_reuse >= 1);
  // Usable buckets: positive error and at least one cell pair.
  std::vector<double> weights(bucket_errors.size(), 0.0);
  double max_err = 0.0;
  size_t argmax = bucket_errors.size();
  for (size_t b = 0; b < bucket_errors.size(); ++b) {
    if (!grid.BucketNonEmpty(b) || bucket_errors[b] <= 0.0) continue;
    weights[b] = bucket_errors[b];
    if (bucket_errors[b] > max_err) {
      max_err = bucket_errors[b];
      argmax = b;
    }
  }
  std::vector<VertexPair> out;
  if (argmax == bucket_errors.size()) return out;  // nothing to fix
  out.reserve(n);
  size_t attempts = 0;
  const size_t max_attempts = 4 * n + 64;
  while (out.size() < n && attempts++ < max_attempts) {
    const size_t bucket = strategy == FineTuneStrategy::kLocal
                              ? argmax
                              : rng.WeightedIndex(weights);
    VertexId s = kInvalidVertex, t = kInvalidVertex;
    if (!grid.SamplePair(bucket, rng, &s, &t)) continue;
    // Keep `s` and the target cell; redraw the target vertex `reuse` times.
    const auto& target_cell = grid.CellVertices(grid.CellOf(t));
    for (size_t r = 0; r < source_reuse && out.size() < n; ++r) {
      const VertexId tt =
          r == 0 ? t : target_cell[rng.UniformIndex(target_cell.size())];
      if (s == tt) continue;  // bucket 0 can draw identical endpoints
      out.emplace_back(s, tt);
    }
  }
  return out;
}

}  // namespace rne
