// 8-bit quantized serving of a trained RNE model (extension beyond the
// paper). Table IV's story is the index-size/quality trade-off; per-dimension
// affine quantization of the |V| x d float matrix cuts the serving footprint
// 4x while the L1 distance remains a per-dimension sum:
//   |x_a - x_b| = step_d * |q_a - q_b|      (same step within a dimension)
// so queries stay a single pass over two byte rows.
#ifndef RNE_CORE_QUANTIZED_H_
#define RNE_CORE_QUANTIZED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/rne.h"

namespace rne {

/// Quantized read-only copy of an Rne model's serving matrix (L1 only).
class QuantizedRne {
 public:
  /// Quantizes model.vertex_embeddings() with per-dimension min/step.
  /// The model must use the L1 metric (p == 1).
  explicit QuantizedRne(const Rne& model);

  /// Approximate shortest-path distance in the edge-weight unit.
  double Query(VertexId s, VertexId t) const;

  size_t NumVertices() const { return rows_; }
  size_t dim() const { return dim_; }
  /// Serving footprint: |V| x d bytes + 1 step per dimension.
  size_t IndexBytes() const {
    return codes_.size() * sizeof(uint8_t) + steps_.size() * sizeof(float);
  }

  Status Save(const std::string& path) const;
  static StatusOr<QuantizedRne> Load(const std::string& path);

 private:
  QuantizedRne() = default;

  const uint8_t* Row(VertexId v) const { return codes_.data() + v * dim_; }

  size_t rows_ = 0;
  size_t dim_ = 0;
  double scale_ = 1.0;               // model's distance de-normalization
  std::vector<float> steps_;         // per-dimension quantization step
  std::vector<uint8_t> codes_;       // row-major |V| x d
};

}  // namespace rne

#endif  // RNE_CORE_QUANTIZED_H_
