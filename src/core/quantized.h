// 8-bit quantized serving of a trained RNE model (extension beyond the
// paper). Table IV's story is the index-size/quality trade-off; per-dimension
// affine quantization of the |V| x d float matrix cuts the serving footprint
// 4x while the L1 distance remains a per-dimension sum:
//   |x_a - x_b| = step_d * |q_a - q_b|      (same step within a dimension)
// so queries stay a single pass over two byte rows.
//
// The code matrix can be served from owned heap storage (default), zero-copy
// from an mmap'd v2 file, or — for cold storage with a hard resident-memory
// cap — through a bounded BlockCache that preads rows on demand.
#ifndef RNE_CORE_QUANTIZED_H_
#define RNE_CORE_QUANTIZED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/kernels.h"
#include "core/rne.h"
#include "util/block_cache.h"
#include "util/mmap_file.h"

namespace rne {

/// Quantized read-only copy of an Rne model's serving matrix (L1 only).
class QuantizedRne {
 public:
  /// Largest embedding dimension servable through the block cache (rows are
  /// staged through fixed stack buffers on the query path).
  static constexpr size_t kMaxColdDim = 4096;

  /// Quantizes model.vertex_embeddings() with per-dimension min/step.
  /// The model must use the L1 metric (p == 1).
  explicit QuantizedRne(const Rne& model);

  /// Approximate shortest-path distance in the edge-weight unit. Cold-map
  /// models verify deferred section checksums on first access; block-cached
  /// models read the two rows through the cache. Either path throws
  /// CorruptionError on a bad file, which the serving layer converts into a
  /// backend error.
  double Query(VertexId s, VertexId t) const {
    RNE_DCHECK(s < rows_ && t < rows_);
    if (mapping_ != nullptr) mapping_->EnsureAllVerifiedOrThrow();
    if (cache_ != nullptr) return QueryCold(s, t);
    return QuantizedL1Kernel(RowPtr(s), RowPtr(t), steps_.data(), dim_) *
           scale_;
  }

  size_t NumVertices() const { return rows_; }
  size_t dim() const { return dim_; }
  /// Serving footprint: |V| x d bytes + 1 step per dimension. For
  /// block-cached models the resident footprint is the cache, not this.
  size_t IndexBytes() const {
    return rows_ * dim_ * sizeof(uint8_t) + steps_.size() * sizeof(float);
  }

  /// True when the code matrix is a view into an mmap'd file.
  bool IsMapped() const { return mapping_ != nullptr; }
  /// True when rows are served through the block cache.
  bool IsBlockCached() const { return cache_ != nullptr; }
  /// The block cache behind a kBlockCache load (nullptr otherwise).
  const BlockCache* block_cache() const { return cache_.get(); }
  /// Completes any deferred (cold-map) section verification.
  Status VerifyMapped() const {
    return mapping_ == nullptr ? Status::Ok() : mapping_->EnsureAllVerified();
  }

  /// kSectioned (default) writes the v2 envelope with the code matrix in an
  /// aligned lazy-verify section; kLegacyV1 writes the flat v1 payload.
  Status Save(const std::string& path,
              SaveFormat format = SaveFormat::kSectioned) const;
  /// Heap load; reads v1 and v2 files.
  static StatusOr<QuantizedRne> Load(const std::string& path);
  /// Mode-controlled load. kMmap/kMmapCold serve codes zero-copy from a
  /// mapping; kBlockCache serves them through a bounded pread cache (v2
  /// files only; resident cost = block_bytes * block_count). v1 files fall
  /// back to a heap load for every non-heap mode.
  static StatusOr<QuantizedRne> Load(const std::string& path,
                                     const LoadOptions& options);

 private:
  QuantizedRne() = default;

  const uint8_t* RowPtr(VertexId v) const {
    return (codes_view_ != nullptr ? codes_view_ : codes_.data()) + v * dim_;
  }
  double QueryCold(VertexId s, VertexId t) const;
  Status ParseMeta(BinaryReader& r, const std::string& path);
  Status CheckConsistent(const std::string& path) const;

  size_t rows_ = 0;
  size_t dim_ = 0;
  double scale_ = 1.0;               // model's distance de-normalization
  std::vector<float> steps_;         // per-dimension quantization step
  std::vector<uint8_t> codes_;       // row-major |V| x d (heap loads)
  const uint8_t* codes_view_ = nullptr;  // mmap loads: view into mapping_
  std::shared_ptr<const MappedEnvelope> mapping_;
  std::shared_ptr<BlockCache> cache_;    // kBlockCache loads
  uint64_t codes_file_offset_ = 0;       // section offset for cache reads
};

}  // namespace rne

#endif  // RNE_CORE_QUANTIZED_H_
