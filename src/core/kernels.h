// Runtime-dispatched SIMD kernels for the distance/gradient hot paths.
//
// Every kernel has a scalar reference implementation plus hand-vectorized
// variants (AVX2+FMA and SSE4.2 on x86-64, NEON on AArch64). The best
// supported variant is selected ONCE at startup from CPUID (no -march=native
// anywhere: vectorized bodies carry per-function target attributes, so the
// binary stays portable and the dispatch is a single indirect call resolved
// at first use). `RNE_KERNEL_BACKEND=scalar|sse42|avx2|neon` forces a
// backend for A/B benchmarking and parity tests.
//
// Precision convention: the vectorized float kernels compute element
// differences in the float domain (correctly rounded, <= 1/2 ulp relative
// error per element) and accumulate in double, so the only deviation from
// the all-double scalar reference is the per-element rounding — bounded by
// eps_f/2 * result for L1 — while the sum itself never drifts. The L1 sign
// gradient is exact: sign(float(a-b)) == sign(double(a)-double(b)) because
// float subtraction only rounds to +/-0 when the operands are equal.
// (Converting the float difference instead of both operands halves the
// cvtps_pd pressure, which is what the convert-heavy ports bottleneck on.)
#ifndef RNE_CORE_KERNELS_H_
#define RNE_CORE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/macros.h"

namespace rne {

/// One backend's kernel set. All pointers are non-null.
struct KernelOps {
  /// sum_i |a[i] - b[i]|
  double (*l1)(const float* a, const float* b, size_t n);
  /// sum_i (a[i] - b[i])^2 (caller applies sqrt)
  double (*l2sq)(const float* a, const float* b, size_t n);
  /// Fused pass: writes sign(a[i] - b[i]) in {-1, 0, +1} into grad[i] and
  /// returns the L1 distance. One memory sweep instead of MetricDist +
  /// MetricGradient.
  double (*l1_sign_grad)(const float* a, const float* b, size_t n,
                         float* grad);
  /// row[i] += alpha * g[i] (the SGD row update).
  void (*axpy)(float* row, const float* g, size_t n, float alpha);
  /// sum_i steps[i] * |a[i] - b[i]| over uint8 codes (quantized L1 serving;
  /// byte absolute differences via the SAD-family max/min-subtract idiom,
  /// widened and weighted by the per-dimension dequantization step).
  double (*qdist)(const uint8_t* a, const uint8_t* b, const float* steps,
                  size_t n);
};

/// The scalar reference backend (always available; parity baseline).
const KernelOps& ScalarKernels();

/// The backend selected at startup for this CPU (honours the
/// RNE_KERNEL_BACKEND override). Stable for the process lifetime.
const KernelOps& ActiveKernels();

/// Name of the active backend: "avx2", "sse42", "neon", or "scalar".
const char* KernelBackendName();

/// Names of every backend the running CPU supports (for tests/benchmarks).
/// Returns a null-terminated array of C strings.
const char* const* SupportedKernelBackends();

/// Looks up a backend by name; nullptr when unsupported on this CPU.
const KernelOps* KernelBackendByName(const char* name);

// ---------------------------------------------------------------- wrappers

inline double L1Kernel(std::span<const float> a, std::span<const float> b) {
  RNE_DCHECK(a.size() == b.size());
  return ActiveKernels().l1(a.data(), b.data(), a.size());
}

inline double L2SquaredKernel(std::span<const float> a,
                              std::span<const float> b) {
  RNE_DCHECK(a.size() == b.size());
  return ActiveKernels().l2sq(a.data(), b.data(), a.size());
}

inline double L1SignGradKernel(std::span<const float> a,
                               std::span<const float> b,
                               std::span<float> grad) {
  RNE_DCHECK(a.size() == b.size() && grad.size() == a.size());
  return ActiveKernels().l1_sign_grad(a.data(), b.data(), a.size(),
                                      grad.data());
}

inline void AxpyKernel(std::span<float> row, std::span<const float> g,
                       float alpha) {
  RNE_DCHECK(row.size() == g.size());
  ActiveKernels().axpy(row.data(), g.data(), row.size(), alpha);
}

inline double QuantizedL1Kernel(const uint8_t* a, const uint8_t* b,
                                const float* steps, size_t n) {
  return ActiveKernels().qdist(a, b, steps, n);
}

}  // namespace rne

#endif  // RNE_CORE_KERNELS_H_
