// Dense row-major embedding matrix (float32 storage, the paper's index).
#ifndef RNE_CORE_EMBEDDING_H_
#define RNE_CORE_EMBEDDING_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/macros.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace rne {

/// rows x dim matrix of float32, one row per embedded entity.
class EmbeddingMatrix {
 public:
  EmbeddingMatrix() = default;
  EmbeddingMatrix(size_t rows, size_t dim)
      : rows_(rows), dim_(dim), data_(rows * dim, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t dim() const { return dim_; }

  std::span<float> Row(size_t i) {
    RNE_DCHECK(i < rows_);
    return {data_.data() + i * dim_, dim_};
  }
  std::span<const float> Row(size_t i) const {
    RNE_DCHECK(i < rows_);
    return {data_.data() + i * dim_, dim_};
  }

  /// Uniform init in [-scale, scale].
  void RandomInit(Rng& rng, double scale);

  /// Sum of |entries| (used for the norm-sharing diagnostics of Sec IV-A).
  double L1Norm() const;

  size_t MemoryBytes() const { return data_.size() * sizeof(float); }

  void Write(BinaryWriter& w) const;
  bool Read(BinaryReader& r);

 private:
  size_t rows_ = 0;
  size_t dim_ = 0;
  std::vector<float> data_;
};

}  // namespace rne

#endif  // RNE_CORE_EMBEDDING_H_
