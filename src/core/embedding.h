// Dense row-major embedding matrix (float32 storage, the paper's index).
#ifndef RNE_CORE_EMBEDDING_H_
#define RNE_CORE_EMBEDDING_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/macros.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace rne {

/// rows x dim matrix of float32, one row per embedded entity.
///
/// Storage is either owned (a vector, the default) or a borrowed read-only
/// view into memory managed elsewhere — e.g. a section of an mmap'd index
/// file (see View). View matrices answer every const query identically to
/// owned ones, which is what makes mmap-served models bit-identical to
/// heap-loaded ones; mutating a view is a programming error.
class EmbeddingMatrix {
 public:
  EmbeddingMatrix() = default;
  EmbeddingMatrix(size_t rows, size_t dim)
      : rows_(rows), dim_(dim), data_(rows * dim, 0.0f) {}

  /// Non-owning view over `rows * dim` floats; the caller keeps `data`
  /// alive (and unchanged) for the life of the matrix and any copies.
  static EmbeddingMatrix View(const float* data, size_t rows, size_t dim) {
    EmbeddingMatrix m;
    m.rows_ = rows;
    m.dim_ = dim;
    m.view_ = data;
    return m;
  }

  size_t rows() const { return rows_; }
  size_t dim() const { return dim_; }
  bool owns_storage() const { return view_ == nullptr; }

  std::span<float> Row(size_t i) {
    RNE_DCHECK(i < rows_ && view_ == nullptr);
    return {data_.data() + i * dim_, dim_};
  }
  std::span<const float> Row(size_t i) const {
    RNE_DCHECK(i < rows_);
    return {raw() + i * dim_, dim_};
  }

  /// Contiguous row-major storage (rows * dim floats).
  const float* raw() const { return view_ != nullptr ? view_ : data_.data(); }

  /// Uniform init in [-scale, scale].
  void RandomInit(Rng& rng, double scale);

  /// Sum of |entries| (used for the norm-sharing diagnostics of Sec IV-A).
  double L1Norm() const;

  size_t MemoryBytes() const { return rows_ * dim_ * sizeof(float); }

  void Write(BinaryWriter& w) const;
  bool Read(BinaryReader& r);

  /// v2 split: dimensions go in the metadata payload, the float data in an
  /// aligned section (written by the caller via BinaryWriter::AddSection).
  void WriteMeta(BinaryWriter& w) const;
  bool ReadMeta(BinaryReader& r, uint64_t section_bytes);

  /// Replaces storage with an owned, zeroed rows x dim buffer (used by v2
  /// heap loads before ReadSectionInto fills it).
  float* AllocateOwned(size_t rows, size_t dim);

 private:
  size_t rows_ = 0;
  size_t dim_ = 0;
  std::vector<float> data_;
  const float* view_ = nullptr;
};

}  // namespace rne

#endif  // RNE_CORE_EMBEDDING_H_
