// Tree-structured index for range and kNN queries in embedding space
// (Sec VI). Reuses the partition tree: every node stores its global
// embedding (from the trained model) plus a covering radius — the maximum
// metric distance from the node's embedding to any target vertex embedding
// beneath it. The triangle inequality of the Lp metric then prunes subtrees:
//   dist(source, node) - radius(node) > tau  =>  no target under `node`
//   can be within tau of the source.
#ifndef RNE_CORE_RNE_INDEX_H_
#define RNE_CORE_RNE_INDEX_H_

#include <utility>
#include <vector>

#include "core/rne.h"

namespace rne {

/// Range/kNN index over a target set (e.g. POIs); all distances are in the
/// edge-weight unit (the model's scale is applied internally). Results are
/// approximate exactly as Query() is.
class RneIndex {
 public:
  /// Indexes every vertex as a target. `model` must outlive the index.
  /// `num_threads` > 1 parallelizes the radius computation of the build
  /// (queries are unaffected); 0/1 builds sequentially.
  explicit RneIndex(const Rne* model, size_t num_threads = 1);
  /// Indexes only `targets` (must be valid vertex ids).
  RneIndex(const Rne* model, std::vector<VertexId> targets,
           size_t num_threads = 1);

  /// All targets whose estimated distance to `source` is <= tau,
  /// unordered.
  std::vector<VertexId> Range(VertexId source, double tau) const;

  /// The k targets with smallest estimated distance to `source`, as
  /// (vertex, estimated distance) sorted by distance. The source vertex
  /// itself is included if it is a target.
  std::vector<std::pair<VertexId, double>> Knn(VertexId source,
                                               size_t k) const;

  size_t num_targets() const { return num_targets_; }
  /// Extra memory on top of the model (radii + per-leaf target lists).
  size_t MemoryBytes() const;

 private:
  void BuildRadii(size_t num_threads);

  const Rne* model_;
  /// radius per tree node in the edge-weight unit; negative = no targets.
  std::vector<double> radius_;
  /// targets contained in each leaf node (indexed by node id; empty for
  /// internal nodes).
  std::vector<std::vector<VertexId>> leaf_targets_;
  size_t num_targets_ = 0;
};

}  // namespace rne

#endif  // RNE_CORE_RNE_INDEX_H_
