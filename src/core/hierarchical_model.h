// Hierarchical RNE model (Sec IV).
//
// Every non-root node of the partition hierarchy owns a *local* embedding
// representing its position among siblings; every vertex additionally owns a
// vertex-level local embedding (the paper's M_L). The *global* embedding of
// a vertex is the sum of the local embeddings on its root-to-vertex path:
//   v_global = sum_{node in anc(v)} node_local + vertex_local[v].
// The flat RNE-Naive model is the degenerate case of a hierarchy whose root
// is its only node (no internal levels).
#ifndef RNE_CORE_HIERARCHICAL_MODEL_H_
#define RNE_CORE_HIERARCHICAL_MODEL_H_

#include <span>
#include <vector>

#include "core/embedding.h"
#include "partition/hierarchy.h"

namespace rne {

class HierarchicalModel {
 public:
  /// `hier` must outlive the model. `p` is the Lp metric parameter.
  HierarchicalModel(const PartitionHierarchy* hier, size_t dim, double p);

  size_t dim() const { return dim_; }
  double p() const { return p_; }
  const PartitionHierarchy& hierarchy() const { return *hier_; }

  /// Model level of the vertex-local embeddings (internal node levels are
  /// 1..max_level; vertices sit one deeper).
  uint32_t vertex_level() const { return hier_->max_level() + 1; }
  /// Total number of model levels carrying parameters (internal + vertex).
  uint32_t num_levels() const { return vertex_level(); }

  void RandomInit(Rng& rng, double scale);

  /// Writes the global embedding of vertex v into `out` (dim floats).
  void GlobalOf(VertexId v, std::span<float> out) const;

  /// Writes the global embedding of a tree node (sum of the locals on its
  /// path from level 1 down to itself; zero vector for the root).
  void NodeGlobalOf(uint32_t node, std::span<float> out) const;

  /// Mutable local embedding of a non-root tree node.
  std::span<float> NodeLocal(uint32_t node) { return node_local_.Row(node); }
  std::span<const float> NodeLocal(uint32_t node) const {
    return node_local_.Row(node);
  }
  /// Mutable vertex-level local embedding.
  std::span<float> VertexLocal(VertexId v) { return vertex_local_.Row(v); }
  std::span<const float> VertexLocal(VertexId v) const {
    return vertex_local_.Row(v);
  }

  /// Estimated (unscaled) distance between two vertices under the model.
  double Estimate(VertexId s, VertexId t) const;

  /// Flattens to the |V| x d global matrix M used for serving.
  EmbeddingMatrix FlattenVertices() const;
  /// Global embeddings of all tree nodes (row index = node id).
  EmbeddingMatrix FlattenNodes() const;

  /// Sum of L1 norms of all local matrices (Sec IV-A diagnostics: the
  /// hierarchical model attains smaller total norm than a flat one).
  double SumLocalNorms() const {
    return node_local_.L1Norm() + vertex_local_.L1Norm();
  }

 private:
  const PartitionHierarchy* hier_;
  size_t dim_;
  double p_;
  EmbeddingMatrix node_local_;    // one row per tree node (root row unused)
  EmbeddingMatrix vertex_local_;  // one row per vertex
};

}  // namespace rne

#endif  // RNE_CORE_HIERARCHICAL_MODEL_H_
