#include "core/hierarchical_model.h"

#include <algorithm>

#include "core/metric.h"

namespace rne {

HierarchicalModel::HierarchicalModel(const PartitionHierarchy* hier,
                                     size_t dim, double p)
    : hier_(hier),
      dim_(dim),
      p_(p),
      node_local_(hier->num_nodes(), dim),
      vertex_local_(hier->num_vertices(), dim) {
  RNE_CHECK(dim_ > 0);
  RNE_CHECK(p_ > 0.0);
}

void HierarchicalModel::RandomInit(Rng& rng, double scale) {
  node_local_.RandomInit(rng, scale);
  vertex_local_.RandomInit(rng, scale * 0.1);
  // The root's local embedding is shared by all vertices and cancels in every
  // difference; keep it at zero so node globals are well defined.
  std::fill(node_local_.Row(hier_->root()).begin(),
            node_local_.Row(hier_->root()).end(), 0.0f);
}

void HierarchicalModel::GlobalOf(VertexId v, std::span<float> out) const {
  RNE_DCHECK(out.size() == dim_);
  std::copy(vertex_local_.Row(v).begin(), vertex_local_.Row(v).end(),
            out.begin());
  for (const uint32_t node : hier_->AncestorsOf(v)) {
    const auto local = node_local_.Row(node);
    for (size_t i = 0; i < dim_; ++i) out[i] += local[i];
  }
}

void HierarchicalModel::NodeGlobalOf(uint32_t node,
                                     std::span<float> out) const {
  RNE_DCHECK(out.size() == dim_);
  std::fill(out.begin(), out.end(), 0.0f);
  for (uint32_t cur = node;
       cur != UINT32_MAX && hier_->node(cur).level > 0;
       cur = hier_->node(cur).parent) {
    const auto local = node_local_.Row(cur);
    for (size_t i = 0; i < dim_; ++i) out[i] += local[i];
  }
}

double HierarchicalModel::Estimate(VertexId s, VertexId t) const {
  std::vector<float> vs(dim_), vt(dim_);
  GlobalOf(s, vs);
  GlobalOf(t, vt);
  return MetricDist(vs, vt, p_);
}

EmbeddingMatrix HierarchicalModel::FlattenVertices() const {
  EmbeddingMatrix out(hier_->num_vertices(), dim_);
  for (VertexId v = 0; v < hier_->num_vertices(); ++v) {
    GlobalOf(v, out.Row(v));
  }
  return out;
}

EmbeddingMatrix HierarchicalModel::FlattenNodes() const {
  EmbeddingMatrix out(hier_->num_nodes(), dim_);
  // Top-down accumulation: global(node) = global(parent) + local(node).
  for (uint32_t level = 1; level <= hier_->max_level(); ++level) {
    for (const uint32_t id : hier_->NodesAtLevel(level)) {
      const uint32_t parent = hier_->node(id).parent;
      auto row = out.Row(id);
      const auto parent_row = out.Row(parent);
      const auto local = node_local_.Row(id);
      for (size_t i = 0; i < dim_; ++i) row[i] = parent_row[i] + local[i];
    }
  }
  return out;
}

}  // namespace rne
