// RNE: learned road-network distance index (the paper's primary
// contribution). Build() partitions the network, trains the hierarchical
// embedding (phases 1-3), and flattens it into a |V| x d serving matrix;
// Query() answers an approximate shortest-path distance with one L1
// computation — no graph search.
//
// Typical use:
//   Graph g = MakeRoadNetwork({...});
//   Rne rne = Rne::Build(g, RneConfig{});
//   double approx_meters = rne.Query(s, t);
#ifndef RNE_CORE_RNE_H_
#define RNE_CORE_RNE_H_

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/embedding.h"
#include "core/metric.h"
#include "core/trainer.h"
#include "partition/hierarchy.h"
#include "util/mmap_file.h"

namespace rne {

struct RneConfig {
  /// Embedding dimension d (paper: 64 for BJ, 128 for FLA/US-W).
  size_t dim = 64;
  /// Lp metric parameter; 1 is the paper's recommendation.
  double p = 1.0;
  /// false builds the flat RNE-Naive model (no partition hierarchy, no
  /// phase-1 training) for the Fig 7/11 ablations.
  bool hierarchical = true;
  /// Partition-tree shape (fanout kappa, leaf threshold delta).
  HierarchyOptions hierarchy;
  /// Training-phase parameters; `dim` and `p` above override the copies
  /// inside.
  TrainConfig train;
  /// Disable phase 3 (Fig 11 ablation).
  bool fine_tune = true;
};

/// Build-time breakdown reported by Build(). Phase indexes: 0 = hierarchy
/// embedding, 1 = vertex embedding, 2 = active fine-tuning.
struct RneBuildStats {
  double partition_seconds = 0.0;
  double train_seconds = 0.0;
  double total_seconds = 0.0;
  size_t samples_processed = 0;
  size_t num_tree_nodes = 0;
  double phase_seconds[3] = {0.0, 0.0, 0.0};
  size_t phase_samples[3] = {0, 0, 0};
  /// SGD worker threads actually used by the trainer (1 = sequential).
  size_t train_threads = 1;
};

/// Immutable trained model. Copyable (matrices + tree); cheap to move.
class Rne {
 public:
  /// Partitions, trains, and flattens. `stats` (optional) receives timings.
  static Rne Build(const Graph& g, const RneConfig& config,
                   RneBuildStats* stats = nullptr);

  /// Approximate shortest-path distance in the edge-weight unit.
  /// Cold-mapped models verify deferred section checksums on first access
  /// and throw CorruptionError if the file is bad (the serving layer turns
  /// that into a backend error); heap models pay one null-pointer branch.
  double Query(VertexId s, VertexId t) const {
    if (mapping_ != nullptr) mapping_->EnsureAllVerifiedOrThrow();
    return MetricDist(vertex_emb_.Row(s), vertex_emb_.Row(t), p_) * scale_;
  }

  /// Batched one-to-many queries (the paper's dispatch workload: one rider
  /// against many candidate cars). Writes distances(s, targets[i]) into
  /// out[i]; out must have targets.size() entries. Streams the matrix rows
  /// sequentially, which the compiler vectorizes — measurably faster than
  /// calling Query in a loop.
  void QueryOneToMany(VertexId s, std::span<const VertexId> targets,
                      std::span<double> out) const;

  /// Approximate k nearest vertices to `s` among `targets` by embedding
  /// distance (brute-force scan; use RneIndex for large target sets).
  std::vector<std::pair<VertexId, double>> QueryKnn(
      VertexId s, std::span<const VertexId> targets, size_t k) const;

  size_t dim() const { return vertex_emb_.dim(); }
  double p() const { return p_; }
  /// Build provenance persisted with the model: worker threads resolved for
  /// the partition build and total build wall time. Zero when the model
  /// predates this field (older files load fine; the trailer is optional).
  uint32_t build_threads() const { return build_threads_; }
  double build_seconds() const { return build_seconds_; }
  /// Distance de-normalization factor baked into Query().
  double scale() const { return scale_; }
  size_t NumVertices() const { return vertex_emb_.rows(); }

  const EmbeddingMatrix& vertex_embeddings() const { return vertex_emb_; }
  /// Global embeddings of partition-tree nodes (row = node id), used by the
  /// range/kNN index.
  const EmbeddingMatrix& node_embeddings() const { return node_emb_; }
  const PartitionHierarchy& hierarchy() const { return *hierarchy_; }

  /// Serving footprint (the paper's "index size"): the |V| x d matrix.
  size_t IndexBytes() const { return vertex_emb_.MemoryBytes(); }

  /// Online refresh (extension beyond the paper's static setting): continues
  /// SGD directly on the flattened vertex matrix with fresh exact samples,
  /// e.g. after localized edge-weight changes. `lr0` as in TrainConfig.
  /// Node embeddings (used by RneIndex) are left untouched; rebuild indexes
  /// after large refreshes.
  void RefineOnline(const std::vector<DistanceSample>& samples, size_t epochs,
                    double lr0, uint64_t seed = 17);

  /// Saves the model; kSectioned (default) emits the v2 envelope with the
  /// embedding matrices in aligned, lazily-verifiable sections so the file
  /// can be served via mmap. kLegacyV1 emits the flat v1 payload.
  Status Save(const std::string& path,
              SaveFormat format = SaveFormat::kSectioned) const;
  /// Heap load; reads v1 and v2 files.
  static StatusOr<Rne> Load(const std::string& path);
  /// Mode-controlled load. kMmap / kMmapCold serve the embedding matrices
  /// zero-copy from a read-only mapping (v1 files fall back to a heap
  /// load — there is nothing to map). kBlockCache is not supported for RNE
  /// models (the kNN index needs resident rows); use QuantizedRne for
  /// block-cached cold storage.
  static StatusOr<Rne> Load(const std::string& path,
                            const LoadOptions& options);

  /// True when the matrices are views into an mmap'd file.
  bool IsMapped() const { return mapping_ != nullptr; }
  /// Completes any deferred (cold-map) section verification. Ok for heap
  /// models. Call before bulk row access that bypasses Query(), e.g.
  /// building an RneIndex over a cold-mapped model.
  Status VerifyMapped() const {
    return mapping_ == nullptr ? Status::Ok() : mapping_->EnsureAllVerified();
  }

 private:
  Rne() = default;
  static StatusOr<Rne> LoadMapped(const std::string& path,
                                  const LoadOptions& options);
  Status ParseMeta(BinaryReader& r, const std::string& path,
                   std::shared_ptr<PartitionHierarchy>* hierarchy);
  Status CheckConsistent(const std::string& path) const;

  std::shared_ptr<const PartitionHierarchy> hierarchy_;
  EmbeddingMatrix vertex_emb_;
  EmbeddingMatrix node_emb_;
  std::shared_ptr<const MappedEnvelope> mapping_;
  double p_ = 1.0;
  double scale_ = 1.0;
  uint32_t build_threads_ = 0;
  double build_seconds_ = 0.0;
};

}  // namespace rne

#endif  // RNE_CORE_RNE_H_
