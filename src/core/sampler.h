// Training-sample selection strategies (Algorithm 2).
//
// Phase 1 (hierarchy): sub-graph pairs uniform, then vertices uniform within
// each sub-graph — so every pair of level-l partitions is represented
// regardless of its size.
// Phase 2 (vertices): landmark-based pairs (u in U, v in V) that anchor all
// vertices against a small, well-spread reference set.
// Phase 3 (fine-tuning): error-based pairs drawn from the distance-interval
// buckets of a SpatialGrid, either all from the worst bucket (Local) or
// proportional to per-bucket error (Global).
#ifndef RNE_CORE_SAMPLER_H_
#define RNE_CORE_SAMPLER_H_

#include <utility>
#include <vector>

#include "core/spatial_grid.h"
#include "partition/hierarchy.h"
#include "util/rng.h"

namespace rne {

using VertexPair = std::pair<VertexId, VertexId>;

/// Uniformly random vertex pairs with distinct endpoints. `source_reuse`
/// keeps each drawn source for that many consecutive pairs: the marginal
/// distribution of single pairs is unchanged, but grouped sources let the
/// exact-distance sampler amortize one search over several pairs.
std::vector<VertexPair> RandomVertexPairs(size_t num_vertices, size_t n,
                                          Rng& rng, size_t source_reuse = 1);

/// Sub-graph-level sample selection for hierarchy level `level` (Alg 2 (1)):
/// choose a pair of level-`level` partitions uniformly, then one vertex
/// uniformly from each side. `source_reuse` as in RandomVertexPairs.
std::vector<VertexPair> SubgraphLevelPairs(const PartitionHierarchy& hier,
                                           uint32_t level, size_t n, Rng& rng,
                                           size_t source_reuse = 1);

/// Landmark-based selection (Alg 2 (2)): pairs (u, v) with u uniform over
/// `landmarks` and v uniform over all vertices.
std::vector<VertexPair> LandmarkPairs(const std::vector<VertexId>& landmarks,
                                      size_t num_vertices, size_t n, Rng& rng);

/// Error-based fine-tuning strategies (Alg 2 (3), Fig 8b).
enum class FineTuneStrategy {
  /// All samples from the bucket with the highest current error.
  kLocal,
  /// Samples spread over buckets proportionally to their error.
  kGlobal,
};

/// Draws `n` pairs according to per-bucket errors (size = grid.num_buckets();
/// non-positive error means "skip bucket"). Buckets with no pairs are
/// skipped. `source_reuse` keeps the drawn source vertex for several target
/// draws from the same cell pair.
std::vector<VertexPair> ErrorBasedPairs(const SpatialGrid& grid,
                                        const std::vector<double>& bucket_errors,
                                        FineTuneStrategy strategy, size_t n,
                                        Rng& rng, size_t source_reuse = 1);

}  // namespace rne

#endif  // RNE_CORE_SAMPLER_H_
