// Accuracy-evaluation utilities shared by tests, benchmarks, and tools:
// the error metrics of Sec III-B (absolute/relative), aggregate summaries,
// cumulative error curves (Fig 15), and per-distance-interval breakdowns
// (Fig 8 / Fig 17).
#ifndef RNE_CORE_EVALUATION_H_
#define RNE_CORE_EVALUATION_H_

#include <functional>
#include <vector>

#include "algo/distance_sampler.h"

namespace rne {

/// Distance estimator under evaluation: returns the approximate distance
/// s -> t (an Rne query, a baseline, ...).
using DistanceFn = std::function<double(VertexId s, VertexId t)>;

/// Aggregate error summary over a validation set.
struct ErrorSummary {
  double mean_rel = 0.0;
  double mean_abs = 0.0;
  double max_rel = 0.0;
  /// Population variance of the relative error (the paper tracks
  /// var(e_rel) during fine-tuning).
  double var_rel = 0.0;
  size_t num_pairs = 0;
};

/// Evaluates `fn` against exact samples. Pairs with non-positive or
/// infinite exact distance are skipped.
ErrorSummary EvaluateErrors(const DistanceFn& fn,
                            const std::vector<DistanceSample>& validation);

/// Fraction of queries with relative error <= each threshold (thresholds in
/// relative units, e.g. 0.02 for 2%). Result aligns with `thresholds`.
std::vector<double> CumulativeErrorCurve(
    const DistanceFn& fn, const std::vector<DistanceSample>& validation,
    const std::vector<double>& thresholds);

/// Per-distance-interval errors: validation pairs are bucketed into
/// `num_buckets` equal-width intervals of [0, max distance]; entry i holds
/// the summary for bucket i (num_pairs = 0 for empty buckets).
std::vector<ErrorSummary> ErrorsByDistance(
    const DistanceFn& fn, const std::vector<DistanceSample>& validation,
    size_t num_buckets);

}  // namespace rne

#endif  // RNE_CORE_EVALUATION_H_
