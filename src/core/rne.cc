#include "core/rne.h"

#include <queue>
#include <utility>

#include "core/kernels.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rne {

Rne Rne::Build(const Graph& g, const RneConfig& config, RneBuildStats* stats) {
  RNE_CHECK(g.NumVertices() >= 2);
  Timer total;

  HierarchyOptions hopt = config.hierarchy;
  if (!config.hierarchical) {
    // Degenerate one-node tree: the flat RNE-Naive model.
    hopt.leaf_threshold = g.NumVertices();
    hopt.max_levels = 1;
  }
  Timer partition_timer;
  std::shared_ptr<PartitionHierarchy> hierarchy;
  {
    RNE_SPAN("build.partition");
    hierarchy = std::make_shared<PartitionHierarchy>(
        PartitionHierarchy::Build(g, hopt));
  }
  const double partition_seconds = partition_timer.ElapsedSeconds();

  TrainConfig tcfg = config.train;
  tcfg.dim = config.dim;
  tcfg.p = config.p;
  if (!config.fine_tune) tcfg.finetune_rounds = 0;

  Timer train_timer;
  Trainer trainer(g, *hierarchy, tcfg);
  double phase_seconds[3] = {0.0, 0.0, 0.0};
  size_t phase_samples[3] = {0, 0, 0};
  size_t samples_before = 0;
  const auto run_phase = [&](int phase, auto&& fn) {
    Timer phase_timer;
    fn();
    phase_seconds[phase] = phase_timer.ElapsedSeconds();
    phase_samples[phase] = trainer.total_samples_processed() - samples_before;
    samples_before = trainer.total_samples_processed();
  };
  if (config.hierarchical) {
    run_phase(0, [&] { trainer.TrainHierarchyPhase(); });
  }
  run_phase(1, [&] { trainer.TrainVertexPhase(); });
  run_phase(2, [&] { trainer.FineTunePhase(); });
  const double train_seconds = train_timer.ElapsedSeconds();

  Rne model;
  model.hierarchy_ = std::move(hierarchy);
  model.vertex_emb_ = trainer.model().FlattenVertices();
  model.node_emb_ = trainer.model().FlattenNodes();
  model.p_ = config.p;
  model.scale_ = trainer.scale();
  model.build_threads_ = static_cast<uint32_t>(
      ResolveNumThreads(hopt.partition.num_threads));
  model.build_seconds_ = total.ElapsedSeconds();

  if (stats != nullptr) {
    stats->partition_seconds = partition_seconds;
    stats->train_seconds = train_seconds;
    stats->total_seconds = total.ElapsedSeconds();
    stats->samples_processed = trainer.total_samples_processed();
    stats->num_tree_nodes = model.hierarchy_->num_nodes();
    for (int i = 0; i < 3; ++i) {
      stats->phase_seconds[i] = phase_seconds[i];
      stats->phase_samples[i] = phase_samples[i];
    }
    stats->train_threads = trainer.sgd_threads();
  }
  return model;
}

void Rne::QueryOneToMany(VertexId s, std::span<const VertexId> targets,
                         std::span<double> out) const {
  RNE_CHECK(out.size() == targets.size());
  if (mapping_ != nullptr) mapping_->EnsureAllVerifiedOrThrow();
  const auto src = vertex_emb_.Row(s);
  for (size_t i = 0; i < targets.size(); ++i) {
    out[i] = MetricDist(src, vertex_emb_.Row(targets[i]), p_) * scale_;
  }
}

std::vector<std::pair<VertexId, double>> Rne::QueryKnn(
    VertexId s, std::span<const VertexId> targets, size_t k) const {
  std::vector<double> dist(targets.size());
  QueryOneToMany(s, targets, dist);
  // Max-heap of the k best seen so far.
  std::priority_queue<std::pair<double, VertexId>> best;
  for (size_t i = 0; i < targets.size(); ++i) {
    if (best.size() < k) {
      best.emplace(dist[i], targets[i]);
    } else if (!best.empty() && dist[i] < best.top().first) {
      best.pop();
      best.emplace(dist[i], targets[i]);
    }
  }
  std::vector<std::pair<VertexId, double>> out(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    out[i] = {best.top().second, best.top().first};
    best.pop();
  }
  return out;
}

void Rne::RefineOnline(const std::vector<DistanceSample>& samples,
                       size_t epochs, double lr0, uint64_t seed) {
  RNE_CHECK_MSG(vertex_emb_.owns_storage(),
                "RefineOnline requires a heap-loaded model (mmap views are "
                "read-only)");
  if (samples.empty()) return;
  Rng rng(seed);
  const size_t dim = vertex_emb_.dim();
  const double lr_norm = 1.0 / (4.0 * static_cast<double>(dim));
  std::vector<double> grad(dim);
  std::vector<float> fgrad(dim);
  std::vector<uint32_t> order(samples.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(order);
    const double lr =
        lr0 * (epochs <= 1 ? 1.0
                           : 1.0 - 0.9 * static_cast<double>(epoch) /
                                       static_cast<double>(epochs - 1));
    for (const uint32_t idx : order) {
      const DistanceSample& sample = samples[idx];
      if (sample.dist == kInfDistance) continue;
      auto vs = vertex_emb_.Row(sample.s);
      auto vt = vertex_emb_.Row(sample.t);
      double dist;
      if (p_ == 1.0) {
        dist = L1DistWithSignGrad(vs, vt, fgrad);
      } else {
        dist = MetricDist(vs, vt, p_);
      }
      const double err = dist - sample.dist / scale_;
      if (err == 0.0) continue;
      const double coeff = 2.0 * err * lr * lr_norm;
      if (p_ != 1.0) {
        MetricGradient(vs, vt, p_, dist, grad);
        for (size_t d = 0; d < dim; ++d) {
          fgrad[d] = static_cast<float>(grad[d]);
        }
      }
      const float alpha = static_cast<float>(coeff);
      AxpyKernel(vs, fgrad, -alpha);
      AxpyKernel(vt, fgrad, alpha);
    }
  }
}

Status Rne::Save(const std::string& path, SaveFormat format) const {
  BinaryWriter w(path, kRneMagic);
  if (!w.ok()) return Status::IoError("cannot open " + path + ".tmp");
  if (format == SaveFormat::kSectioned) {
    // The matrices live in aligned sections so an mmap load can serve rows
    // zero-copy; lazy-verify lets cold maps defer their CRC to first use.
    w.AddSection(kSecRneVertexEmb, vertex_emb_.raw(),
                 vertex_emb_.MemoryBytes(), kSectionFlagLazyVerify);
    w.AddSection(kSecRneNodeEmb, node_emb_.raw(), node_emb_.MemoryBytes(),
                 kSectionFlagLazyVerify);
  }
  w.WritePod(p_);
  w.WritePod(scale_);
  if (format == SaveFormat::kSectioned) {
    vertex_emb_.WriteMeta(w);
    node_emb_.WriteMeta(w);
  } else {
    vertex_emb_.Write(w);
    node_emb_.Write(w);
  }
  hierarchy_->WriteTo(w);
  // Optional build-provenance trailer; readers that predate it stop here.
  w.WritePod(build_threads_);
  w.WritePod(build_seconds_);
  return w.Finish();
}

Status Rne::ParseMeta(BinaryReader& r, const std::string& path,
                      std::shared_ptr<PartitionHierarchy>* hierarchy) {
  *hierarchy = std::make_shared<PartitionHierarchy>();
  if (!r.ReadPod(&p_) || !r.ReadPod(&scale_)) {
    return r.ReadError("corrupt RNE model file " + path);
  }
  if (r.format_version() >= kFormatVersionV2) {
    // An absent section means zero bytes (the writer drops empty sections);
    // ReadMeta cross-checks rows*dim against the extent either way, so a
    // missing section with a non-empty matrix still fails as corrupt.
    const SectionInfo* vsec = r.FindSection(kSecRneVertexEmb);
    const SectionInfo* nsec = r.FindSection(kSecRneNodeEmb);
    if (!vertex_emb_.ReadMeta(r, vsec == nullptr ? 0 : vsec->size) ||
        !node_emb_.ReadMeta(r, nsec == nullptr ? 0 : nsec->size)) {
      return r.ReadError("corrupt RNE model file " + path);
    }
  } else if (!vertex_emb_.Read(r) || !node_emb_.Read(r)) {
    return r.ReadError("corrupt RNE model file " + path);
  }
  if (!PartitionHierarchy::ReadFrom(r, hierarchy->get())) {
    return r.ReadError("corrupt RNE model file " + path);
  }
  // Build-provenance trailer, absent in files written before it existed.
  if (r.remaining() >= sizeof(build_threads_) + sizeof(build_seconds_)) {
    if (!r.ReadPod(&build_threads_) || !r.ReadPod(&build_seconds_)) {
      return r.ReadError("corrupt RNE model file " + path);
    }
  }
  return Status::Ok();
}

Status Rne::CheckConsistent(const std::string& path) const {
  if (vertex_emb_.rows() != hierarchy_->num_vertices() ||
      node_emb_.rows() != hierarchy_->num_nodes()) {
    return Status::Corruption("inconsistent RNE model file " + path);
  }
  return Status::Ok();
}

StatusOr<Rne> Rne::Load(const std::string& path) {
  return Load(path, LoadOptions{});
}

StatusOr<Rne> Rne::Load(const std::string& path, const LoadOptions& options) {
  if (options.mode == LoadMode::kMmap ||
      options.mode == LoadMode::kMmapCold) {
    return LoadMapped(path, options);
  }
  if (options.mode == LoadMode::kBlockCache) {
    return Status::InvalidArgument(
        "RNE models do not support block-cache loads (the kNN index needs "
        "resident rows); use mmap, or QuantizedRne for cold storage");
  }
  BinaryReader r(path, kRneMagic);
  if (!r.ok()) return r.status();
  Rne model;
  std::shared_ptr<PartitionHierarchy> hierarchy;
  RNE_RETURN_IF_ERROR(model.ParseMeta(r, path, &hierarchy));
  RNE_RETURN_IF_ERROR(r.Finish());
  if (r.format_version() >= kFormatVersionV2) {
    float* vertices = model.vertex_emb_.AllocateOwned(
        model.vertex_emb_.rows(), model.vertex_emb_.dim());
    if (model.vertex_emb_.MemoryBytes() > 0) {
      RNE_RETURN_IF_ERROR(r.ReadSectionInto(kSecRneVertexEmb, vertices,
                                            model.vertex_emb_.MemoryBytes()));
    }
    float* nodes = model.node_emb_.AllocateOwned(model.node_emb_.rows(),
                                                 model.node_emb_.dim());
    if (model.node_emb_.MemoryBytes() > 0) {
      RNE_RETURN_IF_ERROR(r.ReadSectionInto(kSecRneNodeEmb, nodes,
                                            model.node_emb_.MemoryBytes()));
    }
  }
  model.hierarchy_ = std::move(hierarchy);
  RNE_RETURN_IF_ERROR(model.CheckConsistent(path));
  return model;
}

StatusOr<Rne> Rne::LoadMapped(const std::string& path,
                              const LoadOptions& options) {
  auto opened = MappedEnvelope::Open(path, kRneMagic, options.mode);
  if (!opened.ok()) {
    if (opened.status().code() == StatusCode::kFailedPrecondition) {
      // v1 file: there are no sections to map. Fall back to an eager heap
      // load so `--mmap` serving of pre-v2 files keeps working.
      return Load(path, LoadOptions{});
    }
    return opened.status();
  }
  std::shared_ptr<const MappedEnvelope> env = std::move(opened).value();
  BinaryReader r(env->file().data(), env->file().size(), path, kRneMagic);
  if (!r.ok()) return r.status();
  Rne model;
  std::shared_ptr<PartitionHierarchy> hierarchy;
  RNE_RETURN_IF_ERROR(model.ParseMeta(r, path, &hierarchy));
  RNE_RETURN_IF_ERROR(r.Finish());
  model.vertex_emb_ = EmbeddingMatrix::View(
      reinterpret_cast<const float*>(env->SectionData(kSecRneVertexEmb)),
      model.vertex_emb_.rows(), model.vertex_emb_.dim());
  model.node_emb_ = EmbeddingMatrix::View(
      reinterpret_cast<const float*>(env->SectionData(kSecRneNodeEmb)),
      model.node_emb_.rows(), model.node_emb_.dim());
  model.mapping_ = std::move(env);
  model.hierarchy_ = std::move(hierarchy);
  RNE_RETURN_IF_ERROR(model.CheckConsistent(path));
  return model;
}

}  // namespace rne
