#include "core/rne_index.h"

#include <algorithm>
#include <queue>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace rne {

RneIndex::RneIndex(const Rne* model, size_t num_threads) : model_(model) {
  std::vector<VertexId> all(model->NumVertices());
  for (VertexId v = 0; v < all.size(); ++v) all[v] = v;
  leaf_targets_.assign(model_->hierarchy().num_nodes(), {});
  for (const VertexId v : all) {
    leaf_targets_[model_->hierarchy().LeafOf(v)].push_back(v);
  }
  num_targets_ = all.size();
  BuildRadii(num_threads);
}

RneIndex::RneIndex(const Rne* model, std::vector<VertexId> targets,
                   size_t num_threads)
    : model_(model) {
  leaf_targets_.assign(model_->hierarchy().num_nodes(), {});
  for (const VertexId v : targets) {
    RNE_CHECK(v < model_->NumVertices());
    leaf_targets_[model_->hierarchy().LeafOf(v)].push_back(v);
  }
  num_targets_ = targets.size();
  BuildRadii(num_threads);
}

void RneIndex::BuildRadii(size_t num_threads) {
  const PartitionHierarchy& hier = model_->hierarchy();
  const double scale = model_->scale();
  radius_.assign(hier.num_nodes(), -1.0);
  // Bottom-up: visit nodes by decreasing level so children precede parents.
  std::vector<uint32_t> order(hier.num_nodes());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return hier.node(a).level > hier.node(b).level;
  });
  // Radius must be measured from the node's own embedding to the target
  // vertices' embeddings, so compute it directly per node over the targets
  // in its subtree. Collect subtree targets bottom-up (cheap list splicing),
  // then scan the distance maxima — the O(levels * |targets| * dim) hot part
  // — in parallel over nodes: every node writes only its own radius_ slot.
  std::vector<std::vector<VertexId>> subtree(hier.num_nodes());
  std::vector<uint32_t> populated;
  populated.reserve(hier.num_nodes());
  for (const uint32_t id : order) {
    const auto& node = hier.node(id);
    std::vector<VertexId>& mine = subtree[id];
    if (node.IsLeaf()) {
      mine = leaf_targets_[id];
    } else {
      for (const uint32_t c : node.children) {
        mine.insert(mine.end(), subtree[c].begin(), subtree[c].end());
      }
    }
    if (!mine.empty()) populated.push_back(id);
  }
  const auto radius_of = [&](uint32_t id) {
    const auto center = model_->node_embeddings().Row(id);
    double r = 0.0;
    for (const VertexId v : subtree[id]) {
      r = std::max(r, MetricDist(center, model_->vertex_embeddings().Row(v),
                                 model_->p()));
    }
    radius_[id] = r * scale;
  };
  if (num_threads > 1 && populated.size() > 1) {
    ThreadPool pool(num_threads);
    pool.ParallelFor(populated.size(),
                     [&](size_t i) { radius_of(populated[i]); });
  } else {
    for (const uint32_t id : populated) radius_of(id);
  }
}

std::vector<VertexId> RneIndex::Range(VertexId source, double tau) const {
  const PartitionHierarchy& hier = model_->hierarchy();
  const auto src = model_->vertex_embeddings().Row(source);
  const double scale = model_->scale();
  std::vector<VertexId> result;
  std::vector<uint32_t> stack = {hier.root()};
  uint64_t visited = 0, pruned = 0;
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    if (radius_[id] < 0.0) continue;  // no targets below
    ++visited;
    const double center_dist =
        MetricDist(src, model_->node_embeddings().Row(id), model_->p()) *
        scale;
    if (center_dist - radius_[id] > tau) {  // triangle-inequality cut
      ++pruned;
      continue;
    }
    const auto& node = hier.node(id);
    if (node.IsLeaf()) {
      for (const VertexId v : leaf_targets_[id]) {
        if (model_->Query(source, v) <= tau) result.push_back(v);
      }
    } else {
      for (const uint32_t c : node.children) stack.push_back(c);
    }
  }
  RNE_COUNTER_ADD("index.range.queries", 1);
  RNE_COUNTER_ADD("index.range.nodes_visited", visited);
  RNE_COUNTER_ADD("index.range.nodes_pruned", pruned);
  return result;
}

std::vector<std::pair<VertexId, double>> RneIndex::Knn(VertexId source,
                                                       size_t k) const {
  const PartitionHierarchy& hier = model_->hierarchy();
  const auto src = model_->vertex_embeddings().Row(source);
  const double scale = model_->scale();

  // Entry kinds: tree node (is_vertex=false) keyed by the lower bound
  // max(dist - radius, 0); vertex keyed by its estimated distance.
  struct Entry {
    double key;
    uint32_t id;
    bool is_vertex;
    bool operator>(const Entry& o) const { return key > o.key; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  std::vector<std::pair<VertexId, double>> result;
  if (k == 0 || num_targets_ == 0) return result;

  uint64_t nodes_pushed = 0, nodes_visited = 0;
  if (radius_[hier.root()] >= 0.0) {
    const double d =
        MetricDist(src, model_->node_embeddings().Row(hier.root()),
                   model_->p()) *
        scale;
    queue.push({std::max(d - radius_[hier.root()], 0.0), hier.root(), false});
    ++nodes_pushed;
  }
  while (!queue.empty() && result.size() < k) {
    const Entry e = queue.top();
    queue.pop();
    if (e.is_vertex) {
      result.emplace_back(static_cast<VertexId>(e.id), e.key);
      continue;
    }
    ++nodes_visited;
    const auto& node = hier.node(e.id);
    if (node.IsLeaf()) {
      for (const VertexId v : leaf_targets_[e.id]) {
        queue.push({model_->Query(source, v), v, true});
      }
    } else {
      for (const uint32_t c : node.children) {
        if (radius_[c] < 0.0) continue;
        const double d =
            MetricDist(src, model_->node_embeddings().Row(c), model_->p()) *
            scale;
        queue.push({std::max(d - radius_[c], 0.0), c, false});
        ++nodes_pushed;
      }
    }
  }
  // Pushed-but-never-popped nodes are exactly those the best-first bound
  // pruned: the search terminated with them still enqueued.
  RNE_COUNTER_ADD("index.knn.queries", 1);
  RNE_COUNTER_ADD("index.knn.nodes_visited", nodes_visited);
  RNE_COUNTER_ADD("index.knn.nodes_pruned", nodes_pushed - nodes_visited);
  return result;
}

size_t RneIndex::MemoryBytes() const {
  size_t bytes = radius_.size() * sizeof(double);
  for (const auto& t : leaf_targets_) bytes += t.size() * sizeof(VertexId);
  return bytes;
}

}  // namespace rne
