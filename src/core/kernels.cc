#include "core/kernels.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define RNE_KERNELS_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__GNUC__)
#define RNE_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace rne {
namespace {

// ----------------------------------------------------------------- scalar

double L1Scalar(const float* a, const float* b, size_t n) {
  // Four independent accumulators keep the dependency chain short.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += std::abs(static_cast<double>(a[i]) - b[i]);
    s1 += std::abs(static_cast<double>(a[i + 1]) - b[i + 1]);
    s2 += std::abs(static_cast<double>(a[i + 2]) - b[i + 2]);
    s3 += std::abs(static_cast<double>(a[i + 3]) - b[i + 3]);
  }
  for (; i < n; ++i) s0 += std::abs(static_cast<double>(a[i]) - b[i]);
  return (s0 + s1) + (s2 + s3);
}

double L2SqScalar(const float* a, const float* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

double L1SignGradScalar(const float* a, const float* b, size_t n,
                        float* grad) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    grad[i] = d > 0.0 ? 1.0f : (d < 0.0 ? -1.0f : 0.0f);
    sum += std::abs(d);
  }
  return sum;
}

void AxpyScalar(float* row, const float* g, size_t n, float alpha) {
  for (size_t i = 0; i < n; ++i) row[i] += alpha * g[i];
}

double QDistScalar(const uint8_t* a, const uint8_t* b, const float* steps,
                   size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const int diff = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    sum += steps[i] * static_cast<double>(diff < 0 ? -diff : diff);
  }
  return sum;
}

constexpr KernelOps kScalarOps = {L1Scalar, L2SqScalar, L1SignGradScalar,
                                  AxpyScalar, QDistScalar};

#if defined(RNE_KERNELS_X86)

// ------------------------------------------------------------------- AVX2

__attribute__((target("avx2,fma"))) inline double HSumPd(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

__attribute__((target("avx2,fma"))) inline double HSumPs(__m256 v) {
  // Convert halves to double before reducing, so long vectors keep the
  // scalar backend's accumulation precision.
  const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
  return HSumPd(_mm256_add_pd(lo, hi));
}

__attribute__((target("avx2,fma")))
double L1Avx2(const float* a, const float* b, size_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Element difference in the float domain (correctly rounded, <= 1/2 ulp
    // relative per element, sign exact); only the accumulation runs in
    // double. Halves the cvtps_pd pressure vs converting both operands.
    const __m256 ad = _mm256_andnot_ps(
        sign, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(ad)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(ad, 1)));
  }
  double total = HSumPd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) total += static_cast<double>(std::abs(a[i] - b[i]));
  return total;
}

__attribute__((target("avx2,fma")))
double L2SqAvx2(const float* a, const float* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Difference in float (1/2 ulp per element), square + accumulate in
    // double so the squares cannot overflow or lose low bits in the sum.
    const __m256 fd = _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                    _mm256_loadu_ps(b + i));
    const __m256d dlo = _mm256_cvtps_pd(_mm256_castps256_ps128(fd));
    const __m256d dhi = _mm256_cvtps_pd(_mm256_extractf128_ps(fd, 1));
    acc0 = _mm256_fmadd_pd(dlo, dlo, acc0);
    acc1 = _mm256_fmadd_pd(dhi, dhi, acc1);
  }
  double total = HSumPd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i] - b[i]);
    total += d * d;
  }
  return total;
}

__attribute__((target("avx2,fma")))
double L1SignGradAvx2(const float* a, const float* b, size_t n, float* grad) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 pos = _mm256_set1_ps(1.0f);
  const __m256 neg = _mm256_set1_ps(-1.0f);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Sign from the float difference (exact: rounds to zero only at a == b);
    // the same difference feeds the L1 sum, matching L1Avx2's convention.
    const __m256 fd = _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                    _mm256_loadu_ps(b + i));
    const __m256 s =
        _mm256_or_ps(_mm256_and_ps(_mm256_cmp_ps(fd, zero, _CMP_GT_OQ), pos),
                     _mm256_and_ps(_mm256_cmp_ps(fd, zero, _CMP_LT_OQ), neg));
    _mm256_storeu_ps(grad + i, s);
    const __m256 ad = _mm256_andnot_ps(sign, fd);
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(ad)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(ad, 1)));
  }
  double total = HSumPd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    grad[i] = d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f);
    total += static_cast<double>(std::abs(d));
  }
  return total;
}

__attribute__((target("avx2,fma")))
void AxpyAvx2(float* row, const float* g, size_t n, float alpha) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        row + i,
        _mm256_fmadd_ps(va, _mm256_loadu_ps(g + i), _mm256_loadu_ps(row + i)));
  }
  for (; i < n; ++i) row[i] += alpha * g[i];
}

__attribute__((target("avx2,fma")))
double QDistAvx2(const uint8_t* a, const uint8_t* b, const float* steps,
                 size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // |a - b| on unsigned bytes: max - min (the SAD building block).
    const __m128i ad =
        _mm_sub_epi8(_mm_max_epu8(va, vb), _mm_min_epu8(va, vb));
    const __m256 dlo =
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(ad));
    const __m256 dhi =
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_srli_si128(ad, 8)));
    acc = _mm256_fmadd_ps(dlo, _mm256_loadu_ps(steps + i), acc);
    acc = _mm256_fmadd_ps(dhi, _mm256_loadu_ps(steps + i + 8), acc);
  }
  double total = HSumPs(acc);
  for (; i < n; ++i) {
    const int diff = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    total += steps[i] * static_cast<double>(diff < 0 ? -diff : diff);
  }
  return total;
}

constexpr KernelOps kAvx2Ops = {L1Avx2, L2SqAvx2, L1SignGradAvx2, AxpyAvx2,
                                QDistAvx2};

// ----------------------------------------------------------------- SSE4.2

__attribute__((target("sse4.2"))) inline double HSum128Pd(__m128d v) {
  return _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v)));
}

__attribute__((target("sse4.2")))
double L1Sse42(const float* a, const float* b, size_t n) {
  const __m128 sign = _mm_set1_ps(-0.0f);
  __m128d acc0 = _mm_setzero_pd();
  __m128d acc1 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Float-domain difference, double accumulation (see L1Avx2).
    const __m128 ad =
        _mm_andnot_ps(sign, _mm_sub_ps(_mm_loadu_ps(a + i),
                                       _mm_loadu_ps(b + i)));
    acc0 = _mm_add_pd(acc0, _mm_cvtps_pd(ad));
    acc1 = _mm_add_pd(acc1, _mm_cvtps_pd(_mm_movehl_ps(ad, ad)));
  }
  double total = HSum128Pd(_mm_add_pd(acc0, acc1));
  for (; i < n; ++i) total += static_cast<double>(std::abs(a[i] - b[i]));
  return total;
}

__attribute__((target("sse4.2")))
double L2SqSse42(const float* a, const float* b, size_t n) {
  __m128d acc0 = _mm_setzero_pd();
  __m128d acc1 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 fd = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    const __m128d dlo = _mm_cvtps_pd(fd);
    const __m128d dhi = _mm_cvtps_pd(_mm_movehl_ps(fd, fd));
    acc0 = _mm_add_pd(acc0, _mm_mul_pd(dlo, dlo));
    acc1 = _mm_add_pd(acc1, _mm_mul_pd(dhi, dhi));
  }
  double total = HSum128Pd(_mm_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i] - b[i]);
    total += d * d;
  }
  return total;
}

__attribute__((target("sse4.2")))
double L1SignGradSse42(const float* a, const float* b, size_t n,
                       float* grad) {
  const __m128 sign = _mm_set1_ps(-0.0f);
  const __m128 zero = _mm_setzero_ps();
  const __m128 pos = _mm_set1_ps(1.0f);
  const __m128 neg = _mm_set1_ps(-1.0f);
  __m128d acc0 = _mm_setzero_pd();
  __m128d acc1 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 fd = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    const __m128 s = _mm_or_ps(_mm_and_ps(_mm_cmpgt_ps(fd, zero), pos),
                               _mm_and_ps(_mm_cmplt_ps(fd, zero), neg));
    _mm_storeu_ps(grad + i, s);
    const __m128 ad = _mm_andnot_ps(sign, fd);
    acc0 = _mm_add_pd(acc0, _mm_cvtps_pd(ad));
    acc1 = _mm_add_pd(acc1, _mm_cvtps_pd(_mm_movehl_ps(ad, ad)));
  }
  double total = HSum128Pd(_mm_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    grad[i] = d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f);
    total += static_cast<double>(std::abs(d));
  }
  return total;
}

__attribute__((target("sse4.2")))
void AxpySse42(float* row, const float* g, size_t n, float alpha) {
  const __m128 va = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(row + i,
                  _mm_add_ps(_mm_loadu_ps(row + i),
                             _mm_mul_ps(va, _mm_loadu_ps(g + i))));
  }
  for (; i < n; ++i) row[i] += alpha * g[i];
}

__attribute__((target("sse4.2")))
double QDistSse42(const uint8_t* a, const uint8_t* b, const float* steps,
                  size_t n) {
  __m128 acc = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i ad =
        _mm_sub_epi8(_mm_max_epu8(va, vb), _mm_min_epu8(va, vb));
    // Manually unrolled: _mm_srli_si128 needs a compile-time immediate, so
    // a `4 * q` loop only compiles when the optimizer fully unrolls it
    // (it does not under -O0 / sanitizer builds).
    const __m128i d0 = _mm_cvtepu8_epi32(ad);
    const __m128i d1 = _mm_cvtepu8_epi32(_mm_srli_si128(ad, 4));
    const __m128i d2 = _mm_cvtepu8_epi32(_mm_srli_si128(ad, 8));
    const __m128i d3 = _mm_cvtepu8_epi32(_mm_srli_si128(ad, 12));
    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_cvtepi32_ps(d0),
                                     _mm_loadu_ps(steps + i)));
    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_cvtepi32_ps(d1),
                                     _mm_loadu_ps(steps + i + 4)));
    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_cvtepi32_ps(d2),
                                     _mm_loadu_ps(steps + i + 8)));
    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_cvtepi32_ps(d3),
                                     _mm_loadu_ps(steps + i + 12)));
  }
  const __m128d accd =
      _mm_add_pd(_mm_cvtps_pd(acc), _mm_cvtps_pd(_mm_movehl_ps(acc, acc)));
  double total = HSum128Pd(accd);
  for (; i < n; ++i) {
    const int diff = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    total += steps[i] * static_cast<double>(diff < 0 ? -diff : diff);
  }
  return total;
}

constexpr KernelOps kSse42Ops = {L1Sse42, L2SqSse42, L1SignGradSse42,
                                 AxpySse42, QDistSse42};

#endif  // RNE_KERNELS_X86

#if defined(RNE_KERNELS_NEON)

// ------------------------------------------------------------------- NEON

double L1Neon(const float* a, const float* b, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Float-domain |a-b| (one vabd), double accumulation (see L1Avx2).
    const float32x4_t ad = vabdq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc0 = vaddq_f64(acc0, vcvt_f64_f32(vget_low_f32(ad)));
    acc1 = vaddq_f64(acc1, vcvt_high_f64_f32(ad));
  }
  double total = vaddvq_f64(acc0) + vaddvq_f64(acc1);
  for (; i < n; ++i) total += static_cast<double>(std::abs(a[i] - b[i]));
  return total;
}

double L2SqNeon(const float* a, const float* b, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t fd = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    const float64x2_t dlo = vcvt_f64_f32(vget_low_f32(fd));
    const float64x2_t dhi = vcvt_high_f64_f32(fd);
    acc0 = vfmaq_f64(acc0, dlo, dlo);
    acc1 = vfmaq_f64(acc1, dhi, dhi);
  }
  double total = vaddvq_f64(acc0) + vaddvq_f64(acc1);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i] - b[i]);
    total += d * d;
  }
  return total;
}

double L1SignGradNeon(const float* a, const float* b, size_t n, float* grad) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const float32x4_t pos = vdupq_n_f32(1.0f);
  const float32x4_t neg = vdupq_n_f32(-1.0f);
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t fd = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    const float32x4_t s =
        vbslq_f32(vcgtq_f32(fd, zero), pos,
                  vbslq_f32(vcltq_f32(fd, zero), neg, zero));
    vst1q_f32(grad + i, s);
    const float32x4_t ad = vabsq_f32(fd);
    acc0 = vaddq_f64(acc0, vcvt_f64_f32(vget_low_f32(ad)));
    acc1 = vaddq_f64(acc1, vcvt_high_f64_f32(ad));
  }
  double total = vaddvq_f64(acc0) + vaddvq_f64(acc1);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    grad[i] = d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f);
    total += static_cast<double>(std::abs(d));
  }
  return total;
}

void AxpyNeon(float* row, const float* g, size_t n, float alpha) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(row + i, vfmaq_n_f32(vld1q_f32(row + i), vld1q_f32(g + i),
                                   alpha));
  }
  for (; i < n; ++i) row[i] += alpha * g[i];
}

double QDistNeon(const uint8_t* a, const uint8_t* b, const float* steps,
                 size_t n) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint8x8_t va = vld1_u8(a + i);
    const uint8x8_t vb = vld1_u8(b + i);
    const uint16x8_t ad = vmovl_u8(vabd_u8(va, vb));
    const float32x4_t dlo = vcvtq_f32_u32(vmovl_u16(vget_low_u16(ad)));
    const float32x4_t dhi = vcvtq_f32_u32(vmovl_u16(vget_high_u16(ad)));
    acc = vfmaq_f32(acc, dlo, vld1q_f32(steps + i));
    acc = vfmaq_f32(acc, dhi, vld1q_f32(steps + i + 4));
  }
  double total = static_cast<double>(vaddvq_f32(acc));
  for (; i < n; ++i) {
    const int diff = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    total += steps[i] * static_cast<double>(diff < 0 ? -diff : diff);
  }
  return total;
}

constexpr KernelOps kNeonOps = {L1Neon, L2SqNeon, L1SignGradNeon, AxpyNeon,
                                QDistNeon};

#endif  // RNE_KERNELS_NEON

// --------------------------------------------------------------- dispatch

struct BackendEntry {
  const char* name;
  const KernelOps* ops;
};

/// CPU-supported backends, best first, null-name terminated. Filled once
/// (thread-safe static init); at most 3 entries plus the terminator.
const BackendEntry* SupportedBackends() {
  static const BackendEntry* const entries = [] {
    static BackendEntry list[4] = {};
    size_t count = 0;
#if defined(RNE_KERNELS_X86)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      list[count++] = {"avx2", &kAvx2Ops};
    }
    if (__builtin_cpu_supports("sse4.2")) {
      list[count++] = {"sse42", &kSse42Ops};
    }
#elif defined(RNE_KERNELS_NEON)
    list[count++] = {"neon", &kNeonOps};
#endif
    list[count++] = {"scalar", &kScalarOps};
    return list;
  }();
  return entries;
}

const BackendEntry& SelectBackend() {
  static const BackendEntry& selected = *[]() -> const BackendEntry* {
    const BackendEntry* entries = SupportedBackends();
    if (const char* force = std::getenv("RNE_KERNEL_BACKEND")) {
      for (const BackendEntry* e = entries; e->name != nullptr; ++e) {
        if (std::strcmp(e->name, force) == 0) return e;
      }
      std::fprintf(stderr,
                   "[kernels] RNE_KERNEL_BACKEND=%s unsupported on this CPU; "
                   "using %s\n",
                   force, entries[0].name);
    }
    return &entries[0];
  }();
  return selected;
}

}  // namespace

const KernelOps& ScalarKernels() { return kScalarOps; }

const KernelOps& ActiveKernels() { return *SelectBackend().ops; }

const char* KernelBackendName() { return SelectBackend().name; }

const char* const* SupportedKernelBackends() {
  static const char* const* const names = [] {
    static const char* list[5] = {};
    size_t count = 0;
    for (const BackendEntry* e = SupportedBackends(); e->name != nullptr; ++e) {
      list[count++] = e->name;
    }
    return list;
  }();
  return names;
}

const KernelOps* KernelBackendByName(const char* name) {
  for (const BackendEntry* e = SupportedBackends(); e->name != nullptr; ++e) {
    if (std::strcmp(e->name, name) == 0) return e->ops;
  }
  return nullptr;
}

}  // namespace rne
