#include "core/embedding.h"

#include <cmath>

namespace rne {

void EmbeddingMatrix::RandomInit(Rng& rng, double scale) {
  for (float& x : data_) {
    x = static_cast<float>(rng.UniformReal(-scale, scale));
  }
}

double EmbeddingMatrix::L1Norm() const {
  double s = 0.0;
  for (const float x : data_) s += std::abs(static_cast<double>(x));
  return s;
}

void EmbeddingMatrix::Write(BinaryWriter& w) const {
  w.WritePod<uint64_t>(rows_);
  w.WritePod<uint64_t>(dim_);
  w.WriteVector(data_);
}

bool EmbeddingMatrix::Read(BinaryReader& r) {
  uint64_t rows = 0, dim = 0;
  if (!r.ReadPod(&rows) || !r.ReadPod(&dim)) return false;
  // rows*dim floats must fit in the remaining payload; rejecting here also
  // keeps the product below from overflowing on corrupt counts.
  if (dim != 0 && rows > r.remaining() / sizeof(float) / dim) return false;
  rows_ = rows;
  dim_ = dim;
  if (!r.ReadVector(&data_)) return false;
  return data_.size() == rows_ * dim_;
}

}  // namespace rne
