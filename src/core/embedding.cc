#include "core/embedding.h"

#include <cmath>

namespace rne {

void EmbeddingMatrix::RandomInit(Rng& rng, double scale) {
  RNE_DCHECK(view_ == nullptr);
  for (float& x : data_) {
    x = static_cast<float>(rng.UniformReal(-scale, scale));
  }
}

double EmbeddingMatrix::L1Norm() const {
  const float* p = raw();
  double s = 0.0;
  for (size_t i = 0, n = rows_ * dim_; i < n; ++i) {
    s += std::abs(static_cast<double>(p[i]));
  }
  return s;
}

void EmbeddingMatrix::Write(BinaryWriter& w) const {
  w.WritePod<uint64_t>(rows_);
  w.WritePod<uint64_t>(dim_);
  w.WriteLengthPrefixed(raw(), rows_ * dim_, sizeof(float));
}

bool EmbeddingMatrix::Read(BinaryReader& r) {
  uint64_t rows = 0, dim = 0;
  if (!r.ReadPod(&rows) || !r.ReadPod(&dim)) return false;
  // rows*dim floats must fit in the remaining payload; rejecting here also
  // keeps the product below from overflowing on corrupt counts.
  if (dim != 0 && rows > r.remaining() / sizeof(float) / dim) return false;
  rows_ = rows;
  dim_ = dim;
  view_ = nullptr;
  if (!r.ReadVector(&data_)) return false;
  return data_.size() == rows_ * dim_;
}

void EmbeddingMatrix::WriteMeta(BinaryWriter& w) const {
  w.WritePod<uint64_t>(rows_);
  w.WritePod<uint64_t>(dim_);
}

bool EmbeddingMatrix::ReadMeta(BinaryReader& r, uint64_t section_bytes) {
  uint64_t rows = 0, dim = 0;
  if (!r.ReadPod(&rows) || !r.ReadPod(&dim)) return false;
  // The section table (CRC-protected, extent-bounded at open) is the
  // authority on the data size; corrupt dimension fields fail this
  // cross-check instead of driving a huge allocation.
  if (dim != 0 && rows > section_bytes / sizeof(float) / dim) return false;
  if (rows * dim * sizeof(float) != section_bytes) return false;
  rows_ = rows;
  dim_ = dim;
  data_.clear();
  view_ = nullptr;
  return true;
}

float* EmbeddingMatrix::AllocateOwned(size_t rows, size_t dim) {
  rows_ = rows;
  dim_ = dim;
  view_ = nullptr;
  data_.assign(rows * dim, 0.0f);
  return data_.data();
}

}  // namespace rne
