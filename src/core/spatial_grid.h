// K x K spatial grid over vertex coordinates (Sec V-C).
//
// The active fine-tuning step needs uniform samples from "all vertex pairs at
// grid distance b" without materializing |V|^2 pairs. Vertices are hashed
// into a K x K grid; the K^2 x K^2 cell pairs are bucketed by grid distance
// |dr| + |dc| into 2K-1 buckets; sampling draws a cell pair proportional to
// |g_s|*|g_t| and then a uniform vertex from each cell — giving (near-)uniform
// pair selection inside each bucket with O(K^4) space and O(log) time.
#ifndef RNE_CORE_SPATIAL_GRID_H_
#define RNE_CORE_SPATIAL_GRID_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace rne {

class SpatialGrid {
 public:
  /// Builds a k x k grid over the bounding box of g's coordinates.
  SpatialGrid(const Graph& g, size_t k);

  size_t k() const { return k_; }
  /// Number of grid-distance buckets (2k - 1).
  size_t num_buckets() const { return 2 * k_ - 1; }

  /// Grid cell index of a vertex.
  size_t CellOf(VertexId v) const;
  /// Grid-distance bucket of a vertex pair: |dr| + |dc| of their cells.
  size_t BucketOfPair(VertexId s, VertexId t) const;

  /// True if bucket `b` contains at least one pair of (possibly equal)
  /// non-empty cells.
  bool BucketNonEmpty(size_t b) const { return !buckets_[b].pairs.empty(); }

  /// Draws a vertex pair from bucket `b` (cell pair proportional to
  /// population product, vertices uniform within cells). Returns false if
  /// the bucket is empty. s == t is possible for bucket 0 and is resampled
  /// by callers that need distinct endpoints.
  bool SamplePair(size_t b, Rng& rng, VertexId* s, VertexId* t) const;

  const std::vector<VertexId>& CellVertices(size_t cell) const {
    return cells_[cell];
  }

 private:
  struct Bucket {
    std::vector<std::pair<uint32_t, uint32_t>> pairs;  // (cell_s, cell_t)
    std::vector<double> cumulative;  // running sum of |g_s| * |g_t|
  };

  size_t k_;
  double min_x_, min_y_, cell_w_, cell_h_;
  std::vector<std::vector<VertexId>> cells_;  // cell -> vertices
  std::vector<uint32_t> cell_of_;             // vertex -> cell
  std::vector<Bucket> buckets_;
};

}  // namespace rne

#endif  // RNE_CORE_SPATIAL_GRID_H_
