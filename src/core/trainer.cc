#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "algo/landmarks.h"
#include "core/metric.h"

namespace rne {

namespace {
/// Caps per-sample error in normalized units; protects the embedding from
/// rare outlier pairs early in training.
constexpr double kErrorClip = 10.0;
}  // namespace

Trainer::Trainer(const Graph& g, const PartitionHierarchy& hier,
                 TrainConfig config)
    : g_(g),
      hier_(hier),
      config_(config),
      model_(&hier, config.dim, config.p),
      dist_sampler_(g, config.num_threads),
      rng_(config.seed),
      vs_(config.dim),
      vt_(config.dim),
      grad_(config.dim) {
  RNE_CHECK(hier.num_vertices() == g.NumVertices());
  // Init spread ~ init_scale / dim keeps the initial L1 estimate O(1) in
  // normalized units for every dimension choice.
  model_.RandomInit(rng_, config_.init_scale / static_cast<double>(config_.dim));
  // An SGD step moves all `dim` coordinates of both endpoints, changing the
  // L1 estimate by ~4 * dim * lr * err; dividing by 4 * dim makes lr0 the
  // fraction of the error corrected per update, independent of dim.
  lr_norm_ = 1.0 / (4.0 * static_cast<double>(config_.dim));
}

void Trainer::MaybeInitScale(const std::vector<DistanceSample>& samples) {
  if (scale_ != 0.0) return;
  double sum = 0.0;
  size_t count = 0;
  for (const DistanceSample& s : samples) {
    if (s.dist > 0.0 && s.dist != kInfDistance) {
      sum += s.dist;
      ++count;
    }
  }
  RNE_CHECK_MSG(count > 0, "no finite training distances to derive scale");
  scale_ = sum / static_cast<double>(count);
}

std::vector<DistanceSample> Trainer::Materialize(
    const std::vector<VertexPair>& pairs) const {
  return dist_sampler_.ComputeDistances(pairs);
}

void Trainer::SgdStep(const DistanceSample& sample,
                      const std::vector<double>& level_lrs) {
  if (sample.dist == kInfDistance) return;  // unreachable pair
  model_.GlobalOf(sample.s, vs_);
  model_.GlobalOf(sample.t, vt_);
  const double dist = MetricDist(vs_, vt_, config_.p);
  const double target = sample.dist / scale_;
  const double err = std::clamp(dist - target, -kErrorClip, kErrorClip);
  if (err == 0.0) return;
  const double coeff = 2.0 * err * lr_norm_;  // dL/d(dist), dim-normalized
  MetricGradient(vs_, vt_, config_.p, dist, grad_);

  const uint32_t vertex_level = model_.vertex_level();
  // Source side: d(dist)/d(v_s) = grad_.
  for (const uint32_t node : hier_.AncestorsOf(sample.s)) {
    const double lr = level_lrs[hier_.node(node).level];
    if (lr == 0.0) continue;
    auto row = model_.NodeLocal(node);
    for (size_t i = 0; i < row.size(); ++i) {
      row[i] -= static_cast<float>(lr * coeff * grad_[i]);
    }
  }
  if (level_lrs[vertex_level] != 0.0) {
    const double lr = level_lrs[vertex_level];
    auto row = model_.VertexLocal(sample.s);
    for (size_t i = 0; i < row.size(); ++i) {
      row[i] -= static_cast<float>(lr * coeff * grad_[i]);
    }
  }
  // Target side: d(dist)/d(v_t) = -grad_.
  for (const uint32_t node : hier_.AncestorsOf(sample.t)) {
    const double lr = level_lrs[hier_.node(node).level];
    if (lr == 0.0) continue;
    auto row = model_.NodeLocal(node);
    for (size_t i = 0; i < row.size(); ++i) {
      row[i] += static_cast<float>(lr * coeff * grad_[i]);
    }
  }
  if (level_lrs[vertex_level] != 0.0) {
    const double lr = level_lrs[vertex_level];
    auto row = model_.VertexLocal(sample.t);
    for (size_t i = 0; i < row.size(); ++i) {
      row[i] += static_cast<float>(lr * coeff * grad_[i]);
    }
  }
}

void Trainer::TrainOnSamples(const std::vector<DistanceSample>& samples,
                             const std::vector<double>& level_lrs,
                             size_t epochs) {
  RNE_CHECK(level_lrs.size() == model_.num_levels() + 1);
  if (samples.empty()) return;
  MaybeInitScale(samples);
  shuffle_.resize(samples.size());
  std::iota(shuffle_.begin(), shuffle_.end(), 0);
  std::vector<double> lrs = level_lrs;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    rng_.Shuffle(shuffle_);
    // Linear decay to lr_final_fraction anneals the SGD noise floor at the
    // tail of each phase.
    const double decay =
        epochs <= 1
            ? 1.0
            : 1.0 - (1.0 - config_.lr_final_fraction) *
                        static_cast<double>(epoch) /
                        static_cast<double>(epochs - 1);
    for (size_t l = 0; l < lrs.size(); ++l) lrs[l] = level_lrs[l] * decay;
    for (const uint32_t idx : shuffle_) {
      SgdStep(samples[idx], lrs);
    }
    samples_processed_ += samples.size();
    RecordProgress();
  }
}

void Trainer::TrainHierarchyPhase() {
  const uint32_t num_levels = model_.num_levels();
  for (uint32_t lev = 1; lev <= num_levels; ++lev) {
    // Sub-graph level samples for the focused level; the vertex level uses
    // leaf partitions (the deepest sub-graph granularity).
    const uint32_t sample_level = std::min(lev, hier_.max_level());
    const std::vector<VertexPair> pairs =
        SubgraphLevelPairs(hier_, sample_level, config_.level_samples, rng_,
                           config_.source_reuse);
    const std::vector<DistanceSample> samples = Materialize(pairs);

    std::vector<double> lrs(num_levels + 1, 0.0);
    for (uint32_t l = 1; l <= num_levels; ++l) {
      lrs[l] = config_.lr0 /
               (std::abs(static_cast<int>(l) - static_cast<int>(lev)) + 1.0);
    }
    TrainOnSamples(samples, lrs, config_.level_epochs);
    if (config_.verbose) {
      std::printf("[trainer] phase1 step %u/%u done (%zu samples)\n", lev,
                  num_levels, samples.size());
      std::fflush(stdout);
    }
  }
}

void Trainer::TrainVertexPhase() {
  std::vector<VertexPair> pairs;
  if (config_.landmark_sampling) {
    const std::vector<VertexId> landmarks =
        config_.farthest_landmarks
            ? SelectLandmarksFarthest(g_, config_.num_landmarks, rng_)
            : SelectLandmarksRandom(g_, config_.num_landmarks, rng_);
    pairs = LandmarkPairs(landmarks, g_.NumVertices(), config_.vertex_samples,
                          rng_);
  } else {
    pairs = RandomVertexPairs(g_.NumVertices(), config_.vertex_samples, rng_,
                              config_.source_reuse);
  }
  const std::vector<DistanceSample> samples = Materialize(pairs);

  std::vector<double> lrs(model_.num_levels() + 1, 0.0);
  lrs[model_.vertex_level()] = config_.lr0;
  TrainOnSamples(samples, lrs, config_.vertex_epochs);
  if (config_.verbose) {
    std::printf("[trainer] phase2 done (%zu samples)\n", samples.size());
    std::fflush(stdout);
  }
}

void Trainer::FineTunePhase() {
  if (config_.finetune_rounds == 0) return;
  const SpatialGrid grid(g_, config_.grid_k);
  std::vector<double> lrs(model_.num_levels() + 1, 0.0);
  lrs[model_.vertex_level()] = config_.lr0 * 0.5;

  for (size_t round = 0; round < config_.finetune_rounds; ++round) {
    // Estimate the error-vs-distance distribution of the current model.
    std::vector<double> bucket_errors(grid.num_buckets(), 0.0);
    for (size_t b = 0; b < grid.num_buckets(); ++b) {
      if (!grid.BucketNonEmpty(b)) continue;
      std::vector<VertexPair> eval_pairs;
      eval_pairs.reserve(config_.finetune_eval_pairs_per_bucket);
      while (eval_pairs.size() < config_.finetune_eval_pairs_per_bucket) {
        VertexId s, t;
        if (!grid.SamplePair(b, rng_, &s, &t)) break;
        // Source reuse: several targets from the drawn cell share one search.
        const auto& cell = grid.CellVertices(grid.CellOf(t));
        for (size_t r = 0; r < config_.source_reuse &&
                           eval_pairs.size() <
                               config_.finetune_eval_pairs_per_bucket;
             ++r) {
          const VertexId tt =
              r == 0 ? t : cell[rng_.UniformIndex(cell.size())];
          if (s != tt) eval_pairs.emplace_back(s, tt);
        }
      }
      if (eval_pairs.empty()) continue;
      const auto eval = Materialize(eval_pairs);
      bucket_errors[b] = MeanRelativeError(eval);
    }

    const std::vector<VertexPair> pairs =
        ErrorBasedPairs(grid, bucket_errors, config_.finetune_strategy,
                        config_.finetune_samples, rng_, config_.source_reuse);
    if (pairs.empty()) return;
    const std::vector<DistanceSample> samples = Materialize(pairs);
    TrainOnSamples(samples, lrs, config_.finetune_epochs);
    if (config_.verbose) {
      std::printf("[trainer] phase3 round %zu done (%zu samples)\n", round + 1,
                  samples.size());
      std::fflush(stdout);
    }
  }
}

void Trainer::TrainAll() {
  TrainHierarchyPhase();
  TrainVertexPhase();
  FineTunePhase();
}

double Trainer::MeanRelativeError(
    const std::vector<DistanceSample>& val) const {
  double sum = 0.0;
  size_t count = 0;
  std::vector<float> vs(config_.dim), vt(config_.dim);
  for (const DistanceSample& s : val) {
    if (s.dist <= 0.0 || s.dist == kInfDistance) continue;
    model_.GlobalOf(s.s, vs);
    model_.GlobalOf(s.t, vt);
    const double est = MetricDist(vs, vt, config_.p) * scale_;
    sum += std::abs(est - s.dist) / s.dist;
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

void Trainer::SetValidation(std::vector<DistanceSample> val) {
  validation_ = std::move(val);
}

void Trainer::RecordProgress() {
  if (validation_.empty()) return;
  progress_.push_back({samples_processed_, MeanRelativeError(validation_)});
}

}  // namespace rne
