#include "core/trainer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "algo/landmarks.h"
#include "core/kernels.h"
#include "core/metric.h"
#include "obs/trace.h"
#include "util/timer.h"

// Detect ThreadSanitizer builds: the Hogwild vertex-row path switches to
// relaxed atomics there (plain movs on x86, so semantics match the release
// build's benign races) so TSan runs are genuinely race-free.
#if defined(__SANITIZE_THREAD__)
#define RNE_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RNE_TSAN_BUILD 1
#endif
#endif

namespace rne {

namespace {
/// Caps per-sample error in normalized units; protects the embedding from
/// rare outlier pairs early in training.
constexpr double kErrorClip = 10.0;

/// row[i] += alpha * g[i] on a row that other workers may be updating
/// concurrently (Hogwild). Lost updates are SGD noise; see trainer.h.
void HogwildAxpy(std::span<float> row, std::span<const float> g,
                 float alpha) {
#if defined(RNE_TSAN_BUILD)
  for (size_t i = 0; i < row.size(); ++i) {
    std::atomic_ref<float> cell(row[i]);
    cell.store(cell.load(std::memory_order_relaxed) + alpha * g[i],
               std::memory_order_relaxed);
  }
#else
  AxpyKernel(row, g, alpha);
#endif
}

/// out = row, tolerating concurrent HogwildAxpy writers on `row`.
void HogwildCopy(std::span<float> row, std::span<float> out) {
#if defined(RNE_TSAN_BUILD)
  for (size_t i = 0; i < row.size(); ++i) {
    std::atomic_ref<float> cell(row[i]);
    out[i] = cell.load(std::memory_order_relaxed);
  }
#else
  std::copy(row.begin(), row.end(), out.begin());
#endif
}
}  // namespace

Trainer::Trainer(const Graph& g, const PartitionHierarchy& hier,
                 TrainConfig config)
    : g_(g),
      hier_(hier),
      config_(config),
      model_(&hier, config.dim, config.p),
      dist_sampler_(g, config.num_threads),
      rng_(config.seed) {
  RNE_CHECK(hier.num_vertices() == g.NumVertices());
  // Init spread ~ init_scale / dim keeps the initial L1 estimate O(1) in
  // normalized units for every dimension choice.
  model_.RandomInit(rng_, config_.init_scale / static_cast<double>(config_.dim));
  // An SGD step moves all `dim` coordinates of both endpoints, changing the
  // L1 estimate by ~4 * dim * lr * err; dividing by 4 * dim makes lr0 the
  // fraction of the error corrected per update, independent of dim.
  lr_norm_ = 1.0 / (4.0 * static_cast<double>(config_.dim));

  sgd_threads_ = config_.num_threads > 1 ? config_.num_threads : 1;
  if (sgd_threads_ > 1) pool_ = std::make_unique<ThreadPool>(sgd_threads_);
  scratch_.resize(sgd_threads_);
  for (SgdScratch& scr : scratch_) {
    scr.vs.resize(config_.dim);
    scr.vt.resize(config_.dim);
    scr.grad.resize(config_.dim);
    scr.dgrad.resize(config_.dim);
    if (pool_) {
      scr.node_delta.assign(hier_.num_nodes() * config_.dim, 0.0f);
      scr.is_touched.assign(hier_.num_nodes(), 0);
    }
  }
  if (pool_) merge_count_.assign(hier_.num_nodes(), 0);
}

void Trainer::MaybeInitScale(const std::vector<DistanceSample>& samples) {
  if (scale_ != 0.0) return;
  double sum = 0.0;
  size_t count = 0;
  for (const DistanceSample& s : samples) {
    if (s.dist > 0.0 && s.dist != kInfDistance) {
      sum += s.dist;
      ++count;
    }
  }
  RNE_CHECK_MSG(count > 0, "no finite training distances to derive scale");
  scale_ = sum / static_cast<double>(count);
}

std::vector<DistanceSample> Trainer::Materialize(
    const std::vector<VertexPair>& pairs) const {
  RNE_SPAN("train.materialize");
  return dist_sampler_.ComputeDistances(pairs);
}

bool Trainer::ComputeGradient(const DistanceSample& sample, SgdScratch& scr,
                              double* coeff) {
  double dist;
  if (config_.p == 1.0) {
    // Fused kernel: distance and sign gradient in one memory sweep.
    dist = L1DistWithSignGrad(scr.vs, scr.vt, scr.grad);
  } else {
    dist = MetricDist(scr.vs, scr.vt, config_.p);
  }
  const double target = sample.dist / scale_;
  const double err = std::clamp(dist - target, -kErrorClip, kErrorClip);
  if (err == 0.0) return false;
  if (config_.p != 1.0) {
    MetricGradient(scr.vs, scr.vt, config_.p, dist, scr.dgrad);
    for (size_t i = 0; i < scr.grad.size(); ++i) {
      scr.grad[i] = static_cast<float>(scr.dgrad[i]);
    }
  }
  *coeff = 2.0 * err * lr_norm_;  // dL/d(dist), dim-normalized
#if !defined(RNE_OBS_DISABLED)
  scr.coeff_abs_sum += std::abs(err);
  ++scr.coeff_count;
#endif
  return true;
}

void Trainer::SgdStep(const DistanceSample& sample,
                      const std::vector<double>& level_lrs) {
  if (sample.dist == kInfDistance) return;  // unreachable pair
  SgdScratch& scr = scratch_[0];
  model_.GlobalOf(sample.s, scr.vs);
  model_.GlobalOf(sample.t, scr.vt);
  double coeff;
  if (!ComputeGradient(sample, scr, &coeff)) return;

  const uint32_t vertex_level = model_.vertex_level();
  // Source side: d(dist)/d(v_s) = grad.
  for (const uint32_t node : hier_.AncestorsOf(sample.s)) {
    const double lr = level_lrs[hier_.node(node).level];
    if (lr == 0.0) continue;
    AxpyKernel(model_.NodeLocal(node), scr.grad,
               -static_cast<float>(lr * coeff));
  }
  if (level_lrs[vertex_level] != 0.0) {
    AxpyKernel(model_.VertexLocal(sample.s), scr.grad,
               -static_cast<float>(level_lrs[vertex_level] * coeff));
  }
  // Target side: d(dist)/d(v_t) = -grad.
  for (const uint32_t node : hier_.AncestorsOf(sample.t)) {
    const double lr = level_lrs[hier_.node(node).level];
    if (lr == 0.0) continue;
    AxpyKernel(model_.NodeLocal(node), scr.grad,
               static_cast<float>(lr * coeff));
  }
  if (level_lrs[vertex_level] != 0.0) {
    AxpyKernel(model_.VertexLocal(sample.t), scr.grad,
               static_cast<float>(level_lrs[vertex_level] * coeff));
  }
}

void Trainer::GlobalOfHogwild(VertexId v, std::span<float> out,
                              const SgdScratch& scr, bool nodes_training) {
  HogwildCopy(model_.VertexLocal(v), out);
  const size_t dim = config_.dim;
  for (const uint32_t node : hier_.AncestorsOf(v)) {
    // Shared node rows are frozen between merge barriers, so plain SIMD
    // adds are safe here.
    AxpyKernel(out, model_.NodeLocal(node), 1.0f);
    if (nodes_training) {
      // Plus this worker's own pending displacement: the worker must see
      // its earlier node updates immediately (sequential-style telescoping)
      // even though they reach the shared model only at the next barrier.
      AxpyKernel(out,
                 std::span<const float>(scr.node_delta.data() + node * dim,
                                        dim),
                 1.0f);
    }
  }
}

void Trainer::ParallelSgdStep(const DistanceSample& sample,
                              const std::vector<double>& level_lrs,
                              SgdScratch& scr, bool nodes_training) {
  if (sample.dist == kInfDistance) return;
  GlobalOfHogwild(sample.s, scr.vs, scr, nodes_training);
  GlobalOfHogwild(sample.t, scr.vt, scr, nodes_training);
  double coeff;
  if (!ComputeGradient(sample, scr, &coeff)) return;

  const size_t dim = config_.dim;
  const uint32_t vertex_level = model_.vertex_level();
  const auto accumulate_delta = [&](uint32_t node, float alpha) {
    if (!scr.is_touched[node]) {
      scr.is_touched[node] = 1;
      scr.touched.push_back(node);
    }
    AxpyKernel({scr.node_delta.data() + node * dim, dim}, scr.grad, alpha);
  };
  for (const uint32_t node : hier_.AncestorsOf(sample.s)) {
    const double lr = level_lrs[hier_.node(node).level];
    if (lr != 0.0) accumulate_delta(node, -static_cast<float>(lr * coeff));
  }
  for (const uint32_t node : hier_.AncestorsOf(sample.t)) {
    const double lr = level_lrs[hier_.node(node).level];
    if (lr != 0.0) accumulate_delta(node, static_cast<float>(lr * coeff));
  }
  if (level_lrs[vertex_level] != 0.0) {
    const float alpha = static_cast<float>(level_lrs[vertex_level] * coeff);
    HogwildAxpy(model_.VertexLocal(sample.s), scr.grad, -alpha);
    HogwildAxpy(model_.VertexLocal(sample.t), scr.grad, alpha);
  }
}

void Trainer::MergeNodeDeltas() {
  const size_t dim = config_.dim;
  // Pass 1: how many workers moved each node this round.
  for (const SgdScratch& scr : scratch_) {
    for (const uint32_t node : scr.touched) {
      if (merge_count_[node]++ == 0) merged_nodes_.push_back(node);
    }
  }
  // Pass 2: fold the AVERAGE displacement into the shared row (see the
  // header comment for why summing would diverge) and clear the buffers.
  for (SgdScratch& scr : scratch_) {
    for (const uint32_t node : scr.touched) {
      float* delta = scr.node_delta.data() + node * dim;
      AxpyKernel(model_.NodeLocal(node), {delta, dim},
                 1.0f / static_cast<float>(merge_count_[node]));
      std::fill(delta, delta + dim, 0.0f);
      scr.is_touched[node] = 0;
    }
    scr.touched.clear();
  }
  for (const uint32_t node : merged_nodes_) merge_count_[node] = 0;
  merged_nodes_.clear();
}

void Trainer::ParallelEpoch(const std::vector<DistanceSample>& samples,
                            const std::vector<double>& level_lrs) {
  const size_t workers = sgd_threads_;
  const size_t n = shuffle_.size();
  const size_t chunk = std::max<size_t>(1, config_.sgd_chunk);
  const uint32_t vertex_level = model_.vertex_level();
  bool nodes_training = false;
  for (uint32_t l = 1; l < vertex_level; ++l) {
    nodes_training |= level_lrs[l] != 0.0;
  }
  size_t pos = 0;
  while (pos < n) {
    // One round: up to `chunk` samples per worker, then a barrier at which
    // the main thread folds the upper-level displacements into the model.
    const size_t round_end = std::min(n, pos + chunk * workers);
    const size_t per = (round_end - pos + workers - 1) / workers;
    pool_->ParallelFor(workers, [&](size_t w) {
      const size_t begin = std::min(round_end, pos + w * per);
      const size_t end = std::min(round_end, begin + per);
      // Scratch is per pool-worker thread (two shards that land on the same
      // worker run sequentially and may share a slot).
      SgdScratch& scr = scratch_[ThreadPool::CurrentWorkerIndex()];
      for (size_t k = begin; k < end; ++k) {
        ParallelSgdStep(samples[shuffle_[k]], level_lrs, scr, nodes_training);
      }
    });
    if (nodes_training) MergeNodeDeltas();
    pos = round_end;
  }
}

void Trainer::TrainOnSamples(const std::vector<DistanceSample>& samples,
                             const std::vector<double>& level_lrs,
                             size_t epochs) {
  RNE_CHECK(level_lrs.size() == model_.num_levels() + 1);
  if (samples.empty()) return;
  MaybeInitScale(samples);
  shuffle_.resize(samples.size());
  std::iota(shuffle_.begin(), shuffle_.end(), 0);
  std::vector<double> lrs = level_lrs;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    const Timer epoch_timer;
    rng_.Shuffle(shuffle_);
    // Linear decay to lr_final_fraction anneals the SGD noise floor at the
    // tail of each phase.
    const double decay =
        epochs <= 1
            ? 1.0
            : 1.0 - (1.0 - config_.lr_final_fraction) *
                        static_cast<double>(epoch) /
                        static_cast<double>(epochs - 1);
    for (size_t l = 0; l < lrs.size(); ++l) lrs[l] = level_lrs[l] * decay;
    if (pool_ && samples.size() >= sgd_threads_ * 2) {
      ParallelEpoch(samples, lrs);
    } else {
      for (const uint32_t idx : shuffle_) {
        SgdStep(samples[idx], lrs);
      }
    }
    samples_processed_ += samples.size();
#if !defined(RNE_OBS_DISABLED)
    if (obs::Enabled()) {
      const double secs = epoch_timer.ElapsedSeconds();
      RNE_GAUGE_SET("train.samples_per_sec",
                    secs > 0.0 ? static_cast<double>(samples.size()) / secs
                               : 0.0);
      RNE_COUNTER_ADD("train.samples_processed", samples.size());
      // Mean clipped |dist error| per SGD update this epoch — the
      // dim-normalized gradient magnitude (grad coeff = 2 * err / (4 dim)).
      double err_sum = 0.0;
      size_t err_count = 0;
      for (SgdScratch& scr : scratch_) {
        err_sum += scr.coeff_abs_sum;
        err_count += scr.coeff_count;
        scr.coeff_abs_sum = 0.0;
        scr.coeff_count = 0;
      }
      if (err_count > 0) {
        RNE_GAUGE_SET("train.grad_err_mean",
                      err_sum / static_cast<double>(err_count));
      }
    }
#else
    (void)epoch_timer;
#endif
    RecordProgress();
  }
}

void Trainer::TrainHierarchyPhase() {
  RNE_SPAN("train.phase1");
  const uint32_t num_levels = model_.num_levels();
  for (uint32_t lev = 1; lev <= num_levels; ++lev) {
    // One span per hierarchy level (a level trains thousands of samples);
    // this is the ring's documented granularity, not a per-element span.
    RNE_SPAN("train.phase1.level", lev);  // rne-lint: allow(obs-hot-loop)
    // Sub-graph level samples for the focused level; the vertex level uses
    // leaf partitions (the deepest sub-graph granularity).
    const uint32_t sample_level = std::min(lev, hier_.max_level());
    const std::vector<VertexPair> pairs =
        SubgraphLevelPairs(hier_, sample_level, config_.level_samples, rng_,
                           config_.source_reuse);
    const std::vector<DistanceSample> samples = Materialize(pairs);

    std::vector<double> lrs(num_levels + 1, 0.0);
    for (uint32_t l = 1; l <= num_levels; ++l) {
      lrs[l] = config_.lr0 /
               (std::abs(static_cast<int>(l) - static_cast<int>(lev)) + 1.0);
    }
    TrainOnSamples(samples, lrs, config_.level_epochs);
    if (config_.verbose) {
      std::printf("[trainer] phase1 step %u/%u done (%zu samples)\n", lev,
                  num_levels, samples.size());
      std::fflush(stdout);
    }
  }
}

void Trainer::TrainVertexPhase() {
  RNE_SPAN("train.phase2");
  std::vector<VertexPair> pairs;
  if (config_.landmark_sampling) {
    const std::vector<VertexId> landmarks =
        config_.farthest_landmarks
            ? SelectLandmarksFarthest(g_, config_.num_landmarks, rng_)
            : SelectLandmarksRandom(g_, config_.num_landmarks, rng_);
    pairs = LandmarkPairs(landmarks, g_.NumVertices(), config_.vertex_samples,
                          rng_);
  } else {
    pairs = RandomVertexPairs(g_.NumVertices(), config_.vertex_samples, rng_,
                              config_.source_reuse);
  }
  const std::vector<DistanceSample> samples = Materialize(pairs);

  std::vector<double> lrs(model_.num_levels() + 1, 0.0);
  lrs[model_.vertex_level()] = config_.lr0;
  TrainOnSamples(samples, lrs, config_.vertex_epochs);
  if (config_.verbose) {
    std::printf("[trainer] phase2 done (%zu samples)\n", samples.size());
    std::fflush(stdout);
  }
}

void Trainer::FineTunePhase() {
  if (config_.finetune_rounds == 0) return;
  RNE_SPAN("train.phase3");
  const SpatialGrid grid(g_, config_.grid_k);
  std::vector<double> lrs(model_.num_levels() + 1, 0.0);
  lrs[model_.vertex_level()] = config_.lr0 * 0.5;

  for (size_t round = 0; round < config_.finetune_rounds; ++round) {
    // Per-round, not per-element: a fine-tune round spans full bucket
    // evaluation plus an entire training pass.
    RNE_SPAN("train.phase3.round", round);  // rne-lint: allow(obs-hot-loop)
    // Estimate the error-vs-distance distribution of the current model.
    std::vector<double> bucket_errors(grid.num_buckets(), 0.0);
    {
      // Covers the whole eval sweep for the round (one span per round).
      RNE_SPAN("train.phase3.eval", round);  // rne-lint: allow(obs-hot-loop)
      for (size_t b = 0; b < grid.num_buckets(); ++b) {
        if (!grid.BucketNonEmpty(b)) continue;
        std::vector<VertexPair> eval_pairs;
        eval_pairs.reserve(config_.finetune_eval_pairs_per_bucket);
        while (eval_pairs.size() < config_.finetune_eval_pairs_per_bucket) {
          VertexId s, t;
          if (!grid.SamplePair(b, rng_, &s, &t)) break;
          // Source reuse: several targets from the drawn cell share one
          // search.
          const auto& cell = grid.CellVertices(grid.CellOf(t));
          for (size_t r = 0; r < config_.source_reuse &&
                             eval_pairs.size() <
                                 config_.finetune_eval_pairs_per_bucket;
               ++r) {
            const VertexId tt =
                r == 0 ? t : cell[rng_.UniformIndex(cell.size())];
            if (s != tt) eval_pairs.emplace_back(s, tt);
          }
        }
        if (eval_pairs.empty()) continue;
        const auto eval = Materialize(eval_pairs);
        bucket_errors[b] = MeanRelativeError(eval);
      }
    }
    if (!bucket_errors.empty()) {
      RNE_GAUGE_SET("train.finetune.max_bucket_error",
                    *std::max_element(bucket_errors.begin(),
                                      bucket_errors.end()));
    }

    const std::vector<VertexPair> pairs =
        ErrorBasedPairs(grid, bucket_errors, config_.finetune_strategy,
                        config_.finetune_samples, rng_, config_.source_reuse);
    RNE_GAUGE_SET("train.finetune.refill_pairs", pairs.size());
    // An empty round (e.g. every bucket already converged) must not abort
    // the remaining rounds: later rounds re-measure and may find new work.
    if (pairs.empty()) continue;
    const std::vector<DistanceSample> samples = Materialize(pairs);
    TrainOnSamples(samples, lrs, config_.finetune_epochs);
    if (config_.verbose) {
      std::printf("[trainer] phase3 round %zu done (%zu samples)\n", round + 1,
                  samples.size());
      std::fflush(stdout);
    }
  }
}

void Trainer::TrainAll() {
  TrainHierarchyPhase();
  TrainVertexPhase();
  FineTunePhase();
}

double Trainer::MeanRelativeError(
    const std::vector<DistanceSample>& val) const {
  const auto eval_range = [this](const DistanceSample* begin,
                                 const DistanceSample* end, SgdScratch& scr,
                                 double* sum_out, size_t* count_out) {
    double sum = 0.0;
    size_t count = 0;
    for (const DistanceSample* s = begin; s != end; ++s) {
      if (s->dist <= 0.0 || s->dist == kInfDistance) continue;
      model_.GlobalOf(s->s, scr.vs);
      model_.GlobalOf(s->t, scr.vt);
      const double est = MetricDist(scr.vs, scr.vt, config_.p) * scale_;
      sum += std::abs(est - s->dist) / s->dist;
      ++count;
    }
    *sum_out = sum;
    *count_out = count;
  };

  // Runs every epoch on the full validation set (RecordProgress), so large
  // sets fan out across the SGD pool.
  if (pool_ && val.size() >= 512) {
    const size_t workers = sgd_threads_;
    const size_t per = (val.size() + workers - 1) / workers;
    std::vector<double> sums(workers, 0.0);
    std::vector<size_t> counts(workers, 0);
    pool_->ParallelFor(workers, [&](size_t w) {
      const size_t begin = std::min(val.size(), w * per);
      const size_t end = std::min(val.size(), begin + per);
      eval_range(val.data() + begin, val.data() + end,
                 scratch_[ThreadPool::CurrentWorkerIndex()], &sums[w],
                 &counts[w]);
    });
    const double sum = std::accumulate(sums.begin(), sums.end(), 0.0);
    const size_t count = std::accumulate(counts.begin(), counts.end(),
                                         static_cast<size_t>(0));
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  double sum = 0.0;
  size_t count = 0;
  eval_range(val.data(), val.data() + val.size(), scratch_[0], &sum, &count);
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

void Trainer::SetValidation(std::vector<DistanceSample> val) {
  validation_ = std::move(val);
}

void Trainer::RecordProgress() {
  if (validation_.empty()) return;
  progress_.push_back({samples_processed_, MeanRelativeError(validation_)});
}

}  // namespace rne
