#include "core/spatial_grid.h"

#include <algorithm>
#include <cmath>

namespace rne {

SpatialGrid::SpatialGrid(const Graph& g, size_t k) : k_(k) {
  RNE_CHECK(k_ >= 1);
  RNE_CHECK(g.NumVertices() > 0);
  double max_x = -1e300, max_y = -1e300;
  min_x_ = 1e300;
  min_y_ = 1e300;
  for (const Point& p : g.coords()) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  // Guard zero-extent boxes (all vertices at one point).
  cell_w_ = std::max((max_x - min_x_) / static_cast<double>(k_), 1e-9);
  cell_h_ = std::max((max_y - min_y_) / static_cast<double>(k_), 1e-9);

  cells_.assign(k_ * k_, {});
  cell_of_.resize(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const Point& p = g.Coord(v);
    const size_t col = std::min(
        k_ - 1, static_cast<size_t>(std::max(0.0, (p.x - min_x_) / cell_w_)));
    const size_t row = std::min(
        k_ - 1, static_cast<size_t>(std::max(0.0, (p.y - min_y_) / cell_h_)));
    const size_t cell = row * k_ + col;
    cell_of_[v] = static_cast<uint32_t>(cell);
    cells_[cell].push_back(v);
  }

  buckets_.assign(num_buckets(), {});
  for (uint32_t ca = 0; ca < cells_.size(); ++ca) {
    if (cells_[ca].empty()) continue;
    for (uint32_t cb = ca; cb < cells_.size(); ++cb) {
      if (cells_[cb].empty()) continue;
      const size_t ra = ca / k_, col_a = ca % k_;
      const size_t rb = cb / k_, col_b = cb % k_;
      const size_t dist = (ra > rb ? ra - rb : rb - ra) +
                          (col_a > col_b ? col_a - col_b : col_b - col_a);
      Bucket& bucket = buckets_[dist];
      const double weight = static_cast<double>(cells_[ca].size()) *
                            static_cast<double>(cells_[cb].size());
      bucket.pairs.emplace_back(ca, cb);
      bucket.cumulative.push_back(
          (bucket.cumulative.empty() ? 0.0 : bucket.cumulative.back()) +
          weight);
    }
  }
}

size_t SpatialGrid::CellOf(VertexId v) const {
  RNE_DCHECK(v < cell_of_.size());
  return cell_of_[v];
}

size_t SpatialGrid::BucketOfPair(VertexId s, VertexId t) const {
  const size_t ca = CellOf(s), cb = CellOf(t);
  const size_t ra = ca / k_, col_a = ca % k_;
  const size_t rb = cb / k_, col_b = cb % k_;
  return (ra > rb ? ra - rb : rb - ra) +
         (col_a > col_b ? col_a - col_b : col_b - col_a);
}

bool SpatialGrid::SamplePair(size_t b, Rng& rng, VertexId* s,
                             VertexId* t) const {
  RNE_CHECK(b < buckets_.size());
  const Bucket& bucket = buckets_[b];
  if (bucket.pairs.empty()) return false;
  const double r = rng.UniformReal(0.0, bucket.cumulative.back());
  const auto it =
      std::upper_bound(bucket.cumulative.begin(), bucket.cumulative.end(), r);
  const size_t idx = std::min<size_t>(
      static_cast<size_t>(it - bucket.cumulative.begin()),
      bucket.pairs.size() - 1);
  const auto [ca, cb] = bucket.pairs[idx];
  *s = cells_[ca][rng.UniformIndex(cells_[ca].size())];
  *t = cells_[cb][rng.UniformIndex(cells_[cb].size())];
  return true;
}

}  // namespace rne
