// Lp representation metrics over embedding vectors (Sec III-C).
//
// The paper's estimator is phi_hat(s, t) = ||v_s - v_t||_p with p = 1 as the
// recommended metric (linearity gives L1 strictly more embedding freedom on
// planar graphs than p > 1). General p is kept for the Fig 9 ablation.
#ifndef RNE_CORE_METRIC_H_
#define RNE_CORE_METRIC_H_

#include <cmath>
#include <span>

#include "util/macros.h"

namespace rne {

/// L1 distance, the query-time hot path (unrolled accumulation).
double L1Dist(std::span<const float> a, std::span<const float> b);

/// L2 (Euclidean) distance.
double L2Dist(std::span<const float> a, std::span<const float> b);

/// General Lp "distance" (sum |d_i|^p)^(1/p); p may be fractional (e.g. 0.5,
/// which is not a metric but is included in the paper's Fig 9 sweep).
double LpDist(std::span<const float> a, std::span<const float> b, double p);

/// Dispatcher used by training/eval code paths; p==1 and p==2 hit the
/// specialized kernels.
inline double MetricDist(std::span<const float> a, std::span<const float> b,
                         double p) {
  if (p == 1.0) return L1Dist(a, b);
  if (p == 2.0) return L2Dist(a, b);
  return LpDist(a, b, p);
}

/// Writes dD/da_i into `grad` where D = ||a - b||_p. For p = 1 this is
/// sign(a_i - b_i); for general p it is sign(d_i)|d_i|^{p-1} D^{1-p}.
/// `dist` must be the precomputed MetricDist(a, b, p).
void MetricGradient(std::span<const float> a, std::span<const float> b,
                    double p, double dist, std::span<double> grad);

/// Fused SGD kernel for the recommended p = 1 metric: one pass computes the
/// L1 distance AND writes sign(a_i - b_i) in {-1, 0, +1} into `grad`
/// (equivalent to L1Dist + MetricGradient(p=1) at half the memory traffic).
double L1DistWithSignGrad(std::span<const float> a, std::span<const float> b,
                          std::span<float> grad);

}  // namespace rne

#endif  // RNE_CORE_METRIC_H_
