#include "core/metric.h"

#include <algorithm>

#include "core/kernels.h"

namespace rne {

double L1Dist(std::span<const float> a, std::span<const float> b) {
  RNE_DCHECK(a.size() == b.size());
  return ActiveKernels().l1(a.data(), b.data(), a.size());
}

double L2Dist(std::span<const float> a, std::span<const float> b) {
  RNE_DCHECK(a.size() == b.size());
  return std::sqrt(ActiveKernels().l2sq(a.data(), b.data(), a.size()));
}

double L1DistWithSignGrad(std::span<const float> a, std::span<const float> b,
                          std::span<float> grad) {
  RNE_DCHECK(a.size() == b.size() && grad.size() == a.size());
  return ActiveKernels().l1_sign_grad(a.data(), b.data(), a.size(),
                                      grad.data());
}

double LpDist(std::span<const float> a, std::span<const float> b, double p) {
  RNE_DCHECK(a.size() == b.size());
  RNE_DCHECK(p > 0.0);
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += std::pow(std::abs(static_cast<double>(a[i]) - b[i]), p);
  }
  return std::pow(s, 1.0 / p);
}

void MetricGradient(std::span<const float> a, std::span<const float> b,
                    double p, double dist, std::span<double> grad) {
  RNE_DCHECK(a.size() == b.size() && grad.size() == a.size());
  if (p == 1.0) {
    for (size_t i = 0; i < a.size(); ++i) {
      const double d = static_cast<double>(a[i]) - b[i];
      grad[i] = d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0);
    }
    return;
  }
  // dD/da_i = sign(d_i) * |d_i|^{p-1} * D^{1-p}; zero at D == 0.
  if (dist <= 0.0) {
    for (size_t i = 0; i < grad.size(); ++i) grad[i] = 0.0;
    return;
  }
  const double scale = std::pow(dist, 1.0 - p);
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    // For p < 1 the factor |d|^{p-1} blows up near zero coordinates; clamp
    // the per-dimension magnitude at 1 so every Lp has the same SGD step
    // budget as L1 (p > 1 is naturally bounded: (|d|/D)^{p-1} <= 1).
    const double mag =
        std::min(std::pow(std::abs(d), p - 1.0) * scale, 1.0);
    grad[i] = d > 0.0 ? mag : (d < 0.0 ? -mag : 0.0);
  }
}

}  // namespace rne
