#include "core/metric.h"

#include <algorithm>

namespace rne {

double L1Dist(std::span<const float> a, std::span<const float> b) {
  RNE_DCHECK(a.size() == b.size());
  const size_t n = a.size();
  // Four independent accumulators let the compiler vectorize.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += std::abs(static_cast<double>(a[i]) - b[i]);
    s1 += std::abs(static_cast<double>(a[i + 1]) - b[i + 1]);
    s2 += std::abs(static_cast<double>(a[i + 2]) - b[i + 2]);
    s3 += std::abs(static_cast<double>(a[i + 3]) - b[i + 3]);
  }
  for (; i < n; ++i) s0 += std::abs(static_cast<double>(a[i]) - b[i]);
  return (s0 + s1) + (s2 + s3);
}

double L2Dist(std::span<const float> a, std::span<const float> b) {
  RNE_DCHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double LpDist(std::span<const float> a, std::span<const float> b, double p) {
  RNE_DCHECK(a.size() == b.size());
  RNE_DCHECK(p > 0.0);
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += std::pow(std::abs(static_cast<double>(a[i]) - b[i]), p);
  }
  return std::pow(s, 1.0 / p);
}

void MetricGradient(std::span<const float> a, std::span<const float> b,
                    double p, double dist, std::span<double> grad) {
  RNE_DCHECK(a.size() == b.size() && grad.size() == a.size());
  if (p == 1.0) {
    for (size_t i = 0; i < a.size(); ++i) {
      const double d = static_cast<double>(a[i]) - b[i];
      grad[i] = d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0);
    }
    return;
  }
  // dD/da_i = sign(d_i) * |d_i|^{p-1} * D^{1-p}; zero at D == 0.
  if (dist <= 0.0) {
    for (size_t i = 0; i < grad.size(); ++i) grad[i] = 0.0;
    return;
  }
  const double scale = std::pow(dist, 1.0 - p);
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    // For p < 1 the factor |d|^{p-1} blows up near zero coordinates; clamp
    // the per-dimension magnitude at 1 so every Lp has the same SGD step
    // budget as L1 (p > 1 is naturally bounded: (|d|/D)^{p-1} <= 1).
    const double mag =
        std::min(std::pow(std::abs(d), p - 1.0) * scale, 1.0);
    grad[i] = d > 0.0 ? mag : (d < 0.0 ? -mag : 0.0);
  }
}

}  // namespace rne
