#include "core/evaluation.h"

#include <algorithm>
#include <cmath>

namespace rne {

ErrorSummary EvaluateErrors(const DistanceFn& fn,
                            const std::vector<DistanceSample>& validation) {
  ErrorSummary out;
  double sum_sq = 0.0;
  for (const DistanceSample& s : validation) {
    if (s.dist <= 0.0 || s.dist == kInfDistance) continue;
    const double est = fn(s.s, s.t);
    const double abs_err = std::abs(est - s.dist);
    const double rel_err = abs_err / s.dist;
    out.mean_abs += abs_err;
    out.mean_rel += rel_err;
    out.max_rel = std::max(out.max_rel, rel_err);
    sum_sq += rel_err * rel_err;
    ++out.num_pairs;
  }
  if (out.num_pairs > 0) {
    const auto n = static_cast<double>(out.num_pairs);
    out.mean_abs /= n;
    out.mean_rel /= n;
    out.var_rel = sum_sq / n - out.mean_rel * out.mean_rel;
  }
  return out;
}

std::vector<double> CumulativeErrorCurve(
    const DistanceFn& fn, const std::vector<DistanceSample>& validation,
    const std::vector<double>& thresholds) {
  std::vector<double> rel_errors;
  rel_errors.reserve(validation.size());
  for (const DistanceSample& s : validation) {
    if (s.dist <= 0.0 || s.dist == kInfDistance) continue;
    rel_errors.push_back(std::abs(fn(s.s, s.t) - s.dist) / s.dist);
  }
  std::sort(rel_errors.begin(), rel_errors.end());
  std::vector<double> out;
  out.reserve(thresholds.size());
  for (const double threshold : thresholds) {
    const auto below =
        std::upper_bound(rel_errors.begin(), rel_errors.end(), threshold) -
        rel_errors.begin();
    out.push_back(rel_errors.empty()
                      ? 0.0
                      : static_cast<double>(below) /
                            static_cast<double>(rel_errors.size()));
  }
  return out;
}

std::vector<ErrorSummary> ErrorsByDistance(
    const DistanceFn& fn, const std::vector<DistanceSample>& validation,
    size_t num_buckets) {
  RNE_CHECK(num_buckets > 0);
  double max_dist = 0.0;
  for (const DistanceSample& s : validation) {
    if (s.dist != kInfDistance) max_dist = std::max(max_dist, s.dist);
  }
  std::vector<std::vector<DistanceSample>> buckets(num_buckets);
  for (const DistanceSample& s : validation) {
    if (s.dist <= 0.0 || s.dist == kInfDistance) continue;
    const size_t b = std::min(
        num_buckets - 1,
        static_cast<size_t>(s.dist / max_dist *
                            static_cast<double>(num_buckets)));
    buckets[b].push_back(s);
  }
  std::vector<ErrorSummary> out;
  out.reserve(num_buckets);
  for (const auto& bucket : buckets) {
    out.push_back(EvaluateErrors(fn, bucket));
  }
  return out;
}

}  // namespace rne
