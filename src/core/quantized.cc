#include "core/quantized.h"

#include <algorithm>
#include <cmath>

namespace rne {

QuantizedRne::QuantizedRne(const Rne& model) {
  RNE_CHECK_MSG(model.p() == 1.0,
                "quantized serving supports the L1 metric only");
  const EmbeddingMatrix& emb = model.vertex_embeddings();
  rows_ = emb.rows();
  dim_ = emb.dim();
  scale_ = model.scale();
  steps_.assign(dim_, 0.0f);
  codes_.assign(rows_ * dim_, 0);

  // Per-dimension range -> 255 levels.
  std::vector<float> mins(dim_, 0.0f);
  std::vector<float> maxs(dim_, 0.0f);
  for (size_t d = 0; d < dim_; ++d) {
    mins[d] = emb.Row(0)[d];
    maxs[d] = emb.Row(0)[d];
  }
  for (size_t v = 1; v < rows_; ++v) {
    const auto row = emb.Row(v);
    for (size_t d = 0; d < dim_; ++d) {
      mins[d] = std::min(mins[d], row[d]);
      maxs[d] = std::max(maxs[d], row[d]);
    }
  }
  for (size_t d = 0; d < dim_; ++d) {
    steps_[d] = std::max((maxs[d] - mins[d]) / 255.0f, 1e-12f);
  }
  for (size_t v = 0; v < rows_; ++v) {
    const auto row = emb.Row(v);
    uint8_t* out = codes_.data() + v * dim_;
    for (size_t d = 0; d < dim_; ++d) {
      const float code = std::round((row[d] - mins[d]) / steps_[d]);
      out[d] = static_cast<uint8_t>(std::clamp(code, 0.0f, 255.0f));
    }
  }
}

double QuantizedRne::QueryCold(VertexId s, VertexId t) const {
  // Rows are staged through stack buffers (dim is capped at kMaxColdDim by
  // the load path); the cache pins at most one block at a time here, so
  // query threads can never deadlock on pinned-slot exhaustion.
  uint8_t row_s[kMaxColdDim];
  uint8_t row_t[kMaxColdDim];
  Status st =
      cache_->Read(codes_file_offset_ + uint64_t{s} * dim_, row_s, dim_);
  if (st.ok()) {
    st = cache_->Read(codes_file_offset_ + uint64_t{t} * dim_, row_t, dim_);
  }
  if (!st.ok()) throw CorruptionError(st.ToString());
  return QuantizedL1Kernel(row_s, row_t, steps_.data(), dim_) * scale_;
}

Status QuantizedRne::Save(const std::string& path, SaveFormat format) const {
  if (cache_ != nullptr) {
    return Status::FailedPrecondition(
        "cannot re-save a block-cached model (codes are not resident): " +
        path);
  }
  BinaryWriter w(path, kQuantMagic);
  if (!w.ok()) return Status::IoError("cannot open " + path + ".tmp");
  const uint8_t* codes = codes_view_ != nullptr ? codes_view_ : codes_.data();
  if (format == SaveFormat::kSectioned) {
    w.AddSection(kSecQuantCodes, codes, rows_ * dim_, kSectionFlagLazyVerify);
  }
  w.WritePod<uint64_t>(rows_);
  w.WritePod<uint64_t>(dim_);
  w.WritePod(scale_);
  w.WriteVector(steps_);
  if (format != SaveFormat::kSectioned) {
    w.WriteLengthPrefixed(codes, rows_ * dim_, sizeof(uint8_t));
  }
  return w.Finish();
}

Status QuantizedRne::ParseMeta(BinaryReader& r, const std::string& path) {
  uint64_t rows = 0, dim = 0;
  if (!r.ReadPod(&rows) || !r.ReadPod(&dim) || !r.ReadPod(&scale_) ||
      !r.ReadVector(&steps_)) {
    return r.ReadError("corrupt quantized model " + path);
  }
  if (r.format_version() >= kFormatVersionV2) {
    // The CRC-protected section table bounds the code bytes; corrupt
    // rows/dim fields fail this cross-check instead of allocating. An
    // absent section means zero code bytes (empty sections are dropped by
    // the writer), so rows*dim must then be 0 too.
    const SectionInfo* sec = r.FindSection(kSecQuantCodes);
    const uint64_t sec_size = sec == nullptr ? 0 : sec->size;
    if ((dim != 0 && rows > sec_size / dim) || rows * dim != sec_size) {
      return r.ReadError("corrupt quantized model " + path);
    }
  } else if (!r.ReadVector(&codes_)) {
    return r.ReadError("corrupt quantized model " + path);
  }
  rows_ = rows;
  dim_ = dim;
  return Status::Ok();
}

Status QuantizedRne::CheckConsistent(const std::string& path) const {
  const bool inline_codes = codes_view_ == nullptr && cache_ == nullptr;
  // The rows-bound check keeps rows*dim from overflowing on corrupt counts
  // (v2 paths already cross-checked rows*dim against the section table).
  if (steps_.size() != dim_ ||
      (inline_codes && ((dim_ != 0 && rows_ > codes_.size() / dim_) ||
                        codes_.size() != rows_ * dim_))) {
    return Status::Corruption("inconsistent quantized model " + path);
  }
  return Status::Ok();
}

StatusOr<QuantizedRne> QuantizedRne::Load(const std::string& path) {
  return Load(path, LoadOptions{});
}

StatusOr<QuantizedRne> QuantizedRne::Load(const std::string& path,
                                          const LoadOptions& options) {
  if (options.mode == LoadMode::kMmap ||
      options.mode == LoadMode::kMmapCold) {
    auto opened = MappedEnvelope::Open(path, kQuantMagic, options.mode);
    if (!opened.ok()) {
      if (opened.status().code() == StatusCode::kFailedPrecondition) {
        return Load(path, LoadOptions{});  // v1: nothing to map
      }
      return opened.status();
    }
    std::shared_ptr<const MappedEnvelope> env = std::move(opened).value();
    BinaryReader r(env->file().data(), env->file().size(), path,
                   kQuantMagic);
    if (!r.ok()) return r.status();
    QuantizedRne q;
    RNE_RETURN_IF_ERROR(q.ParseMeta(r, path));
    RNE_RETURN_IF_ERROR(r.Finish());
    q.codes_view_ = env->SectionData(kSecQuantCodes);
    q.mapping_ = std::move(env);
    RNE_RETURN_IF_ERROR(q.CheckConsistent(path));
    return q;
  }

  BinaryReader r(path, kQuantMagic);
  if (!r.ok()) return r.status();
  QuantizedRne q;
  RNE_RETURN_IF_ERROR(q.ParseMeta(r, path));
  RNE_RETURN_IF_ERROR(r.Finish());
  const bool v2 = r.format_version() >= kFormatVersionV2;
  if (options.mode == LoadMode::kBlockCache && !v2) {
    return Load(path, LoadOptions{});  // v1 codes are inline; heap fallback
  }
  if (options.mode == LoadMode::kBlockCache) {
    if (q.dim_ > kMaxColdDim) {
      return Status::FailedPrecondition(
          "embedding dim too large for block-cached serving: " + path);
    }
    // Integrity first: stream-verify every section (bounded memory), then
    // serve rows by offset. The cache itself never re-checksums — the
    // verified file is the unit of trust, as with an eager mmap.
    RNE_RETURN_IF_ERROR(r.VerifyAllSections());
    // ParseMeta proved rows*dim == section size, so a missing section means
    // an empty model: any offset works, no block is ever fetched.
    const SectionInfo* sec = r.FindSection(kSecQuantCodes);
    q.codes_file_offset_ = sec == nullptr ? 0 : sec->offset;
    BlockCache::Options copt;
    copt.block_bytes = options.block_bytes;
    copt.block_count = options.block_count;
    auto cache = BlockCache::Open(path, copt);
    if (!cache.ok()) return cache.status();
    q.cache_ = std::move(cache).value();
  } else if (v2) {
    q.codes_.resize(q.rows_ * q.dim_);
    if (!q.codes_.empty()) {
      RNE_RETURN_IF_ERROR(r.ReadSectionInto(kSecQuantCodes, q.codes_.data(),
                                            q.codes_.size()));
    }
  }
  RNE_RETURN_IF_ERROR(q.CheckConsistent(path));
  return q;
}

}  // namespace rne
