#include "core/quantized.h"

#include <algorithm>
#include <cmath>

#include "core/kernels.h"

namespace rne {

QuantizedRne::QuantizedRne(const Rne& model) {
  RNE_CHECK_MSG(model.p() == 1.0,
                "quantized serving supports the L1 metric only");
  const EmbeddingMatrix& emb = model.vertex_embeddings();
  rows_ = emb.rows();
  dim_ = emb.dim();
  scale_ = model.scale();
  steps_.assign(dim_, 0.0f);
  codes_.assign(rows_ * dim_, 0);

  // Per-dimension range -> 255 levels.
  std::vector<float> mins(dim_, 0.0f);
  std::vector<float> maxs(dim_, 0.0f);
  for (size_t d = 0; d < dim_; ++d) {
    mins[d] = emb.Row(0)[d];
    maxs[d] = emb.Row(0)[d];
  }
  for (size_t v = 1; v < rows_; ++v) {
    const auto row = emb.Row(v);
    for (size_t d = 0; d < dim_; ++d) {
      mins[d] = std::min(mins[d], row[d]);
      maxs[d] = std::max(maxs[d], row[d]);
    }
  }
  for (size_t d = 0; d < dim_; ++d) {
    steps_[d] = std::max((maxs[d] - mins[d]) / 255.0f, 1e-12f);
  }
  for (size_t v = 0; v < rows_; ++v) {
    const auto row = emb.Row(v);
    uint8_t* out = codes_.data() + v * dim_;
    for (size_t d = 0; d < dim_; ++d) {
      const float code = std::round((row[d] - mins[d]) / steps_[d]);
      out[d] = static_cast<uint8_t>(std::clamp(code, 0.0f, 255.0f));
    }
  }
}

double QuantizedRne::Query(VertexId s, VertexId t) const {
  RNE_DCHECK(s < rows_ && t < rows_);
  return QuantizedL1Kernel(Row(s), Row(t), steps_.data(), dim_) * scale_;
}

Status QuantizedRne::Save(const std::string& path) const {
  BinaryWriter w(path, kQuantMagic);
  if (!w.ok()) return Status::IoError("cannot open " + path + ".tmp");
  w.WritePod<uint64_t>(rows_);
  w.WritePod<uint64_t>(dim_);
  w.WritePod(scale_);
  w.WriteVector(steps_);
  w.WriteVector(codes_);
  return w.Finish();
}

StatusOr<QuantizedRne> QuantizedRne::Load(const std::string& path) {
  BinaryReader r(path, kQuantMagic);
  if (!r.ok()) return r.status();
  QuantizedRne q;
  uint64_t rows = 0, dim = 0;
  if (!r.ReadPod(&rows) || !r.ReadPod(&dim) || !r.ReadPod(&q.scale_) ||
      !r.ReadVector(&q.steps_) || !r.ReadVector(&q.codes_)) {
    return r.ReadError("corrupt quantized model " + path);
  }
  RNE_RETURN_IF_ERROR(r.Finish());
  q.rows_ = rows;
  q.dim_ = dim;
  // The rows-bound check keeps rows*dim from overflowing on corrupt counts.
  if (q.steps_.size() != dim || (dim != 0 && rows > q.codes_.size() / dim) ||
      q.codes_.size() != rows * dim) {
    return Status::Corruption("inconsistent quantized model " + path);
  }
  return q;
}

}  // namespace rne
