// Hierarchical RNE training (Algorithm 1 of the paper).
//
// Three phases over the hierarchical model:
//   (1) hierarchy embedding: L top-down steps; step `lev` draws sub-graph
//       level samples for level lev and trains every level with learning
//       rate alpha_l = lr0 / (|l - lev| + 1), so the focused level moves the
//       most and already-converged upper levels drift the least;
//   (2) vertex embedding: upper levels frozen (alpha = 0), vertex-local
//       embeddings trained on landmark-based samples;
//   (3) active fine-tuning: repeatedly measure per-distance-bucket error on
//       held-out pairs and retrain the vertex level on samples drawn from
//       the under-fitted buckets (Local or Global assignment).
//
// Distances are normalized by a scale factor (mean sample distance) so the
// same learning rate works across datasets; the factor is part of the model.
//
// Parallel training (num_threads > 1): each epoch's shuffled sample order is
// cut into per-worker shards processed Hogwild-style — vertex-local rows are
// updated in place without locks (each sample touches only its two endpoint
// rows, so concurrent writes to the same row are rare and the occasional
// lost update is SGD noise), while upper-level node rows — touched by every
// sample in their subtree and therefore heavily contended — use local SGD:
// each worker accumulates its node-row updates into a private displacement
// buffer that it also reads back during its own gathers (so its local
// trajectory telescopes exactly like sequential SGD), and at chunk barriers
// (every sgd_chunk samples per worker) the main thread folds the AVERAGE of
// the workers' displacements into the shared rows. Under TSan the
// vertex-row accesses go through relaxed std::atomic_ref operations so the
// build is race-free; release builds use the raw SIMD kernels.
#ifndef RNE_CORE_TRAINER_H_
#define RNE_CORE_TRAINER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "algo/distance_sampler.h"
#include "core/hierarchical_model.h"
#include "core/sampler.h"
#include "util/thread_pool.h"

namespace rne {

struct TrainConfig {
  size_t dim = 64;
  /// Lp metric parameter (1 = recommended).
  double p = 1.0;
  /// Base learning rate: the approximate fraction of a sample's error
  /// corrected per SGD update (internally normalized by the dimension).
  double lr0 = 0.3;
  /// Learning-rate fraction at the final epoch of each phase (linear decay
  /// from 1.0); a low floor anneals away the SGD noise floor.
  double lr_final_fraction = 0.1;
  /// Init spread; node-local embeddings start uniform in
  /// +/- init_scale / dim.
  double init_scale = 1.0;

  // Phase 1 (hierarchy embedding).
  size_t level_samples = 20000;
  size_t level_epochs = 6;

  // Phase 2 (vertex embedding).
  size_t vertex_samples = 100000;
  size_t vertex_epochs = 8;
  size_t num_landmarks = 100;
  /// false = uniform random pairs instead of landmark pairs (Fig 12 ablation).
  bool landmark_sampling = true;
  /// Farthest-point landmark selection vs random landmarks.
  bool farthest_landmarks = true;

  // Phase 3 (active fine-tuning).
  size_t finetune_rounds = 3;
  size_t finetune_samples = 20000;
  size_t finetune_epochs = 3;
  /// Pairs per bucket used to estimate the error distribution each round.
  size_t finetune_eval_pairs_per_bucket = 200;
  size_t grid_k = 8;
  FineTuneStrategy finetune_strategy = FineTuneStrategy::kGlobal;

  /// Consecutive pairs sharing one source vertex during sample generation
  /// (amortizes exact-distance searches; marginal distribution unchanged).
  size_t source_reuse = 8;

  /// Worker threads. Sample materialization (exact Dijkstra) always
  /// parallelizes (0 = all cores, matching DistanceSampler). The SGD loop
  /// itself shards epochs across a pool only when num_threads > 1 — 0/1
  /// keeps the exact sequential reference semantics.
  size_t num_threads = 0;
  /// Samples each SGD worker processes between upper-level delta merges;
  /// smaller chunks track the sequential trajectory more closely at the cost
  /// of more barriers.
  size_t sgd_chunk = 1024;
  uint64_t seed = 13;
  bool verbose = false;
};

/// Point on a learning curve: cumulative training samples processed -> mean
/// relative validation error.
struct ProgressPoint {
  size_t samples_processed = 0;
  double mean_rel_error = 0.0;
};

class Trainer {
 public:
  /// `g` and `hier` must outlive the trainer.
  Trainer(const Graph& g, const PartitionHierarchy& hier, TrainConfig config);

  /// Runs phases 1-3 (phase counts taken from the config).
  void TrainAll();

  void TrainHierarchyPhase();
  void TrainVertexPhase();
  void FineTunePhase();

  HierarchicalModel& model() { return model_; }
  const HierarchicalModel& model() const { return model_; }
  /// Distance normalization factor: model estimates * scale() = meters.
  double scale() const { return scale_; }
  size_t total_samples_processed() const { return samples_processed_; }
  /// SGD worker threads actually in use (1 = sequential).
  size_t sgd_threads() const { return sgd_threads_; }

  /// Mean relative error of the current model on exact samples
  /// (parallelized across the SGD pool for large sets).
  double MeanRelativeError(const std::vector<DistanceSample>& val) const;

  /// Installs a validation set; every epoch appends a ProgressPoint.
  void SetValidation(std::vector<DistanceSample> val);
  const std::vector<ProgressPoint>& progress() const { return progress_; }

  /// Trains `epochs` epochs on explicit samples with explicit per-level
  /// learning rates (index = model level, 1..num_levels; index 0 unused).
  /// Exposed for ablation benchmarks.
  void TrainOnSamples(const std::vector<DistanceSample>& samples,
                      const std::vector<double>& level_lrs, size_t epochs);

  /// Computes exact distances for pairs using the internal sampler.
  std::vector<DistanceSample> Materialize(
      const std::vector<VertexPair>& pairs) const;

 private:
  /// Per-worker SGD scratch: embedding/gradient staging plus the node-row
  /// delta buffer for the Hogwild sharded path. Slot 0 doubles as the
  /// sequential path's scratch.
  struct SgdScratch {
    std::vector<float> vs, vt;
    std::vector<float> grad;    // float gradient (SIMD row updates)
    std::vector<double> dgrad;  // general-p gradient staging
    /// Dense num_nodes x dim delta accumulator for upper-level rows.
    std::vector<float> node_delta;
    std::vector<uint32_t> touched;    // node ids with a nonzero delta
    std::vector<uint8_t> is_touched;  // per-node flag backing `touched`
    /// Observability accumulators (per-epoch mean |dL/d dist| gauge):
    /// two scalar ops per sample, folded across workers at epoch end.
    double coeff_abs_sum = 0.0;
    size_t coeff_count = 0;
  };

  /// One SGD update; level_lrs[level] = learning rate for that model level.
  void SgdStep(const DistanceSample& sample,
               const std::vector<double>& level_lrs);
  /// One epoch over shuffle_ sharded across the pool (num_threads > 1).
  void ParallelEpoch(const std::vector<DistanceSample>& samples,
                     const std::vector<double>& level_lrs);
  /// Hogwild SGD update running on a pool worker; vertex rows in place,
  /// node rows into scr.node_delta (the worker's local displacement).
  /// `nodes_training` = some node level has a nonzero learning rate.
  void ParallelSgdStep(const DistanceSample& sample,
                       const std::vector<double>& level_lrs, SgdScratch& scr,
                       bool nodes_training);
  /// Averages the workers' node-row displacements into the model (main
  /// thread, after a barrier) and clears them. Averaging — not summing — is
  /// what keeps parity with sequential SGD: every worker's local trajectory
  /// already applies a full-strength correction to the shared row, so
  /// summing W displacements would correct the same error W times over and
  /// diverge (local SGD / model averaging).
  void MergeNodeDeltas();
  /// Global embedding gather that tolerates concurrent vertex-row writers.
  /// Adds the worker's own pending node displacements on top of the shared
  /// node rows, so each worker trains against its local model view.
  void GlobalOfHogwild(VertexId v, std::span<float> out,
                       const SgdScratch& scr, bool nodes_training);
  /// Computes dist and the float gradient for `sample` into scr; returns
  /// false for unreachable pairs or zero error.
  bool ComputeGradient(const DistanceSample& sample, SgdScratch& scr,
                       double* coeff);
  /// Sets scale_ from the mean of `samples` if not yet set.
  void MaybeInitScale(const std::vector<DistanceSample>& samples);
  void RecordProgress();

  const Graph& g_;
  const PartitionHierarchy& hier_;
  TrainConfig config_;
  HierarchicalModel model_;
  DistanceSampler dist_sampler_;
  Rng rng_;
  double scale_ = 0.0;
  /// 1 / (4 * dim): converts lr0 into a dim-independent correction fraction.
  double lr_norm_ = 1.0;
  size_t samples_processed_ = 0;

  size_t sgd_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // created only when sgd_threads_ > 1
  mutable std::vector<SgdScratch> scratch_;  // one slot per SGD worker
  /// Merge staging: per-node contributing-worker count + the union of
  /// touched nodes (parallel path only).
  std::vector<uint32_t> merge_count_;
  std::vector<uint32_t> merged_nodes_;

  std::vector<DistanceSample> validation_;
  std::vector<ProgressPoint> progress_;

  std::vector<uint32_t> shuffle_;
};

}  // namespace rne

#endif  // RNE_CORE_TRAINER_H_
