// Hierarchical RNE training (Algorithm 1 of the paper).
//
// Three phases over the hierarchical model:
//   (1) hierarchy embedding: L top-down steps; step `lev` draws sub-graph
//       level samples for level lev and trains every level with learning
//       rate alpha_l = lr0 / (|l - lev| + 1), so the focused level moves the
//       most and already-converged upper levels drift the least;
//   (2) vertex embedding: upper levels frozen (alpha = 0), vertex-local
//       embeddings trained on landmark-based samples;
//   (3) active fine-tuning: repeatedly measure per-distance-bucket error on
//       held-out pairs and retrain the vertex level on samples drawn from
//       the under-fitted buckets (Local or Global assignment).
//
// Distances are normalized by a scale factor (mean sample distance) so the
// same learning rate works across datasets; the factor is part of the model.
#ifndef RNE_CORE_TRAINER_H_
#define RNE_CORE_TRAINER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "algo/distance_sampler.h"
#include "core/hierarchical_model.h"
#include "core/sampler.h"

namespace rne {

struct TrainConfig {
  size_t dim = 64;
  /// Lp metric parameter (1 = recommended).
  double p = 1.0;
  /// Base learning rate: the approximate fraction of a sample's error
  /// corrected per SGD update (internally normalized by the dimension).
  double lr0 = 0.3;
  /// Learning-rate fraction at the final epoch of each phase (linear decay
  /// from 1.0); a low floor anneals away the SGD noise floor.
  double lr_final_fraction = 0.1;
  /// Init spread; node-local embeddings start uniform in
  /// +/- init_scale / dim.
  double init_scale = 1.0;

  // Phase 1 (hierarchy embedding).
  size_t level_samples = 20000;
  size_t level_epochs = 6;

  // Phase 2 (vertex embedding).
  size_t vertex_samples = 100000;
  size_t vertex_epochs = 8;
  size_t num_landmarks = 100;
  /// false = uniform random pairs instead of landmark pairs (Fig 12 ablation).
  bool landmark_sampling = true;
  /// Farthest-point landmark selection vs random landmarks.
  bool farthest_landmarks = true;

  // Phase 3 (active fine-tuning).
  size_t finetune_rounds = 3;
  size_t finetune_samples = 20000;
  size_t finetune_epochs = 3;
  /// Pairs per bucket used to estimate the error distribution each round.
  size_t finetune_eval_pairs_per_bucket = 200;
  size_t grid_k = 8;
  FineTuneStrategy finetune_strategy = FineTuneStrategy::kGlobal;

  /// Consecutive pairs sharing one source vertex during sample generation
  /// (amortizes exact-distance searches; marginal distribution unchanged).
  size_t source_reuse = 8;

  size_t num_threads = 0;
  uint64_t seed = 13;
  bool verbose = false;
};

/// Point on a learning curve: cumulative training samples processed -> mean
/// relative validation error.
struct ProgressPoint {
  size_t samples_processed = 0;
  double mean_rel_error = 0.0;
};

class Trainer {
 public:
  /// `g` and `hier` must outlive the trainer.
  Trainer(const Graph& g, const PartitionHierarchy& hier, TrainConfig config);

  /// Runs phases 1-3 (phase counts taken from the config).
  void TrainAll();

  void TrainHierarchyPhase();
  void TrainVertexPhase();
  void FineTunePhase();

  HierarchicalModel& model() { return model_; }
  const HierarchicalModel& model() const { return model_; }
  /// Distance normalization factor: model estimates * scale() = meters.
  double scale() const { return scale_; }
  size_t total_samples_processed() const { return samples_processed_; }

  /// Mean relative error of the current model on exact samples.
  double MeanRelativeError(const std::vector<DistanceSample>& val) const;

  /// Installs a validation set; every epoch appends a ProgressPoint.
  void SetValidation(std::vector<DistanceSample> val);
  const std::vector<ProgressPoint>& progress() const { return progress_; }

  /// Trains `epochs` epochs on explicit samples with explicit per-level
  /// learning rates (index = model level, 1..num_levels; index 0 unused).
  /// Exposed for ablation benchmarks.
  void TrainOnSamples(const std::vector<DistanceSample>& samples,
                      const std::vector<double>& level_lrs, size_t epochs);

  /// Computes exact distances for pairs using the internal sampler.
  std::vector<DistanceSample> Materialize(
      const std::vector<VertexPair>& pairs) const;

 private:
  /// One SGD update; level_lrs[level] = learning rate for that model level.
  void SgdStep(const DistanceSample& sample,
               const std::vector<double>& level_lrs);
  /// Sets scale_ from the mean of `samples` if not yet set.
  void MaybeInitScale(const std::vector<DistanceSample>& samples);
  void RecordProgress();

  const Graph& g_;
  const PartitionHierarchy& hier_;
  TrainConfig config_;
  HierarchicalModel model_;
  DistanceSampler dist_sampler_;
  Rng rng_;
  double scale_ = 0.0;
  /// 1 / (4 * dim): converts lr0 into a dim-independent correction fraction.
  double lr_norm_ = 1.0;
  size_t samples_processed_ = 0;

  std::vector<DistanceSample> validation_;
  std::vector<ProgressPoint> progress_;

  // Scratch buffers for SgdStep.
  std::vector<float> vs_, vt_;
  std::vector<double> grad_;
  std::vector<uint32_t> shuffle_;
};

}  // namespace rne

#endif  // RNE_CORE_TRAINER_H_
