// Read-only memory-mapped files and mmap-backed envelope serving.
//
// This header is the single audited home for the raw mmap/munmap/madvise
// syscalls (enforced by the `raw-mmap` lint rule): everything else in the
// tree works through MmapFile's RAII wrapper or MappedEnvelope's verified
// view of a v2 index file.
//
// MappedEnvelope is the zero-copy load path: it maps an index file, runs
// the same structural validation as BinaryReader (header, section table,
// metadata checksum, exact file length), and then verifies section data
// checksums either eagerly (LoadMode::kMmap) or on first access
// (LoadMode::kMmapCold, for sections flagged kSectionFlagLazyVerify).
// Because the open-time validation pins every section extent inside the
// real file length, later zero-copy accesses can never run off the end of
// the mapping — a truncated file fails at open with Status::Corruption
// instead of SIGBUS at query time.
#ifndef RNE_UTIL_MMAP_FILE_H_
#define RNE_UTIL_MMAP_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/serialize.h"
#include "util/status.h"

namespace rne {

/// Thrown by hot query paths that discover deferred section corruption
/// (cold-map lazy verification) and have no Status channel to report it.
/// The serving layer converts in-flight exceptions into backend errors, so
/// a corrupt cold map degrades to fallback answers instead of crashing.
class CorruptionError : public std::runtime_error {
 public:
  explicit CorruptionError(const std::string& what)
      : std::runtime_error(what) {}
};

/// RAII read-only mapping of a whole file.
class MmapFile {
 public:
  enum class Advice { kNormal, kSequential, kRandom, kWillNeed, kDontNeed };

  static StatusOr<std::shared_ptr<MmapFile>> Map(const std::string& path);
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  uint64_t size() const { return size_; }

  /// Best-effort madvise over the whole mapping (or a byte range; offsets
  /// are rounded out to page boundaries). Failures are ignored — advice is
  /// a hint, never a correctness dependency.
  void Advise(Advice advice) const;
  void AdviseRange(uint64_t offset, uint64_t length, Advice advice) const;

 private:
  MmapFile(uint8_t* data, uint64_t size) : data_(data), size_(size) {}

  uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
};

/// A v2 index file served from a read-only mapping, with checksum state.
class MappedEnvelope {
 public:
  /// Maps `path` and validates it exactly as BinaryReader would: header,
  /// section table structure, metadata payload checksum. Section data
  /// checksums are verified now (kMmap) or deferred to first access for
  /// sections flagged lazy-verify (kMmapCold). Fails with
  /// Status::FailedPrecondition for v1 files (nothing to map zero-copy).
  static StatusOr<std::shared_ptr<const MappedEnvelope>> Open(
      const std::string& path, uint32_t index_magic, LoadMode mode);

  const EnvelopeInfo& info() const { return info_; }
  const std::string& path() const { return path_; }
  const MmapFile& file() const { return *file_; }

  const SectionInfo* FindSection(uint32_t tag) const;
  /// Pointer to a section's data inside the mapping (valid for the life of
  /// this object), or nullptr if the tag is absent.
  const uint8_t* SectionData(uint32_t tag) const;

  /// Verifies every not-yet-verified section checksum; memoized, safe to
  /// call concurrently. Returns the first Corruption found (sticky).
  Status EnsureAllVerified() const;
  /// Exception form for hot query paths; no-op once verification passed.
  void EnsureAllVerifiedOrThrow() const;

 private:
  struct VerifyState {
    std::once_flag once;
    Status status;
  };

  MappedEnvelope() = default;
  Status VerifySection(size_t i) const;

  std::shared_ptr<MmapFile> file_;
  std::string path_;
  EnvelopeInfo info_;
  mutable std::unique_ptr<VerifyState[]> verify_;
  mutable std::atomic<bool> all_verified_{false};
};

}  // namespace rne

#endif  // RNE_UTIL_MMAP_FILE_H_
