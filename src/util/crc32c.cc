#include "util/crc32c.h"

#include <array>
#include <cstring>

namespace rne {
namespace {

constexpr uint32_t kPoly = 0x82F63B78;  // reflected Castagnoli polynomial

// Slicing-by-8 lookup tables: table[0] is the classic byte-at-a-time table,
// table[k][b] is the CRC of byte b followed by k zero bytes. Computed once at
// startup; 8 KiB total.
struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const Tables& tab = tables();
  crc = ~crc;
  // Process 8-byte blocks via slicing-by-8, then mop up the tail.
  while (n >= 8) {
    uint64_t block;
    std::memcpy(&block, p, 8);
    block ^= crc;  // little-endian: low 4 bytes absorb the running CRC
    crc = tab.t[7][block & 0xFF] ^ tab.t[6][(block >> 8) & 0xFF] ^
          tab.t[5][(block >> 16) & 0xFF] ^ tab.t[4][(block >> 24) & 0xFF] ^
          tab.t[3][(block >> 32) & 0xFF] ^ tab.t[2][(block >> 40) & 0xFF] ^
          tab.t[1][(block >> 48) & 0xFF] ^ tab.t[0][(block >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace rne
