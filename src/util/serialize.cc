#include "util/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "obs/metrics.h"
#include "util/crc32c.h"
#include "util/fault_injection.h"
#include "util/macros.h"
#include "util/timer.h"

namespace rne {
namespace {

static_assert(kSectionEntrySize == 32, "on-disk section entry layout");

void EncodeHeader(uint32_t format_version, uint32_t index_magic,
                  uint64_t payload_size, char out[kEnvelopeHeaderSize]) {
  const uint32_t flags = 0;
  std::memcpy(out + 0, &kEnvelopeMagic, 4);
  std::memcpy(out + 4, &format_version, 4);
  std::memcpy(out + 8, &index_magic, 4);
  std::memcpy(out + 12, &flags, 4);
  std::memcpy(out + 16, &payload_size, 8);
  const uint32_t header_crc = Crc32c(out, 24);
  std::memcpy(out + 24, &header_crc, 4);
}

uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// fsyncs `path`; returns false on any failure.
bool SyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable. Failure is ignored: some filesystems reject directory
/// fds and the data file is already synced.
void SyncParentDir(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

const char* IndexKindName(uint32_t magic) {
  switch (magic) {
    case kRneMagic:
      return "RNE model";
    case kQuantMagic:
      return "quantized RNE model";
    case kChMagic:
      return "CH index";
    case kH2hMagic:
      return "H2H index";
    case kAltMagic:
      return "ALT index";
    case kGTreeMagic:
      return "G-tree index";
    case kHierarchyMagic:
      return "partition hierarchy";
    default:
      return "unknown";
  }
}

const char* LoadModeName(LoadMode mode) {
  switch (mode) {
    case LoadMode::kHeap:
      return "heap";
    case LoadMode::kMmap:
      return "mmap";
    case LoadMode::kMmapCold:
      return "mmap-cold";
    case LoadMode::kBlockCache:
      return "block-cache";
  }
  return "unknown";
}

// ----------------------------------------------------------- BinaryWriter

BinaryWriter::BinaryWriter(const std::string& path, uint32_t index_magic)
    : path_(path), tmp_path_(path + ".tmp"), index_magic_(index_magic) {
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!out_) return;
  // Reserve the header; Finish() patches it once the payload size is known.
  const char zeros[kEnvelopeHeaderSize] = {};
  out_.write(zeros, kEnvelopeHeaderSize);
  ok_ = static_cast<bool>(out_);
}

BinaryWriter::~BinaryWriter() {
  if (!finished_) Discard();
}

size_t BinaryWriter::TableBytes() const {
  if (sections_.empty()) return 0;
  return 4 + sections_.size() * kSectionEntrySize + 4;
}

void BinaryWriter::AddSection(uint32_t tag, const void* data, uint64_t size,
                              uint32_t flags, uint64_t alignment) {
  RNE_CHECK_MSG(!table_reserved_,
                "AddSection must precede the first payload write");
  RNE_CHECK_MSG(IsPow2(alignment) && alignment >= kSectionAlignment &&
                    alignment <= kMaxSectionAlignment,
                "section alignment must be a power of two in [64, 1<<20]");
  RNE_CHECK_MSG(data != nullptr || size == 0, "null section data");
  for (const PendingSection& s : sections_) {
    RNE_CHECK_MSG(s.tag != tag, "duplicate section tag");
  }
  // Empty sections are dropped rather than written: the reader rejects
  // zero-size table entries as corrupt (they would alias the next extent),
  // so loaders treat an absent tag as "zero bytes" instead.
  if (size == 0) return;
  sections_.push_back(PendingSection{tag, flags, data, size, alignment});
}

void BinaryWriter::ReserveTable() {
  if (table_reserved_) return;
  table_reserved_ = true;
  const size_t n = TableBytes();
  if (n == 0 || !ok_) return;
  // Placeholder; Finish() seeks back and writes the real table.
  const std::vector<char> zeros(n, 0);
  out_.write(zeros.data(), static_cast<std::streamsize>(n));
  if (!out_) ok_ = false;
}

bool BinaryWriter::WriteFileBytes(const void* data, size_t n) {
  if (!ok_ || n == 0) return ok_;
  if (fault::WriteShouldFail(total_bytes_ + n)) {
    ok_ = false;
    injected_fault_ = true;
    return false;
  }
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(n));
  if (!out_) {
    ok_ = false;
    return false;
  }
  total_bytes_ += n;
  return true;
}

void BinaryWriter::WriteRaw(const void* data, size_t n) {
  if (n == 0) return;
  ReserveTable();
  if (!WriteFileBytes(data, n)) return;
  payload_crc_ = Crc32cExtend(payload_crc_, data, n);
  payload_bytes_ += n;
}

void BinaryWriter::WriteString(const std::string& s) {
  WritePod<uint64_t>(s.size());
  if (!s.empty()) WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteLengthPrefixed(const void* data, uint64_t count,
                                       size_t elem_size) {
  WritePod<uint64_t>(count);
  if (count != 0) WriteRaw(data, count * elem_size);
}

void BinaryWriter::Discard() {
  if (out_.is_open()) out_.close();
  // An injected fault simulates a kill: the partial temp file stays behind,
  // and correctness relies on the rename never having happened.
  if (!injected_fault_) std::remove(tmp_path_.c_str());
}

Status BinaryWriter::Finish() {
  if (finished_) return Status::Ok();
  ReserveTable();  // a pure-section file may have had no payload writes
  if (!ok_) {
    Discard();
    return Status::IoError("write failed for " + path_ +
                           (injected_fault_ ? " (injected fault)" : ""));
  }
  // Seal the metadata payload with its CRC trailer.
  out_.write(reinterpret_cast<const char*>(&payload_crc_),
             kEnvelopeTrailerSize);
  // Stream the declared sections: zero padding up to each aligned offset,
  // then the data. Each section's CRC covers its padding and data so every
  // file byte sits under some checksum.
  uint64_t pos = kEnvelopeHeaderSize + TableBytes() + payload_bytes_ +
                 kEnvelopeTrailerSize;
  const char pad_zeros[256] = {};
  for (PendingSection& s : sections_) {
    s.offset = AlignUp(pos, s.alignment);
    uint64_t pad = s.offset - pos;
    uint32_t crc = 0;
    while (pad > 0 && ok_) {
      const size_t chunk =
          static_cast<size_t>(std::min<uint64_t>(pad, sizeof(pad_zeros)));
      if (!WriteFileBytes(pad_zeros, chunk)) break;
      crc = Crc32cExtend(crc, pad_zeros, chunk);
      pad -= chunk;
    }
    if (ok_ && s.size > 0 && WriteFileBytes(s.data, s.size)) {
      crc = Crc32cExtend(crc, s.data, s.size);
    }
    if (!ok_) {
      Discard();
      return Status::IoError("write failed for " + path_ +
                             (injected_fault_ ? " (injected fault)" : ""));
    }
    s.crc = crc;
    pos = s.offset + s.size;
  }
  // Patch the section table (v2 only), then the real header.
  const uint32_t format_version =
      sections_.empty() ? kFormatVersionV1 : kFormatVersionV2;
  if (!sections_.empty()) {
    std::vector<char> table(4 + sections_.size() * kSectionEntrySize);
    const uint32_t count = static_cast<uint32_t>(sections_.size());
    std::memcpy(table.data(), &count, 4);
    char* entry = table.data() + 4;
    for (const PendingSection& s : sections_) {
      const uint32_t reserved = 0;
      std::memcpy(entry + 0, &s.tag, 4);
      std::memcpy(entry + 4, &s.flags, 4);
      std::memcpy(entry + 8, &s.offset, 8);
      std::memcpy(entry + 16, &s.size, 8);
      std::memcpy(entry + 24, &s.crc, 4);
      std::memcpy(entry + 28, &reserved, 4);
      entry += kSectionEntrySize;
    }
    const uint32_t table_crc = Crc32c(table.data(), table.size());
    out_.seekp(static_cast<std::streamoff>(kEnvelopeHeaderSize));
    out_.write(table.data(), static_cast<std::streamsize>(table.size()));
    out_.write(reinterpret_cast<const char*>(&table_crc), 4);
  }
  char header[kEnvelopeHeaderSize];
  EncodeHeader(format_version, index_magic_, payload_bytes_, header);
  out_.seekp(0);
  out_.write(header, kEnvelopeHeaderSize);
  out_.flush();
  if (!out_) {
    Discard();
    return Status::IoError("write failed for " + path_);
  }
  out_.close();
  {
    const Timer fsync_timer;
    const bool synced = SyncFile(tmp_path_);
    RNE_HIST_RECORD("persist.fsync_ns", fsync_timer.ElapsedNanos());
    if (!synced) {
      Discard();
      return Status::IoError("fsync failed for " + tmp_path_);
    }
  }
  if (fault::RenameSuppressed()) {
    injected_fault_ = true;
    return Status::IoError("write failed for " + path_ +
                           " (injected crash before rename)");
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    Discard();
    return Status::IoError("rename failed for " + path_);
  }
  SyncParentDir(path_);
  finished_ = true;
  RNE_COUNTER_ADD("persist.writes", 1);
  RNE_COUNTER_ADD("persist.bytes_written",
                  kEnvelopeHeaderSize + TableBytes() + total_bytes_ +
                      kEnvelopeTrailerSize);
  return Status::Ok();
}

// ----------------------------------------------------------- BinaryReader

BinaryReader::BinaryReader(const std::string& path, uint32_t index_magic)
    : path_(path) {
  std::error_code ec;
  const auto fs_status = std::filesystem::status(path, ec);
  if (ec || !std::filesystem::exists(fs_status)) {
    status_ = Status::NotFound("no such file: " + path);
    return;
  }
  in_.open(path, std::ios::binary);
  if (!in_) {
    status_ = Status::IoError("cannot open " + path);
    return;
  }
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) {
    status_ = Status::IoError("cannot stat " + path);
    return;
  }
  Open(file_size, index_magic);
}

BinaryReader::BinaryReader(const void* data, size_t size, std::string name,
                           uint32_t index_magic)
    : mem_(static_cast<const uint8_t*>(data)),
      mem_size_(size),
      path_(std::move(name)) {
  Open(size, index_magic);
}

bool BinaryReader::SourceRead(void* data, size_t n) {
  if (mem_ != nullptr) {
    if (n > mem_size_ - mem_pos_) return false;
    std::memcpy(data, mem_ + mem_pos_, n);
    mem_pos_ += n;
    return true;
  }
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  return static_cast<bool>(in_);
}

bool BinaryReader::SourceSeek(uint64_t pos) {
  if (mem_ != nullptr) {
    if (pos > mem_size_) return false;
    mem_pos_ = static_cast<size_t>(pos);
    return true;
  }
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(pos));
  return static_cast<bool>(in_);
}

void BinaryReader::Open(uint64_t file_size, uint32_t index_magic) {
  if (file_size < kEnvelopeHeaderSize + kEnvelopeTrailerSize) {
    status_ = Status::Corruption(
        (file_size == 0 ? "empty index file: "
                        : "file too short to hold an envelope: ") +
        path_);
    return;
  }
  char header[kEnvelopeHeaderSize];
  if (!SourceRead(header, kEnvelopeHeaderSize)) {
    status_ = Status::IoError("cannot read header of " + path_);
    return;
  }
  uint32_t env_magic = 0, header_crc = 0;
  std::memcpy(&env_magic, header + 0, 4);
  std::memcpy(&info_.format_version, header + 4, 4);
  std::memcpy(&info_.index_magic, header + 8, 4);
  std::memcpy(&info_.flags, header + 12, 4);
  std::memcpy(&info_.payload_size, header + 16, 8);
  std::memcpy(&header_crc, header + 24, 4);
  if (env_magic != kEnvelopeMagic) {
    status_ = Status::Corruption(
        env_magic == index_magic
            ? "legacy unversioned index file (re-save to upgrade): " + path_
            : "bad magic in " + path_);
    return;
  }
  if (header_crc != Crc32c(header, 24)) {
    status_ = Status::Corruption("header checksum mismatch in " + path_);
    return;
  }
  if (info_.format_version == 0 || info_.format_version > kFormatVersion) {
    status_ = Status::Corruption("unsupported format version " +
                                 std::to_string(info_.format_version) +
                                 " in " + path_);
    return;
  }
  if (index_magic != 0 && info_.index_magic != index_magic) {
    status_ = Status::Corruption(
        "wrong index kind in " + path_ + ": file holds a " +
        IndexKindName(info_.index_magic) + ", expected a " +
        IndexKindName(index_magic));
    return;
  }
  if (info_.format_version == kFormatVersionV1) {
    if (info_.payload_size !=
        file_size - kEnvelopeHeaderSize - kEnvelopeTrailerSize) {
      status_ = Status::Corruption("payload size mismatch (truncated?) in " +
                                   path_);
      return;
    }
  } else {
    if (!ParseSectionTable(file_size)) return;
  }
  remaining_ = info_.payload_size;
}

bool BinaryReader::ParseSectionTable(uint64_t file_size) {
  // Structural validation of the v2 layout happens here, before any payload
  // or section byte is consumed: the section table checksum, monotone
  // aligned extents, and — critically for mmap serving — that the file ends
  // exactly at the last section's end, so no later access can run off a
  // truncated mapping.
  uint64_t avail = file_size - kEnvelopeHeaderSize;
  uint32_t count = 0;
  if (avail < 4 + 4 || !SourceRead(&count, 4)) {
    status_ = Status::Corruption("cannot read section table of " + path_);
    return false;
  }
  avail -= 8;  // count + table CRC
  if (count > avail / kSectionEntrySize) {
    status_ = Status::Corruption("corrupt section count " +
                                 std::to_string(count) + " in " + path_);
    return false;
  }
  RecordAllocation(uint64_t{count} * kSectionEntrySize);
  std::vector<char> entries(size_t{count} * kSectionEntrySize);
  uint32_t stored_table_crc = 0;
  if ((!entries.empty() && !SourceRead(entries.data(), entries.size())) ||
      !SourceRead(&stored_table_crc, 4)) {
    status_ = Status::Corruption("cannot read section table of " + path_);
    return false;
  }
  uint32_t table_crc = Crc32c(&count, 4);
  table_crc = Crc32cExtend(table_crc, entries.data(), entries.size());
  if (table_crc != stored_table_crc) {
    status_ =
        Status::Corruption("section table checksum mismatch in " + path_);
    RNE_COUNTER_ADD("persist.crc_failures", 1);
    return false;
  }
  const uint64_t table_end =
      kEnvelopeHeaderSize + 4 + uint64_t{count} * kSectionEntrySize + 4;
  if (info_.payload_size > file_size - table_end ||
      file_size - table_end - info_.payload_size < kEnvelopeTrailerSize) {
    status_ = Status::Corruption("payload size mismatch (truncated?) in " +
                                 path_);
    return false;
  }
  uint64_t expected = table_end + info_.payload_size + kEnvelopeTrailerSize;
  info_.sections.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const char* e = entries.data() + size_t{i} * kSectionEntrySize;
    SectionInfo s;
    uint32_t reserved = 0;
    std::memcpy(&s.tag, e + 0, 4);
    std::memcpy(&s.flags, e + 4, 4);
    std::memcpy(&s.offset, e + 8, 8);
    std::memcpy(&s.size, e + 16, 8);
    std::memcpy(&s.crc, e + 24, 4);
    std::memcpy(&reserved, e + 28, 4);
    if (reserved != 0 || (s.flags & ~kSectionFlagLazyVerify) != 0) {
      status_ = Status::Corruption("unknown section flags in " + path_);
      return false;
    }
    for (const SectionInfo& prev : info_.sections) {
      if (prev.tag == s.tag) {
        status_ = Status::Corruption("duplicate section tag in " + path_);
        return false;
      }
    }
    if (s.size == 0) {
      // Writers never emit empty sections (AddSection drops them); a
      // zero-size entry only appears in hand-crafted or corrupted tables,
      // and accepting it would hand loaders a degenerate extent whose
      // data pointer aliases the next section.
      status_ = Status::Corruption("zero-size section " +
                                   std::to_string(s.tag) + " in " + path_);
      return false;
    }
    if (s.offset % kSectionAlignment != 0 || s.offset < expected ||
        s.offset - expected >= kMaxSectionAlignment ||
        s.offset > file_size || s.size > file_size - s.offset) {
      status_ = Status::Corruption("section " + std::to_string(s.tag) +
                                   " extent out of bounds in " + path_);
      return false;
    }
    s.pad_start = expected;
    expected = s.offset + s.size;
    info_.sections.push_back(s);
  }
  if (expected != file_size) {
    status_ = Status::Corruption(
        "file does not end at the last section (truncated?): " + path_);
    return false;
  }
  return true;
}

const SectionInfo* BinaryReader::FindSection(uint32_t tag) const {
  for (const SectionInfo& s : info_.sections) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

bool BinaryReader::ReadRaw(void* data, size_t n) {
  if (!status_.ok()) return false;
  if (n > remaining_) {
    status_ = Status::Corruption("unexpected end of payload in " + path_);
    return false;
  }
  if (!SourceRead(data, n)) {
    status_ = Status::IoError("read failed for " + path_);
    return false;
  }
  payload_crc_ = Crc32cExtend(payload_crc_, data, n);
  remaining_ -= n;
  return true;
}

bool BinaryReader::FailLength(const char* what, uint64_t n) {
  status_ = Status::Corruption(
      "corrupt " + std::string(what) + " length " + std::to_string(n) +
      " exceeds remaining payload (" + std::to_string(remaining_) +
      " bytes) in " + path_);
  return false;
}

void BinaryReader::RecordAllocation(uint64_t bytes) {
  fault::OnAllocation(bytes);
}

bool BinaryReader::ReadString(std::string* s) {
  uint64_t n = 0;
  if (!ReadPod(&n)) return false;
  if (n > remaining_) return FailLength("string", n);
  RecordAllocation(n);
  s->resize(n);
  return n == 0 || ReadRaw(s->data(), n);
}

Status BinaryReader::Finish() {
  if (!status_.ok()) return status_;
  // Checksum any payload the loader did not consume, then check the trailer.
  // The drain + trailer comparison is the CRC verification cost of a load
  // (incremental Crc32cExtend during ReadRaw is inseparable from the reads
  // themselves, so the histogram covers the residual-verify step).
  const Timer verify_timer;
  char buf[1 << 16];
  while (remaining_ > 0) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(remaining_, sizeof(buf)));
    if (!ReadRaw(buf, chunk)) return status_;
  }
  uint32_t stored_crc = 0;
  if (!SourceRead(&stored_crc, kEnvelopeTrailerSize)) {
    status_ = Status::IoError("cannot read checksum trailer of " + path_);
    return status_;
  }
  if (stored_crc != payload_crc_) {
    status_ = Status::Corruption("payload checksum mismatch in " + path_);
    RNE_COUNTER_ADD("persist.crc_failures", 1);
  } else {
    RNE_HIST_RECORD("persist.crc_verify_ns", verify_timer.ElapsedNanos());
    RNE_COUNTER_ADD("persist.reads", 1);
    RNE_COUNTER_ADD("persist.bytes_read", kEnvelopeHeaderSize +
                                              info_.payload_size +
                                              kEnvelopeTrailerSize);
  }
  return status_;
}

Status BinaryReader::ReadSectionInto(uint32_t tag, void* dst, uint64_t size) {
  if (!status_.ok()) return status_;
  const SectionInfo* s = FindSection(tag);
  if (s == nullptr) {
    return Status::Corruption("missing section " + std::to_string(tag) +
                              " in " + path_);
  }
  if (s->size != size) {
    return Status::Corruption(
        "section " + std::to_string(tag) + " size mismatch in " + path_ +
        ": table holds " + std::to_string(s->size) + " bytes, loader needs " +
        std::to_string(size));
  }
  RecordAllocation(size);
  if (!SourceSeek(s->pad_start)) {
    return Status::IoError("seek failed for " + path_);
  }
  // The CRC covers the zero padding in front of the data, so a flipped pad
  // bit is as detectable as a flipped data bit.
  uint32_t crc = 0;
  char pad_buf[256];
  uint64_t pad = s->offset - s->pad_start;
  while (pad > 0) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(pad, sizeof(pad_buf)));
    if (!SourceRead(pad_buf, chunk)) {
      return Status::IoError("read failed for " + path_);
    }
    crc = Crc32cExtend(crc, pad_buf, chunk);
    pad -= chunk;
  }
  if (size > 0 && !SourceRead(dst, size)) {
    return Status::IoError("read failed for " + path_);
  }
  crc = Crc32cExtend(crc, dst, size);
  if (crc != s->crc) {
    RNE_COUNTER_ADD("persist.crc_failures", 1);
    return Status::Corruption("section " + std::to_string(tag) +
                              " checksum mismatch in " + path_);
  }
  RNE_COUNTER_ADD("persist.bytes_read", (s->offset - s->pad_start) + size);
  return Status::Ok();
}

Status BinaryReader::VerifyAllSections() {
  if (!status_.ok()) return status_;
  const Timer verify_timer;
  char buf[1 << 16];
  for (const SectionInfo& s : info_.sections) {
    if (!SourceSeek(s.pad_start)) {
      return Status::IoError("seek failed for " + path_);
    }
    uint32_t crc = 0;
    uint64_t left = (s.offset - s.pad_start) + s.size;
    while (left > 0) {
      const size_t chunk =
          static_cast<size_t>(std::min<uint64_t>(left, sizeof(buf)));
      if (!SourceRead(buf, chunk)) {
        return Status::IoError("read failed for " + path_);
      }
      crc = Crc32cExtend(crc, buf, chunk);
      left -= chunk;
    }
    if (crc != s.crc) {
      RNE_COUNTER_ADD("persist.crc_failures", 1);
      return Status::Corruption("section " + std::to_string(s.tag) +
                                " checksum mismatch in " + path_);
    }
  }
  if (!info_.sections.empty()) {
    RNE_HIST_RECORD("persist.crc_verify_ns", verify_timer.ElapsedNanos());
  }
  return Status::Ok();
}

StatusOr<EnvelopeInfo> InspectEnvelope(const std::string& path) {
  BinaryReader r(path, /*index_magic=*/0);  // 0 accepts any index kind
  if (!r.ok()) return r.status();
  RNE_RETURN_IF_ERROR(r.Finish());
  RNE_RETURN_IF_ERROR(r.VerifyAllSections());
  return r.info();
}

}  // namespace rne
