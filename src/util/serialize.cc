#include "util/serialize.h"

namespace rne {

BinaryWriter::BinaryWriter(const std::string& path, uint32_t magic)
    : out_(path, std::ios::binary), path_(path) {
  if (out_) WritePod(magic);
}

void BinaryWriter::WriteString(const std::string& s) {
  WritePod<uint64_t>(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Status BinaryWriter::Finish() {
  out_.flush();
  if (!out_) return Status::IoError("write failed for " + path_);
  return Status::Ok();
}

BinaryReader::BinaryReader(const std::string& path, uint32_t magic)
    : in_(path, std::ios::binary) {
  if (!in_) {
    status_ = Status::IoError("cannot open " + path);
    return;
  }
  uint32_t got = 0;
  if (!ReadPod(&got) || got != magic) {
    status_ = Status::Corruption("bad magic in " + path);
  }
}

bool BinaryReader::ReadString(std::string* s) {
  uint64_t n = 0;
  if (!ReadPod(&n)) return false;
  if (n > (uint64_t{1} << 30)) return false;
  s->resize(n);
  in_.read(s->data(), static_cast<std::streamsize>(n));
  return static_cast<bool>(in_);
}

}  // namespace rne
