#include "util/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "obs/metrics.h"
#include "util/crc32c.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace rne {
namespace {

void EncodeHeader(uint32_t index_magic, uint64_t payload_size,
                  char out[kEnvelopeHeaderSize]) {
  const uint32_t flags = 0;
  std::memcpy(out + 0, &kEnvelopeMagic, 4);
  std::memcpy(out + 4, &kFormatVersion, 4);
  std::memcpy(out + 8, &index_magic, 4);
  std::memcpy(out + 12, &flags, 4);
  std::memcpy(out + 16, &payload_size, 8);
  const uint32_t header_crc = Crc32c(out, 24);
  std::memcpy(out + 24, &header_crc, 4);
}

/// fsyncs `path`; returns false on any failure.
bool SyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable. Failure is ignored: some filesystems reject directory
/// fds and the data file is already synced.
void SyncParentDir(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

const char* IndexKindName(uint32_t magic) {
  switch (magic) {
    case kRneMagic:
      return "RNE model";
    case kQuantMagic:
      return "quantized RNE model";
    case kChMagic:
      return "CH index";
    case kH2hMagic:
      return "H2H index";
    case kAltMagic:
      return "ALT index";
    case kGTreeMagic:
      return "G-tree index";
    case kHierarchyMagic:
      return "partition hierarchy";
    default:
      return "unknown";
  }
}

// ----------------------------------------------------------- BinaryWriter

BinaryWriter::BinaryWriter(const std::string& path, uint32_t index_magic)
    : path_(path), tmp_path_(path + ".tmp"), index_magic_(index_magic) {
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!out_) return;
  // Reserve the header; Finish() patches it once the payload size is known.
  const char zeros[kEnvelopeHeaderSize] = {};
  out_.write(zeros, kEnvelopeHeaderSize);
  ok_ = static_cast<bool>(out_);
}

BinaryWriter::~BinaryWriter() {
  if (!finished_) Discard();
}

void BinaryWriter::WriteRaw(const void* data, size_t n) {
  if (!ok_ || n == 0) return;
  if (fault::WriteShouldFail(payload_bytes_ + n)) {
    ok_ = false;
    injected_fault_ = true;
    return;
  }
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(n));
  if (!out_) {
    ok_ = false;
    return;
  }
  payload_crc_ = Crc32cExtend(payload_crc_, data, n);
  payload_bytes_ += n;
}

void BinaryWriter::WriteString(const std::string& s) {
  WritePod<uint64_t>(s.size());
  if (!s.empty()) WriteRaw(s.data(), s.size());
}

void BinaryWriter::Discard() {
  if (out_.is_open()) out_.close();
  // An injected fault simulates a kill: the partial temp file stays behind,
  // and correctness relies on the rename never having happened.
  if (!injected_fault_) std::remove(tmp_path_.c_str());
}

Status BinaryWriter::Finish() {
  if (finished_) return Status::Ok();
  if (!ok_) {
    Discard();
    return Status::IoError("write failed for " + path_ +
                           (injected_fault_ ? " (injected fault)" : ""));
  }
  // Seal the envelope: payload CRC trailer, then the real header.
  out_.write(reinterpret_cast<const char*>(&payload_crc_),
             kEnvelopeTrailerSize);
  char header[kEnvelopeHeaderSize];
  EncodeHeader(index_magic_, payload_bytes_, header);
  out_.seekp(0);
  out_.write(header, kEnvelopeHeaderSize);
  out_.flush();
  if (!out_) {
    Discard();
    return Status::IoError("write failed for " + path_);
  }
  out_.close();
  {
    const Timer fsync_timer;
    const bool synced = SyncFile(tmp_path_);
    RNE_HIST_RECORD("persist.fsync_ns", fsync_timer.ElapsedNanos());
    if (!synced) {
      Discard();
      return Status::IoError("fsync failed for " + tmp_path_);
    }
  }
  if (fault::RenameSuppressed()) {
    injected_fault_ = true;
    return Status::IoError("write failed for " + path_ +
                           " (injected crash before rename)");
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    Discard();
    return Status::IoError("rename failed for " + path_);
  }
  SyncParentDir(path_);
  finished_ = true;
  RNE_COUNTER_ADD("persist.writes", 1);
  RNE_COUNTER_ADD("persist.bytes_written", kEnvelopeHeaderSize +
                                               payload_bytes_ +
                                               kEnvelopeTrailerSize);
  return Status::Ok();
}

// ----------------------------------------------------------- BinaryReader

BinaryReader::BinaryReader(const std::string& path, uint32_t index_magic)
    : path_(path) {
  std::error_code ec;
  const auto fs_status = std::filesystem::status(path, ec);
  if (ec || !std::filesystem::exists(fs_status)) {
    status_ = Status::NotFound("no such file: " + path);
    return;
  }
  in_.open(path, std::ios::binary);
  if (!in_) {
    status_ = Status::IoError("cannot open " + path);
    return;
  }
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) {
    status_ = Status::IoError("cannot stat " + path);
    return;
  }
  if (file_size < kEnvelopeHeaderSize + kEnvelopeTrailerSize) {
    status_ = Status::Corruption(
        (file_size == 0 ? "empty index file: " : "file too short to hold an envelope: ") +
        path);
    return;
  }
  char header[kEnvelopeHeaderSize];
  in_.read(header, kEnvelopeHeaderSize);
  if (!in_) {
    status_ = Status::IoError("cannot read header of " + path);
    return;
  }
  uint32_t env_magic = 0, header_crc = 0;
  std::memcpy(&env_magic, header + 0, 4);
  std::memcpy(&info_.format_version, header + 4, 4);
  std::memcpy(&info_.index_magic, header + 8, 4);
  std::memcpy(&info_.flags, header + 12, 4);
  std::memcpy(&info_.payload_size, header + 16, 8);
  std::memcpy(&header_crc, header + 24, 4);
  if (env_magic != kEnvelopeMagic) {
    status_ = Status::Corruption(
        env_magic == index_magic
            ? "legacy unversioned index file (re-save to upgrade): " + path
            : "bad magic in " + path);
    return;
  }
  if (header_crc != Crc32c(header, 24)) {
    status_ = Status::Corruption("header checksum mismatch in " + path);
    return;
  }
  if (info_.format_version == 0 || info_.format_version > kFormatVersion) {
    status_ = Status::Corruption(
        "unsupported format version " +
        std::to_string(info_.format_version) + " in " + path);
    return;
  }
  if (index_magic != 0 && info_.index_magic != index_magic) {
    status_ = Status::Corruption(
        "wrong index kind in " + path + ": file holds a " +
        IndexKindName(info_.index_magic) + ", expected a " +
        IndexKindName(index_magic));
    return;
  }
  if (info_.payload_size !=
      file_size - kEnvelopeHeaderSize - kEnvelopeTrailerSize) {
    status_ = Status::Corruption("payload size mismatch (truncated?) in " +
                                 path);
    return;
  }
  remaining_ = info_.payload_size;
}

bool BinaryReader::ReadRaw(void* data, size_t n) {
  if (!status_.ok()) return false;
  if (n > remaining_) {
    status_ = Status::Corruption("unexpected end of payload in " + path_);
    return false;
  }
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (!in_) {
    status_ = Status::IoError("read failed for " + path_);
    return false;
  }
  payload_crc_ = Crc32cExtend(payload_crc_, data, n);
  remaining_ -= n;
  return true;
}

bool BinaryReader::FailLength(const char* what, uint64_t n) {
  status_ = Status::Corruption(
      "corrupt " + std::string(what) + " length " + std::to_string(n) +
      " exceeds remaining payload (" + std::to_string(remaining_) +
      " bytes) in " + path_);
  return false;
}

void BinaryReader::RecordAllocation(uint64_t bytes) {
  fault::OnAllocation(bytes);
}

bool BinaryReader::ReadString(std::string* s) {
  uint64_t n = 0;
  if (!ReadPod(&n)) return false;
  if (n > remaining_) return FailLength("string", n);
  RecordAllocation(n);
  s->resize(n);
  return n == 0 || ReadRaw(s->data(), n);
}

Status BinaryReader::Finish() {
  if (!status_.ok()) return status_;
  // Checksum any payload the loader did not consume, then check the trailer.
  // The drain + trailer comparison is the CRC verification cost of a load
  // (incremental Crc32cExtend during ReadRaw is inseparable from the reads
  // themselves, so the histogram covers the residual-verify step).
  const Timer verify_timer;
  char buf[1 << 16];
  while (remaining_ > 0) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(remaining_, sizeof(buf)));
    if (!ReadRaw(buf, chunk)) return status_;
  }
  uint32_t stored_crc = 0;
  in_.read(reinterpret_cast<char*>(&stored_crc), kEnvelopeTrailerSize);
  if (!in_) {
    status_ = Status::IoError("cannot read checksum trailer of " + path_);
    return status_;
  }
  if (stored_crc != payload_crc_) {
    status_ = Status::Corruption("payload checksum mismatch in " + path_);
    RNE_COUNTER_ADD("persist.crc_failures", 1);
  } else {
    RNE_HIST_RECORD("persist.crc_verify_ns", verify_timer.ElapsedNanos());
    RNE_COUNTER_ADD("persist.reads", 1);
    RNE_COUNTER_ADD("persist.bytes_read", kEnvelopeHeaderSize +
                                              info_.payload_size +
                                              kEnvelopeTrailerSize);
  }
  return status_;
}

StatusOr<EnvelopeInfo> InspectEnvelope(const std::string& path) {
  BinaryReader r(path, /*index_magic=*/0);  // 0 accepts any index kind
  if (!r.ok()) return r.status();
  RNE_RETURN_IF_ERROR(r.Finish());
  return r.info();
}

}  // namespace rne
