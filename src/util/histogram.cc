#include "util/histogram.h"

#include <algorithm>
#include <cstdio>

#include "util/macros.h"

namespace rne {

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(num_buckets)),
      counts_(num_buckets, 0),
      value_sums_(num_buckets, 0.0),
      aux_sums_(num_buckets, 0.0) {
  RNE_CHECK(num_buckets > 0);
  RNE_CHECK(hi > lo);
}

size_t Histogram::BucketFor(double key) const {
  if (key < lo_) return 0;
  const size_t b = static_cast<size_t>((key - lo_) / width_);
  return std::min(b, counts_.size() - 1);
}

void Histogram::Add(double key, double value, double aux) {
  const size_t b = BucketFor(key);
  counts_[b] += 1;
  value_sums_[b] += value;
  aux_sums_[b] += aux;
}

double Histogram::MeanValue(size_t bucket) const {
  RNE_CHECK(bucket < counts_.size());
  if (counts_[bucket] == 0) return 0.0;
  return value_sums_[bucket] / static_cast<double>(counts_[bucket]);
}

double Histogram::MeanAux(size_t bucket) const {
  RNE_CHECK(bucket < counts_.size());
  if (counts_[bucket] == 0) return 0.0;
  return aux_sums_[bucket] / static_cast<double>(counts_[bucket]);
}

double Histogram::BucketLower(size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::BucketUpper(size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket + 1);
}

size_t Histogram::ArgMaxMeanValue() const {
  size_t best = counts_.size();
  double best_mean = -1.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double m = MeanValue(b);
    if (m > best_mean) {
      best_mean = m;
      best = b;
    }
  }
  return best;
}

std::string Histogram::ToString() const {
  std::string out;
  char line[128];
  for (size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(line, sizeof(line), "[%10.1f, %10.1f): n=%8zu mean=%.5f\n",
                  BucketLower(b), BucketUpper(b), counts_[b], MeanValue(b));
    out += line;
  }
  return out;
}

}  // namespace rne
