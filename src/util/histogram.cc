#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "util/macros.h"

namespace rne {

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(num_buckets)),
      counts_(num_buckets, 0),
      value_sums_(num_buckets, 0.0),
      aux_sums_(num_buckets, 0.0) {
  RNE_CHECK(num_buckets > 0);
  RNE_CHECK(hi > lo);
}

size_t Histogram::BucketFor(double key) const {
  if (key < lo_) return 0;
  const size_t b = static_cast<size_t>((key - lo_) / width_);
  return std::min(b, counts_.size() - 1);
}

void Histogram::Add(double key, double value, double aux) {
  const size_t b = BucketFor(key);
  counts_[b] += 1;
  value_sums_[b] += value;
  aux_sums_[b] += aux;
}

double Histogram::MeanValue(size_t bucket) const {
  RNE_CHECK(bucket < counts_.size());
  if (counts_[bucket] == 0) return 0.0;
  return value_sums_[bucket] / static_cast<double>(counts_[bucket]);
}

double Histogram::MeanAux(size_t bucket) const {
  RNE_CHECK(bucket < counts_.size());
  if (counts_[bucket] == 0) return 0.0;
  return aux_sums_[bucket] / static_cast<double>(counts_[bucket]);
}

double Histogram::BucketLower(size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::BucketUpper(size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket + 1);
}

size_t Histogram::ArgMaxMeanValue() const {
  size_t best = counts_.size();
  double best_mean = -1.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double m = MeanValue(b);
    if (m > best_mean) {
      best_mean = m;
      best = b;
    }
  }
  return best;
}

std::string Histogram::ToString() const {
  std::string out;
  char line[128];
  for (size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(line, sizeof(line), "[%10.1f, %10.1f): n=%8zu mean=%.5f\n",
                  BucketLower(b), BucketUpper(b), counts_[b], MeanValue(b));
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// LatencyHistogram

LatencyHistogram::LatencyHistogram() : counts_(kNumBuckets, 0) {}

size_t LatencyHistogram::BucketFor(int64_t nanos) {
  const uint64_t v = nanos > 0 ? static_cast<uint64_t>(nanos) : 0;
  constexpr uint64_t kSubMask = (uint64_t{1} << kSubBits) - 1;
  if (v < (uint64_t{2} << kSubBits)) return static_cast<size_t>(v);
  const unsigned msb = static_cast<unsigned>(std::bit_width(v)) - 1;
  const uint64_t sub = (v >> (msb - kSubBits)) & kSubMask;
  return ((static_cast<size_t>(msb) - kSubBits + 1) << kSubBits) +
         static_cast<size_t>(sub);
}

int64_t LatencyHistogram::BucketLowerBound(size_t bucket) {
  if (bucket < (size_t{2} << kSubBits)) return static_cast<int64_t>(bucket);
  const size_t octave = bucket >> kSubBits;
  const unsigned msb = static_cast<unsigned>(octave + kSubBits - 1);
  const uint64_t sub = bucket & ((size_t{1} << kSubBits) - 1);
  return static_cast<int64_t>((uint64_t{1} << msb) +
                              (sub << (msb - kSubBits)));
}

void LatencyHistogram::Record(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  const size_t b = BucketFor(nanos);
  counts_[b] += 1;
  total_ += 1;
  sum_nanos_ += static_cast<double>(nanos);
  max_nanos_ = std::max(max_nanos_, nanos);
  lo_bucket_ = std::min(lo_bucket_, b);
  hi_bucket_ = std::max(hi_bucket_, b);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.total_ == 0) return;
  for (size_t b = other.lo_bucket_; b <= other.hi_bucket_; ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
  sum_nanos_ += other.sum_nanos_;
  max_nanos_ = std::max(max_nanos_, other.max_nanos_);
  lo_bucket_ = std::min(lo_bucket_, other.lo_bucket_);
  hi_bucket_ = std::max(hi_bucket_, other.hi_bucket_);
}

void LatencyHistogram::Reset() {
  if (total_ != 0) {
    std::fill(counts_.begin() + static_cast<ptrdiff_t>(lo_bucket_),
              counts_.begin() + static_cast<ptrdiff_t>(hi_bucket_) + 1, 0);
  }
  total_ = 0;
  sum_nanos_ = 0.0;
  max_nanos_ = 0;
  lo_bucket_ = kNumBuckets;
  hi_bucket_ = 0;
}

double LatencyHistogram::MeanNanos() const {
  return total_ == 0 ? 0.0 : sum_nanos_ / static_cast<double>(total_);
}

double LatencyHistogram::PercentileNanos(double p) const {
  if (total_ == 0) return 0.0;
  if (p >= 100.0) return static_cast<double>(max_nanos_);
  const double clamped = std::max(p, 0.0);
  const auto target = static_cast<uint64_t>(std::max(
      1.0, std::ceil(clamped / 100.0 * static_cast<double>(total_))));
  uint64_t seen = 0;
  for (size_t b = lo_bucket_; b <= hi_bucket_; ++b) {
    seen += counts_[b];
    if (seen >= target) {
      const double lower = static_cast<double>(BucketLowerBound(b));
      const double upper = b + 1 < kNumBuckets
                               ? static_cast<double>(BucketLowerBound(b + 1))
                               : lower;
      return std::min((lower + upper) / 2.0,
                      static_cast<double>(max_nanos_));
    }
  }
  return static_cast<double>(max_nanos_);
}

}  // namespace rne
