// Binary (de)serialization with a crash-safe, corruption-resistant envelope.
//
// Every persisted index file is wrapped in a versioned envelope:
//
//   offset  0  uint32  envelope magic "RNEV" (shared by all index kinds)
//   offset  4  uint32  format version (1 or 2; decoding is gated)
//   offset  8  uint32  index-kind magic (which Load may parse the payload)
//   offset 12  uint32  flags (reserved, 0)
//   offset 16  uint64  payload size in bytes (v2: metadata payload only)
//   offset 24  uint32  CRC32C of header bytes [0, 24)
//
// v1 (legacy, still readable):
//   offset 28  payload: little-endian PODs, length-prefixed vectors/strings
//   tail       uint32  CRC32C of the payload
//
// v2 (sectioned, mmap-friendly):
//   offset 28  uint32  section count
//   offset 32  count × 32-byte section entries:
//                {u32 tag, u32 flags, u64 offset, u64 size, u32 crc, u32 0}
//   ...        uint32  CRC32C of the section table (count + entries)
//   ...        metadata payload (`payload size` bytes, same wire format)
//   ...        uint32  CRC32C of the metadata payload
//   ...        per section, in table order: zero padding up to the entry's
//              aligned `offset`, then `size` raw data bytes
//
// Each v2 section entry's CRC covers the padding bytes *and* the data, and
// the reader requires the file to end exactly at the last section's end, so
// every byte of a v2 file is covered by some checksum and any truncation is
// structurally detectable before a single section byte is touched — this is
// what makes the layout safe to serve via mmap (no SIGBUS on a short file,
// no silently corrupt gap bytes). Section data starts on an aligned offset
// (kSectionAlignment or a caller-chosen larger power of two) so matrices
// can be addressed in place with naturally aligned rows.
//
// Saves are atomic: BinaryWriter streams into `<path>.tmp`, patches the
// header, fsyncs, then rename(2)s over `path` — a reader never observes a
// partial file. BinaryReader validates the header against the actual file
// size before parsing a single payload byte, bounds every vector length by
// the bytes remaining in the payload (a flipped length bit fails fast
// instead of triggering a multi-gigabyte allocation), and Finish() verifies
// the payload CRC. Any mismatch yields Status::Corruption; a missing file is
// Status::NotFound.
#ifndef RNE_UTIL_SERIALIZE_H_
#define RNE_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace rne {

/// First four bytes of every envelope file ("RNEV" little-endian).
inline constexpr uint32_t kEnvelopeMagic = 0x56454e52;
/// Envelope format versions. v1 is the flat streamed payload; v2 adds the
/// aligned section table for zero-copy mmap serving. Readers accept both;
/// writers emit v2 exactly when at least one section was declared.
inline constexpr uint32_t kFormatVersionV1 = 1;
inline constexpr uint32_t kFormatVersionV2 = 2;
/// Highest envelope format version this build can decode.
inline constexpr uint32_t kFormatVersion = kFormatVersionV2;
inline constexpr size_t kEnvelopeHeaderSize = 28;
inline constexpr size_t kEnvelopeTrailerSize = 4;
/// Minimum (and default) alignment of v2 section data offsets.
inline constexpr uint64_t kSectionAlignment = 64;
/// Largest alignment a section may request; bounds the pad run a reader
/// will accept between consecutive sections.
inline constexpr uint64_t kMaxSectionAlignment = 1ull << 20;
/// On-disk size of one v2 section-table entry.
inline constexpr size_t kSectionEntrySize = 32;

// Registered index-kind magics (the third header field). Keep unique.
inline constexpr uint32_t kRneMagic = 0x524e4531;        // "RNE1" RNE model
inline constexpr uint32_t kQuantMagic = 0x524e5138;      // "RNQ8" quantized RNE
inline constexpr uint32_t kChMagic = 0x524e4348;         // "RNCH" CH index
inline constexpr uint32_t kH2hMagic = 0x524e4832;        // "RNH2" H2H index
inline constexpr uint32_t kAltMagic = 0x524e414c;        // "RNAL" ALT index
inline constexpr uint32_t kGTreeMagic = 0x524e4754;      // "RNGT" G-tree index
inline constexpr uint32_t kHierarchyMagic = 0x524e4548;  // "RNEH" partition

// Registered v2 section tags. Unique across index kinds so a section can be
// identified without knowing which loader wrote it.
inline constexpr uint32_t kSecRneVertexEmb = 0x01;
inline constexpr uint32_t kSecRneNodeEmb = 0x02;
inline constexpr uint32_t kSecQuantCodes = 0x03;
inline constexpr uint32_t kSecGTreeMatrixPool = 0x04;

// Section flags.
/// The section may be verified lazily (on first access) by cold-map loads
/// instead of at open. Eager loads and mmap (non-cold) loads verify it at
/// open regardless.
inline constexpr uint32_t kSectionFlagLazyVerify = 0x1;

/// Human-readable name for a registered index-kind magic ("unknown" else).
const char* IndexKindName(uint32_t magic);

/// How a loader materializes an index file.
enum class LoadMode {
  /// Deserialize everything into owned heap storage (default; only mode
  /// that can read v1 files' large arrays).
  kHeap,
  /// mmap the file read-only; large sections are served zero-copy from the
  /// mapping. All section checksums are verified at open.
  kMmap,
  /// mmap the file read-only; sections flagged lazy-verify have their
  /// checksum deferred to first access (open is O(metadata)).
  kMmapCold,
  /// Serve large sections through a bounded pread-backed BlockCache instead
  /// of mapping them; resident set is capped at the cache size. Only
  /// supported by index kinds that opt in (currently QuantizedRne).
  kBlockCache,
};

const char* LoadModeName(LoadMode mode);

/// Which envelope layout Save() emits. kSectioned (v2) is the default for
/// index kinds with large flat arrays; kLegacyV1 exists so compatibility
/// tests (and downgrades) can still produce v1 files.
enum class SaveFormat { kSectioned, kLegacyV1 };

/// Options threaded through index Load() entry points.
struct LoadOptions {
  LoadMode mode = LoadMode::kHeap;
  /// Block size and capacity for LoadMode::kBlockCache.
  uint64_t block_bytes = 64 * 1024;
  uint64_t block_count = 64;
};

/// One v2 section as parsed from the table. `pad_start` is derived at open
/// time (the file offset where this section's zero padding — and its CRC'd
/// region — begins).
struct SectionInfo {
  uint32_t tag = 0;
  uint32_t flags = 0;
  uint64_t offset = 0;  // file offset of the data (aligned)
  uint64_t size = 0;    // data bytes (padding excluded)
  uint32_t crc = 0;     // CRC32C over [pad_start, offset + size)
  uint64_t pad_start = 0;
};

/// Envelope metadata, as reported by InspectEnvelope.
struct EnvelopeInfo {
  uint32_t format_version = 0;
  uint32_t index_magic = 0;
  uint32_t flags = 0;
  uint64_t payload_size = 0;
  /// v2 only; empty for v1 files.
  std::vector<SectionInfo> sections;
};

/// Validates the envelope of `path` — header fields, file size, header,
/// payload and (v2) every section checksum — without deserializing the
/// payload. Accepts any index-kind magic; returns its metadata on success.
StatusOr<EnvelopeInfo> InspectEnvelope(const std::string& path);

/// Streaming binary writer implementing the atomic-save protocol: bytes go
/// to `<path>.tmp`; Finish() seals the envelope, fsyncs and renames. If the
/// writer is destroyed without a successful Finish(), the temp file is
/// removed and `path` is untouched.
///
/// Declaring one or more sections (AddSection) switches the file to the v2
/// sectioned layout; with no sections the output is byte-identical to v1.
class BinaryWriter {
 public:
  /// Opens `<path>.tmp` for writing and reserves the envelope header.
  BinaryWriter(const std::string& path, uint32_t index_magic);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  bool ok() const { return ok_; }

  /// Declares a v2 section. Must be called before the first payload write
  /// (the section table sits between the header and the payload, so its
  /// size must be final by then). `data` is not copied and must stay alive
  /// until Finish(), which streams it after the metadata payload.
  /// A `size` of 0 is a no-op: empty sections are never written (the reader
  /// rejects zero-size table entries), so loaders must treat a missing tag
  /// as an empty extent when their metadata says so.
  void AddSection(uint32_t tag, const void* data, uint64_t size,
                  uint32_t flags = 0, uint64_t alignment = kSectionAlignment);

  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteRaw(&value, sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WritePod<uint64_t>(v.size());
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(T));
  }

  void WriteString(const std::string& s);

  /// Length-prefixed write of a raw buffer; wire-compatible with
  /// WriteVector<T> of the same bytes.
  void WriteLengthPrefixed(const void* data, uint64_t count,
                           size_t elem_size);

  /// Seals the envelope (patches header, appends payload CRC, streams any
  /// declared sections), fsyncs and atomically renames the temp file into
  /// place. On any failure the target path is left untouched and the temp
  /// file is cleaned up.
  Status Finish();

 private:
  struct PendingSection {
    uint32_t tag;
    uint32_t flags;
    const void* data;
    uint64_t size;
    uint64_t alignment;
    uint64_t offset = 0;  // filled during Finish
    uint32_t crc = 0;     // filled during Finish
  };

  void WriteRaw(const void* data, size_t n);
  /// Raw write that participates in fault injection but not the payload CRC
  /// (section streaming, padding).
  bool WriteFileBytes(const void* data, size_t n);
  void ReserveTable();
  size_t TableBytes() const;
  void Discard();  // closes and removes the temp file

  std::ofstream out_;
  std::string path_;
  std::string tmp_path_;
  uint32_t index_magic_;
  uint64_t payload_bytes_ = 0;
  uint64_t total_bytes_ = 0;  // all payload+section bytes, for fault sched
  uint32_t payload_crc_ = 0;
  std::vector<PendingSection> sections_;
  bool table_reserved_ = false;
  bool ok_ = false;
  bool finished_ = false;
  bool injected_fault_ = false;  // leave the partial temp file, like a kill
};

/// Streaming binary reader; validates the envelope header (and, for v2, the
/// section table structure) on open and the payload checksum in Finish().
/// Section *data* checksums are verified by ReadSectionInto /
/// VerifyAllSections, not by Finish().
class BinaryReader {
 public:
  BinaryReader(const std::string& path, uint32_t index_magic);

  /// Memory-mode reader over an already-loaded envelope image (e.g. an
  /// mmap'd file). Performs the same validation as the file constructor;
  /// `name` is used in error messages. The buffer must outlive the reader.
  BinaryReader(const void* data, size_t size, std::string name,
               uint32_t index_magic);

  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  /// Payload bytes not yet consumed.
  uint64_t remaining() const { return remaining_; }

  /// Envelope format version of the open file (0 if open failed). Loaders
  /// gate any future payload-layout changes on this.
  uint32_t format_version() const { return info_.format_version; }

  /// Envelope metadata parsed from the header (zeroed if open failed).
  const EnvelopeInfo& info() const { return info_; }

  /// v2 section entries in table order (empty for v1 files).
  const std::vector<SectionInfo>& sections() const { return info_.sections; }

  /// Table entry for `tag`, or nullptr if absent (or a v1 file).
  const SectionInfo* FindSection(uint32_t tag) const;

  template <typename T>
  [[nodiscard]] bool ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadRaw(value, sizeof(T));
  }

  template <typename T>
  [[nodiscard]] bool ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    if (!ReadPod(&n)) return false;
    // A valid length can never exceed the bytes left in the payload, so a
    // corrupt length field fails here instead of in a giant resize().
    if (n > remaining_ / sizeof(T)) {
      return FailLength("vector", n);
    }
    RecordAllocation(n * sizeof(T));
    v->resize(n);
    return n == 0 || ReadRaw(v->data(), n * sizeof(T));
  }

  [[nodiscard]] bool ReadString(std::string* s);

  /// Drains any unread payload and verifies the payload CRC trailer. Call
  /// after the last Read; Status::Corruption on checksum mismatch. For v2
  /// files this verifies the metadata payload only.
  Status Finish();

  /// Reads section `tag`'s data into `dst` (which must hold exactly
  /// `size == entry.size` bytes) and verifies the section checksum,
  /// including the zero padding preceding the data. Call after Finish().
  Status ReadSectionInto(uint32_t tag, void* dst, uint64_t size);

  /// Verifies every section's checksum without retaining the data. Call
  /// after Finish(). No-op for v1 files.
  Status VerifyAllSections();

  /// The reader's error status if a Read failed, else Corruption(context).
  /// For loaders: `if (!r.ReadPod(&x)) return r.ReadError("bad foo file");`
  Status ReadError(std::string context) const {
    return status_.ok() ? Status::Corruption(std::move(context)) : status_;
  }

 private:
  void Open(uint64_t file_size, uint32_t index_magic);
  bool ParseSectionTable(uint64_t file_size);
  bool ReadRaw(void* data, size_t n);
  /// Reads from the underlying source without touching the payload CRC or
  /// `remaining_` bookkeeping (header/table/trailer/section bytes).
  bool SourceRead(void* data, size_t n);
  bool SourceSeek(uint64_t pos);
  bool FailLength(const char* what, uint64_t n);
  static void RecordAllocation(uint64_t bytes);

  std::ifstream in_;
  const uint8_t* mem_ = nullptr;  // memory mode when non-null
  size_t mem_size_ = 0;
  size_t mem_pos_ = 0;
  std::string path_;
  EnvelopeInfo info_;
  uint64_t remaining_ = 0;
  uint32_t payload_crc_ = 0;
  Status status_;
};

}  // namespace rne

#endif  // RNE_UTIL_SERIALIZE_H_
