// Binary (de)serialization with a crash-safe, corruption-resistant envelope.
//
// Every persisted index file is wrapped in a versioned envelope:
//
//   offset  0  uint32  envelope magic "RNEV" (shared by all index kinds)
//   offset  4  uint32  format version (kFormatVersion; decoding is gated)
//   offset  8  uint32  index-kind magic (which Load may parse the payload)
//   offset 12  uint32  flags (reserved, 0)
//   offset 16  uint64  payload size in bytes
//   offset 24  uint32  CRC32C of header bytes [0, 24)
//   offset 28  payload: little-endian PODs, length-prefixed vectors/strings
//   tail       uint32  CRC32C of the payload
//
// Saves are atomic: BinaryWriter streams into `<path>.tmp`, patches the
// header, fsyncs, then rename(2)s over `path` — a reader never observes a
// partial file. BinaryReader validates the header against the actual file
// size before parsing a single payload byte, bounds every vector length by
// the bytes remaining in the payload (a flipped length bit fails fast
// instead of triggering a multi-gigabyte allocation), and Finish() verifies
// the payload CRC. Any mismatch yields Status::Corruption; a missing file is
// Status::NotFound.
#ifndef RNE_UTIL_SERIALIZE_H_
#define RNE_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace rne {

/// First four bytes of every envelope file ("RNEV" little-endian).
inline constexpr uint32_t kEnvelopeMagic = 0x56454e52;
/// Current envelope format version. Bump when the envelope layout changes;
/// payload-level changes are versioned per index kind via its magic.
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kEnvelopeHeaderSize = 28;
inline constexpr size_t kEnvelopeTrailerSize = 4;

// Registered index-kind magics (the third header field). Keep unique.
inline constexpr uint32_t kRneMagic = 0x524e4531;        // "RNE1" RNE model
inline constexpr uint32_t kQuantMagic = 0x524e5138;      // "RNQ8" quantized RNE
inline constexpr uint32_t kChMagic = 0x524e4348;         // "RNCH" CH index
inline constexpr uint32_t kH2hMagic = 0x524e4832;        // "RNH2" H2H index
inline constexpr uint32_t kAltMagic = 0x524e414c;        // "RNAL" ALT index
inline constexpr uint32_t kGTreeMagic = 0x524e4754;      // "RNGT" G-tree index
inline constexpr uint32_t kHierarchyMagic = 0x524e4548;  // "RNEH" partition

/// Human-readable name for a registered index-kind magic ("unknown" else).
const char* IndexKindName(uint32_t magic);

/// Envelope metadata, as reported by InspectEnvelope.
struct EnvelopeInfo {
  uint32_t format_version = 0;
  uint32_t index_magic = 0;
  uint32_t flags = 0;
  uint64_t payload_size = 0;
};

/// Validates the envelope of `path` — header fields, file size, header and
/// payload checksums — without deserializing the payload. Accepts any
/// index-kind magic; returns its metadata on success.
StatusOr<EnvelopeInfo> InspectEnvelope(const std::string& path);

/// Streaming binary writer implementing the atomic-save protocol: bytes go
/// to `<path>.tmp`; Finish() seals the envelope, fsyncs and renames. If the
/// writer is destroyed without a successful Finish(), the temp file is
/// removed and `path` is untouched.
class BinaryWriter {
 public:
  /// Opens `<path>.tmp` for writing and reserves the envelope header.
  BinaryWriter(const std::string& path, uint32_t index_magic);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  bool ok() const { return ok_; }

  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteRaw(&value, sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WritePod<uint64_t>(v.size());
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(T));
  }

  void WriteString(const std::string& s);

  /// Seals the envelope (patches header, appends payload CRC), fsyncs and
  /// atomically renames the temp file into place. On any failure the target
  /// path is left untouched and the temp file is cleaned up.
  Status Finish();

 private:
  void WriteRaw(const void* data, size_t n);
  void Discard();  // closes and removes the temp file

  std::ofstream out_;
  std::string path_;
  std::string tmp_path_;
  uint32_t index_magic_;
  uint64_t payload_bytes_ = 0;
  uint32_t payload_crc_ = 0;
  bool ok_ = false;
  bool finished_ = false;
  bool injected_fault_ = false;  // leave the partial temp file, like a kill
};

/// Streaming binary reader; validates the envelope header on open and the
/// payload checksum in Finish().
class BinaryReader {
 public:
  BinaryReader(const std::string& path, uint32_t index_magic);

  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  /// Payload bytes not yet consumed.
  uint64_t remaining() const { return remaining_; }

  /// Envelope format version of the open file (0 if open failed). Loaders
  /// gate any future payload-layout changes on this.
  uint32_t format_version() const { return info_.format_version; }

  /// Envelope metadata parsed from the header (zeroed if open failed).
  const EnvelopeInfo& info() const { return info_; }

  template <typename T>
  [[nodiscard]] bool ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadRaw(value, sizeof(T));
  }

  template <typename T>
  [[nodiscard]] bool ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    if (!ReadPod(&n)) return false;
    // A valid length can never exceed the bytes left in the payload, so a
    // corrupt length field fails here instead of in a giant resize().
    if (n > remaining_ / sizeof(T)) {
      return FailLength("vector", n);
    }
    RecordAllocation(n * sizeof(T));
    v->resize(n);
    return n == 0 || ReadRaw(v->data(), n * sizeof(T));
  }

  [[nodiscard]] bool ReadString(std::string* s);

  /// Drains any unread payload and verifies the payload CRC trailer. Call
  /// after the last Read; Status::Corruption on checksum mismatch.
  Status Finish();

  /// The reader's error status if a Read failed, else Corruption(context).
  /// For loaders: `if (!r.ReadPod(&x)) return r.ReadError("bad foo file");`
  Status ReadError(std::string context) const {
    return status_.ok() ? Status::Corruption(std::move(context)) : status_;
  }

 private:
  bool ReadRaw(void* data, size_t n);
  bool FailLength(const char* what, uint64_t n);
  static void RecordAllocation(uint64_t bytes);

  std::ifstream in_;
  std::string path_;
  EnvelopeInfo info_;
  uint64_t remaining_ = 0;
  uint32_t payload_crc_ = 0;
  Status status_;
};

}  // namespace rne

#endif  // RNE_UTIL_SERIALIZE_H_
