// Binary (de)serialization helpers for model and index persistence.
//
// Format: little-endian PODs, length-prefixed vectors/strings. Every file
// starts with a caller-provided magic tag so corrupt/mismatched files are
// rejected with Status::Corruption instead of being misread.
#ifndef RNE_UTIL_SERIALIZE_H_
#define RNE_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace rne {

/// Streaming binary writer over an ofstream.
class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the magic tag.
  BinaryWriter(const std::string& path, uint32_t magic);

  bool ok() const { return static_cast<bool>(out_); }

  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WritePod<uint64_t>(v.size());
    if (!v.empty()) {
      out_.write(reinterpret_cast<const char*>(v.data()),
                 static_cast<std::streamsize>(v.size() * sizeof(T)));
    }
  }

  void WriteString(const std::string& s);

  /// Flushes and reports any accumulated stream error.
  Status Finish();

 private:
  std::ofstream out_;
  std::string path_;
};

/// Streaming binary reader; verifies the magic tag on open.
class BinaryReader {
 public:
  BinaryReader(const std::string& path, uint32_t magic);

  const Status& status() const { return status_; }
  bool ok() const { return status_.ok() && static_cast<bool>(in_); }

  template <typename T>
  bool ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(value), sizeof(T));
    return static_cast<bool>(in_);
  }

  template <typename T>
  bool ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    if (!ReadPod(&n)) return false;
    // Sanity bound: refuse absurd sizes from corrupt files (16 GiB of data).
    if (n > (uint64_t{1} << 34) / sizeof(T)) return false;
    v->resize(n);
    if (n > 0) {
      in_.read(reinterpret_cast<char*>(v->data()),
               static_cast<std::streamsize>(n * sizeof(T)));
    }
    return static_cast<bool>(in_);
  }

  bool ReadString(std::string* s);

 private:
  std::ifstream in_;
  Status status_;
};

}  // namespace rne

#endif  // RNE_UTIL_SERIALIZE_H_
