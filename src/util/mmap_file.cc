#include "util/mmap_file.h"

// rne-lint: allow(raw-mmap) — this file is the audited home of the mmap
// syscalls; everything else goes through MmapFile.
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "util/crc32c.h"

namespace rne {

StatusOr<std::shared_ptr<MmapFile>> MmapFile::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  uint8_t* data = nullptr;
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return Status::IoError("mmap failed for " + path + ": " +
                             std::strerror(errno));
    }
    data = static_cast<uint8_t*>(addr);
  }
  ::close(fd);  // the mapping keeps the inode alive
  RNE_COUNTER_ADD("mmap.maps", 1);
  RNE_COUNTER_ADD("mmap.mapped_bytes", size);
  return std::shared_ptr<MmapFile>(new MmapFile(data, size));
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

namespace {

int ToMadvise(MmapFile::Advice advice) {
  switch (advice) {
    case MmapFile::Advice::kNormal:
      return MADV_NORMAL;
    case MmapFile::Advice::kSequential:
      return MADV_SEQUENTIAL;
    case MmapFile::Advice::kRandom:
      return MADV_RANDOM;
    case MmapFile::Advice::kWillNeed:
      return MADV_WILLNEED;
    case MmapFile::Advice::kDontNeed:
      return MADV_DONTNEED;
  }
  return MADV_NORMAL;
}

}  // namespace

void MmapFile::Advise(Advice advice) const {
  AdviseRange(0, size_, advice);
}

void MmapFile::AdviseRange(uint64_t offset, uint64_t length,
                           Advice advice) const {
  if (data_ == nullptr || length == 0 || offset >= size_) return;
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  const uint64_t begin = offset / page * page;
  uint64_t end = offset + std::min<uint64_t>(length, size_ - offset);
  end = (end + page - 1) / page * page;
  if (end > size_) end = (size_ / page) * page;  // never advise past the map
  if (end <= begin) return;
  ::madvise(data_ + begin, end - begin, ToMadvise(advice));
}

// --------------------------------------------------------- MappedEnvelope

StatusOr<std::shared_ptr<const MappedEnvelope>> MappedEnvelope::Open(
    const std::string& path, uint32_t index_magic, LoadMode mode) {
  auto mapped = MmapFile::Map(path);
  if (!mapped.ok()) return mapped.status();
  std::shared_ptr<MmapFile> file = std::move(mapped).value();
  // Same validation as the streaming loader, run against the mapping: the
  // header, section table and metadata checksum are always verified before
  // Open returns, so the only deferrable cost is section-data CRCs.
  BinaryReader r(file->data(), file->size(), path, index_magic);
  if (!r.ok()) return r.status();
  {
    const Status meta = r.Finish();
    if (!meta.ok()) return meta;
  }
  if (r.format_version() < kFormatVersionV2) {
    return Status::FailedPrecondition(
        "v1 envelope has no sections to map; re-save for mmap serving: " +
        path);
  }
  auto env = std::shared_ptr<MappedEnvelope>(new MappedEnvelope());
  env->file_ = std::move(file);
  env->path_ = path;
  env->info_ = r.info();
  env->verify_ =
      std::make_unique<VerifyState[]>(env->info_.sections.size());
  bool deferred = false;
  for (size_t i = 0; i < env->info_.sections.size(); ++i) {
    const SectionInfo& s = env->info_.sections[i];
    const bool lazy = (s.flags & kSectionFlagLazyVerify) != 0 &&
                      mode == LoadMode::kMmapCold;
    if (lazy) {
      deferred = true;
      continue;
    }
    const Status st = env->VerifySection(i);
    if (!st.ok()) return st;
  }
  if (!deferred) {
    env->all_verified_.store(true, std::memory_order_release);
    // Eagerly-verified maps just streamed every page; drop them from the
    // resident set so a freshly-opened mmap model starts near zero RSS and
    // pages back in on demand.
    if (mode == LoadMode::kMmap) {
      env->file_->Advise(MmapFile::Advice::kDontNeed);
    }
  }
  return std::shared_ptr<const MappedEnvelope>(std::move(env));
}

const SectionInfo* MappedEnvelope::FindSection(uint32_t tag) const {
  for (const SectionInfo& s : info_.sections) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

const uint8_t* MappedEnvelope::SectionData(uint32_t tag) const {
  const SectionInfo* s = FindSection(tag);
  return s == nullptr ? nullptr : file_->data() + s->offset;
}

Status MappedEnvelope::VerifySection(size_t i) const {
  VerifyState& state = verify_[i];
  std::call_once(state.once, [&] {
    const SectionInfo& s = info_.sections[i];
    const uint32_t crc =
        Crc32c(file_->data() + s.pad_start, (s.offset - s.pad_start) + s.size);
    if (crc != s.crc) {
      RNE_COUNTER_ADD("persist.crc_failures", 1);
      RNE_COUNTER_ADD("mmap.verify_failures", 1);
      state.status = Status::Corruption(
          "section " + std::to_string(s.tag) + " checksum mismatch in " +
          path_);
    } else {
      RNE_COUNTER_ADD("mmap.section_verifies", 1);
    }
  });
  return state.status;
}

Status MappedEnvelope::EnsureAllVerified() const {
  if (all_verified_.load(std::memory_order_acquire)) return Status::Ok();
  for (size_t i = 0; i < info_.sections.size(); ++i) {
    const Status st = VerifySection(i);
    if (!st.ok()) return st;
  }
  all_verified_.store(true, std::memory_order_release);
  return Status::Ok();
}

void MappedEnvelope::EnsureAllVerifiedOrThrow() const {
  if (all_verified_.load(std::memory_order_acquire)) return;
  const Status st = EnsureAllVerified();
  if (!st.ok()) throw CorruptionError(st.ToString());
}

}  // namespace rne
