// Invariant-checking macros used across the library.
//
// RNE_CHECK aborts with a diagnostic when an invariant is violated; it is
// always on (databases-style: a corrupted index is worse than a crash).
// RNE_DCHECK compiles away in NDEBUG builds and guards hot paths.
#ifndef RNE_UTIL_MACROS_H_
#define RNE_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define RNE_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "RNE_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define RNE_CHECK_MSG(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "RNE_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define RNE_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define RNE_DCHECK(cond) RNE_CHECK(cond)
#endif

#endif  // RNE_UTIL_MACROS_H_
