// Small numeric-summary helpers used by evaluation harnesses.
#ifndef RNE_UTIL_STATS_H_
#define RNE_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/macros.h"

namespace rne {

/// Arithmetic mean; 0 for an empty range.
inline double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Population variance; 0 for fewer than two values.
inline double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

inline double StdDev(const std::vector<double>& v) {
  return std::sqrt(Variance(v));
}

/// p-quantile (p in [0,1]) by nearest-rank on a copy of the data.
inline double Quantile(std::vector<double> v, double p) {
  RNE_CHECK(!v.empty());
  RNE_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

inline double Max(const std::vector<double>& v) {
  RNE_CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

inline double Min(const std::vector<double>& v) {
  RNE_CHECK(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

}  // namespace rne

#endif  // RNE_UTIL_STATS_H_
