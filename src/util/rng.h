// Deterministic pseudo-random number generation.
//
// All stochastic components (graph generators, sample selection, SGD
// initialization) take an explicit Rng so experiments are reproducible from a
// single seed.
#ifndef RNE_UTIL_RNG_H_
#define RNE_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/macros.h"

namespace rne {

/// Seeded wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    RNE_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  size_t UniformIndex(size_t n) {
    RNE_DCHECK(n > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal draw scaled by `stddev`.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Weighted index draw proportional to non-negative `weights`.
  /// At least one weight must be positive.
  size_t WeightedIndex(const std::vector<double>& weights) {
    RNE_DCHECK(!weights.empty());
    return std::discrete_distribution<size_t>(weights.begin(),
                                              weights.end())(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[UniformIndex(i)]);
    }
  }

  /// Derives an independent child generator (for per-thread streams).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rne

#endif  // RNE_UTIL_RNG_H_
