#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace rne {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index space so each worker gets a contiguous block; avoids
  // per-index queue traffic for large n.
  const size_t chunks = std::min(n, num_threads() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    Submit([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace rne
