#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace rne {

namespace {
thread_local size_t tls_worker_index = ThreadPool::kNotAWorker;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : default_group_(std::make_shared<GroupState>()) {
  num_threads = ResolveNumThreads(num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  task_available_.NotifyAll();
  for (auto& w : workers_) w.join();
}

size_t ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

void ThreadPool::SubmitToGroup(const std::shared_ptr<GroupState>& group,
                               std::function<void()> task) {
  {
    MutexLock lock(&group->mu);
    ++group->pending;
  }
  {
    MutexLock lock(&mu_);
    tasks_.push(QueuedTask{group, std::move(task)});
  }
  task_available_.NotifyOne();
}

void ThreadPool::WaitOnGroup(GroupState& group) {
  std::exception_ptr error;
  {
    MutexLock lock(&group.mu);
    while (group.pending != 0) group.done.Wait(&lock);
    error = std::exchange(group.first_error, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::Submit(std::function<void()> task) {
  SubmitToGroup(default_group_, std::move(task));
}

void ThreadPool::Wait() { WaitOnGroup(*default_group_); }

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index space so each worker gets a contiguous block; avoids
  // per-index queue traffic for large n.
  const size_t chunks = std::min(n, num_threads() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  TaskGroup group(this);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    group.Submit([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  group.Wait();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && tasks_.empty()) task_available_.Wait(&lock);
      // Drain remaining tasks even after shutdown is flagged; exit only
      // once the queue is empty.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // The worker boundary is the exception firewall: a throwing task must
    // neither terminate the process nor leak its group's pending count.
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(&task.group->mu);
      if (error && !task.group->first_error) {
        task.group->first_error = error;
      }
      if (--task.group->pending == 0) task.group->done.NotifyAll();
    }
  }
}

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool), state_(std::make_shared<ThreadPool::GroupState>()) {}

TaskGroup::~TaskGroup() {
  MutexLock lock(&state_->mu);
  while (state_->pending != 0) state_->done.Wait(&lock);
}

void TaskGroup::Submit(std::function<void()> task) {
  pool_->SubmitToGroup(state_, std::move(task));
}

void TaskGroup::Wait() { ThreadPool::WaitOnGroup(*state_); }

}  // namespace rne
