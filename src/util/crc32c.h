// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected form 0x82F63B78).
//
// Used by the persistence envelope (util/serialize.h) to detect torn writes
// and bit rot in saved indexes. The streaming form lets BinaryWriter /
// BinaryReader fold bytes into the checksum as they pass through, so no
// second pass over multi-gigabyte payloads is needed.
#ifndef RNE_UTIL_CRC32C_H_
#define RNE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace rne {

/// Extends `crc` (the running checksum of all bytes seen so far, 0 for an
/// empty stream) with `n` more bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// One-shot checksum of a buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace rne

#endif  // RNE_UTIL_CRC32C_H_
