// Fault injection for the persistence layer, plus file-mutation helpers for
// the corruption test harness (tests/fault_injection_test.cc).
//
// Two halves:
//   1. Process-wide injection points consulted by BinaryWriter, simulating a
//      crash mid-save: fail all writes after N payload bytes (leaving the
//      partial `<path>.tmp` on disk, as a SIGKILL would), or complete the
//      temp file but suppress the final rename (killed between fsync and
//      rename). Disarmed by default; every hook is a single relaxed atomic
//      load on the hot path.
//   2. Pure helpers to produce corrupted copies of a good index file
//      (truncations, bit flips) and an allocation probe that records the
//      largest single buffer the deserializer tried to allocate, so tests can
//      assert corrupt length fields never trigger huge allocations.
//
// Nothing here is thread-safe with respect to arming/disarming; tests arm,
// run one save/load, then Reset().
#ifndef RNE_UTIL_FAULT_INJECTION_H_
#define RNE_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace rne::fault {

/// Disarms all injection points and clears the allocation probe.
void Reset();

/// Arms a write fault: once a BinaryWriter has streamed more than `bytes`
/// payload bytes, every subsequent write fails and the partial temp file is
/// left behind (simulating a kill mid-save).
void FailWritesAfter(uint64_t bytes);

/// Arms a crash between fsync and rename: BinaryWriter::Finish() completes
/// the temp file but never renames it over the target.
void CrashBeforeRename();

// --- hooks called by the serialization layer -------------------------------

/// True if a write that would bring the payload to `total_bytes` must fail.
bool WriteShouldFail(uint64_t total_bytes);

/// True if Finish() must skip the rename step.
bool RenameSuppressed();

/// Records an allocation request of `bytes` made while deserializing.
void OnAllocation(uint64_t bytes);

/// Largest single allocation recorded since the last Reset().
uint64_t MaxAllocationObserved();

// --- corruption helpers for tests ------------------------------------------

/// Reads a whole file into `out`. Status on I/O failure.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

/// Writes `bytes` to `path`, replacing any existing file (plain write — the
/// point is to produce broken files, so no atomic-rename protocol here).
Status WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes);

/// Copies the first `length` bytes of `src` to `dst`.
Status TruncateCopy(const std::string& src, const std::string& dst,
                    uint64_t length);

/// Copies `src` to `dst` with bit `bit` (0-7) of byte `byte_index` flipped.
Status FlipBitCopy(const std::string& src, const std::string& dst,
                   uint64_t byte_index, int bit);

/// Truncation lengths to sweep for a file of `file_size` bytes: every prefix
/// of the first 64 bytes (header + first length fields), every `stride`-th
/// byte after that, and each of the last 16 byte positions (trailer region).
/// Sorted, deduplicated, all strictly less than `file_size`.
std::vector<uint64_t> TruncationSweep(uint64_t file_size, uint64_t stride);

}  // namespace rne::fault

#endif  // RNE_UTIL_FAULT_INJECTION_H_
