// Fault injection for the persistence layer and the serving runtime, plus
// file-mutation helpers for the corruption test harness
// (tests/fault_injection_test.cc, tests/chaos_test.cc).
//
// Three halves:
//   1. Process-wide injection points consulted by BinaryWriter, simulating a
//      crash mid-save: fail all writes after N payload bytes (leaving the
//      partial `<path>.tmp` on disk, as a SIGKILL would), or complete the
//      temp file but suppress the final rename (killed between fsync and
//      rename). Disarmed by default; every hook is a single relaxed atomic
//      load on the hot path.
//   2. Seeded *runtime* fault points consulted by the serving dispatch path
//      (QueryEngine calls MaybeInjectRuntimeFault("serve.backend.<name>")
//      right before each backend call): injected latency, injected Status
//      errors, and injected throws, with per-point overrides and a bounded
//      schedule log so a failing chaos run can be replayed and attached to
//      a CI artifact. Decisions derive from splitmix64(seed, ordinal), so a
//      fixed seed yields the same fault sequence.
//   3. Pure helpers to produce corrupted copies of a good index file
//      (truncations, bit flips) and an allocation probe that records the
//      largest single buffer the deserializer tried to allocate, so tests can
//      assert corrupt length fields never trigger huge allocations.
//
// Persistence-point arming (half 1) is not thread-safe; tests arm, run one
// save/load, then Reset(). Runtime points (half 2) ARE thread-safe: chaos
// tests arm/disarm from the driver thread while pool workers serve.
#ifndef RNE_UTIL_FAULT_INJECTION_H_
#define RNE_UTIL_FAULT_INJECTION_H_

#include <chrono>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "util/status.h"

namespace rne::fault {

/// Disarms all injection points (persistence and runtime) and clears the
/// allocation probe and the runtime schedule log.
void Reset();

/// Arms a write fault: once a BinaryWriter has streamed more than `bytes`
/// payload bytes, every subsequent write fails and the partial temp file is
/// left behind (simulating a kill mid-save).
void FailWritesAfter(uint64_t bytes);

/// Arms a crash between fsync and rename: BinaryWriter::Finish() completes
/// the temp file but never renames it over the target.
void CrashBeforeRename();

// --- hooks called by the serialization layer -------------------------------

/// True if a write that would bring the payload to `total_bytes` must fail.
bool WriteShouldFail(uint64_t total_bytes);

/// True if Finish() must skip the rename step.
bool RenameSuppressed();

/// Records an allocation request of `bytes` made while deserializing.
void OnAllocation(uint64_t bytes);

/// Largest single allocation recorded since the last Reset().
uint64_t MaxAllocationObserved();

// --- runtime fault points (serving-path chaos) -----------------------------

/// What a runtime fault point may inject, with independent probabilities.
/// The classes are mutually exclusive per call: one uniform draw lands in
/// the throw, error, or latency band (in that priority order) or in none.
struct RuntimeFaultConfig {
  /// P(throw an exception). Alternates between a std::exception-derived
  /// InjectedThrow and a non-std InjectedChaos payload so both catch paths
  /// in the engine stay exercised.
  double throw_probability = 0.0;
  /// P(return an error Status) — Unavailable or IoError, alternating.
  double error_probability = 0.0;
  /// P(sleep before proceeding), uniform in [latency_min, latency_max].
  double latency_probability = 0.0;
  std::chrono::microseconds latency_min{0};
  std::chrono::microseconds latency_max{0};
};

/// Thrown by MaybeInjectRuntimeFault (std::exception flavor).
class InjectedThrow : public std::exception {
 public:
  const char* what() const noexcept override { return "injected fault"; }
};

/// Thrown by MaybeInjectRuntimeFault (non-std flavor; exercises catch(...)).
struct InjectedChaos {};

/// Arms `config` as the default for every runtime fault point. Replaces any
/// previous default; per-point overrides survive.
void ArmRuntimeFaults(uint64_t seed, const RuntimeFaultConfig& config);

/// Arms `config` for one named point only (e.g. "serve.backend.rne"),
/// overriding the default. The seed is shared with ArmRuntimeFaults (set by
/// whichever armed first).
void ArmRuntimeFaultsAt(const std::string& point,
                        const RuntimeFaultConfig& config);

/// Disarms all runtime fault points (default and overrides). The schedule
/// log is kept until Reset() so post-mortems can still read it.
void DisarmRuntimeFaults();

/// True when any runtime fault point is armed.
bool RuntimeFaultsArmed();

/// The serving-path hook. Returns Ok and does nothing when disarmed (one
/// relaxed atomic load). When armed: may sleep (latency fault, then Ok),
/// may throw InjectedThrow or InjectedChaos, or may return an error Status
/// the caller must treat as a backend failure.
Status MaybeInjectRuntimeFault(const std::string& point);

/// One injected fault, as recorded in the schedule log.
struct RuntimeFaultEvent {
  uint64_t ordinal = 0;     // global decision index (deterministic per seed)
  std::string point;
  char kind = '?';          // 'T' throw, 'E' error, 'L' latency
  uint32_t latency_us = 0;  // latency faults only
};

/// Total faults injected since the last Reset().
uint64_t RuntimeFaultCount();

/// Snapshot of the (bounded) schedule log; oldest events are dropped past
/// the cap, with the drop count reported in the JSON export.
std::vector<RuntimeFaultEvent> RuntimeFaultLog();

/// JSON object: {"seed":..,"injected":..,"dropped":..,"events":[...]} — the
/// artifact a failing chaos CI run uploads.
std::string RuntimeFaultLogJson();

// --- corruption helpers for tests ------------------------------------------

/// Reads a whole file into `out`. Status on I/O failure.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

/// Writes `bytes` to `path`, replacing any existing file (plain write — the
/// point is to produce broken files, so no atomic-rename protocol here).
Status WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes);

/// Copies the first `length` bytes of `src` to `dst`.
Status TruncateCopy(const std::string& src, const std::string& dst,
                    uint64_t length);

/// Copies `src` to `dst` with bit `bit` (0-7) of byte `byte_index` flipped.
Status FlipBitCopy(const std::string& src, const std::string& dst,
                   uint64_t byte_index, int bit);

/// Truncation lengths to sweep for a file of `file_size` bytes: every prefix
/// of the first 64 bytes (header + first length fields), every `stride`-th
/// byte after that, and each of the last 16 byte positions (trailer region).
/// Sorted, deduplicated, all strictly less than `file_size`.
std::vector<uint64_t> TruncationSweep(uint64_t file_size, uint64_t stride);

}  // namespace rne::fault

#endif  // RNE_UTIL_FAULT_INJECTION_H_
