// Console-table and CSV emission for benchmark harnesses.
//
// Every bench binary prints a paper-shaped table to stdout and mirrors the
// same rows into a CSV file under bench_results/ for downstream plotting.
#ifndef RNE_UTIL_TABLE_WRITER_H_
#define RNE_UTIL_TABLE_WRITER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace rne {

/// Collects rows of string cells; renders an aligned text table and can save
/// the same content as CSV.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Fmt(double value, int precision = 3);
  /// Scientific-looking compact format for wide-ranging values (e.g. times).
  static std::string FmtSci(double value);

  /// Aligned, pipe-separated rendering (header, separator, rows).
  std::string ToString() const;

  /// Prints ToString() to stdout with a title line.
  void Print(const std::string& title) const;

  /// Writes CSV to `path`, creating parent directories if needed.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rne

#endif  // RNE_UTIL_TABLE_WRITER_H_
