#include "util/fault_injection.h"

#include <algorithm>
#include <atomic>
#include <fstream>

namespace rne::fault {
namespace {

std::atomic<bool> g_fail_writes_armed{false};
std::atomic<uint64_t> g_fail_writes_after{0};
std::atomic<bool> g_crash_before_rename{false};
std::atomic<uint64_t> g_max_allocation{0};

}  // namespace

void Reset() {
  g_fail_writes_armed.store(false, std::memory_order_relaxed);
  g_fail_writes_after.store(0, std::memory_order_relaxed);
  g_crash_before_rename.store(false, std::memory_order_relaxed);
  g_max_allocation.store(0, std::memory_order_relaxed);
}

void FailWritesAfter(uint64_t bytes) {
  g_fail_writes_after.store(bytes, std::memory_order_relaxed);
  g_fail_writes_armed.store(true, std::memory_order_relaxed);
}

void CrashBeforeRename() {
  g_crash_before_rename.store(true, std::memory_order_relaxed);
}

bool WriteShouldFail(uint64_t total_bytes) {
  return g_fail_writes_armed.load(std::memory_order_relaxed) &&
         total_bytes > g_fail_writes_after.load(std::memory_order_relaxed);
}

bool RenameSuppressed() {
  return g_crash_before_rename.load(std::memory_order_relaxed);
}

void OnAllocation(uint64_t bytes) {
  uint64_t seen = g_max_allocation.load(std::memory_order_relaxed);
  while (bytes > seen &&
         !g_max_allocation.compare_exchange_weak(seen, bytes,
                                                 std::memory_order_relaxed)) {
  }
}

uint64_t MaxAllocationObserved() {
  return g_max_allocation.load(std::memory_order_relaxed);
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  const std::streamoff size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(out->data()), size);
  }
  if (!in) return Status::IoError("short read from " + path);
  return Status::Ok();
}

Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  if (!bytes.empty()) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  out.flush();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Status TruncateCopy(const std::string& src, const std::string& dst,
                    uint64_t length) {
  std::vector<uint8_t> bytes;
  RNE_RETURN_IF_ERROR(ReadFileBytes(src, &bytes));
  if (length > bytes.size()) {
    return Status::InvalidArgument("truncation length exceeds file size");
  }
  bytes.resize(static_cast<size_t>(length));
  return WriteFileBytes(dst, bytes);
}

Status FlipBitCopy(const std::string& src, const std::string& dst,
                   uint64_t byte_index, int bit) {
  std::vector<uint8_t> bytes;
  RNE_RETURN_IF_ERROR(ReadFileBytes(src, &bytes));
  if (byte_index >= bytes.size() || bit < 0 || bit > 7) {
    return Status::InvalidArgument("flip position out of range");
  }
  bytes[static_cast<size_t>(byte_index)] ^= static_cast<uint8_t>(1u << bit);
  return WriteFileBytes(dst, bytes);
}

std::vector<uint64_t> TruncationSweep(uint64_t file_size, uint64_t stride) {
  std::vector<uint64_t> lengths;
  for (uint64_t i = 0; i < std::min<uint64_t>(64, file_size); ++i) {
    lengths.push_back(i);
  }
  if (stride > 0) {
    for (uint64_t i = 64; i < file_size; i += stride) lengths.push_back(i);
  }
  for (uint64_t i = file_size > 16 ? file_size - 16 : 0; i < file_size; ++i) {
    lengths.push_back(i);
  }
  std::sort(lengths.begin(), lengths.end());
  lengths.erase(std::unique(lengths.begin(), lengths.end()), lengths.end());
  return lengths;
}

}  // namespace rne::fault
