#include "util/fault_injection.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <thread>

#include "util/annotations.h"

namespace rne::fault {
namespace {

std::atomic<bool> g_fail_writes_armed{false};
std::atomic<uint64_t> g_fail_writes_after{0};
std::atomic<bool> g_crash_before_rename{false};
std::atomic<uint64_t> g_max_allocation{0};

// --- runtime fault state ---------------------------------------------------

/// Fast-path gate: MaybeInjectRuntimeFault is on the serving hot path, so a
/// disarmed process pays one relaxed load and returns.
std::atomic<bool> g_runtime_armed{false};
/// Global decision ordinal; combined with the seed it makes every decision
/// a pure function of (seed, ordinal), independent of thread interleaving.
std::atomic<uint64_t> g_runtime_ordinal{0};
std::atomic<uint64_t> g_runtime_injected{0};

constexpr size_t kFaultLogCap = 65536;

struct RuntimeFaultState {
  Mutex mu;
  uint64_t seed RNE_GUARDED_BY(mu) = 0;
  bool seed_set RNE_GUARDED_BY(mu) = false;
  bool default_armed RNE_GUARDED_BY(mu) = false;
  RuntimeFaultConfig default_config RNE_GUARDED_BY(mu);
  std::map<std::string, RuntimeFaultConfig> overrides RNE_GUARDED_BY(mu);
  std::vector<RuntimeFaultEvent> log RNE_GUARDED_BY(mu);
  uint64_t dropped RNE_GUARDED_BY(mu) = 0;
};

RuntimeFaultState& RuntimeState() {
  static RuntimeFaultState* state = new RuntimeFaultState();
  return *state;
}

/// splitmix64 finalizer: stateless hash of (seed, ordinal) — deterministic
/// and thread-safe without a shared engine (raw std engines are banned by
/// the raw-random lint rule anyway).
uint64_t MixRandom(uint64_t seed, uint64_t ordinal) {
  uint64_t z = seed + ordinal * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitFromBits(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

void LogEvent(RuntimeFaultEvent event) {
  RuntimeFaultState& state = RuntimeState();
  MutexLock lock(&state.mu);
  if (state.log.size() >= kFaultLogCap) {
    ++state.dropped;
    return;
  }
  state.log.push_back(std::move(event));
}

}  // namespace

void Reset() {
  g_fail_writes_armed.store(false, std::memory_order_relaxed);
  g_fail_writes_after.store(0, std::memory_order_relaxed);
  g_crash_before_rename.store(false, std::memory_order_relaxed);
  g_max_allocation.store(0, std::memory_order_relaxed);
  DisarmRuntimeFaults();
  RuntimeFaultState& state = RuntimeState();
  MutexLock lock(&state.mu);
  state.seed = 0;
  state.seed_set = false;
  state.log.clear();
  state.dropped = 0;
  g_runtime_ordinal.store(0, std::memory_order_relaxed);
  g_runtime_injected.store(0, std::memory_order_relaxed);
}

void FailWritesAfter(uint64_t bytes) {
  g_fail_writes_after.store(bytes, std::memory_order_relaxed);
  g_fail_writes_armed.store(true, std::memory_order_relaxed);
}

void CrashBeforeRename() {
  g_crash_before_rename.store(true, std::memory_order_relaxed);
}

bool WriteShouldFail(uint64_t total_bytes) {
  return g_fail_writes_armed.load(std::memory_order_relaxed) &&
         total_bytes > g_fail_writes_after.load(std::memory_order_relaxed);
}

bool RenameSuppressed() {
  return g_crash_before_rename.load(std::memory_order_relaxed);
}

void OnAllocation(uint64_t bytes) {
  uint64_t seen = g_max_allocation.load(std::memory_order_relaxed);
  while (bytes > seen &&
         !g_max_allocation.compare_exchange_weak(seen, bytes,
                                                 std::memory_order_relaxed)) {
  }
}

uint64_t MaxAllocationObserved() {
  return g_max_allocation.load(std::memory_order_relaxed);
}

void ArmRuntimeFaults(uint64_t seed, const RuntimeFaultConfig& config) {
  RuntimeFaultState& state = RuntimeState();
  {
    MutexLock lock(&state.mu);
    if (!state.seed_set) {
      state.seed = seed;
      state.seed_set = true;
    }
    state.default_config = config;
    state.default_armed = true;
  }
  g_runtime_armed.store(true, std::memory_order_release);
}

void ArmRuntimeFaultsAt(const std::string& point,
                        const RuntimeFaultConfig& config) {
  RuntimeFaultState& state = RuntimeState();
  {
    MutexLock lock(&state.mu);
    if (!state.seed_set) {
      state.seed = 1;
      state.seed_set = true;
    }
    state.overrides[point] = config;
  }
  g_runtime_armed.store(true, std::memory_order_release);
}

void DisarmRuntimeFaults() {
  g_runtime_armed.store(false, std::memory_order_release);
  RuntimeFaultState& state = RuntimeState();
  MutexLock lock(&state.mu);
  state.default_armed = false;
  state.overrides.clear();
}

bool RuntimeFaultsArmed() {
  return g_runtime_armed.load(std::memory_order_acquire);
}

Status MaybeInjectRuntimeFault(const std::string& point) {
  if (!g_runtime_armed.load(std::memory_order_acquire)) return Status::Ok();
  RuntimeFaultConfig config;
  uint64_t seed = 0;
  {
    RuntimeFaultState& state = RuntimeState();
    MutexLock lock(&state.mu);
    const auto it = state.overrides.find(point);
    if (it != state.overrides.end()) {
      config = it->second;
    } else if (state.default_armed) {
      config = state.default_config;
    } else {
      return Status::Ok();  // armed for other points only
    }
    seed = state.seed;
  }
  const uint64_t ordinal =
      g_runtime_ordinal.fetch_add(1, std::memory_order_relaxed);
  const uint64_t bits = MixRandom(seed, ordinal);
  const double u = UnitFromBits(bits);
  // One draw, banded by priority: throw | error | latency | none.
  if (u < config.throw_probability) {
    g_runtime_injected.fetch_add(1, std::memory_order_relaxed);
    LogEvent({ordinal, point, 'T', 0});
    if ((bits & 1u) != 0) throw InjectedThrow();
    throw InjectedChaos();
  }
  if (u < config.throw_probability + config.error_probability) {
    g_runtime_injected.fetch_add(1, std::memory_order_relaxed);
    LogEvent({ordinal, point, 'E', 0});
    return (bits & 1u) != 0
               ? Status::Unavailable("injected fault at " + point)
               : Status::IoError("injected fault at " + point);
  }
  if (u < config.throw_probability + config.error_probability +
              config.latency_probability) {
    const auto span_us = static_cast<uint64_t>(
        std::max<int64_t>(0, (config.latency_max - config.latency_min)
                                 .count()));
    // Second independent draw for the latency magnitude.
    const uint64_t amount =
        span_us == 0 ? 0 : MixRandom(seed ^ 0xc0ffee, ordinal) % (span_us + 1);
    const auto delay =
        config.latency_min + std::chrono::microseconds(amount);
    g_runtime_injected.fetch_add(1, std::memory_order_relaxed);
    LogEvent({ordinal, point, 'L',
              static_cast<uint32_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(delay)
                      .count())});
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }
  return Status::Ok();
}

uint64_t RuntimeFaultCount() {
  return g_runtime_injected.load(std::memory_order_relaxed);
}

std::vector<RuntimeFaultEvent> RuntimeFaultLog() {
  RuntimeFaultState& state = RuntimeState();
  MutexLock lock(&state.mu);
  return state.log;
}

std::string RuntimeFaultLogJson() {
  RuntimeFaultState& state = RuntimeState();
  MutexLock lock(&state.mu);
  std::string out = "{\"seed\": " + std::to_string(state.seed) +
                    ", \"injected\": " +
                    std::to_string(RuntimeFaultCount()) +
                    ", \"dropped\": " + std::to_string(state.dropped) +
                    ", \"events\": [";
  for (size_t i = 0; i < state.log.size(); ++i) {
    const RuntimeFaultEvent& e = state.log[i];
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ordinal\": %llu, \"point\": \"%s\", \"kind\": "
                  "\"%c\", \"latency_us\": %u}",
                  i == 0 ? "" : ", ",
                  static_cast<unsigned long long>(e.ordinal),
                  e.point.c_str(), e.kind, e.latency_us);
    out += buf;
  }
  out += "]}";
  return out;
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  const std::streamoff size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(out->data()), size);
  }
  if (!in) return Status::IoError("short read from " + path);
  return Status::Ok();
}

Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  if (!bytes.empty()) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  out.flush();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Status TruncateCopy(const std::string& src, const std::string& dst,
                    uint64_t length) {
  std::vector<uint8_t> bytes;
  RNE_RETURN_IF_ERROR(ReadFileBytes(src, &bytes));
  if (length > bytes.size()) {
    return Status::InvalidArgument("truncation length exceeds file size");
  }
  bytes.resize(static_cast<size_t>(length));
  return WriteFileBytes(dst, bytes);
}

Status FlipBitCopy(const std::string& src, const std::string& dst,
                   uint64_t byte_index, int bit) {
  std::vector<uint8_t> bytes;
  RNE_RETURN_IF_ERROR(ReadFileBytes(src, &bytes));
  if (byte_index >= bytes.size() || bit < 0 || bit > 7) {
    return Status::InvalidArgument("flip position out of range");
  }
  bytes[static_cast<size_t>(byte_index)] ^= static_cast<uint8_t>(1u << bit);
  return WriteFileBytes(dst, bytes);
}

std::vector<uint64_t> TruncationSweep(uint64_t file_size, uint64_t stride) {
  std::vector<uint64_t> lengths;
  for (uint64_t i = 0; i < std::min<uint64_t>(64, file_size); ++i) {
    lengths.push_back(i);
  }
  if (stride > 0) {
    for (uint64_t i = 64; i < file_size; i += stride) lengths.push_back(i);
  }
  for (uint64_t i = file_size > 16 ? file_size - 16 : 0; i < file_size; ++i) {
    lengths.push_back(i);
  }
  std::sort(lengths.begin(), lengths.end());
  lengths.erase(std::unique(lengths.begin(), lengths.end()), lengths.end());
  return lengths;
}

}  // namespace rne::fault
