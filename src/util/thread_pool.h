// Fixed-size thread pool for embarrassingly parallel work (batched SSSP for
// training-sample generation, per-level training shards, serving batches).
#ifndef RNE_UTIL_THREAD_POOL_H_
#define RNE_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.h"

namespace rne {

class TaskGroup;

/// Canonical resolution of a `num_threads` option shared by every parallel
/// builder: 0 means hardware concurrency, and the result is always >= 1.
/// Matches the ThreadPool constructor so "0 = hardware" behaves identically
/// whether the caller sizes a pool or branches on the resolved count.
inline size_t ResolveNumThreads(size_t requested) {
  if (requested != 0) return requested;
  const size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Simple task-queue thread pool. Tasks are void() closures. Completion is
/// tracked per task group, so independent clients (e.g. two concurrent
/// serving batches, or a ParallelFor racing an engine batch) sharing one
/// pool never wait on each other's work. Submit()/Wait() without an explicit
/// group use a pool-default group, preserving the original single-client
/// API. Not copyable or movable.
///
/// A task that throws does not take the process down: the first exception
/// per group is captured at the worker boundary and rethrown from that
/// group's Wait(); later exceptions in the same group are dropped.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware concurrency (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task on the pool-default group.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted via Submit() has completed, then
  /// rethrows the first exception thrown by one of them (if any) and clears
  /// it. Tasks owned by explicit TaskGroups are not waited on.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion
  /// (of this call's tasks only). Rethrows the first exception from fn.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// Index of the calling pool worker in [0, num_threads()), or
  /// kNotAWorker when called from a thread that is not a pool worker.
  /// Backends use this to pick a per-worker scratch slot without locking.
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);
  static size_t CurrentWorkerIndex();

 private:
  friend class TaskGroup;

  /// Completion state shared by the tasks of one logical batch.
  struct GroupState {
    Mutex mu;
    CondVar done;
    size_t pending RNE_GUARDED_BY(mu) = 0;
    std::exception_ptr first_error RNE_GUARDED_BY(mu);
  };

  void SubmitToGroup(const std::shared_ptr<GroupState>& group,
                     std::function<void()> task);
  /// Waits for `group` to drain, then rethrows and clears its first error.
  static void WaitOnGroup(GroupState& group);
  void WorkerLoop(size_t worker_index);

  struct QueuedTask {
    std::shared_ptr<GroupState> group;
    std::function<void()> fn;
  };

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar task_available_;
  std::queue<QueuedTask> tasks_ RNE_GUARDED_BY(mu_);
  bool shutdown_ RNE_GUARDED_BY(mu_) = false;
  std::shared_ptr<GroupState> default_group_;
};

/// Handle for one batch of tasks on a shared ThreadPool. Wait() blocks only
/// on tasks submitted through this group and rethrows the first exception
/// one of them threw. The destructor waits for stragglers (exceptions are
/// swallowed there; call Wait() to observe them).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Submit(std::function<void()> task);
  void Wait();

 private:
  ThreadPool* pool_;
  std::shared_ptr<ThreadPool::GroupState> state_;
};

}  // namespace rne

#endif  // RNE_UTIL_THREAD_POOL_H_
