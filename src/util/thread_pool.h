// Fixed-size thread pool for embarrassingly parallel work (batched SSSP for
// training-sample generation, per-level training shards).
#ifndef RNE_UTIL_THREAD_POOL_H_
#define RNE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rne {

/// Simple task-queue thread pool. Tasks are void() closures; Wait() blocks
/// until every submitted task has finished. Not copyable or movable.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware concurrency (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace rne

#endif  // RNE_UTIL_THREAD_POOL_H_
