#include "util/table_writer.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/macros.h"

namespace rne {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  RNE_CHECK(!header_.empty());
}

void TableWriter::AddRow(std::vector<std::string> row) {
  RNE_CHECK_MSG(row.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TableWriter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TableWriter::FmtSci(double value) {
  char buf[64];
  if (value != 0.0 && (value < 0.001 || value >= 1e7)) {
    std::snprintf(buf, sizeof(buf), "%.3e", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", value);
  }
  return buf;
}

std::string TableWriter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < row.size(); ++i) {
      line += " " + row[i] + std::string(widths[i] - row[i].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "|";
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TableWriter::Print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), ToString().c_str());
  std::fflush(stdout);
}

Status TableWriter::WriteCsv(const std::string& path) const {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
    if (ec) return Status::IoError("cannot create directory " + parent.string());
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      // Quote cells containing commas.
      if (row[i].find(',') != std::string::npos) {
        out << '"' << row[i] << '"';
      } else {
        out << row[i];
      }
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace rne
