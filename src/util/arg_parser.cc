#include "util/arg_parser.h"

#include <cstdlib>
#include <cstring>

namespace rne {

namespace {
bool IsFlag(const char* token) { return std::strncmp(token, "--", 2) == 0; }
}  // namespace

StatusOr<ArgParser> ArgParser::Parse(int argc, char* const* argv, int begin,
                                     const std::set<std::string>& switches) {
  ArgParser args;
  for (int i = begin; i < argc; ++i) {
    if (!IsFlag(argv[i])) {
      args.positionals_.emplace_back(argv[i]);
      continue;
    }
    const std::string key = argv[i] + 2;
    if (key.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    if (args.values_.count(key) > 0) {
      return Status::InvalidArgument("flag --" + key +
                                     " given more than once");
    }
    if (switches.count(key) > 0) {
      args.values_[key] = "1";
      continue;
    }
    if (i + 1 >= argc || IsFlag(argv[i + 1])) {
      return Status::InvalidArgument("flag --" + key + " is missing a value");
    }
    args.values_[key] = argv[i + 1];
    ++i;
  }
  return args;
}

Status ArgParser::RequireKnown(const std::set<std::string>& allowed) const {
  for (const auto& [key, value] : values_) {
    if (allowed.count(key) == 0) {
      return Status::InvalidArgument("unknown flag --" + key);
    }
  }
  return Status::Ok();
}

std::string ArgParser::Get(const std::string& key,
                           const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

StatusOr<long> ArgParser::GetInt(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + key + " expects an integer, got '" +
                                   it->second + "'");
  }
  return value;
}

StatusOr<double> ArgParser::GetDouble(const std::string& key,
                                      double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + key + " expects a number, got '" +
                                   it->second + "'");
  }
  return value;
}

}  // namespace rne
