// Clang thread-safety annotations plus the annotated mutex vocabulary the
// whole project locks with.
//
// Every RNE_* macro below expands to the corresponding Clang
// `__attribute__((...))` when the compiler supports thread-safety analysis
// and to nothing otherwise, so GCC builds are unaffected while Clang builds
// with `-Wthread-safety -Werror=thread-safety` turn lock-discipline
// violations (reading a RNE_GUARDED_BY member without its mutex, forgetting
// to release, acquiring in the wrong function) into compile errors.
//
// Raw std::mutex / std::lock_guard / std::condition_variable are banned
// outside this header (enforced by `scripts/lint/rne_lint.py` rule
// `raw-mutex`): code must use rne::Mutex, rne::MutexLock, and rne::CondVar
// so the analysis sees every acquisition. The wrappers are zero-cost —
// each is a thin inline shell over the std primitive it replaces.
//
// Usage:
//   class Queue {
//    public:
//     void Push(Item item) {
//       MutexLock lock(&mu_);
//       items_.push_back(std::move(item));   // OK: mu_ held
//       ready_.NotifyOne();
//     }
//    private:
//     Mutex mu_;
//     CondVar ready_;
//     std::vector<Item> items_ RNE_GUARDED_BY(mu_);
//   };
//
// Condition waits: Clang's analysis cannot see through std::function or
// lambda predicates, so waits are written as explicit loops — the guarded
// state is then read in the annotated enclosing scope:
//   MutexLock lock(&mu_);
//   while (items_.empty()) ready_.Wait(&lock);
#ifndef RNE_UTIL_ANNOTATIONS_H_
#define RNE_UTIL_ANNOTATIONS_H_

// rne-lint: allow(raw-mutex) — this header defines the annotated wrappers.
#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define RNE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#if !defined(RNE_THREAD_ANNOTATION)
#define RNE_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Declares a type to be a lockable capability ("mutex").
#define RNE_CAPABILITY(x) RNE_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires in its constructor and releases in
/// its destructor.
#define RNE_SCOPED_CAPABILITY RNE_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while `x` is held.
#define RNE_GUARDED_BY(x) RNE_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is protected by `x` (the pointer itself is
/// not).
#define RNE_PT_GUARDED_BY(x) RNE_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the listed capabilities to be held by the caller.
#define RNE_REQUIRES(...) \
  RNE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function must NOT be called with the listed capabilities held
/// (deadlock-prevention contract).
#define RNE_EXCLUDES(...) RNE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function acquires the capability and does not release it.
#define RNE_ACQUIRE(...) \
  RNE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability.
#define RNE_RELEASE(...) \
  RNE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability when it returns `ret`.
#define RNE_TRY_ACQUIRE(ret, ...) \
  RNE_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// Documents lock-ordering between two mutexes.
#define RNE_ACQUIRED_BEFORE(...) \
  RNE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RNE_ACQUIRED_AFTER(...) \
  RNE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Escape hatch for code the analysis cannot model; every use must carry a
/// comment explaining why it is correct.
#define RNE_NO_THREAD_SAFETY_ANALYSIS \
  RNE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rne {

class CondVar;

/// Annotated mutex. Prefer MutexLock for scoped acquisition; Lock()/Unlock()
/// exist for the rare manually balanced section.
class RNE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RNE_ACQUIRE() { mu_.lock(); }
  void Unlock() RNE_RELEASE() { mu_.unlock(); }
  bool TryLock() RNE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;

  std::mutex mu_;
};

/// RAII lock over an rne::Mutex; the only way to wait on an rne::CondVar.
class RNE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RNE_ACQUIRE(mu) : lock_(mu->mu_) {}
  ~MutexLock() RNE_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;

  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with rne::Mutex/MutexLock. Wait() releases the
/// lock while blocked and reacquires before returning, so from the
/// analysis's point of view the capability is continuously held — which is
/// exactly the guarantee the caller observes.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock* lock) { cv_.wait(lock->lock_); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock* lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock->lock_, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rne

#endif  // RNE_UTIL_ANNOTATIONS_H_
