#include "util/block_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "util/macros.h"

namespace rne {

BlockCache::Pin& BlockCache::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    slot_ = other.slot_;
    bytes_ = other.bytes_;
    other.cache_ = nullptr;
    other.bytes_ = {};
  }
  return *this;
}

void BlockCache::Pin::Release() {
  if (cache_ != nullptr) {
    cache_->Unpin(slot_);
    cache_ = nullptr;
    bytes_ = {};
  }
}

StatusOr<std::unique_ptr<BlockCache>> BlockCache::Open(
    const std::string& path, const Options& options) {
  if (options.block_bytes == 0 || options.block_count == 0) {
    return Status::InvalidArgument("block cache needs nonzero geometry");
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  return std::unique_ptr<BlockCache>(
      new BlockCache(fd, static_cast<uint64_t>(end), options));
}

BlockCache::BlockCache(int fd, uint64_t file_size, const Options& options)
    : options_(options), fd_(fd), file_size_(file_size) {
  slots_.resize(options_.block_count);
  for (Slot& slot : slots_) {
    slot.buf = std::make_unique<uint8_t[]>(options_.block_bytes);
  }
}

BlockCache::~BlockCache() { ::close(fd_); }

void BlockCache::Unpin(size_t slot) {
  MutexLock lock(&mu_);
  RNE_DCHECK(slots_[slot].pins > 0);
  --slots_[slot].pins;
}

StatusOr<BlockCache::Pin> BlockCache::Acquire(uint64_t block_index) {
  const uint64_t offset = block_index * options_.block_bytes;
  if (offset >= file_size_) {
    return Status::Corruption("block " + std::to_string(block_index) +
                              " past end of cached file");
  }
  const uint64_t want =
      std::min<uint64_t>(options_.block_bytes, file_size_ - offset);
  size_t victim = slots_.size();
  {
    MutexLock lock(&mu_);
    for (;;) {
      bool loading_target = false;
      for (size_t i = 0; i < slots_.size(); ++i) {
        Slot& slot = slots_[i];
        if (slot.state == SlotState::kReady && slot.block == block_index) {
          ++hits_;
          RNE_COUNTER_ADD("blockcache.hits", 1);
          ++slot.pins;
          return Pin(this, i,
                     std::span<const uint8_t>(slot.buf.get(),
                                              slot.valid_bytes));
        }
        if (slot.state == SlotState::kLoading &&
            slot.block == block_index) {
          loading_target = true;
        }
      }
      if (!loading_target) break;
      // Another thread is filling our block; wait for it to publish.
      slot_ready_.Wait(&lock);
    }
    // Miss: claim the oldest unpinned slot (empty slots first). A loading
    // slot holds a pin, so it can never be chosen as victim.
    uint64_t oldest_seq = UINT64_MAX;
    for (size_t i = 0; i < slots_.size(); ++i) {
      const Slot& slot = slots_[i];
      if (slot.pins != 0) continue;
      if (slot.state == SlotState::kEmpty) {
        victim = i;
        oldest_seq = 0;
        break;
      }
      if (slot.load_seq < oldest_seq) {
        victim = i;
        oldest_seq = slot.load_seq;
      }
    }
    if (victim == slots_.size()) {
      return Status::Unavailable("all block cache slots pinned");
    }
    Slot& slot = slots_[victim];
    if (slot.state == SlotState::kReady) {
      ++evictions_;
      RNE_COUNTER_ADD("blockcache.evictions", 1);
    }
    ++misses_;
    RNE_COUNTER_ADD("blockcache.misses", 1);
    slot.state = SlotState::kLoading;
    slot.block = block_index;
    slot.valid_bytes = 0;
    slot.io_status = Status::Ok();
    slot.pins = 1;  // the loader's pin; inherited by the returned handle
  }
  // Fill outside the lock so other blocks stay serviceable during the IO.
  // The kLoading state plus the loader pin give this thread exclusive
  // ownership of the buffer.
  uint8_t* buf = slots_[victim].buf.get();
  Status io = Status::Ok();
  uint64_t done = 0;
  while (done < want) {
    const ssize_t n =
        ::pread(fd_, buf + done, static_cast<size_t>(want - done),
                static_cast<off_t>(offset + done));
    if (n < 0 && errno == EINTR) continue;  // retry interrupted reads
    if (n <= 0) {
      io = Status::IoError("pread failed for cached block " +
                           std::to_string(block_index));
      break;
    }
    done += static_cast<uint64_t>(n);
  }
  {
    MutexLock lock(&mu_);
    Slot& slot = slots_[victim];
    if (!io.ok()) {
      slot.state = SlotState::kEmpty;
      slot.pins = 0;
      slot_ready_.NotifyAll();
      return io;
    }
    slot.state = SlotState::kReady;
    slot.valid_bytes = want;
    slot.load_seq = next_load_seq_++;
    slot_ready_.NotifyAll();
    return Pin(this, victim, std::span<const uint8_t>(buf, want));
  }
}

Status BlockCache::Read(uint64_t offset, void* dst, uint64_t len) {
  if (offset > file_size_ || len > file_size_ - offset) {
    return Status::Corruption("block cache read past end of file");
  }
  uint8_t* out = static_cast<uint8_t*>(dst);
  while (len > 0) {
    const uint64_t block = offset / options_.block_bytes;
    auto pin = Acquire(block);
    if (!pin.ok()) return pin.status();
    const uint64_t pos = offset - block * options_.block_bytes;
    const std::span<const uint8_t> bytes = pin.value().bytes();
    const uint64_t n = std::min<uint64_t>(len, bytes.size() - pos);
    std::memcpy(out, bytes.data() + pos, static_cast<size_t>(n));
    out += n;
    offset += n;
    len -= n;
  }
  return Status::Ok();
}

BlockCache::Stats BlockCache::stats() const {
  MutexLock lock(&mu_);
  return Stats{hits_, misses_, evictions_};
}

}  // namespace rne
