// Strict `--key value` command-line parsing shared by the CLI tools
// (rne_tool, rne_server) and the serving load generator.
//
// The historical tool parser walked argv with a blind `i += 2` stride, so a
// `--flag` missing its value silently consumed the next flag as its value
// and shifted every later pair. Parse() rejects that with an error instead.
#ifndef RNE_UTIL_ARG_PARSER_H_
#define RNE_UTIL_ARG_PARSER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace rne {

/// Parsed `--key value` pairs plus bare positional tokens.
class ArgParser {
 public:
  /// Parses argv[begin, argc). Every token starting with "--" is a flag and
  /// must be followed by a value token (which must not itself start with
  /// "--"); otherwise InvalidArgument names the offending flag. Flags named
  /// in `switches` are boolean: they take no value and Has() reports their
  /// presence. Tokens that are not flags and not flag values are collected
  /// as positionals in order. A flag given more than once (including
  /// switches) is InvalidArgument — silently keeping one value hides which
  /// occurrence the user meant.
  static StatusOr<ArgParser> Parse(int argc, char* const* argv, int begin = 1,
                                   const std::set<std::string>& switches = {});

  bool Has(const std::string& key) const {
    return values_.find(key) != values_.end();
  }
  std::string Get(const std::string& key, const std::string& fallback) const;
  /// Integer flag; InvalidArgument when present but not a valid integer.
  StatusOr<long> GetInt(const std::string& key, long fallback) const;
  /// Real-valued flag; InvalidArgument when present but not a number.
  StatusOr<double> GetDouble(const std::string& key, double fallback) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// InvalidArgument naming the first parsed flag not in `allowed` (catches
  /// typos like --thread instead of --threads); Ok when every flag is known.
  Status RequireKnown(const std::set<std::string>& allowed) const;

 private:
  ArgParser() = default;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

/// Error-accumulating typed flag access: reads return the fallback on a
/// malformed value and latch the first error into status(), so a command
/// can read every flag up front and fail once with a precise message.
class FlagReader {
 public:
  explicit FlagReader(const ArgParser& args) : args_(args) {}

  std::string Str(const std::string& key, const std::string& fallback) const {
    return args_.Get(key, fallback);
  }
  long Int(const std::string& key, long fallback) {
    return Latch(args_.GetInt(key, fallback), fallback);
  }
  double Real(const std::string& key, double fallback) {
    return Latch(args_.GetDouble(key, fallback), fallback);
  }

  const Status& status() const { return status_; }

 private:
  template <typename T>
  T Latch(StatusOr<T> value, T fallback) {
    if (!value.ok()) {
      if (status_.ok()) status_ = value.status();
      return fallback;
    }
    return value.value();
  }

  const ArgParser& args_;
  Status status_;
};

}  // namespace rne

#endif  // RNE_UTIL_ARG_PARSER_H_
