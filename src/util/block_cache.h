// Bounded pread-backed block cache for cold-storage serving.
//
// When an index is too large even to map comfortably (or resident memory
// must be capped deterministically rather than left to kernel reclaim),
// large sections can be served through a BlockCache: a fixed array of
// `block_count` buffers of `block_bytes` each, filled by pread(2) on miss.
// Total resident cost is block_count * block_bytes, full stop.
//
// Concurrency model: a block is pinned while a Pin handle is alive;
// eviction overwrites the *oldest* (earliest-loaded) unpinned block. A
// thread that misses releases the cache mutex while its pread runs, so
// concurrent readers of other blocks are not serialized behind the IO;
// threads wanting the in-flight block wait on a condvar. Hit/miss/eviction
// counts are exported both through the `obs` metrics registry
// (blockcache.*) and the exact local Stats() snapshot the unit tests
// assert on.
#ifndef RNE_UTIL_BLOCK_CACHE_H_
#define RNE_UTIL_BLOCK_CACHE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/status.h"

namespace rne {

class BlockCache {
 public:
  struct Options {
    uint64_t block_bytes = 64 * 1024;
    uint64_t block_count = 64;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// Pin-on-access handle: the underlying buffer cannot be evicted or
  /// overwritten while a Pin referencing it is alive.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    /// The cached bytes of the pinned block (shorter than block_bytes for
    /// the final block of the file).
    std::span<const uint8_t> bytes() const { return bytes_; }

   private:
    friend class BlockCache;
    Pin(BlockCache* cache, size_t slot, std::span<const uint8_t> bytes)
        : cache_(cache), slot_(slot), bytes_(bytes) {}
    void Release();

    BlockCache* cache_ = nullptr;
    size_t slot_ = 0;
    std::span<const uint8_t> bytes_;
  };

  /// Opens `path` read-only. Fails with NotFound/IoError; never reads data
  /// until the first Acquire.
  static StatusOr<std::unique_ptr<BlockCache>> Open(const std::string& path,
                                                    const Options& options);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  uint64_t file_size() const { return file_size_; }
  uint64_t block_bytes() const { return options_.block_bytes; }

  /// Pins the cache block holding file offsets
  /// [block_index * block_bytes, ...). Unavailable if every slot is pinned.
  StatusOr<Pin> Acquire(uint64_t block_index);

  /// Copies [offset, offset + len) into dst, pinning each covered block in
  /// turn. Corruption if the range runs past end of file.
  Status Read(uint64_t offset, void* dst, uint64_t len);

  Stats stats() const;

 private:
  enum class SlotState { kEmpty, kLoading, kReady };

  struct Slot {
    SlotState state RNE_GUARDED_BY(mu_) = SlotState::kEmpty;
    uint64_t block RNE_GUARDED_BY(mu_) = 0;
    uint64_t valid_bytes RNE_GUARDED_BY(mu_) = 0;
    uint64_t load_seq RNE_GUARDED_BY(mu_) = 0;  // for overwrite-oldest
    uint32_t pins RNE_GUARDED_BY(mu_) = 0;
    Status io_status RNE_GUARDED_BY(mu_);
    std::unique_ptr<uint8_t[]> buf;  // stable storage; contents guarded by
                                     // the kLoading/kReady protocol
  };

  BlockCache(int fd, uint64_t file_size, const Options& options);
  void Unpin(size_t slot);

  const Options options_;
  const int fd_;
  const uint64_t file_size_;

  mutable Mutex mu_;
  CondVar slot_ready_;
  std::vector<Slot> slots_;
  uint64_t next_load_seq_ RNE_GUARDED_BY(mu_) = 1;
  uint64_t hits_ RNE_GUARDED_BY(mu_) = 0;
  uint64_t misses_ RNE_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ RNE_GUARDED_BY(mu_) = 0;
};

}  // namespace rne

#endif  // RNE_UTIL_BLOCK_CACHE_H_
