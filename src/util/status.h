// Lightweight Status / StatusOr for fallible operations (file I/O, parsing).
//
// The library does not use exceptions; functions that can fail in normal
// operation return Status or StatusOr<T>, while programming errors are caught
// by RNE_CHECK.
#ifndef RNE_UTIL_STATUS_H_
#define RNE_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/macros.h"

namespace rne {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kFailedPrecondition,
  kUnavailable,
  kDeadlineExceeded,
};

/// Result of a fallible operation: a code plus a human-readable message.
/// [[nodiscard]] at class level: any call returning Status whose result is
/// dropped is a compile error under -Werror=unused-result — a silently
/// ignored save/load failure is exactly how a corrupt index reaches
/// serving. Intentional discards must say why: `(void)DoIt();  // reason`.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats the status as "<CODE>: <message>" for logs and error output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Access to the value requires ok().
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    RNE_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RNE_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    RNE_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    RNE_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

#define RNE_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::rne::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace rne

#endif  // RNE_UTIL_STATUS_H_
