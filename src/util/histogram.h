// Fixed-bucket histogram used for error-vs-distance analyses (Fig 8 / Fig 17)
// and a log-bucketed latency histogram for serving-path percentiles.
#ifndef RNE_UTIL_HISTOGRAM_H_
#define RNE_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rne {

/// Equal-width histogram over [lo, hi) with `num_buckets` buckets.
/// Values outside the range are clamped into the first/last bucket.
/// Tracks per-bucket count, sum, and sum of an auxiliary metric so the
/// evaluation code can report e.g. mean relative error per distance interval.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_buckets);

  /// Records `value` in the bucket for `key`, accumulating `aux` alongside.
  void Add(double key, double value, double aux = 0.0);

  size_t num_buckets() const { return counts_.size(); }
  size_t count(size_t bucket) const { return counts_[bucket]; }
  double MeanValue(size_t bucket) const;
  double MeanAux(size_t bucket) const;
  /// [lower, upper) bounds of a bucket.
  double BucketLower(size_t bucket) const;
  double BucketUpper(size_t bucket) const;

  /// Index of the bucket with the largest mean value among non-empty buckets;
  /// returns num_buckets() if all buckets are empty.
  size_t ArgMaxMeanValue() const;

  /// Multi-line "lower..upper: count mean" rendering for logs.
  std::string ToString() const;

 private:
  size_t BucketFor(double key) const;

  double lo_;
  double width_;
  std::vector<size_t> counts_;
  std::vector<double> value_sums_;
  std::vector<double> aux_sums_;
};

/// Log-bucketed histogram of nanosecond latencies: geometric buckets with 16
/// sub-buckets per power of two (<= ~4.5% relative bucket width), so queue
/// waits spanning ns..minutes coexist in one fixed ~10 KiB structure with no
/// per-sample allocation. Percentile() linearly scans the cumulative counts.
/// Not thread-safe: record into per-worker instances and Merge() snapshots.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one latency sample; negative values count as zero.
  void Record(int64_t nanos);
  /// Adds every sample of `other` into this histogram.
  void Merge(const LatencyHistogram& other);
  void Reset();

  size_t TotalCount() const { return total_; }
  double MeanNanos() const;
  int64_t MaxNanos() const { return max_nanos_; }
  /// Value at percentile `p` in [0, 100] (bucket midpoint; exact for the
  /// recorded max). Returns 0 when empty.
  double PercentileNanos(double p) const;

 private:
  static size_t BucketFor(int64_t nanos);
  static int64_t BucketLowerBound(size_t bucket);

  static constexpr size_t kSubBits = 4;  // 16 sub-buckets per octave
  static constexpr size_t kNumBuckets = (64 - kSubBits) << kSubBits;

  std::vector<uint64_t> counts_;
  size_t total_ = 0;
  double sum_nanos_ = 0.0;
  int64_t max_nanos_ = 0;
  // Populated bucket range [lo_bucket_, hi_bucket_]; a chunk-local histogram
  // holds a few dozen samples in a handful of buckets, so bounding Merge()
  // and PercentileNanos() to this range keeps the serving path's per-chunk
  // flush from walking all ~960 buckets.
  size_t lo_bucket_ = kNumBuckets;
  size_t hi_bucket_ = 0;
};

}  // namespace rne

#endif  // RNE_UTIL_HISTOGRAM_H_
