// Fixed-bucket histogram used for error-vs-distance analyses (Fig 8 / Fig 17).
#ifndef RNE_UTIL_HISTOGRAM_H_
#define RNE_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace rne {

/// Equal-width histogram over [lo, hi) with `num_buckets` buckets.
/// Values outside the range are clamped into the first/last bucket.
/// Tracks per-bucket count, sum, and sum of an auxiliary metric so the
/// evaluation code can report e.g. mean relative error per distance interval.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_buckets);

  /// Records `value` in the bucket for `key`, accumulating `aux` alongside.
  void Add(double key, double value, double aux = 0.0);

  size_t num_buckets() const { return counts_.size(); }
  size_t count(size_t bucket) const { return counts_[bucket]; }
  double MeanValue(size_t bucket) const;
  double MeanAux(size_t bucket) const;
  /// [lower, upper) bounds of a bucket.
  double BucketLower(size_t bucket) const;
  double BucketUpper(size_t bucket) const;

  /// Index of the bucket with the largest mean value among non-empty buckets;
  /// returns num_buckets() if all buckets are empty.
  size_t ArgMaxMeanValue() const;

  /// Multi-line "lower..upper: count mean" rendering for logs.
  std::string ToString() const;

 private:
  size_t BucketFor(double key) const;

  double lo_;
  double width_;
  std::vector<size_t> counts_;
  std::vector<double> value_sums_;
  std::vector<double> aux_sums_;
};

}  // namespace rne

#endif  // RNE_UTIL_HISTOGRAM_H_
