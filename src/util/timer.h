// Wall-clock timing helpers for build-time and query-time measurements.
#ifndef RNE_UTIL_TIMER_H_
#define RNE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace rne {

/// Monotonic stopwatch. Starts on construction; Restart() resets it.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in nanoseconds (for per-query latency accounting).
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rne

#endif  // RNE_UTIL_TIMER_H_
