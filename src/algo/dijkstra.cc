#include "algo/dijkstra.h"

#include <algorithm>

namespace rne {

DijkstraSearch::DijkstraSearch(const Graph& g)
    : g_(g),
      dist_(g.NumVertices(), kInfDistance),
      parent_(g.NumVertices(), kInvalidVertex),
      version_(g.NumVertices(), 0) {}

void DijkstraSearch::BeginSearch(VertexId s, MinQueue& queue) {
  RNE_CHECK(s < g_.NumVertices());
  ++current_version_;
  if (current_version_ == 0) {
    // Version counter wrapped; hard-reset the stamps.
    std::fill(version_.begin(), version_.end(), 0);
    current_version_ = 1;
  }
  Touch(s);
  dist_[s] = 0.0;
  queue.push({0.0, s});
  last_settled_ = 0;
}

double DijkstraSearch::Distance(VertexId s, VertexId t) {
  RNE_CHECK(t < g_.NumVertices());
  if (s == t) return 0.0;
  MinQueue queue;
  BeginSearch(s, queue);
  while (!queue.empty()) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > dist_[v]) continue;  // stale queue entry
    ++last_settled_;
    if (v == t) return d;
    for (const Edge& e : g_.Neighbors(v)) {
      Touch(e.to);
      const double nd = d + e.weight;
      if (nd < dist_[e.to]) {
        dist_[e.to] = nd;
        parent_[e.to] = v;
        queue.push({nd, e.to});
      }
    }
  }
  return kInfDistance;
}

std::vector<double> DijkstraSearch::SnapshotDistances() const {
  std::vector<double> out(g_.NumVertices(), kInfDistance);
  for (VertexId v = 0; v < g_.NumVertices(); ++v) {
    if (!Stale(v)) out[v] = dist_[v];
  }
  return out;
}

const std::vector<double>& DijkstraSearch::AllDistances(VertexId s) {
  MinQueue queue;
  BeginSearch(s, queue);
  while (!queue.empty()) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > dist_[v]) continue;
    ++last_settled_;
    for (const Edge& e : g_.Neighbors(v)) {
      Touch(e.to);
      const double nd = d + e.weight;
      if (nd < dist_[e.to]) {
        dist_[e.to] = nd;
        parent_[e.to] = v;
        queue.push({nd, e.to});
      }
    }
  }
  dense_ = SnapshotDistances();
  return dense_;
}

std::vector<double> DijkstraSearch::MultiTargetDistances(
    VertexId s, const std::vector<VertexId>& targets) {
  MinQueue queue;
  BeginSearch(s, queue);
  size_t remaining = 0;
  // Mark targets; duplicates are fine (counted once via settled scan below).
  std::vector<char> is_target(g_.NumVertices(), 0);
  for (const VertexId t : targets) {
    RNE_CHECK(t < g_.NumVertices());
    if (!is_target[t]) {
      is_target[t] = 1;
      ++remaining;
    }
  }
  while (!queue.empty() && remaining > 0) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > dist_[v]) continue;
    ++last_settled_;
    if (is_target[v]) {
      is_target[v] = 0;
      --remaining;
    }
    for (const Edge& e : g_.Neighbors(v)) {
      Touch(e.to);
      const double nd = d + e.weight;
      if (nd < dist_[e.to]) {
        dist_[e.to] = nd;
        parent_[e.to] = v;
        queue.push({nd, e.to});
      }
    }
  }
  std::vector<double> out(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    out[i] = Stale(targets[i]) ? kInfDistance : dist_[targets[i]];
  }
  return out;
}

std::vector<std::pair<VertexId, double>> DijkstraSearch::WithinRadius(
    VertexId s, double radius) {
  MinQueue queue;
  BeginSearch(s, queue);
  std::vector<std::pair<VertexId, double>> out;
  while (!queue.empty()) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > dist_[v]) continue;
    if (d > radius) break;
    ++last_settled_;
    out.emplace_back(v, d);
    for (const Edge& e : g_.Neighbors(v)) {
      Touch(e.to);
      const double nd = d + e.weight;
      if (nd < dist_[e.to]) {
        dist_[e.to] = nd;
        parent_[e.to] = v;
        queue.push({nd, e.to});
      }
    }
  }
  return out;
}

std::vector<VertexId> DijkstraSearch::Path(VertexId s, VertexId t) {
  const double d = Distance(s, t);
  if (d == kInfDistance) return {};
  std::vector<VertexId> path;
  for (VertexId v = t;; v = parent_[v]) {
    path.push_back(v);
    if (v == s) break;
    RNE_CHECK(!Stale(v) && parent_[v] != kInvalidVertex);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double DijkstraDistance(const Graph& g, VertexId s, VertexId t) {
  DijkstraSearch search(g);
  return search.Distance(s, t);
}

std::vector<double> DijkstraAllDistances(const Graph& g, VertexId s) {
  DijkstraSearch search(g);
  return search.AllDistances(s);
}

}  // namespace rne
