// Dijkstra's algorithm with a reusable search workspace.
//
// DijkstraSearch keeps its distance/parent arrays across queries using a
// version-stamp trick, so repeated queries on the same graph do no per-query
// allocation — the pattern every index builder in this library relies on.
#ifndef RNE_ALGO_DIJKSTRA_H_
#define RNE_ALGO_DIJKSTRA_H_

#include <queue>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace rne {

/// Reusable Dijkstra workspace bound to one graph.
/// Not thread-safe; create one instance per thread.
class DijkstraSearch {
 public:
  explicit DijkstraSearch(const Graph& g);

  /// Exact shortest distance s -> t with early termination, or kInfDistance.
  double Distance(VertexId s, VertexId t);

  /// Full single-source shortest distances. The returned reference is valid
  /// until the next call on this object; unreachable entries hold
  /// kInfDistance.
  const std::vector<double>& AllDistances(VertexId s);

  /// Distances from s to each vertex of `targets` (kInfDistance when
  /// unreachable). Terminates as soon as all targets settle.
  std::vector<double> MultiTargetDistances(VertexId s,
                                           const std::vector<VertexId>& targets);

  /// Vertices within `radius` of s, as (vertex, distance) pairs in
  /// nondecreasing distance order.
  std::vector<std::pair<VertexId, double>> WithinRadius(VertexId s,
                                                        double radius);

  /// Shortest path s -> t as a vertex sequence (s first, t last); empty if
  /// unreachable.
  std::vector<VertexId> Path(VertexId s, VertexId t);

  /// Number of vertices settled by the most recent query (search-space probe
  /// used by benchmarks).
  size_t last_settled() const { return last_settled_; }

 private:
  struct QueueEntry {
    double dist;
    VertexId v;
    bool operator>(const QueueEntry& o) const { return dist > o.dist; }
  };
  using MinQueue = std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                                       std::greater<QueueEntry>>;

  /// Lazily invalidates dist_/parent_ entries from previous runs.
  void BeginSearch(VertexId s, MinQueue& queue);
  bool Stale(VertexId v) const { return version_[v] != current_version_; }
  void Touch(VertexId v) {
    if (Stale(v)) {
      version_[v] = current_version_;
      dist_[v] = kInfDistance;
      parent_[v] = kInvalidVertex;
    }
  }
  /// Copies dist_ into a dense vector, writing kInfDistance for stale slots.
  std::vector<double> SnapshotDistances() const;

  const Graph& g_;
  std::vector<double> dist_;
  std::vector<VertexId> parent_;
  std::vector<uint32_t> version_;
  uint32_t current_version_ = 0;
  size_t last_settled_ = 0;
  std::vector<double> dense_;  // scratch for AllDistances
};

/// One-shot convenience wrappers (allocate a workspace internally).
double DijkstraDistance(const Graph& g, VertexId s, VertexId t);
std::vector<double> DijkstraAllDistances(const Graph& g, VertexId s);

}  // namespace rne

#endif  // RNE_ALGO_DIJKSTRA_H_
