#include "algo/bidirectional_dijkstra.h"

#include <algorithm>

namespace rne {

BidirectionalDijkstra::BidirectionalDijkstra(const Graph& g) : g_(g) {
  for (int side = 0; side < 2; ++side) {
    dist_[side].assign(g.NumVertices(), kInfDistance);
    version_[side].assign(g.NumVertices(), 0);
  }
}

void BidirectionalDijkstra::Touch(int side, VertexId v) {
  if (version_[side][v] != current_version_) {
    version_[side][v] = current_version_;
    dist_[side][v] = kInfDistance;
  }
}

double BidirectionalDijkstra::Distance(VertexId s, VertexId t) {
  RNE_CHECK(s < g_.NumVertices() && t < g_.NumVertices());
  if (s == t) return 0.0;
  ++current_version_;
  if (current_version_ == 0) {
    for (int side = 0; side < 2; ++side) {
      std::fill(version_[side].begin(), version_[side].end(), 0);
    }
    current_version_ = 1;
  }
  last_settled_ = 0;

  MinQueue queue[2];
  Touch(0, s);
  Touch(1, t);
  dist_[0][s] = 0.0;
  dist_[1][t] = 0.0;
  queue[0].push({0.0, s});
  queue[1].push({0.0, t});

  double best = kInfDistance;
  // Alternate sides; stop when the sum of queue minima can no longer beat the
  // best meeting point found so far.
  while (!queue[0].empty() || !queue[1].empty()) {
    const double top0 = queue[0].empty() ? kInfDistance : queue[0].top().dist;
    const double top1 = queue[1].empty() ? kInfDistance : queue[1].top().dist;
    if (top0 + top1 >= best) break;
    const int side = top0 <= top1 ? 0 : 1;
    const int other = 1 - side;

    const auto [d, v] = queue[side].top();
    queue[side].pop();
    if (d > dist_[side][v]) continue;
    ++last_settled_;
    for (const Edge& e : g_.Neighbors(v)) {
      Touch(side, e.to);
      const double nd = d + e.weight;
      if (nd < dist_[side][e.to]) {
        dist_[side][e.to] = nd;
        queue[side].push({nd, e.to});
        Touch(other, e.to);
        if (dist_[other][e.to] != kInfDistance) {
          best = std::min(best, nd + dist_[other][e.to]);
        }
      }
    }
  }
  return best;
}

}  // namespace rne
