// A* search with pluggable admissible heuristics.
//
// Two heuristics are provided: the geometric lower bound (valid because
// every generated edge weight is at least the straight-line length of the
// segment) and the ALT landmark lower bound supplied by baselines/alt.h.
#ifndef RNE_ALGO_ASTAR_H_
#define RNE_ALGO_ASTAR_H_

#include <functional>
#include <queue>
#include <vector>

#include "graph/graph.h"

namespace rne {

/// Heuristic callback: lower bound on the network distance v -> t.
/// Must be admissible (never overestimate) for exact results.
using AStarHeuristic = std::function<double(VertexId v, VertexId t)>;

/// Reusable A* workspace. Not thread-safe.
class AStarSearch {
 public:
  explicit AStarSearch(const Graph& g);

  /// Shortest distance under `heuristic`; exact if the heuristic is
  /// admissible and consistent.
  double Distance(VertexId s, VertexId t, const AStarHeuristic& heuristic);

  /// Distance with the Euclidean-coordinate heuristic.
  double DistanceGeo(VertexId s, VertexId t);

  size_t last_settled() const { return last_settled_; }

 private:
  struct QueueEntry {
    double priority;  // g + h
    VertexId v;
    bool operator>(const QueueEntry& o) const {
      return priority > o.priority;
    }
  };

  void Touch(VertexId v);

  const Graph& g_;
  std::vector<double> dist_;
  std::vector<uint32_t> version_;
  uint32_t current_version_ = 0;
  size_t last_settled_ = 0;
};

}  // namespace rne

#endif  // RNE_ALGO_ASTAR_H_
