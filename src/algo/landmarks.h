// Landmark selection (Sec V-B).
//
// Landmarks act as reference points for vertex-level training samples (and
// for the ALT baseline). Farthest-point selection iteratively adds the vertex
// with the largest network distance to the already-selected set, covering
// regions the current set misses.
#ifndef RNE_ALGO_LANDMARKS_H_
#define RNE_ALGO_LANDMARKS_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace rne {

/// `count` distinct vertices chosen uniformly at random.
std::vector<VertexId> SelectLandmarksRandom(const Graph& g, size_t count,
                                            Rng& rng);

/// Farthest-point landmark selection: the first landmark is random; each
/// subsequent one maximizes the min network distance to those selected.
/// Cost: `count` single-source shortest-path runs (inherently sequential:
/// each pick depends on the previous landmark's distances).
std::vector<VertexId> SelectLandmarksFarthest(const Graph& g, size_t count,
                                              Rng& rng);

/// Row-major |landmarks| x |V| matrix of exact distances, one root Dijkstra
/// per landmark run across `num_threads` workers (0 = hardware). Rows are
/// independent, so the matrix is identical for every thread count.
std::vector<double> ComputeLandmarkDistances(
    const Graph& g, const std::vector<VertexId>& landmarks,
    size_t num_threads = 0);

}  // namespace rne

#endif  // RNE_ALGO_LANDMARKS_H_
