// Batched exact shortest-distance computation for training and validation.
//
// Training needs millions of (s, t, phi) triples. Computing each with an
// independent point-to-point search is wasteful: the sampler groups requests
// by source and answers each group with one (multi-target or full) Dijkstra,
// parallelized across a thread pool.
#ifndef RNE_ALGO_DISTANCE_SAMPLER_H_
#define RNE_ALGO_DISTANCE_SAMPLER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace rne {

/// One training/validation sample: a vertex pair and its exact shortest
/// distance (the paper's (v_s, v_t, phi) triple).
struct DistanceSample {
  VertexId s = kInvalidVertex;
  VertexId t = kInvalidVertex;
  double dist = 0.0;
};

/// Batched exact-distance service over one graph.
class DistanceSampler {
 public:
  /// `num_threads` = 0 uses hardware concurrency.
  explicit DistanceSampler(const Graph& g, size_t num_threads = 0);

  /// Computes exact distances for all pairs. Order of the result matches the
  /// input. Unreachable pairs get kInfDistance.
  std::vector<DistanceSample> ComputeDistances(
      const std::vector<std::pair<VertexId, VertexId>>& pairs) const;

  /// `n` uniformly random distinct-endpoint pairs with exact distances
  /// (the validation-set recipe of Sec VII-A).
  std::vector<DistanceSample> RandomPairs(size_t n, Rng& rng) const;

  const Graph& graph() const { return g_; }

 private:
  const Graph& g_;
  size_t num_threads_;
};

}  // namespace rne

#endif  // RNE_ALGO_DISTANCE_SAMPLER_H_
