#include "algo/distance_sampler.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <unordered_map>

#include "algo/dijkstra.h"
#include "util/thread_pool.h"

namespace rne {

DistanceSampler::DistanceSampler(const Graph& g, size_t num_threads)
    : g_(g),
      num_threads_(num_threads == 0
                       ? std::max<size_t>(1, std::thread::hardware_concurrency())
                       : num_threads) {}

std::vector<DistanceSample> DistanceSampler::ComputeDistances(
    const std::vector<std::pair<VertexId, VertexId>>& pairs) const {
  std::vector<DistanceSample> out(pairs.size());
  // Group requests by source vertex.
  struct Request {
    VertexId target;
    size_t out_index;
  };
  std::unordered_map<VertexId, std::vector<Request>> by_source;
  by_source.reserve(pairs.size() / 4 + 1);
  for (size_t i = 0; i < pairs.size(); ++i) {
    RNE_CHECK(pairs[i].first < g_.NumVertices());
    RNE_CHECK(pairs[i].second < g_.NumVertices());
    out[i] = {pairs[i].first, pairs[i].second, 0.0};
    by_source[pairs[i].first].push_back({pairs[i].second, i});
  }

  std::vector<std::pair<VertexId, const std::vector<Request>*>> groups;
  groups.reserve(by_source.size());
  for (const auto& [src, reqs] : by_source) groups.emplace_back(src, &reqs);

  auto solve_group = [this, &out](DijkstraSearch& search, VertexId src,
                                  const std::vector<Request>& reqs) {
    // With many targets a full SSSP is cheaper than multi-target early exit.
    if (reqs.size() * 8 >= g_.NumVertices()) {
      const auto& dist = search.AllDistances(src);
      for (const Request& r : reqs) out[r.out_index].dist = dist[r.target];
    } else {
      std::vector<VertexId> targets(reqs.size());
      for (size_t i = 0; i < reqs.size(); ++i) targets[i] = reqs[i].target;
      const auto dist = search.MultiTargetDistances(src, targets);
      for (size_t i = 0; i < reqs.size(); ++i) {
        out[reqs[i].out_index].dist = dist[i];
      }
    }
  };

  if (num_threads_ <= 1 || groups.size() <= 1) {
    DijkstraSearch search(g_);
    for (const auto& [src, reqs] : groups) solve_group(search, src, *reqs);
    return out;
  }

  ThreadPool pool(num_threads_);
  const size_t shards = pool.num_threads();
  std::vector<std::unique_ptr<DijkstraSearch>> searches;
  searches.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    searches.push_back(std::make_unique<DijkstraSearch>(g_));
  }
  for (size_t shard = 0; shard < shards; ++shard) {
    pool.Submit([&, shard] {
      for (size_t i = shard; i < groups.size(); i += shards) {
        solve_group(*searches[shard], groups[i].first, *groups[i].second);
      }
    });
  }
  pool.Wait();
  return out;
}

std::vector<DistanceSample> DistanceSampler::RandomPairs(size_t n,
                                                         Rng& rng) const {
  RNE_CHECK(g_.NumVertices() >= 2);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g_.NumVertices()));
    VertexId t = s;
    while (t == s) {
      t = static_cast<VertexId>(rng.UniformIndex(g_.NumVertices()));
    }
    pairs.emplace_back(s, t);
  }
  return ComputeDistances(pairs);
}

}  // namespace rne
