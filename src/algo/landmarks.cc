#include "algo/landmarks.h"

#include <algorithm>
#include <memory>

#include "algo/dijkstra.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace rne {

std::vector<VertexId> SelectLandmarksRandom(const Graph& g, size_t count,
                                            Rng& rng) {
  const size_t n = g.NumVertices();
  count = std::min(count, n);
  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) all[v] = v;
  rng.Shuffle(all);
  all.resize(count);
  return all;
}

std::vector<VertexId> SelectLandmarksFarthest(const Graph& g, size_t count,
                                              Rng& rng) {
  const size_t n = g.NumVertices();
  count = std::min(count, n);
  std::vector<VertexId> landmarks;
  if (count == 0) return landmarks;
  landmarks.reserve(count);
  landmarks.push_back(static_cast<VertexId>(rng.UniformIndex(n)));

  DijkstraSearch search(g);
  std::vector<double> min_dist(n, kInfDistance);
  while (landmarks.size() < count) {
    const auto& dist = search.AllDistances(landmarks.back());
    VertexId farthest = kInvalidVertex;
    double best = -1.0;
    for (VertexId v = 0; v < n; ++v) {
      if (dist[v] < min_dist[v]) min_dist[v] = dist[v];
      // Unreachable vertices are skipped: they would otherwise absorb every
      // remaining pick on disconnected inputs.
      if (min_dist[v] != kInfDistance && min_dist[v] > best) {
        best = min_dist[v];
        farthest = v;
      }
    }
    if (farthest == kInvalidVertex || best == 0.0) break;  // graph exhausted
    landmarks.push_back(farthest);
  }
  return landmarks;
}

std::vector<double> ComputeLandmarkDistances(
    const Graph& g, const std::vector<VertexId>& landmarks,
    size_t num_threads) {
  RNE_SPAN("build.landmark_matrix");
  const size_t n = g.NumVertices();
  std::vector<double> out(landmarks.size() * n, kInfDistance);
  auto fill_row = [&](DijkstraSearch& search, size_t i) {
    const auto& dist = search.AllDistances(landmarks[i]);
    std::copy(dist.begin(), dist.end(),
              out.begin() + static_cast<long>(i * n));
  };
  const size_t threads =
      std::min(ResolveNumThreads(num_threads),
               std::max<size_t>(landmarks.size(), 1));
  if (threads <= 1) {
    DijkstraSearch search(g);
    for (size_t i = 0; i < landmarks.size(); ++i) fill_row(search, i);
  } else {
    ThreadPool pool(threads);
    std::vector<std::unique_ptr<DijkstraSearch>> scratch(pool.num_threads());
    pool.ParallelFor(landmarks.size(), [&](size_t i) {
      size_t slot = ThreadPool::CurrentWorkerIndex();
      if (slot == ThreadPool::kNotAWorker) slot = 0;
      if (!scratch[slot]) scratch[slot] = std::make_unique<DijkstraSearch>(g);
      fill_row(*scratch[slot], i);
    });
  }
  return out;
}

}  // namespace rne
