#include "algo/landmarks.h"

#include <algorithm>

#include "algo/dijkstra.h"

namespace rne {

std::vector<VertexId> SelectLandmarksRandom(const Graph& g, size_t count,
                                            Rng& rng) {
  const size_t n = g.NumVertices();
  count = std::min(count, n);
  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) all[v] = v;
  rng.Shuffle(all);
  all.resize(count);
  return all;
}

std::vector<VertexId> SelectLandmarksFarthest(const Graph& g, size_t count,
                                              Rng& rng) {
  const size_t n = g.NumVertices();
  count = std::min(count, n);
  std::vector<VertexId> landmarks;
  if (count == 0) return landmarks;
  landmarks.reserve(count);
  landmarks.push_back(static_cast<VertexId>(rng.UniformIndex(n)));

  DijkstraSearch search(g);
  std::vector<double> min_dist(n, kInfDistance);
  while (landmarks.size() < count) {
    const auto& dist = search.AllDistances(landmarks.back());
    VertexId farthest = kInvalidVertex;
    double best = -1.0;
    for (VertexId v = 0; v < n; ++v) {
      if (dist[v] < min_dist[v]) min_dist[v] = dist[v];
      // Unreachable vertices are skipped: they would otherwise absorb every
      // remaining pick on disconnected inputs.
      if (min_dist[v] != kInfDistance && min_dist[v] > best) {
        best = min_dist[v];
        farthest = v;
      }
    }
    if (farthest == kInvalidVertex || best == 0.0) break;  // graph exhausted
    landmarks.push_back(farthest);
  }
  return landmarks;
}

}  // namespace rne
