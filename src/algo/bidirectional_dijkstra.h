// Bidirectional Dijkstra: simultaneous forward/backward search meeting in the
// middle. On road networks this settles ~sqrt of the vertices plain Dijkstra
// does, and is the search skeleton reused by the CH query.
#ifndef RNE_ALGO_BIDIRECTIONAL_DIJKSTRA_H_
#define RNE_ALGO_BIDIRECTIONAL_DIJKSTRA_H_

#include <queue>
#include <vector>

#include "graph/graph.h"

namespace rne {

/// Reusable bidirectional-search workspace bound to one (undirected) graph.
/// Not thread-safe; create one instance per thread.
class BidirectionalDijkstra {
 public:
  explicit BidirectionalDijkstra(const Graph& g);

  /// Exact shortest distance s -> t, or kInfDistance if unreachable.
  double Distance(VertexId s, VertexId t);

  /// Vertices settled by the last query (both directions combined).
  size_t last_settled() const { return last_settled_; }

 private:
  struct QueueEntry {
    double dist;
    VertexId v;
    bool operator>(const QueueEntry& o) const { return dist > o.dist; }
  };
  using MinQueue = std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                                       std::greater<QueueEntry>>;

  void Touch(int side, VertexId v);

  const Graph& g_;
  // dist_[0]=forward, dist_[1]=backward, with per-side version stamps.
  std::vector<double> dist_[2];
  std::vector<uint32_t> version_[2];
  uint32_t current_version_ = 0;
  size_t last_settled_ = 0;
};

}  // namespace rne

#endif  // RNE_ALGO_BIDIRECTIONAL_DIJKSTRA_H_
