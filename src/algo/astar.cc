#include "algo/astar.h"

#include <algorithm>

namespace rne {

AStarSearch::AStarSearch(const Graph& g)
    : g_(g),
      dist_(g.NumVertices(), kInfDistance),
      version_(g.NumVertices(), 0) {}

void AStarSearch::Touch(VertexId v) {
  if (version_[v] != current_version_) {
    version_[v] = current_version_;
    dist_[v] = kInfDistance;
  }
}

double AStarSearch::Distance(VertexId s, VertexId t,
                             const AStarHeuristic& heuristic) {
  RNE_CHECK(s < g_.NumVertices() && t < g_.NumVertices());
  if (s == t) return 0.0;
  ++current_version_;
  if (current_version_ == 0) {
    std::fill(version_.begin(), version_.end(), 0);
    current_version_ = 1;
  }
  last_settled_ = 0;

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  Touch(s);
  dist_[s] = 0.0;
  queue.push({heuristic(s, t), s});
  while (!queue.empty()) {
    const auto [priority, v] = queue.top();
    queue.pop();
    Touch(v);
    if (v == t) return dist_[t];
    // Stale check via recomputed priority is unreliable with inexact
    // heuristics, so compare g-values: skip if this entry was superseded.
    if (priority - heuristic(v, t) > dist_[v] + 1e-9) continue;
    ++last_settled_;
    for (const Edge& e : g_.Neighbors(v)) {
      Touch(e.to);
      const double nd = dist_[v] + e.weight;
      if (nd < dist_[e.to]) {
        dist_[e.to] = nd;
        queue.push({nd + heuristic(e.to, t), e.to});
      }
    }
  }
  return kInfDistance;
}

double AStarSearch::DistanceGeo(VertexId s, VertexId t) {
  return Distance(s, t, [this](VertexId v, VertexId target) {
    return EuclideanDistance(g_, v, target);
  });
}

}  // namespace rne
