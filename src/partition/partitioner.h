// Multilevel graph partitioning (the METIS [17] algorithm family).
//
// kappa-way partitioning by recursive bisection. Each bisection runs the
// classic multilevel pipeline: (1) coarsen by heavy-edge matching until the
// graph is small, (2) greedy graph-growing bisection on the coarsest graph,
// (3) project back while refining with a Fiduccia-Mattheyses boundary pass.
// The objective is minimum cut weight under a balance constraint, which is
// what the RNE hierarchy needs: sub-graphs whose internal proximity exceeds
// cross-partition proximity.
//
// The recursion runs level-synchronously: all cells of one bisection level
// are processed in parallel (each with its own deterministic Rng), and while
// a level has a single cell — the dominant top split — the pool instead
// parallelizes inside the bisection (coarse-edge aggregation and FM gain
// initialization). Both paths compute the same values, so the partition is
// a pure function of (graph, options) regardless of num_threads.
#ifndef RNE_PARTITION_PARTITIONER_H_
#define RNE_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace rne {

struct PartitionOptions {
  /// Number of parts (the paper's partitioning fanout kappa).
  size_t num_parts = 4;
  /// Allowed imbalance: a part may hold up to (1+eps) * n / num_parts
  /// vertices.
  double balance_eps = 0.15;
  /// Coarsening stops at this many vertices per bisection.
  size_t coarsen_threshold = 64;
  /// FM refinement passes per uncoarsening level.
  size_t refine_passes = 4;
  uint64_t seed = 7;
  /// Partitioning workers; 0 = hardware concurrency. Cells of the recursive
  /// bisection tree are seeded independently (a deterministic mix of `seed`
  /// and the cell's part-id interval), so every thread count produces the
  /// identical partition.
  size_t num_threads = 0;
};

/// Result of a kappa-way partitioning: part id per vertex, plus diagnostics.
struct PartitionResult {
  std::vector<uint32_t> part_of;  // size NumVertices(), values < num_parts
  size_t num_parts = 0;
  /// Total weight of edges whose endpoints lie in different parts.
  double cut_weight = 0.0;
  /// Number of cut edges.
  size_t cut_edges = 0;
};

/// Partitions `g` into options.num_parts parts. Parts are non-empty whenever
/// g has at least num_parts vertices. Balanced within balance_eps except on
/// degenerate inputs (disconnected shards smaller than a part).
PartitionResult PartitionGraph(const Graph& g, const PartitionOptions& options);

/// Computes cut statistics of an assignment (exposed for tests).
void ComputeCutStats(const Graph& g, PartitionResult* result);

/// Deterministic splitmix64-style combination of a base seed with up to two
/// structural identifiers (cell interval, tree-node id, ...). Parallel
/// builds use it to hand every independently-processed unit its own
/// reproducible random stream, making results thread-count-invariant.
uint64_t MixSeed(uint64_t seed, uint64_t a, uint64_t b = 0);

}  // namespace rne

#endif  // RNE_PARTITION_PARTITIONER_H_
